// Figure 2: the naive CC-UPC (literal translation, fine-grained remote
// accesses) against CC-SMP on one node, for four random graphs.
//
// Paper: the UPC implementation is so much slower that the Y axis is
// logarithmic; normalized per processor (time x processors) it is about
// three orders of magnitude behind.
#include "bench_common.hpp"
#include "core/cc_fine.hpp"
#include "core/cc_seq.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const int threads = a.threads > 0 ? a.threads : 16;  // paper: 16 threads/node
  preamble(a, "Figure 2",
           "naive CC-UPC vs CC-SMP, random graphs (log-scale in paper)",
           "CC-UPC ~2 orders of magnitude slower wall-clock; ~3 orders "
           "normalized per processor");

  struct G {
    std::uint64_t n, density;
  };
  const G cases[] = {{1u << 16, 4}, {1u << 16, 10}, {1u << 17, 4},
                     {1u << 17, 10}};

  Report rep(a, "fig02_naive_vs_smp");
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"graph (n, m/n)", "CC-UPC naive", "CC-SMP (16 thr)",
           "slowdown", "per-proc slowdown", "naive msgs"});
  for (const G& c : cases) {
    const std::uint64_t n = a.scaled(c.n);
    const auto el = graph::random_graph(n, n * c.density, a.seed);
    const std::string tag =
        "(" + std::to_string(n) + ", " + std::to_string(c.density) + ")";

    pgas::Runtime upc(pgas::Topology::cluster(nodes, threads), params_for(n));
    rep.attach(upc);
    const auto naive = core::cc_naive_upc(upc, el);
    rep.row("naive " + tag, naive.costs);

    pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
    rep.attach(smp);
    const auto ref = core::cc_smp(smp, el);

    const double slow = naive.costs.modeled_ns / ref.costs.modeled_ns;
    const double per_proc =
        slow * (nodes * threads) / 16.0;  // normalize by processor count
    rep.row("smp " + tag, ref.costs, {{"slowdown", slow}});
    t.add_row({tag,
               Table::eng(naive.costs.modeled_ns),
               Table::eng(ref.costs.modeled_ns), ratio(slow, 1.0),
               ratio(per_proc, 1.0),
               std::to_string(naive.costs.messages)});
  }
  emit(a, t);
  std::cout << "(UPC topology: " << nodes << " nodes x " << threads
            << " threads)\n";
  return rep.finish();
}
