// SRV-01: multi-tenant query serving over DynamicGraph epoch snapshots.
//
// An open-loop workload (Poisson arrivals with bursty on/off phases, Zipf
// hot-key skew, per-tenant rates; see src/serve/workload.hpp) drives the
// QueryServer's discrete-event loop on the modeled clock, sweeping arrival
// rate x skew x batch window x query mix.  The arrival rates are
// self-calibrated against the modeled cost of one single-key flush (F):
// "x1" offers 2 requests per F, "x2" offers 4 — both past what per-request
// flushing can serve, which is exactly where coalescing pays.
//
// Acceptance (exit 1 on failure):
//  - batching leverage: at a fixed rate/skew, the nonzero window sustains
//    strictly higher throughput AND lower p99 than window=0;
//  - the epoch cache absorbs hot keys under skew (hit rate > 0) and drops
//    entries when publishes evict their epoch (invalidation events > 0);
//  - sampled flushes are bit-identical to direct DynamicGraph::query
//    (verify_mismatches == 0 on every row);
//  - pinned sessions outlive the ring somewhere in the sweep (stale > 0).
//
// Rows land in the schema-v1 JSON with latency_p50/p95/p99 extras; the
// committed baseline lives at scripts/baselines/BENCH_serve_smoke.json.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "stream/dynamic_graph.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

struct RowResult {
  std::string label;
  double window_ns = 0.0;
  serve::ServeStats st;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv, {.serve = true, .partition = true});
  const int nodes = a.nodes > 0 ? a.nodes : 4;
  const int threads = a.threads > 0 ? a.threads : 2;
  const std::uint64_t n = a.n ? a.n : a.scaled(3000);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  const int sessions = a.sessions > 0 ? a.sessions : 6;
  const std::size_t requests =
      std::max<std::size_t>(80, a.scaled(700));
  preamble(a, "SRV-01",
           "multi-tenant query serving: admission, coalescing, epoch cache",
           "a nonzero batch window sustains higher throughput and lower "
           "p99 than per-request flushing at the same arrival rate; the "
           "epoch cache absorbs hot-key skew");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Report rep(a, "srv01_query_serving");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  rep.set_param("sessions", sessions);
  rep.set_param("requests", static_cast<double>(requests));

  // One base graph + update stream shared by every configuration: rows
  // differ only in serving policy, never in data.
  graph::TemporalStreamParams tp;
  tp.base_edges = m;
  const std::size_t kPublishes = 3;
  const std::size_t ops_per_pub =
      std::max<std::size_t>(8, static_cast<std::size_t>(n) / 50);
  const auto ts =
      graph::temporal_stream(n, kPublishes * ops_per_pub, a.seed, tp);

  // Calibrate F = modeled ns of one single-key flush, the service-time
  // yardstick the arrival rates and window are expressed in.
  double flush_ns = 0.0;
  {
    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &ts.base);
    rep.attach(rt);
    stream::DynamicGraph dg(rt, ts.base);
    stream::QueryBatch probe;
    probe.same_component.push_back({0, n - 1});
    flush_ns = dg.query(probe).costs.modeled_ns;
  }
  std::cout << "calibrated single-key flush: " << Table::eng(flush_ns)
            << " (rates/window are multiples of it)\n";

  std::vector<std::pair<std::string, double>> rates;
  if (a.arrival_rate > 0.0)
    rates.push_back({"cli", a.arrival_rate});
  else {
    rates.push_back({"x1", 2e9 / flush_ns});
    rates.push_back({"x2", 4e9 / flush_ns});
  }
  std::vector<double> skews =
      a.skew >= 0.0 ? std::vector<double>{a.skew}
                    : std::vector<double>{0.0, 1.2};
  std::vector<std::pair<std::string, double>> windows;
  if (a.batch_window_ns >= 0.0)
    windows.push_back({"cli", a.batch_window_ns});
  else {
    windows.push_back({"0", 0.0});
    windows.push_back({"8F", 8.0 * flush_ns});
  }

  Table t({"config", "offered", "ok", "shed", "stale", "tput rps", "p50",
           "p99", "hit%", "flushes"});
  int rc = 0;
  std::vector<RowResult> rows;

  const auto run_config = [&](const std::string& label, double rate_rps,
                              double skew, double window_ns,
                              double size_mix) {
    serve::WorkloadParams wp;
    wp.sessions = sessions;
    wp.rate_rps = rate_rps;
    wp.horizon_ns =
        static_cast<double>(requests) / rate_rps * 1e9;
    wp.zipf_s = skew;
    wp.size_mix = size_mix;
    wp.phase_ns = wp.horizon_ns / 6.0;  // bursty on/off phases
    wp.burst_on_frac = 0.6;
    wp.pin_frac = 0.05;   // sessions holding a consistent read snapshot
    wp.pinned_epoch = 0;  // evicted once two more epochs publish
    const auto reqs = serve::generate_workload(n, a.seed, wp);

    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &ts.base);
    rep.attach(rt);
    stream::DynamicGraph dg(rt, ts.base);
    serve::ServerOptions so;
    so.window_ns = window_ns;
    so.max_batch = 512;
    so.max_queue = 64;
    so.cache = true;
    so.verify_every = 5;  // sampled bit-identity cross-check
    serve::QueryServer srv(dg, sessions, so);

    // Publishes land at fixed fractions of the horizon, interleaved with
    // arrivals in virtual-time order.
    std::size_t pi = 0;
    const auto maybe_publish = [&](double before_ns) {
      while (pi < kPublishes &&
             0.3 * wp.horizon_ns * static_cast<double>(pi + 1) <=
                 before_ns) {
        srv.publish(0.3 * wp.horizon_ns * static_cast<double>(pi + 1),
                    std::span<const graph::EdgeUpdate>(ts.updates)
                        .subspan(pi * ops_per_pub, ops_per_pub));
        ++pi;
      }
    };
    for (const serve::Request& r : reqs) {
      maybe_publish(r.arrive_ns);
      srv.offer(r);
    }
    maybe_publish(wp.horizon_ns + 1.0);
    const serve::ServeStats st = srv.finish();

    rep.row(label, st.makespan_ns,
            {{"offered", static_cast<double>(st.offered)},
             {"completed", static_cast<double>(st.completed)},
             {"shed", static_cast<double>(st.shed)},
             {"stale", static_cast<double>(st.stale)},
             {"throughput_rps", st.throughput_rps},
             {"latency_p50_ns", st.p50_ns},
             {"latency_p95_ns", st.p95_ns},
             {"latency_p99_ns", st.p99_ns},
             {"latency_mean_ns", st.mean_ns},
             {"queue_mean_ns", st.mean_queue_ns},
             {"flushes", static_cast<double>(st.flushes)},
             {"epoch_batches", static_cast<double>(st.epoch_batches)},
             {"keys_sent", static_cast<double>(st.keys_sent)},
             {"coalesced", static_cast<double>(st.coalesced)},
             {"cache_hits", static_cast<double>(st.cache_hits)},
             {"cache_misses", static_cast<double>(st.cache_misses)},
             {"cache_hit_rate", st.cache_hit_rate()},
             {"cache_invalidated", static_cast<double>(st.cache_invalidated)},
             {"invalidation_events",
              static_cast<double>(st.invalidation_events)},
             {"publishes", static_cast<double>(st.publishes)},
             {"service_ns", st.service_ns},
             {"publish_ns", st.publish_ns},
             {"agg_ns", st.agg_ns},
             {"verify_mismatches",
              static_cast<double>(st.verify_mismatches)}});
    t.add_row({label, std::to_string(st.offered),
               std::to_string(st.completed), std::to_string(st.shed),
               std::to_string(st.stale), Table::num(st.throughput_rps, 0),
               Table::eng(st.p50_ns), Table::eng(st.p99_ns),
               Table::num(100.0 * st.cache_hit_rate(), 1),
               std::to_string(st.flushes)});

    // Row-local invariants.  Every offered request retires with exactly one
    // outcome, and every shed carries exactly one reason code.
    if (st.offered != st.completed + st.shed + st.stale + st.degraded) {
      std::fprintf(stderr,
                   "srv01: SELF-CHECK FAILED at %s: offered %llu != "
                   "completed %llu + shed %llu + stale %llu + degraded "
                   "%llu\n",
                   label.c_str(),
                   static_cast<unsigned long long>(st.offered),
                   static_cast<unsigned long long>(st.completed),
                   static_cast<unsigned long long>(st.shed),
                   static_cast<unsigned long long>(st.stale),
                   static_cast<unsigned long long>(st.degraded));
      rc = 1;
    }
    if (st.shed !=
        st.shed_queue_full + st.shed_breaker_open + st.shed_deadline) {
      std::fprintf(stderr,
                   "srv01: SELF-CHECK FAILED at %s: shed %llu != queue-full "
                   "%llu + breaker-open %llu + deadline %llu\n",
                   label.c_str(), static_cast<unsigned long long>(st.shed),
                   static_cast<unsigned long long>(st.shed_queue_full),
                   static_cast<unsigned long long>(st.shed_breaker_open),
                   static_cast<unsigned long long>(st.shed_deadline));
      rc = 1;
    }
    if (st.verify_mismatches != 0) {
      std::fprintf(stderr,
                   "srv01: SELF-CHECK FAILED at %s: %llu flush answers "
                   "diverged from direct DynamicGraph::query\n",
                   label.c_str(),
                   static_cast<unsigned long long>(st.verify_mismatches));
      rc = 1;
    }
    rows.push_back({label, window_ns, st});
  };

  for (const auto& [rl, rate] : rates)
    for (const double skew : skews)
      for (const auto& [wl, win] : windows)
        run_config("rate=" + rl + " skew=" + Table::num(skew, 1) +
                       " win=" + wl + " mix=0.5",
                   rate, skew, win, 0.5);
  // Pure query mixes at the heaviest skew / widest window: mix=1 exercises
  // the lazy size aggregation (agg_ns > 0 on its first epoch touch).
  for (const double mix : {0.0, 1.0})
    run_config("rate=" + rates.front().first +
                   " skew=" + Table::num(skews.back(), 1) +
                   " win=" + windows.back().first +
                   " mix=" + Table::num(mix, 1),
               rates.front().second, skews.back(), windows.back().second,
               mix);

  // Sweep-level acceptance: batching leverage and cache behavior.
  if (windows.size() == 2) {
    for (const auto& [rl, rate] : rates) {
      (void)rate;
      for (const double skew : skews) {
        const std::string base = "rate=" + rl +
                                 " skew=" + Table::num(skew, 1) + " win=";
        const serve::ServeStats *w0 = nullptr, *w1 = nullptr;
        for (const RowResult& r : rows) {
          if (r.label == base + windows[0].first + " mix=0.5") w0 = &r.st;
          if (r.label == base + windows[1].first + " mix=0.5") w1 = &r.st;
        }
        if (!w0 || !w1) continue;
        if (w1->throughput_rps <= w0->throughput_rps) {
          std::fprintf(stderr,
                       "srv01: SELF-CHECK FAILED at %s: windowed "
                       "throughput %.3g rps <= per-request %.3g rps\n",
                       base.c_str(), w1->throughput_rps,
                       w0->throughput_rps);
          rc = 1;
        }
        if (w1->p99_ns >= w0->p99_ns) {
          std::fprintf(stderr,
                       "srv01: SELF-CHECK FAILED at %s: windowed p99 "
                       "%.3g ns >= per-request p99 %.3g ns\n",
                       base.c_str(), w1->p99_ns, w0->p99_ns);
          rc = 1;
        }
      }
    }
  }
  std::uint64_t total_stale = 0;
  for (const RowResult& r : rows) {
    total_stale += r.st.stale;
    if (r.st.invalidation_events == 0 && r.st.publishes > 0 &&
        r.st.cache_misses > 0) {
      std::fprintf(stderr,
                   "srv01: SELF-CHECK FAILED at %s: publishes evicted "
                   "epochs but no cache invalidation was recorded\n",
                   r.label.c_str());
      rc = 1;
    }
  }
  for (const RowResult& r : rows) {
    const bool skewed = r.label.find("skew=1.2") != std::string::npos ||
                        (a.skew > 0.0);
    if (skewed && r.st.cache_hits == 0) {
      std::fprintf(stderr,
                   "srv01: SELF-CHECK FAILED at %s: hot-key skew produced "
                   "no cache hits\n",
                   r.label.c_str());
      rc = 1;
    }
  }
  if (total_stale == 0) {
    std::fprintf(stderr,
                 "srv01: SELF-CHECK FAILED: no pinned session ever "
                 "outlived the epoch ring (stale == 0 across the sweep)\n");
    rc = 1;
  }

  emit(a, t);
  std::cout << "(graph: n=" << n << " base m=" << m << ", " << nodes
            << " nodes x " << threads << " threads, " << sessions
            << " sessions, ~" << requests << " requests per row)\n";
  const int json_rc = rep.finish();
  return rc != 0 ? rc : json_rc;
}
