// Ablation B: the mechanism behind the `circular` optimization (Section V).
// All-to-all exchange phases priced by the event-sweep NIC model under the
// identity schedule (every thread serves peers 0,1,2,...) vs the circular
// schedule (i, i+1, ..., i+s-1 mod s), across cluster sizes — plus the
// end-to-end effect on CC's Comm time.
//
// Paper: "Communication time is reduced by a factor of 2 with circular."
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "machine/exchange_sim.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

machine::ExchangePlan all_to_all(const pgas::Topology& topo, double svc,
                                 bool circular) {
  const int s = topo.total_threads();
  machine::ExchangePlan plan(static_cast<std::size_t>(s));
  for (int me = 0; me < s; ++me)
    for (int step = 0; step < s; ++step) {
      const int j = circular ? (me + step) % s : step;
      if (topo.node_of(j) == topo.node_of(me)) continue;
      plan[static_cast<std::size_t>(me)].push_back(
          {static_cast<std::int32_t>(topo.node_of(j)), svc});
    }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  preamble(a, "Ablation B",
           "identity vs circular exchange schedule (NIC event-sweep model)",
           "circular roughly halves the exchange phase; the gap grows with "
           "the thread count");

  Report rep(a, "abl02_congestion_schedule");
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"nodes x threads", "identity", "circular", "identity/circular"});
  const double svc = params().net_overhead_ns + 8192 * 0.5;  // 8 KiB msgs
  for (const auto& [nodes, threads] :
       {std::pair{4, 1}, {8, 1}, {16, 1}, {16, 2}, {16, 4}, {16, 8}}) {
    const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
    const auto map = topo.thread_node_map();
    const double ident = machine::exchange_duration_ns(
        all_to_all(topo, svc, false), map, nodes, params().net_latency_ns);
    const double circ = machine::exchange_duration_ns(
        all_to_all(topo, svc, true), map, nodes, params().net_latency_ns);
    const std::string tag =
        std::to_string(nodes) + "x" + std::to_string(threads);
    t.add_row({tag, Table::eng(ident), Table::eng(circ), ratio(ident, circ)});
    rep.row("identity " + tag, ident);
    rep.row("circular " + tag, circ, {{"gain", ident / circ}});
  }
  emit(a, t);

  // End-to-end: CC's Comm category with and without circular.
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 17);
  const auto el = graph::random_graph(n, 4 * n, a.seed);
  Table t2({"CC config", "Comm time", "total"});
  for (const bool circ : {false, true}) {
    core::CcOptions o = core::CcOptions::optimized(2);
    o.coll.circular = circ;
    pgas::Runtime rt(pgas::Topology::cluster(16, 4), params_for(n));
    rep.attach(rt);
    const auto r = core::cc_coalesced(rt, el, o);
    t2.add_row({circ ? "circular" : "identity",
                Table::eng(r.costs.breakdown.get(machine::Cat::Comm)),
                Table::eng(r.costs.modeled_ns)});
    rep.row(std::string("cc ") + (circ ? "circular" : "identity"), r.costs);
  }
  emit(a, t2);
  return rep.finish();
}
