// Figure 8: as Figure 7, on the denser random graph (m/n = 10).
// Paper: best speedup 3x over CC-SMP and ~10-11x over sequential at t=8.
#define PGRAPH_CC_SCALING_NO_MAIN
#include "fig07_cc_scaling_mn4.cpp"

int main(int argc, char** argv) {
  return run_cc_scaling(argc, argv, "Figure 8 (m/n = 10)", 10);
}
