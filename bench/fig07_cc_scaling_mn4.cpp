// Figures 7/8: optimized CC on 16 nodes, varying threads per node, against
// the CC-SMP (16-thread, one-node) line and the sequential (single-thread
// BFS) line.
//
// Paper: optimized CC beats CC-SMP; best speedup at t=8 (2.2x on m/n=4,
// 3x on m/n=10; ~9x and ~11x over sequential); performance DEGRADES at
// t=16 because the SMatrix/PMatrix all-to-all bursts s^2 small messages.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"
#include "core/cc_seq.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int run_cc_scaling(int argc, char** argv, const char* figure,
                   std::uint64_t density) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : density * n;
  preamble(a, figure,
           "optimized CC vs threads/node (16 nodes), SMP and sequential "
           "baselines",
           "beats CC-SMP at every t; best at t=8 (~2-3x SMP, ~9-11x seq); "
           "degrades at t=16 (all-to-all burst of s^2 small messages)");

  const auto el = graph::random_graph(n, m, a.seed);

  Report rep(a, density == 4 ? "fig07_cc_scaling_mn4" : "fig08_cc_scaling_mn10");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
  rep.attach(smp);
  const auto smp_r = core::cc_smp(smp, el);
  rep.row("CC-SMP(16)", smp_r.costs);
  const machine::MemoryModel mm(params_for(n));
  const auto seq = core::cc_bfs(el, &mm);

  Table t({"threads/node", "modeled time", "vs SMP(16)", "vs sequential",
           "iterations", "msgs", "wall(s)"});
  for (const int th : {1, 2, 4, 8, 16}) {
    pgas::Runtime rt(pgas::Topology::cluster(nodes, th), params_for(n));
    rep.attach(rt);
    const auto r =
        core::cc_coalesced(rt, el, core::CcOptions::optimized());
    t.add_row({std::to_string(th), Table::eng(r.costs.modeled_ns),
               ratio(smp_r.costs.modeled_ns, r.costs.modeled_ns),
               ratio(seq.modeled_ns, r.costs.modeled_ns),
               std::to_string(r.iterations), std::to_string(r.costs.messages),
               Table::num(r.costs.wall_s, 2)});
    rep.row("t=" + std::to_string(th), r.costs,
            {{"speedup_vs_smp", smp_r.costs.modeled_ns / r.costs.modeled_ns},
             {"speedup_vs_seq", seq.modeled_ns / r.costs.modeled_ns}});
  }
  t.add_row({"CC-SMP(16)", Table::eng(smp_r.costs.modeled_ns), "1.00x",
             ratio(seq.modeled_ns, smp_r.costs.modeled_ns),
             std::to_string(smp_r.iterations), "0", ""});
  t.add_row({"sequential", Table::eng(seq.modeled_ns),
             ratio(smp_r.costs.modeled_ns, seq.modeled_ns), "1.00x", "1", "0",
             ""});
  emit(a, t);
  std::cout << "(graph: n=" << n << " m=" << m
            << "; t' auto-sized so one sub-block fits the cache (Section IV))\n";
  return rep.finish();
}

#ifndef PGRAPH_CC_SCALING_NO_MAIN
int main(int argc, char** argv) {
  return run_cc_scaling(argc, argv, "Figure 7 (m/n = 4)", 4);
}
#endif
