// Ablation F: the introduction's critique of BFS-style distributed graph
// processing — "the parallel BFS implementation has a lower bound of O(d)
// for the running time regardless of the number of processors.  Many
// poly-log time graph algorithms ... exhibit different algorithmic
// behavior."
//
// We run the level-synchronous distributed BFS and the coalesced CC on the
// same graphs while sweeping the diameter at fixed size: BFS rounds grow
// linearly with the diameter, CC iterations stay ~log n, and the modeled
// times diverge accordingly.
#include "bench_common.hpp"
#include "core/bfs_pgas.hpp"
#include "core/cc_coalesced.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

/// A "ladder" of `k` random blobs chained in a row: diameter ~ k, size and
/// density fixed.
graph::EdgeList chained_blobs(std::size_t n, std::size_t m, std::size_t k,
                              std::uint64_t seed) {
  graph::EdgeList el;
  el.n = n;
  const std::size_t per = n / k;
  std::size_t budget = m > (k - 1) ? m - (k - 1) : 0;
  for (std::size_t b = 0; b < k; ++b) {
    const std::size_t lo = b * per;
    const std::size_t cnt = b + 1 == k ? n - lo : per;
    const std::size_t em = budget / (k - b);
    budget -= em;
    auto blob = graph::random_graph(cnt, em, seed + b);
    for (const auto& e : blob.edges)
      el.edges.push_back({lo + e.u, lo + e.v});
    if (b + 1 < k) el.edges.push_back({lo + cnt - 1, lo + per});  // bridge
  }
  return el;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 17);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const int threads = a.threads > 0 ? a.threads : 4;
  preamble(a, "Ablation F",
           "BFS O(diameter) rounds vs CC poly-log iterations, same size",
           "BFS rounds and time grow ~linearly with diameter; CC stays "
           "~log n (the introduction's argument)");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Report rep(a, "abl06_bfs_diameter");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  Table t({"diameter knob", "BFS levels", "BFS time", "CC iterations",
           "CC time", "BFS/CC"});
  for (const std::size_t k : {2u, 8u, 32u, 128u}) {
    const auto el = chained_blobs(n, m, k, a.seed);
    pgas::Runtime rt1(topo, params_for(n));
    rep.attach(rt1);
    const auto bfs = core::bfs_pgas(rt1, el, 0);
    rep.row("bfs k=" + std::to_string(k), bfs.costs,
            {{"levels", static_cast<double>(bfs.levels)}});
    pgas::Runtime rt2(topo, params_for(n));
    rep.attach(rt2);
    const auto cc = core::cc_coalesced(rt2, el);
    rep.row("cc k=" + std::to_string(k), cc.costs,
            {{"iterations", static_cast<double>(cc.iterations)}});
    t.add_row({std::to_string(k), std::to_string(bfs.levels),
               Table::eng(bfs.costs.modeled_ns),
               std::to_string(cc.iterations),
               Table::eng(cc.costs.modeled_ns),
               ratio(bfs.costs.modeled_ns, cc.costs.modeled_ns)});
  }
  emit(a, t);
  std::cout << "(n=" << n << " m=" << m << ", " << nodes << "x" << threads
            << "; the BFS source is vertex 0, in the first blob)\n";
  return rep.finish();
}
