// ROB-01: silent-data-corruption defense — availability vs scrub interval
// (docs/ROBUSTNESS.md, "At-rest integrity").
//
// Every row runs cc_coalesced on the same graph.  The clean rows sweep the
// scrub interval to price the defense (overhead% vs the scrub-off run);
// the flip rows replay a matrix of seeded single-bit memory faults
// (mem_flip_at epochs spread across the run) against each interval and
// score AVAILABILITY: the fraction of faulted runs that converge to the
// bit-exact fault-free labels.  Runs that fail loudly (MemoryCorrupt with
// no checkpoint to roll back to) are unavailable but *defended*; the one
// outcome the defense must never produce is a silent escape — a run that
// completes, publishes wrong labels, and passes the certifying verifier.
//
// Scrub-off runs are not a flip target: only arrays opted into integrity
// tracking are resident in the injector's flip space, so the scrub-off row
// prices the baseline instead of demonstrating undefended corruption.
//
// Acceptance (exit 1 on failure):
//  - zero silent escapes anywhere in the matrix;
//  - zero-flip invariance: an attached-but-disabled flip plan leaves the
//    scrub-off modeled time bit-identical;
//  - every clean scrubbed row reproduces the scrub-off labels at a
//    strictly higher modeled cost;
//  - at the default configuration, the interval-1 flip row is fully
//    available (every probed flip epoch detects, heals or rolls back, and
//    converges bit-identically) with at least one scrub detection.
//
// The committed baseline lives at scripts/baselines/BENCH_rob01_sdc.json
// (regenerate: build/bench/rob01_sdc_scrub --seed 21 --json <path>).
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "fault/fault.hpp"
#include "graph/certify.hpp"
#include "graph/generators.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

/// Flip epochs for the fault matrix: early / mid / late barrier indices of
/// the default run, all past the first scrub pass's baseline (flips before
/// it are sealed into the baseline and can only fail loudly).
constexpr std::uint64_t kFlipEpochs[] = {8, 12, 16, 24, 40};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv, {.robust = true, .partition = true});
  const int nodes = a.nodes > 0 ? a.nodes : 4;
  const int threads = a.threads > 0 ? a.threads : 2;
  // Default matches the epoch-probed configuration (see kFlipEpochs); the
  // committed baseline pins --seed 21 on top.
  const std::uint64_t n = a.n ? a.n : 256;
  const std::uint64_t m = a.m ? a.m : 4 * n;
  const int mem_flips = a.mem_flips >= 0 ? a.mem_flips : 1;
  const bool certify = a.certify != 0;
  const std::vector<int> intervals =
      a.scrub_interval > 0 ? std::vector<int>{a.scrub_interval}
                           : std::vector<int>{1, 2, 4};
  preamble(a, "ROB-01",
           "SDC defense: availability and overhead vs scrub interval",
           "seeded bit flips into resident partitions are detected by the "
           "digest scrubber and healed or rolled back to a bit-identical "
           "answer; tighter scrub intervals buy availability with modeled "
           "scrub bandwidth");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Report rep(a, "rob01_sdc_scrub");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  rep.set_param("mem_flips", mem_flips);
  rep.set_param("certify", certify ? 1 : 0);

  const auto el = graph::random_graph(n, m, a.seed);
  int rc = 0;

  // --- scrub-off baseline ------------------------------------------------
  core::ParCCResult clean;
  {
    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &el);
    rep.attach(rt);
    clean = core::cc_coalesced(rt, el, {});
    rep.row("cc scrub-off clean", clean.costs);
  }
  const double t0 = clean.costs.modeled_ns;

  // --- zero-flip invariance ---------------------------------------------
  {
    fault::FaultInjector inj(
        fault::FaultConfig::parse("mem_flip_at=0", a.fault_seed));
    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &el);
    rep.attach(rt);
    rt.set_fault_injector(&inj);
    const auto r = core::cc_coalesced(rt, el, {});
    const bool same =
        r.labels == clean.labels && r.costs.modeled_ns == t0;
    rep.row("cc scrub-off zero-flip plan", r.costs,
            {{"bit_identical", same ? 1.0 : 0.0}});
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: zero-flip plan perturbed the scrub-off run\n");
      rc = 1;
    }
  }

  Table t({"config", "modeled", "overhead%", "avail", "det", "heal",
           "loud", "escapes"});
  t.add_row({"scrub-off clean", Table::eng(t0), "-", "-", "-", "-", "-",
             "-"});

  for (const int k : intervals) {
    core::CcOptions sopt;
    sopt.scrub_interval = k;

    // Clean scrubbed row: the price of the defense.
    double tk = 0.0;
    {
      pgas::Runtime rt(topo, params_for(n));
      apply_partition(rt, a, &el);
      rep.attach(rt);
      const auto r = core::cc_coalesced(rt, el, sopt);
      tk = r.costs.modeled_ns;
      const double overhead = (tk - t0) / t0 * 100.0;
      rep.row("cc scrub-" + std::to_string(k) + " clean", r.costs,
              {{"scrub_overhead_pct", overhead}});
      t.add_row({"scrub-" + std::to_string(k) + " clean", Table::eng(tk),
                 Table::num(overhead, 2), "-", "-", "-", "-", "-"});
      if (r.labels != clean.labels || !(tk > t0)) {
        std::fprintf(stderr,
                     "FAIL: scrub-%d clean run not label-identical or "
                     "not costlier than scrub-off\n",
                     k);
        rc = 1;
      }
    }

    // Flip matrix: one run per probed epoch under this interval.
    std::uint64_t available = 0, detected = 0, healed = 0, loud = 0,
                  escapes = 0, flips_total = 0, rollbacks = 0;
    double flip_ns_sum = 0.0;
    std::size_t runs = 0;
    for (const std::uint64_t e : kFlipEpochs) {
      ++runs;
      fault::FaultInjector inj(fault::FaultConfig::parse(
          "mem_flip_at=" + std::to_string(e) +
              ",mem_flips=" + std::to_string(mem_flips),
          a.fault_seed));
      pgas::Runtime rt(topo, params_for(n));
      apply_partition(rt, a, &el);
      rep.attach(rt);
      rt.set_fault_injector(&inj);
      bool survived = true;
      core::ParCCResult r;
      try {
        r = core::cc_coalesced(rt, el, sopt);
      } catch (const fault::FaultError&) {
        // Loud failure: corruption with no valid checkpoint/mirror.  The
        // run is lost but nothing wrong was ever published.
        survived = false;
      }
      flip_ns_sum += rt.modeled_time_ns();
      const auto c = inj.counters();
      flips_total += c.mem_flips;
      rollbacks += c.rollbacks;
      if (c.scrub_detected > 0) ++detected;
      if (c.scrub_heals > 0) ++healed;
      if (!survived) {
        ++loud;
        continue;
      }
      const bool identical = r.labels == clean.labels;
      if (identical) ++available;
      if (certify) {
        // Full-edge certification (samples=0): the last line of defense.
        // A wrong labelling that PASSES it escaped the whole chain.
        const auto cert = graph::certify_cc(el, r.labels,
                                            r.num_components, a.seed, 0);
        if (!identical && cert.ok) ++escapes;
      }
    }
    const double avail =
        runs > 0 ? static_cast<double>(available) / runs : 1.0;
    rep.row("cc scrub-" + std::to_string(k) + " flips",
            runs > 0 ? flip_ns_sum / runs : 0.0,
            {{"availability", avail},
             {"scrub_runs", static_cast<double>(runs)},
             {"scrub_detected_runs", static_cast<double>(detected)},
             {"scrub_healed_runs", static_cast<double>(healed)},
             {"scrub_loud_failures", static_cast<double>(loud)},
             {"scrub_rollbacks", static_cast<double>(rollbacks)},
             {"certify_escapes", static_cast<double>(escapes)},
             {"fault_mem_flips", static_cast<double>(flips_total)}});
    t.add_row({"scrub-" + std::to_string(k) + " flips",
               Table::eng(runs > 0 ? flip_ns_sum / runs : 0.0),
               Table::num((flip_ns_sum / runs - t0) / t0 * 100.0, 2),
               Table::num(avail, 2), std::to_string(detected),
               std::to_string(healed), std::to_string(loud),
               std::to_string(escapes)});

    if (escapes > 0) {
      std::fprintf(stderr,
                   "FAIL: %llu silent escape(s) at scrub interval %d — "
                   "wrong labels passed full certification\n",
                   static_cast<unsigned long long>(escapes), k);
      rc = 1;
    }
    if (flips_total == 0) {
      std::fprintf(stderr,
                   "FAIL: flip matrix landed no flips at interval %d\n", k);
      rc = 1;
    }
    if (k == 1 && (avail < 1.0 || detected == 0)) {
      std::fprintf(stderr,
                   "FAIL: interval-1 availability %.2f (want 1.0 with at "
                   "least one detection)\n",
                   avail);
      rc = 1;
    }
  }

  emit(a, t);
  const int frc = rep.finish();
  return rc != 0 ? rc : frc;
}
