// Figure 5: execution-time breakdown of CC under cumulative optimizations,
// random graph, 16 nodes x 8 threads.
//
// Paper (n=100M, m=400M): compact improves nearly every category; circular
// halves Comm; localcpy halves Copy; id slashes the local Work time.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

struct Step {
  const char* name;
  core::CcOptions opt;
};

std::vector<Step> cumulative_steps(int tprime) {
  std::vector<Step> steps;
  core::CcOptions o = core::CcOptions::base();
  o.coll.tprime = tprime;  // "base applies two levels of recursions"
  steps.push_back({"base", o});
  o.compact = true;
  steps.push_back({"+compact", o});
  o.coll.offload = true;
  steps.push_back({"+offload", o});
  o.coll.circular = true;
  steps.push_back({"+circular", o});
  o.coll.localcpy = true;
  steps.push_back({"+localcpy", o});
  o.coll.id_direct = true;
  o.coll.id_cache = true;
  steps.push_back({"+id", o});
  return steps;
}

}  // namespace

int run_breakdown(int argc, char** argv, const char* figure,
                  const char* family) {
  using pgraph::graph::EdgeList;
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const int threads = a.threads > 0 ? a.threads : 8;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  Report rep(a, std::string("fig0") + (std::string(family) == "hybrid"
                                           ? "6_opt_breakdown_hybrid"
                                           : "5_opt_breakdown_random"));
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  preamble(a, figure,
           std::string("CC optimization breakdown, ") + family +
               " graph, 16 nodes x 8 threads",
           "compact helps everywhere; circular ~halves Comm; localcpy "
           "~halves Copy; id slashes Work");

  const EdgeList el = std::string(family) == "hybrid"
                          ? graph::hybrid_graph(n, m, a.seed)
                          : graph::random_graph(n, m, a.seed);

  std::vector<std::string> header = {"config"};
  for (const auto& name : machine::kCatNames)
    header.emplace_back(name);
  header.emplace_back("total");
  Table t(header);

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  for (const Step& s : cumulative_steps(a.tprime > 0 ? a.tprime : 2)) {
    pgas::Runtime rt(topo, params_for(n));
    rep.attach(rt);
    const auto r = core::cc_coalesced(rt, el, s.opt);
    auto cells = breakdown_cells(r.costs.breakdown);
    cells.insert(cells.begin(), s.name);
    cells.push_back(Table::eng(r.costs.modeled_ns));
    t.add_row(std::move(cells));
    rep.row(s.name, r.costs,
            {{"iterations", static_cast<double>(r.iterations)},
             {"components", static_cast<double>(r.num_components)}});
  }
  emit(a, t);
  std::cout << "(graph: n=" << n << " m=" << m << ", " << nodes << "x"
            << threads << " threads; categories as in the paper's Fig. 5)\n";
  return rep.finish();
}

#ifndef PGRAPH_BREAKDOWN_NO_MAIN
int main(int argc, char** argv) {
  return run_breakdown(argc, argv, "Figure 5", "random");
}
#endif
