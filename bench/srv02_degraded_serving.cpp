// SRV-02: availability under injected faults, with and without the
// resilience layer (deadlines, retry budgets, circuit breakers, brownout
// degradation; see docs/SERVING.md "Degraded serving").
//
// Every row replays the same deadline-carrying workload against the same
// base graph; rows differ only in the fault plan and in whether
// ServerOptions::resilience is enabled ("raw" vs "res").  Fault plans are
// parsed with arm=0 and armed mid-service (after the single epoch publish,
// which models a maintenance window), so graph construction and the
// publish are clean and the fault window covers the serving tail.  The
// headline metric is on-time availability: the fraction of offered
// requests answered (Ok or Degraded) within their own deadline — late
// answers are SLO misses whether or not the server enforced the deadline —
// swept against fault intensity.
//
// Acceptance (exit 1 on failure):
//  - zero-fault invariance: with no plan, the resilience-on row produces
//    outcome-for-outcome identical results to the resilience-off row (the
//    layer costs nothing until a fault or an overload actually bites);
//  - availability(res) >= 0.95 on the default drop plan, and
//    availability(res) >= availability(raw) on every plan;
//  - the blackout plan trips at least one breaker, the loss plan triggers
//    at least one recovery republish, and no resilience-on row crashes;
//  - outcome conservation on every completed row:
//    offered == completed + shed + stale + degraded, with the shed split
//    (queue-full + breaker-open + deadline) summing to shed.
//
// The committed baseline lives at scripts/baselines/BENCH_srv02_degraded.json.
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "stream/dynamic_graph.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

struct Plan {
  std::string label;
  std::string spec;  ///< FaultConfig::parse key list; empty = no faults
};

struct RowResult {
  std::string label;
  std::string plan;
  bool resilient = false;
  bool crashed = false;
  double availability = 0.0;
  serve::ServeStats st;
  std::vector<serve::Outcome> outcomes;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv, {.serve = true, .partition = true});
  const int nodes = a.nodes > 0 ? a.nodes : 4;
  const int threads = a.threads > 0 ? a.threads : 2;
  const std::uint64_t n = a.n ? a.n : a.scaled(2500);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  const int sessions = a.sessions > 0 ? a.sessions : 6;
  const std::size_t requests = std::max<std::size_t>(60, a.scaled(450));
  preamble(a, "SRV-02",
           "degraded serving: availability vs fault intensity",
           "with deadlines, retry budgets, breakers and brownout the server "
           "keeps availability >= 95% under the default fault plan and "
           "never exceeds one epoch of staleness");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Report rep(a, "srv02_degraded_serving");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  rep.set_param("sessions", sessions);
  rep.set_param("requests", static_cast<double>(requests));

  // One base graph + one publish batch shared by every row.
  graph::TemporalStreamParams tp;
  tp.base_edges = m;
  const std::size_t ops_per_pub =
      std::max<std::size_t>(8, static_cast<std::size_t>(n) / 50);
  const auto ts = graph::temporal_stream(n, ops_per_pub, a.seed, tp);

  // Calibrate F = modeled ns of one single-key flush (srv01's yardstick).
  double flush_ns = 0.0;
  {
    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &ts.base);
    rep.attach(rt);
    stream::DynamicGraph dg(rt, ts.base);
    stream::QueryBatch probe;
    probe.same_component.push_back({0, n - 1});
    flush_ns = dg.query(probe).costs.modeled_ns;
  }
  std::cout << "calibrated single-key flush: " << Table::eng(flush_ns)
            << " (rates/window/deadline are multiples of it)\n";

  const double rate_rps =
      a.arrival_rate > 0.0 ? a.arrival_rate : 3e9 / flush_ns;
  const double window_ns =
      a.batch_window_ns >= 0.0 ? a.batch_window_ns : 6.0 * flush_ns;
  const double deadline_ns =
      a.deadline_ns > 0.0 ? a.deadline_ns : 100.0 * flush_ns;
  const double retry_budget = a.retry_budget >= 0.0 ? a.retry_budget : 4.0;
  const bool brownout = a.brownout != 0;

  // The sweep: no faults, the default drop intensity, a straggler storm,
  // rolling outages, a permanent node loss, and a near-blackout that
  // exhausts the runtime's retransmit ladder almost every flush.
  const std::vector<Plan> plans = {
      {"none", ""},
      {"drop", "drop=0.12,retries=3,arm=0"},
      {"straggle", "straggle=0.3,straggle_ns=80000,arm=0"},
      {"outage", "outage_every=6,outage_k=2,arm=0"},
      {"loss", "loss_at=1,loss_node=2,arm=0"},
      {"blackout", "drop=0.45,retries=1,arm=0"},
  };

  serve::WorkloadParams wp;
  wp.sessions = sessions;
  wp.rate_rps = rate_rps;
  wp.horizon_ns = static_cast<double>(requests) / rate_rps * 1e9;
  wp.zipf_s = a.skew >= 0.0 ? a.skew : 0.9;
  wp.size_mix = 0.5;
  wp.phase_ns = wp.horizon_ns / 6.0;
  wp.burst_on_frac = 0.6;

  Table t({"config", "offered", "ok", "degraded", "shed", "stale", "avail%",
           "trips", "recov", "crashed"});
  int rc = 0;
  std::vector<RowResult> rows;

  const auto run_row = [&](const Plan& plan, bool resilient) {
    // Both rows carry the same per-request deadlines (sampling is
    // stateless, so arrivals and keys are identical either way); only the
    // resilient row *enforces* them.  The raw row still gets scored
    // against them, so availability compares like with like.
    serve::WorkloadParams w = wp;
    w.deadline_ns = deadline_ns;
    const auto reqs = serve::generate_workload(n, a.seed, w);

    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &ts.base);
    rep.attach(rt);
    fault::FaultInjector inj(plan.spec.empty()
                                 ? fault::FaultConfig{}
                                 : fault::FaultConfig::parse(plan.spec,
                                                             a.fault_seed));
    if (!plan.spec.empty()) rt.set_fault_injector(&inj);
    stream::DynamicGraph dg(rt, ts.base);

    serve::ServerOptions so;
    so.window_ns = window_ns;
    so.max_batch = 512;
    so.max_queue = 64;
    so.cache = true;
    so.resilience.enabled = resilient;
    so.resilience.retry_tokens = retry_budget;
    so.resilience.brownout = brownout;
    // Queue-pressure brownout is sized above the zero-fault operating
    // point (sessions x max_queue bounds the backlog), so it engages only
    // when faults inflate service times — keeping the zero-fault res row
    // outcome-identical to the raw row.
    so.resilience.brownout_high =
        static_cast<std::size_t>(sessions) * so.max_queue + 16;
    so.resilience.brownout_low = so.resilience.brownout_high / 4;
    serve::QueryServer srv(dg, sessions, so);

    // One publish at 40% of the horizon (disarmed: a maintenance window),
    // then the fault plan arms and the tail of the workload serves through
    // it.  The publish also seeds the previous-epoch cache entries the
    // brownout path degrades to.
    const double publish_at = 0.4 * wp.horizon_ns;
    const double arm_at = 0.5 * wp.horizon_ns;
    RowResult r;
    r.label = plan.label + (resilient ? " res" : " raw");
    r.plan = plan.label;
    r.resilient = resilient;
    try {
      bool published = false;
      bool armed = false;
      for (const serve::Request& q : reqs) {
        if (!published && q.arrive_ns >= publish_at) {
          srv.publish(publish_at, ts.updates);
          published = true;
        }
        if (!armed && q.arrive_ns >= arm_at) {
          inj.set_armed(true);
          armed = true;
        }
        srv.offer(q);
      }
      r.st = srv.finish();
    } catch (const fault::FaultError&) {
      // The pre-resilience server tears down on the first escaped fault;
      // everything not yet answered counts against availability.
      r.crashed = true;
      r.st = srv.stats();
    }
    // Availability is ON-TIME availability: a request counts only if it
    // was answered (Ok or Degraded) within its own deadline.  The raw row
    // does not enforce deadlines, but late answers are SLO misses all the
    // same — crediting them would let "serve everything, arbitrarily
    // late" beat honest shedding.
    r.outcomes = srv.outcomes();
    std::size_t on_time = 0;
    for (std::size_t i = 0; i < r.outcomes.size() && i < reqs.size(); ++i) {
      const serve::Outcome& o = r.outcomes[i];
      const bool answered = o.status == serve::Status::Ok ||
                            o.status == serve::Status::Degraded;
      if (answered && o.done_ns <= o.arrive_ns + reqs[i].deadline_ns)
        ++on_time;
    }
    r.availability = reqs.empty() ? 1.0
                                  : static_cast<double>(on_time) /
                                        static_cast<double>(reqs.size());

    // Surface the mode/breaker transitions on the Chrome trace (dedicated
    // pseudo-process; see SuperstepTracer::note_instant).
    if (rep.tracer() != nullptr)
      for (const serve::ServeEvent& e : r.st.events)
        rep.tracer()->note_instant(
            std::string("serve.") + serve::serve_event_name(e.kind) +
                (e.tenant >= 0 ? " t" + std::to_string(e.tenant) : ""),
            e.t_ns);

    const serve::ServeStats& st = r.st;
    rep.row(r.label, st.service_ns + st.publish_ns,
            {{"offered", static_cast<double>(st.offered)},
             {"completed", static_cast<double>(st.completed)},
             {"degraded", static_cast<double>(st.degraded)},
             {"shed", static_cast<double>(st.shed)},
             {"stale", static_cast<double>(st.stale)},
             {"shed_queue_full", static_cast<double>(st.shed_queue_full)},
             {"shed_breaker_open",
              static_cast<double>(st.shed_breaker_open)},
             {"shed_deadline", static_cast<double>(st.shed_deadline)},
             {"availability", r.availability},
             {"crashed", r.crashed ? 1.0 : 0.0},
             {"flush_failures", static_cast<double>(st.flush_failures)},
             {"flush_retries", static_cast<double>(st.flush_retries)},
             {"retry_denied", static_cast<double>(st.retry_denied)},
             {"breaker_trips", static_cast<double>(st.breaker_trips)},
             {"breaker_half_opens",
              static_cast<double>(st.breaker_half_opens)},
             {"breaker_closes", static_cast<double>(st.breaker_closes)},
             {"brownout_enters", static_cast<double>(st.brownout_enters)},
             {"brownout_exits", static_cast<double>(st.brownout_exits)},
             {"deadline_misses", static_cast<double>(st.deadline_misses)},
             {"recoveries", static_cast<double>(st.recoveries)},
             {"service_ns", st.service_ns},
             {"failed_ns", st.failed_ns},
             {"recovery_ns", st.recovery_ns},
             {"latency_p50_ns", st.p50_ns},
             {"latency_p99_ns", st.p99_ns}});
    t.add_row({r.label, std::to_string(st.offered),
               std::to_string(st.completed), std::to_string(st.degraded),
               std::to_string(st.shed), std::to_string(st.stale),
               Table::num(100.0 * r.availability, 1),
               std::to_string(st.breaker_trips),
               std::to_string(st.recoveries), r.crashed ? "yes" : "no"});

    // Row-local conservation (completed rows only: a crashed raw row's
    // tail never retires).
    if (!r.crashed) {
      if (st.offered != st.completed + st.shed + st.stale + st.degraded) {
        std::fprintf(stderr,
                     "srv02: SELF-CHECK FAILED at %s: offered %llu != "
                     "completed %llu + shed %llu + stale %llu + degraded "
                     "%llu\n",
                     r.label.c_str(),
                     static_cast<unsigned long long>(st.offered),
                     static_cast<unsigned long long>(st.completed),
                     static_cast<unsigned long long>(st.shed),
                     static_cast<unsigned long long>(st.stale),
                     static_cast<unsigned long long>(st.degraded));
        rc = 1;
      }
      if (st.shed !=
          st.shed_queue_full + st.shed_breaker_open + st.shed_deadline) {
        std::fprintf(stderr,
                     "srv02: SELF-CHECK FAILED at %s: shed %llu != "
                     "queue-full %llu + breaker-open %llu + deadline %llu\n",
                     r.label.c_str(),
                     static_cast<unsigned long long>(st.shed),
                     static_cast<unsigned long long>(st.shed_queue_full),
                     static_cast<unsigned long long>(st.shed_breaker_open),
                     static_cast<unsigned long long>(st.shed_deadline));
        rc = 1;
      }
    }
    rows.push_back(std::move(r));
  };

  for (const Plan& plan : plans) {
    run_row(plan, /*resilient=*/false);
    run_row(plan, /*resilient=*/true);
  }

  // Sweep-level acceptance.
  const auto find_row = [&](const std::string& plan,
                            bool resilient) -> const RowResult* {
    for (const RowResult& r : rows)
      if (r.plan == plan && r.resilient == resilient) return &r;
    return nullptr;
  };

  // 1) Zero-fault invariance: the resilience layer is pay-for-what-you-use.
  {
    const RowResult* raw = find_row("none", false);
    const RowResult* res = find_row("none", true);
    if (raw != nullptr && res != nullptr) {
      bool same = !raw->crashed && !res->crashed &&
                  raw->outcomes.size() == res->outcomes.size();
      for (std::size_t i = 0; same && i < raw->outcomes.size(); ++i) {
        const serve::Outcome& x = raw->outcomes[i];
        const serve::Outcome& y = res->outcomes[i];
        same = x.status == y.status && x.answer == y.answer &&
               x.epoch == y.epoch && x.arrive_ns == y.arrive_ns &&
               x.start_ns == y.start_ns && x.done_ns == y.done_ns;
      }
      if (!same || raw->st.service_ns != res->st.service_ns) {
        std::fprintf(stderr,
                     "srv02: SELF-CHECK FAILED: zero-fault resilience-on "
                     "row diverged from the resilience-off row\n");
        rc = 1;
      }
    }
  }
  // 2) Availability floors.
  for (const Plan& plan : plans) {
    const RowResult* raw = find_row(plan.label, false);
    const RowResult* res = find_row(plan.label, true);
    if (raw == nullptr || res == nullptr) continue;
    if (res->availability + 1e-12 < raw->availability) {
      std::fprintf(stderr,
                   "srv02: SELF-CHECK FAILED at %s: resilience lowered "
                   "availability (%.4f < %.4f)\n",
                   plan.label.c_str(), res->availability, raw->availability);
      rc = 1;
    }
  }
  if (const RowResult* res = find_row("drop", true);
      res != nullptr && res->availability < 0.95) {
    std::fprintf(stderr,
                 "srv02: SELF-CHECK FAILED: availability %.4f < 0.95 under "
                 "the default drop plan with resilience on\n",
                 res->availability);
    rc = 1;
  }
  // 3) The machinery actually engaged where it should.
  if (const RowResult* res = find_row("blackout", true);
      res != nullptr && res->st.breaker_trips == 0) {
    std::fprintf(stderr,
                 "srv02: SELF-CHECK FAILED: the blackout plan tripped no "
                 "breaker\n");
    rc = 1;
  }
  if (const RowResult* res = find_row("loss", true);
      res != nullptr && res->st.recoveries == 0) {
    std::fprintf(stderr,
                 "srv02: SELF-CHECK FAILED: the loss plan triggered no "
                 "recovery republish\n");
    rc = 1;
  }
  for (const RowResult& r : rows) {
    if (r.resilient && r.crashed) {
      std::fprintf(stderr,
                   "srv02: SELF-CHECK FAILED at %s: a resilience-on row "
                   "crashed\n",
                   r.label.c_str());
      rc = 1;
    }
  }

  emit(a, t);
  std::cout << "(graph: n=" << n << " base m=" << m << ", " << nodes
            << " nodes x " << threads << " threads, " << sessions
            << " sessions, ~" << requests << " requests per row; deadline "
            << Table::eng(deadline_ns) << ", retry budget "
            << Table::num(retry_budget, 0) << ", brownout "
            << (brownout ? "on" : "off") << ")\n";
  const int json_rc = rep.finish();
  return rc != 0 ? rc : json_rc;
}
