// Google-benchmark microbenchmarks of the building blocks: counting sort,
// Algorithm 1 gathers, the cache simulator, and the sequential baselines.
// These measure the *host* performance of the simulator substrate itself
// (real wall time, not modeled time).
#include <benchmark/benchmark.h>

#include "core/cc_seq.hpp"
#include "core/dsu.hpp"
#include "core/mst_seq.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "machine/cache_sim.hpp"
#include "sched/access_sched.hpp"
#include "sched/count_sort.hpp"

using namespace pgraph;

static void BM_CountSort(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t buckets = 256;
  graph::Xoshiro256 rng(1);
  std::vector<std::uint64_t> in(m), sorted(m);
  std::vector<std::uint32_t> rank(m);
  std::vector<std::size_t> off;
  for (auto& x : in) x = rng.next_below(buckets);
  for (auto _ : state) {
    sched::count_sort<std::uint64_t>(
        in, [](std::uint64_t x) { return static_cast<std::size_t>(x); },
        buckets, sorted, rank, off);
    benchmark::DoNotOptimize(sorted.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m) * state.iterations());
}
BENCHMARK(BM_CountSort)->Arg(1 << 14)->Arg(1 << 18);

static void BM_DirectGather(benchmark::State& state) {
  const std::size_t n = 1 << 18, m = 1 << 18;
  graph::Xoshiro256 rng(2);
  std::vector<std::uint64_t> d(n), r(m), out(m);
  for (auto& x : d) x = rng.next();
  for (auto& x : r) x = rng.next_below(n);
  for (auto _ : state) {
    sched::direct_gather(d, r, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m) * state.iterations());
}
BENCHMARK(BM_DirectGather);

static void BM_ScheduledGather(benchmark::State& state) {
  const std::size_t n = 1 << 18, m = 1 << 18;
  graph::Xoshiro256 rng(2);
  std::vector<std::uint64_t> d(n), r(m), out(m);
  for (auto& x : d) x = rng.next();
  for (auto& x : r) x = rng.next_below(n);
  const std::vector<std::size_t> ws = {
      static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    sched::scheduled_gather(d, r, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(m) * state.iterations());
}
BENCHMARK(BM_ScheduledGather)->Arg(16)->Arg(64)->Arg(256);

static void BM_CacheSimAccess(benchmark::State& state) {
  machine::CacheSim sim(1 << 16, 64, 8);
  graph::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.access(rng.next_below(1 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

static void BM_CcDsu(benchmark::State& state) {
  const auto el = graph::random_graph(1 << 16, 1 << 18, 4);
  for (auto _ : state) {
    auto r = core::cc_dsu(el);
    benchmark::DoNotOptimize(r.num_components);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_CcDsu);

static void BM_MstKruskal(benchmark::State& state) {
  const auto el =
      graph::with_random_weights(graph::random_graph(1 << 14, 1 << 16, 5), 6);
  for (auto _ : state) {
    auto r = core::mst_kruskal(el);
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_MstKruskal);

static void BM_HybridGenerator(benchmark::State& state) {
  for (auto _ : state) {
    auto el = graph::hybrid_graph(1 << 14, 1 << 16, 7);
    benchmark::DoNotOptimize(el.edges.data());
  }
}
BENCHMARK(BM_HybridGenerator);

BENCHMARK_MAIN();
