// Ablation H: the paper's future-work fix (Section VI) — "the thread-
// process hierarchy is exposed to the runtime, and the AlltoAll collective
// does not have to involve s = p x t threads in communication across the
// network.  Instead, it may involve only p processes."
//
// We re-run the Figure-7 sweep with hierarchical collectives: the
// SMatrix/PMatrix tiles travel as p^2 coalesced messages and the data is
// combined per node pair, so the t=16 collapse disappears.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  preamble(a, "Ablation H",
           "flat vs hierarchical collectives across threads/node "
           "(the paper's Section-VI proposal, implemented)",
           "hierarchical removes the s^2 small-message burst: t=16 no "
           "longer collapses");

  const auto el = graph::random_graph(n, m, a.seed);

  Report rep(a, "abl08_hierarchical");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
  rep.attach(smp);
  const auto smp_r = core::cc_smp(smp, el);
  rep.row("CC-SMP(16)", smp_r.costs);

  Table t({"threads/node", "flat", "flat vs SMP", "hierarchical",
           "hier vs SMP", "flat fine msgs", "hier fine msgs"});
  for (const int th : {1, 4, 8, 16}) {
    pgas::Runtime rt1(pgas::Topology::cluster(nodes, th), params_for(n));
    rep.attach(rt1);
    const auto flat = core::cc_coalesced(rt1, el);
    const auto flat_fine = rt1.net().fine_messages();
    rep.row("flat t=" + std::to_string(th), flat.costs);

    core::CcOptions hopt = core::CcOptions::optimized();
    hopt.coll.hierarchical = true;
    pgas::Runtime rt2(pgas::Topology::cluster(nodes, th), params_for(n));
    rep.attach(rt2);
    const auto hier = core::cc_coalesced(rt2, el, hopt);
    const auto hier_fine = rt2.net().fine_messages();
    rep.row("hier t=" + std::to_string(th), hier.costs,
            {{"vs_flat", flat.costs.modeled_ns / hier.costs.modeled_ns}});

    t.add_row({std::to_string(th), Table::eng(flat.costs.modeled_ns),
               ratio(smp_r.costs.modeled_ns, flat.costs.modeled_ns),
               Table::eng(hier.costs.modeled_ns),
               ratio(smp_r.costs.modeled_ns, hier.costs.modeled_ns),
               std::to_string(flat_fine), std::to_string(hier_fine)});
  }
  emit(a, t);
  std::cout << "(graph: n=" << n << " m=" << m
            << "; both verified against union-find during tests)\n";
  return rep.finish();
}
