// Headline table (abstract / Section VI numbers): best speedups of the
// optimized PGAS implementations over the best single-node SMP
// implementation and the best sequential implementation, for CC and MST,
// on random and hybrid graphs at both densities.
//
// Paper: CC up to 3x SMP / ~10.1x seq (random); hybrid 2.5x & 2.8x SMP,
// ~9x & ~10x seq.  MST up to 5.5x / 10.2x; hybrid 5.1x & 6.7x over seq.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"
#include "core/cc_seq.hpp"
#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "core/mst_smp.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const int threads = a.threads > 0 ? a.threads : 8;  // paper's best point
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  preamble(a, "Headline table",
           "best speedups of optimized PGAS CC/MST at 16 nodes x 8 threads",
           "CC: 2.2-3x SMP, 9-11x seq; MST: 5.5-10.2x; hybrid in the same "
           "range (no hub penalty)");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  const machine::MemoryModel mm(params_for(n));
  Table t({"problem", "graph", "PGAS", "SMP(16)", "sequential", "vs SMP",
           "vs seq"});

  Report rep(a, "tab01_headline_speedups");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  for (const auto& [family, density] :
       {std::pair{"random", 4}, {"random", 10}, {"hybrid", 4},
        {"hybrid", 10}}) {
    const std::uint64_t m = n * static_cast<std::uint64_t>(density);
    const auto el = std::string(family) == "hybrid"
                        ? graph::hybrid_graph(n, m, a.seed)
                        : graph::random_graph(n, m, a.seed);
    const std::string label = std::string(family) + " m/n=" +
                              std::to_string(density);

    {  // CC
      pgas::Runtime rt(topo, params_for(n));
      rep.attach(rt);
      const auto r =
          core::cc_coalesced(rt, el, core::CcOptions::optimized());
      pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
      const auto s = core::cc_smp(smp, el);
      const auto q = core::cc_bfs(el, &mm);
      t.add_row({"CC", label, Table::eng(r.costs.modeled_ns),
                 Table::eng(s.costs.modeled_ns), Table::eng(q.modeled_ns),
                 ratio(s.costs.modeled_ns, r.costs.modeled_ns),
                 ratio(q.modeled_ns, r.costs.modeled_ns)});
      rep.row("CC " + label, r.costs,
              {{"speedup_vs_smp", s.costs.modeled_ns / r.costs.modeled_ns},
               {"speedup_vs_seq", q.modeled_ns / r.costs.modeled_ns}});
    }
    {  // MST
      const auto wel = graph::with_random_weights(el, a.seed + 1);
      pgas::Runtime rt(topo, params_for(n));
      rep.attach(rt);
      const auto r =
          core::mst_pgas(rt, wel, core::MstOptions::optimized());
      pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
      const auto s = core::mst_smp(smp, wel);
      const auto q = core::mst_kruskal(wel, &mm);
      if (r.total_weight != q.total_weight || s.total_weight != q.total_weight)
        std::cerr << "WEIGHT MISMATCH on " << label << "\n";
      t.add_row({"MST", label, Table::eng(r.costs.modeled_ns),
                 Table::eng(s.costs.modeled_ns), Table::eng(q.modeled_ns),
                 ratio(s.costs.modeled_ns, r.costs.modeled_ns),
                 ratio(q.modeled_ns, r.costs.modeled_ns)});
      rep.row("MST " + label, r.costs,
              {{"speedup_vs_smp", s.costs.modeled_ns / r.costs.modeled_ns},
               {"speedup_vs_seq", q.modeled_ns / r.costs.modeled_ns}});
    }
  }
  emit(a, t);
  return rep.finish();
}
