#pragma once

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/par_common.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "machine/cost_params.hpp"
#include "partition/partitioning.hpp"
#include "pgas/runtime.hpp"
#include "trace/bench_json.hpp"
#include "trace/tracer.hpp"

namespace pgraph::bench {

using harness::BenchArgs;
using harness::Table;

/// The paper's cluster: 16 nodes x 16 CPUs.
inline constexpr int kPaperNodes = 16;

inline machine::CostParams params() {
  return machine::CostParams::hps_cluster();
}

/// Scale the modeled cache with the (scaled-down) input so the
/// working-set-to-cache ratio matches the paper's platform: 100M vertices
/// (800 MB of labels) against a ~1.9 MB L2 is a ratio of ~420.  Without
/// this, a laptop-scale n would fit in the modeled L2 and every cache
/// effect the paper measures would vanish.
inline machine::CostParams params_for(std::uint64_t n_vertices) {
  machine::CostParams p = machine::CostParams::hps_cluster();
  const std::uint64_t scaled = n_vertices * 8 / 420;
  p.cache_bytes = static_cast<std::size_t>(
      std::clamp<std::uint64_t>(scaled, 4096, 1u << 21));
  return p;
}

inline machine::CostParams smp_params_for(std::uint64_t n_vertices) {
  machine::CostParams p = params_for(n_vertices);
  p.preset = "smp-node";
  return p;
}

inline void preamble(const BenchArgs& a, const std::string& figure,
                     const std::string& caption,
                     const std::string& expectation) {
  harness::banner(std::cout, figure + " — " + caption);
  std::cout << "cost preset: " << params().preset
            << "   (scale=" << a.scale << ", seed=" << a.seed << ")\n"
            << "paper expectation: " << expectation << "\n";
}

inline void emit(const BenchArgs& a, const Table& t) {
  if (a.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cout.flush();
}

/// Per-category breakdown cells (Fig. 5/6 stacked-bar data).
inline std::vector<std::string> breakdown_cells(
    const machine::PhaseStats& st) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < machine::kNumCats; ++i)
    out.push_back(Table::eng(st.get(static_cast<machine::Cat>(i))));
  return out;
}

inline std::string ratio(double num, double den) {
  return den > 0 ? Table::num(num / den, 2) + "x" : "-";
}

/// Install the --partition policy on a freshly constructed runtime.  No-op
/// without the flag, so default runs stay on the block fast path (and byte-
/// identical to the committed baselines).  The degree-aware scheme needs
/// the edge list whose degree histogram drives the cut; callers without one
/// pass nullptr and Partitioning::make falls back to block (the spec's
/// n_hint gating, see docs/PARTITIONING.md).
inline void apply_partition(pgas::Runtime& rt, const BenchArgs& a,
                            const graph::EdgeList* el = nullptr) {
  if (a.partition.empty()) return;
  partition::PartitionSpec spec;
  if (!partition::PartitionSpec::parse(a.partition, spec).empty())
    return;  // unreachable: the spelling was validated at arg-parse time
  if (spec.kind == partition::PartitionKind::Degree && el != nullptr)
    spec = spec.with_degrees(graph::degree_histogram(*el));
  rt.set_partition_spec(spec);
}

/// Machine-readable reporting for a bench run: collects one BenchRow per
/// configuration, and — when --trace or --json is given — attaches a
/// SuperstepTracer to every runtime so rows carry per-superstep bottleneck
/// attribution and the whole run exports a Perfetto trace.
///
/// Usage per bench:
///   Report rep(a, "fig05_opt_breakdown_random");
///   rep.set_param("n", n); ...
///   for each configuration { Runtime rt(...); rep.attach(rt); run;
///                            rep.row(label, costs, {{"speedup", x}}); }
///   return rep.finish();
class Report {
 public:
  using Extra = std::vector<std::pair<std::string, double>>;

  Report(const BenchArgs& a, std::string bench_name) : args_(a) {
    rep_.bench = std::move(bench_name);
    // --digest needs the tracer too: digests flow runtime -> superstep
    // records -> rows, even when neither --json nor --trace is given (the
    // run still validates determinism; finish() just writes no file).
    if (!args_.json_path.empty() || !args_.trace_path.empty() || args_.digest)
      tracer_ = std::make_unique<trace::SuperstepTracer>();
    if (!args_.faults.empty())
      injector_ = std::make_unique<fault::FaultInjector>(
          fault::FaultConfig::parse(args_.faults, args_.fault_seed));
  }

  bool enabled() const { return tracer_ != nullptr; }
  trace::SuperstepTracer* tracer() { return tracer_.get(); }
  fault::FaultInjector* injector() { return injector_.get(); }

  void set_param(const std::string& key, double v) { rep_.set_param(key, v); }

  /// Start recording `rt` (no-op without --json/--trace, so benches call
  /// this unconditionally after constructing each runtime).
  void attach(pgas::Runtime& rt) {
    if (rep_.preset.empty()) rep_.preset = rt.params().preset;
    if (injector_) {
      rt.set_fault_injector(injector_.get());
      // Attaching resets the injector's counters; re-baseline the per-row
      // delta origin or the first row after a re-attach would underflow.
      prev_faults_ = injector_->counters();
    }
    rt.set_digest_enabled(args_.digest);
    if (tracer_) tracer_->attach(rt);
  }

  void row(const std::string& label, const core::RunCosts& c,
           Extra extra = {}) {
    trace::BenchRow r;
    r.label = label;
    r.modeled_ns = c.modeled_ns;
    r.wall_ms = c.wall_s * 1e3;
    r.set_breakdown(c.breakdown);
    r.messages = c.messages;
    r.fine_messages = c.fine_messages;
    r.bytes = c.bytes;
    r.barriers = c.barriers;
    r.extra = std::move(extra);
    append_fault_extras(r.extra);
    if (tracer_) {
      r.attribution = tracer_->take_row_attribution();
      r.digests = tracer_->take_row_digests();
    }
    rep_.rows.push_back(std::move(r));
  }

  /// Row without a full RunCosts (benches that only track modeled time).
  void row(const std::string& label, double modeled_ns, Extra extra = {}) {
    trace::BenchRow r;
    r.label = label;
    r.modeled_ns = modeled_ns;
    r.extra = std::move(extra);
    append_fault_extras(r.extra);
    if (tracer_) {
      r.attribution = tracer_->take_row_attribution();
      r.digests = tracer_->take_row_digests();
    }
    rep_.rows.push_back(std::move(r));
  }

  /// Write the requested outputs; returns a main()-style exit code.
  int finish() {
    int rc = 0;
    if (tracer_) rep_.attribution = tracer_->total_attribution();
    if (!args_.json_path.empty()) {
      if (rep_.write_file(args_.json_path)) {
        std::cout << "bench json: " << args_.json_path << "\n";
      } else {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args_.json_path.c_str());
        rc = 1;
      }
    }
    if (!args_.trace_path.empty()) {
      if (tracer_->write_chrome_trace_file(args_.trace_path)) {
        std::cout << "trace: " << args_.trace_path
                  << " (load in Perfetto / chrome://tracing)\n";
      } else {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args_.trace_path.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  /// Fault counters of this row, as deltas against the previous row (the
  /// injector accumulates across the whole bench).  Rides in `extra`, so
  /// the JSON schema is unchanged and fault-free reports are unchanged.
  void append_fault_extras(Extra& extra) {
    if (!injector_) return;
    const fault::FaultCounters c = injector_->counters();
    const auto d = [&](const char* key, std::uint64_t now,
                       std::uint64_t before) {
      extra.emplace_back(key, static_cast<double>(now - before));
    };
    d("fault_drops", c.drops, prev_faults_.drops);
    d("fault_dups", c.duplicates, prev_faults_.duplicates);
    d("fault_delays", c.delays, prev_faults_.delays);
    d("fault_outage_drops", c.outage_drops, prev_faults_.outage_drops);
    d("fault_retransmits", c.retransmits, prev_faults_.retransmits);
    d("fault_corruptions", c.corruptions, prev_faults_.corruptions);
    d("fault_detected", c.detected, prev_faults_.detected);
    d("fault_repairs", c.repairs, prev_faults_.repairs);
    d("fault_straggles", c.straggles, prev_faults_.straggles);
    d("fault_outages", c.outage_events, prev_faults_.outage_events);
    d("fault_rollbacks", c.rollbacks, prev_faults_.rollbacks);
    d("fault_checkpoints", c.checkpoints, prev_faults_.checkpoints);
    d("fault_retry_wait_ns", c.retry_wait_ns, prev_faults_.retry_wait_ns);
    d("fault_loss_drops", c.loss_drops, prev_faults_.loss_drops);
    d("fault_shrinks", c.loss_events, prev_faults_.loss_events);
    d("fault_replications", c.replications, prev_faults_.replications);
    d("fault_replica_bytes", c.replica_bytes, prev_faults_.replica_bytes);
    d("fault_promoted_bytes", c.promoted_bytes, prev_faults_.promoted_bytes);
    d("fault_mem_flips", c.mem_flips, prev_faults_.mem_flips);
    d("scrub_passes", c.scrub_passes, prev_faults_.scrub_passes);
    d("scrub_detected", c.scrub_detected, prev_faults_.scrub_detected);
    d("scrub_heals", c.scrub_heals, prev_faults_.scrub_heals);
    d("scrub_events", c.scrub_events, prev_faults_.scrub_events);
    prev_faults_ = c;
  }

  const BenchArgs args_;
  trace::BenchReport rep_;
  std::unique_ptr<trace::SuperstepTracer> tracer_;
  std::unique_ptr<fault::FaultInjector> injector_;
  fault::FaultCounters prev_faults_;
};

}  // namespace pgraph::bench
