#pragma once

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/par_common.hpp"
#include "graph/generators.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "machine/cost_params.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::bench {

using harness::BenchArgs;
using harness::Table;

/// The paper's cluster: 16 nodes x 16 CPUs.
inline constexpr int kPaperNodes = 16;

inline machine::CostParams params() {
  return machine::CostParams::hps_cluster();
}

/// Scale the modeled cache with the (scaled-down) input so the
/// working-set-to-cache ratio matches the paper's platform: 100M vertices
/// (800 MB of labels) against a ~1.9 MB L2 is a ratio of ~420.  Without
/// this, a laptop-scale n would fit in the modeled L2 and every cache
/// effect the paper measures would vanish.
inline machine::CostParams params_for(std::uint64_t n_vertices) {
  machine::CostParams p = machine::CostParams::hps_cluster();
  const std::uint64_t scaled = n_vertices * 8 / 420;
  p.cache_bytes = static_cast<std::size_t>(
      std::clamp<std::uint64_t>(scaled, 4096, 1u << 21));
  return p;
}

inline machine::CostParams smp_params_for(std::uint64_t n_vertices) {
  machine::CostParams p = params_for(n_vertices);
  p.preset = "smp-node";
  return p;
}

inline void preamble(const BenchArgs& a, const std::string& figure,
                     const std::string& caption,
                     const std::string& expectation) {
  harness::banner(std::cout, figure + " — " + caption);
  std::cout << "cost preset: " << params().preset
            << "   (scale=" << a.scale << ", seed=" << a.seed << ")\n"
            << "paper expectation: " << expectation << "\n";
}

inline void emit(const BenchArgs& a, const Table& t) {
  if (a.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cout.flush();
}

/// Per-category breakdown cells (Fig. 5/6 stacked-bar data).
inline std::vector<std::string> breakdown_cells(
    const machine::PhaseStats& st) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < machine::kNumCats; ++i)
    out.push_back(Table::eng(st.get(static_cast<machine::Cat>(i))));
  return out;
}

inline std::string ratio(double num, double den) {
  return den > 0 ? Table::num(num / den, 2) + "x" : "-";
}

}  // namespace pgraph::bench
