// Figure 4: CC performance vs the virtual-thread factor t' on a single SMP
// node (16 threads), relative to the prior SMP implementation.
//
// Paper (n=100M/m=400M, n=100M/m=1G, n=200M/m=800M): with t'=1 the
// collective-based CC already beats CC-SMP; the curve is U-shaped with the
// best t' at 12-18, where it is nearly 2x faster than CC-SMP.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int threads = a.threads > 0 ? a.threads : 16;
  preamble(a, "Figure 4",
           "CC (collectives) vs t' on one SMP node, relative to CC-SMP",
           "U-shaped curve peaking where one sub-block fits the cache "
           "(paper hardware: t'=12-18; with this build's scaled cache "
           "ratio the knee lands at t'~26-32), then turns back up");

  struct G {
    std::uint64_t n, m;
    const char* label;
  };
  const G cases[] = {{1u << 18, 4u << 18, "n=256K m/n=4"},
                     {1u << 18, 10u << 18, "n=256K m/n=10"},
                     {1u << 19, 4u << 19, "n=512K m/n=4"}};
  const int tprimes[] = {1, 2, 4, 8, 12, 16, 18, 24, 32, 48, 64};


  std::vector<std::string> header = {"t'"};
  for (const G& c : cases) header.push_back(std::string(c.label) + " (SMP/t')");
  Table t(header);

  Report rep(a, "fig04_virtual_threads");
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  std::vector<double> smp_ns;
  for (const G& c : cases) {
    const auto el =
        graph::random_graph(a.scaled(c.n), a.scaled(c.m), a.seed);
    pgas::Runtime smp(pgas::Topology::single_node(threads),
                      smp_params_for(a.scaled(c.n)));
    rep.attach(smp);
    const auto r = core::cc_smp(smp, el);
    smp_ns.push_back(r.costs.modeled_ns);
    rep.row(std::string("smp ") + c.label, r.costs);
  }

  for (const int tp : tprimes) {
    std::vector<std::string> row = {std::to_string(tp)};
    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
      const G& c = cases[ci];
      const auto el =
          graph::random_graph(a.scaled(c.n), a.scaled(c.m), a.seed);
      pgas::Runtime rt(pgas::Topology::single_node(threads),
                       smp_params_for(a.scaled(c.n)));
      rep.attach(rt);
      auto opt = core::CcOptions::optimized(tp);
      const auto r = core::cc_coalesced(rt, el, opt);
      row.push_back(ratio(smp_ns[ci], r.costs.modeled_ns));
      rep.row("t'=" + std::to_string(tp) + " " + c.label, r.costs,
              {{"speedup_vs_smp", smp_ns[ci] / r.costs.modeled_ns}});
    }
    t.add_row(std::move(row));
  }
  emit(a, t);
  std::cout << "(values > 1 mean CC-with-collectives beats CC-SMP; one "
            << "node, " << threads << " threads)\n";
  return rep.finish();
}
