// PART-01: partition-policy sweep over a power-law graph.
//
// A block layout assigns the hot low-id vertex range (where the power-law
// hubs live) to one owner thread, whose NIC serializes the getd/setd
// exchange while every other NIC idles — the hot-owner collapse.  A
// degree-aware layout cuts the weighted degree prefix into equal-load
// ranges, restoring balanced per-owner NIC occupancy at identical results
// (docs/PARTITIONING.md; EXPERIMENTS.md "Skew and partitioning").
#include <cmath>

#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "graph/rng.hpp"
#include "graph/stats.hpp"
#include "partition/partitioning.hpp"
#include "trace/tracer.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

/// Power-law edge list with hubs clustered at LOW vertex ids: endpoint u is
/// drawn as floor(n * x^4) (density ~ u^(-3/4), heavy at 0), v uniform.
/// The id clustering is the point — it makes the skew land on one block
/// owner, which is exactly the layout hazard this bench measures.
graph::EdgeList powerlaw_graph(std::size_t n, std::size_t m,
                               std::uint64_t seed) {
  graph::EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  graph::Xoshiro256 rng(seed);
  while (el.edges.size() < m) {
    const double x = rng.next_double();
    const auto u = static_cast<graph::VertexId>(
        static_cast<double>(n) * x * x * x * x);
    const graph::VertexId v = rng.next_below(n);
    if (u == v || u >= n) continue;
    el.edges.push_back({u, v});
  }
  return el;
}

struct Scheme {
  const char* label;
  const char* spec_text;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a =
      BenchArgs::parse(argc, argv, {.partition = true});
  const int nodes = a.nodes > 0 ? a.nodes : 4;
  const int threads = a.threads > 0 ? a.threads : 2;
  const std::uint64_t n = a.n ? a.n : a.scaled(3000);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  preamble(a, "PART-01",
           "CC over a power-law graph under block / cyclic / block-cyclic "
           "/ degree-aware partitioning",
           "block collapses onto one hot owner NIC; degree-aware restores "
           "balanced owner load at bit-identical labels");

  Report rep(a, "part01_skew_scaling");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  const graph::EdgeList el = powerlaw_graph(n, m, a.seed);
  const std::vector<std::uint32_t> deg = graph::degree_histogram(el);
  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);

  // Sweep the four schemes, or just the one the user asked for.
  std::vector<Scheme> schemes = {{"block", "block"},
                                 {"cyclic", "cyclic"},
                                 {"block_cyclic:16", "block_cyclic:16"},
                                 {"degree", "degree"}};
  if (!a.partition.empty())
    schemes = {{a.partition.c_str(), a.partition.c_str()}};

  Table t({"partition", "modeled", "skew max/mean", "hot NIC share",
           "iterations", "components"});
  std::vector<std::uint64_t> block_labels;
  double block_ns = 0.0, degree_ns = 0.0;
  double block_skew = 0.0, degree_skew = 0.0;
  bool labels_diverge = false;

  for (const Scheme& sc : schemes) {
    partition::PartitionSpec spec;
    const std::string perr =
        partition::PartitionSpec::parse(sc.spec_text, spec);
    if (!perr.empty()) {
      std::fprintf(stderr, "part01: %s\n", perr.c_str());
      return 2;
    }
    if (spec.kind == partition::PartitionKind::Degree)
      spec = spec.with_degrees(deg);

    pgas::Runtime rt(topo, params_for(n));
    rt.set_partition_spec(spec);
    rep.attach(rt);
    const std::size_t steps_before =
        rep.enabled() ? rep.tracer()->supersteps().size() : 0;

    core::CcOptions opt = core::CcOptions::optimized();
    opt.coll.tprime = a.tprime > 0 ? a.tprime : 0;
    const core::ParCCResult r = core::cc_coalesced(rt, el, opt);

    const graph::OwnerLoadStats ls =
        graph::owner_load_stats(el, rt.make_partitioning(n));

    // Per-owner-node NIC occupancy over this row's supersteps: the modeled
    // fine-grained drain plus the exchange sweep's send/recv busy time.
    double nic_max = 0.0, nic_sum = 0.0;
    int nic_nodes = 0;
    if (rep.enabled()) {
      std::vector<double> per_node;
      const auto& steps = rep.tracer()->supersteps();
      for (std::size_t i = steps_before; i < steps.size(); ++i) {
        const auto& nds = steps[i].nodes;
        if (per_node.size() < nds.size()) per_node.resize(nds.size(), 0.0);
        for (std::size_t nd = 0; nd < nds.size(); ++nd)
          per_node[nd] += nds[nd].nic.service_ns +
                          nds[nd].exch.send_busy_ns +
                          nds[nd].exch.recv_busy_ns;
      }
      for (const double v : per_node) {
        nic_max = std::max(nic_max, v);
        nic_sum += v;
      }
      nic_nodes = static_cast<int>(per_node.size());
    }
    const double nic_share = nic_sum > 0.0 ? nic_max / nic_sum : 0.0;

    Report::Extra extra = {
        {"skew_max_edges", static_cast<double>(ls.max_edge_load)},
        {"skew_mean_edges", ls.mean_edge_load},
        {"skew_max_over_mean", ls.max_over_mean},
        {"skew_hot_share", ls.hot_share},
        {"iterations", static_cast<double>(r.iterations)},
        {"components", static_cast<double>(r.num_components)},
    };
    if (rep.enabled()) {
      extra.emplace_back("nic_hot_share", nic_share);
      extra.emplace_back("nic_max_ns", nic_max);
      extra.emplace_back("nic_mean_ns",
                         nic_nodes > 0 ? nic_sum / nic_nodes : 0.0);
    }
    rep.row(sc.label, r.costs, std::move(extra));

    t.add_row({sc.label, Table::eng(r.costs.modeled_ns),
               Table::num(ls.max_over_mean), Table::num(nic_share, 3),
               std::to_string(r.iterations),
               std::to_string(r.num_components)});

    // Self-checks: every scheme must produce the same labeling, and the
    // degree-aware cut must beat block on this skewed input.
    if (std::string(sc.label) == "block") {
      block_labels = r.labels;
      block_ns = r.costs.modeled_ns;
      block_skew = ls.max_over_mean;
    } else if (!block_labels.empty() && r.labels != block_labels) {
      labels_diverge = true;
    }
    if (std::string(sc.label) == "degree") {
      degree_ns = r.costs.modeled_ns;
      degree_skew = ls.max_over_mean;
    }
  }

  emit(a, t);
  std::cout << "(power-law graph: n=" << n << " m=" << m << ", " << nodes
            << "x" << threads << " threads; hubs at low ids)\n";

  int rc = rep.finish();
  if (labels_diverge) {
    std::fprintf(stderr,
                 "part01: FAIL — labelings diverge across partitionings\n");
    rc = 1;
  }
  if (block_ns > 0.0 && degree_ns > 0.0) {
    if (!(degree_skew < block_skew)) {
      std::fprintf(stderr,
                   "part01: FAIL — degree-aware owner skew %.3f not below "
                   "block %.3f\n",
                   degree_skew, block_skew);
      rc = 1;
    }
    if (!(degree_ns < block_ns)) {
      std::fprintf(stderr,
                   "part01: FAIL — degree-aware modeled time %.3e not below "
                   "block %.3e on the skewed input\n",
                   degree_ns, block_ns);
      rc = 1;
    }
  }
  return rc;
}
