// Google-benchmark microbenchmarks of the GetD/SetD/SetDMin collectives
// (host wall time of the simulation, small topologies).
#include <benchmark/benchmark.h>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "graph/rng.hpp"
#include "machine/cost_params.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

namespace {

void run_collective_bench(benchmark::State& state, bool is_get) {
  const int nodes = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const std::size_t n = 1 << 16;
  const std::size_t per_thread = 1 << 12;
  pgas::Runtime rt(pgas::Topology::cluster(nodes, threads),
                   machine::CostParams::hps_cluster());
  pgas::GlobalArray<std::uint64_t> d(rt, n);
  coll::CollectiveContext cc(rt);
  const auto opt = coll::CollectiveOptions::optimized(4);
  for (auto _ : state) {
    rt.run([&](pgas::ThreadCtx& ctx) {
      graph::Xoshiro256 rng(11 + ctx.id());
      std::vector<std::uint64_t> idx(per_thread), buf(per_thread);
      for (auto& x : idx) x = rng.next_below(n);
      coll::CollWorkspace<std::uint64_t> ws;
      if (is_get) {
        coll::getd(ctx, d, idx, std::span<std::uint64_t>(buf), opt, cc, ws);
      } else {
        coll::setd_min(ctx, d, idx, std::span<const std::uint64_t>(buf), opt,
                       cc, ws);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(per_thread) * nodes *
                          threads * state.iterations());
}

}  // namespace

static void BM_GetD(benchmark::State& state) {
  run_collective_bench(state, true);
}
BENCHMARK(BM_GetD)->Args({1, 4})->Args({4, 2})->Args({8, 2});

static void BM_SetDMin(benchmark::State& state) {
  run_collective_bench(state, false);
}
BENCHMARK(BM_SetDMin)->Args({1, 4})->Args({4, 2})->Args({8, 2});

BENCHMARK_MAIN();
