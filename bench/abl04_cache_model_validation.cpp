// Ablation D: validation of the analytic memory model (equations 4/5 of
// Section IV) against the trace-driven set-associative cache simulator.
//
// Two experiments:
//  1. miss rates of pure random access over varying working sets —
//     simulator vs the analytic miss fraction max(0, 1 - Z/W);
//  2. the access phase of Algorithm 1 (scheduled_gather) vs the original
//     unscheduled gather — measured (simulated) misses vs the model's
//     "pay n misses instead of m misses" argument.
#include "bench_common.hpp"
#include "graph/rng.hpp"
#include "machine/cache_sim.hpp"
#include "sched/access_sched.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  preamble(a, "Ablation D",
           "analytic memory model vs trace-driven cache simulator",
           "analytic miss fraction 1 - Z/W tracks the simulator; Algorithm "
           "1 cuts access-phase misses from ~m to ~n");

  const std::size_t cache_bytes = 1 << 15;  // 32 KiB, 64B lines, 8-way
  machine::CostParams p = params();
  p.cache_bytes = cache_bytes;
  p.cache_line_bytes = 64;
  const machine::MemoryModel mm(p);

  Report rep(a, "abl04_cache_model_validation");
  rep.set_param("cache_bytes", static_cast<double>(cache_bytes));
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t1({"working set / cache", "simulated miss rate",
            "analytic miss rate"});
  graph::Xoshiro256 rng(a.seed);
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0}) {
    const std::size_t ws =
        static_cast<std::size_t>(cache_bytes * factor) & ~63ull;
    machine::CacheSim sim(cache_bytes, 64, 8);
    const int accesses = 300000;
    for (int i = 0; i < accesses / 3; ++i)
      sim.access(rng.next_below(ws) & ~7ull);  // warm-up
    sim.reset_counters();
    for (int i = 0; i < accesses; ++i) sim.access(rng.next_below(ws) & ~7ull);
    const double analytic =
        factor <= 1.0 ? 0.0 : 1.0 - 1.0 / factor;
    t1.add_row({Table::num(factor, 2), Table::num(sim.miss_rate(), 3),
                Table::num(analytic, 3)});
    rep.row("miss-rate ws/cache=" + Table::num(factor, 2), 0.0,
            {{"simulated", sim.miss_rate()}, {"analytic", analytic}});
  }
  emit(a, t1);

  Table t2({"gather", "simulated misses", "trace length", "model access_ns"});
  const std::size_t n = 1 << 17, m = 1 << 19;
  std::vector<std::uint64_t> d(n), r(m), out(m);
  for (auto& x : d) x = rng.next();
  for (auto& x : r) x = rng.next_below(n);
  const auto run_one = [&](const char* name,
                           std::span<const std::size_t> ws_levels) {
    sched::AccessTrace trace;
    sched::SchedCost cost;
    if (ws_levels.empty())
      sched::direct_gather(d, r, out, &mm, &cost, &trace);
    else
      sched::scheduled_gather(d, r, out, ws_levels, &mm, &cost, &trace);
    machine::CacheSim sim(cache_bytes, 64, 8);
    for (const std::uint64_t idx : trace) sim.access(idx * 8);
    t2.add_row({name, std::to_string(sim.misses()),
                std::to_string(trace.size()), Table::eng(cost.access_ns)});
    rep.row(name, cost.access_ns,
            {{"misses", static_cast<double>(sim.misses())},
             {"trace_len", static_cast<double>(trace.size())}});
  };
  run_one("direct (original)", {});
  const std::size_t one[] = {64};
  run_one("scheduled W=64", one);
  const std::size_t two[] = {64, 8};
  run_one("scheduled W=64,8", two);
  emit(a, t2);
  std::cout << "(n=" << n << " m=" << m << "; D is " << n * 8 / 1024
            << " KiB against a " << cache_bytes / 1024 << " KiB cache)\n";
  return rep.finish();
}
