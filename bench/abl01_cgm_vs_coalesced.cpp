// Ablation A: the paper's central architectural claim (Sections I, VII) —
// "instead of taking the approach of communication-efficient algorithms
// that have one processor work on the large contracted inputs to reduce
// communication rounds, it is faster to coordinate multiple processors to
// process the same input in parallel."
//
// We compare the CGM-style contraction baseline (O(log p) rounds, then one
// node finishes sequentially) against the coalesced CC across densities.
// Expected shape: CGM's big coalesced messages make it respectable on very
// sparse graphs, but the sequential finish over the merged forest (poor
// cache behaviour over n) loses to the coordinated-parallel CC as density
// and size grow.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cgm_cc.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const int threads = a.threads > 0 ? a.threads : 8;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  preamble(a, "Ablation A",
           "coordinated-parallel CC vs CGM contract-to-one-node CC",
           "coalesced CC wins; CGM pays the idle-processors sequential "
           "finish (the approach the paper argues against)");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Table t({"graph", "CC coalesced", "CGM contraction", "CGM/CC",
           "CGM msgs", "CC msgs"});
  Report rep(a, "abl01_cgm_vs_coalesced");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));
  for (const std::uint64_t density : {2ull, 4ull, 10ull}) {
    for (const char* family : {"random", "hybrid"}) {
      const std::uint64_t m = n * density;
      const auto el = std::string(family) == "hybrid"
                          ? graph::hybrid_graph(n, m, a.seed)
                          : graph::random_graph(n, m, a.seed);
      const std::string label =
          std::string(family) + " m/n=" + std::to_string(density);
      pgas::Runtime rt1(topo, params_for(n));
      rep.attach(rt1);
      const auto cc =
          core::cc_coalesced(rt1, el, core::CcOptions::optimized(2));
      rep.row("cc " + label, cc.costs);
      pgas::Runtime rt2(topo, params_for(n));
      rep.attach(rt2);
      const auto cgm = core::cgm_cc(rt2, el);
      rep.row("cgm " + label, cgm.costs,
              {{"vs_cc", cgm.costs.modeled_ns / cc.costs.modeled_ns}});
      t.add_row({label,
                 Table::eng(cc.costs.modeled_ns),
                 Table::eng(cgm.costs.modeled_ns),
                 ratio(cgm.costs.modeled_ns, cc.costs.modeled_ns),
                 std::to_string(cgm.costs.messages),
                 std::to_string(cc.costs.messages)});
    }
  }
  emit(a, t);
  std::cout << "(n=" << n << ", " << nodes << "x" << threads
            << "; note CGM's tiny message count vs its time)\n";
  return rep.finish();
}
