// Ablation E: list ranking — the paper's own worked example of the
// communication-efficient school (Section I).  Wyllie pointer jumping via
// the coalesced collectives (O(log n) rounds, all processors busy, but
// O(n log n) work) against the contract-to-one-node scheme (2 rounds, one
// long message per processor, then a sequential cache-hostile chase while
// p-1 processors idle).
//
// Expected shape: the contraction is flat in p (its sequential step is the
// whole cost); Wyllie scales until the per-round communication floor.
// For work-efficient algorithms like CC the same comparison is a clear win
// for coordination (abl01).
#include "bench_common.hpp"
#include "core/list_ranking.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  preamble(a, "Ablation E",
           "list ranking: Wyllie (coalesced pointer jumping) vs "
           "contract-to-one-node",
           "contraction does not scale with p; Wyllie does, despite ~9x "
           "more communication rounds (Section I's trade-off)");

  const auto succ = core::make_random_list(n, a.seed);
  auto p = params_for(n);

  Report rep(a, "abl05_list_ranking");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"nodes x threads", "Wyllie", "rounds", "contract", "rounds ",
           "Wyllie/contract"});
  for (const auto& [nodes, threads] :
       {std::pair{2, 1}, {4, 1}, {8, 1}, {16, 1}, {16, 2}, {16, 4}}) {
    const std::string tag =
        std::to_string(nodes) + "x" + std::to_string(threads);
    pgas::Runtime rt1(pgas::Topology::cluster(nodes, threads), p);
    rep.attach(rt1);
    const auto wy = core::list_ranking_pgas(rt1, succ);
    rep.row("wyllie " + tag, wy.costs,
            {{"rounds", static_cast<double>(wy.rounds)}});
    pgas::Runtime rt2(pgas::Topology::cluster(nodes, threads), p);
    rep.attach(rt2);
    const auto ct = core::list_ranking_contract(rt2, succ);
    rep.row("contract " + tag, ct.costs,
            {{"rounds", static_cast<double>(ct.rounds)}});
    if (wy.ranks != ct.ranks) {
      std::cerr << "RANK MISMATCH\n";
      return 1;
    }
    t.add_row({tag,
               Table::eng(wy.costs.modeled_ns), std::to_string(wy.rounds),
               Table::eng(ct.costs.modeled_ns), std::to_string(ct.rounds),
               ratio(wy.costs.modeled_ns, ct.costs.modeled_ns)});
  }
  emit(a, t);
  std::cout << "(list of " << n << " elements, scrambled layout)\n";
  return rep.finish();
}
