// Google-benchmark microbenchmarks of the end-to-end algorithms (host
// wall time of the simulation, small instances): useful for tracking the
// simulator's own performance regressions.
#include <benchmark/benchmark.h>

#include "core/bcc.hpp"
#include "core/cc_coalesced.hpp"
#include "core/euler_tour.hpp"
#include "core/list_ranking.hpp"
#include "core/mst_pgas.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

using namespace pgraph;

namespace {
pgas::Runtime small_cluster() {
  return pgas::Runtime(pgas::Topology::cluster(2, 2),
                       machine::CostParams::hps_cluster());
}
}  // namespace

static void BM_CcCoalesced(benchmark::State& state) {
  const auto el = graph::random_graph(1 << 14, 1 << 16, 1);
  auto rt = small_cluster();
  for (auto _ : state) {
    auto r = core::cc_coalesced(rt, el);
    benchmark::DoNotOptimize(r.num_components);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_CcCoalesced)->Unit(benchmark::kMillisecond);

static void BM_MstPgas(benchmark::State& state) {
  const auto el =
      graph::with_random_weights(graph::random_graph(1 << 13, 1 << 15, 2), 3);
  auto rt = small_cluster();
  for (auto _ : state) {
    auto r = core::mst_pgas(rt, el);
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_MstPgas)->Unit(benchmark::kMillisecond);

static void BM_ListRankingWyllie(benchmark::State& state) {
  const auto succ = core::make_random_list(1 << 14, 4);
  auto rt = small_cluster();
  for (auto _ : state) {
    auto r = core::list_ranking_pgas(rt, succ);
    benchmark::DoNotOptimize(r.ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(succ.size()) *
                          state.iterations());
}
BENCHMARK(BM_ListRankingWyllie)->Unit(benchmark::kMillisecond);

static void BM_EulerTourMetrics(benchmark::State& state) {
  // A random tree.
  graph::EdgeList tree;
  tree.n = 1 << 13;
  graph::Xoshiro256 rng(5);
  for (std::size_t i = 1; i < tree.n; ++i)
    tree.edges.push_back({rng.next_below(i), i});
  const auto tour = core::build_euler_tour(tree, 0);
  auto rt = small_cluster();
  for (auto _ : state) {
    auto m = core::euler_tour_metrics(rt, tour);
    benchmark::DoNotOptimize(m.depth.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tree.n) *
                          state.iterations());
}
BENCHMARK(BM_EulerTourMetrics)->Unit(benchmark::kMillisecond);

static void BM_BccPipeline(benchmark::State& state) {
  const auto el = graph::random_graph(1 << 12, 3 << 12, 6);
  auto rt = small_cluster();
  for (auto _ : state) {
    auto r = core::bcc_pgas(rt, el);
    benchmark::DoNotOptimize(r.num_blocks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_BccPipeline)->Unit(benchmark::kMillisecond);

static void BM_BccSequential(benchmark::State& state) {
  const auto el = graph::random_graph(1 << 14, 3 << 14, 7);
  for (auto _ : state) {
    auto r = core::bcc_sequential(el);
    benchmark::DoNotOptimize(r.num_blocks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.m()) *
                          state.iterations());
}
BENCHMARK(BM_BccSequential)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
