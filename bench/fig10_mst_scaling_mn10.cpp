// Figure 10: as Figure 9, on the denser random graph (m/n = 10).
// Paper: best speedup 10.2x at t=8.
#define PGRAPH_MST_SCALING_NO_MAIN
#include "fig09_mst_scaling_mn4.cpp"

int main(int argc, char** argv) {
  return run_mst_scaling(argc, argv, "Figure 10 (m/n = 10)", 10);
}
