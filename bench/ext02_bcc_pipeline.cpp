// Extension: biconnected components (Tarjan-Vishkin) — the third member
// of the CGM algorithm suite the paper's Section II surveys, composed
// entirely from this library's distributed substrate (spanning tree ->
// Euler tour -> list ranking -> auxiliary-graph CC).  Reports the modeled
// time of each run and its phase mix across thread counts, against the
// sequential Hopcroft-Tarjan baseline.
#include "bench_common.hpp"
#include "core/bcc.hpp"

#include <chrono>

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 16);
  const std::uint64_t m = a.m ? a.m : 3 * n;
  preamble(a, "Extension: biconnected components",
           "Tarjan-Vishkin over the distributed substrate vs sequential "
           "Hopcroft-Tarjan",
           "the composed pipeline (3 distributed phases) tracks CC-like "
           "scaling; blocks and articulation points match the sequential "
           "ground truth (asserted here)");

  const auto el = graph::random_graph(n, m, a.seed);
  const auto t0 = std::chrono::steady_clock::now();
  const auto seq = core::bcc_sequential(el);
  const double seq_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Report rep(a, "ext02_bcc_pipeline");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"threads/node", "modeled", "blocks", "articulations",
           "matches seq", "msgs"});
  for (const int th : {1, 2, 4, 8}) {
    pgas::Runtime rt(pgas::Topology::cluster(nodes, th), params_for(n));
    rep.attach(rt);
    const auto r = core::bcc_pgas(rt, el);
    std::uint64_t arts = 0;
    for (const auto x : r.is_articulation) arts += x;
    t.add_row({std::to_string(th), Table::eng(r.costs.modeled_ns),
               std::to_string(r.num_blocks), std::to_string(arts),
               core::same_blocks(r, seq) ? "yes" : "NO",
               std::to_string(r.costs.messages)});
    rep.row("t=" + std::to_string(th), r.costs,
            {{"blocks", static_cast<double>(r.num_blocks)},
             {"articulations", static_cast<double>(arts)}});
  }
  emit(a, t);
  std::cout << "(n=" << n << " m=" << m << "; sequential Hopcroft-Tarjan "
            << "host wall time " << seq_wall * 1e3 << " ms, "
            << seq.num_blocks << " blocks)\n";
  return rep.finish();
}
