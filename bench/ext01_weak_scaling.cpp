// Extension: weak scaling toward "machines with a very large number of
// processors" — the paper's stated future work (Section VII).  The
// per-node problem size is fixed (n/p constant) while the node count
// grows; ideal weak scaling is a flat curve.  Run with flat and with
// hierarchical collectives: the flat all-to-all setup grows as s^2 and
// bends the curve, the hierarchical variant stays much flatter.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const std::uint64_t per_node = a.n ? a.n : a.scaled(1u << 14);
  const int threads = a.threads > 0 ? a.threads : 4;
  preamble(a, "Extension: weak scaling",
           "CC with fixed n/p while the node count grows (Section VII's "
           "future work)",
           "both curves rise ~2x per node-count doubling: O(log n) extra "
           "iterations plus the label-concentration hotspot (node 0's "
           "receive volume grows with p); hierarchical trims the flat "
           "variant's s^2 setup burst on top of that");

  Report rep(a, "ext01_weak_scaling");
  rep.set_param("per_node", static_cast<double>(per_node));
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"nodes", "n", "flat", "hierarchical", "flat msgs",
           "hier msgs"});
  for (const int nodes : {2, 4, 8, 16, 32, 64}) {
    const std::uint64_t n = per_node * static_cast<std::uint64_t>(nodes);
    const auto el = graph::random_graph(n, 4 * n, a.seed);

    pgas::Runtime rt1(pgas::Topology::cluster(nodes, threads),
                      params_for(n));
    rep.attach(rt1);
    const auto flat = core::cc_coalesced(rt1, el);
    rep.row("flat p=" + std::to_string(nodes), flat.costs);

    core::CcOptions hopt = core::CcOptions::optimized();
    hopt.coll.hierarchical = true;
    pgas::Runtime rt2(pgas::Topology::cluster(nodes, threads),
                      params_for(n));
    rep.attach(rt2);
    const auto hier = core::cc_coalesced(rt2, el, hopt);
    rep.row("hier p=" + std::to_string(nodes), hier.costs);

    t.add_row({std::to_string(nodes), std::to_string(n),
               Table::eng(flat.costs.modeled_ns),
               Table::eng(hier.costs.modeled_ns),
               std::to_string(flat.costs.messages),
               std::to_string(hier.costs.messages)});
  }
  emit(a, t);
  std::cout << "(" << per_node << " vertices per node, m/n = 4, " << threads
            << " threads/node)\n";
  return rep.finish();
}
