// Figure 3: impact of communication coalescing.  One thread per node;
// Orig = naive fine-grained CC, CC/SV = rewritten with the GetD/SetD
// collectives (unoptimized configuration).
//
// Paper (10M vertices / 40M edges, 16 nodes x 1 thread): rewritten CC is
// ~70x faster than the naive implementation; SV is slower than CC because
// it issues more collective calls per iteration.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  preamble(a, "Figure 3",
           "communication coalescing: Orig vs rewritten CC and SV "
           "(1 thread/node)",
           "rewritten CC ~70x faster than Orig; SV slower than CC (more "
           "collectives per iteration)");

  const auto el = graph::random_graph(n, m, a.seed);
  const pgas::Topology topo = pgas::Topology::cluster(nodes, 1);

  Report rep(a, "fig03_coalescing");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  pgas::Runtime rt1(topo, params_for(n));
  rep.attach(rt1);
  const auto orig = core::cc_naive_upc(rt1, el);
  rep.row("Orig (naive)", orig.costs);

  // The Figure-3 collectives are explicitly *unoptimized* (base config).
  pgas::Runtime rt2(topo, params_for(n));
  rep.attach(rt2);
  const auto cc = core::cc_coalesced(rt2, el, core::CcOptions::base());
  rep.row("CC (collectives)", cc.costs,
          {{"speedup", orig.costs.modeled_ns / cc.costs.modeled_ns}});

  pgas::Runtime rt3(topo, params_for(n));
  rep.attach(rt3);
  const auto sv = core::sv_coalesced(rt3, el, core::CcOptions::base());
  rep.row("SV (collectives)", sv.costs,
          {{"speedup", orig.costs.modeled_ns / sv.costs.modeled_ns}});

  Table t({"variant", "modeled time", "speedup vs Orig", "iterations",
           "messages", "fine msgs"});
  const auto row = [&](const char* name, const core::ParCCResult& r) {
    t.add_row({name, Table::eng(r.costs.modeled_ns),
               ratio(orig.costs.modeled_ns, r.costs.modeled_ns),
               std::to_string(r.iterations), std::to_string(r.costs.messages),
               std::to_string(r.costs.fine_messages)});
  };
  row("Orig (naive)", orig);
  row("CC (collectives)", cc);
  row("SV (collectives)", sv);
  emit(a, t);
  std::cout << "(graph: n=" << n << " m=" << m << ", " << nodes
            << " nodes x 1 thread)\n";
  return rep.finish();
}
