// STR-01: incremental CC maintenance vs full rebuild over a temporal edge
// stream.  The dynamic-graph subsystem ingests timestamped update batches
// through the SetD count-sort scheduling, maintains canonical labels with
// cc_incremental (bit-identical to a fresh cc_coalesced — self-checked
// here, exit 1 on mismatch), and publishes epoch snapshots for queries.
//
// Default mode sweeps the batch size as a fraction of the live edge count:
// batches <= 1% of the edges must maintain labels >= 5x cheaper (modeled)
// than recomputing from scratch, and past the rebuild_frac crossover the
// full-rebuild fallback must engage.  With --stream [--batch-size N
// --query-mix F] it instead drives one mixed insert/delete stream at a
// fixed batch size, interleaving connectivity/size query batches.
//
// Per-batch rows carry the full phase attribution (ingest / maintain /
// publish modeled ns) in the schema-v1 JSON report.
#include "bench_common.hpp"
#include "graph/rng.hpp"
#include "stream/dynamic_graph.hpp"

using namespace pgraph;
using namespace pgraph::bench;

namespace {

/// Fresh canonical labeling in a throwaway runtime: the bit-identity
/// reference and the rebuild-cost yardstick.
core::ParCCResult reference_cc(const pgas::Topology& topo,
                               const graph::EdgeList& el, Report& rep,
                               const BenchArgs& a) {
  pgas::Runtime rt(topo, params_for(el.n));
  apply_partition(rt, a, &el);
  rep.attach(rt);
  return core::cc_coalesced(rt, el, {});
}

bool labels_match(stream::DynamicGraph& dg,
                  const std::vector<std::uint64_t>& want) {
  std::vector<std::uint64_t> got;
  dg.labels().read_all(got);  // global order under any --partition layout
  return std::equal(got.begin(), got.end(), want.begin(), want.end());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv, {.stream = true, .partition = true});
  const int nodes = a.nodes > 0 ? a.nodes : 4;
  const int threads = a.threads > 0 ? a.threads : 2;
  const std::uint64_t n = a.n ? a.n : a.scaled(6000);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  preamble(a, "STR-01",
           "incremental CC maintenance vs full rebuild over a temporal "
           "edge stream",
           "batches <= 1% of edges maintain >= 5x cheaper than a rebuild; "
           "past the crossover the rebuild fallback engages");

  const pgas::Topology topo = pgas::Topology::cluster(nodes, threads);
  Report rep(a, "str01_incremental_vs_rebuild");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("threads", threads);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t(a.stream
              ? std::vector<std::string>{"config", "ops", "mode", "iters",
                                         "ingest", "maintain", "publish",
                                         "queries", "query cost"}
              : std::vector<std::string>{"config", "ops", "mode", "iters",
                                         "ingest", "maintain", "publish",
                                         "rebuild ref", "speedup"});
  int rc = 0;
  const auto check_identity = [&](stream::DynamicGraph& dg,
                                  const std::vector<std::uint64_t>& want,
                                  const std::string& where) {
    if (labels_match(dg, want)) return;
    std::fprintf(stderr,
                 "str01: SELF-CHECK FAILED at %s: labels diverged from a "
                 "fresh cc_coalesced run\n",
                 where.c_str());
    rc = 1;
  };

  if (!a.stream) {
    // --- batch-fraction sweep (the figure) -------------------------------
    const double fracs[] = {0.001, 0.005, 0.01, 0.05, 0.40};
    for (const double f : fracs) {
      const std::size_t batch = std::max<std::size_t>(
          1, static_cast<std::size_t>(f * static_cast<double>(m)));
      const std::size_t kBatches = 3;
      graph::TemporalStreamParams p;
      p.base_edges = m;  // insert-only below the crossover
      const auto ts =
          graph::temporal_stream(n, kBatches * batch, a.seed, p);

      pgas::Runtime rt(topo, params_for(n));
      apply_partition(rt, a, &ts.base);
      rep.attach(rt);
      stream::DynamicGraph dg(rt, ts.base);

      std::vector<stream::BatchStats> stats;
      for (std::size_t b = 0; b < kBatches; ++b)
        stats.push_back(dg.apply_batch(
            std::span<const graph::EdgeUpdate>(ts.updates)
                .subspan(b * batch, batch)));

      // Rebuild yardstick + bit-identity reference on the final edge set.
      const auto ref = reference_cc(topo, dg.materialize(), rep, a);
      check_identity(dg, ref.labels,
                     "f=" + Table::num(100 * f, 1) + "% final batch");

      const std::string cfg = "f=" + Table::num(100 * f, 1) + "%";
      bool any_rebuilt = false;
      for (std::size_t b = 0; b < stats.size(); ++b) {
        const auto& st = stats[b];
        const double speedup =
            st.maintain.modeled_ns > 0
                ? ref.costs.modeled_ns / st.maintain.modeled_ns
                : 0.0;
        rep.row(cfg + " batch " + std::to_string(b + 1), st.maintain,
                {{"ingest_ns", st.ingest.modeled_ns},
                 {"maintain_ns", st.maintain.modeled_ns},
                 {"publish_ns", st.publish.modeled_ns},
                 {"total_ns", st.total_modeled_ns()},
                 {"ops", static_cast<double>(st.ops)},
                 {"fresh_edges", static_cast<double>(st.fresh_edges)},
                 {"rebuilt", st.rebuilt ? 1.0 : 0.0},
                 {"iterations", static_cast<double>(st.iterations)},
                 {"rebuild_ref_ns", ref.costs.modeled_ns},
                 {"speedup_vs_rebuild", speedup}});
        t.add_row({cfg, std::to_string(st.ops),
                   st.rebuilt ? "rebuild" : "incremental",
                   std::to_string(st.iterations),
                   Table::eng(st.ingest.modeled_ns),
                   Table::eng(st.maintain.modeled_ns),
                   Table::eng(st.publish.modeled_ns),
                   Table::eng(ref.costs.modeled_ns),
                   ratio(ref.costs.modeled_ns, st.maintain.modeled_ns)});
        // Acceptance: tiny batches stay incremental and >= 5x cheaper
        // than the rebuild; past rebuild_frac the fallback engages.
        if (f <= 0.01) {
          if (st.rebuilt) {
            std::fprintf(stderr,
                         "str01: batch of %.2f%% unexpectedly rebuilt\n",
                         100 * f);
            rc = 1;
          } else if (speedup < 5.0) {
            std::fprintf(
                stderr,
                "str01: batch of %.2f%% only %.2fx cheaper than rebuild\n",
                100 * f, speedup);
            rc = 1;
          }
        }
        any_rebuilt = any_rebuilt || st.rebuilt;
      }
      // Past the crossover the fallback must engage at least once; later
      // same-size batches may drop back under rebuild_frac as the live
      // edge set grows, which is the policy working as intended.
      if (f >= 0.40 && !any_rebuilt) {
        std::fprintf(stderr,
                     "str01: no batch of %.0f%% triggered the rebuild "
                     "fallback\n",
                     100 * f);
        rc = 1;
      }
    }
  } else {
    // --- fixed-batch streaming loop (--stream) ---------------------------
    const std::size_t batch =
        a.batch_size > 0 ? a.batch_size
                         : std::max<std::size_t>(1, m / 100);
    const std::size_t kBatches = 8;
    graph::TemporalStreamParams p;
    p.base_edges = m;
    p.delete_frac = 0.15;  // exercise the dirty-component fallback
    const auto ts = graph::temporal_stream(n, kBatches * batch, a.seed, p);

    pgas::Runtime rt(topo, params_for(n));
    apply_partition(rt, a, &ts.base);
    rep.attach(rt);
    stream::DynamicGraph dg(rt, ts.base);
    graph::Xoshiro256 qrng(a.seed ^ 0x9e3779b97f4a7c15ULL);

    for (std::size_t b = 0; b < kBatches; ++b) {
      const std::size_t at = b * batch;
      const std::size_t len = std::min(batch, ts.updates.size() - at);
      const auto st = dg.apply_batch(
          std::span<const graph::EdgeUpdate>(ts.updates).subspan(at, len));

      core::RunCosts qcosts;
      const std::size_t nq = static_cast<std::size_t>(
          a.query_mix * static_cast<double>(len));
      if (nq > 0) {
        stream::QueryBatch q;
        for (std::size_t i = 0; i < nq; ++i) {
          if (i % 2 == 0)
            q.same_component.push_back(
                {qrng.next_below(n), qrng.next_below(n)});
          else
            q.component_size.push_back(qrng.next_below(n));
        }
        qcosts = dg.query(q).costs;
      }

      const std::string label = "batch " + std::to_string(b + 1);
      rep.row(label, st.maintain,
              {{"ingest_ns", st.ingest.modeled_ns},
               {"maintain_ns", st.maintain.modeled_ns},
               {"publish_ns", st.publish.modeled_ns},
               {"query_ns", qcosts.modeled_ns},
               {"total_ns", st.total_modeled_ns()},
               {"ops", static_cast<double>(st.ops)},
               {"inserted", static_cast<double>(st.inserted)},
               {"erased", static_cast<double>(st.erased)},
               {"dirty", static_cast<double>(st.dirty_components)},
               {"rebuilt", st.rebuilt ? 1.0 : 0.0},
               {"iterations", static_cast<double>(st.iterations)},
               {"queries", static_cast<double>(nq)}});
      t.add_row({label, std::to_string(st.ops),
                 st.rebuilt ? "rebuild" : "incremental",
                 std::to_string(st.iterations),
                 Table::eng(st.ingest.modeled_ns),
                 Table::eng(st.maintain.modeled_ns),
                 Table::eng(st.publish.modeled_ns), std::to_string(nq),
                 nq > 0 ? Table::eng(qcosts.modeled_ns) : "-"});
    }
    const auto ref = reference_cc(topo, dg.materialize(), rep, a);
    check_identity(dg, ref.labels, "end of stream");
  }

  emit(a, t);
  std::cout << "(graph: n=" << n << " base m=" << m << ", " << nodes
            << " nodes x " << threads << " threads)\n";
  const int json_rc = rep.finish();
  return rc != 0 ? rc : json_rc;
}
