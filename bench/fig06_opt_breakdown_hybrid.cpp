// Figure 6: the same optimization breakdown as Figure 5, on the paper's
// hybrid (scale-free core + random fill) graph.
//
// Paper: same accumulative impact as Figure 5; the highly connected hubs
// create no load-balance or hotspot problems because work is partitioned
// by edges and each pair of threads exchanges at most one message per
// collective.
#define PGRAPH_BREAKDOWN_NO_MAIN
#include "fig05_opt_breakdown_random.cpp"

int main(int argc, char** argv) {
  return run_breakdown(argc, argv, "Figure 6", "hybrid");
}
