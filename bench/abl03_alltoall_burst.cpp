// Ablation C: the t=16 degradation of Figures 7/8.  Section VI traces it
// to line 3 of Algorithm 2: setting up SMatrix/PMatrix is an all-to-all of
// s^2 fine-grained messages, and "the burst of the short messages
// overwhelms the cluster" — a consequence of UPC's flat thread space.
//
// We isolate the collective (GetD with a fixed total request volume) and
// sweep threads/node: the data volume is constant, but the setup burst
// grows as s^2.
#include "bench_common.hpp"
#include "collectives/getd.hpp"
#include "graph/rng.hpp"
#include "pgas/global_array.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 20);
  const std::uint64_t total_reqs = a.m ? a.m : a.scaled(1u << 20);
  preamble(a, "Ablation C",
           "SMatrix/PMatrix all-to-all burst vs threads/node (fixed data "
           "volume)",
           "per-GetD time is flat or improving until the s^2 small-message "
           "burst dominates near t=16 (paper: ~10x degradation 8 -> 16)");

  Report rep(a, "abl03_alltoall_burst");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("total_reqs", static_cast<double>(total_reqs));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"threads/node", "s", "GetD modeled", "Setup category",
           "fine msgs / call"});
  for (const int th : {1, 2, 4, 8, 16}) {
    const pgas::Topology topo = pgas::Topology::cluster(nodes, th);
    const int s = topo.total_threads();
    pgas::Runtime rt(topo, params_for(n));
    rep.attach(rt);
    pgas::GlobalArray<std::uint64_t> d(rt, n);
    coll::CollectiveContext cc(rt);
    const std::size_t per_thread = total_reqs / static_cast<std::size_t>(s);
    const int reps = 4;
    rt.run([&](pgas::ThreadCtx& ctx) {
      graph::Xoshiro256 rng(a.seed + ctx.id());
      std::vector<std::uint64_t> idx(per_thread), out(per_thread);
      for (auto& x : idx) x = rng.next_below(n);
      coll::CollWorkspace<std::uint64_t> ws;
      for (int rep = 0; rep < reps; ++rep)
        coll::getd(ctx, d, idx, std::span<std::uint64_t>(out),
                   coll::CollectiveOptions::optimized(2), cc, ws);
    });
    t.add_row({std::to_string(th), std::to_string(s),
               Table::eng(rt.modeled_time_ns() / reps),
               Table::eng(rt.critical_stats().get(machine::Cat::Setup) / reps),
               std::to_string(rt.net().fine_messages() / reps)});
    rep.row("t=" + std::to_string(th), core::collect_costs(rt, 0.0),
            {{"s", static_cast<double>(s)},
             {"reps", static_cast<double>(reps)}});
  }
  emit(a, t);
  std::cout << "(total request volume fixed at " << total_reqs
            << " elements per call)\n";
  return rep.finish();
}
