// Figures 9/10: optimized MST (Boruvka + SetDMin) on 16 nodes, varying
// threads per node, against the MST-SMP (16-thread) line and sequential
// Kruskal (merge sort) line.
//
// Paper: MST beats MST-SMP everywhere; best speedups at t=8 (5.5x on
// m/n=4, 10.2x on m/n=10).  MST-SMP is barely faster (or slower) than
// Kruskal on these large inputs because of the per-vertex locking overhead.
#include "bench_common.hpp"
#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "core/mst_smp.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int run_mst_scaling(int argc, char** argv, const char* figure,
                    std::uint64_t density) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : density * n;
  preamble(a, figure,
           "optimized MST vs threads/node (16 nodes), MST-SMP and Kruskal "
           "baselines",
           "beats MST-SMP at every t; best at t=8 (~5.5x / ~10.2x); MST-SMP "
           "barely beats Kruskal (locking overhead with n locks)");

  const auto el =
      graph::with_random_weights(graph::random_graph(n, m, a.seed), a.seed);

  Report rep(a, density == 4 ? "fig09_mst_scaling_mn4"
                             : "fig10_mst_scaling_mn10");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  pgas::Runtime smp(pgas::Topology::single_node(16), smp_params_for(n));
  rep.attach(smp);
  const auto smp_r = core::mst_smp(smp, el);
  rep.row("MST-SMP(16)", smp_r.costs);
  const machine::MemoryModel mm(params_for(n));
  const auto kruskal = core::mst_kruskal(el, &mm);

  Table t({"threads/node", "modeled time", "vs SMP(16)", "vs Kruskal",
           "iterations", "forest weight"});
  for (const int th : {1, 2, 4, 8, 16}) {
    pgas::Runtime rt(pgas::Topology::cluster(nodes, th), params_for(n));
    rep.attach(rt);
    const auto r =
        core::mst_pgas(rt, el, core::MstOptions::optimized());
    if (r.total_weight != kruskal.total_weight) {
      std::cerr << "WEIGHT MISMATCH at t=" << th << "\n";
      return 1;
    }
    t.add_row({std::to_string(th), Table::eng(r.costs.modeled_ns),
               ratio(smp_r.costs.modeled_ns, r.costs.modeled_ns),
               ratio(kruskal.modeled_ns, r.costs.modeled_ns),
               std::to_string(r.iterations),
               std::to_string(r.total_weight)});
    rep.row("t=" + std::to_string(th), r.costs,
            {{"speedup_vs_smp", smp_r.costs.modeled_ns / r.costs.modeled_ns},
             {"speedup_vs_kruskal", kruskal.modeled_ns / r.costs.modeled_ns}});
  }
  t.add_row({"MST-SMP(16)", Table::eng(smp_r.costs.modeled_ns), "1.00x",
             ratio(kruskal.modeled_ns, smp_r.costs.modeled_ns),
             std::to_string(smp_r.iterations),
             std::to_string(smp_r.total_weight)});
  t.add_row({"Kruskal", Table::eng(kruskal.modeled_ns),
             ratio(smp_r.costs.modeled_ns, kruskal.modeled_ns), "1.00x", "1",
             std::to_string(kruskal.total_weight)});
  emit(a, t);
  std::cout << "(graph: n=" << n << " m=" << m
            << ", weights uniform in [0, 2^31))\n";
  return rep.finish();
}

#ifndef PGRAPH_MST_SCALING_NO_MAIN
int main(int argc, char** argv) {
  return run_mst_scaling(argc, argv, "Figure 9 (m/n = 4)", 4);
}
#endif
