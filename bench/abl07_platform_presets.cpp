// Ablation G: platform sensitivity (Section III's analysis).  The paper
// derives from Infiniband (190 ns) vs DDR3 (9 ns) latencies that naive
// fine-grained CC-UPC must be >20x slower than CC-SMP on data access even
// on an aggressive modern interconnect — i.e. coalescing is not an
// artifact of the HPS's microsecond latency.
//
// We run the naive and coalesced CC under both presets: the naive/SMP gap
// shrinks on infiniband-ddr3 but stays >>20x; the coalesced implementation
// wins on both.
#include "bench_common.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"

using namespace pgraph;
using namespace pgraph::bench;

int main(int argc, char** argv) {
  const BenchArgs a = BenchArgs::parse(argc, argv);
  const std::uint64_t n = a.n ? a.n : a.scaled(1u << 18);
  const std::uint64_t m = a.m ? a.m : 4 * n;
  const int nodes = a.nodes > 0 ? a.nodes : kPaperNodes;
  preamble(a, "Ablation G",
           "HPS cluster vs Infiniband/DDR3 presets (Section III analysis)",
           "naive stays >20x behind SMP even on the faster interconnect; "
           "coalesced CC wins on both platforms");

  const auto el = graph::random_graph(n, m, a.seed);

  Report rep(a, "abl07_platform_presets");
  rep.set_param("n", static_cast<double>(n));
  rep.set_param("m", static_cast<double>(m));
  rep.set_param("nodes", nodes);
  rep.set_param("seed", static_cast<double>(a.seed));

  Table t({"preset", "naive CC-UPC", "coalesced CC", "CC-SMP(16)",
           "naive/SMP", "coalesced vs SMP"});
  for (const bool ib : {false, true}) {
    machine::CostParams p = ib ? machine::CostParams::infiniband_ddr3()
                               : machine::CostParams::hps_cluster();
    p.cache_bytes = params_for(n).cache_bytes;  // same scaled cache

    pgas::Runtime rt1(pgas::Topology::cluster(nodes, 8), p);
    rep.attach(rt1);
    const auto naive = core::cc_naive_upc(rt1, el);
    rep.row("naive " + p.preset, naive.costs);
    pgas::Runtime rt2(pgas::Topology::cluster(nodes, 8), p);
    rep.attach(rt2);
    const auto coal = core::cc_coalesced(rt2, el);
    machine::CostParams ps = p;
    ps.preset = "smp";
    pgas::Runtime rt3(pgas::Topology::single_node(16), ps);
    const auto smp = core::cc_smp(rt3, el);
    rep.row("coalesced " + p.preset, coal.costs,
            {{"vs_smp", smp.costs.modeled_ns / coal.costs.modeled_ns},
             {"naive_vs_smp",
              naive.costs.modeled_ns / smp.costs.modeled_ns}});

    t.add_row({p.preset, Table::eng(naive.costs.modeled_ns),
               Table::eng(coal.costs.modeled_ns),
               Table::eng(smp.costs.modeled_ns),
               ratio(naive.costs.modeled_ns, smp.costs.modeled_ns),
               ratio(smp.costs.modeled_ns, coal.costs.modeled_ns)});
  }
  emit(a, t);
  std::cout << "(n=" << n << " m=" << m << ", " << nodes
            << " nodes x 8 threads)\n";
  return rep.finish();
}
