// Cluster planner: a "what-if" tool the cost model makes possible — given
// a graph size, sweep cluster shapes (nodes x threads) and report the
// modeled CC time for each, so a user can pick a configuration before
// buying time on a real machine.  Reproduces in miniature the paper's
// observation that more threads per node stops paying off once the
// SMatrix/PMatrix all-to-all burst dominates (Section VI).
#include <cstdio>
#include <cstdlib>

#include "core/cc_coalesced.hpp"
#include "graph/generators.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 200'000;
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 4 * n;
  const graph::EdgeList el = graph::random_graph(n, m, 3);
  std::printf("planning for: n=%zu m=%zu (random)\n\n", n, m);
  std::printf("%-14s %12s %12s %10s\n", "cluster", "modeled", "messages",
              "rounds");

  double best = 1e300;
  int best_nodes = 0, best_threads = 0;
  for (const auto& [nodes, threads] :
       {std::pair{1, 8}, {1, 16}, {2, 8}, {4, 4}, {4, 8}, {8, 4}, {8, 8},
        {16, 2}, {16, 4}, {16, 8}, {16, 16}}) {
    pgas::Runtime rt(pgas::Topology::cluster(nodes, threads),
                     machine::CostParams::hps_cluster());
    const auto r = core::cc_coalesced(rt, el);
    std::printf("%3dx%-10d %9.2f ms %12llu %10d\n", nodes, threads,
                r.costs.modeled_ms(),
                static_cast<unsigned long long>(r.costs.messages),
                r.iterations);
    if (r.costs.modeled_ns < best) {
      best = r.costs.modeled_ns;
      best_nodes = nodes;
      best_threads = threads;
    }
  }
  std::printf("\nrecommended configuration: %d nodes x %d threads\n",
              best_nodes, best_threads);
  return 0;
}
