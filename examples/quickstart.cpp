// Quickstart: generate a graph, run connected components and MST on a
// simulated 4x4 PGAS cluster, and verify both against the sequential
// baselines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "graph/generators.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

int main() {
  // A random graph with 100K vertices and 400K edges (the paper's m/n = 4).
  const std::size_t n = 100'000, m = 400'000;
  const graph::EdgeList el = graph::random_graph(n, m, /*seed=*/1);
  std::printf("graph: n=%zu m=%zu\n", el.n, el.m());

  // A simulated cluster of 4 nodes x 4 threads with the paper's cost model.
  pgas::Runtime rt(pgas::Topology::cluster(4, 4),
                   machine::CostParams::hps_cluster());

  // --- connected components (GetD/SetD collectives, all optimizations) ---
  const core::ParCCResult cc = core::cc_coalesced(rt, el);
  std::printf("CC:  %llu components in %d iterations, modeled %.2f ms "
              "(%llu messages, wall %.2fs)\n",
              static_cast<unsigned long long>(cc.num_components),
              cc.iterations, cc.costs.modeled_ms(),
              static_cast<unsigned long long>(cc.costs.messages),
              cc.costs.wall_s);

  const core::SeqCCResult truth = core::cc_dsu(el);
  std::printf("     matches union-find ground truth: %s\n",
              core::same_partition(cc.labels, truth.labels) ? "yes" : "NO");

  // --- minimum spanning forest (SetDMin replaces MST-SMP's locks) --------
  const graph::WEdgeList wel = graph::with_random_weights(el, /*seed=*/2);
  const core::ParMstResult mst = core::mst_pgas(rt, wel);
  std::printf("MST: forest of %zu edges, weight %llu, modeled %.2f ms\n",
              mst.edges.size(),
              static_cast<unsigned long long>(mst.total_weight),
              mst.costs.modeled_ms());

  const core::MstResult kruskal = core::mst_kruskal(wel);
  std::printf("     matches Kruskal: %s\n",
              mst.total_weight == kruskal.total_weight ? "yes" : "NO");
  return 0;
}
