// The paper's Figure 1, line for line: the naive CC-UPC code written with
// the UPC veneer (upc_forall / shared-array accesses / upc_barrier), run on
// a simulated cluster and on one SMP node — the same source, demonstrating
// the paper's observation that "mapping existing shared memory algorithms
// to distributed memory machines using UPC is indeed straightforward"...
// and the Figure-2 observation of what that costs.
#include <cstdio>

#include "collectives/crcw.hpp"
#include "core/cc_seq.hpp"
#include "graph/generators.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"
#include "pgas/upc.hpp"

using namespace pgraph;

namespace {

/// The body of Figure 1, shared by both "compilations".
core::SeqCCResult figure1_cc(pgas::Runtime& rt, const graph::EdgeList& el) {
  pgas::GlobalArray<std::uint64_t> D(rt, el.n);
  rt.reset_costs();

  rt.run([&](pgas::ThreadCtx& ctx) {
    pgas::upc::Env upc(ctx);
    // The paper's benign race, declared: labels only shrink, so shortcut
    // writes racing stale reads cost at most an extra iteration.
    coll::CrcwRegion<std::uint64_t> crcw(D, coll::CrcwMode::Min);

    // upc_forall (i = 0; i < n; i++; &D[i])  D[i] = i;
    upc.forall(0, el.n, D,
               [&](std::size_t i) { upc.write<std::uint64_t>(D, i, i); });
    upc.barrier();

    for (;;) {
      // graft: upc_forall over the edge list.
      bool grafted = false;
      upc.forall(0, el.m(), [&](std::size_t k) {
        const auto [u, v] = el.edges[k];
        const std::uint64_t du = upc.read(D, u);
        const std::uint64_t dv = upc.read(D, v);
        if (du < dv) {
          D.put_min(upc.ctx(), dv, du);
          grafted = true;
        } else if (dv < du) {
          D.put_min(upc.ctx(), du, dv);
          grafted = true;
        }
      });
      upc.barrier();

      // short-cut: while (D[i] != D[D[i]]) D[i] = D[D[i]];
      upc.forall(0, el.n, D, [&](std::size_t i) {
        for (;;) {
          const std::uint64_t d = upc.read(D, i);
          const std::uint64_t dd = upc.read(D, d);
          if (d == dd) break;
          upc.write(D, i, dd);
        }
      });

      if (!pgas::allreduce_or(ctx, grafted)) break;
    }
  });

  core::SeqCCResult r;
  r.labels.assign(D.raw_all().begin(), D.raw_all().end());
  r.num_components = core::count_components(r.labels);
  r.modeled_ns = rt.modeled_time_ns();
  return r;
}

}  // namespace

int main() {
  const auto el = graph::random_graph(50'000, 200'000, 1);
  std::printf("Figure-1 CC, one source, two machines (n=%zu m=%zu):\n\n",
              el.n, el.m());

  pgas::Runtime smp(pgas::Topology::single_node(16),
                    machine::CostParams::smp_node());
  const auto on_smp = figure1_cc(smp, el);
  std::printf("  CC-SMP  (1 node x 16):   %8.2f ms, %llu components\n",
              on_smp.modeled_ns / 1e6,
              static_cast<unsigned long long>(on_smp.num_components));

  pgas::Runtime upc_rt(pgas::Topology::cluster(16, 16),
                       machine::CostParams::hps_cluster());
  const auto on_upc = figure1_cc(upc_rt, el);
  std::printf("  CC-UPC  (16 nodes x 16): %8.2f ms, %llu components\n",
              on_upc.modeled_ns / 1e6,
              static_cast<unsigned long long>(on_upc.num_components));

  std::printf("\nsame code, %.0fx slower on the cluster (Figure 2's "
              "point) — %llu fine-grained messages\n",
              on_upc.modeled_ns / on_smp.modeled_ns,
              static_cast<unsigned long long>(
                  upc_rt.net().fine_messages()));

  const auto truth = core::cc_dsu(el);
  std::printf("both verified against union-find: %s\n",
              core::same_partition(on_smp.labels, truth.labels) &&
                      core::same_partition(on_upc.labels, truth.labels)
                  ? "yes"
                  : "NO");
  return 0;
}
