// Road-network planning: build a weighted grid "road mesh", compute the
// minimum spanning forest three sequential ways and with the PGAS parallel
// Boruvka, and export the chosen backbone in DIMACS format.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 300;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : 300;
  std::printf("road mesh: %zux%zu intersections\n", rows, cols);
  const graph::EdgeList grid = graph::grid_graph(rows, cols);
  // Weights = construction costs.
  const graph::WEdgeList roads =
      graph::with_random_weights(grid, 11, /*max_w=*/10'000);

  const core::MstResult kruskal = core::mst_kruskal(roads);
  const core::MstResult prim = core::mst_prim(roads);
  const core::MstResult boruvka = core::mst_boruvka(roads);
  std::printf("sequential MSTs agree: %s (cost %llu, %zu road segments)\n",
              (kruskal.total_weight == prim.total_weight &&
               kruskal.total_weight == boruvka.total_weight)
                  ? "yes"
                  : "NO",
              static_cast<unsigned long long>(kruskal.total_weight),
              kruskal.edges.size());

  pgas::Runtime rt(pgas::Topology::cluster(4, 2),
                   machine::CostParams::hps_cluster());
  const core::ParMstResult par = core::mst_pgas(rt, roads);
  std::printf("parallel Boruvka (4x2 cluster): cost %llu in %d rounds, "
              "modeled %.2f ms — %s\n",
              static_cast<unsigned long long>(par.total_weight),
              par.iterations, par.costs.modeled_ms(),
              par.total_weight == kruskal.total_weight ? "matches" : "WRONG");

  // Export the backbone.
  graph::WEdgeList backbone;
  backbone.n = roads.n;
  for (const auto id : par.edges) backbone.edges.push_back(roads.edges[id]);
  const char* out = "road_backbone.dimacs";
  std::ofstream os(out);
  graph::write_dimacs(os, backbone);
  std::printf("wrote %s (%zu segments)\n", out, backbone.edges.size());
  return 0;
}
