// Social-network analysis on the paper's hybrid graph family (scale-free
// core + random fill — hubs of degree ~sqrt(n), no locality): find the
// connected communities, report the size distribution, and show that the
// hub structure creates neither load-imbalance nor hotspots for the
// edge-partitioned collectives (Section V's claim).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/bcc.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "graph/generators.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 200'000;
  const std::size_t m = 4 * n;
  std::printf("building hybrid social graph: n=%zu m=%zu ...\n", n, m);
  const graph::EdgeList el = graph::hybrid_graph(n, m, 7);
  std::printf("max degree (hub): %zu  (~sqrt(n) = %.0f)\n",
              graph::max_degree(el),
              std::sqrt(static_cast<double>(n)));

  pgas::Runtime rt(pgas::Topology::cluster(8, 4),
                   machine::CostParams::hps_cluster());
  const core::ParCCResult cc = core::cc_coalesced(rt, el);

  // Community size histogram.
  std::map<std::uint64_t, std::uint64_t> size_of;
  for (const std::uint64_t lbl : cc.labels) ++size_of[lbl];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(size_of.size());
  for (const auto& [lbl, sz] : size_of) sizes.push_back(sz);
  std::sort(sizes.rbegin(), sizes.rend());

  std::printf("communities: %zu\n", sizes.size());
  std::printf("largest: %llu vertices (%.1f%% of the graph)\n",
              static_cast<unsigned long long>(sizes.front()),
              100.0 * static_cast<double>(sizes.front()) /
                  static_cast<double>(n));
  std::size_t singletons = 0;
  for (const auto sz : sizes)
    if (sz == 1) ++singletons;
  std::printf("isolated users: %zu\n", singletons);

  std::printf("modeled cluster time: %.2f ms in %d iterations "
              "(%llu coalesced messages)\n",
              cc.costs.modeled_ms(), cc.iterations,
              static_cast<unsigned long long>(cc.costs.messages -
                                              cc.costs.fine_messages));

  // Critical users: articulation points (their removal disconnects a
  // community) via the distributed Tarjan-Vishkin pipeline.
  const auto bcc = core::bcc_pgas(rt, el);
  std::size_t critical = 0;
  for (const auto x : bcc.is_articulation) critical += x;
  std::printf("biconnected blocks: %llu; critical users (articulation "
              "points): %zu (%.2f%%)\n",
              static_cast<unsigned long long>(bcc.num_blocks), critical,
              100.0 * static_cast<double>(critical) /
                  static_cast<double>(n));

  // Sanity: agree with sequential union-find and Hopcroft-Tarjan.
  const auto truth = core::cc_dsu(el);
  const bool ok_cc = core::same_partition(cc.labels, truth.labels);
  const bool ok_bcc = core::same_blocks(bcc, core::bcc_sequential(el));
  std::printf("verified against union-find: %s; against Hopcroft-Tarjan: "
              "%s\n",
              ok_cc ? "yes" : "NO", ok_bcc ? "yes" : "NO");
  return ok_cc && ok_bcc ? 0 : 1;
}
