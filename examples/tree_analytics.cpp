// Tree analytics: the full PRAM-toolbox pipeline composed end to end —
//   connected graph -> spanning_tree_pgas (Boruvka + SetDMin)
//                   -> build_euler_tour
//                   -> list-ranking-powered depths & subtree sizes
// then report the tree's shape.  Everything after the generator runs on
// the simulated cluster through the coalesced collectives.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/cc_seq.hpp"
#include "core/euler_tour.hpp"
#include "core/mst_pgas.hpp"
#include "graph/generators.hpp"
#include "pgas/runtime.hpp"

using namespace pgraph;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 100'000;
  const auto el = graph::random_graph(n, 4 * n, 31);
  pgas::Runtime rt(pgas::Topology::cluster(4, 4),
                   machine::CostParams::hps_cluster());

  const auto st = core::spanning_tree_pgas(rt, el);
  std::printf("spanning forest: %zu edges in %d Boruvka rounds "
              "(modeled %.2f ms)\n",
              st.edges.size(), st.iterations, st.costs.modeled_ms());

  graph::EdgeList tree;
  tree.n = el.n;
  for (const auto id : st.edges) tree.edges.push_back(el.edges[id]);

  const std::uint64_t root = 0;
  const auto tour = core::build_euler_tour(tree, root);
  const auto metrics = core::euler_tour_metrics(rt, tour);
  std::printf("euler tour: %zu arcs, ranked in %d Wyllie rounds "
              "(modeled %.2f ms)\n",
              tour.arcs(), metrics.ranking_rounds,
              metrics.costs.modeled_ms());

  std::uint64_t deepest = root, max_depth = 0;
  std::uint64_t big_child = root, big_sub = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (metrics.depth[v] == UINT64_MAX) continue;  // other components
    if (metrics.depth[v] > max_depth) {
      max_depth = metrics.depth[v];
      deepest = v;
    }
    if (v != root && metrics.parent[v] == root &&
        metrics.subtree_size[v] > big_sub) {
      big_sub = metrics.subtree_size[v];
      big_child = v;
    }
  }
  std::printf("root %llu's component: %llu vertices\n",
              static_cast<unsigned long long>(root),
              static_cast<unsigned long long>(metrics.subtree_size[root]));
  std::printf("tree height: %llu (deepest vertex %llu)\n",
              static_cast<unsigned long long>(max_depth),
              static_cast<unsigned long long>(deepest));
  std::printf("heaviest root child: %llu with %llu descendants\n",
              static_cast<unsigned long long>(big_child),
              static_cast<unsigned long long>(big_sub));

  // Verify against sequential DFS.
  const auto want = core::tree_metrics_sequential(tree, root);
  bool ok = true;
  for (std::size_t v = 0; v < n; ++v)
    ok = ok && metrics.depth[v] == want.depth[v] &&
         metrics.subtree_size[v] == want.subtree_size[v];
  std::printf("verified against sequential DFS: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
