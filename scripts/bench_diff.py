#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on modeled-time regressions.

Usage:
    scripts/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Both files must be `pgraph-bench` schema version 1 documents, as written
by any harness bench via `--json <path>` (src/trace/bench_json.*).  Rows
are matched by label; a candidate row whose modeled_ns exceeds the
baseline's by more than --threshold percent is a regression, and a
baseline row missing from the candidate is an error (renamed or dropped
configurations must regenerate the baseline deliberately).  A NaN or
infinite modeled_ns on either side is a failure, never a silent pass
(NaN compares false against every threshold).  Breakdown fields are
validated tolerantly: absent or non-finite per-category entries are
warned about and ignored, since partial reports are still comparable
on modeled time.  Row `extra` counters present in the candidate but not
in the baseline (e.g. new fault telemetry after a tooling upgrade) are
warned about, never failed: the chaos invariance gate compares a
faulted-but-zero-rate candidate against a fault-free baseline, and new
telemetry keys must not break it.

Serving benches additionally report tail-latency extras (keys starting
with `latency_p`, e.g. latency_p50_ns/p95/p99).  When such a key is
present in both rows it is gated too, with a percentile-aware tolerance:
the base allowance is --latency-threshold percent (default 15), widened
x1.5 for p95 and x2 for p99 keys, because deeper tail percentiles are
order statistics of fewer samples and flap harder than medians under
benign model changes.  Resilience benches report `availability` (a
fraction, gated on absolute decrease beyond 0.02) and `crashed` (gated
on a 0 -> 1 flip) extras the same way.  Other extras stay
informational.

Exit codes: 0 ok, 1 regression/missing rows, 2 malformed input.
Only the Python standard library is used.
"""

import argparse
import json
import math
import sys

SCHEMA = "pgraph-bench"
VERSION = 1


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        sys.exit(f"bench_diff: {path}: not a {SCHEMA} document")
    if doc.get("version") != VERSION:
        sys.exit(
            f"bench_diff: {path}: schema version {doc.get('version')!r}, "
            f"expected {VERSION}"
        )
    rows = doc.get("rows")
    if not isinstance(rows, list):
        sys.exit(f"bench_diff: {path}: missing rows array")
    by_label = {}
    for i, row in enumerate(rows):
        label = row.get("label")
        t = row.get("modeled_ns")
        if (
            not isinstance(label, str)
            or isinstance(t, bool)
            or not isinstance(t, (int, float))
        ):
            sys.exit(f"bench_diff: {path}: row {i} lacks label/modeled_ns")
        if label in by_label:
            sys.exit(f"bench_diff: {path}: duplicate row label {label!r}")
        check_breakdown(path, i, row)
        extra = row.get("extra")
        if extra is not None and not isinstance(extra, dict):
            sys.exit(f"bench_diff: {path}: row {i} extra is not an object")
        by_label[label] = (float(t), dict(extra or {}))
    return doc, by_label


def latency_tolerance(key, base_pct):
    """Percentile-aware allowance for a latency_p* extra, in percent.

    Deeper tail percentiles are order statistics of fewer samples, so the
    p95/p99 gates are wider than the median's to keep the CI gate from
    flapping on benign changes.
    """
    if "p99" in key:
        return 2.0 * base_pct
    if "p95" in key:
        return 1.5 * base_pct
    return base_pct


def check_latency_extras(label, extras_base, extras_cand, base_pct):
    """Gate latency_p* extras present in both rows; return failure count.

    Only growth fails; improvements and keys missing from either side are
    fine (a baseline predating latency extras must not fail candidates
    that report them -- the key-set warning already covers that case).
    """
    failures = 0
    for key in sorted(extras_base):
        if not key.startswith("latency_p") or key not in extras_cand:
            continue
        vb, vc = extras_base[key], extras_cand[key]
        if (
            isinstance(vb, bool)
            or isinstance(vc, bool)
            or not isinstance(vb, (int, float))
            or not isinstance(vc, (int, float))
            or not math.isfinite(float(vb))
            or not math.isfinite(float(vc))
        ):
            print(f"NON-FINITE  {label!r} {key}: baseline {vb!r}, candidate {vc!r}")
            failures += 1
            continue
        if vb <= 0.0:
            continue
        pct = 100.0 * (float(vc) - float(vb)) / float(vb)
        allow = latency_tolerance(key, base_pct)
        if pct > allow:
            print(
                f"REGRESSION  {label!r} {key}: {vb:.6g} -> {vc:.6g} "
                f"(+{pct:.2f}% > {allow:g}%)"
            )
            failures += 1
    return failures


def check_resilience_extras(label, extras_base, extras_cand):
    """Gate availability/crash extras present in both rows; return failures.

    Availability is a fraction in [0, 1]: an absolute drop beyond 0.02 is
    a regression (serving less of the offered load under the same fault
    plan), growth is always fine.  A `crashed` flag flipping 0 -> 1 fails
    outright: a configuration that used to survive its fault plan must
    keep surviving it.  Keys missing from either side stay informational,
    matching the latency-extras policy.
    """
    failures = 0
    for key, drop_allowed in (("availability", 0.02),):
        if key not in extras_base or key not in extras_cand:
            continue
        vb, vc = extras_base[key], extras_cand[key]
        if (
            isinstance(vb, bool)
            or isinstance(vc, bool)
            or not isinstance(vb, (int, float))
            or not isinstance(vc, (int, float))
            or not math.isfinite(float(vb))
            or not math.isfinite(float(vc))
        ):
            print(f"NON-FINITE  {label!r} {key}: baseline {vb!r}, candidate {vc!r}")
            failures += 1
            continue
        drop = float(vb) - float(vc)
        if drop > drop_allowed:
            print(
                f"REGRESSION  {label!r} {key}: {vb:.4f} -> {vc:.4f} "
                f"(-{drop:.4f} > {drop_allowed:g} absolute)"
            )
            failures += 1
    if "crashed" in extras_base and "crashed" in extras_cand:
        cb, cc = extras_base["crashed"], extras_cand["crashed"]
        if not cb and cc:
            print(f"REGRESSION  {label!r} crashed: 0 -> 1")
            failures += 1
    return failures


def check_scrub_extras(label, extras_base, extras_cand):
    """Gate scrub_*/certify_* extras present in both rows; return failures.

    These counters come from deterministic seeded fault plans, so they
    must reproduce EXACTLY: a changed detection/heal/escape count under
    the same plan means the defense chain changed behaviour, which must be
    a deliberate baseline regeneration, never drift.  Only integral values
    are gated (fractional keys like scrub_overhead_pct track modeled time
    and move with benign model changes); availability is gated separately
    by check_resilience_extras, and certify_failures/certify_escapes
    additionally fail on any 0 -> nonzero flip even if the baseline never
    recorded a zero explicitly.  Keys missing from either side stay
    informational, matching the latency-extras policy.
    """
    failures = 0
    for key in sorted(extras_base):
        if not (key.startswith("scrub_") or key.startswith("certify_")):
            continue
        if key not in extras_cand:
            continue
        vb, vc = extras_base[key], extras_cand[key]
        if (
            isinstance(vb, bool)
            or isinstance(vc, bool)
            or not isinstance(vb, (int, float))
            or not isinstance(vc, (int, float))
            or not math.isfinite(float(vb))
            or not math.isfinite(float(vc))
        ):
            print(f"NON-FINITE  {label!r} {key}: baseline {vb!r}, candidate {vc!r}")
            failures += 1
            continue
        if float(vb) != int(vb) or float(vc) != int(vc):
            continue  # fractional: informational only
        if int(vb) != int(vc):
            print(
                f"REGRESSION  {label!r} {key}: {int(vb)} -> {int(vc)} "
                f"(deterministic counter changed; regenerate the baseline "
                f"if intended)"
            )
            failures += 1
    for key in ("certify_failures", "certify_escapes"):
        vc = extras_cand.get(key)
        if (
            isinstance(vc, (int, float))
            and not isinstance(vc, bool)
            and math.isfinite(float(vc))
            and float(vc) > 0.0
            and float(extras_base.get(key, 0) or 0) == 0.0
        ):
            print(f"REGRESSION  {label!r} {key}: 0 -> {vc:g}")
            failures += 1
    return failures


def check_breakdown(path, i, row):
    """Tolerant validation of a row's optional per-category breakdown.

    Absent breakdowns and absent/non-finite entries are fine (warn and
    ignore); a breakdown that is present but not an object is malformed.
    """
    bd = row.get("breakdown")
    if bd is None:
        return
    if not isinstance(bd, dict):
        sys.exit(f"bench_diff: {path}: row {i} breakdown is not an object")
    for key, v in bd.items():
        if (
            isinstance(v, bool)
            or not isinstance(v, (int, float))
            or not math.isfinite(float(v))
        ):
            print(
                f"bench_diff: warning: {path}: row {i} breakdown[{key!r}] "
                f"= {v!r} is not finite; ignored",
                file=sys.stderr,
            )


def main():
    ap = argparse.ArgumentParser(
        description="fail when modeled times regress vs a baseline"
    )
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="allowed modeled-time growth per row, percent (default 5)",
    )
    ap.add_argument(
        "--latency-threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="base allowed growth for latency_p* extras, percent "
        "(default 15; widened x1.5 for p95, x2 for p99)",
    )
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    cand_doc, cand = load(args.candidate)
    if base_doc.get("bench") != cand_doc.get("bench"):
        print(
            f"bench_diff: comparing different benches: "
            f"{base_doc.get('bench')!r} vs {cand_doc.get('bench')!r}",
            file=sys.stderr,
        )
        return 1

    failures = 0
    for label, (t_base, extras_base) in base.items():
        if label not in cand:
            print(f"MISSING  {label!r}: row absent from candidate")
            failures += 1
            continue
        t_cand, extras_cand = cand[label]
        new_extras = sorted(extras_cand.keys() - extras_base.keys())
        if new_extras:
            print(
                f"bench_diff: warning: {label!r}: candidate-only extra "
                f"counter(s) {new_extras}; regenerate the baseline to "
                f"track them",
                file=sys.stderr,
            )
        if not math.isfinite(t_base) or not math.isfinite(t_cand):
            print(
                f"NON-FINITE  {label!r}: baseline {t_base!r}, "
                f"candidate {t_cand!r}"
            )
            failures += 1
            continue
        if t_base <= 0.0:
            # Rows without a modeled time (informational extras) can't
            # regress; only report if one appears from nowhere.
            continue
        pct = 100.0 * (t_cand - t_base) / t_base
        if pct > args.threshold:
            print(
                f"REGRESSION  {label!r}: {t_base:.6g} ns -> {t_cand:.6g} ns "
                f"(+{pct:.2f}% > {args.threshold:g}%)"
            )
            failures += 1
        else:
            print(f"ok  {label!r}: {pct:+.2f}%")
        failures += check_latency_extras(
            label, extras_base, extras_cand, args.latency_threshold
        )
        failures += check_resilience_extras(label, extras_base, extras_cand)
        failures += check_scrub_extras(label, extras_base, extras_cand)
    extra = [label for label in cand if label not in base]
    if extra:
        print(f"note: {len(extra)} new row(s) not in baseline: {extra}")

    if failures:
        print(f"bench_diff: {failures} failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
