#!/usr/bin/env bash
# Build-and-test driver for the verification matrix (see docs/ANALYSIS.md).
#
#   scripts/run_checks.sh                 # all stages
#   scripts/run_checks.sh default check   # just these stages
#
# Stages (each maps to a CMakePresets.json preset):
#   default  plain RelWithDebInfo build + ctest
#   check    PGRAPH_CHECK_ACCESS=ON build + ctest (access-discipline checker)
#   tsan     -fsanitize=thread build + ctest
#   asan     -fsanitize=address,undefined build + ctest
#   lint     scripts/lint_spmd.py (SPMD-discipline static lint; self-test
#            first, then the tree against scripts/lint_spmd_allow.txt),
#            plus clang-tidy over src/tests/examples (skipped if not
#            installed)
#   ubsan    -fsanitize=undefined (non-recoverable) build; collectives,
#            fault and stream test binaries under it
#   perf     traced smoke bench + bench_diff.py vs the committed baseline
#            (scripts/baselines/BENCH_smoke.json; skipped without python3)
#   stream   dynamic-graph smoke: Stream* tests in the default and check
#            (PGRAPH_CHECK_ACCESS) presets, then the str01 bench at a fixed
#            small configuration gated against
#            scripts/baselines/BENCH_stream_smoke.json (the bench itself
#            self-checks bit-identity against a fresh cc_coalesced run)
#   serve    query-serving smoke: Serve* tests in the default and check
#            (PGRAPH_CHECK_ACCESS) presets, then the srv01 bench at a fixed
#            small configuration gated against
#            scripts/baselines/BENCH_serve_smoke.json (bench_diff applies
#            percentile-aware tolerances to the latency_p* extras)
#   serve-chaos  resilient serving under faults: the ServeResilience /
#            ServeChaos suites (deadline shedding, retry budgets, breaker
#            lifecycle, brownout, permanent-loss recovery; each carries a
#            fault-plan matrix internally) across fault seeds 1..3 in the
#            default and check presets plus one asan run, then the srv02
#            availability sweep gated against
#            scripts/baselines/BENCH_srv02_degraded.json (availability /
#            crashed extras gated on decrease) and a zero-fault
#            resilience-off srv01 run gated bit-for-bit (--threshold 0)
#            against the serve smoke baseline
#   chaos    fault-injection suite (tests/test_fault.cpp) across fixed fault
#            seeds 1..3, in the default and check (PGRAPH_CHECK_ACCESS)
#            presets, plus the zero-fault bench-invariance gate: a bench run
#            with an attached all-zero fault plan must match the committed
#            baseline bit-for-bit (--threshold 0)
#   partition  partitioning-policy suite (tests/test_partition.cpp: the
#            owner/local/global bijection property, spec parsing/gating,
#            post-shrink owner stability, and the loss-chaos bit-identity
#            matrix under cyclic/degree) plus the BenchArgsPartition flag
#            tests, in the default and check presets and one asan pass,
#            then the part01 skew sweep at a fixed small configuration
#            gated against scripts/baselines/BENCH_part_smoke.json (the
#            bench itself self-checks label identity across schemes and
#            that degree-aware beats block on the skewed input)
#   scrub-chaos  silent-data-corruption defense (tests/test_scrub.cpp plus
#            the mem-flip config/flag tests) across fault seeds 1..3 in the
#            default and check presets plus one asan run, then the rob01
#            availability sweep gated against
#            scripts/baselines/BENCH_rob01_sdc.json (deterministic scrub_*/
#            certify_* counters gated exactly) and the zero-flip invariance
#            gate: a bench run with an attached-but-disabled mem-flip plan
#            must match the committed smoke baseline bit-for-bit
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default check tsan asan ubsan lint perf stream serve serve-chaos chaos scrub-chaos partition)
fi

run_preset() {
  local preset="$1"
  echo "==== [$preset] configure + build + test ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default|check|tsan|asan)
      run_preset "$stage"
      ;;
    lint)
      if command -v python3 > /dev/null 2>&1; then
        echo "==== [lint] SPMD-discipline lint (scripts/lint_spmd.py) ===="
        python3 scripts/lint_spmd.py --self-test
        python3 scripts/lint_spmd.py
      else
        echo "==== [lint] python3 not found on PATH; skipping SPMD lint ===="
      fi
      if command -v clang-tidy > /dev/null 2>&1; then
        echo "==== [lint] clang-tidy ===="
        cmake --preset default
        cmake --build --preset default --target lint
      else
        echo "==== [lint] clang-tidy not found on PATH; skipping ===="
      fi
      ;;
    ubsan)
      echo "==== [ubsan] undefined-behavior sanitizer, collectives/fault/stream ===="
      cmake --preset ubsan
      cmake --build --preset ubsan -j "$JOBS" \
        --target test_collectives --target test_fault --target test_stream
      ctest --preset ubsan -R '^(Collectives|Fault|Stream)' \
        --output-on-failure -j "$JOBS"
      ;;
    perf)
      if command -v python3 > /dev/null 2>&1; then
        echo "==== [perf] smoke bench + modeled-time regression gate ===="
        cmake --preset default
        cmake --build --preset default -j "$JOBS" \
          --target fig05_opt_breakdown_random
        out=build/BENCH_smoke.json
        # Same fixed configuration the committed baseline was generated
        # with (regenerate it with this exact command after intentional
        # model changes).
        build/bench/fig05_opt_breakdown_random \
          --n 2048 --m 8192 --nodes 4 --threads 4 --seed 1 \
          --json "$out" --trace build/smoke_trace.json > /dev/null
        # Gate sanity: identical files diff clean, a perturbed copy fails.
        python3 scripts/bench_diff.py "$out" "$out" > /dev/null
        if python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["rows"][0]["modeled_ns"] *= 1.5
json.dump(doc, open("build/BENCH_smoke_perturbed.json", "w"))
EOF
        then
          if python3 scripts/bench_diff.py "$out" \
              build/BENCH_smoke_perturbed.json > /dev/null 2>&1; then
            echo "perf: bench_diff.py failed to flag a 50% regression" >&2
            exit 1
          fi
        fi
        # The actual gate: this build vs the committed baseline.
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_smoke.json "$out"
      else
        echo "==== [perf] python3 not found on PATH; skipping ===="
      fi
      ;;
    stream)
      echo "==== [stream] dynamic-graph suite + incremental-vs-rebuild gate ===="
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target test_stream
        ctest --preset "$preset" -R '^Stream' --output-on-failure -j "$JOBS"
      done
      if command -v python3 > /dev/null 2>&1; then
        cmake --build --preset default -j "$JOBS" \
          --target str01_incremental_vs_rebuild
        out=build/BENCH_stream_smoke.json
        # Same fixed configuration the committed baseline was generated
        # with (regenerate it with this exact command after intentional
        # model changes).  A nonzero exit here is also the bench's own
        # bit-identity / speedup self-check failing.
        build/bench/str01_incremental_vs_rebuild \
          --n 2000 --m 8000 --nodes 4 --threads 2 --seed 1 \
          --json "$out" --trace build/stream_trace.json > /dev/null
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_stream_smoke.json "$out"
      else
        echo "==== [stream] python3 not found; skipping bench gate ===="
      fi
      ;;
    serve)
      echo "==== [serve] query-serving suite + latency-SLO gate ===="
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target test_serve
        ctest --preset "$preset" -R '^Serve' --output-on-failure -j "$JOBS"
      done
      if command -v python3 > /dev/null 2>&1; then
        cmake --build --preset default -j "$JOBS" \
          --target srv01_query_serving
        out=build/BENCH_serve_smoke.json
        # Same fixed configuration the committed baseline was generated
        # with (regenerate it with this exact command after intentional
        # model changes).  A nonzero exit here is also the bench's own
        # self-check failing (conservation, batching leverage, cache
        # behaviour, serving-vs-direct bit-identity).
        build/bench/srv01_query_serving \
          --n 1500 --nodes 4 --threads 2 --seed 1 --sessions 4 \
          --scale 0.5 --json "$out" > /dev/null
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_serve_smoke.json "$out"
      else
        echo "==== [serve] python3 not found; skipping bench gate ===="
      fi
      ;;
    serve-chaos)
      echo "==== [serve-chaos] resilient serving under faults, seeds 1..3 ===="
      # The ServeResilience suite carries the fault-plan matrix internally
      # (drop / outage / straggle / permanent loss, armed mid-service);
      # PGRAPH_CHAOS_SEED rotates the fault draws the same way the chaos
      # stage does for the collectives.
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target test_serve
        for seed in 1 2 3; do
          echo "---- [serve-chaos] preset=$preset fault seed=$seed ----"
          PGRAPH_CHAOS_SEED=$seed ctest --preset "$preset" \
            -R '^ServeResilience|^ServeChaos' --output-on-failure -j "$JOBS"
        done
      done
      # One seed under asan: degraded serving re-enters the collectives
      # after loss-shrink restores, exactly where stale-count overruns hide.
      echo "---- [serve-chaos] resilience suite under asan, seed=2 ----"
      cmake --preset asan
      cmake --build --preset asan -j "$JOBS" --target test_serve
      PGRAPH_CHAOS_SEED=2 ctest --preset asan \
        -R '^ServeResilience' --output-on-failure -j "$JOBS"
      if command -v python3 > /dev/null 2>&1; then
        cmake --build --preset default -j "$JOBS" \
          --target srv02_degraded_serving srv01_query_serving
        out=build/BENCH_srv02_degraded.json
        # Fixed configuration of the committed availability baseline; the
        # bench self-checks conservation, the availability floors, breaker
        # engagement and zero-fault raw/res identity, and bench_diff gates
        # the availability/crashed extras on top.
        build/bench/srv02_degraded_serving \
          --n 1200 --nodes 4 --threads 2 --seed 1 --scale 0.5 \
          --json "$out" > /dev/null
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_srv02_degraded.json "$out"
        echo "---- [serve-chaos] zero-fault plan leaves serving unchanged ----"
        # Resilience-off serving with an attached all-zero fault plan must
        # reproduce the committed smoke baseline bit-for-bit.
        out=build/BENCH_serve_smoke_zerofault.json
        build/bench/srv01_query_serving \
          --n 1500 --nodes 4 --threads 2 --seed 1 --sessions 4 \
          --scale 0.5 --faults drop=0 --fault-seed 3 --json "$out" > /dev/null
        python3 scripts/bench_diff.py --threshold 0 \
          scripts/baselines/BENCH_serve_smoke.json "$out"
      else
        echo "==== [serve-chaos] python3 not found; skipping bench gates ===="
      fi
      ;;
    chaos)
      echo "==== [chaos] fault-injection suite, seeds 1..3 ===="
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" --target test_fault
        for seed in 1 2 3; do
          echo "---- [chaos] preset=$preset fault seed=$seed ----"
          PGRAPH_CHAOS_SEED=$seed ctest --preset "$preset" \
            -R '^Fault' --output-on-failure -j "$JOBS"
        done
      done
      # Node-loss shrink matrix: the degraded-mode tests (buddy
      # replication, topology shrink, bit-identical recovery on the 4x2
      # cluster fixture) under each fault seed, called out separately so a
      # loss-specific regression is attributable at a glance.
      for seed in 1 2 3; do
        echo "---- [chaos] node-loss shrink, fault seed=$seed ----"
        PGRAPH_CHAOS_SEED=$seed ctest --preset default \
          -R 'Loss' --output-on-failure -j "$JOBS"
      done
      # One chaos seed under asan: the shrink path moves ownership and
      # replays mirrors, exactly where lifetime bugs would hide.
      echo "---- [chaos] fault suite under asan, seed=2 ----"
      cmake --preset asan
      cmake --build --preset asan -j "$JOBS" --target test_fault
      PGRAPH_CHAOS_SEED=2 ctest --preset asan \
        -R '^Fault' --output-on-failure -j "$JOBS"
      if command -v python3 > /dev/null 2>&1; then
        echo "---- [chaos] zero-fault plan leaves bench times unchanged ----"
        cmake --build --preset default -j "$JOBS" \
          --target fig05_opt_breakdown_random
        out=build/BENCH_smoke_zerofault.json
        build/bench/fig05_opt_breakdown_random \
          --n 2048 --m 8192 --nodes 4 --threads 4 --seed 1 \
          --faults drop=0 --fault-seed 3 --json "$out" > /dev/null
        python3 scripts/bench_diff.py --threshold 0 \
          scripts/baselines/BENCH_smoke.json "$out"
      else
        echo "---- [chaos] python3 not found; skipping invariance gate ----"
      fi
      ;;
    partition)
      echo "==== [partition] partitioning-policy suite + skew gate ===="
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" \
          --target test_partition --target test_harness
        ctest --preset "$preset" -R '^Partition|^BenchArgsPartition' \
          --output-on-failure -j "$JOBS"
      done
      # One asan pass: the permuted-layout slot routing indexes the backing
      # buffer through slot_of on every getd/setd destination — exactly
      # where an off-by-one in a non-identity layout would hide.
      echo "---- [partition] partition suite under asan ----"
      cmake --preset asan
      cmake --build --preset asan -j "$JOBS" --target test_partition
      ctest --preset asan -R '^Partition' --output-on-failure -j "$JOBS"
      if command -v python3 > /dev/null 2>&1; then
        cmake --build --preset default -j "$JOBS" \
          --target part01_skew_scaling
        out=build/BENCH_part_smoke.json
        # Fixed configuration of the committed skew baseline; the bench
        # self-checks bit-identical labels across the four schemes and
        # that degree-aware beats block on owner skew and modeled time,
        # and bench_diff gates the skew_*/nic_* extras on top.
        build/bench/part01_skew_scaling \
          --nodes 4 --threads 2 --seed 1 --json "$out" > /dev/null
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_part_smoke.json "$out"
      else
        echo "---- [partition] python3 not found; skipping bench gate ----"
      fi
      ;;
    scrub-chaos)
      echo "==== [scrub-chaos] SDC defense suite, seeds 1..3 ===="
      # ScrubDigest/ScrubChaos/ScrubRuntime carry the bit-flip matrix
      # (detection, heal, rollback, bit-identical recovery, mirror-poison
      # promotion refusal); MemFlip picks up the fault-plan config tests
      # and BenchArgsRobust the --scrub-interval/--certify/--mem-flips
      # flag handling.
      for preset in default check; do
        cmake --preset "$preset"
        cmake --build --preset "$preset" -j "$JOBS" \
          --target test_scrub --target test_fault --target test_harness
        for seed in 1 2 3; do
          echo "---- [scrub-chaos] preset=$preset fault seed=$seed ----"
          PGRAPH_CHAOS_SEED=$seed ctest --preset "$preset" \
            -R '^Scrub|MemFlip|^BenchArgsRobust' --output-on-failure \
            -j "$JOBS"
        done
      done
      # One chaos seed under asan: heals and rollbacks rewrite partitions
      # in place and the OOB guards clamp corruption-derived indices,
      # exactly where lifetime/bounds bugs would hide.
      echo "---- [scrub-chaos] scrub suite under asan, seed=2 ----"
      cmake --preset asan
      cmake --build --preset asan -j "$JOBS" --target test_scrub
      PGRAPH_CHAOS_SEED=2 ctest --preset asan \
        -R '^Scrub' --output-on-failure -j "$JOBS"
      if command -v python3 > /dev/null 2>&1; then
        cmake --build --preset default -j "$JOBS" \
          --target rob01_sdc_scrub --target fig05_opt_breakdown_random
        out=build/BENCH_rob01_sdc.json
        # Fixed configuration of the committed availability baseline; the
        # bench self-checks zero escapes / interval-1 availability, and
        # bench_diff gates the deterministic scrub_*/certify_* counters
        # exactly on top.
        build/bench/rob01_sdc_scrub --seed 21 --json "$out" > /dev/null
        python3 scripts/bench_diff.py \
          scripts/baselines/BENCH_rob01_sdc.json "$out"
        echo "---- [scrub-chaos] zero-flip plan leaves bench times unchanged ----"
        # A disabled mem-flip plan (mem_flip_at=0) must reproduce the
        # committed smoke baseline bit-for-bit, like the chaos stage's
        # zero-fault gate.
        out=build/BENCH_smoke_zeroflip.json
        build/bench/fig05_opt_breakdown_random \
          --n 2048 --m 8192 --nodes 4 --threads 4 --seed 1 \
          --faults mem_flip_at=0 --fault-seed 3 --json "$out" > /dev/null
        python3 scripts/bench_diff.py --threshold 0 \
          scripts/baselines/BENCH_smoke.json "$out"
      else
        echo "---- [scrub-chaos] python3 not found; skipping bench gates ----"
      fi
      ;;
    *)
      echo "unknown stage: $stage (want: default check tsan asan ubsan lint perf stream serve serve-chaos chaos scrub-chaos partition)" >&2
      exit 2
      ;;
  esac
done

echo "==== all requested stages passed ===="
