#!/usr/bin/env bash
# Build-and-test driver for the verification matrix (see docs/ANALYSIS.md).
#
#   scripts/run_checks.sh                 # all stages
#   scripts/run_checks.sh default check   # just these stages
#
# Stages (each maps to a CMakePresets.json preset):
#   default  plain RelWithDebInfo build + ctest
#   check    PGRAPH_CHECK_ACCESS=ON build + ctest (access-discipline checker)
#   tsan     -fsanitize=thread build + ctest
#   asan     -fsanitize=address,undefined build + ctest
#   lint     clang-tidy over src/tests/examples (skipped if not installed)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default check tsan asan lint)
fi

run_preset() {
  local preset="$1"
  echo "==== [$preset] configure + build + test ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default|check|tsan|asan)
      run_preset "$stage"
      ;;
    lint)
      if command -v clang-tidy > /dev/null 2>&1; then
        echo "==== [lint] clang-tidy ===="
        cmake --preset default
        cmake --build --preset default --target lint
      else
        echo "==== [lint] clang-tidy not found on PATH; skipping ===="
      fi
      ;;
    *)
      echo "unknown stage: $stage (want: default check tsan asan lint)" >&2
      exit 2
      ;;
  esac
done

echo "==== all requested stages passed ===="
