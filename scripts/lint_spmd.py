#!/usr/bin/env python3
"""Static SPMD-discipline lint — the compile-time companion of the runtime
conformance verifier (src/analysis/conformance).

Three checks over src/, bench/ and tests/:

  affinity    A raw `.local_span(` on a GlobalArray outside src/pgas/ and
              src/collectives/.  Private-pointer block access is the
              `localcpy` optimization and is legal, but every site outside
              the runtime/collectives layers must be deliberate: it
              bypasses GetD/SetD and the access discipline only catches
              misuse at runtime in check builds.  New sites must either
              move behind a collective or be added to the allowlist with a
              reason.

  uniformity  A collective call (getd / setd / setd_min / setd_add /
              setd_combine / replicate_to_buddy) or a barrier lexically
              inside an `if` whose condition reads the thread id
              (`ctx.id()`, `ctx.tid()`, ...).  Collectives are called by
              every thread or by none; a thread-dependent branch around
              one deadlocks the barrier or corrupts the exchange.  (The
              runtime verifier catches the dynamic case; this catches it
              before the code ever runs.)

  ownerarith  Raw block-owner arithmetic outside src/pgas/ and
              src/collectives/: a `.block_begin(` / `.block_end(` call
              (storage offsets — they equal global indices only on the
              block fast path) or an owner-by-division `/ blk`.  Since the
              partitioning subsystem landed (src/partition/,
              docs/PARTITIONING.md), global<->local mapping goes through
              Partitioning::owner_of/local_of/global_of or
              GlobalArray::global_index/read_all; code that does the block
              arithmetic by hand silently breaks under --partition.
              Deliberate block-only fast paths go on the allowlist with a
              reason.

Allowlist: scripts/lint_spmd_allow.txt.  Each non-comment line is
  <glob>[:<check>]   [# reason]
matching repo-relative paths (fnmatch); a bare glob suppresses all
checks for matching files, `:affinity` / `:uniformity` / `:ownerarith`
suppresses one.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
`--self-test` runs the built-in fixture snippets instead of the tree.
"""

import fnmatch
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "bench", "tests")
EXEMPT_PREFIXES = ("src/pgas/", "src/collectives/")
ALLOWLIST = os.path.join("scripts", "lint_spmd_allow.txt")

AFFINITY_RE = re.compile(r"[.\->]\s*local_span\s*\(")
OWNERARITH_RE = re.compile(
    r"(?:\.|->)\s*(?:block_begin|block_end)\s*\(|/\s*blk\b")
THREAD_ID_RE = re.compile(r"\b\w+\s*(?:\.|->)\s*(?:id|tid)\s*\(\s*\)")
COLLECTIVE_RE = re.compile(
    r"(?:\b(?:getd|setd|setd_min|setd_add|setd_combine|replicate_to_buddy)"
    r"\s*\(|(?:\.|->)\s*(?:barrier|exchange_barrier)\s*\()"
)


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving newlines
    and column positions so findings carry real line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif ch in ('"', "'"):
                mode = ch
                out.append(ch)
                i += 1
            else:
                out.append(ch)
                i += 1
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
        else:  # inside a string/char literal
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == mode:
                mode = None
                out.append(ch)
                i += 1
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def find_matching(text, open_pos, open_ch, close_ch):
    """Index just past the bracket matching text[open_pos], or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_affinity(path, clean):
    out = []
    for m in AFFINITY_RE.finditer(clean):
        out.append(
            (path, line_of(clean, m.start()), "affinity",
             "raw GlobalArray local_span() outside src/pgas//"
             "src/collectives/ — route through a collective or allowlist "
             "with a reason"))
    return out


def check_ownerarith(path, clean):
    out = []
    for m in OWNERARITH_RE.finditer(clean):
        out.append(
            (path, line_of(clean, m.start()), "ownerarith",
             "raw block-owner arithmetic (block_begin/block_end or owner "
             "division) — valid only on the block layout; route through "
             "Partitioning / GlobalArray::global_index / read_all or "
             "allowlist the block-only fast path with a reason"))
    return out


IF_RE = re.compile(r"\bif\s*\(")


def check_uniformity(path, clean):
    out = []
    for m in IF_RE.finditer(clean):
        cond_open = m.end() - 1
        cond_close = find_matching(clean, cond_open, "(", ")")
        cond = clean[cond_open:cond_close]
        if not THREAD_ID_RE.search(cond):
            continue
        # Branch extent: the brace block, or the single statement up to ';'.
        j = cond_close
        while j < len(clean) and clean[j] in " \t\n":
            j += 1
        if j < len(clean) and clean[j] == "{":
            body_end = find_matching(clean, j, "{", "}")
        else:
            body_end = clean.find(";", j)
            body_end = len(clean) if body_end < 0 else body_end + 1
        body = clean[j:body_end]
        for c in COLLECTIVE_RE.finditer(body):
            out.append(
                (path, line_of(clean, j + c.start()), "uniformity",
                 "collective/barrier inside a thread-id-dependent branch "
                 "(condition at line %d: `%s`) — collectives must be "
                 "called by every thread" %
                 (line_of(clean, cond_open), " ".join(cond.split()))))
    return out


def load_allowlist(repo):
    rules = []
    path = os.path.join(repo, ALLOWLIST)
    if not os.path.exists(path):
        return rules
    with open(path) as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" in line:
                glob, check = line.rsplit(":", 1)
                if check not in ("affinity", "uniformity", "ownerarith"):
                    glob, check = line, None
            else:
                glob, check = line, None
            rules.append((glob, check))
    return rules


def allowed(rules, path, check):
    return any(
        fnmatch.fnmatch(path, glob) and (c is None or c == check)
        for glob, c in rules)


def scan_file(relpath, text):
    if any(relpath.startswith(p) for p in EXEMPT_PREFIXES):
        return []
    clean = strip_comments_and_strings(text)
    return (check_affinity(relpath, clean) + check_uniformity(relpath, clean)
            + check_ownerarith(relpath, clean))


def run_tree(repo):
    rules = load_allowlist(repo)
    findings = []
    for d in SCAN_DIRS:
        for root, _, files in os.walk(os.path.join(repo, d)):
            for name in sorted(files):
                if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    continue
                full = os.path.join(root, name)
                rel = os.path.relpath(full, repo).replace(os.sep, "/")
                with open(full, errors="replace") as f:
                    text = f.read()
                for path, line, check, msg in scan_file(rel, text):
                    if not allowed(rules, path, check):
                        findings.append((path, line, check, msg))
    for path, line, check, msg in findings:
        print("%s:%d: [%s] %s" % (path, line, check, msg))
    if findings:
        print("lint_spmd: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_spmd: clean")
    return 0


# --- self test -------------------------------------------------------------

SELF_TESTS = [
    # (name, path, source, expected check names)
    ("raw local_span outside runtime layers", "src/core/x.cpp",
     "void f(Ctx& ctx) { auto blk = d.local_span(ctx.id()); }",
     ["affinity"]),
    ("local_span inside pgas is the implementation", "src/pgas/x.hpp",
     "auto blk = d.local_span(me);", []),
    ("collective under a thread-id branch", "src/core/y.cpp",
     "void f(Ctx& ctx) {\n  if (ctx.id() == 0) {\n    ctx.barrier();\n  }\n}",
     ["uniformity"]),
    ("braceless thread-id branch", "src/core/y2.cpp",
     "void f(Ctx& ctx) { if (ctx.tid() != 0) ctx.exchange_barrier(); }",
     ["uniformity"]),
    ("setd under a thread-id branch", "tests/t.cpp",
     "if (ctx.id() == 1) c::setd_min(ctx, d, idx, val, opt, cc, ws);",
     ["uniformity"]),
    ("uniform branch around a collective is fine", "src/core/z.cpp",
     "if (frontier_empty) { ctx.barrier(); }", []),
    ("thread-id branch without a collective is fine", "src/core/w.cpp",
     "if (ctx.id() == 0) std::printf(\"leader\\n\");", []),
    ("commented-out collective is ignored", "src/core/v.cpp",
     "if (ctx.id() == 0) {\n  // ctx.barrier();\n  int x = 0;\n}", []),
    ("local_span in a string literal is ignored", "src/core/u.cpp",
     'const char* s = "d.local_span(me)";', []),
    ("block_begin arithmetic outside runtime layers", "src/core/oa.cpp",
     "const std::uint64_t g = d.block_begin(me) + k;", ["ownerarith"]),
    ("block_end in the storage layer is the implementation",
     "src/pgas/oa.hpp", "for (auto i = block_begin(t); i < block_end(t);)",
     []),
    ("owner by division", "src/core/ob.cpp",
     "const int owner = static_cast<int>(g / blk);", ["ownerarith"]),
    ("policy-routed owner lookup is fine", "src/core/oc.cpp",
     "const int owner = P.owner_of(g); const auto s = d.global_index(me, k);",
     []),
    ("commented-out block arithmetic is ignored", "src/core/od.cpp",
     "// const std::uint64_t base = d.block_begin(me);\nint x = 0;", []),
]


def self_test():
    failures = 0
    for name, path, source, expect in SELF_TESTS:
        got = sorted({check for _, _, check, _ in scan_file(path, source)})
        if got != sorted(set(expect)):
            print("SELF-TEST FAIL: %s — expected %s, got %s" %
                  (name, expect or "clean", got or "clean"))
            failures += 1
    # Allowlist semantics: a matching rule suppresses exactly its check.
    rules = [("src/core/x.cpp", "affinity"), ("tests/*", None)]
    if not allowed(rules, "src/core/x.cpp", "affinity"):
        print("SELF-TEST FAIL: scoped allowlist rule did not match")
        failures += 1
    if allowed(rules, "src/core/x.cpp", "uniformity"):
        print("SELF-TEST FAIL: scoped allowlist rule leaked across checks")
        failures += 1
    if not allowed(rules, "tests/t.cpp", "uniformity"):
        print("SELF-TEST FAIL: bare allowlist glob did not match")
        failures += 1
    if failures:
        return 1
    print("lint_spmd: self-test passed (%d cases)" % len(SELF_TESTS))
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    return run_tree(REPO)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
