#pragma once

#include <cstddef>

#include "fault/fault.hpp"
#include "machine/phase_stats.hpp"
#include "pgas/runtime.hpp"
#include "pgas/topology.hpp"

namespace pgraph::pgas {

/// One buddy-replication pass, called collectively (every SPMD thread) by
/// checkpointing algorithms at their checkpoint boundaries.
///
/// Each node mirrors its successor's GlobalArray partitions: thread t
/// snapshots its blocks of every registered ReplicaSite into the arrays'
/// mirrors and ships the bytes to prev_live_node(node(t)) — the node that
/// will promote them if node(t) dies.  Honest accounting: the local
/// read+write of the snapshot is charged as streamed memory, the shipment
/// as an exchange message to the buddy's leader thread, both on the
/// modeled clock.
///
/// No-op unless a fault plan with loss_at > 0 or a memory-flip plan is
/// attached (mirrors are the scrubber's heal source, so bit-flip plans
/// keep them fresh too), so zero-loss runs stay bit-identical to
/// fault-free ones (the invariance rule of docs/ROBUSTNESS.md).
inline void replicate_to_buddy(ThreadCtx& ctx) {
  Runtime& rt = ctx.runtime();
  fault::FaultInjector* finj = rt.fault_injector();
  if (finj == nullptr || !(finj->config().loss_enabled() ||
                           finj->config().mem_flips_enabled()))
    return;
  const Topology& topo = ctx.topo();
  if (topo.live_node_count() < 2) return;
  // Both early-outs above depend only on process-global state, so they are
  // taken uniformly — safe to fingerprint after them.
#ifdef PGRAPH_CHECK_ACCESS
  {
    auto& cv = analysis::ConformanceVerifier::instance();
    if (cv.enabled())
      cv.note_collective(ctx.id(),
                         cv.site_id(analysis::CollOp::Replicate, nullptr),
                         /*arg_sig=*/0);
  }
#endif

  const int me = ctx.id();
  std::size_t bytes = 0;
  for (ReplicaSite* site : rt.replica_sites()) {
    // A refused seal means corruption landed since the scrub compare: the
    // old mirror stays authoritative, and the flag below turns into a
    // detection + recovery event at the next barrier completion.
    if (!site->replica_snapshot_thread(me)) rt.note_corruption();
    bytes += site->replica_thread_bytes(me);
  }
  // Local half: stream the blocks out of DRAM and into the mirror.
  ctx.mem_seq(2 * bytes, machine::Cat::Comm);
  finj->count_replica_bytes(bytes);

  // Mirrors are complete in memory once every thread passes this barrier;
  // declare them promotable *before* the exchange so a loss striking the
  // shipment barrier itself can still shrink onto fresh mirrors.
  ctx.barrier();
  if (me == 0) {
    rt.mark_replicas_valid();
    finj->count_replication();
  }

  // Network half: ship this thread's partition bytes to the buddy node.
  const int buddy = topo.prev_live_node(ctx.node());
  if (buddy >= 0 && buddy != ctx.node() && bytes > 0)
    ctx.post_exchange_msg(topo.leader_of_node(buddy), bytes);
  ctx.exchange_barrier();
}

}  // namespace pgraph::pgas
