#pragma once

#include <cstddef>
#include <functional>

#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::pgas::upc {

/// A thin UPC-flavoured veneer over the runtime so that algorithm code can
/// be written in the shape of the paper's Figure 1 ("CC-SMP and CC-UPC are
/// almost identical except for the names of a few language constructs").
/// It adds nothing semantically — every call forwards to ThreadCtx /
/// GlobalArray — but it makes the correspondence with UPC source auditable:
///
///   upc::Env upc(ctx);
///   upc.forall(0, n, affinity_of_D, [&](std::size_t i) { ... });
///   upc.barrier();
///
/// maps to
///
///   upc_forall (i = 0; i < n; i++; &D[i]) { ... }
///   upc_barrier;
class Env {
 public:
  explicit Env(ThreadCtx& ctx) : ctx_(&ctx) {}

  /// MYTHREAD / THREADS.
  int mythread() const { return ctx_->id(); }
  int threads() const { return ctx_->nthreads(); }

  /// upc_barrier.
  void barrier() { ctx_->barrier(); }

  /// upc_forall with pointer affinity: the iteration for index i runs on
  /// the thread that owns A[i] (UPC's `&A[i]` affinity expression).
  template <class T, class Body>
  void forall(std::size_t lo, std::size_t hi, GlobalArray<T>& affinity,
              Body body) {
    for (std::size_t i = lo; i < hi; ++i)
      if (affinity.owner(i) == ctx_->id()) body(i);
    ctx_->compute(hi - lo, machine::Cat::Work);  // affinity tests
  }

  /// upc_forall with integer affinity: iteration i runs on thread i % s.
  template <class Body>
  void forall(std::size_t lo, std::size_t hi, Body body) {
    const auto s = static_cast<std::size_t>(ctx_->nthreads());
    const auto me = static_cast<std::size_t>(ctx_->id());
    for (std::size_t i = lo + me; i < hi;
         i += s)  // cyclic, as UPC integer affinity
      body(i);
    ctx_->compute((hi - lo) / s + 1, machine::Cat::Work);
  }

  /// Shared-array element access (fine-grained, like compiled UPC code).
  template <class T>
  T read(GlobalArray<T>& a, std::size_t i) {
    return a.get(*ctx_, i);
  }
  template <class T>
  void write(GlobalArray<T>& a, std::size_t i, T v) {
    a.put(*ctx_, i, v);
  }

  /// upc_memget / upc_memput (coalesced bulk transfers).
  template <class T>
  void memget(T* dst, GlobalArray<T>& src, std::size_t start,
              std::size_t count) {
    src.memget(*ctx_, start, count, dst);
  }
  template <class T>
  void memput(GlobalArray<T>& dst, std::size_t start, const T* src,
              std::size_t count) {
    dst.memput(*ctx_, start, count, src);
  }

  ThreadCtx& ctx() { return *ctx_; }

 private:
  ThreadCtx* ctx_;
};

}  // namespace pgraph::pgas::upc
