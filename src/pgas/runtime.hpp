#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "analysis/conformance.hpp"
#include "fault/fault.hpp"
#include "machine/cost_params.hpp"
#include "machine/exchange_sim.hpp"
#include "machine/memory_model.hpp"
#include "machine/network_model.hpp"
#include "machine/phase_stats.hpp"
#include "partition/partitioning.hpp"
#include "pgas/topology.hpp"
#include "pgas/trace_hook.hpp"

namespace pgraph::pgas {

class Runtime;

/// A data structure whose per-thread partitions can be mirrored on a buddy
/// node and restored after a permanent node loss (GlobalArray implements
/// this).  Snapshot/restore move real bytes; the *cost* of the movement is
/// charged by the callers (pgas::replicate_to_buddy at checkpoints, the
/// runtime's shrink protocol at promotion).
class ReplicaSite {
 public:
  virtual ~ReplicaSite() = default;
  /// Bytes of thread `thr`'s partition (what a snapshot/restore moves).
  virtual std::size_t replica_thread_bytes(int thr) const = 0;
  /// Copy thread `thr`'s partition into the mirror and seal its checksum.
  /// Returns false WITHOUT touching the old mirror when the partition no
  /// longer matches its maintained scrub checksum — a fault that landed
  /// after the scrub compare must never be sealed into the repair source.
  virtual bool replica_snapshot_thread(int thr) = 0;
  /// Restore thread `thr`'s partition from the mirror (no-op if no
  /// snapshot was ever taken).
  virtual void replica_restore_thread(int thr) = 0;
  /// Order-independent hash of the site's committed state, for the
  /// determinism digests (Runtime::set_digest_enabled).  Only called from
  /// the barrier completion step (all SPMD threads parked), so plain reads
  /// of the data are safe.  The default keeps sites without meaningful
  /// state out of the digest.
  virtual std::uint64_t state_digest() const { return 0; }

  /// --- at-rest integrity (scrub protocol, docs/ROBUSTNESS.md) -----------
  /// The defaults opt a site out of the whole protocol: no bytes to flip,
  /// nothing to scrub, mirrors trusted as before.  GlobalArray implements
  /// the real thing for arrays opted in with set_scrubbed(true).

  enum class ScrubState : std::uint8_t {
    Clean,      ///< checksum matched (or the site has nothing to verify)
    Baselined,  ///< first pass: checksum recorded, nothing to compare yet
    Corrupt,    ///< bytes changed outside any tracked commit point
  };

  /// Raw bytes of thread `thr`'s resident partition — the memory-fault
  /// injector's bit-flip target.  Empty when the site is not scrub-tracked
  /// (flips into undefended memory would be silently undetectable, which
  /// is outside the threat model the test matrix certifies).
  virtual std::span<unsigned char> partition_bytes(int thr) {
    (void)thr;
    return {};
  }
  /// Raw bytes of thread `thr`'s mirror slice (empty until snapshotted).
  virtual std::span<unsigned char> mirror_bytes(int thr) {
    (void)thr;
    return {};
  }
  /// Verify thread `thr`'s mirror bytes against the checksum recorded at
  /// the last snapshot.  Sites without mirror checksums report true (they
  /// are trusted exactly as before the scrub protocol existed).
  virtual bool mirror_checksum_ok(int thr) const {
    (void)thr;
    return true;
  }
  /// One scrub step over thread `thr`'s partition: the first call records
  /// the baseline checksum, later calls re-walk the bytes and compare.
  virtual ScrubState scrub_thread(int thr) {
    (void)thr;
    return ScrubState::Clean;
  }
  /// Heal thread `thr`'s partition from its mirror: validates the mirror
  /// checksum, copies the block back, re-baselines.  False when no
  /// validated mirror is available (the caller falls back to rollback).
  virtual bool heal_thread(int thr) {
    (void)thr;
    return false;
  }
  /// True iff thread `thr`'s partition has a live baseline checksum.
  virtual bool integrity_tracking_thread(int thr) const {
    (void)thr;
    return false;
  }
  /// Recompute the baseline from current bytes (after an untracked bulk
  /// restore, e.g. a checkpoint rollback).  No-op without a baseline.
  virtual void rebaseline_thread(int thr) { (void)thr; }
  /// Drop thread `thr`'s baseline so the next scrub records a fresh one
  /// instead of comparing against state that is about to be restored.
  virtual void integrity_invalidate_thread(int thr) { (void)thr; }
};

/// Per-thread execution context handed to every SPMD function.
///
/// Carries the thread's identity, its BSP cost clock, and its per-category
/// cost statistics.  All cost-charging goes through this class so that
/// algorithms read like their UPC originals with instrumentation attached.
class ThreadCtx {
 public:
  ThreadCtx(Runtime& rt, int id);

  int id() const { return id_; }
  /// Node currently hosting this thread.  Resolved through the live owner
  /// map, so it changes when the runtime shrinks after a permanent loss.
  int node() const;
  int nthreads() const;
  int nnodes() const;
  const Topology& topo() const;
  Runtime& runtime() { return *rt_; }
  const machine::MemoryModel& mem() const;
  machine::NetworkModel& net();

  /// Barrier epoch this thread is executing in: the number of barrier
  /// completions this Runtime has performed, never reset (reset_costs
  /// zeroes clocks but not the epoch, so access-checker shadow state can
  /// never alias across runs).  Two accesses are "concurrent" for the
  /// access discipline iff they happen in the same epoch.
  std::uint64_t epoch() const;

  /// --- cost charging ---------------------------------------------------
  double now_ns() const { return clock_; }
  void charge(machine::Cat c, double ns) {
    clock_ += ns;
    stats_.add(c, ns);
#ifdef PGRAPH_CHECK_ACCESS
    // Double-entry ledger: every charge is mirrored so the conformance
    // verifier can assert, at each barrier, that the sum of individual
    // charges equals the PhaseStats totals exactly.
    analysis::ConformanceVerifier::instance().ledger_charge(id_, c, ns);
#endif
  }
  /// `ops` simple CPU operations.
  void compute(std::size_t ops, machine::Cat c = machine::Cat::Work);
  /// Sequential stream of `bytes` local memory.
  void mem_seq(std::size_t bytes, machine::Cat c);
  /// `count` random accesses of `elem_bytes` over `working_set_bytes`.
  void mem_random(std::size_t count, std::size_t working_set_bytes,
                  std::size_t elem_bytes, machine::Cat c);
  /// `count` scattered stores (write misses overlap; see MemoryModel).
  void mem_random_write(std::size_t count, std::size_t working_set_bytes,
                        std::size_t elem_bytes, machine::Cat c);
  /// `count` compulsory (first-touch) misses: full latency plus one DRAM
  /// line each, regardless of working set.
  void mem_compulsory(std::size_t count, std::size_t elem_bytes,
                      machine::Cat c);
  /// `n` fine-grained lock acquire/release pairs.
  void locks(std::size_t n, machine::Cat c = machine::Cat::Work);

  /// --- fine-grained remote operations (cost only) ----------------------
  /// Blocking remote read of `bytes` from `owner_thread` (cost only; the
  /// data movement itself is done by the caller through shared memory).
  void remote_get_cost(int owner_thread, std::size_t bytes,
                       machine::Cat c = machine::Cat::Comm);
  void remote_put_cost(int owner_thread, std::size_t bytes,
                       machine::Cat c = machine::Cat::Comm);
  /// Bulk (coalesced) one-sided transfers.
  void bulk_get_cost(int owner_thread, std::size_t bytes,
                     machine::Cat c = machine::Cat::Comm);
  void bulk_put_cost(int owner_thread, std::size_t bytes,
                     machine::Cat c = machine::Cat::Comm);

  /// --- scheduled exchange (order-sensitive, see ExchangeSim) -----------
  /// Record that this thread's next exchange phase sends `bytes` to
  /// `dst_thread` as its next message in issue order.  Same-node messages
  /// are charged as memory copies immediately and not enqueued.
  void post_exchange_msg(int dst_thread, std::size_t bytes);
  /// Barrier that additionally prices the posted exchange messages with the
  /// event-sweep NIC simulation and advances every clock past the phase.
  void exchange_barrier();

  /// --- synchronization --------------------------------------------------
  void barrier();

  /// --- pointer registry (for one-sided access to peers' buffers) -------
  static constexpr int kRegistrySlots = 8;
  void publish(int slot, void* p);
  void* peer_ptr(int thread, int slot) const;
  template <class T>
  T* peer_as(int thread, int slot) const {
    return static_cast<T*>(peer_ptr(thread, slot));
  }

  const machine::PhaseStats& stats() const { return stats_; }
  machine::PhaseStats& stats() { return stats_; }

 private:
  friend class Runtime;
  Runtime* rt_;
  int id_;
  double clock_ = 0.0;
  machine::PhaseStats stats_;
  // Pending exchange messages for the next exchange_barrier().
  std::vector<machine::ExchangeMsg> pending_;
};

/// SPMD PGAS runtime: spawns one OS thread per UPC thread, provides
/// cost-aligned barriers (BSP superstep boundaries), and owns the machine
/// models.
///
/// Cost semantics of a barrier:
///   T_new = max( max_i clock_i,
///                T_last_barrier + drain(NIC service since last barrier),
///                T_last_barrier + drain(node memory-bus traffic),
///                T_last_barrier + exchange_phase_duration )
///          + barrier_cost(s)
/// after which every thread clock is set to T_new.  The NIC drain term
/// implements per-node serialization of fine-grained network traffic; the
/// memory-bus drain implements the shared DRAM bandwidth of an SMP node
/// (the t threads' misses contend for one bus); the exchange term prices
/// collective exchange phases with the order-sensitive event-sweep
/// simulation.
class Runtime {
 public:
  Runtime(Topology topo, machine::CostParams params);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Topology& topo() const { return topo_; }
  const machine::CostParams& params() const { return params_; }
  const machine::MemoryModel& mem() const { return mem_model_; }
  machine::NetworkModel& net() { return *net_; }

  /// Run `f` SPMD on all threads; blocks until all complete.  May be called
  /// repeatedly; cost clocks and stats persist across calls until
  /// reset_costs().
  ///
  /// Exception safety: if `f` throws on every thread after the same
  /// barrier (how FaultError is raised — retry exhaustion is detected in
  /// the completion step, so all threads see it together), the first
  /// exception is rethrown here after all threads joined and the barrier
  /// has been rebuilt; the Runtime remains usable.  An exception thrown on
  /// only some threads while others wait in a barrier deadlocks, exactly
  /// as diverging SPMD control flow always does.
  void run(const std::function<void(ThreadCtx&)>& f);

  /// Zero all clocks, stats and counters (not the topology).
  void reset_costs();

  /// Max thread clock after the last run (including a final NIC drain).
  double modeled_time_ns() const { return finish_ns_; }
  /// Per-category stats of the critical thread (element-wise max).
  machine::PhaseStats critical_stats() const;
  /// Element-wise sum over threads (total resource consumption).
  machine::PhaseStats total_stats() const;
  /// Per-thread cumulative stats as of the last completed run() (index =
  /// thread id).  Tracers attaching mid-life use this as their baseline.
  const std::vector<machine::PhaseStats>& saved_thread_stats() const {
    return saved_stats_;
  }

  std::uint64_t barriers_executed() const { return barriers_; }
  /// Monotone barrier-epoch counter (like barriers_executed, but never
  /// reset by reset_costs — the access checker keys its shadow state on
  /// it, so epochs must not repeat within a Runtime's lifetime).
  std::uint64_t epoch() const { return epoch_; }

  /// Verdict of the most recent barrier: which of the four competing terms
  /// set the superstep's end time.  Maintained at every barrier, tracing
  /// on or off (the terms are computed anyway; labeling the max is free).
  /// Readable from SPMD code immediately after a barrier returns — the
  /// completion step is ordered before any thread resumes — and after
  /// run() returns.
  const BarrierVerdict& last_barrier_verdict() const { return last_verdict_; }

  /// Attach (or detach, with nullptr) a trace sink.  Must not be called
  /// while run() is executing.  The sink outlives the attachment.
  void set_trace_sink(TraceSink* sink);
  TraceSink* trace_sink() const { return sink_; }

  /// Attach (or detach, with nullptr) a fault injector.  Must not be
  /// called while run() is executing; the injector outlives the
  /// attachment.  With an all-zero FaultConfig attached, modeled times are
  /// bit-identical to running with no injector at all (every fault cost is
  /// gated on its rate being nonzero).
  ///
  /// Attaching a non-null injector validates its plan against this
  /// runtime's topology (std::invalid_argument on e.g. outage/loss plans
  /// with one node) and resets its counters, so per-attach deltas in bench
  /// reports never double-count a previous runtime's events.
  void set_fault_injector(fault::FaultInjector* inj);
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// --- buddy replication (degraded mode) -------------------------------
  /// GlobalArrays register themselves so the shrink protocol can promote
  /// their mirrors.  Registration is free on the modeled clock; mirrors
  /// are only materialized when a replication pass runs.
  void register_replica_site(ReplicaSite* site);
  void unregister_replica_site(ReplicaSite* site);
  /// Snapshot of the registered sites (replication passes iterate this
  /// from SPMD threads; the set is stable while run() executes because
  /// arrays are constructed host-side).
  std::vector<ReplicaSite*> replica_sites() const {
    std::lock_guard<std::mutex> lock(replica_mu_);
    return replica_sites_;
  }
  /// True once a full replication pass covered the current set of sites
  /// (reset whenever the set changes); the shrink protocol refuses to
  /// promote stale or missing mirrors.
  bool replicas_valid() const {
    return replicas_valid_.load(std::memory_order_acquire);
  }
  void mark_replicas_valid() {
    replicas_valid_.store(true, std::memory_order_release);
  }

  /// --- at-rest integrity (scrub protocol, docs/ROBUSTNESS.md) ----------
  /// Collective chunked scrubber: every thread re-walks its partitions of
  /// the scrub-tracked ReplicaSites at streamed-memory cost (Cat::Scrub)
  /// and compares against the incrementally maintained checksums.  The
  /// first pass baselines; later passes detect.  A corrupt partition heals
  /// from its buddy mirror when the mirror checksum validates (charged as
  /// a read of the mirror plus a write of the block) — otherwise its
  /// baseline is dropped so the checkpoint-rollback path can restore it.
  /// Either outcome raises one scrub recovery event (feeding
  /// recovery_events(), so checkpointing loops roll back), and an
  /// unhealable detection additionally throws FaultError{MemoryCorrupt}
  /// collectively.  Costs three barriers per pass.
  void scrub(ThreadCtx& ctx);
  /// Re-baseline partition checksums from current bytes after an untracked
  /// bulk restore (checkpoint rollback), charging the re-walk to
  /// Cat::Scrub.  Free when no partition of the calling thread has a live
  /// baseline — runs without scrubbing are byte-identical.
  void rebaseline_integrity(ThreadCtx& ctx);
  /// True while an armed mem-flip plan is attached: collectives then
  /// bounds-check corruption-derived request indices instead of asserting
  /// (a flipped high bit in a label becomes a wild gather index before the
  /// next scrub pass can catch it).  Off this path behavior is unchanged.
  bool mem_guard_active() const;
  /// Called when corruption is caught outside a scrub pass — a serve loop
  /// clamped an out-of-range request index under mem_guard_active(), or a
  /// seal-time verify refused a mismatching snapshot.  The next barrier
  /// completion converts the flag into a detection plus scrub recovery
  /// event, so checkpointing loops roll back past the corrupted epoch
  /// instead of crashing on (or re-sealing) it.
  void note_corruption() {
    corrupt_index_.store(true, std::memory_order_relaxed);
  }

  /// --- determinism digests (docs/ANALYSIS.md) --------------------------
  /// When enabled, the barrier completion step hashes the committed state
  /// of every registered ReplicaSite into an order-independent digest per
  /// superstep, recorded in SuperstepRecord (trace/bench JSON) and
  /// readable here.  Observation only: digests never touch the modeled
  /// clocks, so enabling them cannot change modeled time.  Must not be
  /// toggled while run() is executing.
  void set_digest_enabled(bool on) { digest_enabled_ = on; }
  bool digest_enabled() const { return digest_enabled_; }
  /// Digest computed at the most recent barrier (0 until one completes
  /// with digests enabled).
  std::uint64_t last_state_digest() const { return last_digest_; }

  /// --- partitioning policy (docs/PARTITIONING.md) ----------------------
  /// The distribution scheme kernels apply to their vertex-shaped data
  /// arrays.  Host-side only (arrays are constructed host-side); default
  /// Block, which every committed baseline was generated under.  Arrays
  /// opt in explicitly via `GlobalArray(rt, n, rt.make_partitioning(n))`;
  /// infrastructure arrays (the collective count/offset matrices) keep the
  /// plain Block constructor so their local_span layout stays put.
  void set_partition_spec(partition::PartitionSpec spec) {
    part_spec_ = std::move(spec);
  }
  const partition::PartitionSpec& partition_spec() const {
    return part_spec_;
  }
  /// Instantiate the active spec for an n-element array.  Degree specs
  /// bind only to arrays of exactly n_hint elements (one slot per vertex);
  /// any other size falls back to Block.
  partition::Partitioning make_partitioning(std::size_t n) const {
    return partition::Partitioning::make(part_spec_, n,
                                         topo_.total_threads());
  }

  /// Per-runtime sequential id for GlobalArrays (host-side construction
  /// order, so ids are deterministic across runs).  The conformance
  /// verifier folds it into collective argument signatures to catch
  /// threads targeting different arrays at the same call site.
  std::uint64_t new_array_uid() {
    return next_array_uid_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True iff a TraceSink is attached.
  bool tracing() const;
  /// Forward a completed modeled-time scope [t0_ns, now] on the calling
  /// SPMD thread to the sink (used by TraceScope; no-op without a sink or
  /// outside run()).
  void trace_scope(const char* name, double t0_ns);
  /// Forward a CRCW window boundary at the calling thread's modeled time.
  void trace_crcw(const char* label, bool begin);

 private:
  friend class ThreadCtx;

  struct alignas(64) Slot {
    ThreadCtx* ctx = nullptr;
    void* registry[ThreadCtx::kRegistrySlots] = {};
  };

  struct alignas(64) NodeBus {
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void barrier_sync(ThreadCtx& ctx, bool exchange);
  void on_barrier();  // completion step, runs on one thread
  /// Called from the completion step when the exchange retry budget is
  /// exhausted.  If every surviving retransmission involves a permanently
  /// lost node and valid buddy mirrors exist, promotes the mirrors, remaps
  /// the dead node's threads onto the buddy and returns true (the threads
  /// of this barrier then throw FaultError{PermanentLoss} collectively);
  /// otherwise returns false and the caller falls back to RetryExhausted.
  bool try_shrink_after_exhaustion(
      const std::vector<std::pair<std::size_t, machine::ExchangeMsg>>& retry,
      double& exch_dur);
  /// Hash every registered ReplicaSite's committed state (completion step
  /// only; threads parked).
  std::uint64_t compute_state_digest() const;
  /// Apply the fault plan's seeded memory bit flips to resident partitions
  /// or mirrors (completion step of epoch mem_flip_at; threads parked).
  /// Silent by construction: no cost, no checksum update — detection is
  /// the scrubber's job.
  void apply_mem_flips();
  void accrue_bus(int node, double ns);
  /// Drain per-node DRAM-bus accumulators; when `out` is non-null, writes
  /// each node's busy time into out[0..nodes).
  double drain_bus_ns(double* out);
  double drain_bus_max_ns() { return drain_bus_ns(nullptr); }

  Topology topo_;
  machine::CostParams params_;
  machine::MemoryModel mem_model_;
  std::unique_ptr<machine::NetworkModel> net_;
  std::vector<Slot> slots_;
  std::unique_ptr<NodeBus[]> bus_;
  std::vector<std::int32_t> thread_node_;
  std::unique_ptr<std::barrier<std::function<void()>>> bar_;
  double last_barrier_ns_ = 0.0;
  double finish_ns_ = 0.0;
  std::uint64_t barriers_ = 0;
  std::uint64_t epoch_ = 0;
  // Saved stats from threads of completed run() calls.
  std::vector<machine::PhaseStats> saved_stats_;
  std::vector<double> saved_clocks_;

  // --- fault injection --------------------------------------------------
  fault::FaultInjector* fault_ = nullptr;
  /// Set in the completion step when exchange retransmissions exhausted
  /// their retry budget; every thread of that barrier throws FaultError.
  std::atomic<bool> fault_failed_{false};
  fault::FaultCounters trace_prev_faults_;

  // --- degraded mode (permanent node loss) ------------------------------
  mutable std::mutex replica_mu_;
  std::vector<ReplicaSite*> replica_sites_;
  std::atomic<bool> replicas_valid_{false};
  /// Epoch whose completion step performed a shrink; the threads returning
  /// from that exchange barrier (epoch_ == loss_throw_epoch_ + 1) all
  /// throw FaultError{PermanentLoss} so checkpointing algorithms roll
  /// back.  ~0 means "no shrink pending".
  std::uint64_t loss_throw_epoch_ = ~0ull;
  /// Set when a shrink was refused because a buddy mirror failed its
  /// checksum validation; the collective failure throw is then
  /// FaultError{MemoryCorrupt} instead of RetryExhausted, so the operator
  /// can tell a poisoned mirror from a flaky network.
  std::atomic<bool> mirror_poisoned_{false};

  // --- at-rest integrity (scrub protocol) -------------------------------
  /// Monotone pass-outcome counters (never reset; threads snapshot them
  /// across the scrub barriers to compute per-pass deltas collectively).
  std::atomic<std::uint64_t> scrub_detected_{0};
  std::atomic<std::uint64_t> scrub_healed_{0};
  std::atomic<std::uint64_t> scrub_unhealable_{0};
  /// Thread 0's running totals (only touched between scrub barriers).
  std::uint64_t scrub_seen_detected_ = 0;
  std::uint64_t scrub_seen_healed_ = 0;
  std::uint64_t scrub_seen_unhealable_ = 0;
  /// Set by serve loops that clamp an out-of-range (corruption-derived)
  /// request index under an armed mem-flip plan; drained by the barrier
  /// completion step into a scrub recovery event.
  std::atomic<bool> corrupt_index_{false};

  // --- partitioning policy ----------------------------------------------
  partition::PartitionSpec part_spec_;

  // --- determinism digests ----------------------------------------------
  bool digest_enabled_ = false;
  std::uint64_t last_digest_ = 0;
  std::atomic<std::uint64_t> next_array_uid_{0};

  // --- bottleneck attribution / tracing --------------------------------
  BarrierVerdict last_verdict_;
  TraceSink* sink_ = nullptr;
  // Scratch reused every traced barrier (allocated on sink attach so the
  // untraced path never touches them).
  std::vector<double> trace_arrival_;
  std::vector<machine::PhaseStats> trace_stats_;
  std::vector<NodeSuperstep> trace_nodes_;
  std::uint64_t trace_prev_msgs_ = 0;
  std::uint64_t trace_prev_bytes_ = 0;
  std::uint64_t trace_prev_fine_ = 0;
};

/// The ThreadCtx of the calling OS thread while inside Runtime::run, or
/// null outside any SPMD region.  The access checker uses this to identify
/// the accessor on paths that do not take a ThreadCtx parameter
/// (local_span, raw, the relaxed element accessors); null means
/// single-threaded verification code, which is exempt from the discipline.
ThreadCtx* current_ctx() noexcept;

}  // namespace pgraph::pgas
