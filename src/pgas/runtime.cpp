#include "pgas/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <string>
#include <thread>

#include "analysis/access_checker.hpp"
#include "analysis/conformance.hpp"
#include "pgas/digest.hpp"

namespace pgraph::pgas {

namespace {

thread_local ThreadCtx* t_current_ctx = nullptr;

/// Credit `bytes` of data motion against this thread's cost clock in the
/// access checker's per-epoch ledger (no-op unless PGRAPH_CHECK_ACCESS).
inline void checker_charged(int thread, std::size_t bytes) {
#ifdef PGRAPH_CHECK_ACCESS
  analysis::AccessChecker::instance().add_charged(thread, bytes);
#else
  (void)thread;
  (void)bytes;
#endif
}

}  // namespace

ThreadCtx* current_ctx() noexcept { return t_current_ctx; }

// ---------------------------------------------------------------------------
// TraceScope
// ---------------------------------------------------------------------------

TraceScope::TraceScope(ThreadCtx& ctx, const char* name)
    : ctx_(&ctx), name_(name) {
  if (ctx_->runtime().tracing()) t0_ = ctx_->now_ns();
}

TraceScope::~TraceScope() {
  if (ctx_->runtime().tracing()) ctx_->runtime().trace_scope(name_, t0_);
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

ThreadCtx::ThreadCtx(Runtime& rt, int id) : rt_(&rt), id_(id) {
  clock_ = rt.saved_clocks_[static_cast<std::size_t>(id)];
  stats_ = rt.saved_stats_[static_cast<std::size_t>(id)];
}

int ThreadCtx::node() const { return rt_->topo().node_of(id_); }

std::uint64_t ThreadCtx::epoch() const { return rt_->epoch_; }

int ThreadCtx::nthreads() const { return rt_->topo().total_threads(); }
int ThreadCtx::nnodes() const { return rt_->topo().nodes; }
const Topology& ThreadCtx::topo() const { return rt_->topo(); }
const machine::MemoryModel& ThreadCtx::mem() const { return rt_->mem(); }
machine::NetworkModel& ThreadCtx::net() { return rt_->net(); }

void ThreadCtx::compute(std::size_t ops, machine::Cat c) {
  charge(c, rt_->mem().compute_ns(ops));
}

void ThreadCtx::mem_seq(std::size_t bytes, machine::Cat c) {
  charge(c, rt_->mem().seq_ns(bytes));
  rt_->accrue_bus(node(), static_cast<double>(bytes) *
                              rt_->params().mem_bus_inv_bw_ns_per_byte);
  checker_charged(id_, bytes);
}

void ThreadCtx::mem_random(std::size_t count, std::size_t working_set_bytes,
                           std::size_t elem_bytes, machine::Cat c) {
  charge(c, rt_->mem().random_ns(count, working_set_bytes, elem_bytes));
  rt_->accrue_bus(
      node(), rt_->mem().random_traffic_bytes(count, working_set_bytes,
                                              elem_bytes) *
                  rt_->params().mem_bus_inv_bw_ns_per_byte);
  checker_charged(id_, count * elem_bytes);
}

void ThreadCtx::mem_random_write(std::size_t count,
                                 std::size_t working_set_bytes,
                                 std::size_t elem_bytes, machine::Cat c) {
  charge(c, rt_->mem().random_write_ns(count, working_set_bytes, elem_bytes));
  rt_->accrue_bus(
      node(), rt_->mem().random_traffic_bytes(count, working_set_bytes,
                                              elem_bytes) *
                  rt_->params().mem_bus_inv_bw_ns_per_byte);
  checker_charged(id_, count * elem_bytes);
}

void ThreadCtx::mem_compulsory(std::size_t count, std::size_t elem_bytes,
                               machine::Cat c) {
  const auto& p = rt_->params();
  charge(c, static_cast<double>(count) *
                (p.mem_latency_ns +
                 static_cast<double>(elem_bytes) * p.mem_inv_bw_ns_per_byte));
  rt_->accrue_bus(node(), static_cast<double>(count) *
                              static_cast<double>(p.cache_line_bytes) *
                              p.dram_random_penalty *
                              p.mem_bus_inv_bw_ns_per_byte);
  checker_charged(id_, count * elem_bytes);
}

void ThreadCtx::locks(std::size_t n, machine::Cat c) {
  charge(c, rt_->mem().locks_ns(n));
}

void ThreadCtx::remote_get_cost(int owner_thread, std::size_t bytes,
                                machine::Cat c) {
  const int me = node();
  const int dst = rt_->topo().node_of(owner_thread);
  if (dst == me) {
    // Same node: a random access into the owner's block.
    mem_random(1, rt_->params().cache_bytes * 4, bytes, c);
    return;
  }
  charge(c, rt_->net().fine_get_ns(me, dst, bytes));
  checker_charged(id_, bytes);
}

void ThreadCtx::remote_put_cost(int owner_thread, std::size_t bytes,
                                machine::Cat c) {
  const int me = node();
  const int dst = rt_->topo().node_of(owner_thread);
  if (dst == me) {
    mem_random(1, rt_->params().cache_bytes * 4, bytes, c);
    return;
  }
  charge(c, rt_->net().fine_put_ns(me, dst, bytes));
  checker_charged(id_, bytes);
}

void ThreadCtx::bulk_get_cost(int owner_thread, std::size_t bytes,
                              machine::Cat c) {
  checker_charged(id_, bytes);
  const int me = node();
  const int dst = rt_->topo().node_of(owner_thread);
  if (dst == me) {
    charge(c, rt_->mem().seq_ns(bytes));
    return;
  }
  charge(c, rt_->net().bulk_get_ns(me, dst, bytes));
}

void ThreadCtx::bulk_put_cost(int owner_thread, std::size_t bytes,
                              machine::Cat c) {
  checker_charged(id_, bytes);
  const int me = node();
  const int dst = rt_->topo().node_of(owner_thread);
  if (dst == me) {
    charge(c, rt_->mem().seq_ns(bytes));
    return;
  }
  charge(c, rt_->net().bulk_put_ns(me, dst, bytes));
}

void ThreadCtx::post_exchange_msg(int dst_thread, std::size_t bytes) {
  const int dst_node = rt_->topo().node_of(dst_thread);
  if (dst_node == node()) {
    // Intra-node "message": a streamed memory copy, no NIC involvement.
    mem_seq(bytes, machine::Cat::Comm);
    return;
  }
  const std::size_t wire = bytes + 16;  // header
  machine::ExchangeMsg msg;
  msg.dst_node = static_cast<std::int32_t>(dst_node);
  msg.service_ns = rt_->net().msg_service_ns(wire);
  msg.wire_bytes = static_cast<std::uint32_t>(wire);
  pending_.push_back(msg);
  rt_->net().count_message(wire);
  checker_charged(id_, bytes);
}

void ThreadCtx::exchange_barrier() {
  rt_->barrier_sync(*this, true);
  // A shrink in the completion step tags its epoch; the threads returning
  // from exactly that barrier (epoch advanced by one) throw together so
  // checkpointing algorithms can roll back onto the surviving nodes.
  if (rt_->loss_throw_epoch_ + 1 == rt_->epoch_) {
    throw fault::FaultError(
        fault::FaultKind::PermanentLoss,
        "permanent node loss; runtime shrank onto the buddy (epoch " +
            std::to_string(rt_->loss_throw_epoch_) + ")");
  }
  // Retry exhaustion is detected in the completion step, so every thread
  // of this barrier observes it and throws together (collective failure;
  // Runtime::run unwinds without deadlock).
  if (rt_->fault_failed_.load(std::memory_order_relaxed)) {
    if (rt_->mirror_poisoned_.load(std::memory_order_relaxed)) {
      throw fault::FaultError(
          fault::FaultKind::MemoryCorrupt,
          "buddy mirror failed checksum validation at promotion; refusing "
          "to resume on poisoned replica bytes (epoch " +
              std::to_string(rt_->epoch_) + ")");
    }
    throw fault::FaultError(
        fault::FaultKind::RetryExhausted,
        "exchange retransmission retries exhausted (epoch " +
            std::to_string(rt_->epoch_) + ")");
  }
}

void ThreadCtx::barrier() { rt_->barrier_sync(*this, false); }

void ThreadCtx::publish(int slot, void* p) {
  assert(slot >= 0 && slot < kRegistrySlots);
  rt_->slots_[static_cast<std::size_t>(id_)].registry[slot] = p;
}

void* ThreadCtx::peer_ptr(int thread, int slot) const {
  assert(slot >= 0 && slot < kRegistrySlots);
  return rt_->slots_[static_cast<std::size_t>(thread)].registry[slot];
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Topology topo, machine::CostParams params)
    : topo_(topo),
      params_(std::move(params)),
      mem_model_(params_),
      net_(std::make_unique<machine::NetworkModel>(params_, topo.nodes)),
      slots_(static_cast<std::size_t>(topo.total_threads())),
      bus_(std::make_unique<NodeBus[]>(static_cast<std::size_t>(topo.nodes))),
      thread_node_(topo.thread_node_map()),
      saved_stats_(static_cast<std::size_t>(topo.total_threads())),
      saved_clocks_(static_cast<std::size_t>(topo.total_threads()), 0.0) {
  bar_ = std::make_unique<std::barrier<std::function<void()>>>(
      topo.total_threads(), std::function<void()>([this] { on_barrier(); }));
}

Runtime::~Runtime() {
  if (sink_ != nullptr) sink_->on_runtime_gone();
}

void Runtime::run(const std::function<void(ThreadCtx&)>& f) {
  const int s = topo_.total_threads();
  fault_failed_.store(false, std::memory_order_relaxed);
  mirror_poisoned_.store(false, std::memory_order_relaxed);
  corrupt_index_.store(false, std::memory_order_relaxed);
#ifdef PGRAPH_CHECK_ACCESS
  // Re-baseline the conformance verifier on this runtime's saved stats
  // (what each ThreadCtx starts from) and clear stale fingerprints, so
  // consecutively attached runtimes never leak verifier state into each
  // other's rows.
  analysis::ConformanceVerifier::instance().begin_run(s, saved_stats_.data());
#endif
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    threads.emplace_back([this, &f, &first_error, &error_mu, i] {
      ThreadCtx ctx(*this, i);
      slots_[static_cast<std::size_t>(i)].ctx = &ctx;
      t_current_ctx = &ctx;
      // Initial sync: every slot registered before anyone proceeds.
      barrier_sync(ctx, false);
      bool ok = true;
      try {
        f(ctx);
      } catch (...) {
        // FaultError is thrown collectively (all threads, same barrier),
        // so nobody is left waiting for us at the final barrier.
        ok = false;
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Final alignment so modeled_time_ns() reflects the critical path.
      if (ok) barrier_sync(ctx, false);
      saved_clocks_[static_cast<std::size_t>(i)] = ctx.clock_;
      saved_stats_[static_cast<std::size_t>(i)] = ctx.stats_;
      slots_[static_cast<std::size_t>(i)].ctx = nullptr;
      t_current_ctx = nullptr;
    });
  }
  for (auto& t : threads) t.join();
  finish_ns_ = last_barrier_ns_;
  if (first_error) {
    // All threads threw after the same barrier, so no arrival is pending;
    // rebuild the phase-synchronization barrier anyway so a later run()
    // starts from a known-clean state.
    bar_ = std::make_unique<std::barrier<std::function<void()>>>(
        topo_.total_threads(),
        std::function<void()>([this] { on_barrier(); }));
    std::rethrow_exception(first_error);
  }
}

void Runtime::accrue_bus(int node, double ns) {
  bus_[static_cast<std::size_t>(node)].busy_ns.fetch_add(
      static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
}

double Runtime::drain_bus_ns(double* out) {
  std::uint64_t mx = 0;
  for (int i = 0; i < topo_.nodes; ++i) {
    const std::uint64_t v = bus_[static_cast<std::size_t>(i)].busy_ns.exchange(
        0, std::memory_order_relaxed);
    if (out != nullptr) out[i] = static_cast<double>(v);
    if (v > mx) mx = v;
  }
  return static_cast<double>(mx);
}

std::uint64_t Runtime::compute_state_digest() const {
  // Sites register host-side and the set is stable while run() executes;
  // the lock only fences against host-side (un)registration.  Sites are
  // combined in registration order, which is deterministic (arrays are
  // constructed single-threaded), and each site's own digest is
  // order-independent over its elements.
  std::uint64_t d = 0;
  std::lock_guard<std::mutex> lock(replica_mu_);
  for (const ReplicaSite* site : replica_sites_)
    d = mix64(d ^ site->state_digest());
  return d;
}

bool Runtime::tracing() const { return sink_ != nullptr; }

void Runtime::trace_scope(const char* name, double t0_ns) {
  ThreadCtx* c = t_current_ctx;
  if (sink_ == nullptr || c == nullptr) return;
  sink_->on_scope(c->id(), name, t0_ns, c->now_ns());
}

void Runtime::trace_crcw(const char* label, bool begin) {
  ThreadCtx* c = t_current_ctx;
  if (sink_ == nullptr || c == nullptr) return;
  sink_->on_crcw(c->id(), label, c->now_ns(), begin);
}

void Runtime::set_fault_injector(fault::FaultInjector* inj) {
  if (inj != nullptr) {
    inj->config().validate_topology(topo_.nodes);
    // Per-attach counter lifetime: bench reports delta per row, so a
    // previously attached runtime's events must not leak into this one.
    inj->reset_counters();
  }
  fault_ = inj;
  fault_failed_.store(false, std::memory_order_relaxed);
  mirror_poisoned_.store(false, std::memory_order_relaxed);
  corrupt_index_.store(false, std::memory_order_relaxed);
  trace_prev_faults_ =
      inj != nullptr ? inj->counters() : fault::FaultCounters{};
}

void Runtime::register_replica_site(ReplicaSite* site) {
  std::lock_guard<std::mutex> lock(replica_mu_);
  replica_sites_.push_back(site);
  replicas_valid_.store(false, std::memory_order_release);
}

void Runtime::unregister_replica_site(ReplicaSite* site) {
  std::lock_guard<std::mutex> lock(replica_mu_);
  std::erase(replica_sites_, site);
  replicas_valid_.store(false, std::memory_order_release);
}

void Runtime::set_trace_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) return;
  const std::size_t s = static_cast<std::size_t>(topo_.total_threads());
  trace_arrival_.assign(s, 0.0);
  trace_stats_.assign(s, machine::PhaseStats{});
  trace_nodes_.assign(static_cast<std::size_t>(topo_.nodes), NodeSuperstep{});
  trace_prev_msgs_ = net_->total_messages();
  trace_prev_bytes_ = net_->total_bytes();
  trace_prev_fine_ = net_->fine_messages();
  trace_prev_faults_ =
      fault_ != nullptr ? fault_->counters() : fault::FaultCounters{};
}

void Runtime::reset_costs() {
  for (auto& st : saved_stats_) st.reset();
  std::fill(saved_clocks_.begin(), saved_clocks_.end(), 0.0);
  last_barrier_ns_ = 0.0;
  finish_ns_ = 0.0;
  barriers_ = 0;
  net_ = std::make_unique<machine::NetworkModel>(params_, topo_.nodes);
  drain_bus_max_ns();
  last_verdict_ = BarrierVerdict{};
  // The fresh NetworkModel's counters restart at zero; the external fault
  // injector's do not, so re-baseline the fault deltas instead.
  trace_prev_msgs_ = trace_prev_bytes_ = trace_prev_fine_ = 0;
  trace_prev_faults_ =
      fault_ != nullptr ? fault_->counters() : fault::FaultCounters{};
  fault_failed_.store(false, std::memory_order_relaxed);
  mirror_poisoned_.store(false, std::memory_order_relaxed);
  corrupt_index_.store(false, std::memory_order_relaxed);
  // An attached sink baselines its deltas on cumulative stats; tell it the
  // clocks restarted so it can re-baseline (and rebase its timeline).
  if (sink_ != nullptr) sink_->on_reset();
}

machine::PhaseStats Runtime::critical_stats() const {
  machine::PhaseStats out;
  for (const auto& st : saved_stats_) out.merge_max(st);
  return out;
}

machine::PhaseStats Runtime::total_stats() const {
  machine::PhaseStats out;
  for (const auto& st : saved_stats_) out.merge_sum(st);
  return out;
}

void Runtime::barrier_sync(ThreadCtx& ctx, bool exchange) {
#ifdef PGRAPH_CHECK_ACCESS
  // Fingerprint the barrier kind closing this epoch; the completion step
  // cross-checks it together with the collective sequence.
  analysis::ConformanceVerifier::instance().note_barrier(ctx.id(), exchange);
#else
  (void)ctx;
  (void)exchange;
#endif
  bar_->arrive_and_wait();
}

bool Runtime::try_shrink_after_exhaustion(
    const std::vector<std::pair<std::size_t, machine::ExchangeMsg>>& retry,
    double& exch_dur) {
  if (fault_ == nullptr) return false;
  const int lost = fault_->perm_lost_node(topo_.nodes, epoch_);
  if (lost < 0 || !topo_.node_alive(lost)) return false;
  if (topo_.live_node_count() < 2) return false;
  // Only shrink when the dead node explains every undelivered message;
  // anything else is a genuine retry exhaustion.
  for (const auto& [thr, msg] : retry) {
    const int src = thread_node_[static_cast<std::size_t>(thr)];
    if (src != lost && msg.dst_node != lost) return false;
  }
  const int buddy = topo_.prev_live_node(lost);
  if (buddy < 0) return false;
  std::size_t promoted = 0;
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    // Without valid mirrors there is nothing to promote; refuse rather
    // than resume on stale data (the run fails with RetryExhausted).
    if (!replica_sites_.empty() &&
        !replicas_valid_.load(std::memory_order_acquire))
      return false;
    // Validate every mirror checksum before touching anything: a mirror
    // that rotted since its snapshot must never be promoted (the bytes
    // would silently poison the survivors).  The re-walk is charged below
    // as a streamed read of the candidate bytes; failure surfaces as a
    // collective FaultError{MemoryCorrupt} instead of RetryExhausted.
    std::size_t verify_bytes = 0;
    bool poisoned = false;
    for (int t = 0; t < topo_.total_threads(); ++t) {
      if (topo_.node_of(t) != lost) continue;
      for (ReplicaSite* site : replica_sites_) {
        verify_bytes += site->replica_thread_bytes(t);
        if (!site->mirror_checksum_ok(t)) poisoned = true;
      }
    }
    exch_dur += mem_model_.seq_ns(verify_bytes);
    if (poisoned) {
      mirror_poisoned_.store(true, std::memory_order_relaxed);
      return false;
    }
    // Promote the buddy's mirrors: the dead node's partitions reappear as
    // the checkpoint-time copies the buddy holds.  Threads are parked in
    // the barrier, so the restore is ordered against all of them.
    for (int t = 0; t < topo_.total_threads(); ++t) {
      if (topo_.node_of(t) != lost) continue;
      for (ReplicaSite* site : replica_sites_) {
        site->replica_restore_thread(t);
        promoted += site->replica_thread_bytes(t);
      }
    }
  }
  // Promotion cost: a streamed read of the mirror plus a write of the
  // block, on the buddy.  It extends this barrier's exchange term and
  // occupies the buddy's memory bus.
  if (promoted > 0) {
    exch_dur += mem_model_.seq_ns(2 * promoted);
    accrue_bus(buddy, static_cast<double>(2 * promoted) *
                          params_.mem_bus_inv_bw_ns_per_byte);
  }
  // The buddy adopts the dead node's threads: every affinity query,
  // exchange route and collective target id now resolves through the
  // updated owner map.  Thread count is unchanged (the SPMD barrier needs
  // all of them); live node count drops by one.
  topo_.remap_node(lost, buddy);
  thread_node_ = topo_.thread_node_map();
  fault_->count_promoted(promoted);
  fault_->raise_loss_event();
  loss_throw_epoch_ = epoch_;
  return true;
}

bool Runtime::mem_guard_active() const {
  return fault_ != nullptr && fault_->armed() &&
         fault_->config().mem_flips_enabled();
}

void Runtime::apply_mem_flips() {
  const fault::FaultConfig& cfg = fault_->config();
  // Enumerate the flippable byte ranges: scrub-tracked partitions, or the
  // buddy mirrors when the plan targets them.  Completion step: threads
  // are parked, so plain writes are ordered against all of them.
  struct Target {
    unsigned char* p;
    std::size_t len;
  };
  std::vector<Target> targets;
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    for (ReplicaSite* site : replica_sites_) {
      for (int t = 0; t < topo_.total_threads(); ++t) {
        const std::span<unsigned char> sp = cfg.mem_flip_mirror
                                                ? site->mirror_bytes(t)
                                                : site->partition_bytes(t);
        if (sp.empty()) continue;
        targets.push_back({sp.data(), sp.size()});
        total += sp.size();
      }
    }
  }
  if (total == 0) return;
  std::uint64_t flipped = 0;
  for (int k = 0; k < cfg.mem_flips; ++k) {
    // Two independent sub-draws per flip: the victim byte (uniform over
    // every resident byte) and the bit within it.
    std::uint64_t off = fault_->mem_flip_word(epoch_, k, 0) % total;
    const int bit = static_cast<int>(fault_->mem_flip_word(epoch_, k, 1) & 7);
    for (const Target& tg : targets) {
      if (off < tg.len) {
        tg.p[off] ^= static_cast<unsigned char>(1u << bit);
        ++flipped;
        break;
      }
      off -= tg.len;
    }
  }
  if (flipped > 0) fault_->count_mem_flips(flipped);
}

void Runtime::scrub(ThreadCtx& ctx) {
  const int me = ctx.id();
  const std::vector<ReplicaSite*> sites = replica_sites();
  // Snapshot the unhealable counter BEFORE the entry barrier: between the
  // previous pass's visibility barrier and this one nobody mutates it, so
  // every thread reads the same value.  Reading it after the entry barrier
  // would race with fast threads already in their walk phase -- a slow
  // thread could observe their fetch_adds, conclude bad_total == bad0, and
  // skip the collective throw the rest of the pass takes (deadlock at the
  // next barrier).
  const std::uint64_t bad0 =
      scrub_unhealable_.load(std::memory_order_acquire);
  ctx.barrier();  // entry: prior-pass contributions quiescent
  std::size_t walked = 0;
  std::uint64_t det = 0;
  std::uint64_t heal = 0;
  std::uint64_t bad = 0;
  for (ReplicaSite* site : sites) {
    const std::size_t bytes = site->replica_thread_bytes(me);
    if (bytes == 0 || !(site->integrity_tracking_thread(me) ||
                        !site->partition_bytes(me).empty()))
      continue;
    walked += bytes;
    if (site->scrub_thread(me) == ReplicaSite::ScrubState::Corrupt) {
      ++det;
      if (site->heal_thread(me)) {
        // Heal: one streamed read of the mirror plus a write of the block.
        ctx.mem_seq(2 * bytes, machine::Cat::Scrub);
        ++heal;
      } else {
        // No validated mirror: drop the baseline so the next pass records
        // a fresh one, and leave the repair to the checkpoint-rollback
        // path (the scrub event below triggers it).
        site->integrity_invalidate_thread(me);
        ++bad;
      }
    }
  }
  // The re-walk itself: a sequential stream over every scrubbed byte.
  if (walked > 0) ctx.mem_seq(walked, machine::Cat::Scrub);
  if (det > 0) scrub_detected_.fetch_add(det, std::memory_order_acq_rel);
  if (heal > 0) scrub_healed_.fetch_add(heal, std::memory_order_acq_rel);
  if (bad > 0) scrub_unhealable_.fetch_add(bad, std::memory_order_acq_rel);
  ctx.barrier();  // every thread's contribution is visible
  const std::uint64_t bad_total =
      scrub_unhealable_.load(std::memory_order_acquire);
  if (me == 0) {
    const std::uint64_t d = scrub_detected_.load(std::memory_order_acquire);
    const std::uint64_t h = scrub_healed_.load(std::memory_order_acquire);
    if (fault_ != nullptr) {
      fault_->count_scrub_pass();
      if (d > scrub_seen_detected_)
        fault_->count_scrub_detected(d - scrub_seen_detected_);
      if (h > scrub_seen_healed_)
        fault_->count_scrub_heals(h - scrub_seen_healed_);
      // One recovery event per pass that found anything: healed bytes are
      // checkpoint-time bytes and unhealable ones need the checkpoint
      // restore, so either way the loop must roll back.
      if (d > scrub_seen_detected_) fault_->raise_scrub_event();
    }
    scrub_seen_detected_ = d;
    scrub_seen_healed_ = h;
    scrub_seen_unhealable_ = bad_total;
  }
  // The scrub event is visible to every loop-top recovery poll after this.
  ctx.barrier();
  if (bad_total > bad0) {
    throw fault::FaultError(
        fault::FaultKind::MemoryCorrupt,
        "scrub detected partition corruption with no validated mirror "
        "(epoch " +
            std::to_string(epoch_) + ")");
  }
}

void Runtime::rebaseline_integrity(ThreadCtx& ctx) {
  const int me = ctx.id();
  std::size_t walked = 0;
  for (ReplicaSite* site : replica_sites()) {
    if (!site->integrity_tracking_thread(me)) continue;
    site->rebaseline_thread(me);
    walked += site->replica_thread_bytes(me);
  }
  if (walked > 0) ctx.mem_seq(walked, machine::Cat::Scrub);
}

void Runtime::on_barrier() {
  const int s = topo_.total_threads();
  const bool traced = sink_ != nullptr;
  const double t_start = last_barrier_ns_;

  // Straggler injection: perturb per-thread clocks before they compete in
  // the barrier max (a slow thread is indistinguishable from one that did
  // more work).  Gated on the rate so a zero-fault plan costs nothing.
  if (fault_ != nullptr && fault_->config().straggle_p > 0.0) {
    for (int i = 0; i < s; ++i) {
      const double d = fault_->straggler_delay_ns(epoch_, i);
      if (d > 0.0) {
        ThreadCtx* c = slots_[static_cast<std::size_t>(i)].ctx;
        c->clock_ += d;
        c->stats_.add(machine::Cat::Comm, d);
#ifdef PGRAPH_CHECK_ACCESS
        analysis::ConformanceVerifier::instance().ledger_charge(
            i, machine::Cat::Comm, d);
#endif
      }
    }
  }

  double max_clock = 0.0;
  bool any_exchange = false;
  for (int i = 0; i < s; ++i) {
    ThreadCtx* c = slots_[static_cast<std::size_t>(i)].ctx;
    assert(c != nullptr);
    max_clock = std::max(max_clock, c->clock_);
    any_exchange = any_exchange || !c->pending_.empty();
    if (traced) trace_arrival_[static_cast<std::size_t>(i)] = c->clock_;
  }

  // Per-node serialization floors: fine-grained network traffic on the
  // NIC, and DRAM traffic on the shared memory bus.  With a sink attached
  // we additionally keep the per-node breakdown instead of only the max.
  std::vector<machine::NetworkModel::NicDrain> nic_nodes;
  std::vector<double> bus_nodes;
  std::vector<machine::ExchangeNodeStats> exch_nodes;
  double nic_drain = 0.0;
  double bus_drain = 0.0;
  if (traced) {
    nic_nodes.resize(static_cast<std::size_t>(topo_.nodes));
    bus_nodes.resize(static_cast<std::size_t>(topo_.nodes));
    nic_drain = net_->drain_nic_ns(nic_nodes.data());
    bus_drain = drain_bus_ns(bus_nodes.data());
  } else {
    nic_drain = net_->drain_nic_max_ns();
    bus_drain = drain_bus_max_ns();
  }

  double exch_dur = 0.0;
  if (any_exchange) {
    machine::ExchangePlan plan(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
      ThreadCtx* c = slots_[static_cast<std::size_t>(i)].ctx;
      plan[static_cast<std::size_t>(i)] = std::move(c->pending_);
      c->pending_.clear();
    }
    if (traced) exch_nodes.resize(static_cast<std::size_t>(topo_.nodes));
    std::vector<machine::ExchangeNodeStats> attempt_nodes(
        traced ? static_cast<std::size_t>(topo_.nodes) : 0);
    // Ack/timeout protocol in modeled time: the injector marks each
    // attempt's losses, the sweep prices what actually flew, and lost
    // messages are retransmitted after a timeout plus exponential backoff
    // until delivered or the retry budget is exhausted (collective
    // FaultError).  Outage losses time out once but are not retried while
    // the node is down — the checkpoint/rollback path recovers those.
    int attempt = 0;
    for (;;) {
      fault::ExchangeFaults ef;
      if (fault_ != nullptr)
        ef = fault_->apply_exchange(plan, thread_node_, topo_.nodes, epoch_,
                                    attempt);
      const double before = exch_dur;
      exch_dur += machine::exchange_duration_ns(
          plan, thread_node_, topo_.nodes, params_.net_latency_ns,
          traced ? attempt_nodes.data() : nullptr);
      if (traced) {
        for (int n = 0; n < topo_.nodes; ++n) {
          machine::ExchangeNodeStats& acc =
              exch_nodes[static_cast<std::size_t>(n)];
          const machine::ExchangeNodeStats& a =
              attempt_nodes[static_cast<std::size_t>(n)];
          acc.send_busy_ns += a.send_busy_ns;
          acc.recv_busy_ns += a.recv_busy_ns;
          acc.send_finish_ns =
              std::max(acc.send_finish_ns, before + a.send_finish_ns);
          acc.recv_finish_ns =
              std::max(acc.recv_finish_ns, before + a.recv_finish_ns);
          acc.msgs_out += a.msgs_out;
          acc.msgs_in += a.msgs_in;
        }
      }
      if (fault_ == nullptr) break;
      const fault::FaultConfig& fc = fault_->config();
      if (ef.outage_drops > 0 || !ef.retry.empty()) {
        // Senders discover the losses by ack timeout.
        exch_dur += fc.ack_timeout_ns;
        fault_->count_retry_wait(fc.ack_timeout_ns);
      }
      if (ef.retry.empty()) break;
      if (attempt >= fc.max_retries) {
        // When every surviving retransmission targets (or originates on) a
        // permanently lost node, the retry budget exhausting is the
        // failure detector: shrink onto the buddy instead of giving up.
        if (!try_shrink_after_exhaustion(ef.retry, exch_dur))
          fault_failed_.store(true, std::memory_order_relaxed);
        break;
      }
      const double backoff = fc.backoff_ns_for(attempt);
      exch_dur += backoff;
      fault_->count_retry_wait(backoff);
      // Rebuild the plan from the lost messages only and go again; the
      // retransmissions are real traffic for the message counters.
      for (auto& lst : plan) lst.clear();
      for (const auto& [thr, msg] : ef.retry) {
        plan[thr].push_back(msg);
        net_->count_message(msg.wire_bytes);
      }
      fault_->count_retransmits(ef.retry.size());
      ++attempt;
    }
  }

  // The four competing terms of the barrier max; the largest wins and is
  // recorded as the superstep's bottleneck verdict (ties resolve in the
  // order threads < nic < bus < exchange).  A non-exchange superstep's
  // exchange term degenerates to t_start so it can never win.
  const double t_threads = max_clock;
  const double t_nic = t_start + nic_drain;
  const double t_bus = t_start + bus_drain;
  const double t_exchange = any_exchange ? max_clock + exch_dur : t_start;
  // Clock-regression guard: every candidate end time must be at or past
  // the previous barrier (clocks only advance; drains are non-negative).
  assert(t_threads >= t_start);
  assert(t_nic >= t_start);
  assert(t_bus >= t_start);
  assert(t_exchange >= t_start);

  double t = t_threads;
  BarrierVerdict::Winner winner = BarrierVerdict::Winner::Threads;
  if (t_nic > t) {
    t = t_nic;
    winner = BarrierVerdict::Winner::Nic;
  }
  if (t_bus > t) {
    t = t_bus;
    winner = BarrierVerdict::Winner::Bus;
  }
  if (t_exchange > t) {
    t = t_exchange;
    winner = BarrierVerdict::Winner::Exchange;
  }

  const double bar_cost =
      params_.barrier_base_ns + params_.barrier_per_thread_ns * s;
  const double t_final = t + bar_cost;
  last_verdict_ = {t_start,  t_threads, t_nic,   t_bus,        t_exchange,
                   exch_dur, bar_cost,  t_final, winner,       any_exchange};

  for (int i = 0; i < s; ++i) {
    ThreadCtx* c = slots_[static_cast<std::size_t>(i)].ctx;
    if (any_exchange) {
      // In a communication superstep, waiting *is* communication time.
      const double wait = t_final - c->clock_;
      c->stats_.add(machine::Cat::Comm, wait);
#ifdef PGRAPH_CHECK_ACCESS
      analysis::ConformanceVerifier::instance().ledger_charge(
          i, machine::Cat::Comm, wait);
#endif
    } else {
      c->stats_.add(machine::Cat::Comm, bar_cost);
#ifdef PGRAPH_CHECK_ACCESS
      analysis::ConformanceVerifier::instance().ledger_charge(
          i, machine::Cat::Comm, bar_cost);
#endif
    }
    c->clock_ = t_final;
  }
  last_barrier_ns_ = t_final;
#ifdef PGRAPH_CHECK_ACCESS
  // Close the access-checker epoch that the threads just finished: compare
  // per-thread moved vs. charged bytes while everyone is parked in the
  // barrier (the completion step is ordered against all of them).
  analysis::AccessChecker::instance().end_epoch(epoch_, s);
  {
    // Conformance checks ride the same completion step: the cost ledger
    // must balance against the final per-thread stats of the epoch, and
    // the collective fingerprints must agree across threads.
    auto& cv = analysis::ConformanceVerifier::instance();
    std::vector<const machine::PhaseStats*> actual(
        static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i)
      actual[static_cast<std::size_t>(i)] =
          &slots_[static_cast<std::size_t>(i)].ctx->stats_;
    cv.check_ledger(epoch_, s, actual.data());
    cv.end_epoch(epoch_, s);
  }
#endif
  // Seeded at-rest bit flips land here, after every thread's writes of the
  // epoch committed and before the digest observes the state.  Silent and
  // free by construction — the modeled clock only moves when the scrubber
  // detects and heals.  Gated on the plan so zero-flip configurations are
  // byte-identical to uninjected runs.
  if (fault_ != nullptr && fault_->armed() &&
      fault_->config().mem_flips_enabled() &&
      epoch_ == fault_->config().mem_flip_at)
    apply_mem_flips();
  // A serve loop clamped an out-of-range request index this epoch: that
  // can only come from a flipped label escaping into a gather before the
  // scrubber ran.  Count it as a detection and raise a recovery event so
  // the checkpoint loop rolls back past the clamped (garbage) superstep.
  if (corrupt_index_.exchange(false, std::memory_order_relaxed) &&
      fault_ != nullptr && fault_->armed()) {
    fault_->count_scrub_detected(1);
    fault_->raise_scrub_event();
  }
  // Determinism digest of the committed GlobalArray state at this barrier
  // (observation only: never touches the modeled clocks).
  if (digest_enabled_) last_digest_ = compute_state_digest();
  if (traced) {
    for (int i = 0; i < s; ++i)
      trace_stats_[static_cast<std::size_t>(i)] =
          slots_[static_cast<std::size_t>(i)].ctx->stats_;
    for (int n = 0; n < topo_.nodes; ++n) {
      NodeSuperstep& ns = trace_nodes_[static_cast<std::size_t>(n)];
      ns.nic = nic_nodes[static_cast<std::size_t>(n)];
      ns.bus_busy_ns = bus_nodes[static_cast<std::size_t>(n)];
      ns.exch = any_exchange ? exch_nodes[static_cast<std::size_t>(n)]
                             : machine::ExchangeNodeStats{};
    }
    SuperstepRecord rec;
    rec.index = barriers_;
    rec.epoch = epoch_;
    rec.verdict = last_verdict_;
    rec.arrival_clock = &trace_arrival_;
    rec.stats = &trace_stats_;
    rec.nodes = &trace_nodes_;
    const std::uint64_t msgs = net_->total_messages();
    const std::uint64_t bytes = net_->total_bytes();
    const std::uint64_t fine = net_->fine_messages();
    rec.msgs_delta = msgs - trace_prev_msgs_;
    rec.bytes_delta = bytes - trace_prev_bytes_;
    rec.fine_msgs_delta = fine - trace_prev_fine_;
    trace_prev_msgs_ = msgs;
    trace_prev_bytes_ = bytes;
    trace_prev_fine_ = fine;
    if (fault_ != nullptr) {
      const fault::FaultCounters fc = fault_->counters();
      const fault::FaultCounters& pv = trace_prev_faults_;
      rec.fault_drops_delta =
          (fc.drops + fc.outage_drops) - (pv.drops + pv.outage_drops);
      rec.fault_retransmits_delta = fc.retransmits - pv.retransmits;
      rec.fault_corruptions_delta = fc.corruptions - pv.corruptions;
      rec.fault_rollbacks_delta = fc.rollbacks - pv.rollbacks;
      rec.fault_wait_ns_delta = fc.retry_wait_ns - pv.retry_wait_ns;
      rec.fault_loss_drops_delta = fc.loss_drops - pv.loss_drops;
      rec.fault_shrinks_delta = fc.loss_events - pv.loss_events;
      trace_prev_faults_ = fc;
    }
    rec.live_nodes = topo_.live_node_count();
    rec.has_digest = digest_enabled_;
    rec.state_digest = digest_enabled_ ? last_digest_ : 0;
    sink_->on_superstep(rec);
  }
  // One recovery event per outage window, raised at the barrier that ends
  // it (the node "reboots"); checkpointing loops poll outage_events() at
  // iteration granularity and roll back on a change.
  if (fault_ != nullptr && fault_->outage_ends_at(epoch_))
    fault_->raise_outage_event();
  ++barriers_;
  ++epoch_;
}

}  // namespace pgraph::pgas
