#pragma once

#include <cstdint>
#include <vector>

#include "machine/exchange_sim.hpp"
#include "machine/network_model.hpp"
#include "machine/phase_stats.hpp"

namespace pgraph::pgas {

class ThreadCtx;

/// The four competing terms of the barrier max (see Runtime's class
/// comment and §5 of docs/MODEL.md):
///
///   T_new = max( max_i clock_i,                       -> Threads
///                T_last + drain_NIC,                  -> Nic
///                T_last + drain_BUS,                  -> Bus
///                max_i clock_i + exchange_duration )  -> Exchange
///          + barrier_cost
///
/// The runtime evaluates all four at every barrier — tracing on or off —
/// and labels the *winning* term, so each superstep carries a bottleneck
/// verdict: which resource the superstep could not end before.
struct BarrierVerdict {
  enum class Winner : std::uint8_t { Threads = 0, Nic, Bus, Exchange };

  double t_start = 0.0;      ///< T_last_barrier when the superstep began
  double t_threads = 0.0;    ///< max_i clock_i (slowest thread)
  double t_nic = 0.0;        ///< t_start + max-node fine-grained NIC drain
  double t_bus = 0.0;        ///< t_start + max-node DRAM bus drain
  double t_exchange = 0.0;   ///< t_threads + exchange sweep duration
  double exchange_ns = 0.0;  ///< the sweep duration itself (0 if none)
  double barrier_cost_ns = 0.0;
  double t_final = 0.0;      ///< the new aligned clock (includes barrier cost)
  Winner winner = Winner::Threads;
  bool had_exchange = false;

  /// Duration of the superstep this verdict closes.
  double duration_ns() const { return t_final - t_start; }
};

inline constexpr std::size_t kNumBarrierWinners = 4;

constexpr const char* winner_name(BarrierVerdict::Winner w) {
  switch (w) {
    case BarrierVerdict::Winner::Threads:
      return "threads";
    case BarrierVerdict::Winner::Nic:
      return "nic";
    case BarrierVerdict::Winner::Bus:
      return "bus";
    case BarrierVerdict::Winner::Exchange:
      return "exchange";
  }
  return "?";
}

/// Per-node resource occupancy of one superstep, as seen at its barrier.
struct NodeSuperstep {
  machine::NetworkModel::NicDrain nic;  ///< fine-grained NIC drain
  double bus_busy_ns = 0.0;             ///< DRAM bus traffic drained
  machine::ExchangeNodeStats exch;      ///< exchange-sweep occupancy
};

/// Everything the runtime knows about one superstep, handed to the trace
/// sink from the barrier completion step (single-threaded; all SPMD
/// threads parked).  Vectors are owned by the runtime and reused across
/// barriers — sinks must copy what they keep.
struct SuperstepRecord {
  std::uint64_t index = 0;  ///< barriers_executed() value closing this step
  std::uint64_t epoch = 0;  ///< access-checker epoch that just ended
  BarrierVerdict verdict;
  /// Per-thread clock at barrier arrival (before alignment to t_final).
  const std::vector<double>* arrival_clock = nullptr;
  /// Per-thread cumulative stats *after* this barrier's accounting (the
  /// sink diffs consecutive records to get per-superstep category time).
  const std::vector<machine::PhaseStats>* stats = nullptr;
  const std::vector<NodeSuperstep>* nodes = nullptr;
  /// NetworkModel counter deltas over this superstep.
  std::uint64_t msgs_delta = 0;
  std::uint64_t bytes_delta = 0;
  std::uint64_t fine_msgs_delta = 0;
  /// FaultInjector counter deltas over this superstep (all zero when no
  /// injector is attached): where resilience cost went.
  std::uint64_t fault_drops_delta = 0;        ///< drops incl. outage drops
  std::uint64_t fault_retransmits_delta = 0;
  std::uint64_t fault_corruptions_delta = 0;
  std::uint64_t fault_rollbacks_delta = 0;
  std::uint64_t fault_wait_ns_delta = 0;      ///< ack timeouts + backoff
  std::uint64_t fault_loss_drops_delta = 0;   ///< drops to/from a lost node
  std::uint64_t fault_shrinks_delta = 0;      ///< permanent-loss shrinks
  /// Nodes still hosting threads after this superstep (== topology nodes
  /// until a shrink; each shrink decrements it — the degraded-epoch mark).
  int live_nodes = 0;
  /// Determinism digest of the committed GlobalArray state at this barrier
  /// (Runtime::set_digest_enabled; has_digest is false when the feature is
  /// off, and state_digest is then meaningless).
  bool has_digest = false;
  std::uint64_t state_digest = 0;
};

/// Interface the runtime reports into when tracing is enabled
/// (Runtime::set_trace_sink).  on_superstep is called from the barrier
/// completion step (exactly one thread, all others parked); on_scope and
/// on_crcw are called concurrently from SPMD threads, each always passing
/// its own thread id — per-thread sink state needs no locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_superstep(const SuperstepRecord& rec) = 0;
  /// The runtime this sink is attached to is being destroyed; the sink
  /// must drop any pointer to it.  Sinks commonly outlive runtimes (one
  /// tracer across many bench configurations), so this is how the
  /// attachment ends without an explicit detach.
  virtual void on_runtime_gone() noexcept {}
  /// The attached runtime's clocks and stats were reset to zero
  /// (Runtime::reset_costs) while the sink stays attached.  Sinks that
  /// baseline deltas against cumulative stats must re-baseline here, or
  /// the first superstep after the reset computes negative deltas.
  /// Called outside run() (no SPMD threads live).
  virtual void on_reset() noexcept {}
  /// A named modeled-time interval [t0_ns, t1_ns] on `thread`'s clock
  /// (collective phases: "getd.serve", "setd.apply", ...).
  virtual void on_scope(int thread, const char* name, double t0_ns,
                        double t1_ns) = 0;
  /// A CRCW combine-window boundary on `thread`'s clock (the access
  /// discipline's declared-benign windows; label is "crcw.min" or
  /// "crcw.overwrite").
  virtual void on_crcw(int thread, const char* label, double ts_ns,
                       bool begin) = 0;
};

/// RAII modeled-time annotation: records [now at construction, now at
/// destruction] on the calling thread's trace track.  Zero-cost (two
/// pointer reads, one branch) when no sink is attached.  `name` must
/// outlive the trace (string literals).
class TraceScope {
 public:
  TraceScope(ThreadCtx& ctx, const char* name);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ThreadCtx* ctx_;
  const char* name_;
  double t0_ = 0.0;
};

}  // namespace pgraph::pgas
