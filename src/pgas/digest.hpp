#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pgraph::pgas {

/// splitmix64 finalizer: the cheap, well-distributed mixer the determinism
/// digests are built from.  Not cryptographic — the digests detect model
/// nondeterminism, not adversaries.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Digest of one element: its index keyed into the hash so that swapping
/// two equal-valued slots still changes nothing (as it should) but moving
/// a value to a different index does.  `bytes` need not be 8-aligned.
inline std::uint64_t element_digest(std::uint64_t index, const void* p,
                                    std::size_t bytes) {
  std::uint64_t acc = mix64(index + 1);
  const auto* b = static_cast<const unsigned char*>(p);
  while (bytes > 0) {
    const std::size_t chunk = bytes < 8 ? bytes : 8;
    std::uint64_t w = 0;
    std::memcpy(&w, b, chunk);
    acc = mix64(acc ^ w);
    b += chunk;
    bytes -= chunk;
  }
  return acc;
}

}  // namespace pgraph::pgas
