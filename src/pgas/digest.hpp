#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pgraph::pgas {

/// splitmix64 finalizer: the cheap, well-distributed mixer the determinism
/// digests are built from.  Not cryptographic — the digests detect model
/// nondeterminism, not adversaries.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Digest of one element: its index keyed into the hash so that swapping
/// two equal-valued slots still changes nothing (as it should) but moving
/// a value to a different index does.  `bytes` need not be 8-aligned.
inline std::uint64_t element_digest(std::uint64_t index, const void* p,
                                    std::size_t bytes) {
  std::uint64_t acc = mix64(index + 1);
  const auto* b = static_cast<const unsigned char*>(p);
  while (bytes > 0) {
    const std::size_t chunk = bytes < 8 ? bytes : 8;
    std::uint64_t w = 0;
    std::memcpy(&w, b, chunk);
    acc = mix64(acc ^ w);
    b += chunk;
    bytes -= chunk;
  }
  return acc;
}

/// Additive chunk checksum: the plain sum of per-element digests over a
/// contiguous run of `count` elements starting at global index `first`.
/// Because the combiner is + (commutative, invertible), the sum supports
/// O(1) incremental maintenance at write-commit points:
///
///   sum += element_digest(i, new) - element_digest(i, old)
///
/// and is order-independent: any permutation of the same final writes
/// yields the same sum.  The scrubber re-walks the chunk with this exact
/// function and compares — a mismatch means bytes changed outside any
/// tracked commit point, i.e. silent corruption.
inline std::uint64_t chunk_digest(std::uint64_t first, const void* p,
                                  std::size_t elem_bytes, std::size_t count) {
  std::uint64_t sum = 0;
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < count; ++i)
    sum += element_digest(first + i, b + i * elem_bytes, elem_bytes);
  return sum;
}

/// Delta to apply to a chunk checksum when element `index` transitions
/// from `old_bytes` to `new_bytes` (both `bytes` long).
inline std::uint64_t digest_delta(std::uint64_t index, const void* old_bytes,
                                  const void* new_bytes, std::size_t bytes) {
  return element_digest(index, new_bytes, bytes) -
         element_digest(index, old_bytes, bytes);
}

}  // namespace pgraph::pgas
