#pragma once

#include <bit>
#include <cassert>
#include <cstddef>

#include "machine/phase_stats.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::pgas {

/// Small value-based collectives built on the pointer registry.
///
/// Implementation is shared-memory (every thread reads its peers' published
/// values); cost is charged as a log2(s)-depth combining tree of small
/// messages, which is how a tuned PGAS runtime implements them.
///
/// Registry slot 7 is reserved for these collectives; algorithm code should
/// use slots 0..6.

inline constexpr int kCollSlot = 7;

namespace detail {
inline double tree_msg_cost_ns(ThreadCtx& ctx, std::size_t bytes) {
  const int s = ctx.nthreads();
  const int depth = s <= 1 ? 0 : std::bit_width(static_cast<unsigned>(s - 1));
  return depth * ctx.net().msg_wire_ns(bytes + 16);
}
}  // namespace detail

/// All-reduce `v` with `op` across all threads; every thread returns the
/// reduced value.  `op` must be associative and commutative.
template <class T, class Op>
T allreduce(ThreadCtx& ctx, T v, Op op,
            machine::Cat c = machine::Cat::Comm) {
  T local = v;  // keep alive across the barriers
  ctx.publish(kCollSlot, &local);
  ctx.barrier();
  T acc = *ctx.peer_as<T>(0, kCollSlot);
  for (int i = 1; i < ctx.nthreads(); ++i)
    acc = op(acc, *ctx.peer_as<T>(i, kCollSlot));
  ctx.charge(c, detail::tree_msg_cost_ns(ctx, sizeof(T)));
  ctx.compute(static_cast<std::size_t>(ctx.nthreads()), c);
  ctx.barrier();  // nobody reuses the slot until all have read
  return acc;
}

inline bool allreduce_or(ThreadCtx& ctx, bool v,
                         machine::Cat c = machine::Cat::Comm) {
  return allreduce(ctx, static_cast<int>(v),
                   [](int a, int b) { return a | b; }, c) != 0;
}

inline long long allreduce_sum(ThreadCtx& ctx, long long v,
                               machine::Cat c = machine::Cat::Comm) {
  return allreduce(ctx, v, [](long long a, long long b) { return a + b; }, c);
}

inline long long allreduce_max(ThreadCtx& ctx, long long v,
                               machine::Cat c = machine::Cat::Comm) {
  return allreduce(ctx, v,
                   [](long long a, long long b) { return a > b ? a : b; }, c);
}

/// Broadcast `v` from `root` to all threads.
template <class T>
T broadcast(ThreadCtx& ctx, int root, T v,
            machine::Cat c = machine::Cat::Comm) {
  T local = v;
  ctx.publish(kCollSlot, &local);
  ctx.barrier();
  T out = *ctx.peer_as<T>(root, kCollSlot);
  ctx.charge(c, detail::tree_msg_cost_ns(ctx, sizeof(T)));
  ctx.barrier();
  return out;
}

/// Exclusive prefix sum across threads by id; thread i receives the sum of
/// values of threads 0..i-1, and `total` (if non-null) receives the overall
/// sum on every thread.
template <class T>
T exscan_sum(ThreadCtx& ctx, T v, T* total = nullptr,
             machine::Cat c = machine::Cat::Comm) {
  T local = v;
  ctx.publish(kCollSlot, &local);
  ctx.barrier();
  T acc{};
  T all{};
  for (int i = 0; i < ctx.nthreads(); ++i) {
    const T x = *ctx.peer_as<T>(i, kCollSlot);
    if (i < ctx.id()) acc += x;
    all += x;
  }
  if (total != nullptr) *total = all;
  ctx.charge(c, detail::tree_msg_cost_ns(ctx, sizeof(T)));
  ctx.compute(static_cast<std::size_t>(ctx.nthreads()), c);
  ctx.barrier();
  return acc;
}

}  // namespace pgraph::pgas
