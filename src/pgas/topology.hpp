#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pgraph::pgas {

/// Cluster topology: `nodes` SMP nodes, each running `threads_per_node` UPC
/// threads.  UPC presents the s = nodes * threads_per_node threads as a flat
/// sequence 0..s-1 (the paper discusses the limitations of this flatness);
/// thread i runs on node i / threads_per_node.
///
/// Degraded mode: after a permanent node loss the runtime remaps every
/// thread hosted by the dead node onto its buddy (`remap_node`).  The live
/// `owner` map then overrides the block arithmetic; while it is empty (the
/// common, fault-free case) `node_of` stays the original division and the
/// struct still supports aggregate init `Topology{nodes, tpn}`.
struct Topology {
  int nodes = 1;
  int threads_per_node = 1;
  /// Live thread -> node map; empty means the identity block layout.
  std::vector<std::int32_t> owner;

  int total_threads() const { return nodes * threads_per_node; }

  int node_of(int thread) const {
    assert(thread >= 0 && thread < total_threads());
    if (!owner.empty()) return owner[static_cast<std::size_t>(thread)];
    return thread / threads_per_node;
  }

  /// The node a thread was originally placed on, ignoring any remap.
  int home_node(int thread) const {
    assert(thread >= 0 && thread < total_threads());
    return thread / threads_per_node;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// thread -> node map (used by the exchange simulator).
  std::vector<std::int32_t> thread_node_map() const {
    std::vector<std::int32_t> m(static_cast<std::size_t>(total_threads()));
    for (int i = 0; i < total_threads(); ++i)
      m[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(node_of(i));
    return m;
  }

  /// A node is alive while at least one thread resolves to it.
  bool node_alive(int node) const {
    for (int t = 0; t < total_threads(); ++t)
      if (node_of(t) == node) return true;
    return false;
  }

  int live_node_count() const {
    int live = 0;
    for (int n = 0; n < nodes; ++n)
      if (node_alive(n)) ++live;
    return live;
  }

  /// Number of threads currently hosted by `node` (0 if dead).
  int threads_on_node(int node) const {
    int c = 0;
    for (int t = 0; t < total_threads(); ++t)
      if (node_of(t) == node) ++c;
    return c;
  }

  /// Lowest-id thread hosted by `node`, or -1 if the node is dead.  With an
  /// identity layout this is node * threads_per_node, which is what the
  /// hierarchical collectives used to hard-code.
  int leader_of_node(int node) const {
    for (int t = 0; t < total_threads(); ++t)
      if (node_of(t) == node) return t;
    return -1;
  }

  /// First live node scanning backwards (with wrap-around) from `node` - 1.
  /// Buddy replication mirrors node j's partitions on prev_live_node(j), so
  /// this is where a dead node's mirror lives.  Returns -1 when no other
  /// node is alive.
  int prev_live_node(int node) const {
    for (int step = 1; step < nodes; ++step) {
      const int cand = (node - step + nodes) % nodes;
      if (cand != node && node_alive(cand)) return cand;
    }
    return -1;
  }

  /// Remap every thread hosted by `dead` onto `to` (the buddy adopts them).
  /// Lazily materializes the owner map from the identity layout.
  void remap_node(int dead, int to) {
    assert(dead >= 0 && dead < nodes && to >= 0 && to < nodes && dead != to);
    if (owner.empty()) {
      owner.resize(static_cast<std::size_t>(total_threads()));
      for (int t = 0; t < total_threads(); ++t)
        owner[static_cast<std::size_t>(t)] =
            static_cast<std::int32_t>(t / threads_per_node);
    }
    for (auto& o : owner)
      if (o == static_cast<std::int32_t>(dead))
        o = static_cast<std::int32_t>(to);
  }

  static Topology single_node(int threads) {
    return Topology{1, threads, {}};
  }
  static Topology cluster(int nodes, int threads) {
    return Topology{nodes, threads, {}};
  }
};

}  // namespace pgraph::pgas
