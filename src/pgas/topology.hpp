#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pgraph::pgas {

/// Cluster topology: `nodes` SMP nodes, each running `threads_per_node` UPC
/// threads.  UPC presents the s = nodes * threads_per_node threads as a flat
/// sequence 0..s-1 (the paper discusses the limitations of this flatness);
/// thread i runs on node i / threads_per_node.
struct Topology {
  int nodes = 1;
  int threads_per_node = 1;

  int total_threads() const { return nodes * threads_per_node; }

  int node_of(int thread) const {
    assert(thread >= 0 && thread < total_threads());
    return thread / threads_per_node;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// thread -> node map (used by the exchange simulator).
  std::vector<std::int32_t> thread_node_map() const {
    std::vector<std::int32_t> m(static_cast<std::size_t>(total_threads()));
    for (int i = 0; i < total_threads(); ++i)
      m[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(node_of(i));
    return m;
  }

  static Topology single_node(int threads) { return Topology{1, threads}; }
  static Topology cluster(int nodes, int threads) {
    return Topology{nodes, threads};
  }
};

}  // namespace pgraph::pgas
