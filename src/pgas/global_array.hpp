#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "analysis/access_checker.hpp"
#include "machine/phase_stats.hpp"
#include "partition/partitioning.hpp"
#include "pgas/digest.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::pgas {

/// Distributed shared array — the UPC `shared [blk] T A[n]` analogue, with
/// a pluggable distribution policy (docs/PARTITIONING.md).
///
/// By default element i has affinity to thread i / ceil(n/s) (block
/// distribution, the layout the paper's partition phase assumes); a
/// partition::Partitioning handed to the constructor swaps the owner map
/// (cyclic, block-cyclic, degree-aware).  Storage is one contiguous buffer
/// (we are simulating the cluster in one address space) laid out
/// PARTITION-MAJOR: thread t's elements occupy the slice
/// [block_begin(t), block_end(t)), in increasing global-index order.  For
/// identity layouts (block, degree-aware — contiguous owner ranges) the
/// storage slot of element i is i itself, bit-identical to the historical
/// block layout; otherwise slot_of(i) permutes through the policy.
/// Replica mirrors, scrub checksums and digests all walk storage order, so
/// they are partition-agnostic by construction.
///
/// Access paths and their costs:
///  - get/put: fine-grained single-element access.  Charged as a remote
///    round trip when the owner lives on another node (the naive
///    implementation's pattern), or as a random local memory access
///    otherwise.  Data is moved with relaxed atomics because PRAM-style
///    algorithms race benignly on these cells.
///  - memget/memput: coalesced bulk transfer within a single owner's block
///    (the optimized pattern).  Charged as one message.
///  - local_span/raw: direct access for owner-local phases and for
///    verification; uninstrumented (callers charge via ThreadCtx, which is
///    what the `localcpy` optimization controls).
template <class T>
class GlobalArray final : public ReplicaSite {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  GlobalArray(Runtime& rt, std::size_t n)
      : GlobalArray(rt, n,
                    partition::Partitioning::block(
                        n, rt.topo().total_threads())) {}

  GlobalArray(Runtime& rt, std::size_t n, partition::Partitioning part)
      : rt_(&rt),
        uid_(rt.new_array_uid()),
        n_(n),
        nthreads_(static_cast<std::size_t>(rt.topo().total_threads())),
        part_(std::move(part)),
        data_(n) {
    assert(part_.size() == n_ &&
           part_.num_threads() == static_cast<int>(nthreads_));
#ifdef PGRAPH_CHECK_ACCESS
    shadow_ = analysis::AccessChecker::instance().register_array(n, sizeof(T));
#endif
    rt_->register_replica_site(this);
  }

  ~GlobalArray() override { rt_->unregister_replica_site(this); }

  GlobalArray(const GlobalArray&) = delete;
  GlobalArray& operator=(const GlobalArray&) = delete;

  std::size_t size() const { return n_; }
  /// Largest per-thread partition (ceil(n/s) under the block layout).
  std::size_t block_size() const { return part_.max_local_size(); }
  /// The distribution policy of this array (owner map + storage layout).
  const partition::Partitioning& part() const { return part_; }
  /// Per-runtime sequential id (host-side construction order, so stable
  /// across runs of the same program).  The conformance verifier folds it
  /// into collective argument signatures.
  std::uint64_t uid() const { return uid_; }

  int owner(std::size_t i) const {
    assert(i < n_);
    return part_.owner_of(i);
  }

  /// Global index of thread `thr`'s k-th local element — what owner-local
  /// loops iterate instead of `block_begin(thr) + k` (which is a STORAGE
  /// offset and only equals the global index under identity layouts).
  std::uint64_t global_index(int thr, std::uint64_t k) const {
    return part_.global_of(thr, k);
  }

  /// STORAGE offsets of thread `thr`'s partition slice (equal to the
  /// global-index range under identity layouts — block, degree-aware).
  std::size_t block_begin(int thr) const { return part_.part_begin(thr); }
  std::size_t block_end(int thr) const {
    return part_.part_begin(thr) + part_.local_size(thr);
  }
  std::size_t local_size(int thr) const { return part_.local_size(thr); }

  /// Fine-grained read of element i (relaxed atomic; benign races allowed).
  /// Node-local accesses (own block or a same-node peer's) are random
  /// probes whose working set is the node's slice of the array — the
  /// access pattern of PRAM-style code; remote accesses are a network
  /// round trip.
  T get(ThreadCtx& ctx, std::size_t i,
        machine::Cat c = machine::Cat::Comm) {
    static_assert(sizeof(T) <= 8, "fine-grained access requires small T");
    charge_fine(ctx, i, c, /*is_write=*/false);
    chk_elem(&ctx, i, analysis::AccessKind::Read);
    return load_raw(i);
  }

  /// Fine-grained write of element i.
  void put(ThreadCtx& ctx, std::size_t i, T v,
           machine::Cat c = machine::Cat::Comm) {
    static_assert(sizeof(T) <= 8, "fine-grained access requires small T");
    charge_fine(ctx, i, c, /*is_write=*/true);
    chk_elem(&ctx, i, analysis::AccessKind::Write);
    store_raw(i, v);
  }

  /// Fine-grained write charged exactly like put(), but stored as a
  /// monotone min so that PRAM-style benign write races cannot resurrect a
  /// larger value in the host execution (the modeled machine would race
  /// benignly; the cost is that of the racy plain write).
  void put_min(ThreadCtx& ctx, std::size_t i, T v,
               machine::Cat c = machine::Cat::Comm)
    requires(sizeof(T) <= 8)
  {
    charge_fine(ctx, i, c, /*is_write=*/true);
    chk_elem(&ctx, i, analysis::AccessKind::CombineMin);
    fetch_min_raw(i, v);
  }

  /// Coalesced bulk read of [start, start+count), which must lie within one
  /// owner's block (upc_memget).
  void memget(ThreadCtx& ctx, std::size_t start, std::size_t count, T* dst,
              machine::Cat c = machine::Cat::Comm) {
    if (count == 0) return;
    const int own = owner(start);
    assert(owner(start + count - 1) == own && "memget must not span blocks");
    ctx.bulk_get_cost(own, count * sizeof(T), c);
    chk_range(ctx, start, count, analysis::AccessKind::Read);
    if (part_.is_identity()) {
      std::memcpy(dst, data_.data() + start, count * sizeof(T));
    } else {
      // Permuted storage: the owner's elements for a contiguous global
      // range need not be contiguous slots; gather element-wise (the bulk
      // cost above is unchanged — one coalesced message either way).
      for (std::size_t j = 0; j < count; ++j)
        dst[j] = data_[part_.slot_of(start + j)];
    }
  }

  /// Coalesced bulk write (upc_memput); same single-block restriction.
  void memput(ThreadCtx& ctx, std::size_t start, std::size_t count,
              const T* src, machine::Cat c = machine::Cat::Comm) {
    if (count == 0) return;
    const int own = owner(start);
    assert(owner(start + count - 1) == own && "memput must not span blocks");
    ctx.bulk_put_cost(own, count * sizeof(T), c);
    chk_range(ctx, start, count, analysis::AccessKind::Write);
    if (part_.is_identity()) {
      std::memcpy(data_.data() + start, src, count * sizeof(T));
    } else {
      for (std::size_t j = 0; j < count; ++j)
        data_[part_.slot_of(start + j)] = src[j];
    }
  }

  /// The calling thread's own block (or a same-node peer's, for owner-side
  /// phases).  Uninstrumented: cost is charged by the caller, which is how
  /// the `localcpy` optimization (private-pointer arithmetic) is modeled.
  /// Taking a span of another NODE's block from inside an SPMD region is
  /// an affinity violation — the private-pointer cast that would be UB in
  /// real UPC — and is flagged under PGRAPH_CHECK_ACCESS.
  std::span<T> local_span(int thr) {
    chk_span(thr, "local_span of a remote node's block");
    return std::span<T>(data_.data() + block_begin(thr), local_size(thr));
  }
  std::span<const T> local_span(int thr) const {
    chk_span(thr, "local_span of a remote node's block");
    return std::span<const T>(data_.data() + block_begin(thr),
                              local_size(thr));
  }

  /// Uninstrumented whole-array view for single-threaded verification.
  /// Inside an SPMD region these are affinity-checked like local_span.
  /// raw(i) is GLOBAL-index addressed under every layout; raw_all() is a
  /// storage-order view and therefore only meaningful for identity
  /// layouts — permuted arrays must gather through read_all()/raw(i).
  T& raw(std::size_t i) {
    chk_raw(i);
    return data_[part_.slot_of(i)];
  }
  const T& raw(std::size_t i) const {
    chk_raw(i);
    return data_[part_.slot_of(i)];
  }
  std::span<T> raw_all() {
    assert(part_.is_identity() &&
           "raw_all is storage order; gather permuted arrays via read_all");
    chk_raw_all();
    return std::span<T>(data_);
  }
  std::span<const T> raw_all() const {
    assert(part_.is_identity() &&
           "raw_all is storage order; gather permuted arrays via read_all");
    chk_raw_all();
    return std::span<const T>(data_);
  }

  /// Gather the whole array in GLOBAL index order into `out`, regardless
  /// of the storage layout (uninstrumented, like raw_all; host-side result
  /// extraction).
  void read_all(std::vector<T>& out) const {
    chk_raw_all();
    out.resize(n_);
    if (part_.is_identity()) {
      std::memcpy(out.data(), data_.data(), n_ * sizeof(T));
    } else {
      for (std::size_t i = 0; i < n_; ++i) out[i] = data_[part_.slot_of(i)];
    }
  }

  /// Relaxed element access without cost charging (used inside collectives
  /// where the cost is accounted at batch granularity).  Under
  /// PGRAPH_CHECK_ACCESS the bytes still count as data motion, so an epoch
  /// that moves more than its threads charge is flagged.
  T load_relaxed(std::size_t i) const {
    chk_elem(nullptr, i, analysis::AccessKind::Read);
    return load_raw(i);
  }
  void store_relaxed(std::size_t i, T v) {
    chk_elem(nullptr, i, analysis::AccessKind::Write);
    store_raw(i, v);
  }

  /// Atomically shrink element i to min(current, v).  Used where PRAM
  /// algorithms rely on benign write races that must stay monotone for the
  /// host execution to converge (the cost charged by callers is still that
  /// of a plain racy write — the real machine would race benignly).
  void fetch_min_relaxed(std::size_t i, T v)
    requires(sizeof(T) <= 8)
  {
    chk_elem(nullptr, i, analysis::AccessKind::CombineMin);
    fetch_min_raw(i, v);
  }

  Runtime& runtime() { return *rt_; }

  /// --- access-discipline annotations (no-ops unless PGRAPH_CHECK_ACCESS)
  /// Declare that writes to this array are resolved by a CRCW combine rule
  /// until the matching end (refcounted; see coll::CrcwRegion).
  void checker_begin_crcw(analysis::AccessKind combine_kind) {
#ifdef PGRAPH_CHECK_ACCESS
    analysis::AccessChecker::instance().begin_crcw(shadow_.get(),
                                                   combine_kind);
#else
    (void)combine_kind;
#endif
  }
  void checker_end_crcw() {
#ifdef PGRAPH_CHECK_ACCESS
    analysis::AccessChecker::instance().end_crcw(shadow_.get());
#endif
  }
  /// Record an owner-side combining write / read applied through a raw
  /// local pointer (the collectives' serve and apply loops), so the
  /// checker can see collisions between collectives and stray fine-grained
  /// traffic in the same epoch.
  void note_combine(ThreadCtx& ctx, std::size_t i,
                    analysis::AccessKind combine_kind) {
    chk_elem(&ctx, i, combine_kind);
  }
  void note_read(ThreadCtx& ctx, std::size_t i) {
    chk_elem(&ctx, i, analysis::AccessKind::Read);
  }

  /// Bytes of this array with affinity to one node (the fine-grained
  /// working set of node-local irregular access).
  std::size_t node_slice_bytes() const {
    const int tpn = rt_->topo().threads_per_node;
    return part_.max_local_size() * static_cast<std::size_t>(tpn) *
           sizeof(T);
  }

  /// --- ReplicaSite (buddy replication, docs/ROBUSTNESS.md) --------------
  /// The mirror is a lazily allocated second buffer; a snapshot copies one
  /// thread's block into it and a restore copies it back (the promotion a
  /// shrink performs).  Cost is charged by the callers; untouched mirrors
  /// cost nothing, preserving zero-loss invariance.
  std::size_t replica_thread_bytes(int thr) const override {
    return local_size(thr) * sizeof(T);
  }
  bool replica_snapshot_thread(int thr) override {
    // Verify before sealing: a fault landing between the scrub compare
    // and this snapshot must not be copied into the repair source.  The
    // old mirror (a coherent earlier seal) stays intact on refusal.
    if (!partition_clean(thr)) return false;
    {
      // Threads snapshot disjoint blocks concurrently; only the one-time
      // allocation needs the lock.
      std::lock_guard<std::mutex> lock(mirror_mu_);
      if (mirror_.size() != n_) mirror_.resize(n_);
    }
    const std::size_t b = block_begin(thr);
    std::memcpy(mirror_.data() + b, data_.data() + b,
                local_size(thr) * sizeof(T));
    // Seal the mirror: the checksum rides the snapshot stream (the bytes
    // are already in cache), so it adds no modeled cost — and promotion
    // validates against it before ever trusting the mirror again.
    msum_[static_cast<std::size_t>(thr)] =
        chunk_digest(b, mirror_.data() + b, sizeof(T), local_size(thr));
    msum_valid_[static_cast<std::size_t>(thr)] = 1;
    return true;
  }
  void replica_restore_thread(int thr) override {
    if (mirror_.size() != n_) return;  // never snapshotted: nothing to do
    const std::size_t b = block_begin(thr);
    std::memcpy(data_.data() + b, mirror_.data() + b,
                local_size(thr) * sizeof(T));
    // The partition now equals the sealed mirror; keep a live baseline in
    // sync so the next scrub pass does not flag the restore as corruption.
    if (psum_valid_[static_cast<std::size_t>(thr)] != 0 &&
        msum_valid_[static_cast<std::size_t>(thr)] != 0)
      psum_[static_cast<std::size_t>(thr)] =
          msum_[static_cast<std::size_t>(thr)];
  }
  /// Order-independent digest of the committed element state: the sum of
  /// per-element hashes keyed by index, so any future parallel computation
  /// (or a different traversal order) yields the same value.  Completion
  /// step only — all SPMD threads are parked, so plain reads are safe.
  std::uint64_t state_digest() const override {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < n_; ++i)
      h += element_digest(i, &data_[i], sizeof(T));
    return mix64(h ^ n_);
  }

  /// --- at-rest integrity (scrub protocol, docs/ROBUSTNESS.md) -----------
  /// Opt this array into the scrub protocol.  The contract: between scrub
  /// passes, every write to a scrubbed partition either goes through a
  /// tracked commit point (integrity_note, the SetD/SetDMin apply loops)
  /// or is followed by Runtime::rebaseline_integrity (checkpoint
  /// rollback).  Untracked writes read as corruption — by design.
  /// Host-side only (races with SPMD scrub passes otherwise).
  void set_scrubbed(bool on) { scrubbed_ = on; }
  bool scrubbed() const { return scrubbed_; }

  /// O(1) checksum maintenance at a tracked commit point: element `i`
  /// (global index, owned by thread `thr`) transitioned oldv -> newv.
  /// No-op until a scrub pass baselined the partition.  Owner-thread only,
  /// like the apply loops that call it.  Deltas are keyed by STORAGE slot
  /// so they cancel against the chunk_digest re-walks, which run in
  /// storage order (identical to the global index under identity layouts).
  void integrity_note(int thr, std::size_t i, const T& oldv, const T& newv) {
    if (psum_valid_[static_cast<std::size_t>(thr)] == 0) return;
    psum_[static_cast<std::size_t>(thr)] +=
        digest_delta(part_.slot_of(i), &oldv, &newv, sizeof(T));
  }

  /// True when thread `thr`'s partition bytes still match the maintained
  /// checksum (vacuously true before a scrub baseline).  Side-effect free;
  /// callers charge the re-walk.  Checkpointing loops verify with this in
  /// the same barrier interval as the snapshot copy, so a fault landing on
  /// the scrub pass's own barriers cannot slip into the rollback source.
  bool partition_clean(int thr) const {
    if (psum_valid_[static_cast<std::size_t>(thr)] == 0) return true;
    const std::size_t b = block_begin(thr);
    return chunk_digest(b, data_.data() + b, sizeof(T), local_size(thr)) ==
           psum_[static_cast<std::size_t>(thr)];
  }

  std::span<unsigned char> partition_bytes(int thr) override {
    if (!scrubbed_) return {};  // undefended memory is not a flip target
    return {reinterpret_cast<unsigned char*>(data_.data() + block_begin(thr)),
            local_size(thr) * sizeof(T)};
  }
  std::span<unsigned char> mirror_bytes(int thr) override {
    if (mirror_.size() != n_) return {};
    return {
        reinterpret_cast<unsigned char*>(mirror_.data() + block_begin(thr)),
        local_size(thr) * sizeof(T)};
  }
  bool mirror_checksum_ok(int thr) const override {
    if (mirror_.size() != n_ ||
        msum_valid_[static_cast<std::size_t>(thr)] == 0)
      return true;  // nothing sealed yet: restore is a no-op anyway
    const std::size_t b = block_begin(thr);
    return chunk_digest(b, mirror_.data() + b, sizeof(T), local_size(thr)) ==
           msum_[static_cast<std::size_t>(thr)];
  }
  ScrubState scrub_thread(int thr) override {
    if (!scrubbed_) return ScrubState::Clean;
    const std::size_t b = block_begin(thr);
    const std::uint64_t sum =
        chunk_digest(b, data_.data() + b, sizeof(T), local_size(thr));
    auto& valid = psum_valid_[static_cast<std::size_t>(thr)];
    auto& psum = psum_[static_cast<std::size_t>(thr)];
    if (valid == 0) {
      psum = sum;
      valid = 1;
      return ScrubState::Baselined;
    }
    return sum == psum ? ScrubState::Clean : ScrubState::Corrupt;
  }
  bool heal_thread(int thr) override {
    if (mirror_.size() != n_ ||
        msum_valid_[static_cast<std::size_t>(thr)] == 0 ||
        !mirror_checksum_ok(thr))
      return false;
    const std::size_t b = block_begin(thr);
    std::memcpy(data_.data() + b, mirror_.data() + b,
                local_size(thr) * sizeof(T));
    psum_[static_cast<std::size_t>(thr)] =
        msum_[static_cast<std::size_t>(thr)];
    psum_valid_[static_cast<std::size_t>(thr)] = 1;
    return true;
  }
  bool integrity_tracking_thread(int thr) const override {
    return psum_valid_[static_cast<std::size_t>(thr)] != 0;
  }
  void rebaseline_thread(int thr) override {
    if (psum_valid_[static_cast<std::size_t>(thr)] == 0) return;
    const std::size_t b = block_begin(thr);
    psum_[static_cast<std::size_t>(thr)] =
        chunk_digest(b, data_.data() + b, sizeof(T), local_size(thr));
  }
  void integrity_invalidate_thread(int thr) override {
    psum_valid_[static_cast<std::size_t>(thr)] = 0;
  }

 private:
  /// Shared cost path of all fine-grained single-element operations
  /// (get/put/put_min): a node-local access is one random probe over the
  /// node's slice of the array; a cross-node access is a network round
  /// trip.  Keeping this in ONE place guarantees the working-set
  /// computation cannot drift between the read and write paths.
  void charge_fine(ThreadCtx& ctx, std::size_t i, machine::Cat c,
                   bool is_write) {
    const int own = owner(i);
    if (ctx.topo().same_node(own, ctx.id())) {
      ctx.mem_random(1, node_slice_bytes(), sizeof(T), c);
    } else if (is_write) {
      ctx.remote_put_cost(own, sizeof(T), c);
    } else {
      ctx.remote_get_cost(own, sizeof(T), c);
    }
  }

  /// --- uninstrumented element primitives (global-index addressed) -------
  T load_raw(std::size_t i) const {
    if constexpr (sizeof(T) <= 8) {
      // atomic_ref<const T> is not available in C++20; the cast is safe
      // because the underlying storage is always mutable.
      return std::atomic_ref<T>(const_cast<T&>(data_[part_.slot_of(i)]))
          .load(std::memory_order_relaxed);
    } else {
      return data_[part_.slot_of(i)];
    }
  }
  void store_raw(std::size_t i, T v) {
    if constexpr (sizeof(T) <= 8) {
      std::atomic_ref<T>(data_[part_.slot_of(i)])
          .store(v, std::memory_order_relaxed);
    } else {
      data_[part_.slot_of(i)] = v;
    }
  }
  void fetch_min_raw(std::size_t i, T v)
    requires(sizeof(T) <= 8)
  {
    std::atomic_ref<T> ref(data_[part_.slot_of(i)]);
    T cur = ref.load(std::memory_order_relaxed);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// --- access-checker plumbing (all empty unless PGRAPH_CHECK_ACCESS) ---
  /// Record one element access.  `ctx` may be null for paths without a
  /// ThreadCtx parameter (the relaxed accessors); the calling thread's
  /// context is then looked up, and accesses from outside any SPMD region
  /// (verification code) are exempt.
  void chk_elem(ThreadCtx* ctx, std::size_t i, analysis::AccessKind k) const {
#ifdef PGRAPH_CHECK_ACCESS
    if (shadow_ == nullptr) return;
    auto& ck = analysis::AccessChecker::instance();
    if (!ck.enabled()) return;
    if (ctx == nullptr) ctx = current_ctx();
    if (ctx == nullptr) return;
    ck.record_access(shadow_.get(), i, k, ctx->id(), ctx->epoch());
    ck.add_moved(ctx->id(), sizeof(T));
#else
    (void)ctx;
    (void)i;
    (void)k;
#endif
  }

  void chk_range(ThreadCtx& ctx, std::size_t start, std::size_t count,
                 analysis::AccessKind k) const {
#ifdef PGRAPH_CHECK_ACCESS
    if (shadow_ == nullptr) return;
    auto& ck = analysis::AccessChecker::instance();
    if (!ck.enabled()) return;
    for (std::size_t j = 0; j < count; ++j)
      ck.record_access(shadow_.get(), start + j, k, ctx.id(), ctx.epoch());
    ck.add_moved(ctx.id(), count * sizeof(T));
#else
    (void)ctx;
    (void)start;
    (void)count;
    (void)k;
#endif
  }

  /// Affinity check for block-span views: flagged when an SPMD thread
  /// takes a direct span of a block that lives on another node.
  void chk_span(int thr, const char* what) const {
#ifdef PGRAPH_CHECK_ACCESS
    auto& ck = analysis::AccessChecker::instance();
    if (!ck.enabled()) return;
    ThreadCtx* ctx = current_ctx();
    if (ctx == nullptr) return;
    const int owner_node = rt_->topo().node_of(thr);
    if (owner_node != ctx->node())
      ck.record_affinity(shadow_.get(), block_begin(thr), ctx->id(),
                         ctx->node(), owner_node, ctx->epoch(), what);
#else
    (void)thr;
    (void)what;
#endif
  }

  void chk_raw(std::size_t i) const {
#ifdef PGRAPH_CHECK_ACCESS
    auto& ck = analysis::AccessChecker::instance();
    if (!ck.enabled()) return;
    ThreadCtx* ctx = current_ctx();
    if (ctx == nullptr) return;
    const int owner_node = rt_->topo().node_of(owner(i));
    if (owner_node != ctx->node())
      ck.record_affinity(shadow_.get(), i, ctx->id(), ctx->node(),
                         owner_node, ctx->epoch(),
                         "raw element reference to a remote node's block");
#else
    (void)i;
#endif
  }

  void chk_raw_all() const {
#ifdef PGRAPH_CHECK_ACCESS
    auto& ck = analysis::AccessChecker::instance();
    if (!ck.enabled()) return;
    ThreadCtx* ctx = current_ctx();
    if (ctx == nullptr || rt_->topo().nodes <= 1) return;
    // Report a representative remote element: the first block owned by a
    // thread on some other node.
    const int remote_thr =
        ctx->node() == 0 ? rt_->topo().threads_per_node : 0;
    ck.record_affinity(shadow_.get(), block_begin(remote_thr), ctx->id(),
                       ctx->node(), rt_->topo().node_of(remote_thr),
                       ctx->epoch(),
                       "raw_all whole-array view inside an SPMD region");
#endif
  }

  Runtime* rt_;
  std::uint64_t uid_;
  std::size_t n_;
  std::size_t nthreads_;
  partition::Partitioning part_;
  std::vector<T> data_;
  std::vector<T> mirror_;  ///< buddy-replication mirror (lazy)
  std::mutex mirror_mu_;
  // At-rest integrity state (scrub protocol).  psum_[t] is owner-thread
  // private between barriers; msum_[t] is written by thread t at snapshot
  // and read across barriers (completion step, own heals) — barrier
  // ordering suffices, no atomics needed.
  bool scrubbed_ = false;
  std::vector<std::uint64_t> psum_ = std::vector<std::uint64_t>(nthreads_);
  std::vector<unsigned char> psum_valid_ =
      std::vector<unsigned char>(nthreads_);
  std::vector<std::uint64_t> msum_ = std::vector<std::uint64_t>(nthreads_);
  std::vector<unsigned char> msum_valid_ =
      std::vector<unsigned char>(nthreads_);
#ifdef PGRAPH_CHECK_ACCESS
  std::shared_ptr<analysis::ArrayShadow> shadow_;
#endif
};

}  // namespace pgraph::pgas
