#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "machine/phase_stats.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::pgas {

/// Block-distributed shared array — the UPC `shared [blk] T A[n]` analogue.
///
/// Element i has affinity to thread i / ceil(n/s) (block distribution, the
/// layout the paper's partition phase assumes).  Storage is one contiguous
/// buffer (we are simulating the cluster in one address space), so a
/// thread's block is the slice [block_begin(t), block_end(t)).
///
/// Access paths and their costs:
///  - get/put: fine-grained single-element access.  Charged as a remote
///    round trip when the owner lives on another node (the naive
///    implementation's pattern), or as a random local memory access
///    otherwise.  Data is moved with relaxed atomics because PRAM-style
///    algorithms race benignly on these cells.
///  - memget/memput: coalesced bulk transfer within a single owner's block
///    (the optimized pattern).  Charged as one message.
///  - local_span/raw: direct access for owner-local phases and for
///    verification; uninstrumented (callers charge via ThreadCtx, which is
///    what the `localcpy` optimization controls).
template <class T>
class GlobalArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  GlobalArray(Runtime& rt, std::size_t n)
      : rt_(&rt),
        n_(n),
        nthreads_(static_cast<std::size_t>(rt.topo().total_threads())),
        blk_((n + nthreads_ - 1) / nthreads_),
        data_(n) {}

  std::size_t size() const { return n_; }
  std::size_t block_size() const { return blk_; }

  int owner(std::size_t i) const {
    assert(i < n_);
    return static_cast<int>(i / blk_);
  }

  std::size_t block_begin(int thr) const {
    const std::size_t b = static_cast<std::size_t>(thr) * blk_;
    return b > n_ ? n_ : b;
  }
  std::size_t block_end(int thr) const {
    const std::size_t e = (static_cast<std::size_t>(thr) + 1) * blk_;
    return e > n_ ? n_ : e;
  }
  std::size_t local_size(int thr) const {
    return block_end(thr) - block_begin(thr);
  }

  /// Fine-grained read of element i (relaxed atomic; benign races allowed).
  /// Node-local accesses (own block or a same-node peer's) are random
  /// probes whose working set is the node's slice of the array — the
  /// access pattern of PRAM-style code; remote accesses are a network
  /// round trip.
  T get(ThreadCtx& ctx, std::size_t i,
        machine::Cat c = machine::Cat::Comm) {
    static_assert(sizeof(T) <= 8, "fine-grained access requires small T");
    const int own = owner(i);
    if (ctx.topo().same_node(own, ctx.id())) {
      ctx.mem_random(1, node_slice_bytes(), sizeof(T), c);
    } else {
      ctx.remote_get_cost(own, sizeof(T), c);
    }
    return load_relaxed(i);
  }

  /// Fine-grained write of element i.
  void put(ThreadCtx& ctx, std::size_t i, T v,
           machine::Cat c = machine::Cat::Comm) {
    static_assert(sizeof(T) <= 8, "fine-grained access requires small T");
    const int own = owner(i);
    if (ctx.topo().same_node(own, ctx.id())) {
      ctx.mem_random(1, node_slice_bytes(), sizeof(T), c);
    } else {
      ctx.remote_put_cost(own, sizeof(T), c);
    }
    store_relaxed(i, v);
  }

  /// Fine-grained write charged exactly like put(), but stored as a
  /// monotone min so that PRAM-style benign write races cannot resurrect a
  /// larger value in the host execution (the modeled machine would race
  /// benignly; the cost is that of the racy plain write).
  void put_min(ThreadCtx& ctx, std::size_t i, T v,
               machine::Cat c = machine::Cat::Comm)
    requires(sizeof(T) <= 8)
  {
    const int own = owner(i);
    if (ctx.topo().same_node(own, ctx.id())) {
      ctx.mem_random(1, node_slice_bytes(), sizeof(T), c);
    } else {
      ctx.remote_put_cost(own, sizeof(T), c);
    }
    fetch_min_relaxed(i, v);
  }

  /// Coalesced bulk read of [start, start+count), which must lie within one
  /// owner's block (upc_memget).
  void memget(ThreadCtx& ctx, std::size_t start, std::size_t count, T* dst,
              machine::Cat c = machine::Cat::Comm) {
    if (count == 0) return;
    const int own = owner(start);
    assert(owner(start + count - 1) == own && "memget must not span blocks");
    ctx.bulk_get_cost(own, count * sizeof(T), c);
    std::memcpy(dst, data_.data() + start, count * sizeof(T));
  }

  /// Coalesced bulk write (upc_memput); same single-block restriction.
  void memput(ThreadCtx& ctx, std::size_t start, std::size_t count,
              const T* src, machine::Cat c = machine::Cat::Comm) {
    if (count == 0) return;
    const int own = owner(start);
    assert(owner(start + count - 1) == own && "memput must not span blocks");
    ctx.bulk_put_cost(own, count * sizeof(T), c);
    std::memcpy(data_.data() + start, src, count * sizeof(T));
  }

  /// The calling thread's own block (or any thread's, for owner-side
  /// phases).  Uninstrumented: cost is charged by the caller, which is how
  /// the `localcpy` optimization (private-pointer arithmetic) is modeled.
  std::span<T> local_span(int thr) {
    return std::span<T>(data_.data() + block_begin(thr), local_size(thr));
  }
  std::span<const T> local_span(int thr) const {
    return std::span<const T>(data_.data() + block_begin(thr),
                              local_size(thr));
  }

  /// Uninstrumented whole-array view for single-threaded verification.
  T& raw(std::size_t i) { return data_[i]; }
  const T& raw(std::size_t i) const { return data_[i]; }
  std::span<T> raw_all() { return std::span<T>(data_); }
  std::span<const T> raw_all() const { return std::span<const T>(data_); }

  /// Relaxed element access without cost charging (used inside collectives
  /// where the cost is accounted at batch granularity).
  T load_relaxed(std::size_t i) const {
    if constexpr (sizeof(T) <= 8) {
      // atomic_ref<const T> is not available in C++20; the cast is safe
      // because the underlying storage is always mutable.
      return std::atomic_ref<T>(const_cast<T&>(data_[i]))
          .load(std::memory_order_relaxed);
    } else {
      return data_[i];
    }
  }
  void store_relaxed(std::size_t i, T v) {
    if constexpr (sizeof(T) <= 8) {
      std::atomic_ref<T>(data_[i]).store(v, std::memory_order_relaxed);
    } else {
      data_[i] = v;
    }
  }

  /// Atomically shrink element i to min(current, v).  Used where PRAM
  /// algorithms rely on benign write races that must stay monotone for the
  /// host execution to converge (the cost charged by callers is still that
  /// of a plain racy write — the real machine would race benignly).
  void fetch_min_relaxed(std::size_t i, T v)
    requires(sizeof(T) <= 8)
  {
    std::atomic_ref<T> ref(data_[i]);
    T cur = ref.load(std::memory_order_relaxed);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  Runtime& runtime() { return *rt_; }

  /// Bytes of this array with affinity to one node (the fine-grained
  /// working set of node-local irregular access).
  std::size_t node_slice_bytes() const {
    const int tpn = rt_->topo().threads_per_node;
    return blk_ * static_cast<std::size_t>(tpn) * sizeof(T);
  }

 private:
  Runtime* rt_;
  std::size_t n_;
  std::size_t nthreads_;
  std::size_t blk_;
  std::vector<T> data_;
};

}  // namespace pgraph::pgas
