#pragma once

#include <algorithm>
#include <utility>
#include <cstddef>

#include "machine/cost_params.hpp"

namespace pgraph::machine {

/// Analytic memory-cost model, following the charging scheme of Section IV
/// of the paper (equations 4 and 5):
///
///  - a sequential (streamed) access of k bytes costs  L_M + k / B_M
///    ("Sequentially accessing k elements is charged L_M + k/B_M time
///     considering the prefetch or bulk transfer optimization")
///  - a random access over a working set that fits in cache is a hit after
///    the first touch; over a working set larger than cache, the expected
///    miss fraction is 1 - Z/W.
///
/// The model is deliberately stateless: callers pass the working-set size
/// they are touching.  The CacheSim class provides a trace-driven
/// validation of these formulas (see bench/abl04_cache_model_validation).
class MemoryModel {
 public:
  /// Parameters are copied: a MemoryModel may safely outlive the CostParams
  /// expression it was constructed from (benches pass temporaries).
  explicit MemoryModel(CostParams p) : p_(std::move(p)) {}

  /// Cost of streaming `bytes` bytes sequentially (one prefetched run).
  double seq_ns(std::size_t bytes) const {
    return p_.mem_latency_ns +
           static_cast<double>(bytes) * p_.mem_inv_bw_ns_per_byte;
  }

  /// Cost of `count` independent random accesses of `elem_bytes` each over a
  /// working set of `working_set_bytes`.
  ///
  /// If the working set fits in cache, the first touch of each distinct line
  /// misses and every later access hits; we charge
  ///   min(count, lines) * L_M + rest * hit.
  /// Otherwise the expected miss fraction is (1 - Z/W).
  double random_ns(std::size_t count, std::size_t working_set_bytes,
                   std::size_t elem_bytes) const {
    return random_impl(count, working_set_bytes, elem_bytes,
                       p_.mem_latency_ns);
  }

  /// Like random_ns, but for scattered *stores*: write misses drain through
  /// the store buffer and stall for only `store_miss_factor` of the load
  /// latency.  Used for the permute phase of Algorithm 1, whose writes to C
  /// are irregular but independent.
  double random_write_ns(std::size_t count, std::size_t working_set_bytes,
                         std::size_t elem_bytes) const {
    return random_impl(count, working_set_bytes, elem_bytes,
                       p_.mem_latency_ns * p_.store_miss_factor);
  }

  /// Expected number of cache misses for `count` random accesses over a
  /// working set (shared by the latency charge and the DRAM-traffic
  /// estimate).
  double expected_misses(std::size_t count,
                         std::size_t working_set_bytes,
                         std::size_t elem_bytes = 8) const {
    if (count == 0) return 0.0;
    const double z = static_cast<double>(p_.cache_bytes);
    const double w =
        static_cast<double>(std::max(working_set_bytes, elem_bytes));
    const double line = static_cast<double>(p_.cache_line_bytes);
    if (w <= z) {
      const double lines = std::max(1.0, w / line);
      return std::min(static_cast<double>(count), lines);
    }
    return static_cast<double>(count) * (1.0 - z / w);
  }

  /// Effective DRAM-bus occupancy (in bytes of streamed-equivalent
  /// traffic) of `count` random accesses: one line per miss, scaled by the
  /// random-access penalty (row activations, no prefetch).
  double random_traffic_bytes(std::size_t count,
                              std::size_t working_set_bytes,
                              std::size_t elem_bytes) const {
    return expected_misses(count, working_set_bytes, elem_bytes) *
           static_cast<double>(p_.cache_line_bytes) *
           p_.dram_random_penalty;
  }

  double random_impl(std::size_t count, std::size_t working_set_bytes,
                     std::size_t elem_bytes, double miss_ns) const {
    if (count == 0) return 0.0;
    const double misses =
        expected_misses(count, working_set_bytes, elem_bytes);
    const double hits = static_cast<double>(count) - misses;
    return misses * miss_ns + hits * p_.cache_hit_ns +
           static_cast<double>(count * elem_bytes) *
               p_.mem_inv_bw_ns_per_byte;
  }

  /// Cost of `ops` simple CPU operations.
  double compute_ns(std::size_t ops) const {
    return static_cast<double>(ops) * p_.cpu_op_ns;
  }

  /// Cost of acquiring and releasing `n` uncontended fine-grained locks.
  double locks_ns(std::size_t n) const {
    return static_cast<double>(n) * p_.lock_ns;
  }

  const CostParams& params() const { return p_; }

 private:
  CostParams p_;
};

}  // namespace pgraph::machine
