#pragma once

#include <cstdint>
#include <vector>

#include "machine/cost_params.hpp"

namespace pgraph::machine {

/// One message of a collective's exchange phase.
struct ExchangeMsg {
  std::int32_t dst_node = 0;
  double service_ns = 0.0;  ///< NIC occupancy o + b/B for this message
  std::uint32_t wire_bytes = 0;   ///< payload + header (retransmit pricing)
  double extra_delay_ns = 0.0;    ///< fault-injected in-flight delay
  bool dropped = false;           ///< fault-injected loss: the sender still
                                  ///< occupies its NIC, nothing arrives
};

/// Per-thread ordered send list for one exchange phase (issue order matters:
/// this is exactly what the `circular` optimization changes).
using ExchangePlan = std::vector<std::vector<ExchangeMsg>>;

/// Event-sweep simulation of one exchange phase of a collective
/// (steps 5.1-5.5 of Algorithm 2 in the paper).
///
/// Model:
///  - Each node has one send NIC and one receive NIC.
///  - The messages issued by the t threads of a node are serialized on the
///    node's send NIC, interleaved step-by-step in thread order (thread 0's
///    k-th message, thread 1's k-th message, ..., then step k+1).
///  - A message departs when the send NIC has pushed it, arrives
///    `latency_ns` later, and then occupies the receive NIC of the target
///    node for its service time; the receive NIC serves messages in arrival
///    order.
///  - The phase completes when every NIC is idle.
///
/// This reproduces the congestion effect the paper describes in Section V:
/// with the identity schedule (every thread sends to peer 0, then 1, ...)
/// all s messages of step k arrive at node k/t within a small window, so
/// the hot receive NIC drains ~s messages while others idle, roughly
/// doubling the phase relative to the circular schedule (i, i+1, ...,
/// i+s-1 mod s) where every step is a balanced permutation.
///
/// Per-node occupancy of one exchange phase (tracer counter tracks).
struct ExchangeNodeStats {
  double send_busy_ns = 0.0;   ///< total send-NIC occupancy
  double recv_busy_ns = 0.0;   ///< total receive-NIC occupancy
  double send_finish_ns = 0.0; ///< when the send NIC went idle
  double recv_finish_ns = 0.0; ///< when the receive NIC went idle
  std::uint64_t msgs_out = 0;
  std::uint64_t msgs_in = 0;
};

/// `thread_node[i]` maps thread i to its node.  Returns the phase duration.
/// When `node_stats` is non-null it must point at `nodes` entries, which
/// are overwritten with the per-node occupancy breakdown.
///
/// Node indices (`thread_node[i]` and each message's `dst_node`) are
/// validated against [0, nodes): a malformed plan asserts in debug builds
/// and is clamped with a stderr diagnostic in release builds instead of
/// silently indexing out of range.
double exchange_duration_ns(const ExchangePlan& plan,
                            const std::vector<std::int32_t>& thread_node,
                            int nodes, double latency_ns,
                            ExchangeNodeStats* node_stats = nullptr);

}  // namespace pgraph::machine
