#include "machine/network_model.hpp"

#include <cassert>
#include <algorithm>
#include <cmath>

namespace pgraph::machine {

NetworkModel::NetworkModel(const CostParams& p, int nodes)
    : p_(&p), nodes_(nodes), nic_(std::make_unique<NodeNic[]>(nodes)) {
  assert(nodes >= 1);
}

void NetworkModel::accrue(int node, double ns, std::uint64_t nmsgs) {
  nic_[node].service_ns.fetch_add(static_cast<std::uint64_t>(ns),
                                  std::memory_order_relaxed);
  nic_[node].msgs.fetch_add(nmsgs, std::memory_order_relaxed);
}

double NetworkModel::fine_get_ns(int src_node, int dst_node,
                                 std::size_t bytes) {
  assert(src_node != dst_node);
  // Request: ~16B header; reply: header + payload.  The requester blocks
  // for the full round trip plus software handling at both ends.
  const std::size_t req = 16;
  const std::size_t rep = 16 + bytes;
  const double sw = p_->net_small_msg_sw_ns;
  const double rt = msg_wire_ns(req) + sw + msg_wire_ns(rep) + sw;
  // NIC-side: message-rate limited, not software limited (the software
  // handler cost is paid by the issuing/serving threads' clocks).
  const double nic = 2 * (p_->nic_small_msg_svc_ns +
                          static_cast<double>(req + rep) / 2.0 *
                              p_->net_inv_bw_ns_per_byte);
  accrue(src_node, nic, 2);
  accrue(dst_node, nic, 2);
  msgs_.fetch_add(2, std::memory_order_relaxed);
  fine_msgs_.fetch_add(2, std::memory_order_relaxed);
  bytes_.fetch_add(req + rep, std::memory_order_relaxed);
  return rt;
}

double NetworkModel::fine_put_ns(int src_node, int dst_node,
                                 std::size_t bytes) {
  assert(src_node != dst_node);
  const std::size_t msg = 16 + bytes;
  const double sw = p_->net_small_msg_sw_ns;
  const double nic = p_->nic_small_msg_svc_ns +
                     static_cast<double>(msg) * p_->net_inv_bw_ns_per_byte;
  accrue(src_node, nic);
  accrue(dst_node, nic);
  msgs_.fetch_add(1, std::memory_order_relaxed);
  fine_msgs_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg, std::memory_order_relaxed);
  // Blocking until injected: the sender pays its own occupancy plus the
  // handler overhead; delivery completes asynchronously.
  return msg_service_ns(msg) + sw;
}

double NetworkModel::bulk_put_ns(int src_node, int dst_node,
                                 std::size_t bytes) {
  if (src_node == dst_node) return 0.0;  // local copies are charged as memory
  const double svc = msg_service_ns(bytes);
  accrue(src_node, svc);
  accrue(dst_node, svc);
  msgs_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return svc;
}

double NetworkModel::bulk_get_ns(int src_node, int dst_node,
                                 std::size_t bytes) {
  if (src_node == dst_node) return 0.0;
  const std::size_t req = 16;
  accrue(src_node, msg_service_ns(req) + msg_service_ns(bytes));
  accrue(dst_node, msg_service_ns(req) + msg_service_ns(bytes));
  msgs_.fetch_add(2, std::memory_order_relaxed);
  bytes_.fetch_add(req + bytes, std::memory_order_relaxed);
  return msg_wire_ns(req) + msg_wire_ns(bytes);
}

double NetworkModel::drain_nic_ns(NicDrain* out) {
  double mx = 0.0;
  for (int i = 0; i < nodes_; ++i) {
    const std::uint64_t v =
        nic_[i].service_ns.exchange(0, std::memory_order_relaxed);
    const std::uint64_t c = nic_[i].msgs.exchange(0, std::memory_order_relaxed);
    const double factor =
        std::min(p_->nic_congestion_cap,
                 1.0 + static_cast<double>(c) / p_->nic_burst_capacity);
    const double congested = static_cast<double>(v) * factor;
    if (out != nullptr)
      out[i] = {static_cast<double>(v), congested, factor, c};
    mx = std::max(mx, congested);
  }
  return mx;
}

}  // namespace pgraph::machine
