#pragma once

#include <cstddef>
#include <string>

namespace pgraph::machine {

/// Cost parameters for the machine model.
///
/// The model is LogGP-flavoured for the network and latency/bandwidth
/// (alpha-beta) for the memory hierarchy, matching the analysis in Section
/// III of the paper: network latency `L`, network bandwidth `B`, memory
/// latency `L_M` and memory bandwidth `B_M`.  All times are nanoseconds; all
/// bandwidths are expressed as ns/byte (i.e. 1/B) so that costs are simple
/// multiply-adds on the hot path.
struct CostParams {
  // --- network (inter-node) -------------------------------------------
  /// One-way wire latency L (ns).
  double net_latency_ns = 1900.0;
  /// Inverse bandwidth 1/B (ns per byte).  2 GB/s HPS => 0.5 ns/byte.
  double net_inv_bw_ns_per_byte = 0.5;
  /// Per-message software overhead o (ns): injection, matching, handler.
  double net_overhead_ns = 600.0;
  /// Extra per-message overhead for *fine-grained* (non-coalesced) puts and
  /// gets issued by compiled PGAS code: runtime dispatch, address
  /// translation, active-message handler.  The paper attributes a large
  /// part of the naive implementation's slowness to this software handling.
  double net_small_msg_sw_ns = 400.0;
  /// NIC-side occupancy of one *small* (fine-grained) message: the NIC's
  /// message-rate limit, separate from the per-thread software cost above
  /// (which is paid on the issuing thread and overlaps across threads).
  double nic_small_msg_svc_ns = 50.0;
  /// Congestion model for bursts of small messages ("the burst of the
  /// short messages overwhelms the cluster and the nodes", Section VI):
  /// when a node handles more than `nic_burst_capacity` fine-grained
  /// messages within one superstep, per-message service degrades by
  /// factor (1 + msgs/capacity), capped at `nic_congestion_cap`.
  double nic_burst_capacity = 2048.0;
  double nic_congestion_cap = 60.0;

  // --- memory (intra-node) --------------------------------------------
  /// Random-access (cache miss) latency L_M (ns).
  double mem_latency_ns = 90.0;
  /// Inverse memory bandwidth 1/B_M (ns per byte).  4 GB/s => 0.25.
  double mem_inv_bw_ns_per_byte = 0.25;
  /// Cost of a cache hit (ns).
  double cache_hit_ns = 2.0;
  /// Store misses retire through the store buffer and overlap with
  /// computation, so a scattered *write* miss stalls for only a fraction
  /// of the load-miss latency.
  double store_miss_factor = 0.35;
  /// Effective per-thread cache capacity (bytes) used by the analytic
  /// working-set model; roughly an L2 slice.
  std::size_t cache_bytes = 1u << 21;
  /// Cache line size (bytes) for both the analytic model and CacheSim.
  std::size_t cache_line_bytes = 128;
  /// Inverse of the *node-wide shared* memory-bus bandwidth (ns per byte).
  /// The per-thread latency terms above model a single thread; the t
  /// threads of an SMP node additionally contend for one memory bus, so
  /// DRAM traffic (misses * line size, streamed bytes) is accumulated per
  /// node and drained at superstep boundaries — the same treatment as the
  /// NIC.  A 16-way P575+ node sustains ~16 GB/s streamed => 0.0625 ns/B
  /// (a single thread's ~1.4 GB/s random demand never saturates it; 16
  /// threads' ~22 GB/s does — which is why CC-SMP scales to ~2-4x a single
  /// thread and no further).
  double mem_bus_inv_bw_ns_per_byte = 0.0625;
  /// Random line fills pay DRAM row activations and defeat prefetch, so
  /// they sustain roughly half of streamed bandwidth; their bus occupancy
  /// is scaled by this factor (streamed traffic is not).
  double dram_random_penalty = 2.0;

  // --- CPU --------------------------------------------------------------
  /// Cost of one simple ALU/branch operation (ns).  1.9 GHz P575+ ~ 0.53ns
  /// per cycle; we charge ~2 cycles per abstract op.
  double cpu_op_ns = 1.0;
  /// Cost of acquiring+releasing one fine-grained lock under low contention
  /// (ns).  Used by the MST-SMP baseline (the paper's "100M locks" story).
  double lock_ns = 60.0;

  // --- synchronization --------------------------------------------------
  /// Per-participant cost of a barrier (ns); total barrier cost is
  /// `barrier_base_ns + barrier_per_thread_ns * s`.
  double barrier_base_ns = 2000.0;
  double barrier_per_thread_ns = 150.0;

  /// Human-readable preset name (for bench banners).
  std::string preset = "hps-cluster";

  /// The paper's target platform: 16 IBM P575+ nodes, dual-plane 2 GB/s
  /// High Performance Switch, DDR2 memory.
  static CostParams hps_cluster();

  /// Section III's "industry standard" numbers: Infiniband HCA (190 ns,
  /// 4 GB/s) and DDR3 SDRAM (9 ns).  Used for the >20x analytic gap check.
  static CostParams infiniband_ddr3();

  /// A single shared-memory node (no network): remote accesses are
  /// impossible; used when running SMP/sequential baselines standalone.
  static CostParams smp_node();
};

}  // namespace pgraph::machine
