#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgraph::machine {

/// Trace-driven set-associative LRU cache simulator.
///
/// This is the *validation* substrate for the analytic MemoryModel: the
/// access-scheduling tests and bench/abl04 replay the exact address traces
/// produced by Algorithm 1 (grouped accesses) and by the original code
/// (random accesses) through this simulator and compare the measured miss
/// counts against the model's expectations (equations 4/5 of the paper).
///
/// LRU is maintained per set with an age counter per line; associativity is
/// small (<= 16) so the linear scans are cheap.
class CacheSim {
 public:
  /// `size_bytes` total capacity, `line_bytes` block size (power of two),
  /// `assoc` ways per set.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, std::size_t assoc);

  /// Simulate an access to byte address `addr`; returns true on hit.
  bool access(std::uint64_t addr);

  /// Simulate a sequential run of `bytes` starting at `addr` (touches each
  /// line once).
  void access_range(std::uint64_t addr, std::size_t bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses_) /
                                 static_cast<double>(accesses());
  }

  std::size_t size_bytes() const { return size_bytes_; }
  std::size_t line_bytes() const { return line_bytes_; }
  std::size_t num_sets() const { return sets_; }
  std::size_t associativity() const { return assoc_; }

  /// Clear contents and counters.
  void reset();
  /// Clear counters only (keep cache contents warm).
  void reset_counters();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t age = 0;
    bool valid = false;
  };

  std::size_t size_bytes_;
  std::size_t line_bytes_;
  std::size_t assoc_;
  std::size_t sets_;
  unsigned line_shift_;
  std::vector<Line> lines_;  // sets_ * assoc_, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Two-level inclusive hierarchy (L1 + L2): an access probes L1; on an L1
/// miss it probes L2; on an L2 miss it fills both.  Used to study where
/// the t' sub-blocking should aim ("the block fits into a certain level
/// cache hierarchy (e.g. L2)", Section IV) — small t' blocks that fit L1
/// stop paying even the L2 hit cost.
class CacheHierarchy {
 public:
  CacheHierarchy(std::size_t l1_bytes, std::size_t l1_assoc,
                 std::size_t l2_bytes, std::size_t l2_assoc,
                 std::size_t line_bytes)
      : l1_(l1_bytes, line_bytes, l1_assoc),
        l2_(l2_bytes, line_bytes, l2_assoc) {}

  /// Returns the level that served the access: 1, 2, or 3 (memory).
  int access(std::uint64_t addr) {
    if (l1_.access(addr)) return 1;
    if (l2_.access(addr)) return 2;
    return 3;
  }

  std::uint64_t l1_hits() const { return l1_.hits(); }
  std::uint64_t l2_hits() const { return l2_.hits(); }
  std::uint64_t memory_accesses() const { return l2_.misses(); }
  std::uint64_t accesses() const { return l1_.accesses(); }

  /// Average access time under a simple 3-level latency vector.
  double amat_ns(double l1_ns, double l2_ns, double mem_ns) const {
    if (accesses() == 0) return 0.0;
    const double a = static_cast<double>(accesses());
    return (static_cast<double>(l1_hits()) * l1_ns +
            static_cast<double>(l2_hits()) * l2_ns +
            static_cast<double>(memory_accesses()) * mem_ns) /
           a;
  }

  void reset() {
    l1_.reset();
    l2_.reset();
  }

  const CacheSim& l1() const { return l1_; }
  const CacheSim& l2() const { return l2_; }

 private:
  CacheSim l1_;
  CacheSim l2_;
};

}  // namespace pgraph::machine
