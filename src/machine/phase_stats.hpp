#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pgraph::machine {

/// Cost categories matching the execution-time breakdown of Figure 5/6 in
/// the paper:
///   Comm      - time in upc_memget/upc_memput (network transfers)
///   Sort      - sorting request indices (the group phase)
///   Copy      - reading/writing the local portion of shared arrays
///   Irregular - reordering retrieved elements to the request order
///   Setup     - building the SMatrix/PMatrix communication matrices
///   Work      - allocation, initialization, target-thread-id computation
/// plus one category the paper does not have:
///   Scrub     - integrity scrubbing of resident partitions (re-walking
///               chunks, verifying checksums, healing from mirrors)
enum class Cat : std::uint8_t {
  Comm = 0,
  Sort,
  Copy,
  Irregular,
  Setup,
  Work,
  Scrub
};

inline constexpr std::size_t kNumCats = 7;

inline constexpr std::array<std::string_view, kNumCats> kCatNames = {
    "Comm", "Sort", "Copy", "Irregular", "Setup", "Work", "Scrub"};

constexpr std::string_view cat_name(Cat c) {
  return kCatNames[static_cast<std::size_t>(c)];
}

/// Per-thread accumulator of modeled nanoseconds, by category.
/// Not thread-safe; each thread owns one and they are merged after a run.
class PhaseStats {
 public:
  void add(Cat c, double ns) { ns_[static_cast<std::size_t>(c)] += ns; }

  double get(Cat c) const { return ns_[static_cast<std::size_t>(c)]; }

  double total() const {
    double t = 0;
    for (double v : ns_) t += v;
    return t;
  }

  void merge_max(const PhaseStats& o) {
    for (std::size_t i = 0; i < kNumCats; ++i)
      if (o.ns_[i] > ns_[i]) ns_[i] = o.ns_[i];
  }

  void merge_sum(const PhaseStats& o) {
    for (std::size_t i = 0; i < kNumCats; ++i) ns_[i] += o.ns_[i];
  }

  void reset() { ns_.fill(0.0); }

 private:
  std::array<double, kNumCats> ns_{};
};

}  // namespace pgraph::machine
