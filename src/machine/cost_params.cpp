#include "machine/cost_params.hpp"

namespace pgraph::machine {

CostParams CostParams::hps_cluster() {
  CostParams p;
  p.preset = "hps-cluster";
  // Dual-plane HPS: ~2 GB/s per link; measured one-way MPI latency on the
  // HPS generation of hardware was a few microseconds.
  p.net_latency_ns = 1900.0;
  p.net_inv_bw_ns_per_byte = 0.5;
  p.net_overhead_ns = 600.0;
  p.net_small_msg_sw_ns = 400.0;
  p.mem_latency_ns = 90.0;
  p.mem_inv_bw_ns_per_byte = 0.25;
  return p;
}

CostParams CostParams::infiniband_ddr3() {
  CostParams p;
  p.preset = "infiniband-ddr3";
  // Section III: "Infiniband latency is about 190 nanoseconds, while that
  // of the DDR3 SDRAM is about 9 nanoseconds" and B ~= B_M ~= 4 GB/s.
  p.net_latency_ns = 190.0;
  p.net_inv_bw_ns_per_byte = 0.25;
  p.net_overhead_ns = 200.0;
  p.net_small_msg_sw_ns = 400.0;
  p.mem_latency_ns = 9.0;
  p.mem_inv_bw_ns_per_byte = 0.25;
  p.cache_hit_ns = 1.0;
  return p;
}

CostParams CostParams::smp_node() {
  CostParams p = hps_cluster();
  p.preset = "smp-node";
  return p;
}

}  // namespace pgraph::machine
