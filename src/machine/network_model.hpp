#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "machine/cost_params.hpp"

namespace pgraph::machine {

/// LogGP-flavoured network cost model with per-node NIC serialization.
///
/// Three properties of the paper's platform are modeled:
///
///  1. A message of b bytes costs the *sender* `o + b/B` of NIC occupancy
///     and arrives `L` later; the *receiver* NIC is then occupied for
///     `o + b/B` to deliver it.
///  2. The threads of one node share the node's NIC, so their messages are
///     serialized ("when blocking communication common in compiled code is
///     used, the messages from the t threads on one node are serialized",
///     Section III).  We account this with per-node service accumulators
///     that are drained at each BSP superstep boundary (barrier): the
///     superstep cannot end before the busiest NIC has pushed/delivered all
///     of its traffic.
///  3. Fine-grained (per-element) PGAS accesses additionally pay a software
///     handling cost per message (`net_small_msg_sw_ns`) — the compiled-code
///     overhead the paper's naive implementation suffers from.
///
/// Order-sensitivity of the collectives' exchange loops (the `circular`
/// optimization) is handled one level up by ExchangeSchedule, which uses the
/// `msg_service_ns` / `msg_wire_ns` primitives from this class.
///
/// Thread safety: all accounting uses relaxed atomics; the model never
/// blocks the simulated threads against each other.
class NetworkModel {
 public:
  NetworkModel(const CostParams& p, int nodes);

  int nodes() const { return nodes_; }

  /// --- primitive message costs --------------------------------------

  /// NIC occupancy (service time) for one message of `bytes`: o + b/B.
  double msg_service_ns(std::size_t bytes) const {
    return p_->net_overhead_ns +
           static_cast<double>(bytes) * p_->net_inv_bw_ns_per_byte;
  }

  /// End-to-end wire time of one message: o + L + b/B.
  double msg_wire_ns(std::size_t bytes) const {
    return msg_service_ns(bytes) + p_->net_latency_ns;
  }

  /// --- fine-grained (per-element) operations -------------------------

  /// Blocking remote read round trip: small request out, `bytes` reply back,
  /// plus software handling on both ends.  Returns the latency to add to the
  /// *calling thread's* clock; also accrues NIC service on both nodes.
  double fine_get_ns(int src_node, int dst_node, std::size_t bytes);

  /// One-sided remote write of `bytes` (blocking until injected).
  double fine_put_ns(int src_node, int dst_node, std::size_t bytes);

  /// --- coalesced bulk operations --------------------------------------

  /// One-sided bulk put (upc_memput after coalescing / RDMA-capable).
  /// Returns sender-side occupancy; accrues NIC service on both nodes.
  double bulk_put_ns(int src_node, int dst_node, std::size_t bytes);

  /// Blocking bulk get (upc_memget): full round trip for the caller.
  double bulk_get_ns(int src_node, int dst_node, std::size_t bytes);

  /// --- superstep drain -------------------------------------------------

  /// Per-node NIC drain breakdown of one superstep (see drain_nic_ns).
  struct NicDrain {
    double service_ns = 0.0;    ///< raw accumulated NIC occupancy
    double congested_ns = 0.0;  ///< service_ns * congestion factor
    double factor = 1.0;        ///< applied congestion factor
    std::uint64_t msgs = 0;     ///< messages this node handled
  };

  /// Max over nodes of NIC service accumulated since the last drain, then
  /// reset.  Called by the runtime inside each barrier: the returned value
  /// lower-bounds the duration of the superstep that just ended.  Bursty
  /// nodes pay a congestion factor (1 + msgs/capacity), capped.
  double drain_nic_max_ns() { return drain_nic_ns(nullptr); }

  /// As drain_nic_max_ns, but when `out` is non-null additionally writes
  /// the per-node breakdown into out[0..nodes) — the tracer's per-node NIC
  /// utilization counters come from here.
  double drain_nic_ns(NicDrain* out);

  /// Record a coalesced message priced elsewhere (by the exchange
  /// simulation) so that the global message/byte counters stay complete.
  void count_message(std::size_t bytes) {
    msgs_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// --- counters (monotonic, never reset) -------------------------------
  std::uint64_t total_messages() const {
    return msgs_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t fine_messages() const {
    return fine_msgs_.load(std::memory_order_relaxed);
  }

  const CostParams& params() const { return *p_; }

 private:
  // Nanoseconds are accumulated as integers to allow lock-free atomic adds.
  struct alignas(64) NodeNic {
    std::atomic<std::uint64_t> service_ns{0};
    std::atomic<std::uint64_t> msgs{0};
  };

  void accrue(int node, double ns, std::uint64_t nmsgs = 1);

  const CostParams* p_;
  int nodes_;
  std::unique_ptr<NodeNic[]> nic_;
  std::atomic<std::uint64_t> msgs_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> fine_msgs_{0};
};

}  // namespace pgraph::machine
