#include "machine/exchange_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace pgraph::machine {

namespace {

struct InFlight {
  double arrival;
  std::int32_t dst_node;
  double service;
};

/// Bounds-check a node index from the plan: assert in debug builds, clamp
/// with a diagnostic in release builds (a malformed plan must not turn
/// into an out-of-range indexing).
inline std::int32_t checked_node(std::int32_t v, int nodes,
                                 const char* what) {
  if (v >= 0 && v < nodes) return v;
  assert(!"exchange_sim: node index out of range");
  std::fprintf(stderr,
               "exchange_sim: %s %d out of range [0, %d); clamping\n", what,
               static_cast<int>(v), nodes);
  return v < 0 ? 0 : nodes - 1;
}

}  // namespace

double exchange_duration_ns(const ExchangePlan& plan,
                            const std::vector<std::int32_t>& thread_node,
                            int nodes, double latency_ns,
                            ExchangeNodeStats* node_stats) {
  assert(plan.size() == thread_node.size());
  const std::size_t nthreads = std::min(plan.size(), thread_node.size());

  if (node_stats != nullptr)
    std::fill(node_stats, node_stats + nodes, ExchangeNodeStats{});

  std::size_t max_steps = 0;
  std::size_t total_msgs = 0;
  for (const auto& lst : plan) {
    max_steps = std::max(max_steps, lst.size());
    total_msgs += lst.size();
  }
  if (total_msgs == 0) return 0.0;
  if (nodes <= 0) {
    assert(!"exchange_sim: messages posted with no nodes");
    std::fprintf(stderr,
                 "exchange_sim: %zu messages but nodes=%d; ignoring plan\n",
                 total_msgs, nodes);
    return 0.0;
  }

  // Sender side: serialize each node's messages on its send NIC, visiting
  // threads step-by-step (step k of every thread before step k+1).
  std::vector<double> send_free(static_cast<std::size_t>(nodes), 0.0);
  std::vector<InFlight> inflight;
  inflight.reserve(total_msgs);
  double sender_finish = 0.0;
  for (std::size_t step = 0; step < max_steps; ++step) {
    for (std::size_t thr = 0; thr < nthreads; ++thr) {
      if (step >= plan[thr].size()) continue;
      const ExchangeMsg& m = plan[thr][step];
      const std::int32_t src =
          checked_node(thread_node[thr], nodes, "thread_node");
      const double depart = send_free[src] + m.service_ns;
      send_free[src] = depart;
      sender_finish = std::max(sender_finish, depart);
      if (node_stats != nullptr) {
        ExchangeNodeStats& s = node_stats[src];
        s.send_busy_ns += m.service_ns;
        s.send_finish_ns = std::max(s.send_finish_ns, depart);
        ++s.msgs_out;
      }
      // A dropped message burned its send slot but never arrives.
      if (m.dropped) continue;
      const std::int32_t dst = checked_node(m.dst_node, nodes, "dst_node");
      inflight.push_back(
          {depart + latency_ns + m.extra_delay_ns, dst, m.service_ns});
    }
  }

  // Receiver side: each node's receive NIC serves messages in arrival order.
  std::sort(inflight.begin(), inflight.end(),
            [](const InFlight& a, const InFlight& b) {
              return a.arrival < b.arrival;
            });
  std::vector<double> recv_free(static_cast<std::size_t>(nodes), 0.0);
  double recv_finish = 0.0;
  for (const InFlight& m : inflight) {
    double start = std::max(recv_free[m.dst_node], m.arrival);
    recv_free[m.dst_node] = start + m.service;
    recv_finish = std::max(recv_finish, recv_free[m.dst_node]);
    if (node_stats != nullptr) {
      ExchangeNodeStats& s = node_stats[m.dst_node];
      s.recv_busy_ns += m.service;
      s.recv_finish_ns = std::max(s.recv_finish_ns, recv_free[m.dst_node]);
      ++s.msgs_in;
    }
  }

  return std::max(sender_finish, recv_finish);
}

}  // namespace pgraph::machine
