#include "machine/exchange_sim.hpp"

#include <algorithm>
#include <cassert>

namespace pgraph::machine {

namespace {
struct InFlight {
  double arrival;
  std::int32_t dst_node;
  double service;
};
}  // namespace

double exchange_duration_ns(const ExchangePlan& plan,
                            const std::vector<std::int32_t>& thread_node,
                            int nodes, double latency_ns,
                            ExchangeNodeStats* node_stats) {
  assert(plan.size() == thread_node.size());
  const std::size_t nthreads = plan.size();

  if (node_stats != nullptr)
    std::fill(node_stats, node_stats + nodes, ExchangeNodeStats{});

  std::size_t max_steps = 0;
  std::size_t total_msgs = 0;
  for (const auto& lst : plan) {
    max_steps = std::max(max_steps, lst.size());
    total_msgs += lst.size();
  }
  if (total_msgs == 0) return 0.0;

  // Sender side: serialize each node's messages on its send NIC, visiting
  // threads step-by-step (step k of every thread before step k+1).
  std::vector<double> send_free(static_cast<std::size_t>(nodes), 0.0);
  std::vector<InFlight> inflight;
  inflight.reserve(total_msgs);
  double sender_finish = 0.0;
  for (std::size_t step = 0; step < max_steps; ++step) {
    for (std::size_t thr = 0; thr < nthreads; ++thr) {
      if (step >= plan[thr].size()) continue;
      const ExchangeMsg& m = plan[thr][step];
      const std::int32_t src = thread_node[thr];
      const double depart = send_free[src] + m.service_ns;
      send_free[src] = depart;
      sender_finish = std::max(sender_finish, depart);
      inflight.push_back({depart + latency_ns, m.dst_node, m.service_ns});
      if (node_stats != nullptr) {
        ExchangeNodeStats& s = node_stats[src];
        s.send_busy_ns += m.service_ns;
        s.send_finish_ns = std::max(s.send_finish_ns, depart);
        ++s.msgs_out;
      }
    }
  }

  // Receiver side: each node's receive NIC serves messages in arrival order.
  std::sort(inflight.begin(), inflight.end(),
            [](const InFlight& a, const InFlight& b) {
              return a.arrival < b.arrival;
            });
  std::vector<double> recv_free(static_cast<std::size_t>(nodes), 0.0);
  double recv_finish = 0.0;
  for (const InFlight& m : inflight) {
    double start = std::max(recv_free[m.dst_node], m.arrival);
    recv_free[m.dst_node] = start + m.service;
    recv_finish = std::max(recv_finish, recv_free[m.dst_node]);
    if (node_stats != nullptr) {
      ExchangeNodeStats& s = node_stats[m.dst_node];
      s.recv_busy_ns += m.service;
      s.recv_finish_ns = std::max(s.recv_finish_ns, recv_free[m.dst_node]);
      ++s.msgs_in;
    }
  }

  return std::max(sender_finish, recv_finish);
}

}  // namespace pgraph::machine
