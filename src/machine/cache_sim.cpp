#include "machine/cache_sim.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace pgraph::machine {

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes,
                   std::size_t assoc)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(assoc) {
  if (!std::has_single_bit(line_bytes))
    throw std::invalid_argument("CacheSim: line size must be a power of two");
  if (assoc == 0 || size_bytes == 0 || size_bytes % (line_bytes * assoc) != 0)
    throw std::invalid_argument("CacheSim: size must be a multiple of line*assoc");
  sets_ = size_bytes / (line_bytes * assoc);
  if (!std::has_single_bit(sets_))
    throw std::invalid_argument("CacheSim: number of sets must be a power of two");
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
  lines_.assign(sets_ * assoc_, Line{});
}

bool CacheSim::access(std::uint64_t addr) {
  const std::uint64_t block = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(block & (sets_ - 1));
  const std::uint64_t tag = block >> std::countr_zero(sets_);
  Line* base = &lines_[set * assoc_];
  ++tick_;
  // Hit path.
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].age = tick_;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU (or fill an invalid way).
  std::size_t victim = 0;
  std::uint64_t oldest = UINT64_MAX;
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].age < oldest) {
      oldest = base[w].age;
      victim = w;
    }
  }
  base[victim] = Line{tag, tick_, true};
  ++misses_;
  return false;
}

void CacheSim::access_range(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  for (std::uint64_t b = first; b <= last; ++b) access(b << line_shift_);
}

void CacheSim::reset() {
  lines_.assign(sets_ * assoc_, Line{});
  tick_ = 0;
  reset_counters();
}

void CacheSim::reset_counters() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace pgraph::machine
