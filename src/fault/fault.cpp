#include "fault/fault.hpp"

#include <algorithm>
#include <cstring>

namespace pgraph::fault {

namespace {

/// Per-fault-kind hash streams, so e.g. the drop draw of a message never
/// correlates with its duplicate draw.
enum Stream : std::uint64_t {
  kStreamDrop = 0x11,
  kStreamDup = 0x22,
  kStreamDelay = 0x33,
  kStreamCorrupt = 0x44,
  kStreamStraggle = 0x55,
  kStreamOutage = 0x66,
  kStreamLoss = 0x77,
  kStreamMemFlip = 0x88,
};

}  // namespace

std::uint64_t checksum_words(const void* p, std::size_t bytes) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  std::uint64_t sum = 0x3c79ac492ba7b653ull;
  std::size_t i = 0;
  std::uint64_t w = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::memcpy(&w, b + i, 8);
    sum = mix64(sum ^ mix64(w + i));
  }
  if (i < bytes) {
    w = 0;
    std::memcpy(&w, b + i, bytes - i);
    sum = mix64(sum ^ mix64(w + i));
  }
  return sum;
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::MsgDrop: return "msg-drop";
    case FaultKind::MsgDuplicate: return "msg-duplicate";
    case FaultKind::MsgDelay: return "msg-delay";
    case FaultKind::Corruption: return "corruption";
    case FaultKind::Straggler: return "straggler";
    case FaultKind::Outage: return "outage";
    case FaultKind::RetryExhausted: return "retry-exhausted";
    case FaultKind::PermanentLoss: return "permanent-loss";
    case FaultKind::MemoryCorrupt: return "memory-corrupt";
  }
  return "?";
}

double FaultConfig::backoff_ns_for(int attempt) const {
  double ns = retry_backoff_ns;
  for (int i = 0; i < attempt && ns < backoff_cap_ns; ++i) ns *= 2.0;
  return std::min(ns, backoff_cap_ns);
}

FaultConfig FaultConfig::parse(const std::string& spec, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.seed = seed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("faults: expected key=value, got '" + item +
                                  "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    double v = 0.0;
    try {
      std::size_t used = 0;
      v = std::stod(val, &used);
      if (used != val.size()) throw std::invalid_argument(val);
    } catch (const std::exception&) {
      throw std::invalid_argument("faults: bad value for '" + key + "': '" +
                                  val + "'");
    }
    if (key == "drop") cfg.drop_p = v;
    else if (key == "dup") cfg.dup_p = v;
    else if (key == "delay") cfg.delay_p = v;
    else if (key == "delay_ns") cfg.delay_ns = v;
    else if (key == "corrupt") cfg.corrupt_p = v;
    else if (key == "straggle") cfg.straggle_p = v;
    else if (key == "straggle_ns") cfg.straggle_ns = v;
    else if (key == "outage_every") cfg.outage_every = static_cast<std::uint64_t>(v);
    else if (key == "outage_k") cfg.outage_k = static_cast<int>(v);
    else if (key == "loss_at") cfg.loss_at = static_cast<std::uint64_t>(v);
    else if (key == "loss_node") cfg.loss_node = static_cast<int>(v);
    else if (key == "mem_flip_at") cfg.mem_flip_at = static_cast<std::uint64_t>(v);
    else if (key == "mem_flips") {
      if (v < 0.0)
        throw std::invalid_argument("faults: mem_flips must be >= 0");
      cfg.mem_flips = static_cast<int>(v);
    }
    else if (key == "mem_flip_mirror") {
      if (v != 0.0 && v != 1.0)
        throw std::invalid_argument("faults: mem_flip_mirror must be 0 or 1");
      cfg.mem_flip_mirror = v != 0.0;
    }
    else if (key == "retries") cfg.max_retries = static_cast<int>(v);
    else if (key == "timeout_ns") cfg.ack_timeout_ns = v;
    else if (key == "backoff_ns") cfg.retry_backoff_ns = v;
    else if (key == "cap_ns") cfg.backoff_cap_ns = v;
    else if (key == "arm") {
      if (v != 0.0 && v != 1.0)
        throw std::invalid_argument("faults: arm must be 0 or 1");
      cfg.start_armed = v != 0.0;
    }
    else
      throw std::invalid_argument("faults: unknown key '" + key + "'");
  }
  for (double p : {cfg.drop_p, cfg.dup_p, cfg.delay_p, cfg.corrupt_p,
                   cfg.straggle_p})
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("faults: probabilities must be in [0,1]");
  if (cfg.outage_every > 0) {
    // A window must be shorter than its period or the node never recovers.
    cfg.outage_k = std::clamp<int>(cfg.outage_k, 1,
                                   static_cast<int>(cfg.outage_every) - 1);
  }
  if (cfg.loss_at == 0 && cfg.loss_node >= 0)
    throw std::invalid_argument(
        "faults: loss_node requires loss_at > 0");
  if (cfg.mem_flip_at == 0 && cfg.mem_flip_mirror)
    throw std::invalid_argument(
        "faults: mem_flip_mirror requires mem_flip_at > 0");
  cfg.max_retries = std::max(cfg.max_retries, 0);
  return cfg;
}

void FaultConfig::validate_topology(int nodes) const {
  if (outage_every > 0 && nodes < 2)
    throw std::invalid_argument(
        "faults: outage_* plans need at least 2 nodes (got " +
        std::to_string(nodes) + "); a 1-node outage can never recover");
  if (loss_at > 0 && nodes < 2)
    throw std::invalid_argument(
        "faults: loss_* plans need at least 2 nodes (got " +
        std::to_string(nodes) + "); there is no buddy to fail over to");
  if (loss_node >= nodes)
    throw std::invalid_argument(
        "faults: loss_node=" + std::to_string(loss_node) +
        " does not exist on " + std::to_string(nodes) + " node(s)");
}

std::uint64_t FaultInjector::draw(std::uint64_t stream, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t c) const {
  std::uint64_t h = mix64(cfg_.seed ^ (stream << 56));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  return h;
}

int FaultInjector::down_node(int nodes, std::uint64_t epoch) const {
  if (!armed() || cfg_.outage_every == 0 || nodes <= 1) return -1;
  const std::uint64_t j = epoch / cfg_.outage_every;
  if (j == 0) return -1;  // warm-up period: no outage before one full cycle
  if (epoch % cfg_.outage_every >= static_cast<std::uint64_t>(cfg_.outage_k))
    return -1;
  return static_cast<int>(draw(kStreamOutage, j, 0, 0) %
                          static_cast<std::uint64_t>(nodes));
}

bool FaultInjector::outage_active(std::uint64_t epoch) const {
  if (!armed() || cfg_.outage_every == 0) return false;
  if (epoch / cfg_.outage_every == 0) return false;
  return epoch % cfg_.outage_every <
         static_cast<std::uint64_t>(cfg_.outage_k);
}

bool FaultInjector::outage_ends_at(std::uint64_t epoch) const {
  return outage_active(epoch) && !outage_active(epoch + 1);
}

void FaultInjector::raise_outage_event() {
  c_outage_events_.fetch_add(1, std::memory_order_acq_rel);
}

int FaultInjector::perm_lost_node(int nodes, std::uint64_t epoch) const {
  if (!armed() || cfg_.loss_at == 0 || nodes <= 1 || epoch < cfg_.loss_at)
    return -1;
  if (cfg_.loss_node >= 0) return cfg_.loss_node % nodes;
  // Drawn once from the plan (keyed on loss_at, not epoch): the same node
  // is lost at every epoch >= loss_at.
  return static_cast<int>(draw(kStreamLoss, cfg_.loss_at, 0, 0) %
                          static_cast<std::uint64_t>(nodes));
}

void FaultInjector::raise_loss_event() {
  c_loss_events_.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t FaultInjector::mem_flip_word(std::uint64_t epoch, int k,
                                           int salt) const {
  return draw(kStreamMemFlip, epoch, static_cast<std::uint64_t>(k),
              static_cast<std::uint64_t>(salt));
}

void FaultInjector::count_mem_flips(std::uint64_t n) {
  c_mem_flips_.fetch_add(n, std::memory_order_relaxed);
}

void FaultInjector::count_scrub_pass() {
  c_scrub_passes_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::count_scrub_detected(std::uint64_t n) {
  c_scrub_detected_.fetch_add(n, std::memory_order_relaxed);
}

void FaultInjector::count_scrub_heals(std::uint64_t n) {
  c_scrub_heals_.fetch_add(n, std::memory_order_relaxed);
}

void FaultInjector::raise_scrub_event() {
  c_scrub_events_.fetch_add(1, std::memory_order_acq_rel);
}

ExchangeFaults FaultInjector::apply_exchange(
    machine::ExchangePlan& plan, const std::vector<std::int32_t>& thread_node,
    int nodes, std::uint64_t epoch, int attempt) {
  ExchangeFaults out;
  if (!armed() || !cfg_.network_faults()) return out;
  const int down = down_node(nodes, epoch);
  const int lost = perm_lost_node(nodes, epoch);
  const std::uint64_t att = static_cast<std::uint64_t>(attempt);
  for (std::size_t thr = 0; thr < plan.size(); ++thr) {
    auto& lst = plan[thr];
    const int src = thr < thread_node.size() ? thread_node[thr] : 0;
    const std::size_t base_n = lst.size();
    for (std::size_t k = 0; k < base_n; ++k) {
      machine::ExchangeMsg m = lst[k];
      const std::uint64_t actor = (static_cast<std::uint64_t>(thr) << 32) | k;
      if (lost >= 0 && (src == lost || m.dst_node == lost)) {
        // Unlike outage drops, loss drops ARE retried: the sender cannot
        // know the peer is gone for good, so it burns the full ack-timeout
        // + backoff ladder before the runtime declares the node lost and
        // shrinks (Runtime::on_barrier).
        m.dropped = true;
        lst[k] = m;
        c_loss_drops_.fetch_add(1, std::memory_order_relaxed);
        machine::ExchangeMsg clean = m;
        clean.dropped = false;
        clean.extra_delay_ns = 0.0;
        out.retry.emplace_back(thr, clean);
        continue;
      }
      if (down >= 0 && (src == down || m.dst_node == down)) {
        m.dropped = true;
        lst[k] = m;
        ++out.outage_drops;
        c_outage_drops_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (cfg_.drop_p > 0.0 &&
          unit(draw(kStreamDrop, epoch, att, actor)) < cfg_.drop_p) {
        m.dropped = true;
        lst[k] = m;
        c_drops_.fetch_add(1, std::memory_order_relaxed);
        machine::ExchangeMsg clean = m;
        clean.dropped = false;
        clean.extra_delay_ns = 0.0;
        out.retry.emplace_back(thr, clean);
        continue;
      }
      if (cfg_.delay_p > 0.0 &&
          unit(draw(kStreamDelay, epoch, att, actor)) < cfg_.delay_p) {
        m.extra_delay_ns += cfg_.delay_ns;
        c_delays_.fetch_add(1, std::memory_order_relaxed);
      }
      lst[k] = m;
      if (cfg_.dup_p > 0.0 &&
          unit(draw(kStreamDup, epoch, att, actor)) < cfg_.dup_p) {
        // The duplicate burns send and receive NIC time; the payload is
        // idempotent (same shared-memory data), so nothing else changes.
        lst.push_back(m);
        c_duplicates_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return out;
}

double FaultInjector::straggler_delay_ns(std::uint64_t epoch, int thread) {
  if (!armed() || cfg_.straggle_p <= 0.0) return 0.0;
  const std::uint64_t h =
      draw(kStreamStraggle, epoch, static_cast<std::uint64_t>(thread), 0);
  if (unit(h) >= cfg_.straggle_p) return 0.0;
  c_straggles_.fetch_add(1, std::memory_order_relaxed);
  // 0.5x .. 1.5x of the configured magnitude, deterministically jittered.
  return cfg_.straggle_ns * (0.5 + unit(mix64(h)));
}

int FaultInjector::corrupt(void* buf, std::size_t bytes, std::uint64_t epoch,
                           int thread, int tag) {
  if (!armed() || cfg_.corrupt_p <= 0.0 || bytes < 8) return 0;
  const std::uint64_t h =
      draw(kStreamCorrupt, epoch,
           (static_cast<std::uint64_t>(thread) << 8) |
               static_cast<std::uint64_t>(tag & 0xff),
           bytes);
  if (unit(h) >= cfg_.corrupt_p) return 0;
  const std::size_t word = mix64(h ^ 0x5bd1e995u) % (bytes / 8);
  unsigned char* addr = static_cast<unsigned char*>(buf) + word * 8;
  std::uint64_t orig = 0;
  std::memcpy(&orig, addr, 8);
  // A nonzero mask guarantees the value (and the checksum) changes.
  const std::uint64_t flipped = orig ^ (mix64(h ^ 0xabcdULL) | 1ull);
  std::memcpy(addr, &flipped, 8);
  {
    std::lock_guard<std::mutex> lock(corrupt_mu_);
    corrupt_events_.push_back({addr, orig});
  }
  c_corruptions_.fetch_add(1, std::memory_order_relaxed);
  return 1;
}

int FaultInjector::repair(void* buf, std::size_t bytes) {
  unsigned char* lo = static_cast<unsigned char*>(buf);
  unsigned char* hi = lo + bytes;
  int restored = 0;
  std::lock_guard<std::mutex> lock(corrupt_mu_);
  for (std::size_t i = 0; i < corrupt_events_.size();) {
    CorruptEvent& e = corrupt_events_[i];
    if (e.addr >= lo && e.addr < hi) {
      std::memcpy(e.addr, &e.original, 8);
      e = corrupt_events_.back();
      corrupt_events_.pop_back();
      ++restored;
    } else {
      ++i;
    }
  }
  if (restored > 0)
    c_repairs_.fetch_add(static_cast<std::uint64_t>(restored),
                         std::memory_order_relaxed);
  return restored;
}

void FaultInjector::count_retransmits(std::size_t n) {
  c_retransmits_.fetch_add(n, std::memory_order_relaxed);
}

void FaultInjector::count_retry_wait(double ns) {
  c_retry_wait_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                             std::memory_order_relaxed);
}

void FaultInjector::count_detected() {
  c_detected_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::count_rollback() {
  c_rollbacks_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::count_checkpoint() {
  c_checkpoints_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::count_replication() {
  c_replications_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::count_replica_bytes(std::size_t bytes) {
  c_replica_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void FaultInjector::count_promoted(std::size_t bytes) {
  c_promoted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.drops = c_drops_.load(std::memory_order_relaxed);
  c.duplicates = c_duplicates_.load(std::memory_order_relaxed);
  c.delays = c_delays_.load(std::memory_order_relaxed);
  c.outage_drops = c_outage_drops_.load(std::memory_order_relaxed);
  c.retransmits = c_retransmits_.load(std::memory_order_relaxed);
  c.corruptions = c_corruptions_.load(std::memory_order_relaxed);
  c.detected = c_detected_.load(std::memory_order_relaxed);
  c.repairs = c_repairs_.load(std::memory_order_relaxed);
  c.straggles = c_straggles_.load(std::memory_order_relaxed);
  c.outage_events = c_outage_events_.load(std::memory_order_acquire);
  c.rollbacks = c_rollbacks_.load(std::memory_order_relaxed);
  c.checkpoints = c_checkpoints_.load(std::memory_order_relaxed);
  c.retry_wait_ns = c_retry_wait_ns_.load(std::memory_order_relaxed);
  c.loss_drops = c_loss_drops_.load(std::memory_order_relaxed);
  c.loss_events = c_loss_events_.load(std::memory_order_acquire);
  c.replications = c_replications_.load(std::memory_order_relaxed);
  c.replica_bytes = c_replica_bytes_.load(std::memory_order_relaxed);
  c.promoted_bytes = c_promoted_bytes_.load(std::memory_order_relaxed);
  c.mem_flips = c_mem_flips_.load(std::memory_order_relaxed);
  c.scrub_passes = c_scrub_passes_.load(std::memory_order_relaxed);
  c.scrub_detected = c_scrub_detected_.load(std::memory_order_relaxed);
  c.scrub_heals = c_scrub_heals_.load(std::memory_order_relaxed);
  c.scrub_events = c_scrub_events_.load(std::memory_order_acquire);
  return c;
}

void FaultInjector::reset_counters() {
  c_drops_ = 0;
  c_duplicates_ = 0;
  c_delays_ = 0;
  c_outage_drops_ = 0;
  c_retransmits_ = 0;
  c_corruptions_ = 0;
  c_detected_ = 0;
  c_repairs_ = 0;
  c_straggles_ = 0;
  c_outage_events_ = 0;
  c_rollbacks_ = 0;
  c_checkpoints_ = 0;
  c_retry_wait_ns_ = 0;
  c_loss_drops_ = 0;
  c_loss_events_ = 0;
  c_replications_ = 0;
  c_replica_bytes_ = 0;
  c_promoted_bytes_ = 0;
  c_mem_flips_ = 0;
  c_scrub_passes_ = 0;
  c_scrub_detected_ = 0;
  c_scrub_heals_ = 0;
  c_scrub_events_ = 0;
  std::lock_guard<std::mutex> lock(corrupt_mu_);
  corrupt_events_.clear();
}

}  // namespace pgraph::fault
