#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "machine/exchange_sim.hpp"

namespace pgraph::fault {

/// Deterministic fault injection for the simulated PGAS machine.
///
/// The simulator moves real data through shared memory and models *time*;
/// faults follow the same split.  Drops, duplicates, delays and stragglers
/// perturb modeled time and control flow but never lose committed data —
/// a dropped exchange message costs its sender an ack timeout and a
/// retransmission (exponential backoff, charged to the clock, capped by
/// `max_retries`; exhaustion surfaces as a collective FaultError).  Payload
/// corruption flips real bits in staged collective buffers; the injector
/// records the originals so that the checksum-validate-retransmit protocol
/// in getd/setd can restore them at exactly the modeled cost of a
/// retransmission.  Node outages drop all exchange traffic of one node for
/// K consecutive supersteps and raise a recovery event that checkpointing
/// algorithms (cc_coalesced, mst_pgas) answer with a rollback.
///
/// Every decision is a pure hash of (seed, stream, epoch, actor, attempt):
/// two runs over the same epoch sequence draw identical faults, so chaos
/// tests are reproducible bit-for-bit.  See docs/ROBUSTNESS.md.

/// splitmix64 finalizer: the one hash both the draws and the checksums use.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Position-mixed word checksum over raw bytes (trailing partial word
/// zero-padded).  Any single flipped word changes the sum.
std::uint64_t checksum_words(const void* p, std::size_t bytes);

enum class FaultKind : std::uint8_t {
  MsgDrop = 0,
  MsgDuplicate,
  MsgDelay,
  Corruption,
  Straggler,
  Outage,
  RetryExhausted,
  PermanentLoss,  ///< node never comes back; runtime shrank to the buddy
  MemoryCorrupt,  ///< at-rest bit flip that could not be healed
};

const char* fault_kind_name(FaultKind k);

/// Typed failure surfaced when the recovery protocol gives up (retry limit
/// exceeded).  Thrown collectively: every SPMD thread of the run throws
/// after the same barrier, so Runtime::run can unwind without deadlock.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

/// A seeded fault plan plus the retry-protocol constants.  Parsed from the
/// harness `--faults` spec: comma-separated key=value pairs, e.g.
///   drop=0.02,dup=0.01,delay=0.05,corrupt=0.1,straggle=0.1,outage_every=50
/// Keys: drop dup delay delay_ns corrupt straggle straggle_ns outage_every
/// outage_k loss_at loss_node retries timeout_ns backoff_ns cap_ns arm.
struct FaultConfig {
  std::uint64_t seed = 1;

  // Per-message exchange faults (drawn once per message per attempt).
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  double delay_ns = 20000.0;  ///< extra in-flight latency when delayed

  // Per-buffer payload corruption in the collectives (one word flipped).
  double corrupt_p = 0.0;

  // Per-(thread, superstep) straggler probability and magnitude.
  double straggle_p = 0.0;
  double straggle_ns = 50000.0;

  // Transient node outages: every `outage_every` epochs one pseudo-random
  // node loses its exchange traffic for `outage_k` consecutive supersteps
  // (0 disables outages).
  std::uint64_t outage_every = 0;
  int outage_k = 2;

  // Permanent node loss: from epoch `loss_at` on, one node is down for
  // good (0 disables).  `loss_node` pins the victim; -1 draws it from the
  // seeded plan.  Recovery is the buddy-replication shrink protocol
  // (docs/ROBUSTNESS.md "Degraded mode").
  std::uint64_t loss_at = 0;
  int loss_node = -1;

  // One-shot silent memory corruption: at the barrier closing epoch
  // `mem_flip_at` the runtime flips `mem_flips` seeded bits in resident
  // GlobalArray partitions (`mem_flip_mirror=1` targets the buddy mirrors
  // instead).  0 disables.  Detection/repair is the scrub protocol
  // (docs/ROBUSTNESS.md "At-rest integrity").
  std::uint64_t mem_flip_at = 0;
  int mem_flips = 1;
  bool mem_flip_mirror = false;

  // Recovery protocol (modeled time).
  int max_retries = 6;
  double ack_timeout_ns = 8000.0;
  double retry_backoff_ns = 4000.0;
  double backoff_cap_ns = 262144.0;

  // Serving-phase arming (`arm=0|1`, default armed): with start_armed
  // false the injector is constructed disarmed — no draws fire until the
  // host calls FaultInjector::set_armed(true).  Because every draw is a
  // pure hash of (seed, stream, epoch, actor, attempt), arming later does
  // not perturb the keying of subsequent draws; serving tests use this to
  // build the graph cleanly and then unleash the plan mid-service.
  bool start_armed = true;

  bool corruption_enabled() const { return corrupt_p > 0.0; }
  bool loss_enabled() const { return loss_at > 0; }
  bool mem_flips_enabled() const { return mem_flip_at > 0 && mem_flips > 0; }
  bool network_faults() const {
    return drop_p > 0.0 || dup_p > 0.0 || delay_p > 0.0 || outage_every > 0 ||
           loss_at > 0;
  }
  bool any_faults() const {
    return network_faults() || corruption_enabled() || straggle_p > 0.0 ||
           mem_flips_enabled();
  }
  double backoff_ns_for(int attempt) const;

  /// Parse a `--faults` spec; throws std::invalid_argument on unknown keys
  /// or malformed values.  An empty spec is a valid all-zero plan.
  static FaultConfig parse(const std::string& spec, std::uint64_t seed);

  /// Reject plans that cannot run on `nodes` nodes: outages and permanent
  /// loss need at least 2 nodes (there is nobody to fail over to on one),
  /// and a pinned loss_node must exist.  Throws std::invalid_argument.
  void validate_topology(int nodes) const;
};

/// Monotone event counters (snapshot; see FaultInjector::counters).
struct FaultCounters {
  std::uint64_t drops = 0;         ///< retryable exchange-message drops
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t outage_drops = 0;  ///< non-retryable (node down)
  std::uint64_t retransmits = 0;   ///< messages re-sent after a timeout
  std::uint64_t corruptions = 0;   ///< words flipped in staged payloads
  std::uint64_t detected = 0;      ///< checksum mismatches caught
  std::uint64_t repairs = 0;       ///< words restored by retransmission
  std::uint64_t straggles = 0;
  std::uint64_t outage_events = 0; ///< outage windows that ended (rollback
                                   ///< triggers for checkpointing loops)
  std::uint64_t rollbacks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t retry_wait_ns = 0; ///< modeled ack-timeout + backoff time
  std::uint64_t loss_drops = 0;    ///< drops caused by a permanently lost node
  std::uint64_t loss_events = 0;   ///< shrink events (one per lost node)
  std::uint64_t replications = 0;  ///< buddy replication passes completed
  std::uint64_t replica_bytes = 0; ///< bytes mirrored to buddies
  std::uint64_t promoted_bytes = 0;///< mirror bytes promoted at a shrink
  std::uint64_t mem_flips = 0;     ///< at-rest bits flipped by the injector
  std::uint64_t scrub_passes = 0;  ///< Runtime::scrub collectives completed
  std::uint64_t scrub_detected = 0;///< partitions caught with bad checksums
  std::uint64_t scrub_heals = 0;   ///< partitions healed from buddy mirrors
  std::uint64_t scrub_events = 0;  ///< scrub recovery events (rollback
                                   ///< triggers for checkpointing loops)
};

/// What one fault pass over an exchange plan produced: the retryable lost
/// messages (keyed by sending thread) and the count of outage drops, which
/// time out once but are not retransmitted while the node is down.
struct ExchangeFaults {
  std::vector<std::pair<std::size_t, machine::ExchangeMsg>> retry;
  std::uint64_t outage_drops = 0;
};

/// The seeded injector.  One instance serves a whole bench process; it is
/// attached to a Runtime (Runtime::set_fault_injector) and shared by the
/// collectives' checksum protocol and the algorithms' checkpoint loops.
/// Counter methods are thread-safe; apply_exchange and the outage/straggler
/// draws are called from the barrier completion step (single-threaded).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg)
      : cfg_(cfg), armed_(cfg.start_armed) {}

  const FaultConfig& config() const { return cfg_; }

  // --- arming ------------------------------------------------------------
  /// Host-side gate over every injection point (drops, outages, loss,
  /// stragglers, corruption).  Disarmed, the injector behaves like an
  /// empty plan; re-arming mid-process is deterministic because draws are
  /// keyed by epoch, not by how many draws happened before.  Toggle only
  /// between runs (it is read from the barrier completion step).
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_release);
  }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // --- exchange phase (machine layer) ----------------------------------
  /// Mutate `plan` in place for one delivery attempt: mark drops (the
  /// sender still occupies its NIC; nothing arrives), append duplicates,
  /// and add in-flight delays.  Messages to or from a down node are
  /// dropped non-retryably.  Returns the retryable losses.
  ExchangeFaults apply_exchange(machine::ExchangePlan& plan,
                                const std::vector<std::int32_t>& thread_node,
                                int nodes, std::uint64_t epoch, int attempt);

  // --- outages ----------------------------------------------------------
  /// Node that is down during `epoch`, or -1.
  int down_node(int nodes, std::uint64_t epoch) const;
  bool outage_active(std::uint64_t epoch) const;
  /// True iff `epoch` is the last superstep of an outage window; the
  /// runtime raises one recovery event per window at that barrier.
  bool outage_ends_at(std::uint64_t epoch) const;
  void raise_outage_event();
  std::uint64_t outage_events() const {
    return c_outage_events_.load(std::memory_order_acquire);
  }

  // --- permanent node loss ----------------------------------------------
  /// Node that is permanently lost as of `epoch`, or -1.  Stable: the same
  /// node for every epoch >= loss_at.
  int perm_lost_node(int nodes, std::uint64_t epoch) const;
  void raise_loss_event();
  std::uint64_t loss_events() const {
    return c_loss_events_.load(std::memory_order_acquire);
  }
  /// Rollback triggers for checkpointing loops: outage windows that ended,
  /// shrink events, and scrub heals (a heal restores checkpoint-time bytes,
  /// so the loop must rewind to that checkpoint for consistency).
  std::uint64_t recovery_events() const {
    return outage_events() + loss_events() + scrub_events();
  }

  // --- at-rest memory corruption ----------------------------------------
  /// Seeded draw for the k-th memory bit flip of `epoch`; `salt`
  /// distinguishes independent sub-draws (victim pick vs. bit pick).  The
  /// runtime maps the value onto a (site, thread, byte, bit) target.
  std::uint64_t mem_flip_word(std::uint64_t epoch, int k, int salt) const;
  void count_mem_flips(std::uint64_t n);

  // --- scrub protocol ---------------------------------------------------
  void count_scrub_pass();
  void count_scrub_detected(std::uint64_t n);
  void count_scrub_heals(std::uint64_t n);
  /// One per scrub pass that healed at least one partition; feeds
  /// recovery_events() so checkpoint loops roll back after a heal.
  void raise_scrub_event();
  std::uint64_t scrub_events() const {
    return c_scrub_events_.load(std::memory_order_acquire);
  }

  // --- stragglers -------------------------------------------------------
  /// Extra modeled delay for `thread` in the superstep ending at `epoch`
  /// (0 for non-straggling threads); counts the event when it fires.
  double straggler_delay_ns(std::uint64_t epoch, int thread);

  // --- payload corruption ----------------------------------------------
  /// Maybe flip one aligned word inside [buf, buf+bytes), keyed on
  /// (epoch, thread, tag); records the original for repair().  Returns
  /// the number of words flipped (0 or 1).
  int corrupt(void* buf, std::size_t bytes, std::uint64_t epoch, int thread,
              int tag);
  /// Restore every recorded corruption inside [buf, buf+bytes) — the
  /// modeled retransmission delivering a clean copy.  Returns the number
  /// of words restored.
  int repair(void* buf, std::size_t bytes);

  // --- bookkeeping ------------------------------------------------------
  void count_retransmits(std::size_t n);
  void count_retry_wait(double ns);
  void count_detected();
  void count_rollback();
  void count_checkpoint();
  void count_replication();  ///< one buddy-replication pass completed
  void count_replica_bytes(std::size_t bytes);
  void count_promoted(std::size_t bytes);

  FaultCounters counters() const;
  void reset_counters();

 private:
  std::uint64_t draw(std::uint64_t stream, std::uint64_t a, std::uint64_t b,
                     std::uint64_t c) const;
  /// Uniform [0,1) from a draw.
  static double unit(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FaultConfig cfg_;
  std::atomic<bool> armed_{true};

  struct CorruptEvent {
    unsigned char* addr = nullptr;
    std::uint64_t original = 0;
  };
  mutable std::mutex corrupt_mu_;
  std::vector<CorruptEvent> corrupt_events_;

  std::atomic<std::uint64_t> c_drops_{0};
  std::atomic<std::uint64_t> c_duplicates_{0};
  std::atomic<std::uint64_t> c_delays_{0};
  std::atomic<std::uint64_t> c_outage_drops_{0};
  std::atomic<std::uint64_t> c_retransmits_{0};
  std::atomic<std::uint64_t> c_corruptions_{0};
  std::atomic<std::uint64_t> c_detected_{0};
  std::atomic<std::uint64_t> c_repairs_{0};
  std::atomic<std::uint64_t> c_straggles_{0};
  std::atomic<std::uint64_t> c_outage_events_{0};
  std::atomic<std::uint64_t> c_rollbacks_{0};
  std::atomic<std::uint64_t> c_checkpoints_{0};
  std::atomic<std::uint64_t> c_retry_wait_ns_{0};
  std::atomic<std::uint64_t> c_loss_drops_{0};
  std::atomic<std::uint64_t> c_loss_events_{0};
  std::atomic<std::uint64_t> c_replications_{0};
  std::atomic<std::uint64_t> c_replica_bytes_{0};
  std::atomic<std::uint64_t> c_promoted_bytes_{0};
  std::atomic<std::uint64_t> c_mem_flips_{0};
  std::atomic<std::uint64_t> c_scrub_passes_{0};
  std::atomic<std::uint64_t> c_scrub_detected_{0};
  std::atomic<std::uint64_t> c_scrub_heals_{0};
  std::atomic<std::uint64_t> c_scrub_events_{0};
};

}  // namespace pgraph::fault
