#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgraph::partition {

/// Distribution scheme of a shared array over the s UPC threads.
enum class PartitionKind : std::uint8_t {
  Block,        ///< owner(i) = i / ceil(n/s) — the paper's layout
  Cyclic,       ///< owner(i) = i % s
  BlockCyclic,  ///< owner(i) = (i / chunk) % s
  Degree,       ///< contiguous ranges cut by degree weight (skew-aware)
};

/// Serializable description of the partitioning policy a Runtime applies to
/// kernel data arrays.  `parse` understands the harness syntax
/// (`block | cyclic | block_cyclic:<k> | degree`); `describe` round-trips
/// it so replicas/checkpoints and bench JSON can name the active scheme.
///
/// The degree-aware scheme needs per-vertex weights that only exist once
/// the graph is built, so a parsed `degree` spec starts empty; benches fill
/// `degrees`/`n_hint` via `with_degrees` before handing the spec to the
/// Runtime.  A degree spec is only applied to arrays whose size matches
/// `n_hint` (one slot per vertex); any other array falls back to BLOCK, so
/// auxiliary structures never inherit vertex-shaped cuts.
struct PartitionSpec {
  PartitionKind kind = PartitionKind::Block;
  std::size_t chunk = 0;   ///< BlockCyclic only; elements per round-robin run
  std::size_t n_hint = 0;  ///< Degree only; the vertex count `degrees` covers
  std::vector<std::uint32_t> degrees;  ///< Degree only; one-pass histogram

  /// Parse the harness syntax into `out`.  Returns "" on success, else a
  /// human-readable error.  Validation follows the harness idiom: accept
  /// conditions are phrased positively so NaN/garbage chunk values fall
  /// through to rejection.
  static std::string parse(const std::string& text, PartitionSpec& out);

  /// Canonical descriptor: "block", "cyclic", "block_cyclic:<k>", "degree".
  std::string describe() const;

  PartitionSpec with_degrees(std::vector<std::uint32_t> deg) const {
    PartitionSpec s = *this;
    s.degrees = std::move(deg);
    s.n_hint = s.degrees.size();
    return s;
  }
};

/// A concrete index mapping for one (n, s) pair: the policy interface every
/// owner computation routes through.
///
/// Contract (see docs/PARTITIONING.md):
///   - owner_of / local_of / global_of form a bijection on [0, n):
///       global_of(owner_of(i), local_of(i)) == i
///   - local_of(i) < local_size(owner_of(i))
///   - owner_of is total and clamping: any value (even a corruption-derived
///     wild index) yields a thread id in [0, s); callers bounds-check
///     local_of against local_size before dereferencing.
///   - owners are THREAD ids.  Threads never change identity when a
///     permanent node loss shrinks the cluster — only the thread->node map
///     (Topology::node_of) changes — so every partitioning composes with
///     the live topology remap for free.
///
/// Storage side: GlobalArray lays elements out partition-major (all of
/// thread 0's elements, then thread 1's, ...).  `is_identity()` reports
/// when that layout equals global index order (Block and Degree, whose
/// ranges are contiguous); the identity path is bit-identical to the
/// historical block layout and costs nothing.
class Partitioning {
 public:
  /// Default: a degenerate 1-thread block over 0 elements.
  Partitioning() : Partitioning(block(0, 1)) {}

  static Partitioning block(std::size_t n, int nthreads);
  static Partitioning cyclic(std::size_t n, int nthreads);
  static Partitioning block_cyclic(std::size_t n, int nthreads,
                                   std::size_t chunk);
  /// Weighted contiguous ranges: vertex i weighs degrees[i] + 1 and the
  /// prefix-sum is cut into s ranges of roughly equal weight, so a
  /// high-degree vertex range is split across owners instead of landing on
  /// one hot thread.  `degrees` must have n entries.
  static Partitioning degree_aware(std::size_t n, int nthreads,
                                   const std::vector<std::uint32_t>& degrees);
  /// Apply a spec (the Runtime's make_partitioning): Degree specs only
  /// bind to arrays of exactly n_hint elements, everything else is Block.
  static Partitioning make(const PartitionSpec& spec, std::size_t n,
                           int nthreads);

  PartitionKind kind() const { return kind_; }
  std::size_t size() const { return n_; }
  int num_threads() const { return s_; }
  /// ceil(n/s) for Block — kept for the fast paths; the largest per-thread
  /// partition for every other scheme.
  std::size_t max_local_size() const { return max_local_; }
  bool is_block() const { return kind_ == PartitionKind::Block; }
  /// True when partition-major storage order equals global index order.
  bool is_identity() const { return identity_; }
  std::string describe() const;

  /// Owning thread of global index g.  Total and clamping (never asserts):
  /// out-of-range inputs map to some valid thread and are rejected by the
  /// caller's local_size bounds check.
  int owner_of(std::uint64_t g) const {
    switch (kind_) {
      case PartitionKind::Block: {
        const std::uint64_t t = g / blk_;
        return t >= static_cast<std::uint64_t>(s_) ? s_ - 1
                                                   : static_cast<int>(t);
      }
      case PartitionKind::Cyclic:
        return static_cast<int>(g % static_cast<std::uint64_t>(s_));
      case PartitionKind::BlockCyclic:
        return static_cast<int>((g / chunk_) % static_cast<std::uint64_t>(s_));
      case PartitionKind::Degree:
      default: {
        // Binary search over the s+1 range cuts (cuts_[t] <= g < cuts_[t+1]).
        int lo = 0, hi = s_ - 1;
        if (g >= cuts_[static_cast<std::size_t>(s_)]) return s_ - 1;
        while (lo < hi) {
          const int mid = (lo + hi + 1) / 2;
          if (cuts_[static_cast<std::size_t>(mid)] <= g)
            lo = mid;
          else
            hi = mid - 1;
        }
        return lo;
      }
    }
  }

  /// Index of g within its owner's partition.  Like owner_of, total: a
  /// wild input yields a wild local index the caller bounds-checks.
  std::uint64_t local_of(std::uint64_t g) const {
    switch (kind_) {
      case PartitionKind::Block:
        return g - static_cast<std::uint64_t>(owner_of(g)) * blk_;
      case PartitionKind::Cyclic:
        return g / static_cast<std::uint64_t>(s_);
      case PartitionKind::BlockCyclic:
        return (g / (chunk_ * static_cast<std::uint64_t>(s_))) * chunk_ +
               g % chunk_;
      case PartitionKind::Degree:
      default:
        return g - cuts_[static_cast<std::size_t>(owner_of(g))];
    }
  }

  /// Global index of thread t's l-th local element (inverse of the above).
  std::uint64_t global_of(int t, std::uint64_t l) const {
    switch (kind_) {
      case PartitionKind::Block:
        return static_cast<std::uint64_t>(t) * blk_ + l;
      case PartitionKind::Cyclic:
        return l * static_cast<std::uint64_t>(s_) +
               static_cast<std::uint64_t>(t);
      case PartitionKind::BlockCyclic:
        return (l / chunk_) * (chunk_ * static_cast<std::uint64_t>(s_)) +
               static_cast<std::uint64_t>(t) * chunk_ + l % chunk_;
      case PartitionKind::Degree:
      default:
        return cuts_[static_cast<std::size_t>(t)] + l;
    }
  }

  std::size_t local_size(int t) const {
    return static_cast<std::size_t>(begin_[static_cast<std::size_t>(t) + 1] -
                                    begin_[static_cast<std::size_t>(t)]);
  }
  /// Partition-major storage offset of thread t's partition: the slice
  /// [part_begin(t), part_begin(t+1)) of the backing buffer.
  std::size_t part_begin(int t) const {
    return static_cast<std::size_t>(begin_[static_cast<std::size_t>(t)]);
  }

  /// Storage slot of global index g (identity for Block/Degree).
  std::size_t slot_of(std::uint64_t g) const {
    if (identity_) return static_cast<std::size_t>(g);
    const int t = owner_of(g);
    return part_begin(t) + static_cast<std::size_t>(local_of(g));
  }

 private:
  Partitioning(PartitionKind kind, std::size_t n, int nthreads,
               std::size_t chunk);

  void finish_prefix();  // fill begin_/max_local_ from local sizes

  PartitionKind kind_;
  std::size_t n_;
  int s_;
  std::uint64_t blk_ = 1;    ///< Block: ceil(n/s) (>= 1 to keep division safe)
  std::uint64_t chunk_ = 1;  ///< BlockCyclic run length
  std::size_t max_local_ = 0;
  bool identity_ = true;
  std::vector<std::uint64_t> cuts_;   ///< Degree: s+1 global range bounds
  std::vector<std::uint64_t> begin_;  ///< s+1 storage-offset prefix sums
};

}  // namespace pgraph::partition
