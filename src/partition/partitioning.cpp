#include "partition/partitioning.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace pgraph::partition {

std::string PartitionSpec::parse(const std::string& text, PartitionSpec& out) {
  PartitionSpec s;
  if (text == "block") {
    s.kind = PartitionKind::Block;
  } else if (text == "cyclic") {
    s.kind = PartitionKind::Cyclic;
  } else if (text == "degree") {
    s.kind = PartitionKind::Degree;
  } else if (text.rfind("block_cyclic:", 0) == 0) {
    const std::string arg = text.substr(std::string("block_cyclic:").size());
    // Accept conditions phrased positively so NaN / inf / junk ("nan",
    // "1.5", "0", "-4", "1e99") all fall through to the rejection.
    const char* begin = arg.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    const bool consumed = !arg.empty() && end == begin + arg.size();
    if (!(consumed && std::isfinite(v) && v >= 1.0 && v <= 1e9 &&
          v == std::floor(v)))
      return "block_cyclic chunk must be an integer in [1, 1e9], got '" +
             arg + "'";
    s.kind = PartitionKind::BlockCyclic;
    s.chunk = static_cast<std::size_t>(v);
  } else {
    return "unknown partition scheme '" + text +
           "' (want block|cyclic|block_cyclic:<k>|degree)";
  }
  out = s;
  return {};
}

std::string PartitionSpec::describe() const {
  switch (kind) {
    case PartitionKind::Block:
      return "block";
    case PartitionKind::Cyclic:
      return "cyclic";
    case PartitionKind::BlockCyclic:
      return "block_cyclic:" + std::to_string(chunk);
    case PartitionKind::Degree:
    default:
      return "degree";
  }
}

Partitioning::Partitioning(PartitionKind kind, std::size_t n, int nthreads,
                           std::size_t chunk)
    : kind_(kind), n_(n), s_(nthreads < 1 ? 1 : nthreads), chunk_(chunk) {
  assert(chunk >= 1);
  blk_ = (n_ + static_cast<std::size_t>(s_) - 1) /
         static_cast<std::size_t>(s_);
  if (blk_ == 0) blk_ = 1;
  // A 1-thread layout is the identity regardless of scheme; Block and
  // Degree are contiguous ranges, hence identity by construction.
  identity_ = s_ == 1 || kind_ == PartitionKind::Block ||
              kind_ == PartitionKind::Degree;
}

void Partitioning::finish_prefix() {
  const auto s = static_cast<std::size_t>(s_);
  begin_.assign(s + 1, 0);
  max_local_ = 0;
  for (std::size_t t = 0; t < s; ++t) {
    std::uint64_t sz = 0;
    switch (kind_) {
      case PartitionKind::Block: {
        const std::uint64_t b = std::min<std::uint64_t>(t * blk_, n_);
        const std::uint64_t e = std::min<std::uint64_t>((t + 1) * blk_, n_);
        sz = e - b;
        break;
      }
      case PartitionKind::Cyclic:
        sz = n_ / s + (t < n_ % s ? 1 : 0);
        break;
      case PartitionKind::BlockCyclic: {
        const std::uint64_t round = chunk_ * s;
        const std::uint64_t q = n_ / round, r = n_ % round;
        const std::uint64_t lo = std::min<std::uint64_t>(t * chunk_, r);
        const std::uint64_t hi = std::min<std::uint64_t>((t + 1) * chunk_, r);
        sz = q * chunk_ + (hi - lo);
        break;
      }
      case PartitionKind::Degree:
        sz = cuts_[t + 1] - cuts_[t];
        break;
    }
    begin_[t + 1] = begin_[t] + sz;
    max_local_ = std::max(max_local_, static_cast<std::size_t>(sz));
  }
  assert(begin_[s] == n_);
}

Partitioning Partitioning::block(std::size_t n, int nthreads) {
  Partitioning p(PartitionKind::Block, n, nthreads, 1);
  p.finish_prefix();
  return p;
}

Partitioning Partitioning::cyclic(std::size_t n, int nthreads) {
  Partitioning p(PartitionKind::Cyclic, n, nthreads, 1);
  p.finish_prefix();
  return p;
}

Partitioning Partitioning::block_cyclic(std::size_t n, int nthreads,
                                        std::size_t chunk) {
  Partitioning p(PartitionKind::BlockCyclic, n, nthreads,
                 chunk < 1 ? 1 : chunk);
  p.finish_prefix();
  return p;
}

Partitioning Partitioning::degree_aware(
    std::size_t n, int nthreads, const std::vector<std::uint32_t>& degrees) {
  assert(degrees.size() == n);
  Partitioning p(PartitionKind::Degree, n, nthreads, 1);
  const auto s = static_cast<std::size_t>(p.s_);
  p.cuts_.assign(s + 1, 0);
  // One-pass weighted cut: vertex i weighs deg(i) + 1 (the +1 keeps
  // zero-degree tails spread instead of lumping them on the last thread),
  // and cut t lands where the weight prefix first reaches t/s of the total.
  std::uint64_t total = 0;
  for (const std::uint32_t d : degrees) total += d + 1;
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (std::size_t t = 1; t < s; ++t) {
    const std::uint64_t target = (total * t + s / 2) / s;
    while (i < n && acc < target) acc += degrees[i] + 1, ++i;
    p.cuts_[t] = i;
  }
  p.cuts_[s] = n;
  p.finish_prefix();
  return p;
}

Partitioning Partitioning::make(const PartitionSpec& spec, std::size_t n,
                                int nthreads) {
  switch (spec.kind) {
    case PartitionKind::Cyclic:
      return cyclic(n, nthreads);
    case PartitionKind::BlockCyclic:
      return block_cyclic(n, nthreads, spec.chunk);
    case PartitionKind::Degree:
      // Degree cuts describe exactly n_hint vertices; every other array
      // shape (collective matrices, edge-sized scratch) stays Block.
      if (spec.n_hint == n && spec.degrees.size() == n && n > 0)
        return degree_aware(n, nthreads, spec.degrees);
      return block(n, nthreads);
    case PartitionKind::Block:
    default:
      return block(n, nthreads);
  }
}

std::string Partitioning::describe() const {
  switch (kind_) {
    case PartitionKind::Block:
      return "block";
    case PartitionKind::Cyclic:
      return "cyclic";
    case PartitionKind::BlockCyclic:
      return "block_cyclic:" + std::to_string(chunk_);
    case PartitionKind::Degree:
    default:
      return "degree";
  }
}

}  // namespace pgraph::partition
