#pragma once

#include "analysis/access_checker.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::coll {

/// The CRCW conflict-resolution rules the collectives implement (Section
/// III of the paper: SetD is arbitrary CRCW, SetDMin is priority CRCW).
enum class CrcwMode {
  Overwrite,  ///< arbitrary: one concurrent writer wins
  Min,        ///< priority: the minimum value wins
  Add,        ///< combining: concurrent writes sum (SetDAdd)
};

inline analysis::AccessKind to_access_kind(CrcwMode m) {
  switch (m) {
    case CrcwMode::Min:
      return analysis::AccessKind::CombineMin;
    case CrcwMode::Add:
      return analysis::AccessKind::CombineAdd;
    case CrcwMode::Overwrite:
      break;
  }
  return analysis::AccessKind::CombineOverwrite;
}

inline const char* crcw_trace_label(CrcwMode m) {
  switch (m) {
    case CrcwMode::Min:
      return "crcw.min";
    case CrcwMode::Add:
      return "crcw.add";
    case CrcwMode::Overwrite:
      break;
  }
  return "crcw.overwrite";
}

/// RAII annotation telling the access checker that writes to `a` are
/// resolved by `mode` until the region closes — the declared-benign CRCW
/// window of the access discipline.  Every SPMD thread opens its own
/// region (the window is refcounted), so a region can span barriers and
/// threads can enter/leave it at slightly different times.
///
/// Inside a region:
///  - plain writes (put / store_relaxed) to `a` are treated as combining
///    writes of `mode`, and
///  - note(i) records an owner-side combine applied through a raw local
///    pointer, making it visible to the race detector.
///
/// The checker side is a no-op unless the build defines
/// PGRAPH_CHECK_ACCESS.  The window boundaries are additionally reported
/// to an attached trace sink (in any build), so traces show exactly where
/// declared-benign CRCW windows opened and closed on each thread's
/// modeled clock.
template <class T>
class CrcwRegion {
 public:
  CrcwRegion(pgas::GlobalArray<T>& a, CrcwMode mode)
      : a_(&a), kind_(to_access_kind(mode)), label_(crcw_trace_label(mode)) {
    a_->checker_begin_crcw(kind_);
    if (pgas::ThreadCtx* c = pgas::current_ctx())
      c->runtime().trace_crcw(label_, true);
  }
  ~CrcwRegion() {
    if (pgas::ThreadCtx* c = pgas::current_ctx())
      c->runtime().trace_crcw(label_, false);
    a_->checker_end_crcw();
  }

  CrcwRegion(const CrcwRegion&) = delete;
  CrcwRegion& operator=(const CrcwRegion&) = delete;

  /// Record the combining write the owner just applied to element i.
  void note(pgas::ThreadCtx& ctx, std::size_t i) {
    a_->note_combine(ctx, i, kind_);
  }

 private:
  pgas::GlobalArray<T>* a_;
  analysis::AccessKind kind_;
  const char* label_;
};

}  // namespace pgraph::coll
