#pragma once

#include <cstdint>
#include <vector>

#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::coll {

/// Registry slots used by the collectives (see ThreadCtx::publish).
inline constexpr int kSlotIdx = 0;   ///< sorted request indices
inline constexpr int kSlotData = 1;  ///< reply buffer (GetD)
inline constexpr int kSlotVal = 2;   ///< sorted request values (SetD/SetDMin)
inline constexpr int kSlotCnt = 3;   ///< per-owner offsets (hierarchical)
inline constexpr int kSlotSum = 4;   ///< per-batch payload checksums (fault
                                     ///< protocol; see docs/ROBUSTNESS.md)

/// Shared state of Algorithm 2, allocated once per algorithm run.
///
/// Row layout: entry [owner * s + requester].
///  - smatrix: how many elements `requester` needs from / sends to `owner`
///    ("SMatrix[i][j] is the number of elements thr_i sends to thr_j").
///  - pmatrix: offset of that batch inside the requester's sorted request
///    array and reply buffer ("the position in thr_j's buffer where thr_i
///    should deposit the elements").
///
/// Row i has affinity to thread i, so filling column `me` costs one
/// fine-grained remote put per peer — the s^2 small-message all-to-all
/// burst that Section VI identifies as the t=16 scaling bottleneck.
struct CollectiveContext {
  pgas::GlobalArray<std::uint64_t> smatrix;
  pgas::GlobalArray<std::uint64_t> pmatrix;

  /// last_cnt[requester][owner]: the count this requester published to
  /// that owner on its previous collective over this context.  Because
  /// the matrices persist across calls, a requester whose batch for an
  /// owner is empty now *and* was empty last time can skip the setup put
  /// entirely (the remote entry already reads zero) — degenerate batches
  /// must not pay the s^2 all-to-all burst.  Row r is written only by
  /// thread r (flat) or by r's node leader (hierarchical), and the two
  /// cases are barrier-separated, so no synchronization is needed.
  std::vector<std::vector<std::uint64_t>> last_cnt;

  /// Defeat the degenerate-batch skip on the next collective.  A
  /// permanent-loss shrink promotes the buddy mirrors of *every*
  /// replicated array — including smatrix/pmatrix — so the lost node's
  /// rows snap back to their checkpoint-time contents while this
  /// host-side cache keeps describing the pre-shrink matrix.  A requester
  /// that then skips an "already zero" entry leaves a stale nonzero count
  /// behind for the adopted owner to serve, which reads past the
  /// requester's published buffers.  Setting every cached count to a
  /// nonzero sentinel forces the next write_matrices pass (flat put loop
  /// and hierarchical degenerate check alike) to republish every entry,
  /// zeros included, after which cache and matrices are coherent again.
  void invalidate_skip_cache() {
    for (auto& row : last_cnt)
      for (auto& cnt : row) cnt = 1;
  }

  explicit CollectiveContext(pgas::Runtime& rt)
      : smatrix(rt, square(rt.topo().total_threads())),
        pmatrix(rt, square(rt.topo().total_threads())),
        last_cnt(static_cast<std::size_t>(rt.topo().total_threads()),
                 std::vector<std::uint64_t>(
                     static_cast<std::size_t>(rt.topo().total_threads()), 0)) {
  }

 private:
  static std::size_t square(int s) {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(s);
  }
};

/// Per-thread scratch that persists across collective calls so buffers are
/// allocated once and the `id` key cache can survive iterations.
template <class T>
struct CollWorkspace {
  std::vector<std::uint32_t> keys;  ///< cached virtual-block key per request
  bool keys_valid = false;          ///< caller-managed (id_cache contract)

  std::vector<std::uint64_t> sorted;  ///< request indices in bucket order
  std::vector<T> sorted_val;          ///< values in bucket order (SetD*)
  std::vector<std::uint32_t> rank;    ///< original slot of sorted[k]
  std::vector<std::size_t> bucket_off;
  std::vector<std::size_t> thr_off;  ///< per-owner-thread offsets (s+1)
  std::vector<T> reply;              ///< GetD replies, bucket order
  std::vector<std::uint64_t> sums;   ///< per-batch checksums, indexed by the
                                     ///< batch's *other* end (owner thread in
                                     ///< GetD, filled by owners; requester's
                                     ///< own batches in SetD, read by owners)

  // Scratch for the output-blocked permute phase (Algorithm 1 applied to
  // the permute as well: eq. 5 pays ~n misses instead of m).
  std::vector<std::size_t> perm_off;
  std::vector<std::uint32_t> perm_rank;
  std::vector<T> perm_val;

  // Line-granular first-touch bitmap over the owner's block, used during
  // the serve/apply phase to charge compulsory misses exactly once and
  // reuse accesses at their (often cached) cost — duplicated requests,
  // e.g. pointer-jumping reads of a few hot labels, hit in cache on the
  // real machine and must do so in the model too.
  std::vector<std::uint64_t> touched;

  void invalidate_keys() { keys_valid = false; }
};

}  // namespace pgraph::coll
