#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "collectives/context.hpp"
#include "collectives/options.hpp"
#include "machine/phase_stats.hpp"
#include "pgas/runtime.hpp"
#include "sched/virtual_threads.hpp"

namespace pgraph::coll::detail {

using machine::Cat;

/// Resolve the virtual-thread factor: explicit value, or (for tprime <= 0)
/// the smallest t' whose sub-block fits the modeled cache.  The caller
/// passes the LARGEST per-thread partition (Partitioning::max_local_size,
/// which is ceil(n/s) under the block layout) so skewed degree-aware cuts
/// still size their sub-blocks for the fattest owner.
inline int resolve_tprime(const pgas::ThreadCtx& ctx,
                          const CollectiveOptions& opt,
                          std::size_t max_part_elems,
                          std::size_t elem_bytes) {
  if (opt.tprime > 0) return opt.tprime;
  const std::size_t cache = ctx.mem().params().cache_bytes;
  const std::size_t blk_bytes =
      std::max<std::size_t>(1, max_part_elems * elem_bytes);
  return static_cast<int>((blk_bytes + cache - 1) / cache);
}

/// Compute (or reuse) the virtual-block key of every request index.
/// Charges Cat::Work per the `id` optimization level.
inline void compute_keys(pgas::ThreadCtx& ctx, const sched::VBlocks& vb,
                         std::span<const std::uint64_t> indices,
                         const CollectiveOptions& opt,
                         std::vector<std::uint32_t>& keys, bool& keys_valid) {
  const std::size_t m = indices.size();
  if (opt.id_cache && keys_valid && keys.size() == m) return;
  keys.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    keys[i] = static_cast<std::uint32_t>(vb.vkey(indices[i]));
  ctx.compute(m * (opt.id_direct ? kDirectKeyOps : kIntrinsicKeyOps),
              Cat::Work);
  keys_valid = true;
}

/// Charge the group-phase counting sort per Section IV: one streamed
/// histogram pass, one streamed read pass, two passes over the W-bucket
/// histogram, and the scatter itself.  The scatter keeps W write streams
/// open (one cursor per bucket), so once W cache lines exceed the cache it
/// starts missing — this is what turns the t' curve back up for very large
/// W ("the overhead associated with the extra log n factor may offset
/// gains", Section IV).
inline void charge_group_sort(pgas::ThreadCtx& ctx, std::size_t m,
                              std::size_t w, std::size_t rec_bytes) {
  // Degenerate batch: nothing to histogram, nothing to scatter.  The
  // W-bucket passes only exist to order the m records, so an empty
  // request vector pays nothing (late CC iterations and idle stream
  // threads hit this constantly).
  if (m == 0) return;
  ctx.mem_seq(m * rec_bytes, Cat::Sort);
  ctx.mem_seq(m * rec_bytes, Cat::Sort);
  ctx.mem_random(2 * w, w * sizeof(std::uint64_t), sizeof(std::uint64_t),
                 Cat::Sort);
  const std::size_t line = ctx.mem().params().cache_line_bytes;
  if (w * line > ctx.mem().params().cache_bytes) {
    // The W open write streams no longer fit: each output line is filled,
    // evicted and written back without reuse — line-grained random fills
    // instead of streamed stores.
    ctx.mem_random_write(m * rec_bytes / line, w * line, line, Cat::Sort);
  }
}

/// Derive the per-owner-thread offsets from the per-virtual-block offsets.
inline void derive_thread_offsets(const sched::VBlocks& vb,
                                  const std::vector<std::size_t>& bucket_off,
                                  std::size_t kept,
                                  std::vector<std::size_t>& thr_off) {
  const int s = vb.nthreads;
  thr_off.resize(static_cast<std::size_t>(s) + 1);
  for (int t = 0; t < s; ++t)
    thr_off[static_cast<std::size_t>(t)] = bucket_off[vb.first_bucket(t)];
  thr_off[static_cast<std::size_t>(s)] = kept;
}

/// Step 3 of Algorithm 2: publish per-peer counts and offsets.
///
/// Flat (the paper's UPC reality): one fine-grained remote put per matrix
/// entry — the s^2 small-message all-to-all whose burst collapses t=16.
///
/// Hierarchical (the paper's Section-VI proposal, opt.hierarchical): each
/// node's leader thread ships the node's whole t x t count/offset tile to
/// every other node as ONE coalesced message — p^2 messages total — after
/// an intra-node staging barrier.  The matrix contents are identical, so
/// the serve phase is unchanged.
///
/// The caller must follow with ctx.exchange_barrier() (which degenerates
/// to a plain barrier in the flat case).
inline void write_matrices(pgas::ThreadCtx& ctx, CollectiveContext& cc,
                           const std::vector<std::size_t>& thr_off,
                           const CollectiveOptions& opt) {
  const int s = ctx.nthreads();
  const int me = ctx.id();
  if (!opt.hierarchical) {
    // The matrices persist across calls, so a (requester, owner) pair
    // whose batch is empty now and was empty on the previous call can
    // skip the fine-grained put: the remote entry already reads zero.
    // A nonzero -> zero transition must still publish the zero count
    // (owners would otherwise serve the stale batch); the offset entry
    // is never read when the count is zero, so pmatrix is left alone.
    auto& last = cc.last_cnt[static_cast<std::size_t>(me)];
    std::size_t writes = 0;
    for (int j = 0; j < s; ++j) {
      const std::size_t cnt = thr_off[static_cast<std::size_t>(j) + 1] -
                              thr_off[static_cast<std::size_t>(j)];
      if (cnt == 0 && last[static_cast<std::size_t>(j)] == 0) continue;
      const std::size_t row = static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(s) +
                              static_cast<std::size_t>(me);
      cc.smatrix.put(ctx, row, cnt, Cat::Setup);
      if (cnt != 0)
        cc.pmatrix.put(ctx, row, thr_off[static_cast<std::size_t>(j)],
                       Cat::Setup);
      last[static_cast<std::size_t>(j)] = cnt;
      ++writes;
    }
    ctx.compute(2 * writes, Cat::Setup);
    return;
  }

  const pgas::Topology& topo = ctx.topo();
  const int p = ctx.nnodes();
  const int mynode = ctx.node();
  // Leaders and per-node thread sets resolve through the live owner map:
  // after a permanent-loss shrink the buddy's leader covers the adopted
  // threads, and dead nodes (no hosted threads) get no tile message.  With
  // the identity layout this reduces exactly to leader = mynode * tpn.
  const int leader = topo.leader_of_node(mynode);
  const int my_tpn = topo.threads_on_node(mynode);
  ctx.publish(kSlotCnt, const_cast<std::size_t*>(thr_off.data()));
  ctx.barrier();  // intra-node staging (a full barrier in this runtime)
  if (me == leader) {
    // Node-level degenerate-batch skip: when every thread hosted here has
    // an empty request vector now *and* published all-zero counts on the
    // previous call, the remote tiles already read zero — skip the
    // stores, the tile messages, and the setup charges entirely.
    bool degenerate = true;
    for (int r = 0; r < s && degenerate; ++r) {
      if (topo.node_of(r) != mynode) continue;
      const auto* ro = ctx.peer_as<const std::size_t>(r, kSlotCnt);
      if (ro[static_cast<std::size_t>(s)] != 0) degenerate = false;
      for (const std::uint64_t c : cc.last_cnt[static_cast<std::size_t>(r)])
        if (c != 0) {
          degenerate = false;
          break;
        }
    }
    if (degenerate) return;
    // Write the whole node's columns of SMatrix/PMatrix on behalf of its
    // t threads; one coalesced message per remote node carries the t*t
    // tile pair.
    for (int j = 0; j < s; ++j) {
      for (int r = 0; r < s; ++r) {
        if (topo.node_of(r) != mynode) continue;
        const auto* ro = ctx.peer_as<const std::size_t>(r, kSlotCnt);
        const std::size_t row = static_cast<std::size_t>(j) *
                                    static_cast<std::size_t>(s) +
                                static_cast<std::size_t>(r);
        const std::uint64_t cnt = ro[static_cast<std::size_t>(j) + 1] -
                                  ro[static_cast<std::size_t>(j)];
        cc.smatrix.store_relaxed(row, cnt);
        cc.pmatrix.store_relaxed(row, ro[static_cast<std::size_t>(j)]);
        cc.last_cnt[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] =
            cnt;
      }
    }
    for (int step = 1; step < p; ++step) {
      const int nd = (mynode + step) % p;  // circular over nodes
      const int nd_tpn = topo.threads_on_node(nd);
      if (nd_tpn == 0) continue;  // dead node: nothing to ship
      const std::size_t tile_bytes = static_cast<std::size_t>(my_tpn) *
                                     static_cast<std::size_t>(nd_tpn) * 2 * 8;
      ctx.post_exchange_msg(topo.leader_of_node(nd), tile_bytes);
    }
    ctx.mem_seq(static_cast<std::size_t>(s) * my_tpn * 16, Cat::Setup);
    ctx.compute(static_cast<std::size_t>(s) * my_tpn * 4, Cat::Setup);
  }
}

/// Per-element op cost of touching the local portion of a shared array,
/// depending on the `localcpy` optimization.
inline std::size_t local_touch_ops(const CollectiveOptions& opt) {
  return opt.localcpy ? kPrivatePtrOps : kSharedPtrOps;
}

/// The exchange-loop visit order ("circular" optimization).
inline int peer_at(const CollectiveOptions& opt, int me, int s, int step) {
  return opt.circular ? (me + step) % s : step;
}

}  // namespace pgraph::coll::detail
