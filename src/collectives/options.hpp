#pragma once

#include <cstddef>

namespace pgraph::coll {

/// Toggles for the Section V optimizations.  Each maps 1:1 to a bar of
/// Figure 5/6; `compact` is algorithm-level (see core/cc_coalesced) and so
/// lives in the algorithm options, not here.
struct CollectiveOptions {
  /// Exchange-loop order: thread i serves peers i, i+1, ..., (i+s-1) mod s
  /// instead of 0, 1, ..., s-1, so no peer is hit by all threads in the
  /// same step ("circular").
  bool circular = false;

  /// Access the local portion of shared arrays through private pointer
  /// arithmetic instead of the compiler's shared-pointer runtime calls
  /// ("localcpy").
  bool localcpy = false;

  /// Compute target thread/block keys with direct (vectorizable)
  /// arithmetic instead of the upc_threadof intrinsic ("id", part 1).
  bool id_direct = false;

  /// Reuse the key buffer across iterations when the caller guarantees the
  /// request indices are unchanged ("id", part 2: "the target ids do not
  /// change across iteration").
  bool id_cache = false;

  /// Drop GetD requests for a known-constant element (D[0] = 0 in CC) and
  /// substitute the value locally ("offload").
  bool offload = false;

  /// Virtual threads per physical thread: requests are grouped into
  /// s * tprime sub-blocks so the owner's gather/apply working set is
  /// block/tprime (the third recursion level of Algorithm 1).  0 = choose
  /// automatically so one sub-block fits the modeled cache ("the size of
  /// t' is chosen such that the block fits into a certain level cache
  /// hierarchy", Section IV).
  int tprime = 1;

  /// EXTENSION (the paper's future-work proposal, Section VI): expose the
  /// thread-process hierarchy to the collectives.  The SMatrix/PMatrix
  /// setup is aggregated per node — one leader thread ships its node's t*t
  /// count/offset tile to each remote node in one message (p^2 messages
  /// instead of the s^2 fine-grained burst that collapses t=16), and the
  /// serve phase's data messages are combined per node pair.  Off by
  /// default: the paper's measured configurations do not include it.
  bool hierarchical = false;

  /// Conformance-verifier site tag: distinguishes textually distinct call
  /// sites that are otherwise identical (same op, same arrays).  Must be a
  /// string literal (the verifier interns by content, but never copies the
  /// lifetime burden onto callers mid-collective).  nullptr = anonymous
  /// site, fingerprinted by op kind and argument signature alone.
  const char* site = nullptr;

  /// The Figure 5 "base" configuration: two recursion levels (cluster +
  /// node via the by-thread grouping), no engineering optimizations.
  static CollectiveOptions base() { return CollectiveOptions{}; }

  /// Everything on (the paper's final configuration); t' defaults to the
  /// cache-fitting automatic choice.
  static CollectiveOptions optimized(int tprime = 0) {
    CollectiveOptions o;
    o.circular = true;
    o.localcpy = true;
    o.id_direct = true;
    o.id_cache = true;
    o.offload = true;
    o.tprime = tprime;
    return o;
  }
};

/// Abstract-op cost constants for the modeled effects of `id` and
/// `localcpy` (in units of CostParams::cpu_op_ns).
inline constexpr std::size_t kIntrinsicKeyOps = 32;  // upc_threadof call
inline constexpr std::size_t kDirectKeyOps = 3;      // div+mul, vectorizable
inline constexpr std::size_t kSharedPtrOps = 14;     // shared-ptr runtime
inline constexpr std::size_t kPrivatePtrOps = 1;     // raw pointer

}  // namespace pgraph::coll
