#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/conformance.hpp"
#include "collectives/crcw.hpp"
#include "collectives/options.hpp"
#include "pgas/digest.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::coll {

#ifdef PGRAPH_CHECK_ACCESS

/// Argument signature of one collective call: every property that SPMD
/// conformance requires to agree across threads, folded into one word.
/// Per-thread batch *sizes* are deliberately absent — each thread brings
/// its own request list — but the batch-shape class (the virtual-block
/// decomposition all threads index each other's matrices with: resolved
/// t', option bits, offloaded element) is included, because a divergent
/// shape silently corrupts the SMatrix/PMatrix exchange.
inline std::uint64_t collective_sig(std::uint64_t array_uid,
                                    std::size_t array_size,
                                    std::size_t elem_bytes, int combine,
                                    int tprime, const CollectiveOptions& opt,
                                    std::uint64_t known_index = ~0ull) {
  using pgas::mix64;
  std::uint64_t h = mix64(array_uid + 1);
  h = mix64(h ^ static_cast<std::uint64_t>(array_size));
  h = mix64(h ^ static_cast<std::uint64_t>(elem_bytes));
  h = mix64(h ^ static_cast<std::uint64_t>(combine));
  h = mix64(h ^ static_cast<std::uint64_t>(tprime));
  const std::uint64_t bits =
      (opt.circular ? 1ull : 0ull) | (opt.localcpy ? 2ull : 0ull) |
      (opt.id_direct ? 4ull : 0ull) | (opt.id_cache ? 8ull : 0ull) |
      (opt.offload ? 16ull : 0ull) | (opt.hierarchical ? 32ull : 0ull);
  h = mix64(h ^ bits);
  h = mix64(h ^ known_index);
  return h;
}

constexpr analysis::CollOp crcw_coll_op(CrcwMode m) {
  switch (m) {
    case CrcwMode::Overwrite:
      return analysis::CollOp::SetD;
    case CrcwMode::Min:
      return analysis::CollOp::SetDMin;
    case CrcwMode::Add:
      return analysis::CollOp::SetDAdd;
  }
  return analysis::CollOp::SetD;
}

/// Register this thread's arrival at a collective call site with the
/// conformance verifier.  `tag` is the caller-supplied site label
/// (CollectiveOptions::site; nullptr = anonymous).  Call sites gate on
/// PGRAPH_CHECK_ACCESS so default builds pay nothing, not even the sig.
inline void conformance_note(pgas::ThreadCtx& ctx, analysis::CollOp op,
                             const char* tag, std::uint64_t sig) {
  auto& cv = analysis::ConformanceVerifier::instance();
  if (!cv.enabled()) return;
  cv.note_collective(ctx.id(), cv.site_id(op, tag), sig);
}

#endif  // PGRAPH_CHECK_ACCESS

}  // namespace pgraph::coll
