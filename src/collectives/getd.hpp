#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "collectives/conformance_hook.hpp"
#include "collectives/detail.hpp"
#include "pgas/trace_hook.hpp"

namespace pgraph::coll {

/// A (index, value) pair the requester already knows, enabling the
/// `offload` optimization: requests for `index` are answered locally with
/// `value` instead of hammering the owner (D[0] = 0 stays constant in CC,
/// and thread 0 would otherwise become a communication hotspot).
struct KnownElement {
  std::uint64_t index = 0;
  std::uint64_t value = 0;
};

/// GetD (Algorithm 2): bulk concurrent read.  All threads call with their
/// private request list; on return out[i] = D[indices[i]] for every i.
///
/// Structure (one recursion level of Algorithm 1 across the cluster, with
/// the cache-level recursion folded into the virtual-block sort):
///   1. group:   count-sort requests by virtual block (owner thread, then
///               sub-block within the owner's block)            [Sort/Work]
///   2. setup:   publish per-peer counts/offsets (SMatrix/PMatrix)  [Setup]
///   3. barrier
///   4. serve:   each owner walks its peers (circular or identity order),
///               gathers the requested elements from its block and deposits
///               them into the requester's reply buffer      [Copy + Comm]
///   5. exchange barrier (prices the coalesced messages)
///   6. permute: scatter replies back into request order      [Irregular]
template <class T>
void getd(pgas::ThreadCtx& ctx, pgas::GlobalArray<T>& D,
          std::span<const std::uint64_t> indices, std::span<T> out,
          const CollectiveOptions& opt, CollectiveContext& cc,
          CollWorkspace<T>& ws,
          std::optional<KnownElement> known = std::nullopt) {
  using detail::Cat;
  static_assert(sizeof(T) == 8, "collectives are specified for word-size T");
  assert(out.size() == indices.size());

  const int s = ctx.nthreads();
  const int me = ctx.id();
  const std::size_t m = indices.size();
  const int tprime =
      detail::resolve_tprime(ctx, opt, D.part().max_local_size(), sizeof(T));
  const sched::VBlocks vb(D.part(), tprime);
  const std::size_t w = vb.nbuckets();
  const bool offload = opt.offload && known.has_value();
#ifdef PGRAPH_CHECK_ACCESS
  conformance_note(ctx, analysis::CollOp::GetD, opt.site,
                   collective_sig(D.uid(), D.size(), sizeof(T), /*combine=*/0,
                                  tprime, opt,
                                  offload ? known->index : ~0ull));
#endif
  // Checksum protocol (docs/ROBUSTNESS.md): when payload corruption is in
  // the fault plan, owners deposit a per-batch checksum next to the reply
  // (8B rides on each message) and the requester validates after the
  // exchange, re-requesting damaged batches at modeled retransmission cost.
  fault::FaultInjector* const finj = ctx.runtime().fault_injector();
  const bool chk = finj != nullptr && finj->config().corruption_enabled();

  // --- group ------------------------------------------------------------
  std::size_t kept = 0;
  {
    pgas::TraceScope ts(ctx, "getd.group");
    detail::compute_keys(ctx, vb, indices, opt, ws.keys, ws.keys_valid);

    ws.bucket_off.assign(w + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (offload && indices[i] == known->index) continue;
      ++ws.bucket_off[ws.keys[i] + 1];
    }
    for (std::size_t k = 0; k < w; ++k)
      ws.bucket_off[k + 1] += ws.bucket_off[k];
    kept = ws.bucket_off[w];

    ws.sorted.resize(kept);
    ws.rank.resize(kept);
    {
      std::vector<std::size_t> cursor(ws.bucket_off.begin(),
                                      ws.bucket_off.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        if (offload && indices[i] == known->index) {
          out[i] = static_cast<T>(known->value);
          continue;
        }
        const std::size_t pos = cursor[ws.keys[i]]++;
        ws.sorted[pos] = indices[i];
        ws.rank[pos] = static_cast<std::uint32_t>(i);
      }
    }
    detail::charge_group_sort(ctx, m, w, sizeof(std::uint64_t) + 4);

    detail::derive_thread_offsets(vb, ws.bucket_off, kept, ws.thr_off);
  }

  // --- setup -------------------------------------------------------------
  ws.reply.resize(kept);
  {
    pgas::TraceScope ts(ctx, "getd.setup");
    ctx.publish(kSlotIdx, ws.sorted.data());
    ctx.publish(kSlotData, ws.reply.data());
    if (chk) {
      ws.sums.assign(static_cast<std::size_t>(s), 0);
      ctx.publish(kSlotSum, ws.sums.data());
    }
    detail::write_matrices(ctx, cc, ws.thr_off, opt);
  }
  ctx.exchange_barrier();  // step 4 of Algorithm 2

  // --- serve (owner side) -------------------------------------------------
  const std::size_t touch_ops = detail::local_touch_ops(opt);
  {
  pgas::TraceScope ts(ctx, "getd.serve");
  const auto srow = cc.smatrix.local_span(me);
  const auto prow = cc.pmatrix.local_span(me);
  ctx.mem_seq(2 * static_cast<std::size_t>(s) * sizeof(std::uint64_t),
              Cat::Setup);
  const auto myblock = D.local_span(me);
  // Global -> local mapping of this owner's partition: subtracting the
  // span base IS the map for identity layouts (block, degree-aware); the
  // policy computes it otherwise.  `base` is only meaningful when `ident`.
  const auto& P = D.part();
  const bool ident = P.is_identity();
  const std::uint64_t base = D.block_begin(me);
  // Under an armed mem-flip plan a flipped label bit can escape into a
  // request index before the scrubber runs; bounds-guard the serve loop so
  // the epoch survives to be rolled back instead of faulting on a wild
  // read (docs/ROBUSTNESS.md, "At-rest integrity").
  const bool guard = ctx.runtime().mem_guard_active();
  const std::size_t line_bytes = ctx.mem().params().cache_line_bytes;
  const std::size_t line_elems = std::max<std::size_t>(1, line_bytes / sizeof(T));
  const std::size_t nlines = myblock.size() / line_elems + 1;
  ws.touched.assign((nlines + 63) / 64, 0);
  ctx.mem_seq(ws.touched.size() * 8, Cat::Copy);
  std::size_t distinct_lines = 0;
  std::vector<std::size_t> node_bytes;  // hierarchical per-node combining
  if (opt.hierarchical)
    node_bytes.assign(static_cast<std::size_t>(ctx.nnodes()), 0);

  for (int step = 0; step < s; ++step) {
    const int j = detail::peer_at(opt, me, s, step);
    const std::size_t cnt = srow[static_cast<std::size_t>(j)];
    if (cnt == 0) continue;
    const std::size_t off = prow[static_cast<std::size_t>(j)];
    const std::uint64_t* ridx = ctx.peer_as<std::uint64_t>(j, kSlotIdx) + off;
    T* rbuf = ctx.peer_as<T>(j, kSlotData) + off;
    const std::size_t sum_bytes = chk ? sizeof(std::uint64_t) : 0;
    if (j != me) {
      const std::size_t bytes =
          cnt * (sizeof(std::uint64_t) + sizeof(T)) + sum_bytes;
      if (opt.hierarchical) {
        node_bytes[static_cast<std::size_t>(ctx.topo().node_of(j))] += bytes;
      } else {
        ctx.post_exchange_msg(j, cnt * sizeof(std::uint64_t));  // indices in
        ctx.post_exchange_msg(j, cnt * sizeof(T) + sum_bytes);  // data out
      }
    }
    std::size_t first_touches = 0;
    for (std::size_t k = 0; k < cnt; ++k) {
      std::uint64_t ri = ridx[k];
      // A wild ri underflows li past the size check on the identity path
      // (unsigned wrap); non-identity layouts also need the owner check —
      // a foreign index can map to an in-range local slot.
      std::uint64_t li = ident ? ri - base : P.local_of(ri);
      if (guard && (li >= myblock.size() ||
                    (!ident && P.owner_of(ri) != me))) [[unlikely]] {
        // Serve a dummy element and flag the corruption; the reply is
        // garbage either way and this epoch is about to be rolled back.
        ctx.runtime().note_corruption();
        ri = P.global_of(me, 0);
        li = 0;
      }
      assert(li < myblock.size() && (ident || P.owner_of(ri) == me));
      const std::size_t l = li / line_elems;
      if (!(ws.touched[l >> 6] & (1ull << (l & 63)))) {
        ws.touched[l >> 6] |= 1ull << (l & 63);
        ++first_touches;
      }
      rbuf[k] = myblock[li];
      // Owner-side read through the raw block pointer: make it visible to
      // the race detector (a stray same-epoch write would corrupt replies).
      D.note_read(ctx, ri);
    }
    if (chk) {
      // Deposit the batch checksum into the requester's sum array (slot
      // indexed by owner); validated requester-side after the exchange.
      ctx.peer_as<std::uint64_t>(j, kSlotSum)[me] =
          fault::checksum_words(rbuf, cnt * sizeof(T));
      ctx.compute(cnt, Cat::Copy);
    }
    distinct_lines += first_touches;
    // Streamed read of the incoming index list; compulsory line fills for
    // first touches; reuse accesses over the effective working set (the
    // sub-block, or the touched footprint if smaller — duplicated requests
    // stay cached).
    ctx.mem_seq(cnt * sizeof(std::uint64_t), Cat::Copy);
    ctx.mem_compulsory(first_touches, sizeof(T), Cat::Copy);
    const std::size_t ws_eff =
        std::min(vb.sub_blk * sizeof(T), distinct_lines * line_bytes);
    ctx.mem_random(cnt - first_touches, ws_eff, sizeof(T), Cat::Copy);
    ctx.compute(cnt * touch_ops, Cat::Copy);
  }
  if (opt.hierarchical) {
    // One combined message per node pair, visited in circular node order.
    // Targets resolve through the live leader map so a post-shrink run
    // addresses the buddy that adopted a lost node's threads; a dead node
    // accumulates no bytes (node_of never maps a thread to it).
    const int p = ctx.nnodes();
    for (int step = 0; step < p; ++step) {
      const int nd = (ctx.node() + step) % p;
      if (node_bytes[static_cast<std::size_t>(nd)] > 0)
        ctx.post_exchange_msg(ctx.topo().leader_of_node(nd),
                              node_bytes[static_cast<std::size_t>(nd)]);
    }
  }
  }  // getd.serve
  ctx.exchange_barrier();

  // --- verify (requester side; fault protocol only) -----------------------
  if (chk) {
    pgas::TraceScope ts_verify(ctx, "getd.verify");
    // The injector models wire damage to the delivered replies; the
    // checksum pass catches it per owner batch and a modeled
    // retransmission (round trip + backoff) delivers the clean copy.
    finj->corrupt(ws.reply.data(), kept * sizeof(T), ctx.epoch(), me,
                  /*tag=*/0);
    ctx.compute(kept, Cat::Copy);  // checksum pass over the replies
    for (int j = 0; j < s; ++j) {
      const std::size_t off = ws.thr_off[static_cast<std::size_t>(j)];
      const std::size_t cnt =
          ws.thr_off[static_cast<std::size_t>(j) + 1] - off;
      if (cnt == 0) continue;
      int tries = 0;
      while (fault::checksum_words(ws.reply.data() + off, cnt * sizeof(T)) !=
             ws.sums[static_cast<std::size_t>(j)]) {
        if (tries++ >= finj->config().max_retries)
          throw fault::FaultError(fault::FaultKind::Corruption,
                                  "getd: reply batch unrecoverable");
        finj->count_detected();
        ctx.charge(Cat::Comm,
                   ctx.net().msg_wire_ns(cnt * sizeof(T) + 24) +
                       finj->config().backoff_ns_for(tries - 1));
        ctx.net().count_message(cnt * sizeof(T) + 24);
        finj->count_retransmits(1);
        finj->repair(ws.reply.data() + off, cnt * sizeof(T));
        ctx.compute(cnt, Cat::Copy);  // re-validate the fresh copy
      }
    }
  }

  // --- permute (requester side) -------------------------------------------
  pgas::TraceScope ts_permute(ctx, "getd.permute");
  // With virtual threads enabled the permute is output-blocked (one more
  // level of Algorithm 1, matching the paper's eq. 5 which pays ~n misses
  // instead of m): group the (rank, value) pairs by cache-sized output
  // block with a counting sort — sequential traffic — then scatter within
  // each cache-resident block.  Otherwise scatter directly (store-buffered
  // write misses over the whole output).
  const std::size_t cache = ctx.mem().params().cache_bytes;
  const std::size_t out_bytes = m * sizeof(T);
  if (tprime > 1 && out_bytes > cache && kept > 512) {
    const std::size_t blk_elems =
        std::max<std::size_t>(1, cache / (2 * sizeof(T)));
    const std::size_t nb = (m + blk_elems - 1) / blk_elems;
    ws.perm_off.assign(nb + 1, 0);
    for (std::size_t k = 0; k < kept; ++k)
      ++ws.perm_off[ws.rank[k] / blk_elems + 1];
    for (std::size_t b = 0; b < nb; ++b) ws.perm_off[b + 1] += ws.perm_off[b];
    ws.perm_rank.resize(kept);
    ws.perm_val.resize(kept);
    {
      std::vector<std::size_t> cursor(ws.perm_off.begin(),
                                      ws.perm_off.end() - 1);
      for (std::size_t k = 0; k < kept; ++k) {
        const std::size_t pos = cursor[ws.rank[k] / blk_elems]++;
        ws.perm_rank[pos] = ws.rank[k];
        ws.perm_val[pos] = ws.reply[k];
      }
    }
    for (std::size_t j = 0; j < kept; ++j)
      out[ws.perm_rank[j]] = ws.perm_val[j];
    // Two streamed passes over the pairs plus cache-resident scatters.
    ctx.mem_seq(2 * kept * (sizeof(std::uint32_t) + sizeof(T)),
                Cat::Irregular);
    ctx.mem_random(2 * nb, nb * sizeof(std::size_t), sizeof(std::size_t),
                   Cat::Irregular);
    ctx.mem_random_write(kept, blk_elems * sizeof(T), sizeof(T),
                         Cat::Irregular);
  } else {
    for (std::size_t k = 0; k < kept; ++k) out[ws.rank[k]] = ws.reply[k];
    ctx.mem_seq(kept * sizeof(T), Cat::Irregular);
    ctx.mem_random_write(kept, out_bytes, sizeof(T), Cat::Irregular);
  }
  ctx.compute(kept * touch_ops, Cat::Irregular);
}

}  // namespace pgraph::coll
