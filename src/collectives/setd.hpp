#pragma once

#include <cstdint>
#include <span>

#include "collectives/conformance_hook.hpp"
#include "collectives/crcw.hpp"
#include "collectives/detail.hpp"
#include "pgas/trace_hook.hpp"

namespace pgraph::coll {

namespace detail_combine {

/// Arbitrary CRCW: among concurrent writers one wins; in this
/// implementation the winner is the last applied in the owner's
/// deterministic peer order, making runs reproducible for a fixed
/// configuration.
template <class T>
struct Overwrite {
  static constexpr CrcwMode kMode = CrcwMode::Overwrite;
  void operator()(T& dst, T v) const { dst = v; }
};

/// Priority CRCW: the minimum value wins — SetDMin, the collective the
/// paper introduces to remove MST's fine-grained locks ("when multiple
/// threads compete to write to the same location the request with the
/// smallest value wins").
template <class T>
struct Min {
  static constexpr CrcwMode kMode = CrcwMode::Min;
  void operator()(T& dst, T v) const {
    if (v < dst) dst = v;
  }
};

/// Combining CRCW: concurrent writes to the same location sum — the
/// classic combining-network semantics, used by the streaming layer to
/// accumulate per-component sizes in one collective pass.
template <class T>
struct Add {
  static constexpr CrcwMode kMode = CrcwMode::Add;
  void operator()(T& dst, T v) const { dst += v; }
};

}  // namespace detail_combine

/// Common machinery of SetD / SetDMin: bulk concurrent write of
/// D[indices[i]] = values[i], resolved per element with `combine`.
template <class T, class Combine>
void setd_combine(pgas::ThreadCtx& ctx, pgas::GlobalArray<T>& D,
                  std::span<const std::uint64_t> indices,
                  std::span<const T> values, const CollectiveOptions& opt,
                  CollectiveContext& cc, CollWorkspace<T>& ws,
                  Combine combine) {
  using detail::Cat;
  static_assert(sizeof(T) == 8 || sizeof(T) == 16,
                "collectives carry one- or two-word records");
  assert(values.size() == indices.size());

  const int s = ctx.nthreads();
  const int me = ctx.id();
  const std::size_t m = indices.size();
  const int tprime =
      detail::resolve_tprime(ctx, opt, D.part().max_local_size(), sizeof(T));
  const sched::VBlocks vb(D.part(), tprime);
  const std::size_t w = vb.nbuckets();
#ifdef PGRAPH_CHECK_ACCESS
  conformance_note(ctx, crcw_coll_op(Combine::kMode), opt.site,
                   collective_sig(D.uid(), D.size(), sizeof(T),
                                  static_cast<int>(Combine::kMode), tprime,
                                  opt));
#endif
  // Checksum protocol (docs/ROBUSTNESS.md): the requester seals each
  // outgoing (index, value) batch with a checksum before it is exposed;
  // owners validate *before applying* — a corrupted index must never be
  // dereferenced — and re-request damaged batches at retransmission cost.
  fault::FaultInjector* const finj = ctx.runtime().fault_injector();
  const bool chk = finj != nullptr && finj->config().corruption_enabled();

  // --- group: stable sort (index, value) pairs by virtual block ----------
  {
    pgas::TraceScope ts(ctx, "setd.group");
    detail::compute_keys(ctx, vb, indices, opt, ws.keys, ws.keys_valid);

    ws.bucket_off.assign(w + 1, 0);
    for (std::size_t i = 0; i < m; ++i) ++ws.bucket_off[ws.keys[i] + 1];
    for (std::size_t k = 0; k < w; ++k)
      ws.bucket_off[k + 1] += ws.bucket_off[k];

    ws.sorted.resize(m);
    ws.sorted_val.resize(m);
    {
      std::vector<std::size_t> cursor(ws.bucket_off.begin(),
                                      ws.bucket_off.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t pos = cursor[ws.keys[i]]++;
        ws.sorted[pos] = indices[i];
        ws.sorted_val[pos] = values[i];
      }
    }
    detail::charge_group_sort(ctx, m, w, sizeof(std::uint64_t) + sizeof(T));

    detail::derive_thread_offsets(vb, ws.bucket_off, m, ws.thr_off);
  }

  if (chk) {
    // Seal every outgoing batch, then let the injector damage the staged
    // buffers — modeling corruption on the wire, caught owner-side.
    ws.sums.assign(static_cast<std::size_t>(s), 0);
    for (int j = 0; j < s; ++j) {
      const std::size_t off = ws.thr_off[static_cast<std::size_t>(j)];
      const std::size_t cnt =
          ws.thr_off[static_cast<std::size_t>(j) + 1] - off;
      if (cnt == 0) continue;
      ws.sums[static_cast<std::size_t>(j)] =
          fault::checksum_words(ws.sorted.data() + off,
                                cnt * sizeof(std::uint64_t)) ^
          fault::checksum_words(ws.sorted_val.data() + off, cnt * sizeof(T));
    }
    ctx.compute(2 * m, Cat::Copy);
    finj->corrupt(ws.sorted.data(), m * sizeof(std::uint64_t), ctx.epoch(),
                  me, /*tag=*/1);
    finj->corrupt(ws.sorted_val.data(), m * sizeof(T), ctx.epoch(), me,
                  /*tag=*/2);
  }

  // --- setup --------------------------------------------------------------
  {
    pgas::TraceScope ts(ctx, "setd.setup");
    ctx.publish(kSlotIdx, ws.sorted.data());
    ctx.publish(kSlotVal, ws.sorted_val.data());
    if (chk) ctx.publish(kSlotSum, ws.sums.data());
    detail::write_matrices(ctx, cc, ws.thr_off, opt);
  }
  ctx.exchange_barrier();

  // --- apply (owner side) ---------------------------------------------------
  // Declare the CRCW combine window: concurrent writes to D are resolved
  // by `combine`'s rule from here to the end of the collective, and each
  // applied element is noted so the race detector can see collisions with
  // stray same-epoch fine-grained traffic.
  CrcwRegion<T> crcw(D, Combine::kMode);
  {
  pgas::TraceScope ts(ctx, "setd.apply");
  const auto srow = cc.smatrix.local_span(me);
  const auto prow = cc.pmatrix.local_span(me);
  ctx.mem_seq(2 * static_cast<std::size_t>(s) * sizeof(std::uint64_t),
              Cat::Setup);
  const auto myblock = D.local_span(me);
  // Global -> local mapping of this owner's partition (see getd.serve):
  // `base` subtraction is the map for identity layouts only.
  const auto& P = D.part();
  const bool ident = P.is_identity();
  const std::uint64_t base = D.block_begin(me);
  // At-rest integrity: this loop is D's tracked commit point.  Once a
  // scrub pass baselined this partition, every applied element folds an
  // O(1) digest delta into the partition checksum (the old value is
  // already in cache for the combine, so the modeled cost is unchanged).
  const bool track = D.integrity_tracking_thread(me);
  // Under an armed mem-flip plan, bounds-guard the apply loop: a flipped
  // label bit escaping into a request index must not fault (or scribble)
  // before the rollback machinery can discard the epoch.
  const bool guard = ctx.runtime().mem_guard_active();
  const std::size_t touch_ops = detail::local_touch_ops(opt);
  const std::size_t line_bytes = ctx.mem().params().cache_line_bytes;
  const std::size_t line_elems = std::max<std::size_t>(1, line_bytes / sizeof(T));
  const std::size_t nlines = myblock.size() / line_elems + 1;
  ws.touched.assign((nlines + 63) / 64, 0);
  ctx.mem_seq(ws.touched.size() * 8, Cat::Copy);
  std::size_t distinct_lines = 0;
  std::vector<std::size_t> node_bytes;  // hierarchical per-node combining
  if (opt.hierarchical)
    node_bytes.assign(static_cast<std::size_t>(ctx.nnodes()), 0);

  for (int step = 0; step < s; ++step) {
    const int j = detail::peer_at(opt, me, s, step);
    const std::size_t cnt = srow[static_cast<std::size_t>(j)];
    if (cnt == 0) continue;
    const std::size_t off = prow[static_cast<std::size_t>(j)];
    const std::uint64_t* ridx = ctx.peer_as<std::uint64_t>(j, kSlotIdx) + off;
    const T* rval = ctx.peer_as<T>(j, kSlotVal) + off;
    if (j != me) {
      // One coalesced message carrying (index, value) records (combined
      // per node pair when hierarchical), plus the batch checksum when
      // the fault protocol is on.
      const std::size_t bytes =
          cnt * (sizeof(std::uint64_t) + sizeof(T)) + (chk ? 8 : 0);
      if (opt.hierarchical) {
        node_bytes[static_cast<std::size_t>(ctx.topo().node_of(j))] += bytes;
      } else {
        ctx.post_exchange_msg(j, bytes);
      }
    }
    if (chk) {
      // Validate before applying: a corrupted batch is repaired by a
      // modeled retransmission (round trip + backoff) from requester j.
      const std::uint64_t expect = ctx.peer_as<std::uint64_t>(j, kSlotSum)[me];
      ctx.compute(2 * cnt, Cat::Copy);
      int tries = 0;
      while ((fault::checksum_words(ridx, cnt * sizeof(std::uint64_t)) ^
              fault::checksum_words(rval, cnt * sizeof(T))) != expect) {
        if (tries++ >= finj->config().max_retries)
          throw fault::FaultError(fault::FaultKind::Corruption,
                                  "setd: request batch unrecoverable");
        finj->count_detected();
        ctx.charge(Cat::Comm,
                   ctx.net().msg_wire_ns(
                       cnt * (sizeof(std::uint64_t) + sizeof(T)) + 24) +
                       finj->config().backoff_ns_for(tries - 1));
        ctx.net().count_message(cnt * (sizeof(std::uint64_t) + sizeof(T)) +
                                24);
        finj->count_retransmits(1);
        finj->repair(const_cast<std::uint64_t*>(ridx),
                     cnt * sizeof(std::uint64_t));
        finj->repair(const_cast<T*>(rval), cnt * sizeof(T));
        ctx.compute(2 * cnt, Cat::Copy);
      }
    }
    std::size_t first_touches = 0;
    for (std::size_t k = 0; k < cnt; ++k) {
      const std::uint64_t ri = ridx[k];
      // Wild indices wrap li past the size check on the identity path;
      // non-identity layouts also need the owner check (a foreign index
      // can map to an in-range local slot).
      const std::uint64_t li = ident ? ri - base : P.local_of(ri);
      if (guard && (li >= myblock.size() ||
                    (!ident && P.owner_of(ri) != me))) [[unlikely]] {
        // Never apply a corruption-derived write: flag it and skip — the
        // epoch rolls back at the next loop-top recovery poll anyway.
        ctx.runtime().note_corruption();
        continue;
      }
      assert(li < myblock.size() && (ident || P.owner_of(ri) == me));
      const std::size_t l = li / line_elems;
      if (!(ws.touched[l >> 6] & (1ull << (l & 63)))) {
        ws.touched[l >> 6] |= 1ull << (l & 63);
        ++first_touches;
      }
      T& dst = myblock[li];
      if (track) {
        const T oldv = dst;
        combine(dst, rval[k]);
        D.integrity_note(me, ri, oldv, dst);
      } else {
        combine(dst, rval[k]);
      }
      crcw.note(ctx, ri);
    }
    distinct_lines += first_touches;
    ctx.mem_seq(cnt * (sizeof(std::uint64_t) + sizeof(T)), Cat::Copy);
    ctx.mem_compulsory(first_touches, sizeof(T), Cat::Copy);
    const std::size_t ws_eff =
        std::min(vb.sub_blk * sizeof(T), distinct_lines * line_bytes);
    ctx.mem_random(cnt - first_touches, ws_eff, sizeof(T), Cat::Copy);
    ctx.compute(cnt * touch_ops, Cat::Copy);
  }
  if (opt.hierarchical) {
    const int p = ctx.nnodes();
    for (int step = 0; step < p; ++step) {
      const int nd = (ctx.node() + step) % p;
      if (node_bytes[static_cast<std::size_t>(nd)] > 0)
        ctx.post_exchange_msg(ctx.topo().leader_of_node(nd),
                              node_bytes[static_cast<std::size_t>(nd)]);
    }
  }
  }  // setd.apply
  ctx.exchange_barrier();
}

/// SetD: arbitrary concurrent write.
template <class T>
void setd(pgas::ThreadCtx& ctx, pgas::GlobalArray<T>& D,
          std::span<const std::uint64_t> indices, std::span<const T> values,
          const CollectiveOptions& opt, CollectiveContext& cc,
          CollWorkspace<T>& ws) {
  setd_combine(ctx, D, indices, values, opt, cc, ws,
               detail_combine::Overwrite<T>{});
}

/// SetDMin: priority concurrent write (minimum wins).
template <class T>
void setd_min(pgas::ThreadCtx& ctx, pgas::GlobalArray<T>& D,
              std::span<const std::uint64_t> indices,
              std::span<const T> values, const CollectiveOptions& opt,
              CollectiveContext& cc, CollWorkspace<T>& ws) {
  setd_combine(ctx, D, indices, values, opt, cc, ws,
               detail_combine::Min<T>{});
}

/// SetDAdd: combining concurrent write (values sum).  The targets must be
/// pre-zeroed (or hold the running totals the caller wants to extend).
template <class T>
void setd_add(pgas::ThreadCtx& ctx, pgas::GlobalArray<T>& D,
              std::span<const std::uint64_t> indices,
              std::span<const T> values, const CollectiveOptions& opt,
              CollectiveContext& cc, CollWorkspace<T>& ws) {
  setd_combine(ctx, D, indices, values, opt, cc, ws,
               detail_combine::Add<T>{});
}

}  // namespace pgraph::coll
