#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pgraph::analysis {

/// The three violation classes of the PGAS access discipline (see
/// docs/ANALYSIS.md).  The discipline is the paper's: every D[R[i]] access
/// is either a charged fine-grained operation, a charged coalesced
/// transfer, or an owner-local touch — and concurrent same-element writes
/// are legal only under a declared CRCW combine rule.
enum class ViolationClass : std::uint8_t {
  PhaseRace,     ///< conflicting same-element access, same barrier epoch
  Affinity,      ///< direct dereference of another node's block
  CostMismatch,  ///< bytes moved with no corresponding cost charge
};

const char* to_string(ViolationClass c);

/// How an instrumented access may combine with concurrent accesses.
enum class AccessKind : std::uint8_t {
  Read,
  Write,             ///< plain write: conflicts with any other-thread access
  CombineMin,        ///< priority CRCW (SetDMin / put_min): min wins
  CombineOverwrite,  ///< arbitrary CRCW (SetD): one concurrent writer wins
  CombineAdd,        ///< combining CRCW (SetDAdd): concurrent writes sum
};

const char* to_string(AccessKind k);

/// One detected violation.  `index` is the element index for PhaseRace and
/// Affinity, and the uncovered byte count for CostMismatch.
struct Violation {
  ViolationClass cls = ViolationClass::PhaseRace;
  std::string array;        ///< debug name of the array ("" for cost)
  std::size_t index = 0;
  int thread = -1;          ///< offending thread
  int other_thread = -1;    ///< prior conflicting accessor / span owner
  std::uint64_t epoch = 0;  ///< barrier epoch of the access
  std::string detail;       ///< formatted one-line diagnostic
};

/// Per-array shadow state (last reader/writer per element, CRCW window).
/// Opaque to clients; owned via shared_ptr handed out by register_array.
class ArrayShadow;

/// Process-wide access checker the simulated PGAS runtime reports into
/// when built with PGRAPH_CHECK_ACCESS.  All hooks are no-ops while
/// disabled; record_access/record_affinity are additionally skipped by the
/// callers when the calling OS thread has no ThreadCtx (single-threaded
/// verification code outside Runtime::run is exempt from the discipline).
///
/// Thread safety: hooks may be called concurrently from all SPMD threads;
/// end_epoch must only be called from a barrier completion step (all
/// threads parked), which is where the per-thread cost tallies are
/// compared and reset.
class AccessChecker {
 public:
  static AccessChecker& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// When true (the default), the first violation prints its diagnostic to
  /// stderr and aborts the process — this is how the CI check build turns
  /// a silent model bug into a hard test failure.  Tests that inject
  /// violations turn this off and inspect violations() instead.
  bool abort_on_violation() const {
    return abort_on_violation_.load(std::memory_order_relaxed);
  }
  void set_abort_on_violation(bool on) {
    abort_on_violation_.store(on, std::memory_order_relaxed);
  }

  /// Register a shadow for an n-element array.  Returns null while the
  /// checker is disabled (arrays created then are never tracked).
  std::shared_ptr<ArrayShadow> register_array(std::size_t n,
                                              std::size_t elem_bytes);

  /// --- per-element access hooks ---------------------------------------
  void record_access(ArrayShadow* a, std::size_t i, AccessKind k, int thread,
                     std::uint64_t epoch);
  /// Declare / retract a CRCW combine window on `a` (refcounted; every
  /// SPMD thread opens its own).  Plain writes inside the window are
  /// treated as `combine_kind`.
  void begin_crcw(ArrayShadow* a, AccessKind combine_kind);
  void end_crcw(ArrayShadow* a);

  /// --- affinity hook ---------------------------------------------------
  void record_affinity(ArrayShadow* a, std::size_t index, int thread,
                       int caller_node, int owner_node, std::uint64_t epoch,
                       const char* what);

  /// --- cost coverage ---------------------------------------------------
  /// Bytes moved through an instrumented data path vs. bytes covered by a
  /// ThreadCtx cost charge, tallied per thread within the current epoch.
  void add_moved(int thread, std::size_t bytes);
  void add_charged(int thread, std::size_t bytes);
  /// Barrier completion: flag any thread whose moved bytes exceed its
  /// charged bytes this epoch, then zero both tallies.
  void end_epoch(std::uint64_t epoch, int nthreads);

  /// --- reporting --------------------------------------------------------
  /// Total violations detected since the last clear (including ones beyond
  /// the stored-detail cap).
  std::size_t violation_count() const;
  std::vector<Violation> violations() const;
  void clear_violations();

 private:
  AccessChecker();
  void report(Violation v);

  std::atomic<bool> enabled_{true};
  std::atomic<bool> abort_on_violation_{true};
};

}  // namespace pgraph::analysis
