#include "analysis/access_checker.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pgraph::analysis {

namespace {

constexpr std::uint32_t kNoEpoch = 0xffffffffu;
// Stored-violation cap: a racing loop can trip thousands of times; keep
// the first kMaxStored diagnostics and count the rest.
constexpr std::size_t kMaxStored = 256;
// Per-thread cost tallies are preallocated so hook paths never resize
// shared storage while SPMD threads are running.
constexpr std::size_t kMaxThreads = 1024;

struct alignas(64) CostCell {
  // Plain (non-atomic) on purpose: each cell is written only by its own
  // SPMD thread between barriers and read/reset only inside the barrier
  // completion step, which the std::barrier orders against both sides.
  std::uint64_t moved = 0;
  std::uint64_t charged = 0;
};

struct CheckerState {
  std::mutex mu;  // guards violations_ and next_array_id
  std::vector<Violation> stored;
  std::atomic<std::size_t> total{0};
  std::atomic<std::uint32_t> next_array_id{0};
  std::array<CostCell, kMaxThreads> cost{};
};

CheckerState& state() {
  static CheckerState s;
  return s;
}

}  // namespace

const char* to_string(ViolationClass c) {
  switch (c) {
    case ViolationClass::PhaseRace:
      return "phase-race";
    case ViolationClass::Affinity:
      return "affinity-violation";
    case ViolationClass::CostMismatch:
      return "cost-mismatch";
  }
  return "?";
}

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::Read:
      return "read";
    case AccessKind::Write:
      return "write";
    case AccessKind::CombineMin:
      return "combine-min";
    case AccessKind::CombineOverwrite:
      return "combine-overwrite";
    case AccessKind::CombineAdd:
      return "combine-add";
  }
  return "?";
}

/// Shadow of one GlobalArray: per element, the last write (epoch, thread,
/// kind) and the last read (epoch, thread), consulted on every
/// instrumented access to detect same-epoch conflicts.  Lock striping
/// keeps concurrent hooks cheap; state is only ever compared within one
/// epoch, so stale entries from earlier epochs are simply overwritten.
class ArrayShadow {
 public:
  ArrayShadow(std::uint32_t id, std::size_t n, std::size_t elem_bytes)
      : id_(id), elem_bytes_(elem_bytes), elems_(n) {}

  std::string name() const {
    return "array#" + std::to_string(id_) + "(n=" +
           std::to_string(elems_.size()) + ")";
  }
  std::size_t elem_bytes() const { return elem_bytes_; }

 private:
  friend class AccessChecker;

  struct ElemState {
    std::uint32_t w_epoch = kNoEpoch;
    std::int32_t w_thread = -1;
    AccessKind w_kind = AccessKind::Write;
    std::uint32_t r_epoch = kNoEpoch;
    std::int32_t r_thread = -1;
  };

  static constexpr std::size_t kStripes = 64;
  std::mutex& stripe(std::size_t i) { return stripes_[i % kStripes]; }

  std::uint32_t id_;
  std::size_t elem_bytes_;
  std::vector<ElemState> elems_;
  std::array<std::mutex, kStripes> stripes_;
  std::atomic<int> crcw_depth_{0};
  std::atomic<AccessKind> crcw_kind_{AccessKind::CombineOverwrite};
};

AccessChecker::AccessChecker() = default;

AccessChecker& AccessChecker::instance() {
  static AccessChecker c;
  return c;
}

std::shared_ptr<ArrayShadow> AccessChecker::register_array(
    std::size_t n, std::size_t elem_bytes) {
  if (!enabled()) return nullptr;
  auto& s = state();
  const std::uint32_t id =
      s.next_array_id.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<ArrayShadow>(id, n, elem_bytes);
}

void AccessChecker::begin_crcw(ArrayShadow* a, AccessKind combine_kind) {
  if (a == nullptr) return;
  a->crcw_kind_.store(combine_kind, std::memory_order_relaxed);
  a->crcw_depth_.fetch_add(1, std::memory_order_relaxed);
}

void AccessChecker::end_crcw(ArrayShadow* a) {
  if (a == nullptr) return;
  a->crcw_depth_.fetch_sub(1, std::memory_order_relaxed);
}

void AccessChecker::record_access(ArrayShadow* a, std::size_t i, AccessKind k,
                                  int thread, std::uint64_t epoch64) {
  if (a == nullptr || !enabled()) return;
  const auto epoch = static_cast<std::uint32_t>(epoch64);

  // Plain writes inside a declared CRCW window follow the window's rule.
  if (k == AccessKind::Write &&
      a->crcw_depth_.load(std::memory_order_relaxed) > 0) {
    k = a->crcw_kind_.load(std::memory_order_relaxed);
  }

  const char* conflict = nullptr;
  int other = -1;
  AccessKind other_kind = AccessKind::Write;
  {
    std::lock_guard<std::mutex> lk(a->stripe(i));
    ArrayShadow::ElemState& e = a->elems_[i];
    if (k == AccessKind::Read) {
      // A read conflicts with a same-epoch plain or arbitrary-CRCW write
      // by another thread; reads racing a monotone min are the declared
      // benign pattern of the paper's PRAM-style phases.
      if (e.w_epoch == epoch && e.w_thread != thread &&
          e.w_kind != AccessKind::CombineMin) {
        conflict = "read of element written this epoch";
        other = e.w_thread;
        other_kind = e.w_kind;
      }
      e.r_epoch = epoch;
      e.r_thread = thread;
    } else {
      if (e.r_epoch == epoch && e.r_thread != thread &&
          k != AccessKind::CombineMin) {
        conflict = "write to element read this epoch";
        other = e.r_thread;
        other_kind = AccessKind::Read;
      } else if (e.w_epoch == epoch && e.w_thread != thread &&
                 !(k == e.w_kind && k != AccessKind::Write)) {
        // Concurrent writes are legal only under one shared combine rule.
        conflict = "conflicting writes to element";
        other = e.w_thread;
        other_kind = e.w_kind;
      }
      e.w_epoch = epoch;
      e.w_thread = thread;
      e.w_kind = k;
    }
  }
  if (conflict == nullptr) return;

  Violation v;
  v.cls = ViolationClass::PhaseRace;
  v.array = a->name();
  v.index = i;
  v.thread = thread;
  v.other_thread = other;
  v.epoch = epoch64;
  v.detail = std::string("phase-race: ") + conflict + " — " + v.array +
             "[" + std::to_string(i) + "], thread " + std::to_string(thread) +
             " (" + to_string(k) + ") vs thread " + std::to_string(other) +
             " (" + to_string(other_kind) + "), barrier epoch " +
             std::to_string(epoch64);
  report(std::move(v));
}

void AccessChecker::record_affinity(ArrayShadow* a, std::size_t index,
                                    int thread, int caller_node,
                                    int owner_node, std::uint64_t epoch,
                                    const char* what) {
  if (!enabled()) return;
  Violation v;
  v.cls = ViolationClass::Affinity;
  v.array = a != nullptr ? a->name() : std::string("array");
  v.index = index;
  v.thread = thread;
  v.other_thread = -1;
  v.epoch = epoch;
  v.detail = std::string("affinity-violation: ") + what + " — " + v.array +
             "[" + std::to_string(index) + "] has affinity to node " +
             std::to_string(owner_node) + " but thread " +
             std::to_string(thread) + " on node " +
             std::to_string(caller_node) +
             " dereferences it directly (UB in real UPC), barrier epoch " +
             std::to_string(epoch);
  report(std::move(v));
}

void AccessChecker::add_moved(int thread, std::size_t bytes) {
  if (!enabled()) return;
  const auto t = static_cast<std::size_t>(thread);
  if (t >= kMaxThreads) return;
  state().cost[t].moved += bytes;
}

void AccessChecker::add_charged(int thread, std::size_t bytes) {
  if (!enabled()) return;
  const auto t = static_cast<std::size_t>(thread);
  if (t >= kMaxThreads) return;
  state().cost[t].charged += bytes;
}

void AccessChecker::end_epoch(std::uint64_t epoch, int nthreads) {
  if (!enabled()) return;
  auto& s = state();
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(nthreads), kMaxThreads);
  for (std::size_t t = 0; t < n; ++t) {
    CostCell& c = s.cost[t];
    if (c.moved > c.charged) {
      Violation v;
      v.cls = ViolationClass::CostMismatch;
      v.index = static_cast<std::size_t>(c.moved - c.charged);
      v.thread = static_cast<int>(t);
      v.epoch = epoch;
      v.detail = "cost-mismatch: thread " + std::to_string(t) + " moved " +
                 std::to_string(c.moved) + " bytes but charged only " +
                 std::to_string(c.charged) +
                 " to its cost clock in barrier epoch " +
                 std::to_string(epoch) +
                 " (simulated time diverges from data motion)";
      c.moved = 0;
      c.charged = 0;
      report(std::move(v));
    } else {
      c.moved = 0;
      c.charged = 0;
    }
  }
}

std::size_t AccessChecker::violation_count() const {
  return state().total.load(std::memory_order_relaxed);
}

std::vector<Violation> AccessChecker::violations() const {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.stored;
}

void AccessChecker::clear_violations() {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.stored.clear();
  s.total.store(0, std::memory_order_relaxed);
  for (auto& c : s.cost) {
    c.moved = 0;
    c.charged = 0;
  }
}

void AccessChecker::report(Violation v) {
  auto& s = state();
  s.total.fetch_add(1, std::memory_order_relaxed);
  if (abort_on_violation()) {
    std::fprintf(stderr, "[pgraph access checker] %s\n", v.detail.c_str());
    std::abort();
  }
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.stored.size() < kMaxStored) s.stored.push_back(std::move(v));
}

}  // namespace pgraph::analysis
