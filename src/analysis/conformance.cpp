#include "analysis/conformance.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pgraph::analysis {

namespace {

// Stored-violation cap: a divergent loop can trip once per barrier for
// thousands of barriers; keep the first kMaxStored diagnostics and count
// the rest.
constexpr std::size_t kMaxStored = 256;
// Per-thread cells are preallocated so hook paths never resize shared
// storage while SPMD threads are running.
constexpr std::size_t kMaxThreads = 1024;
// Recent-call-history ring length per thread (survives epochs, so a
// divergence diagnostic can show what each thread did leading up to it).
constexpr std::size_t kHistory = 8;

struct SeqEntry {
  std::uint32_t site = 0;
  std::uint64_t arg_sig = 0;
};

struct alignas(64) ThreadCell {
  // Plain (non-atomic) on purpose: each cell is written only by its own
  // SPMD thread between barriers and read/reset only inside the barrier
  // completion step (or host-side begin_run), which the std::barrier
  // orders against both sides.
  std::vector<SeqEntry> seq;  ///< this epoch's collective fingerprint
  std::array<std::uint32_t, kHistory> hist{};
  std::size_t hist_len = 0;
  std::size_t hist_pos = 0;
  std::uint8_t barrier_kind = 0;  ///< 0 none, 1 plain, 2 exchange
  machine::PhaseStats ledger;     ///< mirror of every charge, same order
};

struct Site {
  CollOp op = CollOp::GetD;
  std::string tag;
};

struct VerifierState {
  std::mutex mu;  // guards stored, sites
  std::vector<ConformanceViolation> stored;
  std::atomic<std::size_t> total{0};
  std::vector<Site> sites;
  std::array<ThreadCell, kMaxThreads> cells{};
};

VerifierState& state() {
  static VerifierState s;
  return s;
}

const char* barrier_kind_name(std::uint8_t k) {
  switch (k) {
    case 1:
      return "barrier";
    case 2:
      return "exchange-barrier";
    default:
      return "none";
  }
}

}  // namespace

const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::GetD:
      return "getd";
    case CollOp::SetD:
      return "setd";
    case CollOp::SetDMin:
      return "setd_min";
    case CollOp::SetDAdd:
      return "setd_add";
    case CollOp::Replicate:
      return "replicate";
  }
  return "?";
}

const char* to_string(ConformanceClass c) {
  switch (c) {
    case ConformanceClass::SequenceDivergence:
      return "sequence-divergence";
    case ConformanceClass::ArgumentMismatch:
      return "argument-mismatch";
    case ConformanceClass::LedgerImbalance:
      return "ledger-imbalance";
  }
  return "?";
}

ConformanceVerifier::ConformanceVerifier() = default;

ConformanceVerifier& ConformanceVerifier::instance() {
  static ConformanceVerifier v;
  return v;
}

void ConformanceVerifier::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  // A mid-life toggle desynchronizes the ledger mirror from the actual
  // stats; invalidate it until the next begin_run re-baselines.
  ledger_active_.store(false, std::memory_order_relaxed);
}

std::uint32_t ConformanceVerifier::site_id(CollOp op, const char* tag) {
  auto& s = state();
  const std::string t = tag != nullptr ? tag : "";
  std::lock_guard<std::mutex> lk(s.mu);
  for (std::size_t i = 0; i < s.sites.size(); ++i)
    if (s.sites[i].op == op && s.sites[i].tag == t)
      return static_cast<std::uint32_t>(i);
  s.sites.push_back(Site{op, t});
  return static_cast<std::uint32_t>(s.sites.size() - 1);
}

std::string ConformanceVerifier::site_name(std::uint32_t id) const {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (id >= s.sites.size()) return "site#" + std::to_string(id);
  const Site& site = s.sites[id];
  return site.tag.empty() ? std::string(to_string(site.op))
                          : std::string(to_string(site.op)) + "@" + site.tag;
}

void ConformanceVerifier::note_collective(int thread, std::uint32_t site,
                                          std::uint64_t arg_sig) {
  if (!enabled()) return;
  const auto t = static_cast<std::size_t>(thread);
  if (t >= kMaxThreads) return;
  ThreadCell& c = state().cells[t];
  c.seq.push_back(SeqEntry{site, arg_sig});
  c.hist[c.hist_pos] = site;
  c.hist_pos = (c.hist_pos + 1) % kHistory;
  c.hist_len = std::min(c.hist_len + 1, kHistory);
}

void ConformanceVerifier::note_barrier(int thread, bool exchange) {
  if (!enabled()) return;
  const auto t = static_cast<std::size_t>(thread);
  if (t >= kMaxThreads) return;
  state().cells[t].barrier_kind = exchange ? 2 : 1;
}

void ConformanceVerifier::ledger_charge(int thread, machine::Cat c,
                                        double ns) {
  if (!enabled()) return;
  const auto t = static_cast<std::size_t>(thread);
  if (t >= kMaxThreads) return;
  state().cells[t].ledger.add(c, ns);
}

namespace {

/// "getd@phase1 <- setd <- getd@phase0" — most recent first.
std::string history_string(const ConformanceVerifier& v,
                           const ThreadCell& c) {
  if (c.hist_len == 0) return "(none)";
  std::string out;
  for (std::size_t k = 0; k < c.hist_len; ++k) {
    // hist_pos points at the slot the *next* entry will take; walk back.
    const std::size_t slot = (c.hist_pos + kHistory - 1 - k) % kHistory;
    if (k != 0) out += " <- ";
    out += v.site_name(c.hist[slot]);
  }
  return out;
}

}  // namespace

void ConformanceVerifier::end_epoch(std::uint64_t epoch, int nthreads) {
  if (!enabled()) return;
  auto& s = state();
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(nthreads), kMaxThreads);
  if (n == 0) return;
  const ThreadCell& ref = s.cells[0];
  for (std::size_t t = 1; t < n; ++t) {
    const ThreadCell& c = s.cells[t];
    // First divergent position in the epoch's fingerprint.
    const std::size_t common = std::min(ref.seq.size(), c.seq.size());
    std::size_t p = 0;
    while (p < common && ref.seq[p].site == c.seq[p].site &&
           ref.seq[p].arg_sig == c.seq[p].arg_sig)
      ++p;
    if (p < common && ref.seq[p].site != c.seq[p].site) {
      ConformanceViolation v;
      v.cls = ConformanceClass::SequenceDivergence;
      v.thread = static_cast<int>(t);
      v.other_thread = 0;
      v.epoch = epoch;
      v.position = p;
      v.site = site_name(c.seq[p].site);
      v.detail = std::string("sequence-divergence: collective call ") +
                 std::to_string(p) + " of barrier epoch " +
                 std::to_string(epoch) + " diverges — thread " +
                 std::to_string(t) + " issued " + v.site + " while thread 0 " +
                 "issued " + site_name(ref.seq[p].site) +
                 "; recent calls of thread " + std::to_string(t) + ": " +
                 history_string(*this, c) + "; of thread 0: " +
                 history_string(*this, ref);
      report(std::move(v));
    } else if (p < common) {
      ConformanceViolation v;
      v.cls = ConformanceClass::ArgumentMismatch;
      v.thread = static_cast<int>(t);
      v.other_thread = 0;
      v.epoch = epoch;
      v.position = p;
      v.site = site_name(c.seq[p].site);
      v.detail = std::string("argument-mismatch: collective call ") +
                 std::to_string(p) + " (" + v.site + ") of barrier epoch " +
                 std::to_string(epoch) +
                 " has conflicting arguments — thread " + std::to_string(t) +
                 " signature " + std::to_string(c.seq[p].arg_sig) +
                 " vs thread 0 signature " +
                 std::to_string(ref.seq[p].arg_sig) +
                 " (target array, element width, combine rule or "
                 "virtual-block geometry differ)";
      report(std::move(v));
    } else if (ref.seq.size() != c.seq.size()) {
      const bool longer = c.seq.size() > ref.seq.size();
      const ThreadCell& l = longer ? c : ref;
      ConformanceViolation v;
      v.cls = ConformanceClass::SequenceDivergence;
      v.thread = static_cast<int>(t);
      v.other_thread = 0;
      v.epoch = epoch;
      v.position = common;
      v.site = site_name(l.seq[common].site);
      v.detail = std::string("sequence-divergence: thread ") +
                 std::to_string(t) + " issued " + std::to_string(c.seq.size()) +
                 " collective(s) in barrier epoch " + std::to_string(epoch) +
                 " but thread 0 issued " + std::to_string(ref.seq.size()) +
                 "; first unmatched call is " + v.site +
                 "; recent calls of thread " + std::to_string(t) + ": " +
                 history_string(*this, c) + "; of thread 0: " +
                 history_string(*this, ref);
      report(std::move(v));
    } else if (ref.barrier_kind != c.barrier_kind) {
      ConformanceViolation v;
      v.cls = ConformanceClass::SequenceDivergence;
      v.thread = static_cast<int>(t);
      v.other_thread = 0;
      v.epoch = epoch;
      v.position = common;
      v.site = barrier_kind_name(c.barrier_kind);
      v.detail = std::string("sequence-divergence: thread ") +
                 std::to_string(t) + " closed barrier epoch " +
                 std::to_string(epoch) + " with " +
                 barrier_kind_name(c.barrier_kind) + " while thread 0 used " +
                 barrier_kind_name(ref.barrier_kind);
      report(std::move(v));
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    s.cells[t].seq.clear();
    s.cells[t].barrier_kind = 0;
  }
}

void ConformanceVerifier::check_ledger(std::uint64_t epoch, int nthreads,
                                       const machine::PhaseStats* const*
                                           actual) {
  if (!enabled() || !ledger_active_.load(std::memory_order_relaxed)) return;
  auto& s = state();
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(nthreads), kMaxThreads);
  for (std::size_t t = 0; t < n; ++t) {
    ThreadCell& c = s.cells[t];
    const machine::PhaseStats& a = *actual[t];
    int bad = -1;
    for (std::size_t k = 0; k < machine::kNumCats; ++k) {
      const auto cat = static_cast<machine::Cat>(k);
      // Exact comparison on purpose: the ledger mirrors every add in the
      // same order from the same baseline, so any difference means a
      // charge bypassed the mirror (or was double-applied).
      if (c.ledger.get(cat) != a.get(cat)) {
        bad = static_cast<int>(k);
        break;
      }
    }
    if (bad < 0) continue;
    const auto cat = static_cast<machine::Cat>(bad);
    char buf[96];
    std::snprintf(buf, sizeof buf, "ledger %.17g ns vs stats %.17g ns",
                  c.ledger.get(cat), a.get(cat));
    ConformanceViolation v;
    v.cls = ConformanceClass::LedgerImbalance;
    v.thread = static_cast<int>(t);
    v.epoch = epoch;
    v.detail = std::string("ledger-imbalance: thread ") + std::to_string(t) +
               " category " + std::string(machine::cat_name(cat)) + " — " +
               buf + " at barrier epoch " + std::to_string(epoch) +
               " (a cost was charged outside the double-entry ledger, or "
               "charged twice)";
    // Resync so one bypassed charge yields one diagnostic, not one per
    // subsequent barrier.
    c.ledger = a;
    report(std::move(v));
  }
}

void ConformanceVerifier::begin_run(int nthreads,
                                    const machine::PhaseStats* baseline) {
  if (!enabled()) {
    ledger_active_.store(false, std::memory_order_relaxed);
    return;
  }
  auto& s = state();
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(nthreads), kMaxThreads);
  // Clear every cell, not just [0, n): a previous (larger) runtime must
  // not leak fingerprints or ledger state into this run.
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    ThreadCell& c = s.cells[t];
    c.seq.clear();
    c.barrier_kind = 0;
    c.ledger.reset();
  }
  for (std::size_t t = 0; t < n; ++t) s.cells[t].ledger = baseline[t];
  ledger_active_.store(true, std::memory_order_relaxed);
}

std::size_t ConformanceVerifier::violation_count() const {
  return state().total.load(std::memory_order_relaxed);
}

std::vector<ConformanceViolation> ConformanceVerifier::violations() const {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.stored;
}

void ConformanceVerifier::clear_violations() {
  auto& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.stored.clear();
  s.total.store(0, std::memory_order_relaxed);
}

void ConformanceVerifier::report(ConformanceViolation v) {
  auto& s = state();
  s.total.fetch_add(1, std::memory_order_relaxed);
  if (abort_on_violation()) {
    std::fprintf(stderr, "[pgraph conformance verifier] %s\n",
                 v.detail.c_str());
    std::abort();
  }
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.stored.size() < kMaxStored) s.stored.push_back(std::move(v));
}

}  // namespace pgraph::analysis
