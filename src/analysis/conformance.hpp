#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/phase_stats.hpp"

namespace pgraph::analysis {

/// The collective operations the conformance verifier fingerprints.  Each
/// call site is interned as (op, source tag) — see
/// ConformanceVerifier::site_id — so a divergence diagnostic can name the
/// exact call, not just the op kind.
enum class CollOp : std::uint8_t {
  GetD,
  SetD,
  SetDMin,
  SetDAdd,
  Replicate,  ///< buddy-replication pass (pgas::replicate_to_buddy)
};

const char* to_string(CollOp op);

/// The three violation classes of the SPMD conformance discipline (see
/// docs/ANALYSIS.md).  The discipline is the paper's execution model: every
/// thread runs the same collective script with the same arguments, and
/// every modeled nanosecond is charged exactly once.
enum class ConformanceClass : std::uint8_t {
  SequenceDivergence,  ///< threads issued different collectives/barriers
  ArgumentMismatch,    ///< same collective, conflicting arguments
  LedgerImbalance,     ///< per-thread charges != PhaseStats barrier totals
};

const char* to_string(ConformanceClass c);

/// One detected conformance violation.  `position` is the index of the
/// first divergent call within the epoch's fingerprint (SequenceDivergence
/// / ArgumentMismatch) and unused for LedgerImbalance.
struct ConformanceViolation {
  ConformanceClass cls = ConformanceClass::SequenceDivergence;
  int thread = -1;        ///< diverging thread
  int other_thread = -1;  ///< reference thread it is compared against
  std::uint64_t epoch = 0;
  std::size_t position = 0;
  std::string site;    ///< name of the divergent site ("" for ledger)
  std::string detail;  ///< formatted one-line diagnostic
};

/// Process-wide SPMD conformance verifier the simulated PGAS runtime
/// reports into when built with PGRAPH_CHECK_ACCESS (the `check` preset,
/// alongside the access checker).  Zero-cost when the macro is off: no
/// hook survives compilation.
///
/// What it checks, per barrier epoch:
///  1. Collective-sequence fingerprints: the ordered list of (site,
///     argument signature) entries each thread accumulated since the last
///     barrier must be identical across threads, and all threads must have
///     closed the epoch with the same barrier kind.  A mismatch names the
///     first divergent call, both threads, and their recent call history.
///  2. Argument conformance: at each matching site, the argument signature
///     (target array, element width, combine rule, virtual-block geometry,
///     option bits) must agree — catching "thread 7 hooked a different
///     array" bugs that otherwise surface as silent wrong answers.
///  3. Cost-conservation ledger: a per-thread shadow PhaseStats mirrors
///     every individual charge (ThreadCtx::charge plus the runtime's
///     barrier-side straggle/alignment charges, which covers fault retries
///     and replication traffic too); at each barrier the mirror must equal
///     the thread's cumulative PhaseStats bit-for-bit, per category.
///
/// Thread safety: per-thread hooks (note_collective, note_barrier,
/// ledger_charge) touch only the calling thread's cell and are ordered
/// against the cross-checks by the runtime's barrier; begin_run and the
/// end_epoch checks run with no SPMD threads live / all threads parked.
class ConformanceVerifier {
 public:
  static ConformanceVerifier& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on);

  /// When true (the default), the first violation prints its diagnostic to
  /// stderr and aborts the process — the check build's way of turning a
  /// silent model bug into a hard test failure.  Tests that inject
  /// violations turn this off and inspect violations() instead.
  bool abort_on_violation() const {
    return abort_on_violation_.load(std::memory_order_relaxed);
  }
  void set_abort_on_violation(bool on) {
    abort_on_violation_.store(on, std::memory_order_relaxed);
  }

  /// Intern a collective call site.  `tag` is a stable label (string
  /// literal or CollectiveOptions::site); the same (op, tag) pair always
  /// returns the same id, so fingerprints compare across threads by id.
  std::uint32_t site_id(CollOp op, const char* tag);
  /// Human-readable name of an interned site ("setd@contract" or "getd").
  std::string site_name(std::uint32_t id) const;

  /// --- per-thread hooks (SPMD threads, own cell only) -------------------
  /// Append one collective call to `thread`'s fingerprint for this epoch.
  void note_collective(int thread, std::uint32_t site, std::uint64_t arg_sig);
  /// Record the barrier kind `thread` is closing this epoch with (plain or
  /// exchange).  Called immediately before the barrier arrival.
  void note_barrier(int thread, bool exchange);
  /// Mirror one cost charge into `thread`'s ledger.
  void ledger_charge(int thread, machine::Cat c, double ns);

  /// --- barrier completion step (all SPMD threads parked) ----------------
  /// Cross-check all threads' fingerprints and barrier kinds against
  /// thread 0's, then clear them for the next epoch.
  void end_epoch(std::uint64_t epoch, int nthreads);
  /// Compare each thread's ledger against its actual cumulative PhaseStats
  /// (`actual[t]`), exact per-category equality.  A mismatched ledger is
  /// resynced to the actual stats after reporting, so one bug yields one
  /// diagnostic instead of one per subsequent barrier.
  void check_ledger(std::uint64_t epoch, int nthreads,
                    const machine::PhaseStats* const* actual);

  /// --- run lifecycle ----------------------------------------------------
  /// Called by Runtime::run before spawning SPMD threads: re-baseline each
  /// thread's ledger from the runtime's saved cumulative stats (a ThreadCtx
  /// starts from those) and clear any stale fingerprints.  This is what
  /// keeps consecutively attached runtimes from leaking verifier state
  /// into each other's rows.
  void begin_run(int nthreads, const machine::PhaseStats* baseline);

  /// --- reporting --------------------------------------------------------
  /// Total violations detected since the last clear (including ones beyond
  /// the stored-detail cap).
  std::size_t violation_count() const;
  std::vector<ConformanceViolation> violations() const;
  void clear_violations();

 private:
  ConformanceVerifier();
  void report(ConformanceViolation v);

  std::atomic<bool> enabled_{true};
  std::atomic<bool> abort_on_violation_{true};
  /// True while the ledger mirror is known to be in sync with the actual
  /// stats (set by begin_run when enabled; cleared by set_enabled so a
  /// mid-life enable cannot compare a stale mirror).
  std::atomic<bool> ledger_active_{false};
};

}  // namespace pgraph::analysis
