#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pgraph::sched {

/// Stable counting sort of `items` by small integer keys in [0, nbuckets).
///
/// Outputs:
///  - `sorted[j]`   : items permuted into bucket order
///  - `rank[j]`     : original position of sorted[j]  (the P array of
///                    Algorithm 1: the permute phase does C[rank[j]] = S[j])
///  - `bucket_off`  : size nbuckets+1; bucket k occupies
///                    [bucket_off[k], bucket_off[k+1]) in `sorted`
///
/// The paper uses count sort inside the group phase because it is linear
/// time and its histogram (size W) fits in cache; quick sort was measured
/// >50x slower in the same role (Section IV).
template <class T, class KeyFn>
void count_sort(std::span<const T> items, KeyFn key, std::size_t nbuckets,
                std::span<T> sorted, std::span<std::uint32_t> rank,
                std::vector<std::size_t>& bucket_off) {
  assert(sorted.size() == items.size());
  assert(rank.size() == items.size());
  bucket_off.assign(nbuckets + 1, 0);
  for (const T& x : items) {
    const std::size_t k = key(x);
    assert(k < nbuckets);
    ++bucket_off[k + 1];
  }
  for (std::size_t k = 0; k < nbuckets; ++k)
    bucket_off[k + 1] += bucket_off[k];
  std::vector<std::size_t> cursor(bucket_off.begin(), bucket_off.end() - 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t k = key(items[i]);
    const std::size_t pos = cursor[k]++;
    sorted[pos] = items[i];
    rank[pos] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace pgraph::sched
