#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "partition/partitioning.hpp"

namespace pgraph::sched {

/// Virtual-thread block decomposition (Section IV): each of the s physical
/// threads simulates t' virtual threads, so the shared array D is viewed as
/// s * t' blocks and requests are grouped by *virtual* block.  The sub-block
/// size is chosen so a block fits in a target cache level; the owner of a
/// virtual block is the physical thread that owns the containing block.
///
/// Used as the counting-sort key inside the GetD/SetD/SetDMin collectives:
/// sorting requests by virtual key gives the owner temporal locality within
/// each sub-block during its gather/apply phase.
///
/// The legacy (n, s, t') constructor assumes the block layout; the
/// Partitioning constructor routes the owner map through the array's
/// policy instead (docs/PARTITIONING.md), keeping the raw block arithmetic
/// below as the zero-overhead fast path (`part == nullptr`).
struct VBlocks {
  std::size_t n = 0;        ///< total elements in the shared array
  std::size_t blk = 1;      ///< largest per-thread partition (ceil(n/s)
                            ///< under the block layout)
  std::size_t sub_blk = 1;  ///< per-virtual-thread sub-block size
  int nthreads = 1;
  int tprime = 1;
  /// Non-null for non-block policies; must outlive this VBlocks (the
  /// GlobalArray owning the Partitioning outlives every collective call).
  const partition::Partitioning* part = nullptr;

  VBlocks() = default;

  VBlocks(std::size_t n_, int nthreads_, int tprime_)
      : n(n_), nthreads(nthreads_), tprime(tprime_ < 1 ? 1 : tprime_) {
    assert(nthreads_ >= 1);
    blk = (n + static_cast<std::size_t>(nthreads) - 1) /
          static_cast<std::size_t>(nthreads);
    if (blk == 0) blk = 1;
    sub_blk = (blk + static_cast<std::size_t>(tprime) - 1) /
              static_cast<std::size_t>(tprime);
    if (sub_blk == 0) sub_blk = 1;
  }

  VBlocks(const partition::Partitioning& p, int tprime_)
      : n(p.size()), nthreads(p.num_threads()),
        tprime(tprime_ < 1 ? 1 : tprime_),
        part(p.is_block() ? nullptr : &p) {
    blk = p.max_local_size();
    if (blk == 0) blk = 1;
    sub_blk = (blk + static_cast<std::size_t>(tprime) - 1) /
              static_cast<std::size_t>(tprime);
    if (sub_blk == 0) sub_blk = 1;
  }

  std::size_t nbuckets() const {
    return static_cast<std::size_t>(nthreads) *
           static_cast<std::size_t>(tprime);
  }

  /// Physical owner thread of element i.
  int owner(std::uint64_t i) const {
    if (part != nullptr) return part->owner_of(i);
    // BLOCK fast path.  Clamp before narrowing: a corruption-derived index
    // can make the quotient overflow int (negative owner, wild vkey) if
    // cast first.
    const std::uint64_t t = i / blk;
    return t >= static_cast<std::uint64_t>(nthreads)
               ? nthreads - 1
               : static_cast<int>(t);
  }

  /// Virtual bucket of element i: owner * t' + sub-block within the block.
  std::size_t vkey(std::uint64_t i) const {
    const int t = owner(i);
    const std::uint64_t within =
        part != nullptr ? part->local_of(i)
                        : i - static_cast<std::uint64_t>(t) * blk;
    std::size_t sub = static_cast<std::size_t>(within / sub_blk);
    if (sub >= static_cast<std::size_t>(tprime))
      sub = static_cast<std::size_t>(tprime) - 1;
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(tprime) +
           sub;
  }

  /// First bucket belonging to physical thread t.
  std::size_t first_bucket(int t) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(tprime);
  }
};

}  // namespace pgraph::sched
