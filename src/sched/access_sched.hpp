#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "machine/memory_model.hpp"
#include "machine/phase_stats.hpp"

namespace pgraph::sched {

/// Optional hook that records every *element index of D* touched during the
/// access phase, in touch order.  Replaying the trace through
/// machine::CacheSim validates the analytic model (bench/abl04).
using AccessTrace = std::vector<std::uint64_t>;

/// Aggregate cost report of one scheduled_gather call, split along the
/// phases of Algorithm 1.
struct SchedCost {
  double sort_ns = 0.0;     ///< group phase (count sorts)
  double access_ns = 0.0;   ///< access phase (touching D)
  double permute_ns = 0.0;  ///< permute phase (restoring request order)

  double total_ns() const { return sort_ns + access_ns + permute_ns; }
};

/// Algorithm 1 of the paper: compute C[i] = D[R[i]] for all i, with the
/// accesses to D scheduled block-by-block.
///
/// `ws` (the W parameters) gives the fan-out of each recursion level; an
/// empty list degenerates to the original unscheduled gather.  Each level
/// partitions D into W blocks, groups the requests by target block with a
/// stable counting sort, recurses into each block, and finally permutes the
/// retrieved values back into request order.  The paper limits practical
/// recursion depth to <= 3 (cluster / node / cache levels); this
/// implementation accepts any depth.
///
/// Cost accounting (optional): if `mem` is non-null, the analytic cost of
/// each phase is accumulated into `cost` using the equations of Section IV.
/// If `trace` is non-null, the indices of D touched in the access phase are
/// appended in order (for cache-simulator validation).
void scheduled_gather(std::span<const std::uint64_t> D,
                      std::span<const std::uint64_t> R,
                      std::span<std::uint64_t> C,
                      std::span<const std::size_t> ws,
                      const machine::MemoryModel* mem = nullptr,
                      SchedCost* cost = nullptr, AccessTrace* trace = nullptr);

/// The unscheduled original: C[i] = D[R[i]] directly (for comparison).
void direct_gather(std::span<const std::uint64_t> D,
                   std::span<const std::uint64_t> R,
                   std::span<std::uint64_t> C,
                   const machine::MemoryModel* mem = nullptr,
                   SchedCost* cost = nullptr, AccessTrace* trace = nullptr);

/// Scatter counterpart: D[R[i]] = V[i], scheduled the same way ("parallel
/// writes in a parallel step can be scheduled similarly").  Concurrent
/// writes to the same location resolve to the last one in block order
/// (arbitrary CRCW semantics).
void scheduled_scatter(std::span<std::uint64_t> D,
                       std::span<const std::uint64_t> R,
                       std::span<const std::uint64_t> V,
                       std::span<const std::size_t> ws,
                       const machine::MemoryModel* mem = nullptr,
                       SchedCost* cost = nullptr,
                       AccessTrace* trace = nullptr);

}  // namespace pgraph::sched
