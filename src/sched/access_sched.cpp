#include "sched/access_sched.hpp"

#include <algorithm>
#include <cassert>

#include "sched/count_sort.hpp"

namespace pgraph::sched {

namespace {

constexpr std::size_t kWord = sizeof(std::uint64_t);

void charge_sort(const machine::MemoryModel* mem, SchedCost* cost,
                 std::size_t m, std::size_t w) {
  if (!mem || !cost) return;
  // Count sort: two streaming passes over the m requests plus two passes
  // over the W-entry histogram (Section IV: 2L_M + m/B_M + 2W(L_M + 1/B_M)).
  cost->sort_ns += 2.0 * mem->seq_ns(m * kWord) +
                   mem->random_ns(2 * w, w * kWord, kWord);
}

void charge_block_moves(const machine::MemoryModel* mem, SchedCost* cost,
                        std::size_t m, std::size_t w) {
  if (!mem || !cost) return;
  // Routing requests to match the blocks: W block transfers, m elements.
  cost->sort_ns += static_cast<double>(w) * mem->seq_ns(0) +
                   mem->seq_ns(m * kWord) - mem->seq_ns(0);
}

/// Recursive core.  `dbase` is D's offset within the original array (only
/// used for tracing absolute indices).
void gather_rec(std::span<const std::uint64_t> D,
                std::span<const std::uint64_t> R,  // indices relative to D
                std::span<std::uint64_t> C,
                std::span<const std::size_t> ws, std::uint64_t dbase,
                const machine::MemoryModel* mem, SchedCost* cost,
                AccessTrace* trace) {
  const std::size_t n = D.size();
  const std::size_t m = R.size();
  if (m == 0) return;

  if (ws.empty() || n <= 1 || ws.front() <= 1) {
    // Base case: direct access over this (hopefully cache-sized) block.
    for (std::size_t i = 0; i < m; ++i) {
      assert(R[i] < n);
      C[i] = D[R[i]];
      if (trace) trace->push_back(dbase + R[i]);
    }
    if (mem && cost) cost->access_ns += mem->random_ns(m, n * kWord, kWord);
    return;
  }

  const std::size_t w = std::min(ws.front(), n);
  const std::size_t blk = (n + w - 1) / w;

  // --- group: sort requests by target block, remembering original slots.
  std::vector<std::uint64_t> sorted(m);
  std::vector<std::uint32_t> rank(m);
  std::vector<std::size_t> off;
  count_sort<std::uint64_t>(
      R, [blk](std::uint64_t r) { return static_cast<std::size_t>(r / blk); },
      w, sorted, rank, off);
  charge_sort(mem, cost, m, w);
  charge_block_moves(mem, cost, m, w);

  // --- access: serve each block's requests together (recursively).
  std::vector<std::uint64_t> gathered(m);
  for (std::size_t k = 0; k < w; ++k) {
    const std::size_t lo = off[k], hi = off[k + 1];
    if (lo == hi) continue;
    const std::size_t dlo = k * blk;
    const std::size_t dhi = std::min(dlo + blk, n);
    // Rebase the requests of this block.
    std::vector<std::uint64_t> local(sorted.begin() + lo, sorted.begin() + hi);
    for (auto& r : local) r -= dlo;
    gather_rec(D.subspan(dlo, dhi - dlo), local,
               std::span<std::uint64_t>(gathered.data() + lo, hi - lo),
               ws.subspan(1), dbase + dlo, mem, cost, trace);
  }

  // --- permute: put values back into request order.
  for (std::size_t j = 0; j < m; ++j) C[rank[j]] = gathered[j];
  if (mem && cost) cost->permute_ns += mem->random_ns(m, m * kWord, kWord);
}

}  // namespace

void scheduled_gather(std::span<const std::uint64_t> D,
                      std::span<const std::uint64_t> R,
                      std::span<std::uint64_t> C,
                      std::span<const std::size_t> ws,
                      const machine::MemoryModel* mem, SchedCost* cost,
                      AccessTrace* trace) {
  assert(C.size() == R.size());
  gather_rec(D, R, C, ws, 0, mem, cost, trace);
}

void direct_gather(std::span<const std::uint64_t> D,
                   std::span<const std::uint64_t> R,
                   std::span<std::uint64_t> C,
                   const machine::MemoryModel* mem, SchedCost* cost,
                   AccessTrace* trace) {
  assert(C.size() == R.size());
  for (std::size_t i = 0; i < R.size(); ++i) {
    assert(R[i] < D.size());
    C[i] = D[R[i]];
    if (trace) trace->push_back(R[i]);
  }
  if (mem && cost)
    cost->access_ns += mem->random_ns(R.size(), D.size() * kWord, kWord);
}

void scheduled_scatter(std::span<std::uint64_t> D,
                       std::span<const std::uint64_t> R,
                       std::span<const std::uint64_t> V,
                       std::span<const std::size_t> ws,
                       const machine::MemoryModel* mem, SchedCost* cost,
                       AccessTrace* trace) {
  assert(R.size() == V.size());
  const std::size_t m = R.size();
  if (m == 0) return;
  if (ws.empty() || ws.front() <= 1 || D.size() <= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      assert(R[i] < D.size());
      D[R[i]] = V[i];
      if (trace) trace->push_back(R[i]);
    }
    if (mem && cost)
      cost->access_ns += mem->random_ns(m, D.size() * kWord, kWord);
    return;
  }

  const std::size_t w = std::min(ws.front(), D.size());
  const std::size_t blk = (D.size() + w - 1) / w;

  // Group (index, value) pairs by target block; write block by block.
  struct Pair {
    std::uint64_t r, v;
  };
  std::vector<Pair> pairs(m);
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {R[i], V[i]};
  std::vector<Pair> sorted(m);
  std::vector<std::uint32_t> rank(m);
  std::vector<std::size_t> off;
  count_sort<Pair>(
      std::span<const Pair>(pairs),
      [blk](const Pair& p) { return static_cast<std::size_t>(p.r / blk); }, w,
      sorted, rank, off);
  charge_sort(mem, cost, m, w);

  for (std::size_t k = 0; k < w; ++k) {
    const std::size_t lo = off[k], hi = off[k + 1];
    if (lo == hi) continue;
    const std::size_t dlo = k * blk;
    const std::size_t dhi = std::min(dlo + blk, D.size());
    std::vector<std::uint64_t> rs, vs;
    rs.reserve(hi - lo);
    vs.reserve(hi - lo);
    // Preserve original order within the block so last-writer-wins
    // semantics match the unscheduled scatter (count sort is stable).
    for (std::size_t j = lo; j < hi; ++j) {
      rs.push_back(sorted[j].r - dlo);
      vs.push_back(sorted[j].v);
    }
    scheduled_scatter(D.subspan(dlo, dhi - dlo), rs, vs, ws.subspan(1), mem,
                      cost, trace);
  }
}

}  // namespace pgraph::sched
