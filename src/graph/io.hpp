#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace pgraph::graph {

/// DIMACS-like text format:
///   c <comment>
///   p edge <n> <m>          (or "p sp <n> <m>" for weighted)
///   e <u> <v> [<w>]         (1-based vertex ids, as in DIMACS)
/// Throws std::runtime_error on malformed input.
void write_dimacs(std::ostream& os, const EdgeList& el);
void write_dimacs(std::ostream& os, const WEdgeList& el);
EdgeList read_dimacs(std::istream& is);
WEdgeList read_dimacs_weighted(std::istream& is);

/// Compact binary format (magic + n + m + raw edge records), for caching
/// large generated graphs between bench runs.
void write_binary(const std::string& path, const WEdgeList& el);
WEdgeList read_binary(const std::string& path);

}  // namespace pgraph::graph
