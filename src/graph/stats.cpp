#include "graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

namespace pgraph::graph {

namespace {
std::vector<std::size_t> degrees(const EdgeList& el) {
  std::vector<std::size_t> deg(el.n, 0);
  for (const Edge& e : el.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}
}  // namespace

DegreeStats degree_stats(const EdgeList& el) {
  DegreeStats s;
  if (el.n == 0) return s;
  const auto deg = degrees(el);
  s.min_degree = SIZE_MAX;
  double sum = 0;
  for (const std::size_t d : deg) {
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    sum += static_cast<double>(d);
    if (d == 0) ++s.isolated;
  }
  s.mean_degree = sum / static_cast<double>(el.n);
  double var = 0;
  for (const std::size_t d : deg) {
    const double x = static_cast<double>(d) - s.mean_degree;
    var += x * x;
  }
  s.variance = var / static_cast<double>(el.n);

  const std::size_t buckets =
      s.max_degree == 0 ? 1 : std::bit_width(s.max_degree);
  s.log2_histogram.assign(buckets + 1, 0);
  for (const std::size_t d : deg)
    ++s.log2_histogram[d == 0 ? 0 : std::bit_width(d) - 1];
  return s;
}

double degree_gini(const EdgeList& el) {
  if (el.n == 0) return 0.0;
  auto deg = degrees(el);
  std::sort(deg.begin(), deg.end());
  // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, 1-based i.
  double sum = 0, weighted = 0;
  for (std::size_t i = 0; i < deg.size(); ++i) {
    sum += static_cast<double>(deg[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(deg[i]);
  }
  if (sum == 0) return 0.0;
  const double n = static_cast<double>(el.n);
  return 2.0 * weighted / (n * sum) - (n + 1.0) / n;
}

EdgeHygiene edge_hygiene(const EdgeList& el) {
  EdgeHygiene h;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(el.m() * 2);
  for (const Edge& e : el.edges) {
    if (e.u == e.v) {
      ++h.self_loops;
      continue;
    }
    const std::uint64_t u = std::min(e.u, e.v), v = std::max(e.u, e.v);
    if (seen.insert((u << 32) | v).second)
      ++h.distinct;
    else
      ++h.duplicates;
  }
  return h;
}

std::vector<std::uint32_t> degree_histogram(const EdgeList& el) {
  std::vector<std::uint32_t> deg(el.n, 0);
  for (const Edge& e : el.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

OwnerLoadStats owner_load_stats(const EdgeList& el,
                                const partition::Partitioning& part) {
  OwnerLoadStats s;
  s.owners = static_cast<std::size_t>(part.num_threads());
  if (s.owners == 0 || el.n == 0) return s;
  std::vector<std::size_t> load(s.owners, 0);
  for (const Edge& e : el.edges) {
    ++load[static_cast<std::size_t>(part.owner_of(e.u))];
    ++load[static_cast<std::size_t>(part.owner_of(e.v))];
  }
  std::size_t total = 0;
  for (const std::size_t l : load) {
    s.max_edge_load = std::max(s.max_edge_load, l);
    total += l;
  }
  s.mean_edge_load =
      static_cast<double>(total) / static_cast<double>(s.owners);
  if (s.mean_edge_load > 0.0)
    s.max_over_mean = static_cast<double>(s.max_edge_load) / s.mean_edge_load;
  if (total > 0)
    s.hot_share =
        static_cast<double>(s.max_edge_load) / static_cast<double>(total);
  return s;
}

}  // namespace pgraph::graph
