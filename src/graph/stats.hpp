#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioning.hpp"

namespace pgraph::graph {

/// Descriptive statistics of a graph — used by the examples and by tests
/// that check generator families have the shapes the paper relies on
/// (random: concentrated degrees; hybrid: Theta(sqrt(n)) hubs).
struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double variance = 0.0;
  std::size_t isolated = 0;  ///< degree-0 vertices

  /// Histogram over log2 buckets: bucket k counts vertices with degree in
  /// [2^k, 2^(k+1)); bucket 0 additionally holds degree-1.
  std::vector<std::size_t> log2_histogram;
};

DegreeStats degree_stats(const EdgeList& el);

/// Gini coefficient of the degree distribution in [0, 1]: 0 = perfectly
/// even (regular graph), -> 1 = a few hubs hold all the edges.  Random
/// graphs sit low; scale-free families sit markedly higher.
double degree_gini(const EdgeList& el);

/// Count of distinct undirected edges (duplicates and orientation
/// collapsed) and of self loops — generator hygiene checks.
struct EdgeHygiene {
  std::size_t distinct = 0;
  std::size_t duplicates = 0;
  std::size_t self_loops = 0;
};
EdgeHygiene edge_hygiene(const EdgeList& el);

/// One-pass per-vertex degree histogram (the weights the degree-aware
/// partitioning cuts on; 32-bit is plenty for the modeled graph sizes).
std::vector<std::uint32_t> degree_histogram(const EdgeList& el);

/// How evenly a distribution policy spreads edge-endpoint load over owner
/// threads.  "Load" of owner t = number of edge endpoints whose vertex t
/// owns — the requests t serves in the getd/setd collectives, i.e. its NIC
/// share under the paper's coalesced exchange.  Reported as schema-v1 bench
/// JSON extras (skew_*) and gated by bench_diff like every other extra.
struct OwnerLoadStats {
  std::size_t owners = 0;           ///< thread count of the policy
  std::size_t max_edge_load = 0;    ///< hottest owner's endpoint count
  double mean_edge_load = 0.0;      ///< 2m / s
  double max_over_mean = 0.0;       ///< hot-owner skew factor (1.0 = even)
  double hot_share = 0.0;           ///< hottest owner's fraction of 2m
};
OwnerLoadStats owner_load_stats(const EdgeList& el,
                                const partition::Partitioning& part);

}  // namespace pgraph::graph
