#include "graph/edge_list.hpp"

// with_random_weights lives in generators.cpp (it shares the RNG helpers);
// this TU exists so the graph library always has at least one object file
// even if generators are split out later.
