#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/rng.hpp"

namespace pgraph::graph {

namespace {

/// Pack an unordered vertex pair into a set key.  Requires ids < 2^32.
std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (u << 32) | v;
}

}  // namespace

WEdgeList with_random_weights(const EdgeList& el, std::uint64_t seed,
                              Weight max_w) {
  WEdgeList wl;
  wl.n = el.n;
  wl.edges.reserve(el.edges.size());
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    std::uint64_t st = seed ^ (0x51ed270b2f6c92b5ULL * (i + 1));
    const Weight w = splitmix64(st) % max_w;
    wl.edges.push_back({el.edges[i].u, el.edges[i].v, w});
  }
  return wl;
}

EdgeList random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("random_graph: need n >= 2");
  if (n > (1ULL << 32)) throw std::invalid_argument("random_graph: n too large");
  const double max_edges = 0.5 * static_cast<double>(n) *
                           static_cast<double>(n - 1);
  if (static_cast<double>(m) > max_edges)
    throw std::invalid_argument("random_graph: m exceeds simple-graph bound");

  EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  Xoshiro256 rng(seed);
  while (el.edges.size() < m) {
    const VertexId u = rng.next_below(n);
    const VertexId v = rng.next_below(n);
    if (u == v) continue;
    if (!seen.insert(pair_key(u, v)).second) continue;
    el.edges.push_back({u, v});
  }
  return el;
}

EdgeList rmat_graph(std::size_t n, std::size_t m, std::uint64_t seed,
                    const RmatParams& p) {
  if (n < 2) throw std::invalid_argument("rmat_graph: need n >= 2");
  std::size_t levels = 0;
  std::size_t pot = 1;
  while (pot < n) {
    pot <<= 1;
    ++levels;
  }
  const double d = 1.0 - p.a - p.b - p.c;
  if (p.a < 0 || p.b < 0 || p.c < 0 || d < 0)
    throw std::invalid_argument("rmat_graph: invalid quadrant probabilities");

  EdgeList el;
  el.n = pot;
  el.edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  if (p.dedupe) seen.reserve(m * 2);
  Xoshiro256 rng(seed);
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  while (el.edges.size() < m) {
    VertexId u = 0, v = 0;
    for (std::size_t l = 0; l < levels; ++l) {
      const double r = rng.next_double();
      // Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
      if (r < p.a) {
      } else if (r < ab) {
        v |= (1ULL << l);
      } else if (r < abc) {
        u |= (1ULL << l);
      } else {
        u |= (1ULL << l);
        v |= (1ULL << l);
      }
    }
    if (u == v) continue;
    if (p.dedupe && !seen.insert(pair_key(u, v)).second) continue;
    el.edges.push_back({u, v});
  }
  return el;
}

EdgeList hybrid_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  if (n < 16) throw std::invalid_argument("hybrid_graph: need n >= 16");
  Xoshiro256 rng(seed);

  // Pick the 2*sqrt(n) core vertices at random (distinct).
  std::size_t core = 2 * static_cast<std::size_t>(std::max(
                             1.0, std::sqrt(static_cast<double>(n))));
  core = std::min(core, n);
  std::unordered_set<VertexId> core_set;
  core_set.reserve(core * 2);
  std::vector<VertexId> core_vs;
  core_vs.reserve(core);
  while (core_vs.size() < core) {
    const VertexId v = rng.next_below(n);
    if (core_set.insert(v).second) core_vs.push_back(v);
  }

  EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);

  // Scale-free core: preferential attachment (Barabasi-Albert style) using
  // the repeated-endpoints trick.  With `links` attachments per arriving
  // vertex the max degree is ~ links * sqrt(core); links is scaled so hubs
  // reach the Theta(sqrt(n)) degree the paper relies on for its
  // load-balance discussion.
  const std::size_t links = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::sqrt(std::sqrt(
             static_cast<double>(n)))));
  std::vector<VertexId> endpoints;
  endpoints.reserve(core * 2 * links);
  if (core >= 2) {
    // Seed with one edge between the first two core vertices.
    if (seen.insert(pair_key(core_vs[0], core_vs[1])).second) {
      el.edges.push_back({core_vs[0], core_vs[1]});
      endpoints.push_back(core_vs[0]);
      endpoints.push_back(core_vs[1]);
    }
    for (std::size_t i = 2; i < core && el.edges.size() < m; ++i) {
      const VertexId nu = core_vs[i];
      for (std::size_t link = 0; link < links && el.edges.size() < m;
           ++link) {
        const VertexId tgt = endpoints[rng.next_below(endpoints.size())];
        if (tgt == nu) continue;
        if (!seen.insert(pair_key(nu, tgt)).second) continue;
        el.edges.push_back({nu, tgt});
        endpoints.push_back(nu);
        endpoints.push_back(tgt);
      }
    }
  }

  // Random fill over all n vertices until m edges.
  while (el.edges.size() < m) {
    const VertexId u = rng.next_below(n);
    const VertexId v = rng.next_below(n);
    if (u == v) continue;
    if (!seen.insert(pair_key(u, v)).second) continue;
    el.edges.push_back({u, v});
  }
  return el;
}

EdgeList path_graph(std::size_t n) {
  EdgeList el;
  el.n = n;
  if (n >= 2) el.edges.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    el.edges.push_back({i, i + 1});
  return el;
}

EdgeList cycle_graph(std::size_t n) {
  EdgeList el = path_graph(n);
  if (n >= 3) el.edges.push_back({n - 1, 0});
  return el;
}

EdgeList star_graph(std::size_t n) {
  EdgeList el;
  el.n = n;
  if (n >= 2) el.edges.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) el.edges.push_back({0, i});
  return el;
}

EdgeList grid_graph(std::size_t rows, std::size_t cols) {
  EdgeList el;
  el.n = rows * cols;
  el.edges.reserve(2 * rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) el.edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return el;
}

EdgeList disjoint_cliques(std::size_t k, std::size_t sz) {
  EdgeList el;
  el.n = k * sz;
  el.edges.reserve(k * sz * (sz - 1) / 2);
  for (std::size_t g = 0; g < k; ++g) {
    const std::size_t base = g * sz;
    for (std::size_t i = 0; i < sz; ++i)
      for (std::size_t j = i + 1; j < sz; ++j)
        el.edges.push_back({base + i, base + j});
  }
  return el;
}

TemporalStream temporal_stream(std::size_t n, std::size_t n_ops,
                               std::uint64_t seed,
                               const TemporalStreamParams& p) {
  if (n < 2) throw std::invalid_argument("temporal_stream: need n >= 2");
  if (p.delete_frac < 0.0 || p.delete_frac >= 1.0)
    throw std::invalid_argument("temporal_stream: delete_frac in [0, 1)");

  TemporalStream ts;
  switch (p.base) {
    case TemporalBase::Rmat: {
      RmatParams rp = p.rmat;
      rp.dedupe = true;  // deletions need a simple graph to name edges in
      ts.base = rmat_graph(n, p.base_edges, seed, rp);
      break;
    }
    case TemporalBase::Hybrid:
      ts.base = hybrid_graph(n, p.base_edges, seed);
      break;
    case TemporalBase::Random:
      ts.base = random_graph(n, p.base_edges, seed);
      break;
  }
  const std::size_t nv = ts.base.n;  // Rmat rounds n up to a power of two

  // Live edge set: a vector for O(1) uniform picks (swap-remove on erase)
  // plus a key set so inserts keep it a simple graph.
  std::vector<Edge> live = ts.base.edges;
  std::unordered_set<std::uint64_t> live_keys;
  live_keys.reserve((live.size() + n_ops) * 2);
  for (const Edge& e : live) live_keys.insert(pair_key(e.u, e.v));

  // A distinct stream from the base graph's so growing the base does not
  // reshuffle the updates.
  Xoshiro256 rng(seed ^ 0x6a09e667f3bcc908ULL);
  std::size_t levels = 0;
  while ((1ULL << levels) < nv) ++levels;
  const double ab = p.rmat.a + p.rmat.b;
  const double abc = ab + p.rmat.c;
  const auto draw_pair = [&](VertexId& u, VertexId& v) {
    if (p.base == TemporalBase::Rmat) {
      u = v = 0;
      for (std::size_t l = 0; l < levels; ++l) {
        const double r = rng.next_double();
        if (r < p.rmat.a) {
        } else if (r < ab) {
          v |= (1ULL << l);
        } else if (r < abc) {
          u |= (1ULL << l);
        } else {
          u |= (1ULL << l);
          v |= (1ULL << l);
        }
      }
    } else {
      u = rng.next_below(nv);
      v = rng.next_below(nv);
    }
  };

  ts.updates.reserve(n_ops);
  std::uint64_t t = 0;
  std::size_t rejects = 0;
  while (ts.updates.size() < n_ops) {
    if (p.delete_frac > 0.0 && !live.empty() &&
        rng.next_double() < p.delete_frac) {
      const std::size_t k = rng.next_below(live.size());
      const Edge e = live[k];
      live[k] = live.back();
      live.pop_back();
      live_keys.erase(pair_key(e.u, e.v));
      ts.updates.push_back({e.u, e.v, ++t, UpdateKind::Erase});
      continue;
    }
    VertexId u = 0, v = 0;
    draw_pair(u, v);
    if (u == v || !live_keys.insert(pair_key(u, v)).second) {
      if (++rejects > 64 * (n_ops + 16))
        throw std::runtime_error("temporal_stream: edge space saturated");
      continue;
    }
    live.push_back({u, v});
    ts.updates.push_back({u, v, ++t, UpdateKind::Insert});
  }
  return ts;
}

std::size_t max_degree(const EdgeList& el) {
  std::vector<std::size_t> deg(el.n, 0);
  for (const Edge& e : el.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  std::size_t mx = 0;
  for (std::size_t d : deg) mx = std::max(mx, d);
  return mx;
}

}  // namespace pgraph::graph
