#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace pgraph::graph {

/// Random graph: "created by randomly adding m unique edges to the vertex
/// set" (Section III).  No self loops, no duplicate (unordered) edges.
/// Requires m <= n*(n-1)/2.
EdgeList random_graph(std::size_t n, std::size_t m, std::uint64_t seed);

/// R-MAT recursive-matrix generator (Chakrabarti, Zhan, Faloutsos).
/// `n` is rounded up to a power of two.  Self loops are rejected;
/// duplicates are kept unless `dedupe` (the R-MAT literature keeps them).
/// The paper notes R-MAT graphs "contain artificial locality" — see
/// permute.hpp for the random relabeling that removes it.
struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool dedupe = false;
};
EdgeList rmat_graph(std::size_t n, std::size_t m, std::uint64_t seed,
                    const RmatParams& params = {});

/// The paper's hybrid generator (Section III): select 2*sqrt(n) vertices at
/// random, build a scale-free (preferential-attachment) graph on them, then
/// add random edges over all n vertices until m edges exist.  The result
/// has no locality pattern but contains hubs of degree O(sqrt(n)).
EdgeList hybrid_graph(std::size_t n, std::size_t m, std::uint64_t seed);

/// Deterministic structured graphs for tests and examples.
EdgeList path_graph(std::size_t n);
EdgeList cycle_graph(std::size_t n);
EdgeList star_graph(std::size_t n);
/// `rows x cols` 4-neighbour grid.
EdgeList grid_graph(std::size_t rows, std::size_t cols);
/// Union of `k` disjoint cliques of `sz` vertices each.
EdgeList disjoint_cliques(std::size_t k, std::size_t sz);

/// Maximum degree of the graph (diagnostic; hybrid graphs should show
/// Theta(sqrt(n)) hubs).
std::size_t max_degree(const EdgeList& el);

/// Which distribution the temporal stream's base graph and inserted edges
/// are drawn from.
enum class TemporalBase {
  Random,  ///< uniform random simple graph
  Rmat,    ///< R-MAT (deduplicated so deletions are well defined)
  Hybrid,  ///< the paper's hybrid generator
};

struct TemporalStreamParams {
  TemporalBase base = TemporalBase::Random;
  std::size_t base_edges = 0;   ///< edges materialized before the stream
  double delete_frac = 0.0;     ///< probability an update is a deletion
  RmatParams rmat;              ///< quadrant probabilities for Rmat
};

/// A reproducible dynamic-graph workload: a base graph plus `n_ops`
/// timestamped updates over it.
struct TemporalStream {
  EdgeList base;                         ///< edge set at ts = 0
  std::vector<EdgeUpdate> updates;       ///< strictly increasing ts
};

/// Temporal edge-stream generator: same seed -> same base graph and same
/// update sequence, across runs and thread counts (fully sequential).
/// Inserts are drawn from the base distribution (self loops and edges
/// already live are rejected, keeping the live set a simple graph);
/// deletions pick a uniformly random live edge, so every Erase names an
/// edge that exists at its timestamp.
TemporalStream temporal_stream(std::size_t n, std::size_t n_ops,
                               std::uint64_t seed,
                               const TemporalStreamParams& params = {});

}  // namespace pgraph::graph
