#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace pgraph::graph {

/// Edge-list graph representation — the input format of CC and MST in the
/// paper ("CC takes an edge list as input").
struct EdgeList {
  std::size_t n = 0;           ///< number of vertices (ids in [0, n))
  std::vector<Edge> edges;

  std::size_t m() const { return edges.size(); }
};

/// Weighted edge list (MST input).
struct WEdgeList {
  std::size_t n = 0;
  std::vector<WEdge> edges;

  std::size_t m() const { return edges.size(); }

  /// Drop weights.
  EdgeList unweighted() const {
    EdgeList el;
    el.n = n;
    el.edges.reserve(edges.size());
    for (const WEdge& e : edges) el.edges.push_back({e.u, e.v});
    return el;
  }
};

/// Attach deterministic pseudo-random weights in [0, max_w) to an edge list
/// ("edge weights randomly chosen between 0 and the maximum integer
/// number", Section VI).  Weight depends only on (seed, edge index) so the
/// weighted graph is identical for any thread count.
WEdgeList with_random_weights(const EdgeList& el, std::uint64_t seed,
                              Weight max_w = (1ULL << 31));

/// Evenly split the half-open range [0, m) into `parts` chunks; returns the
/// chunk of `part` ("we partition work by dividing the edges evenly instead
/// of the vertices", Section V).
inline std::pair<std::size_t, std::size_t> even_chunk(std::size_t m,
                                                      int parts, int part) {
  const std::size_t lo =
      m * static_cast<std::size_t>(part) / static_cast<std::size_t>(parts);
  const std::size_t hi = m * (static_cast<std::size_t>(part) + 1) /
                         static_cast<std::size_t>(parts);
  return {lo, hi};
}

template <class E>
std::span<const E> edge_chunk(const std::vector<E>& edges, int parts,
                              int part) {
  auto [lo, hi] = even_chunk(edges.size(), parts, part);
  return std::span<const E>(edges.data() + lo, hi - lo);
}

}  // namespace pgraph::graph
