#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/edge_list.hpp"

namespace pgraph::graph {

/// Outcome of one certifying output verifier (docs/ROBUSTNESS.md,
/// "At-rest integrity").  Certifiers are host-side sequential code run
/// *after* a parallel kernel: they cross-check the published answer against
/// the input with independent logic, so silent data corruption that slipped
/// past the scrubber still cannot reach a consumer unflagged.
struct CertifyReport {
  bool ok = true;
  std::uint64_t checks = 0;    ///< individual assertions evaluated
  std::uint64_t failures = 0;  ///< assertions that failed
  std::string detail;          ///< first failure, human-readable

  void fail(std::string why) {
    ok = false;
    ++failures;
    if (detail.empty()) detail = std::move(why);
  }
};

/// Certify a connected-components labelling.  Checks, in order:
///  - shape: one label per vertex, every label in range;
///  - rooted forest: labels converged to rooted stars
///    (labels[labels[v]] == labels[v]) with monotone roots
///    (labels[v] <= v, the CC hooking invariant);
///  - component count: #{v : labels[v] == v} == num_components;
///  - edge consistency: every edge in a deterministic sample of
///    `edge_samples` edges (seed-driven) has both endpoints under the same
///    label.  edge_samples == 0 checks ALL edges.
CertifyReport certify_cc(const EdgeList& el,
                         std::span<const std::uint64_t> labels,
                         std::uint64_t num_components, std::uint64_t seed,
                         std::size_t edge_samples);

/// Certify a spanning-forest / MST answer (edge ids into `el`).  Checks:
///  - shape: ids in range, no duplicates;
///  - acyclic: union-find over the tree edges never closes a cycle;
///  - spanning: after the union pass, every graph edge connects vertices
///    of the same tree (the forest is maximal — no cut is left uncrossed);
///  - weight cross-sum: the tree edges' weights sum to total_weight;
///  - cycle property spot check: for a deterministic sample of
///    `cycle_samples` non-tree edges, the edge's packed key
///    (weight << 32 | id) strictly exceeds every key on the tree path
///    between its endpoints (ties broken by id, matching mst_pgas).
CertifyReport certify_mst(const WEdgeList& el,
                          std::span<const std::uint64_t> mst_edge_ids,
                          std::uint64_t total_weight, std::uint64_t seed,
                          std::size_t cycle_samples);

}  // namespace pgraph::graph
