#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pgraph::graph {

namespace {
constexpr std::uint64_t kBinMagic = 0x5047524148303031ULL;  // "PGRAH001"
}

void write_dimacs(std::ostream& os, const EdgeList& el) {
  os << "c pgas-graph edge list\n";
  os << "p edge " << el.n << ' ' << el.m() << '\n';
  for (const Edge& e : el.edges)
    os << "e " << (e.u + 1) << ' ' << (e.v + 1) << '\n';
}

void write_dimacs(std::ostream& os, const WEdgeList& el) {
  os << "c pgas-graph weighted edge list\n";
  os << "p sp " << el.n << ' ' << el.m() << '\n';
  for (const WEdge& e : el.edges)
    os << "e " << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.w << '\n';
}

namespace {

template <class EL, bool Weighted>
EL read_dimacs_impl(std::istream& is) {
  EL el;
  std::string line;
  bool have_header = false;
  std::size_t expect_m = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string fmt;
      std::size_t n = 0, m = 0;
      ls >> fmt >> n >> m;
      if (!ls) throw std::runtime_error("dimacs: malformed problem line");
      el.n = n;
      expect_m = m;
      el.edges.reserve(m);
      have_header = true;
    } else if (kind == 'e') {
      if (!have_header) throw std::runtime_error("dimacs: edge before header");
      std::uint64_t u = 0, v = 0, w = 0;
      if constexpr (Weighted) {
        ls >> u >> v >> w;
      } else {
        ls >> u >> v;
      }
      if (!ls || u == 0 || v == 0 || u > el.n || v > el.n)
        throw std::runtime_error("dimacs: malformed edge line");
      if constexpr (Weighted) {
        el.edges.push_back({u - 1, v - 1, w});
      } else {
        el.edges.push_back({u - 1, v - 1});
      }
    } else {
      throw std::runtime_error("dimacs: unknown line kind");
    }
  }
  if (!have_header) throw std::runtime_error("dimacs: missing problem line");
  if (el.edges.size() != expect_m)
    throw std::runtime_error("dimacs: edge count mismatch");
  return el;
}

}  // namespace

EdgeList read_dimacs(std::istream& is) {
  return read_dimacs_impl<EdgeList, false>(is);
}

WEdgeList read_dimacs_weighted(std::istream& is) {
  return read_dimacs_impl<WEdgeList, true>(is);
}

void write_binary(const std::string& path, const WEdgeList& el) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_binary: cannot open " + path);
  const std::uint64_t n = el.n, m = el.m();
  os.write(reinterpret_cast<const char*>(&kBinMagic), sizeof(kBinMagic));
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  os.write(reinterpret_cast<const char*>(el.edges.data()),
           static_cast<std::streamsize>(m * sizeof(WEdge)));
  if (!os) throw std::runtime_error("write_binary: write failed");
}

WEdgeList read_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_binary: cannot open " + path);
  std::uint64_t magic = 0, n = 0, m = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!is || magic != kBinMagic)
    throw std::runtime_error("read_binary: bad header in " + path);
  WEdgeList el;
  el.n = n;
  el.edges.resize(m);
  is.read(reinterpret_cast<char*>(el.edges.data()),
          static_cast<std::streamsize>(m * sizeof(WEdge)));
  if (!is) throw std::runtime_error("read_binary: truncated file " + path);
  return el;
}

}  // namespace pgraph::graph
