#include "graph/csr.hpp"

namespace pgraph::graph {

namespace {

template <class E>
void build(std::size_t n, const std::vector<E>& edges,
           std::vector<std::size_t>& offsets, std::vector<VertexId>& targets,
           std::vector<Weight>* weights) {
  offsets.assign(n + 1, 0);
  for (const E& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  targets.resize(offsets[n]);
  if (weights) weights->resize(offsets[n]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const E& e : edges) {
    targets[cursor[e.u]] = e.v;
    targets[cursor[e.v]] = e.u;
    if (weights) {
      if constexpr (requires { e.w; }) {
        (*weights)[cursor[e.u]] = e.w;
        (*weights)[cursor[e.v]] = e.w;
      }
    }
    ++cursor[e.u];
    ++cursor[e.v];
  }
}

}  // namespace

Csr::Csr(const EdgeList& el) { build(el.n, el.edges, offsets_, targets_, nullptr); }

Csr::Csr(const WEdgeList& el) {
  build(el.n, el.edges, offsets_, targets_, &weights_);
}

}  // namespace pgraph::graph
