#pragma once

#include <cstdint>

namespace pgraph::graph {

using VertexId = std::uint64_t;
using EdgeId = std::uint64_t;
using Weight = std::uint64_t;

/// Undirected edge; (u, v) and (v, u) denote the same edge.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Weighted undirected edge.
struct WEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 0;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};

}  // namespace pgraph::graph
