#pragma once

#include <cstdint>

namespace pgraph::graph {

using VertexId = std::uint64_t;
using EdgeId = std::uint64_t;
using Weight = std::uint64_t;

/// Undirected edge; (u, v) and (v, u) denote the same edge.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Weighted undirected edge.
struct WEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 0;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};

/// What a timestamped stream update does to the dynamic edge set.
enum class UpdateKind : std::uint8_t {
  Insert = 0,  ///< add edge {u, v}
  Erase = 1,   ///< remove edge {u, v} (must currently exist)
};

/// One timestamped update of a dynamic graph (src/stream/).  Timestamps
/// are strictly increasing within a stream, so a batch cut at any point
/// yields a well-defined materialized edge set.
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  std::uint64_t ts = 0;
  UpdateKind kind = UpdateKind::Insert;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

}  // namespace pgraph::graph
