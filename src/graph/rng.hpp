#pragma once

#include <cstdint>

namespace pgraph::graph {

/// splitmix64 — used to seed xoshiro and as a cheap stateless hash.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality deterministic PRNG.
///
/// Determinism matters here beyond reproducibility of experiments: the
/// paper requires that the generated graph be identical regardless of the
/// number of threads used (Section III), so all generators are sequential
/// and seed-driven.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) {
    // 128-bit multiply keeps the distribution uniform enough for graph
    // generation; the slight bias of the plain reduction is < 2^-40 for
    // our bounds, but we do one rejection round for cleanliness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pgraph::graph
