#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"

namespace pgraph::graph {

/// Compressed-sparse-row adjacency built from an undirected edge list
/// (each edge appears in both endpoints' rows).  Used by the sequential
/// baselines (BFS connected components, Prim's MST).
class Csr {
 public:
  explicit Csr(const EdgeList& el);
  Csr(const WEdgeList& el);

  std::size_t n() const { return offsets_.size() - 1; }
  std::size_t directed_edges() const { return targets_.size(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  /// Weights parallel to neighbors(); empty if built unweighted.
  std::span<const Weight> weights(VertexId v) const {
    if (weights_.empty()) return {};
    return std::span<const Weight>(weights_.data() + offsets_[v],
                                   offsets_[v + 1] - offsets_[v]);
  }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<Weight> weights_;
};

}  // namespace pgraph::graph
