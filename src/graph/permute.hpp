#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace pgraph::graph {

/// Deterministic random permutation of [0, n) (Fisher-Yates driven by a
/// seeded xoshiro).  The paper requires that "the permutations generated
/// with different number of threads be identical"; a sequential seeded
/// shuffle trivially has this property.
std::vector<VertexId> random_permutation(std::size_t n, std::uint64_t seed);

/// Relabel vertices of `el` through `perm` (new id of v is perm[v]).
/// Used to destroy the artificial locality of R-MAT graphs (Section III).
EdgeList relabel(const EdgeList& el, const std::vector<VertexId>& perm);
WEdgeList relabel(const WEdgeList& el, const std::vector<VertexId>& perm);

/// Verify `perm` is a permutation of [0, n).
bool is_permutation_of_iota(const std::vector<VertexId>& perm);

}  // namespace pgraph::graph
