#include "graph/certify.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/rng.hpp"

namespace pgraph::graph {

namespace {

std::string at_vertex(const char* what, std::uint64_t v) {
  return std::string(what) + " at vertex " + std::to_string(v);
}

std::string at_edge(const char* what, std::uint64_t id) {
  return std::string(what) + " at edge " + std::to_string(id);
}

/// Plain union-find with path halving (host-side checker, not modeled).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns false if x and y were already in the same set.
  bool unite(std::size_t x, std::size_t y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    parent_[std::max(x, y)] = std::min(x, y);
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CertifyReport certify_cc(const EdgeList& el,
                         std::span<const std::uint64_t> labels,
                         std::uint64_t num_components, std::uint64_t seed,
                         std::size_t edge_samples) {
  CertifyReport rep;
  const std::size_t n = el.n;

  ++rep.checks;
  if (labels.size() != n) {
    rep.fail("label vector size " + std::to_string(labels.size()) +
             " != n " + std::to_string(n));
    return rep;  // nothing below is meaningful
  }

  // Rooted forest shape: in-range, monotone, converged to stars.
  std::uint64_t roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    ++rep.checks;
    const std::uint64_t l = labels[v];
    if (l >= n) {
      rep.fail(at_vertex("label out of range", v));
      continue;
    }
    if (l > v) {
      rep.fail(at_vertex("label exceeds vertex id (monotone hooking)", v));
      continue;
    }
    if (labels[l] != l) {
      rep.fail(at_vertex("label is not a root (not a rooted star)", v));
      continue;
    }
    if (l == v) ++roots;
  }

  ++rep.checks;
  if (rep.failures == 0 && roots != num_components)
    rep.fail("root count " + std::to_string(roots) +
             " != reported num_components " +
             std::to_string(num_components));

  // Edge consistency on a deterministic sample (0 = exhaustive).
  const std::size_t m = el.m();
  if (m > 0 && rep.failures == 0) {
    Xoshiro256 rng(seed ^ 0x63657274ULL /* "cert" */);
    const std::size_t trials =
        edge_samples == 0 ? m : std::min(edge_samples, m);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::size_t k = edge_samples == 0 ? t : rng.next_below(m);
      const Edge& e = el.edges[k];
      ++rep.checks;
      if (e.u >= n || e.v >= n) {
        rep.fail(at_edge("endpoint out of range", k));
        continue;
      }
      if (labels[e.u] != labels[e.v])
        rep.fail(at_edge("endpoints carry different labels", k));
    }
  }
  return rep;
}

CertifyReport certify_mst(const WEdgeList& el,
                          std::span<const std::uint64_t> mst_edge_ids,
                          std::uint64_t total_weight, std::uint64_t seed,
                          std::size_t cycle_samples) {
  CertifyReport rep;
  const std::size_t n = el.n;
  const std::size_t m = el.m();

  // Shape: ids in range and unique.
  std::vector<unsigned char> in_tree(m, 0);
  for (std::uint64_t id : mst_edge_ids) {
    ++rep.checks;
    if (id >= m) {
      rep.fail(at_edge("tree edge id out of range", id));
      return rep;
    }
    if (in_tree[id]) {
      rep.fail(at_edge("duplicate tree edge", id));
      return rep;
    }
    in_tree[id] = 1;
  }

  // Acyclic + weight cross-sum in one pass.
  UnionFind uf(n);
  std::uint64_t weight_sum = 0;
  for (std::uint64_t id : mst_edge_ids) {
    const WEdge& e = el.edges[id];
    ++rep.checks;
    if (e.u >= n || e.v >= n) {
      rep.fail(at_edge("tree edge endpoint out of range", id));
      return rep;
    }
    if (!uf.unite(e.u, e.v)) {
      rep.fail(at_edge("tree edge closes a cycle", id));
      return rep;
    }
    weight_sum += e.w;
  }
  ++rep.checks;
  if (weight_sum != total_weight)
    rep.fail("tree weight cross-sum " + std::to_string(weight_sum) +
             " != reported total " + std::to_string(total_weight));

  // Spanning / maximal: no graph edge may cross between two trees.
  for (std::size_t k = 0; k < m; ++k) {
    const WEdge& e = el.edges[k];
    ++rep.checks;
    if (e.u >= n || e.v >= n) {
      rep.fail(at_edge("endpoint out of range", k));
      return rep;
    }
    if (uf.find(e.u) != uf.find(e.v)) {
      rep.fail(at_edge("forest is not maximal: edge crosses trees", k));
      return rep;
    }
  }

  // Cycle-property spot check on sampled non-tree edges: in mst_pgas's
  // deterministic tie order (key = weight << 32 | id), a non-tree edge must
  // be the strict maximum on the tree cycle it closes.
  if (cycle_samples > 0 && n > 0 && rep.failures == 0) {
    // Forest adjacency: vertex -> (neighbour, key).
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> adj(n);
    for (std::uint64_t id : mst_edge_ids) {
      const WEdge& e = el.edges[id];
      const std::uint64_t key = (e.w << 32) | id;
      adj[e.u].push_back({e.v, key});
      adj[e.v].push_back({e.u, key});
    }
    std::vector<std::uint64_t> prev_key(n, 0);
    std::vector<std::uint64_t> prev_vertex(n, 0);
    std::vector<unsigned char> seen(n, 0);
    std::vector<std::uint64_t> stack;
    Xoshiro256 rng(seed ^ 0x6d737463ULL /* "mstc" */);
    for (std::size_t t = 0; t < cycle_samples && m > 0; ++t) {
      const std::size_t k = rng.next_below(m);
      if (in_tree[k]) continue;  // sample is over non-tree edges only
      const WEdge& e = el.edges[k];
      if (e.u == e.v) continue;  // self loop closes no real cycle
      // DFS from u to v through the forest, tracking the max key by
      // back-walking the parent chain once v is reached.
      std::fill(seen.begin(), seen.end(), 0);
      stack.clear();
      stack.push_back(e.u);
      seen[e.u] = 1;
      while (!stack.empty()) {
        const std::uint64_t x = stack.back();
        stack.pop_back();
        if (x == e.v) break;
        for (const auto& [y, key] : adj[x]) {
          if (seen[y]) continue;
          seen[y] = 1;
          prev_vertex[y] = x;
          prev_key[y] = key;
          stack.push_back(y);
        }
      }
      ++rep.checks;
      if (!seen[e.v]) {
        rep.fail(at_edge("no tree path between endpoints", k));
        continue;
      }
      std::uint64_t path_max = 0;
      for (std::uint64_t x = e.v; x != e.u; x = prev_vertex[x])
        path_max = std::max(path_max, prev_key[x]);
      const std::uint64_t ekey = (e.w << 32) | k;
      if (ekey <= path_max)
        rep.fail(at_edge("cycle property violated: non-tree edge is not "
                         "the max of its cycle",
                         k));
    }
  }
  return rep;
}

}  // namespace pgraph::graph
