#include "graph/permute.hpp"

#include <numeric>

#include "graph/rng.hpp"

namespace pgraph::graph {

std::vector<VertexId> random_permutation(std::size_t n, std::uint64_t seed) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

EdgeList relabel(const EdgeList& el, const std::vector<VertexId>& perm) {
  EdgeList out;
  out.n = el.n;
  out.edges.reserve(el.edges.size());
  for (const Edge& e : el.edges)
    out.edges.push_back({perm[e.u], perm[e.v]});
  return out;
}

WEdgeList relabel(const WEdgeList& el, const std::vector<VertexId>& perm) {
  WEdgeList out;
  out.n = el.n;
  out.edges.reserve(el.edges.size());
  for (const WEdge& e : el.edges)
    out.edges.push_back({perm[e.u], perm[e.v], e.w});
  return out;
}

bool is_permutation_of_iota(const std::vector<VertexId>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const VertexId v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace pgraph::graph
