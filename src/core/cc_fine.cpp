#include "core/cc_fine.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "collectives/crcw.hpp"
#include "machine/phase_stats.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"

namespace pgraph::core {

using machine::Cat;

ParCCResult cc_fine_grained(pgas::Runtime& rt, const graph::EdgeList& el,
                            int max_iters) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();

  const std::size_t n = el.n;
  if (max_iters <= 0)
    max_iters = 4 * (n < 2 ? 1 : std::bit_width(n)) + 64;

  pgas::GlobalArray<std::uint64_t> d(rt, n);
  std::atomic<int> iterations{0};
  std::atomic<bool> overran{false};

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int s = ctx.nthreads();
    const int me = ctx.id();

    // Labels only ever shrink: both the grafts (put_min) and the shortcut
    // sweeps (store of D[D[i]] <= D[i]) are priority-CRCW writes, so the
    // whole kernel runs under one declared min-combine window — the
    // "benign races" of Figure 1, made explicit for the access checker.
    coll::CrcwRegion<std::uint64_t> crcw(d, coll::CrcwMode::Min);

    // D[i] = i  (parallel over blocks).
    {
      auto blk = d.local_span(me);
      const std::uint64_t base = d.block_begin(me);
      for (std::size_t k = 0; k < blk.size(); ++k) blk[k] = base + k;
      ctx.mem_seq(blk.size() * sizeof(std::uint64_t), Cat::Work);
    }
    ctx.barrier();

    const auto chunk = graph::edge_chunk(el.edges, s, me);

    int it = 0;
    for (;; ++it) {
      if (it >= max_iters) {
        overran.store(true, std::memory_order_relaxed);
        break;
      }

      // --- graft: for each edge, hook the larger label under the smaller.
      bool grafted = false;
      for (const graph::Edge& e : chunk) {
        const std::uint64_t du = d.get(ctx, e.u);
        const std::uint64_t dv = d.get(ctx, e.v);
        if (du < dv) {
          d.put_min(ctx, dv, du);
          grafted = true;
        } else if (dv < du) {
          d.put_min(ctx, du, dv);
          grafted = true;
        }
      }
      ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);
      ctx.compute(chunk.size() * 4, Cat::Work);
      ctx.barrier();

      // --- shortcut: asynchronously collapse the owned block to rooted
      // stars, exactly as Figure 1 writes it — "setting D[i] <- D[D[i]]
      // repeatedly for all i" in full sweeps until the block reaches a
      // fixpoint.  Labels only shrink, so this terminates under
      // concurrent grafting; each sweep is n/s streamed reads/writes of
      // D[i] plus n/s irregular accesses for D[D[i]].
      {
        auto blk = d.local_span(me);
        const std::uint64_t base = d.block_begin(me);
        bool sweep_changed = true;
        while (sweep_changed) {
          sweep_changed = false;
          for (std::size_t k = 0; k < blk.size(); ++k) {
            const std::uint64_t cur = d.load_relaxed(base + k);
            const std::uint64_t p = d.get(ctx, cur);
            if (p != cur) {
              d.store_relaxed(base + k, p);
              sweep_changed = true;
            }
          }
          ctx.mem_seq(blk.size() * 2 * sizeof(std::uint64_t), Cat::Work);
        }
      }

      if (!pgas::allreduce_or(ctx, grafted)) break;
    }
    if (me == 0) iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (overran.load())
    throw std::runtime_error("cc_fine_grained: exceeded iteration bound");

  ParCCResult r;
  r.labels.assign(d.raw_all().begin(), d.raw_all().end());
  r.num_components = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (r.labels[i] == i) ++r.num_components;
  r.iterations = iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::core
