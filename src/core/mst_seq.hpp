#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "machine/memory_model.hpp"

namespace pgraph::core {

/// Result of an MST (minimum spanning forest) computation.  For
/// disconnected graphs this is the minimum spanning forest: one tree per
/// component.
struct MstResult {
  std::vector<graph::EdgeId> edges;  ///< indices into the input edge list
  std::uint64_t total_weight = 0;
  double modeled_ns = 0.0;
};

/// Kruskal with a cache-friendly merge sort — the paper's best sequential
/// algorithm ("Kruskal's algorithm beats both the Prim's and Boruvka's
/// algorithms. We use the cache-friendly merge sort", Section VI).
MstResult mst_kruskal(const graph::WEdgeList& el,
                      const machine::MemoryModel* mem = nullptr);

/// Prim with a binary heap over CSR (sequential comparator).
MstResult mst_prim(const graph::WEdgeList& el,
                   const machine::MemoryModel* mem = nullptr);

/// Sequential Boruvka (sequential comparator).
MstResult mst_boruvka(const graph::WEdgeList& el,
                      const machine::MemoryModel* mem = nullptr);

/// Validate that `r` is a minimum spanning forest of `el`:
///  - edge ids are valid and distinct,
///  - the selected edges are acyclic,
///  - they connect exactly the connected components of `el`,
///  - total weight equals the (unique) minimum forest weight `expect_w`.
bool is_spanning_forest(const graph::WEdgeList& el, const MstResult& r);

}  // namespace pgraph::core
