#pragma once

#include <cstdint>
#include <vector>

#include "machine/phase_stats.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Cost/telemetry summary of one parallel run.
struct RunCosts {
  double modeled_ns = 0.0;  ///< BSP critical-path time from the cost model
  double wall_s = 0.0;      ///< real wall-clock of the simulation itself
  machine::PhaseStats breakdown;  ///< per-category, critical thread
  std::uint64_t messages = 0;       ///< total network messages
  std::uint64_t fine_messages = 0;  ///< fine-grained (non-coalesced) subset
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;

  double modeled_ms() const { return modeled_ns / 1e6; }
};

/// Result of a parallel connected-components run.
struct ParCCResult {
  std::vector<std::uint64_t> labels;
  std::uint64_t num_components = 0;
  int iterations = 0;
  RunCosts costs;
};

/// Result of a parallel MST run.
struct ParMstResult {
  std::vector<std::uint64_t> edges;  ///< edge ids of the spanning forest
  std::uint64_t total_weight = 0;
  int iterations = 0;
  RunCosts costs;
};

/// Snapshot the runtime's cost state into a RunCosts (call after rt.run();
/// pair with rt.reset_costs() before the run).
inline RunCosts collect_costs(pgas::Runtime& rt, double wall_s) {
  RunCosts c;
  c.modeled_ns = rt.modeled_time_ns();
  c.wall_s = wall_s;
  c.breakdown = rt.critical_stats();
  c.messages = rt.net().total_messages();
  c.fine_messages = rt.net().fine_messages();
  c.bytes = rt.net().total_bytes();
  c.barriers = rt.barriers_executed();
  return c;
}

}  // namespace pgraph::core
