#pragma once

#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Fine-grained (per-element) implementation of the Bader-Cong CC
/// algorithm: graft each edge's larger label under the smaller, then
/// asynchronously shortcut every vertex to its root; repeat until no graft
/// happens.
///
/// This single function implements *both* CC-SMP and CC-UPC-naive of the
/// paper, exactly as Figure 1 shows them to be "almost identical except for
/// the names of a few language constructs": run it on a single-node
/// topology and every access is a local memory access (CC-SMP); run it on
/// a cluster topology and the irregular accesses become fine-grained remote
/// messages (the naive CC-UPC whose performance Figure 2 shows to be ~3
/// orders of magnitude worse per processor).
///
/// `max_iters` == 0 picks a generous bound from the graph size; exceeding
/// it throws (the algorithm is expected to converge in O(log n) rounds).
ParCCResult cc_fine_grained(pgas::Runtime& rt, const graph::EdgeList& el,
                            int max_iters = 0);

/// Convenience wrappers with the paper's names.
inline ParCCResult cc_smp(pgas::Runtime& rt, const graph::EdgeList& el) {
  return cc_fine_grained(rt, el);
}
inline ParCCResult cc_naive_upc(pgas::Runtime& rt,
                                const graph::EdgeList& el) {
  return cc_fine_grained(rt, el);
}

}  // namespace pgraph::core
