#pragma once

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Options for the collective-based CC/SV implementations.
struct CcOptions {
  coll::CollectiveOptions coll = coll::CollectiveOptions::optimized();
  /// Filter out edges whose endpoints already share a component
  /// ("compact", Section V).
  bool compact = true;
  int max_iters = 0;  ///< 0 = auto bound
  /// At-rest integrity (docs/ROBUSTNESS.md): scrub the label array's
  /// resident partitions every k real loop trips (0 = off).  Honored by
  /// cc_coalesced (the checkpoint/restart variant); sv_coalesced ignores
  /// it.  With scrubbing on, fresh checkpoints and buddy mirrors are only
  /// taken on scrub-validated trips, so corruption can never be sealed
  /// into the very state a repair would restore from.
  int scrub_interval = 0;

  static CcOptions base() {
    CcOptions o;
    o.coll = coll::CollectiveOptions::base();
    o.compact = false;
    return o;
  }
  static CcOptions optimized(int tprime = 0) {
    CcOptions o;
    o.coll = coll::CollectiveOptions::optimized(tprime);
    o.compact = true;
    return o;
  }
};

/// CC rewritten with the GetD/SetD collectives (Section IV): grafting reads
/// and writes are coalesced, and the asynchronous short-cutting of CC-SMP
/// is replaced by lock-step pointer jumping ("we insert artificial
/// synchronizations into pointer-jumping... the modification makes
/// communication coalescing possible").
ParCCResult cc_coalesced(pgas::Runtime& rt, const graph::EdgeList& el,
                         const CcOptions& opt = {});

/// The classic Shiloach-Vishkin algorithm rewritten with collectives
/// (Section IV): conditional grafting onto roots, opportunistic grafting of
/// stagnant stars, and a single pointer jump per iteration.  Slower than CC
/// "due to more collective calls in one iteration".
ParCCResult sv_coalesced(pgas::Runtime& rt, const graph::EdgeList& el,
                         const CcOptions& opt = {});

}  // namespace pgraph::core
