#include "core/mst_pgas.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "core/pointer_jump.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"
#include "pgas/replica.hpp"

namespace pgraph::core {

using machine::Cat;

namespace {

/// Two-word SetDMin record: key packs (weight << 32 | edge id), so the
/// priority write resolves ties deterministically by edge id; `parent`
/// carries the other endpoint's supervertex, which is all the owner needs
/// to graft and to mark the MST edge (no second lookup of the edge).
struct CandRec {
  std::uint64_t key = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t parent = 0;

  friend bool operator<(const CandRec& a, const CandRec& b) {
    return a.key < b.key;
  }
};
static_assert(sizeof(CandRec) == 16);

constexpr std::uint64_t kInfKey = std::numeric_limits<std::uint64_t>::max();

}  // namespace

ParMstResult mst_pgas(pgas::Runtime& rt, const graph::WEdgeList& el,
                      const MstOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  if (el.m() >= (1ULL << 32))
    throw std::invalid_argument("mst_pgas: edge ids must fit 32 bits");
  for (const auto& e : el.edges)
    if (e.w >= (1ULL << 32))
      throw std::invalid_argument("mst_pgas: weights must fit 32 bits");
  rt.reset_costs();

  const std::size_t n = el.n;
  const int s = rt.topo().total_threads();
  const int max_iters = opt.max_iters > 0
                            ? opt.max_iters
                            : 4 * (n < 2 ? 1 : std::bit_width(n)) + 64;

  // Labels and candidates MUST share one layout: step 3 walks cb[k]/db[k]
  // in parallel assuming slot k of both slices is the same supervertex.
  const partition::Partitioning part = rt.make_partitioning(n);
  pgas::GlobalArray<std::uint64_t> d(rt, n, part);
  pgas::GlobalArray<CandRec> cand(rt, n, part);
  coll::CollectiveContext cc(rt);
  const coll::CollectiveOptions& copt = opt.coll;
  // NOTE: no offload KnownElement here -- Boruvka hooks along minimum
  // edges, so D[0] does not stay constant (unlike CC).

  std::vector<std::vector<std::uint64_t>> mst_edges(
      static_cast<std::size_t>(s));
  std::vector<std::uint64_t> mst_weight(static_cast<std::size_t>(s), 0);
  std::atomic<int> iterations{0};
  std::atomic<bool> overran{false};
  // Superstep checkpoint/restart, as in cc_coalesced — MST additionally
  // snapshots the marked-edge list and accumulated weight, since a rolled
  // back iteration re-marks its edges.
  fault::FaultInjector* const finj = rt.fault_injector();
  const bool ckpt_on =
      finj != nullptr &&
      (finj->config().outage_every > 0 || finj->config().loss_enabled() ||
       finj->config().mem_flips_enabled());
  // At-rest integrity: scrub the label array (see cc_coalesced).  `cand`
  // is rebuilt from scratch every trip, so it is not worth defending.
  const int scrub_every = opt.scrub_interval;
  if (scrub_every > 0) d.set_scrubbed(true);

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();
    init_labels(ctx, d);

    const auto chunk = graph::edge_chunk(el.edges, s, me);
    const std::size_t chunk_base = graph::even_chunk(el.m(), s, me).first;
    std::vector<std::uint64_t> eu, ev, ew, eid;
    eu.reserve(chunk.size());
    ev.reserve(chunk.size());
    ew.reserve(chunk.size());
    eid.reserve(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      eu.push_back(chunk[k].u);
      ev.push_back(chunk[k].v);
      ew.push_back(chunk[k].w);
      eid.push_back(chunk_base + k);
    }
    ctx.mem_seq(chunk.size() * sizeof(graph::WEdge), Cat::Work);

    coll::CollWorkspace<std::uint64_t> ws_u, ws_v, ws_jump, ws_misc;
    coll::CollWorkspace<CandRec> ws_cand;
    std::vector<std::uint64_t> du, dv, gi, par, grand, roots, rloc, rpar,
        rkey;
    std::vector<CandRec> gval;

    auto& my_mst = mst_edges[static_cast<std::size_t>(me)];

    // Per-thread checkpoint (lockstep across threads; see cc_coalesced).
    struct Checkpoint {
      std::vector<std::uint64_t> d, eu, ev, ew, eid;
      std::size_t mst_size = 0;
      std::uint64_t weight = 0;
      int it = 0;
      bool valid = false;
    } ck;
    // Staging buffer for scrub-verified checkpoint saves (see below).
    std::vector<std::uint64_t> ck_stage;
    std::uint64_t seen_recovery = ckpt_on ? finj->recovery_events() : 0;

    int it = 0;
    for (int executed = 0;; ++it, ++executed) {
      if (it >= max_iters || executed >= 4 * max_iters + 64) {
        overran.store(true, std::memory_order_relaxed);
        break;
      }

      // Scrub before the recovery poll so a heal's regression to
      // checkpoint-time bytes is immediately followed by the matching
      // rollback (see cc_coalesced for the full rationale).
      bool scrubbed_now = false;
      if (scrub_every > 0 && executed % scrub_every == 0) {
        scrubbed_now = true;
        try {
          rt.scrub(ctx);
        } catch (const fault::FaultError& fe) {
          if (fe.kind() != fault::FaultKind::MemoryCorrupt || !ck.valid)
            throw;
        }
      }

      bool fresh_ckpt = false;
      if (ckpt_on) {
        const std::uint64_t ev_now = finj->recovery_events();
        if (ev_now != seen_recovery && ck.valid) {
          auto blk = d.local_span(me);
          std::copy(ck.d.begin(), ck.d.end(), blk.begin());
          eu = ck.eu;
          ev = ck.ev;
          ew = ck.ew;
          eid = ck.eid;
          my_mst.resize(ck.mst_size);
          mst_weight[static_cast<std::size_t>(me)] = ck.weight;
          it = ck.it;
          ws_u.invalidate_keys();
          ws_v.invalidate_keys();
          ws_jump.invalidate_keys();
          ws_misc.invalidate_keys();
          ws_cand.invalidate_keys();
          ctx.mem_seq(
              (ck.d.size() + eu.size() * 4 + my_mst.size()) *
                  sizeof(std::uint64_t),
              Cat::Copy);
          // Restores bypass the incremental checksum: re-baseline.
          rt.rebaseline_integrity(ctx);
          if (me == 0) finj->count_rollback();
          ctx.barrier();  // restores visible before the next getd serves
        } else if (ev_now == seen_recovery &&
                   !finj->outage_active(ctx.epoch()) &&
                   (scrub_every == 0 || scrubbed_now)) {
          // Only scrub-validated trips may seal new checkpoints/mirrors.
          auto blk = d.local_span(me);
          bool seal_ok = true;
          if (scrub_every > 0) {
            // Verify-before-seal in the same barrier interval as the
            // staging copy, so a flip landing on the scrub pass's own
            // barriers cannot reach the rollback source (see cc_coalesced
            // for the full rationale).
            ck_stage.assign(blk.begin(), blk.end());
            if (!d.partition_clean(me)) rt.note_corruption();
            ctx.mem_seq(blk.size() * sizeof(std::uint64_t), Cat::Scrub);
            ctx.barrier();  // corruption flag -> recovery event
            seal_ok = finj->recovery_events() == ev_now;
          }
          if (seal_ok) {
            if (scrub_every > 0)
              ck.d.swap(ck_stage);
            else
              ck.d.assign(blk.begin(), blk.end());
            ck.eu = eu;
            ck.ev = ev;
            ck.ew = ew;
            ck.eid = eid;
            ck.mst_size = my_mst.size();
            ck.weight = mst_weight[static_cast<std::size_t>(me)];
            ck.it = it;
            ck.valid = true;
            ctx.mem_seq(
                (ck.d.size() + eu.size() * 4 + my_mst.size()) *
                    sizeof(std::uint64_t),
                Cat::Copy);
            if (me == 0) finj->count_checkpoint();
            fresh_ckpt = true;
          }
        }
        seen_recovery = ev_now;
      }

      try {
        // Buddy replication at checkpoint boundaries (no-op without a
        // loss plan); see cc_coalesced.
        if (fresh_ckpt) pgas::replicate_to_buddy(ctx);

        // --- step 1: labels of both endpoints of every active edge.
        du.resize(eu.size());
        dv.resize(ev.size());
        coll::getd(ctx, d, eu, std::span<std::uint64_t>(du), copt, cc, ws_u);
        coll::getd(ctx, d, ev, std::span<std::uint64_t>(dv), copt, cc, ws_v);

        bool active = false;
        for (std::size_t k = 0; k < eu.size(); ++k)
          if (du[k] != dv[k]) {
            active = true;
            break;
          }
        if (!pgas::allreduce_or(ctx, active)) break;

        // --- step 2: reset candidates, then priority-write the minimum
        // incident edge of every supervertex (SetDMin replaces MST-SMP's
        // fine-grained locks).
        {
          auto cb = cand.local_span(me);
          for (auto& rec : cb) rec = CandRec{};
          ctx.mem_seq(cb.size() * sizeof(CandRec), Cat::Work);
        }
        gi.clear();
        gval.clear();
        for (std::size_t k = 0; k < eu.size(); ++k) {
          if (du[k] == dv[k]) continue;
          const std::uint64_t key = (ew[k] << 32) | eid[k];
          gi.push_back(du[k]);
          gval.push_back({key, dv[k]});
          gi.push_back(dv[k]);
          gval.push_back({key, du[k]});
        }
        ctx.compute(eu.size() * 6, Cat::Work);
        ws_cand.invalidate_keys();
        coll::setd_min(ctx, cand, gi, std::span<const CandRec>(gval), copt,
                       cc, ws_cand);

        // --- step 3: graft every winning supervertex along its edge.
        {
          auto cb = cand.local_span(me);
          auto db = d.local_span(me);
          // Direct local writes to D are checksum commit points.
          const bool track = d.integrity_tracking_thread(me);
          roots.clear();
          rloc.clear();
          rpar.clear();
          rkey.clear();
          for (std::size_t k = 0; k < cb.size(); ++k) {
            if (cb[k].key == kInfKey) continue;
            // Targets of SetDMin are star roots, so the k-th local vertex
            // (global index via the distribution policy) is a root.
            const std::uint64_t g = d.global_index(me, k);
            if (track) d.integrity_note(me, g, db[k], cb[k].parent);
            db[k] = cb[k].parent;
            roots.push_back(g);
            rloc.push_back(k);
            rpar.push_back(cb[k].parent);
            rkey.push_back(cb[k].key);
          }
          ctx.mem_seq(cb.size() * sizeof(CandRec), Cat::Copy);
          ctx.barrier();  // all grafts visible before the 2-cycle check

          // --- step 4: break 2-cycles (two components choosing edges that
          // hook them onto each other); the smaller root reverts and does
          // not mark its edge, so each connecting edge is counted once.
          grand.resize(rpar.size());
          ws_misc.invalidate_keys();
          coll::getd(ctx, d, rpar, std::span<std::uint64_t>(grand), copt, cc,
                     ws_misc);
          for (std::size_t k = 0; k < roots.size(); ++k) {
            const bool two_cycle = grand[k] == roots[k];
            if (two_cycle && roots[k] < rpar[k]) {
              if (track)
                d.integrity_note(me, roots[k], db[rloc[k]], roots[k]);
              db[rloc[k]] = roots[k];  // stay root, unmark
              continue;
            }
            my_mst.push_back(rkey[k] & 0xffffffffULL);
            mst_weight[static_cast<std::size_t>(me)] += rkey[k] >> 32;
          }
          ctx.compute(roots.size() * 3, Cat::Work);
          ctx.barrier();
        }

        // --- step 5: collapse the new trees to rooted stars.
        jump_to_stars(ctx, d, copt, cc, ws_jump, par, grand);

        // --- step 6: compact.
        if (opt.compact) {
          const bool keys_ok = ws_u.keys_valid && ws_v.keys_valid &&
                               ws_u.keys.size() == eu.size() &&
                               ws_v.keys.size() == ev.size();
          std::size_t kept = 0;
          for (std::size_t k = 0; k < eu.size(); ++k) {
            if (du[k] == dv[k]) continue;
            eu[kept] = eu[k];
            ev[kept] = ev[k];
            ew[kept] = ew[k];
            eid[kept] = eid[k];
            if (keys_ok) {
              ws_u.keys[kept] = ws_u.keys[k];
              ws_v.keys[kept] = ws_v.keys[k];
            }
            ++kept;
          }
          eu.resize(kept);
          ev.resize(kept);
          ew.resize(kept);
          eid.resize(kept);
          if (keys_ok) {
            ws_u.keys.resize(kept);
            ws_v.keys.resize(kept);
          } else {
            ws_u.invalidate_keys();
            ws_v.invalidate_keys();
          }
          ctx.mem_seq(eu.size() * 4 * sizeof(std::uint64_t), Cat::Work);
        }
      } catch (const fault::FaultError& fe) {
        // Permanent node loss: the runtime shrank onto the buddy; roll
        // back to the last checkpoint at the loop top and re-run over the
        // survivors.  A mid-superstep D (e.g. partway through pointer
        // jumping) must not be continued, only rolled back — without a
        // checkpoint the loss is unrecoverable.
        if (fe.kind() != fault::FaultKind::PermanentLoss || !ck.valid)
          throw;
        continue;
      }
    }
    if (me == 0) iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (overran.load())
    throw std::runtime_error("mst_pgas: exceeded iteration bound");

  ParMstResult r;
  for (int t = 0; t < s; ++t) {
    r.edges.insert(r.edges.end(), mst_edges[static_cast<std::size_t>(t)].begin(),
                   mst_edges[static_cast<std::size_t>(t)].end());
    r.total_weight += mst_weight[static_cast<std::size_t>(t)];
  }
  r.iterations = iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

ParMstResult spanning_tree_pgas(pgas::Runtime& rt, const graph::EdgeList& el,
                                const MstOptions& opt) {
  graph::WEdgeList unit;
  unit.n = el.n;
  unit.edges.reserve(el.m());
  for (const graph::Edge& e : el.edges) unit.edges.push_back({e.u, e.v, 0});
  ParMstResult r = mst_pgas(rt, unit, opt);
  // Unit weights: the forest weight is trivially 0; the edge count is the
  // meaningful output (n - #components).
  return r;
}

}  // namespace pgraph::core
