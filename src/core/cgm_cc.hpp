#pragma once

#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// The "communication-efficient" baseline the paper argues against
/// (Sections I/II/VII): a CGM-style connected-components algorithm that
/// minimizes communication *rounds* instead of coordinating all processors
/// over the same input.
///
/// Each thread reduces its edge chunk to a local spanning forest, the
/// forests are merged pairwise up a binomial tree (O(log p) communication
/// rounds, one long message per round, as CGM requires), the root finishes
/// the contracted instance *sequentially*, and the labels are broadcast.
///
/// The shape the paper predicts — and this reproduces — is that the gain
/// from O(log p) rounds is offset by the sequential step's poor cache
/// behaviour on the large contracted input while p-1 processors idle.
ParCCResult cgm_cc(pgas::Runtime& rt, const graph::EdgeList& el);

}  // namespace pgraph::core
