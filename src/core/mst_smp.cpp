#include "core/mst_smp.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>

#include "pgas/coll.hpp"

namespace pgraph::core {

using machine::Cat;

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

std::uint64_t load_rlx(std::uint64_t& x) {
  return std::atomic_ref<std::uint64_t>(x).load(std::memory_order_relaxed);
}
void store_rlx(std::uint64_t& x, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(x).store(v, std::memory_order_relaxed);
}

}  // namespace

ParMstResult mst_smp(pgas::Runtime& rt, const graph::WEdgeList& el,
                     int max_iters) {
  const auto t0 = std::chrono::steady_clock::now();
  if (el.m() >= (1ULL << 32))
    throw std::invalid_argument("mst_smp: edge ids must fit 32 bits");
  rt.reset_costs();

  const std::size_t n = el.n;
  const int s = rt.topo().total_threads();
  if (max_iters <= 0)
    max_iters = 4 * (n < 2 ? 1 : std::bit_width(n)) + 64;

  // Shared state: supervertex labels, per-vertex candidate record guarded
  // by a fine-grained spinlock.
  std::vector<std::uint64_t> d(n);
  std::vector<std::uint64_t> cand_key(n), cand_parent(n);
  std::unique_ptr<std::atomic_flag[]> locks(new std::atomic_flag[n]());

  std::vector<std::vector<std::uint64_t>> mst_edges(
      static_cast<std::size_t>(s));
  std::vector<std::uint64_t> mst_weight(static_cast<std::size_t>(s), 0);
  std::atomic<int> iterations{0};
  std::atomic<bool> overran{false};

  const auto vrange = [&](int me) {
    return graph::even_chunk(n, s, me);
  };

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();
    const auto [vlo, vhi] = vrange(me);
    for (std::size_t i = vlo; i < vhi; ++i) d[i] = i;
    ctx.mem_seq((vhi - vlo) * 8, Cat::Work);
    ctx.barrier();

    const auto chunk = graph::edge_chunk(el.edges, s, me);
    const std::size_t chunk_base = graph::even_chunk(el.m(), s, me).first;
    // Active edge ids for this thread (compacted in place each round).
    std::vector<std::uint32_t> active(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k)
      active[k] = static_cast<std::uint32_t>(k);

    auto& my_mst = mst_edges[static_cast<std::size_t>(me)];

    int it = 0;
    for (;; ++it) {
      if (it >= max_iters) {
        overran.store(true, std::memory_order_relaxed);
        break;
      }

      // --- reset candidates over my vertex range.
      for (std::size_t i = vlo; i < vhi; ++i) cand_key[i] = kInf;
      ctx.mem_seq((vhi - vlo) * 8, Cat::Work);
      ctx.barrier();

      // --- find the minimum incident edge per supervertex, under locks.
      bool any = false;
      std::size_t lock_ops = 0;
      for (const std::uint32_t k : active) {
        const auto& e = chunk[k];
        const std::uint64_t du = load_rlx(d[e.u]);
        const std::uint64_t dv = load_rlx(d[e.v]);
        if (du == dv) continue;
        any = true;
        const std::uint64_t key = (e.w << 32) | (chunk_base + k);
        for (const auto& [c, other] :
             {std::pair{du, dv}, std::pair{dv, du}}) {
          while (locks[c].test_and_set(std::memory_order_acquire)) {
          }
          if (key < cand_key[c]) {
            cand_key[c] = key;
            cand_parent[c] = other;
          }
          locks[c].clear(std::memory_order_release);
          ++lock_ops;
        }
      }
      ctx.mem_random(active.size() * 2, n * 8, 8, Cat::Work);
      ctx.mem_random(lock_ops * 2, n * 8, 8, Cat::Work);
      ctx.locks(lock_ops, Cat::Work);
      if (!pgas::allreduce_or(ctx, any)) break;

      // --- graft winners over my vertex range.
      for (std::size_t c = vlo; c < vhi; ++c) {
        if (cand_key[c] == kInf) continue;
        store_rlx(d[c], cand_parent[c]);
      }
      ctx.mem_seq((vhi - vlo) * 16, Cat::Work);
      ctx.barrier();

      // --- break 2-cycles, mark surviving edges.
      for (std::size_t c = vlo; c < vhi; ++c) {
        if (cand_key[c] == kInf) continue;
        const std::uint64_t p = cand_parent[c];
        if (load_rlx(d[p]) == c && c < p) {
          store_rlx(d[c], c);  // revert; the larger root keeps the edge
          continue;
        }
        my_mst.push_back(cand_key[c] & 0xffffffffULL);
        mst_weight[static_cast<std::size_t>(me)] += cand_key[c] >> 32;
      }
      ctx.mem_random((vhi - vlo), n * 8, 8, Cat::Work);
      ctx.barrier();

      // --- asynchronous shortcut to rooted stars (the forest is acyclic,
      // so chasing terminates; concurrent writes only shorten paths).
      std::size_t chase = 0;
      for (std::size_t i = vlo; i < vhi; ++i) {
        std::uint64_t cur = load_rlx(d[i]);
        for (;;) {
          const std::uint64_t p = load_rlx(d[cur]);
          if (p == cur) break;
          cur = p;
          ++chase;
        }
        store_rlx(d[i], cur);
      }
      ctx.mem_random((vhi - vlo) * 2 + chase, n * 8, 8, Cat::Work);
      ctx.barrier();

      // --- compact (drop edges that fell inside a component).
      std::size_t kept = 0;
      for (const std::uint32_t k : active) {
        const auto& e = chunk[k];
        if (load_rlx(d[e.u]) != load_rlx(d[e.v])) active[kept++] = k;
      }
      active.resize(kept);
      ctx.mem_random(active.size() * 2, n * 8, 8, Cat::Work);
      ctx.barrier();
    }
    if (me == 0) iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (overran.load())
    throw std::runtime_error("mst_smp: exceeded iteration bound");

  ParMstResult r;
  for (int t = 0; t < s; ++t) {
    r.edges.insert(r.edges.end(),
                   mst_edges[static_cast<std::size_t>(t)].begin(),
                   mst_edges[static_cast<std::size_t>(t)].end());
    r.total_weight += mst_weight[static_cast<std::size_t>(t)];
  }
  r.iterations = iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::core
