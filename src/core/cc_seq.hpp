#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "machine/memory_model.hpp"

namespace pgraph::core {

/// Result of a sequential connected-components run.
struct SeqCCResult {
  std::vector<std::uint64_t> labels;  ///< labels[v] = component id of v
  std::uint64_t num_components = 0;
  double modeled_ns = 0.0;  ///< 0 unless a memory model was supplied
};

/// Union-find CC — the correctness ground truth for every other variant.
SeqCCResult cc_dsu(const graph::EdgeList& el,
                   const machine::MemoryModel* mem = nullptr);

/// BFS-based CC over a CSR — "the execution time of BFS on a single
/// thread", the sequential baseline line of Figures 7/8.
SeqCCResult cc_bfs(const graph::EdgeList& el,
                   const machine::MemoryModel* mem = nullptr);

/// True iff two labelings induce the same partition of [0, n).
bool same_partition(const std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b);

/// Number of distinct labels.
std::uint64_t count_components(const std::vector<std::uint64_t>& labels);

}  // namespace pgraph::core
