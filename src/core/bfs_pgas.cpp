#include "core/bfs_pgas.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "graph/csr.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"

namespace pgraph::core {

using machine::Cat;

std::vector<std::uint64_t> bfs_sequential_dist(
    const graph::EdgeList& el, std::uint64_t source,
    const machine::MemoryModel* mem, double* modeled_ns) {
  const graph::Csr csr(el);
  std::vector<std::uint64_t> dist(el.n, kBfsUnreached);
  std::vector<std::uint64_t> queue;
  queue.reserve(el.n);
  dist[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  std::uint64_t touched = 0;
  while (head < queue.size()) {
    const std::uint64_t v = queue[head++];
    for (const std::uint64_t w : csr.neighbors(v)) {
      ++touched;
      if (dist[w] == kBfsUnreached) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  if (mem && modeled_ns) {
    *modeled_ns = mem->seq_ns(csr.directed_edges() * 8) +
                  mem->random_ns(touched, el.n * 8, 8) +
                  mem->compute_ns(touched + el.n);
  }
  return dist;
}

BfsResult bfs_pgas(pgas::Runtime& rt, const graph::EdgeList& el,
                   std::uint64_t source, const coll::CollectiveOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  if (source >= el.n) throw std::invalid_argument("bfs_pgas: bad source");
  rt.reset_costs();

  const std::size_t n = el.n;
  const int s = rt.topo().total_threads();
  pgas::GlobalArray<std::uint64_t> dist(rt, n);
  coll::CollectiveContext cc(rt);
  std::atomic<int> levels{0};

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();
    {
      auto blk = dist.local_span(me);
      for (auto& x : blk) x = kBfsUnreached;
      ctx.mem_seq(blk.size() * 8, Cat::Work);
      if (dist.owner(source) == me)
        blk[source - dist.block_begin(me)] = 0;
    }
    ctx.barrier();

    const auto chunk = graph::edge_chunk(el.edges, s, me);
    std::vector<std::uint64_t> eu(chunk.size()), ev(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      eu[k] = chunk[k].u;
      ev[k] = chunk[k].v;
    }
    ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);

    coll::CollWorkspace<std::uint64_t> ws_u, ws_v, ws_set;
    std::vector<std::uint64_t> du, dv, gi, gv;

    std::uint64_t level = 0;
    for (;; ++level) {
      du.resize(eu.size());
      dv.resize(ev.size());
      coll::getd(ctx, dist, eu, std::span<std::uint64_t>(du), opt, cc, ws_u);
      coll::getd(ctx, dist, ev, std::span<std::uint64_t>(dv), opt, cc, ws_v);

      // Frontier expansion: settled endpoint at `level` relaxes the other.
      gi.clear();
      gv.clear();
      for (std::size_t k = 0; k < eu.size(); ++k) {
        if (du[k] == level && dv[k] > level + 1) {
          gi.push_back(ev[k]);
          gv.push_back(level + 1);
        }
        if (dv[k] == level && du[k] > level + 1) {
          gi.push_back(eu[k]);
          gv.push_back(level + 1);
        }
      }
      ctx.compute(eu.size() * 4, Cat::Work);
      if (!pgas::allreduce_or(ctx, !gi.empty())) break;
      ws_set.invalidate_keys();
      coll::setd_min(ctx, dist, gi, std::span<const std::uint64_t>(gv), opt,
                     cc, ws_set);

      // Compact: an edge whose endpoints are both settled can never relax
      // anything again.
      std::size_t kept = 0;
      const bool keys_ok = ws_u.keys_valid && ws_v.keys_valid &&
                           ws_u.keys.size() == eu.size() &&
                           ws_v.keys.size() == ev.size();
      for (std::size_t k = 0; k < eu.size(); ++k) {
        if (du[k] != kBfsUnreached && dv[k] != kBfsUnreached) continue;
        eu[kept] = eu[k];
        ev[kept] = ev[k];
        if (keys_ok) {
          ws_u.keys[kept] = ws_u.keys[k];
          ws_v.keys[kept] = ws_v.keys[k];
        }
        ++kept;
      }
      eu.resize(kept);
      ev.resize(kept);
      if (keys_ok) {
        ws_u.keys.resize(kept);
        ws_v.keys.resize(kept);
      } else {
        ws_u.invalidate_keys();
        ws_v.invalidate_keys();
      }
      ctx.mem_seq(eu.size() * 16, Cat::Work);
    }
    if (me == 0)
      levels.store(static_cast<int>(level), std::memory_order_relaxed);
  });

  BfsResult r;
  r.dist.assign(dist.raw_all().begin(), dist.raw_all().end());
  r.levels = levels.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::core
