#pragma once

#include <cstdint>
#include <vector>

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// The Euler-tour technique — the PRAM toolbox's standard way to turn tree
/// computations into list computations, and the canonical *consumer* of
/// list ranking (the building block the paper's Section II discusses).
/// Composed here entirely from this library's own substrate:
///
///   spanning_tree_pgas -> build_euler_tour -> list_ranking_weighted_pgas
///
/// yields rooted-tree metrics (depth, subtree size, traversal order) with
/// O(log n) coalesced collective rounds.

/// The tour of a tree with n vertices has 2(n-1) arcs; arc 2e is the
/// "down" direction of tree edge e (parent-to-child once rooted), arc
/// 2e+1 the reverse.  succ[] chains the arcs into a single cycle broken
/// at the root (the last arc is its own successor).
struct EulerTour {
  std::size_t n = 0;
  std::uint64_t root = 0;
  std::vector<std::uint64_t> succ;      ///< size 2(n-1), arc -> next arc
  std::vector<std::uint64_t> arc_from;  ///< tail vertex of each arc
  std::vector<std::uint64_t> arc_to;    ///< head vertex of each arc
  std::vector<std::uint64_t> first_arc; ///< per vertex: first outgoing arc
                                        ///< in the tour (root: tour start)
  std::vector<std::uint64_t> arc_comp_root;  ///< per arc: the canonical
                                             ///< root vertex of its
                                             ///< component's list
  std::vector<std::uint64_t> comp_roots;     ///< every list's root (the
                                             ///< chosen root, other
                                             ///< components' minimum
                                             ///< vertex, isolated vertices)

  std::size_t arcs() const { return succ.size(); }
};

/// Build the tour from a tree/forest edge list.  Every component becomes
/// one self-terminated arc list: `root`'s component is rooted at `root`,
/// every other component at its minimum vertex (isolated vertices are
/// degenerate roots).  Throws if the edges contain a cycle.
EulerTour build_euler_tour(const graph::EdgeList& tree,
                           std::uint64_t root);

/// Rooted-forest metrics computed from the tour with the coalesced
/// weighted list ranking.  Every component is covered, rooted at its
/// comp_roots entry; `preorder` is component-local (each component's root
/// has preorder 0), so subtree(v) occupies the contiguous interval
/// [preorder(v), preorder(v) + subtree_size(v)) within its component —
/// the property the Tarjan-Vishkin biconnectivity algorithm builds on.
struct TreeMetrics {
  std::vector<std::uint64_t> depth;         ///< hops from the component root
  std::vector<std::uint64_t> subtree_size;  ///< vertices in the subtree
  std::vector<std::uint64_t> parent;        ///< parent[v]; roots: themselves
  std::vector<std::uint64_t> preorder;      ///< component-local preorder
  int ranking_rounds = 0;
  RunCosts costs;
};

TreeMetrics euler_tour_metrics(
    pgas::Runtime& rt, const EulerTour& tour,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

/// Sequential ground truth (DFS over every component, rooted the same way
/// as build_euler_tour: `root`'s component at root, the rest at their
/// minimum vertex).  `preorder` is left as the DFS's own visit order — a
/// valid preorder but not necessarily the tour's (tests compare its
/// interval properties, not raw values).
TreeMetrics tree_metrics_sequential(const graph::EdgeList& tree,
                                    std::uint64_t root);

}  // namespace pgraph::core
