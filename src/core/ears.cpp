#include "core/ears.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "core/cc_coalesced.hpp"
#include "core/dsu.hpp"
#include "core/euler_tour.hpp"
#include "core/mst_pgas.hpp"

namespace pgraph::core {

namespace {

void accumulate(RunCosts& into, const RunCosts& c) {
  into.modeled_ns += c.modeled_ns;
  into.wall_s += c.wall_s;
  into.breakdown.merge_sum(c.breakdown);
  into.messages += c.messages;
  into.fine_messages += c.fine_messages;
  into.bytes += c.bytes;
  into.barriers += c.barriers;
}

/// Range-min sparse table (as in bcc.cpp, min-only).
class MinTable {
 public:
  explicit MinTable(const std::vector<std::uint64_t>& a) {
    const std::size_t n = a.size();
    levels_ = n < 2 ? 1 : std::bit_width(n - 1) + 1;
    table_.assign(levels_, a);
    for (std::size_t k = 1; k < levels_; ++k) {
      const std::size_t half = 1ull << (k - 1);
      for (std::size_t i = 0; i + (1ull << k) <= n; ++i)
        table_[k][i] =
            std::min(table_[k - 1][i], table_[k - 1][i + half]);
    }
  }
  std::uint64_t query(std::size_t lo, std::size_t hi) const {
    const std::size_t k = lo == hi ? 0 : std::bit_width(hi - lo + 1) - 1;
    return std::min(table_[k][lo], table_[k][hi + 1 - (1ull << k)]);
  }

 private:
  std::size_t levels_;
  std::vector<std::vector<std::uint64_t>> table_;
};

/// Binary-lifting LCA over the rooted forest (parent/depth from the Euler
/// metrics); a local O(n log n) helper for labeling the nontree edges.
class Lca {
 public:
  Lca(const std::vector<std::uint64_t>& parent,
      const std::vector<std::uint64_t>& depth)
      : depth_(depth) {
    const std::size_t n = parent.size();
    std::uint64_t maxd = 0;
    for (const auto d : depth) maxd = std::max(maxd, d);
    levels_ = maxd < 1 ? 1 : std::bit_width(maxd) + 1;
    up_.assign(levels_, parent);
    for (std::size_t k = 1; k < levels_; ++k)
      for (std::size_t v = 0; v < n; ++v)
        up_[k][v] = up_[k - 1][up_[k - 1][v]];
  }

  std::uint64_t lca(std::uint64_t x, std::uint64_t y) const {
    if (depth_[x] < depth_[y]) std::swap(x, y);
    std::uint64_t diff = depth_[x] - depth_[y];
    for (std::size_t k = 0; diff; ++k, diff >>= 1)
      if (diff & 1) x = up_[k][x];
    if (x == y) return x;
    for (std::size_t k = levels_; k-- > 0;) {
      if (up_[k][x] != up_[k][y]) {
        x = up_[k][x];
        y = up_[k][y];
      }
    }
    return up_[0][x];
  }

 private:
  const std::vector<std::uint64_t>& depth_;
  std::size_t levels_;
  std::vector<std::vector<std::uint64_t>> up_;
};

}  // namespace

EarResult ear_decomposition_pgas(pgas::Runtime& rt,
                                 const graph::EdgeList& el,
                                 const coll::CollectiveOptions& opt) {
  for (const auto& e : el.edges)
    if (e.u == e.v)
      throw std::invalid_argument(
          "ear_decomposition_pgas: self loops unsupported");
  if (el.n >= (1ull << 31))
    throw std::invalid_argument("ear_decomposition_pgas: n too large");

  EarResult r;
  r.ear.assign(el.m(), kBridge);
  if (el.m() == 0) return r;

  // --- distributed phases: spanning forest + Euler metrics. --------------
  MstOptions mopt;
  mopt.coll = opt;
  const auto st = spanning_tree_pgas(rt, el, mopt);
  accumulate(r.costs, st.costs);
  graph::EdgeList tree;
  tree.n = el.n;
  std::vector<std::uint8_t> is_tree(el.m(), 0);
  for (const auto id : st.edges) {
    tree.edges.push_back(el.edges[id]);
    is_tree[id] = 1;
  }
  const auto tour = build_euler_tour(tree, 0);
  const auto tm = euler_tour_metrics(rt, tour, opt);
  accumulate(r.costs, tm.costs);

  // --- global preorder positions (per-component intervals, as in BCC). ---
  std::vector<std::uint64_t> comp_of(el.n), comp_offset(el.n, 0);
  {
    Dsu comp(el.n);
    for (const auto& e : tree.edges) comp.unite(e.u, e.v);
    for (std::size_t v = 0; v < el.n; ++v) comp_of[v] = comp.find(v);
    std::vector<std::uint64_t> sizes(el.n, 0);
    for (std::size_t v = 0; v < el.n; ++v) ++sizes[comp_of[v]];
    std::uint64_t off = 0;
    for (std::size_t c = 0; c < el.n; ++c) {
      comp_offset[c] = off;
      off += sizes[c];
    }
  }
  std::vector<std::uint64_t> gp(el.n);
  for (std::size_t v = 0; v < el.n; ++v)
    gp[v] = comp_offset[comp_of[v]] + tm.preorder[v];

  // --- labels: (depth of LCA, serial) per nontree edge.  The serial keeps
  // labels unique; packing the LCA depth in the high bits makes the
  // subtree minimum select a *covering* edge whenever one exists (a
  // covering edge's LCA is strictly shallower than any non-covering
  // candidate's).
  const Lca lca(tm.parent, tm.depth);
  constexpr std::uint64_t kNone = ~0ull;
  std::vector<std::uint64_t> label(el.m(), kNone);
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (is_tree[e]) continue;
    const std::uint64_t a = lca.lca(el.edges[e].u, el.edges[e].v);
    label[e] = (tm.depth[a] << 32) | e;
  }

  // --- per-vertex minimum incident nontree label, then subtree range-min.
  std::vector<std::uint64_t> amin(el.n, kNone);
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (is_tree[e]) continue;
    for (const auto v : {el.edges[e].u, el.edges[e].v})
      amin[gp[v]] = std::min(amin[gp[v]], label[e]);
  }
  const MinTable tmin(amin);

  // --- assignment.  A tree edge e^(v) = (parent(v), v) is covered iff the
  // minimal label in subtree(v) has its LCA strictly above v.
  for (std::size_t t = 0; t < tree.m(); ++t) {
    const auto& e = tree.edges[t];
    const std::uint64_t v = tm.parent[e.v] == e.u ? e.v : e.u;
    const std::uint64_t best =
        tmin.query(gp[v], gp[v] + tm.subtree_size[v] - 1);
    const std::uint64_t global_id = st.edges[t];
    if (best != kNone && (best >> 32) < tm.depth[v])
      r.ear[global_id] = best;
  }
  for (std::size_t e = 0; e < el.m(); ++e)
    if (!is_tree[e]) r.ear[e] = label[e];

  // --- dense, order-preserving ear ids; count bridges. --------------------
  std::vector<std::uint64_t> labels;
  labels.reserve(el.m());
  for (const auto x : r.ear)
    if (x != kBridge) labels.push_back(x);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  for (auto& x : r.ear) {
    if (x == kBridge) {
      ++r.num_bridges;
      continue;
    }
    x = static_cast<std::uint64_t>(
        std::lower_bound(labels.begin(), labels.end(), x) - labels.begin());
  }
  r.num_ears = labels.size();
  return r;
}

}  // namespace pgraph::core
