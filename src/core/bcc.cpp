#include "core/bcc.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "core/dsu.hpp"
#include "core/euler_tour.hpp"
#include "core/mst_pgas.hpp"

namespace pgraph::core {

namespace {

void accumulate(RunCosts& into, const RunCosts& c) {
  into.modeled_ns += c.modeled_ns;
  into.wall_s += c.wall_s;
  into.breakdown.merge_sum(c.breakdown);
  into.messages += c.messages;
  into.fine_messages += c.fine_messages;
  into.bytes += c.bytes;
  into.barriers += c.barriers;
}

/// Static range-min/max over an array: O(n log n) sparse table.
class SparseTable {
 public:
  SparseTable(const std::vector<std::uint64_t>& a, bool take_min)
      : min_(take_min) {
    const std::size_t n = a.size();
    levels_ = n < 2 ? 1 : std::bit_width(n - 1) + 1;
    table_.assign(levels_, a);
    for (std::size_t k = 1; k < levels_; ++k) {
      const std::size_t half = 1ull << (k - 1);
      for (std::size_t i = 0; i + (1ull << k) <= n; ++i)
        table_[k][i] = pick(table_[k - 1][i], table_[k - 1][i + half]);
    }
  }

  /// Query over the inclusive range [lo, hi].
  std::uint64_t query(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < table_[0].size());
    const std::size_t k =
        lo == hi ? 0 : std::bit_width(hi - lo + 1) - 1;
    return pick(table_[k][lo], table_[k][hi + 1 - (1ull << k)]);
  }

 private:
  std::uint64_t pick(std::uint64_t a, std::uint64_t b) const {
    return min_ ? std::min(a, b) : std::max(a, b);
  }
  bool min_;
  std::size_t levels_;
  std::vector<std::vector<std::uint64_t>> table_;
};

/// Compute the number of distinct blocks and the articulation vertices
/// from per-edge block labels: a vertex is an articulation point iff its
/// incident edges span >= 2 distinct blocks.
void finish_result(const graph::EdgeList& el, BccResult& r) {
  std::unordered_set<std::uint64_t> blocks(r.edge_block.begin(),
                                           r.edge_block.end());
  r.num_blocks = blocks.size();
  r.is_articulation.assign(el.n, 0);
  // First incident block per vertex; a second distinct one marks it.
  std::vector<std::uint64_t> first(el.n, UINT64_MAX);
  for (std::size_t e = 0; e < el.m(); ++e) {
    for (const std::uint64_t v : {el.edges[e].u, el.edges[e].v}) {
      if (first[v] == UINT64_MAX)
        first[v] = r.edge_block[e];
      else if (first[v] != r.edge_block[e])
        r.is_articulation[v] = 1;
    }
  }
}

}  // namespace

BccResult bcc_pgas(pgas::Runtime& rt, const graph::EdgeList& el,
                   const coll::CollectiveOptions& opt) {
  for (const auto& e : el.edges)
    if (e.u == e.v)
      throw std::invalid_argument("bcc_pgas: self loops are not supported");

  BccResult r;
  r.edge_block.assign(el.m(), UINT64_MAX);
  if (el.m() == 0) {
    r.is_articulation.assign(el.n, 0);
    return r;
  }

  // --- phase 1: spanning forest (distributed Boruvka). -------------------
  core::MstOptions mopt;
  mopt.coll = opt;
  mopt.compact = true;
  const auto st = spanning_tree_pgas(rt, el, mopt);
  accumulate(r.costs, st.costs);

  graph::EdgeList tree;
  tree.n = el.n;
  std::vector<std::uint8_t> is_tree(el.m(), 0);
  std::vector<std::uint64_t> tree_edge_of_global(el.m(), UINT64_MAX);
  for (const auto id : st.edges) {
    tree_edge_of_global[id] = tree.edges.size();
    tree.edges.push_back(el.edges[id]);
    is_tree[id] = 1;
  }
  const std::size_t nt = tree.m();

  // --- phase 2: Euler tour metrics (two distributed rankings). -----------
  const auto tour = build_euler_tour(tree, 0);
  const auto tm = euler_tour_metrics(rt, tour, opt);
  accumulate(r.costs, tm.costs);

  // Map each non-root vertex to its tree edge e^(v) = (parent(v), v).
  std::vector<std::uint64_t> vertex_edge(el.n, UINT64_MAX);
  for (std::size_t t = 0; t < nt; ++t) {
    const auto& e = tree.edges[t];
    const std::uint64_t child = tm.parent[e.v] == e.u ? e.v : e.u;
    assert(tm.parent[child] == (child == e.v ? e.u : e.v));
    vertex_edge[child] = t;
  }

  // Global positions: component-local preorders packed side by side so
  // subtree intervals remain contiguous and never cross components.
  std::vector<std::uint64_t> comp_of(el.n);
  {
    Dsu comp(el.n);
    for (const auto& e : tree.edges) comp.unite(e.u, e.v);
    for (std::size_t v = 0; v < el.n; ++v) comp_of[v] = comp.find(v);
  }
  std::vector<std::uint64_t> comp_offset(el.n, 0);
  {
    std::vector<std::uint64_t> sizes(el.n, 0);
    for (std::size_t v = 0; v < el.n; ++v) ++sizes[comp_of[v]];
    std::uint64_t off = 0;
    for (std::size_t c = 0; c < el.n; ++c) {
      comp_offset[c] = off;
      off += sizes[c];
    }
  }
  std::vector<std::uint64_t> gp(el.n);
  for (std::size_t v = 0; v < el.n; ++v)
    gp[v] = comp_offset[comp_of[v]] + tm.preorder[v];

  // --- phase 3: low/high over preorder intervals (local sparse tables). --
  std::vector<std::uint64_t> amin(el.n), amax(el.n);
  for (std::size_t p = 0; p < el.n; ++p) amin[p] = amax[p] = p;
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (is_tree[e]) continue;
    const std::uint64_t a = gp[el.edges[e].u], b = gp[el.edges[e].v];
    amin[a] = std::min(amin[a], b);
    amin[b] = std::min(amin[b], a);
    amax[a] = std::max(amax[a], b);
    amax[b] = std::max(amax[b], a);
  }
  const SparseTable tmin(amin, true), tmax(amax, false);
  const auto low = [&](std::uint64_t v) {
    return tmin.query(gp[v], gp[v] + tm.subtree_size[v] - 1);
  };
  const auto high = [&](std::uint64_t v) {
    return tmax.query(gp[v], gp[v] + tm.subtree_size[v] - 1);
  };

  // --- phase 4: the Tarjan-Vishkin auxiliary graph over tree edges. ------
  graph::EdgeList aux;
  aux.n = nt;
  aux.edges.reserve(el.m());
  // Rule 1: each nontree edge {u, w} with u, w unrelated in the forest
  // joins e^(u) and e^(w).
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (is_tree[e]) continue;
    std::uint64_t u = el.edges[e].u, w = el.edges[e].v;
    if (gp[u] > gp[w]) std::swap(u, w);
    if (gp[u] + tm.subtree_size[u] <= gp[w])
      aux.edges.push_back({vertex_edge[u], vertex_edge[w]});
  }
  // Rule 2: tree edge (v, w), v = parent(w), v not a component root's
  // *own* position is fine — it joins e^(w) and e^(v) when subtree(w)
  // escapes v's interval via a nontree edge.
  for (std::size_t t = 0; t < nt; ++t) {
    const auto& e = tree.edges[t];
    const std::uint64_t w = tm.parent[e.v] == e.u ? e.v : e.u;
    const std::uint64_t v = tm.parent[w];
    if (tm.parent[v] == v) continue;  // v is a component root: no e^(v)
    if (low(w) < gp[v] || high(w) >= gp[v] + tm.subtree_size[v])
      aux.edges.push_back({vertex_edge[w], vertex_edge[v]});
  }

  // --- phase 5: blocks = connected components of the auxiliary graph,
  // computed with the coalesced CC (distributed). -------------------------
  CcOptions ccopt;
  ccopt.coll = opt;
  ccopt.compact = true;
  const auto aux_cc = cc_coalesced(rt, aux, ccopt);
  accumulate(r.costs, aux_cc.costs);

  // --- assignment: tree edge -> its auxiliary label; nontree edge {u, w}
  // -> the label of e^(the endpoint with the larger preorder) (for a back
  // edge that is the descendant; for a cross edge rule 1 made both equal).
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (is_tree[e]) {
      r.edge_block[e] = aux_cc.labels[tree_edge_of_global[e]];
    } else {
      const std::uint64_t u = el.edges[e].u, w = el.edges[e].v;
      const std::uint64_t deeper = gp[u] > gp[w] ? u : w;
      r.edge_block[e] = aux_cc.labels[vertex_edge[deeper]];
    }
  }
  finish_result(el, r);
  return r;
}

BccResult bcc_sequential(const graph::EdgeList& el) {
  for (const auto& e : el.edges)
    if (e.u == e.v)
      throw std::invalid_argument("bcc_sequential: self loops unsupported");

  BccResult r;
  r.edge_block.assign(el.m(), UINT64_MAX);

  // Adjacency with edge ids.
  std::vector<std::size_t> off(el.n + 1, 0);
  for (const auto& e : el.edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t i = 1; i <= el.n; ++i) off[i] += off[i - 1];
  std::vector<std::pair<std::uint64_t, std::uint64_t>> adj(2 * el.m());
  {
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (std::size_t e = 0; e < el.m(); ++e) {
      adj[cur[el.edges[e].u]++] = {el.edges[e].v, e};
      adj[cur[el.edges[e].v]++] = {el.edges[e].u, e};
    }
  }

  // Iterative Hopcroft-Tarjan with an explicit edge stack.
  constexpr std::uint64_t kUnset = UINT64_MAX;
  std::vector<std::uint64_t> disc(el.n, kUnset), low(el.n, 0);
  std::vector<std::size_t> it(el.n, 0);       // adjacency cursor
  std::vector<std::uint64_t> parent_edge(el.n, kUnset);
  std::vector<std::uint64_t> estack;          // edge ids
  std::uint64_t timer = 0, next_block = 0;

  struct Frame {
    std::uint64_t v;
  };
  std::vector<Frame> stack;

  for (std::uint64_t root = 0; root < el.n; ++root) {
    if (disc[root] != kUnset) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root});
    while (!stack.empty()) {
      const std::uint64_t v = stack.back().v;
      if (it[v] < off[v + 1] - off[v]) {
        const auto [w, eid] = adj[off[v] + it[v]++];
        if (eid == parent_edge[v]) continue;
        if (disc[w] == kUnset) {
          estack.push_back(eid);
          disc[w] = low[w] = timer++;
          parent_edge[w] = eid;
          stack.push_back({w});
        } else if (disc[w] < disc[v]) {
          estack.push_back(eid);  // back edge
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        if (stack.empty()) break;
        const std::uint64_t p = stack.back().v;
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= disc[p]) {
          // Pop one block, ending with the tree edge (p, v).
          const std::uint64_t pe = parent_edge[v];
          const std::uint64_t block = next_block++;
          for (;;) {
            assert(!estack.empty());
            const std::uint64_t e = estack.back();
            estack.pop_back();
            r.edge_block[e] = block;
            if (e == pe) break;
          }
        }
      }
    }
  }
  assert(estack.empty());
  finish_result(el, r);
  return r;
}

bool same_blocks(const BccResult& a, const BccResult& b) {
  return same_partition(a.edge_block, b.edge_block) &&
         a.is_articulation == b.is_articulation &&
         a.num_blocks == b.num_blocks;
}

}  // namespace pgraph::core
