#pragma once

#include <cstdint>
#include <vector>

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// List ranking is the paper's running example of the
/// "communication-efficient" school it argues against (Sections I/II): the
/// Dehne et al. CGM algorithm reduces the distributed list until it fits
/// on one node, ranks it sequentially there, and broadcasts — O(log p)
/// communication rounds, but "all but one processor remain idle during the
/// sequential processing step" and the big sequential instance has poor
/// cache behaviour.
///
/// A list of n elements is given as a successor array: succ[i] is the next
/// element, succ[i] == i marks the tail.  rank[i] = #hops from i to the
/// tail (tail has rank 0).  Multiple disjoint lists are allowed.

/// Deterministic scrambled list of length n: a random permutation chained
/// into one list whose successors have no locality (the adversarial layout
/// for both approaches).  Returns the successor array; `head` (if non-null)
/// receives the head element.
std::vector<std::uint64_t> make_random_list(std::size_t n,
                                            std::uint64_t seed,
                                            std::uint64_t* head = nullptr);

/// Sequential ranking (pointer chase) — ground truth, and the routine the
/// CGM variant runs on its contracted instance.
std::vector<std::uint64_t> rank_sequential(
    const std::vector<std::uint64_t>& succ,
    const machine::MemoryModel* mem = nullptr, double* modeled_ns = nullptr);

struct ListRankResult {
  std::vector<std::uint64_t> ranks;
  int rounds = 0;
  RunCosts costs;
};

/// PRAM Wyllie pointer jumping mapped onto the cluster with the GetD/SetD
/// collectives: O(log n) coalesced collective rounds, every processor busy
/// — the "coordinate multiple processors on the same input" approach the
/// paper advocates.
ListRankResult list_ranking_pgas(
    pgas::Runtime& rt, const std::vector<std::uint64_t>& succ,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

/// Weighted generalization (the form the Euler-tour technique needs):
/// ranks[i] = sum of weights over the sublist starting at succ[i] and
/// running to the tail — i.e. the *exclusive* suffix sum along the list.
/// With unit weights this is exactly list_ranking_pgas.  Weights are
/// unsigned and summed modulo 2^64 (callers encode signed values in
/// two's complement, which prefix/suffix arithmetic preserves).
ListRankResult list_ranking_weighted_pgas(
    pgas::Runtime& rt, const std::vector<std::uint64_t>& succ,
    const std::vector<std::uint64_t>& weights,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

/// The contract-to-one-node baseline: every thread ships its block of the
/// list to thread 0 in one long message (O(1) communication rounds, as CGM
/// prescribes), thread 0 ranks the whole instance sequentially while the
/// other s-1 threads idle, and the ranks are scattered back.  This is the
/// degenerate (full-contraction) endpoint of the Dehne et al. scheme and
/// exactly the trade-off Section I describes.
ListRankResult list_ranking_contract(pgas::Runtime& rt,
                                     const std::vector<std::uint64_t>& succ);

}  // namespace pgraph::core
