#pragma once

#include <cstdint>
#include <vector>

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Ear decomposition — the second member of the CGM algorithm suite the
/// paper's Section II surveys ("connected components, ear decomposition,
/// and biconnected components"), in the Maon-Schieber-Vishkin parallel
/// formulation, composed from this library's distributed substrate:
///
///   1. spanning_tree_pgas                 (Boruvka + SetDMin)
///   2. Euler tour metrics                 (two coalesced Wyllie rankings)
///   3. per-nontree-edge labels (LCA depth, id); per-tree-edge ear =
///      minimum label over the covering nontree edges, found with the same
///      subtree range-min used by biconnectivity       (local linear pass)
///
/// Each nontree edge opens the ear named by its own label; a tree edge
/// belongs to the ear of the smallest-labeled nontree edge covering it.
/// Tree edges covered by no nontree edge are bridges.  Within every
/// 2-edge-connected subgraph the ears, taken in increasing label order,
/// form an open ear decomposition: the first ear is a cycle, every later
/// ear is a path (or cycle) whose endpoints lie on earlier ears.

inline constexpr std::uint64_t kBridge = ~0ull;

struct EarResult {
  /// Per input edge: its ear id (dense, ordered consistently with the
  /// decomposition order), or kBridge for bridge tree edges.
  std::vector<std::uint64_t> ear;
  std::uint64_t num_ears = 0;
  std::uint64_t num_bridges = 0;
  RunCosts costs;
};

EarResult ear_decomposition_pgas(
    pgas::Runtime& rt, const graph::EdgeList& el,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

}  // namespace pgraph::core
