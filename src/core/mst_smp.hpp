#pragma once

#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// MST-SMP: the Bader-Cong shared-memory parallel Boruvka, with
/// fine-grained locks guarding the per-supervertex minimum-edge records
/// ("fine-grained locks are used to guard against race conditions among
/// these processors when they attempt to update the minimum-weight edge").
///
/// Run it on a single-node topology for the paper's SMP baseline; the lock
/// overhead is charged per acquisition, which is what makes MST-SMP barely
/// faster than sequential Kruskal on inputs with 100M vertices (Section
/// VI).  Requires weights and edge ids < 2^32.
ParMstResult mst_smp(pgas::Runtime& rt, const graph::WEdgeList& el,
                     int max_iters = 0);

}  // namespace pgraph::core
