#include "core/list_ranking.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "collectives/getd.hpp"
#include "graph/permute.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"

namespace pgraph::core {

using machine::Cat;

std::vector<std::uint64_t> make_random_list(std::size_t n,
                                            std::uint64_t seed,
                                            std::uint64_t* head) {
  if (n == 0) return {};
  const auto order = graph::random_permutation(n, seed);
  std::vector<std::uint64_t> succ(n);
  for (std::size_t k = 0; k + 1 < n; ++k) succ[order[k]] = order[k + 1];
  succ[order[n - 1]] = order[n - 1];  // tail
  if (head) *head = order[0];
  return succ;
}

std::vector<std::uint64_t> rank_sequential(
    const std::vector<std::uint64_t>& succ, const machine::MemoryModel* mem,
    double* modeled_ns) {
  const std::size_t n = succ.size();
  std::vector<std::uint64_t> ranks(n, 0);
  std::vector<bool> has_pred(n, false);
  for (std::size_t i = 0; i < n; ++i)
    if (succ[i] != i) has_pred[succ[i]] = true;

  std::vector<std::uint64_t> chain;
  chain.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    if (has_pred[h]) continue;
    chain.clear();
    std::uint64_t cur = h;
    for (;;) {
      chain.push_back(cur);
      if (succ[cur] == cur) break;
      cur = succ[cur];
    }
    for (std::size_t k = 0; k < chain.size(); ++k)
      ranks[chain[k]] = chain.size() - 1 - k;
  }
  if (mem && modeled_ns) {
    // The chase is one random access per element over the whole array —
    // exactly the cache-hostile pattern Section I warns about; the rank
    // write-back is scattered the same way.
    *modeled_ns = mem->seq_ns(n * sizeof(std::uint64_t)) +
                  mem->random_ns(n, n * 8, 8) +
                  mem->random_write_ns(n, n * 8, 8) + mem->compute_ns(3 * n);
  }
  return ranks;
}

namespace {

/// Shared Wyllie engine: ranks[i] = sum of weights over elements strictly
/// after i (exclusive suffix sum).  `weights == nullptr` means unit
/// weights (plain list ranking).
ListRankResult wyllie_impl(pgas::Runtime& rt,
                           const std::vector<std::uint64_t>& succ,
                           const std::vector<std::uint64_t>* weights,
                           const coll::CollectiveOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();
  const std::size_t n = succ.size();
  const int max_rounds = 2 * (n < 2 ? 1 : std::bit_width(n)) + 16;

  pgas::GlobalArray<std::uint64_t> nxt(rt, n);
  pgas::GlobalArray<std::uint64_t> rnk(rt, n);
  coll::CollectiveContext cc(rt);
  std::atomic<int> rounds{0};
  std::atomic<bool> overran{false};

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();
    auto nb = nxt.local_span(me);
    auto rb = rnk.local_span(me);
    const std::uint64_t base = nxt.block_begin(me);
    for (std::size_t k = 0; k < nb.size(); ++k) {
      const std::uint64_t s = succ[base + k];
      nb[k] = s;
      // Exclusive suffix: start with the immediate successor's weight.
      rb[k] = s == base + k ? 0 : (weights ? (*weights)[s] : 1);
    }
    ctx.mem_seq(nb.size() * 2 * sizeof(std::uint64_t), Cat::Work);
    if (weights)
      ctx.mem_random(nb.size(), n * 8, 8, Cat::Work);  // w[succ] gathers
    ctx.barrier();

    coll::CollWorkspace<std::uint64_t> ws;
    std::vector<std::uint64_t> idx, rn, nn;

    int r = 0;
    for (;; ++r) {
      if (r >= max_rounds) {
        overran.store(true, std::memory_order_relaxed);
        break;
      }
      // Wyllie: R[i] += R[N[i]]; N[i] = N[N[i]]  (lock step, coalesced).
      idx.assign(nb.begin(), nb.end());
      ctx.mem_seq(idx.size() * sizeof(std::uint64_t), Cat::Copy);
      rn.resize(idx.size());
      nn.resize(idx.size());
      ws.invalidate_keys();
      coll::getd(ctx, rnk, idx, std::span<std::uint64_t>(rn), opt, cc, ws);
      // Same request indices: the cached keys are reused for the second
      // fetch (N and R share the block layout).
      coll::getd(ctx, nxt, idx, std::span<std::uint64_t>(nn), opt, cc, ws);

      bool changed = false;
      for (std::size_t k = 0; k < nb.size(); ++k) {
        if (nb[k] == base + k) continue;  // tail element
        // N[i] already points at a fixpoint (the tail): R[N[i]] is 0 and
        // the jump is a no-op — the element is done.
        if (nn[k] == nb[k]) continue;
        rb[k] += rn[k];
        nb[k] = nn[k];
        changed = true;
      }
      ctx.mem_seq(nb.size() * 2 * sizeof(std::uint64_t), Cat::Copy);
      ctx.compute(nb.size() * 2, Cat::Work);
      if (!pgas::allreduce_or(ctx, changed)) break;
    }
    if (me == 0) rounds.store(r + 1, std::memory_order_relaxed);
  });

  if (overran.load())
    throw std::runtime_error("list_ranking_pgas: exceeded round bound");

  ListRankResult res;
  res.ranks.assign(rnk.raw_all().begin(), rnk.raw_all().end());
  res.rounds = rounds.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.costs = collect_costs(rt, wall);
  return res;
}

}  // namespace

ListRankResult list_ranking_pgas(pgas::Runtime& rt,
                                 const std::vector<std::uint64_t>& succ,
                                 const coll::CollectiveOptions& opt) {
  return wyllie_impl(rt, succ, nullptr, opt);
}

ListRankResult list_ranking_weighted_pgas(
    pgas::Runtime& rt, const std::vector<std::uint64_t>& succ,
    const std::vector<std::uint64_t>& weights,
    const coll::CollectiveOptions& opt) {
  assert(weights.size() == succ.size());
  return wyllie_impl(rt, succ, &weights, opt);
}

ListRankResult list_ranking_contract(pgas::Runtime& rt,
                                     const std::vector<std::uint64_t>& succ) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();
  const std::size_t n = succ.size();
  const int s = rt.topo().total_threads();

  pgas::GlobalArray<std::uint64_t> rnk(rt, n);
  std::atomic<bool> failed{false};

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();
    const std::size_t cnt = rnk.local_size(me);
    // Round 1: one long message per thread shipping its block to thread 0.
    if (me != 0) ctx.post_exchange_msg(0, cnt * sizeof(std::uint64_t));
    ctx.mem_seq(cnt * sizeof(std::uint64_t), Cat::Comm);
    ctx.exchange_barrier();

    // Thread 0 ranks the full instance sequentially; everyone else idles
    // (the cost Section I criticizes).
    if (me == 0) {
      double seq_ns = 0.0;
      const auto ranks = rank_sequential(succ, &ctx.mem(), &seq_ns);
      ctx.charge(Cat::Work, seq_ns);
      if (ranks.size() != n) failed.store(true);
      // Scatter results back: one bulk put per block.
      for (int t = 0; t < s; ++t) {
        const std::size_t tl = rnk.block_begin(t);
        const std::size_t tc = rnk.local_size(t);
        if (tc > 0) rnk.memput(ctx, tl, tc, ranks.data() + tl, Cat::Comm);
      }
    }
    ctx.barrier();
  });

  if (failed.load())
    throw std::runtime_error("list_ranking_contract: rank failure");

  ListRankResult res;
  res.ranks.assign(rnk.raw_all().begin(), rnk.raw_all().end());
  res.rounds = 2;  // gather + scatter
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.costs = collect_costs(rt, wall);
  return res;
}

}  // namespace pgraph::core
