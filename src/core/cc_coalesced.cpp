#include "core/cc_coalesced.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "core/pointer_jump.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"
#include "pgas/replica.hpp"

namespace pgraph::core {

using machine::Cat;

namespace {

/// Shared per-run scaffolding of the collective-based CC variants.
struct CcRun {
  pgas::GlobalArray<std::uint64_t> d;
  coll::CollectiveContext cc;
  std::atomic<int> iterations{0};
  std::atomic<bool> overran{false};

  // The label array adopts the runtime's configured distribution policy
  // (--partition): under skewed inputs a degree-aware layout spreads the
  // hot vertex range across owners (docs/PARTITIONING.md).
  CcRun(pgas::Runtime& rt, std::size_t n)
      : d(rt, n, rt.make_partitioning(n)), cc(rt) {}
};

}  // namespace

ParCCResult cc_coalesced(pgas::Runtime& rt, const graph::EdgeList& el,
                         const CcOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();

  const std::size_t n = el.n;
  const int max_iters = opt.max_iters > 0
                            ? opt.max_iters
                            : 4 * (n < 2 ? 1 : std::bit_width(n)) + 64;
  CcRun run(rt, n);
  const coll::CollectiveOptions& copt = opt.coll;
  const coll::KnownElement known{0, 0};  // D[0] stays 0 (offload target)
  // Superstep checkpoint/restart (docs/ROBUSTNESS.md): with outages or
  // permanent loss configured, snapshot D and the surviving edge lists each
  // iteration outside an outage window, and roll back to the last snapshot
  // when an outage window closes or the runtime shrinks after a node loss.
  fault::FaultInjector* const finj = rt.fault_injector();
  const bool ckpt_on =
      finj != nullptr &&
      (finj->config().outage_every > 0 || finj->config().loss_enabled() ||
       finj->config().mem_flips_enabled());
  // At-rest integrity: opt the label array into incremental checksum
  // tracking and periodic scrubbing (host-side, before the SPMD region).
  const int scrub_every = opt.scrub_interval;
  if (scrub_every > 0) run.d.set_scrubbed(true);

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int s = ctx.nthreads();
    const int me = ctx.id();
    init_labels(ctx, run.d);

    // Private copies of this thread's edge chunk (u and v request arrays).
    const auto chunk = graph::edge_chunk(el.edges, s, me);
    std::vector<std::uint64_t> eu(chunk.size()), ev(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      eu[k] = chunk[k].u;
      ev[k] = chunk[k].v;
    }
    ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);

    coll::CollWorkspace<std::uint64_t> ws_u, ws_v, ws_set, ws_jump;
    std::vector<std::uint64_t> du, dv, gi, gv, par, grand;

    // Per-thread checkpoint: this thread's D block plus its private edge
    // lists (they shrink under compaction, so a rollback must restore
    // them too).  All threads checkpoint/roll back in lockstep: the
    // recovery-event counter (outages + node-loss shrinks) is written only
    // in barrier completion steps and every thread reads it at the same
    // program point.
    struct Checkpoint {
      std::vector<std::uint64_t> d, eu, ev;
      int it = 0;
      bool valid = false;
    } ck;
    // Staging buffer for scrub-verified checkpoint saves (see below).
    std::vector<std::uint64_t> ck_stage;
    std::uint64_t seen_recovery = ckpt_on ? finj->recovery_events() : 0;

    int it = 0;
    // `executed` counts real trips (it rolls back with the checkpoint);
    // the hard cap keeps pathological fault plans from looping forever.
    for (int executed = 0;; ++it, ++executed) {
      if (it >= max_iters || executed >= 4 * max_iters + 64) {
        run.overran.store(true, std::memory_order_relaxed);
        break;
      }

      // Scrub BEFORE the recovery poll: a heal regresses the partition to
      // checkpoint-time bytes and raises a recovery event, so the poll
      // below immediately rolls the private state back to the matching
      // snapshot -- the superstep never runs on a half-regressed view.
      bool scrubbed_now = false;
      if (scrub_every > 0 && executed % scrub_every == 0) {
        scrubbed_now = true;
        try {
          rt.scrub(ctx);
        } catch (const fault::FaultError& fe) {
          // Corruption with no validated mirror: the baseline is
          // invalidated and a recovery event raised; continue on the
          // valid checkpoint (the poll below rolls back over clean
          // bytes).  Without a checkpoint the corruption is fatal.
          if (fe.kind() != fault::FaultKind::MemoryCorrupt || !ck.valid)
            throw;
        }
      }

      bool fresh_ckpt = false;
      if (ckpt_on) {
        const std::uint64_t ev_now = finj->recovery_events();
        if (ev_now != seen_recovery && ck.valid) {
          // An outage window closed (or the runtime shrank after a
          // permanent node loss) since we last looked: the recent
          // superstep work is suspect, so every thread rolls back to the
          // last snapshot and re-runs over the surviving topology.
          auto blk = run.d.local_span(me);
          std::copy(ck.d.begin(), ck.d.end(), blk.begin());
          eu = ck.eu;
          ev = ck.ev;
          it = ck.it;
          ws_u.invalidate_keys();
          ws_v.invalidate_keys();
          ws_set.invalidate_keys();
          ws_jump.invalidate_keys();
          ctx.mem_seq((ck.d.size() + eu.size() + ev.size()) *
                          sizeof(std::uint64_t),
                      Cat::Copy);
          // The restore bypassed the incremental checksum: recompute the
          // scrub baseline over the freshly restored block.
          rt.rebaseline_integrity(ctx);
          if (me == 0) finj->count_rollback();
          ctx.barrier();  // restores visible before the next getd serves
        } else if (ev_now == seen_recovery &&
                   !finj->outage_active(ctx.epoch()) &&
                   (scrub_every == 0 || scrubbed_now)) {
          // With scrubbing on, only scrub-validated trips may seal new
          // checkpoints/mirrors: a flip is always *detected* before the
          // corrupt bytes could be re-snapshotted into the repair source.
          auto blk = run.d.local_span(me);
          bool seal_ok = true;
          if (scrub_every > 0) {
            // Verify-before-seal: a flip can land on the scrub pass's own
            // barriers, after the compare but before this save.  Stage the
            // copy and re-check it against the maintained checksum in the
            // SAME barrier interval (flips only land at barrier completion,
            // so a verified stage is a clean stage), then agree
            // collectively before committing it over the old snapshot.
            ck_stage.assign(blk.begin(), blk.end());
            if (!run.d.partition_clean(me)) rt.note_corruption();
            ctx.mem_seq(blk.size() * sizeof(std::uint64_t), Cat::Scrub);
            ctx.barrier();  // corruption flag -> recovery event, seen by all
            seal_ok = finj->recovery_events() == ev_now;
          }
          if (seal_ok) {
            if (scrub_every > 0)
              ck.d.swap(ck_stage);
            else
              ck.d.assign(blk.begin(), blk.end());
            ck.eu = eu;
            ck.ev = ev;
            ck.it = it;
            ck.valid = true;
            ctx.mem_seq((ck.d.size() + eu.size() + ev.size()) *
                            sizeof(std::uint64_t),
                        Cat::Copy);
            if (me == 0) finj->count_checkpoint();
            fresh_ckpt = true;
          }
        }
        seen_recovery = ev_now;
      }

      try {
        // Buddy replication rides on checkpoint boundaries: mirror the
        // fresh snapshot's GlobalArray partitions onto each node's
        // predecessor (no-op unless a loss plan is configured).
        if (fresh_ckpt) pgas::replicate_to_buddy(ctx);

        // --- read endpoint labels (coalesced; keys cacheable via `id`).
        du.resize(eu.size());
        dv.resize(ev.size());
        coll::getd(ctx, run.d, eu, std::span<std::uint64_t>(du), copt,
                   run.cc, ws_u, known);
        coll::getd(ctx, run.d, ev, std::span<std::uint64_t>(dv), copt,
                   run.cc, ws_v, known);

        // --- graft requests: hook the larger root under the smaller.
        gi.clear();
        gv.clear();
        for (std::size_t k = 0; k < eu.size(); ++k) {
          if (du[k] == dv[k]) continue;
          if (du[k] < dv[k]) {
            gi.push_back(dv[k]);
            gv.push_back(du[k]);
          } else {
            gi.push_back(du[k]);
            gv.push_back(dv[k]);
          }
        }
        ctx.mem_seq(eu.size() * 2 * sizeof(std::uint64_t), Cat::Work);
        ctx.compute(eu.size() * 3, Cat::Work);

        if (!pgas::allreduce_or(ctx, !gi.empty())) break;

        ws_set.invalidate_keys();
        // Arbitrary concurrent write, as in the paper's CC ("SetD
        // implements arbitrary concurrent writes").  All targets are star
        // roots and all proposals are smaller labels, so any winner
        // preserves monotone convergence.
        coll::setd(ctx, run.d, gi, std::span<const std::uint64_t>(gv), copt,
                   run.cc, ws_set);

        // --- lock-step pointer jumping until rooted stars.  CC hooks
        // larger labels under smaller ones, so D[0] == 0 forever and the
        // offload optimization applies to the jump requests (the paper's
        // hotspot).
        jump_to_stars(ctx, run.d, copt, run.cc, ws_jump, par, grand, known);

        // --- compact: drop edges already inside one component, keeping
        // the cached target keys aligned with the surviving requests.
        if (opt.compact) {
          std::size_t kept = 0;
          const bool keys_ok = ws_u.keys_valid && ws_v.keys_valid &&
                               ws_u.keys.size() == eu.size() &&
                               ws_v.keys.size() == ev.size();
          for (std::size_t k = 0; k < eu.size(); ++k) {
            if (du[k] == dv[k]) continue;
            eu[kept] = eu[k];
            ev[kept] = ev[k];
            if (keys_ok) {
              ws_u.keys[kept] = ws_u.keys[k];
              ws_v.keys[kept] = ws_v.keys[k];
            }
            ++kept;
          }
          eu.resize(kept);
          ev.resize(kept);
          if (keys_ok) {
            ws_u.keys.resize(kept);
            ws_v.keys.resize(kept);
          } else {
            ws_u.invalidate_keys();
            ws_v.invalidate_keys();
          }
          ctx.mem_seq(eu.size() * 2 * sizeof(std::uint64_t), Cat::Work);
        }
      } catch (const fault::FaultError& fe) {
        // A permanent node loss surfaced collectively: the runtime already
        // promoted the buddy's mirrors and shrank the topology.  Roll back
        // to the last checkpoint (loop top) and re-run the superstep over
        // the survivors; without a checkpoint the loss is unrecoverable.
        if (fe.kind() != fault::FaultKind::PermanentLoss || !ck.valid)
          throw;
        continue;
      }
    }
    if (me == 0) run.iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (run.overran.load())
    throw std::runtime_error("cc_coalesced: exceeded iteration bound");

  ParCCResult r;
  run.d.read_all(r.labels);  // global order under any storage layout
  for (std::size_t i = 0; i < n; ++i)
    if (r.labels[i] == i) ++r.num_components;
  r.iterations = run.iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

ParCCResult sv_coalesced(pgas::Runtime& rt, const graph::EdgeList& el,
                         const CcOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();

  const std::size_t n = el.n;
  const int max_iters = opt.max_iters > 0
                            ? opt.max_iters
                            : 8 * (n < 2 ? 1 : std::bit_width(n)) + 128;
  CcRun run(rt, n);
  // Star flags MUST share D's layout: compute_stars walks stb[k]/blk[k]
  // in parallel assuming slot k of both slices is the same vertex.
  pgas::GlobalArray<std::uint64_t> st(rt, n, rt.make_partitioning(n));
  const coll::CollectiveOptions& copt = opt.coll;
  // NOTE: no offload -- SV's star hooking (step 2) can hook root 0 under a
  // larger root, so D[0] is not constant.

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int s = ctx.nthreads();
    const int me = ctx.id();
    init_labels(ctx, run.d);

    const auto chunk = graph::edge_chunk(el.edges, s, me);
    std::vector<std::uint64_t> eu(chunk.size()), ev(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      eu[k] = chunk[k].u;
      ev[k] = chunk[k].v;
    }
    ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);

    coll::CollWorkspace<std::uint64_t> ws_u, ws_v, ws_lab, ws_set;
    std::vector<std::uint64_t> du, dv, ddu, ddv, gi, gv, par, grand, stu,
        stv;

    const auto my_block = [&] { return run.d.local_span(me); };

    // Recompute star flags from the current D (standard subroutine):
    //   st[i] = 1;  if D[i] != D[D[i]] { st[i] = 0; st[D[D[i]]] = 0; }
    //   st[i] = st[D[i]].
    const auto compute_stars = [&](bool& any_nonstar) {
      auto stb = st.local_span(me);
      auto blk = my_block();
      par.assign(blk.begin(), blk.end());
      grand.resize(par.size());
      ws_lab.invalidate_keys();
      coll::getd(ctx, run.d, par, std::span<std::uint64_t>(grand), copt,
                 run.cc, ws_lab);
      for (std::size_t k = 0; k < stb.size(); ++k) stb[k] = 1;
      ctx.barrier();  // everyone's st initialized before remote zeroing
      gi.clear();
      gv.clear();
      any_nonstar = false;
      for (std::size_t k = 0; k < par.size(); ++k) {
        if (grand[k] != par[k]) {
          any_nonstar = true;
          stb[k] = 0;
          gi.push_back(grand[k]);  // st[D[D[i]]] = 0
          gv.push_back(0);
        }
      }
      ctx.mem_seq(par.size() * sizeof(std::uint64_t) * 2, Cat::Copy);
      ws_set.invalidate_keys();
      coll::setd(ctx, st, gi, std::span<const std::uint64_t>(gv), copt,
                 run.cc, ws_set);
      // st[i] = st[D[i]]
      std::vector<std::uint64_t>& stpar = grand;  // reuse buffer
      ws_lab.invalidate_keys();
      coll::getd(ctx, st, par, std::span<std::uint64_t>(stpar), copt, run.cc,
                 ws_lab);
      for (std::size_t k = 0; k < stb.size(); ++k) stb[k] = stpar[k];
      ctx.mem_seq(par.size() * sizeof(std::uint64_t), Cat::Copy);
    };

    int it = 0;
    for (;; ++it) {
      if (it >= max_iters) {
        run.overran.store(true, std::memory_order_relaxed);
        break;
      }
      bool changed = false;

      // --- step 1: conditional graft onto roots.
      du.resize(eu.size());
      dv.resize(ev.size());
      coll::getd(ctx, run.d, eu, std::span<std::uint64_t>(du), copt, run.cc,
                 ws_u);
      coll::getd(ctx, run.d, ev, std::span<std::uint64_t>(dv), copt, run.cc,
                 ws_v);
      ddu.resize(du.size());
      ddv.resize(dv.size());
      ws_lab.invalidate_keys();
      coll::getd(ctx, run.d, du, std::span<std::uint64_t>(ddu), copt, run.cc,
                 ws_lab);
      ws_lab.invalidate_keys();
      coll::getd(ctx, run.d, dv, std::span<std::uint64_t>(ddv), copt, run.cc,
                 ws_lab);

      gi.clear();
      gv.clear();
      for (std::size_t k = 0; k < eu.size(); ++k) {
        if (dv[k] == ddv[k] && du[k] < dv[k]) {
          gi.push_back(dv[k]);
          gv.push_back(du[k]);
        } else if (du[k] == ddu[k] && dv[k] < du[k]) {
          gi.push_back(du[k]);
          gv.push_back(dv[k]);
        }
      }
      ctx.compute(eu.size() * 6, Cat::Work);
      changed = changed || !gi.empty();
      ws_set.invalidate_keys();
      coll::setd_min(ctx, run.d, gi, std::span<const std::uint64_t>(gv),
                     copt, run.cc, ws_set);

      // --- step 2: hook stagnant stars onto any neighbouring component.
      bool any_nonstar = false;
      compute_stars(any_nonstar);
      stu.resize(eu.size());
      stv.resize(ev.size());
      coll::getd(ctx, st, eu, std::span<std::uint64_t>(stu), copt, run.cc,
                 ws_u);
      coll::getd(ctx, st, ev, std::span<std::uint64_t>(stv), copt, run.cc,
                 ws_v);
      // Fresh labels after step 1's grafts, plus a fresh root check on the
      // hook targets.
      coll::getd(ctx, run.d, eu, std::span<std::uint64_t>(du), copt, run.cc,
                 ws_u);
      coll::getd(ctx, run.d, ev, std::span<std::uint64_t>(dv), copt, run.cc,
                 ws_v);
      ws_lab.invalidate_keys();
      coll::getd(ctx, run.d, du, std::span<std::uint64_t>(ddu), copt, run.cc,
                 ws_lab);
      ws_lab.invalidate_keys();
      coll::getd(ctx, run.d, dv, std::span<std::uint64_t>(ddv), copt, run.cc,
                 ws_lab);
      gi.clear();
      gv.clear();
      for (std::size_t k = 0; k < eu.size(); ++k) {
        if (du[k] == dv[k]) continue;
        // Hook a star onto a *smaller* neighbouring label only, and only
        // through a verified root.  Two deviations from the textbook step:
        //  - monotone targets: SV's "hook onto any neighbour" is safe only
        //    with its full stagnancy-counter discipline; unconditional
        //    hooking can close 3-cycles that pointer jumping then rotates
        //    forever.  Monotone hooks keep the pointer graph acyclic.
        //  - fresh root check (du == D[du]): the one-round star detection
        //    leaves stale flags on members of depth >= 3 chains, and
        //    hooking through a non-root label would split its subtree off
        //    the component.
        if (stu[k] && dv[k] < du[k] && ddu[k] == du[k]) {
          gi.push_back(du[k]);
          gv.push_back(dv[k]);
        }
        if (stv[k] && du[k] < dv[k] && ddv[k] == dv[k]) {
          gi.push_back(dv[k]);
          gv.push_back(du[k]);
        }
      }
      ctx.compute(eu.size() * 4, Cat::Work);
      changed = changed || !gi.empty();
      ws_set.invalidate_keys();
      coll::setd_min(ctx, run.d, gi, std::span<const std::uint64_t>(gv),
                     copt, run.cc, ws_set);

      // --- step 3: a single pointer jump.
      const bool jumped =
          jump_round(ctx, run.d, copt, run.cc, ws_lab, par, grand);
      changed = changed || jumped;

      // --- compact.
      if (opt.compact) {
        std::size_t kept = 0;
        for (std::size_t k = 0; k < eu.size(); ++k) {
          if (du[k] == dv[k]) continue;
          eu[kept] = eu[k];
          ev[kept] = ev[k];
          ++kept;
        }
        eu.resize(kept);
        ev.resize(kept);
        ws_u.invalidate_keys();
        ws_v.invalidate_keys();
        ctx.mem_seq(eu.size() * 2 * sizeof(std::uint64_t), Cat::Work);
      }

      if (!pgas::allreduce_or(ctx, changed)) break;
    }
    if (me == 0) run.iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (run.overran.load())
    throw std::runtime_error("sv_coalesced: exceeded iteration bound");

  ParCCResult r;
  run.d.read_all(r.labels);  // global order under any storage layout
  for (std::size_t i = 0; i < n; ++i)
    if (r.labels[i] == i) ++r.num_components;
  r.iterations = run.iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::core
