#include "core/cc_seq.hpp"

#include <unordered_map>
#include <unordered_set>

#include "core/dsu.hpp"

namespace pgraph::core {

SeqCCResult cc_dsu(const graph::EdgeList& el,
                   const machine::MemoryModel* mem) {
  Dsu dsu(el.n);
  for (const graph::Edge& e : el.edges)
    dsu.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
  SeqCCResult r;
  r.labels = dsu.labels();
  r.num_components = count_components(r.labels);
  if (mem) {
    // Streaming the edge list + random parent-array accesses over an
    // n-word working set.
    r.modeled_ns =
        mem->seq_ns(el.m() * sizeof(graph::Edge)) +
        mem->random_ns(dsu.steps(), el.n * sizeof(std::uint64_t),
                       sizeof(std::uint64_t)) +
        mem->compute_ns(el.m() * 4);
  }
  return r;
}

SeqCCResult cc_bfs(const graph::EdgeList& el,
                   const machine::MemoryModel* mem) {
  const graph::Csr csr(el);
  SeqCCResult r;
  r.labels.assign(el.n, UINT64_MAX);
  std::vector<std::uint64_t> queue;
  queue.reserve(el.n);
  std::uint64_t touched_edges = 0;
  for (std::uint64_t root = 0; root < el.n; ++root) {
    if (r.labels[root] != UINT64_MAX) continue;
    ++r.num_components;
    r.labels[root] = root;
    queue.clear();
    queue.push_back(root);
    std::size_t head = 0;
    while (head < queue.size()) {
      const std::uint64_t v = queue[head++];
      for (const std::uint64_t w : csr.neighbors(v)) {
        ++touched_edges;
        if (r.labels[w] == UINT64_MAX) {
          r.labels[w] = root;
          queue.push_back(w);
        }
      }
    }
  }
  if (mem) {
    // CSR rows are streamed but the frontier visits rows in random order;
    // label checks are random accesses over the n-word label array.
    r.modeled_ns =
        mem->seq_ns(csr.directed_edges() * sizeof(graph::VertexId)) +
        mem->random_ns(el.n, csr.directed_edges() * sizeof(graph::VertexId),
                       sizeof(graph::VertexId)) +
        mem->random_ns(touched_edges, el.n * sizeof(std::uint64_t),
                       sizeof(std::uint64_t)) +
        mem->compute_ns(touched_edges + el.n);
  }
  return r;
}

bool same_partition(const std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<std::uint64_t, std::uint64_t> a2b, b2a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [ita, oka] = a2b.try_emplace(a[i], b[i]);
    if (!oka && ita->second != b[i]) return false;
    auto [itb, okb] = b2a.try_emplace(b[i], a[i]);
    if (!okb && itb->second != a[i]) return false;
  }
  return true;
}

std::uint64_t count_components(const std::vector<std::uint64_t>& labels) {
  std::unordered_set<std::uint64_t> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace pgraph::core
