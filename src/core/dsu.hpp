#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace pgraph::core {

/// Union-find with union by rank and path halving.  The sequential
/// ground-truth for connected components and the engine of Kruskal's MST.
/// Tracks the number of find steps so callers can charge a memory model.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
      steps_ += 2;
    }
    ++steps_;
    return x;
  }

  /// Returns true if x and y were in different sets (i.e. a union happened).
  bool unite(std::size_t x, std::size_t y) {
    std::size_t rx = find(x), ry = find(y);
    if (rx == ry) return false;
    if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    if (rank_[rx] == rank_[ry]) ++rank_[rx];
    ++steps_;
    return true;
  }

  std::size_t size() const { return parent_.size(); }

  /// Total parent-array accesses so far (for analytic cost charging).
  std::uint64_t steps() const { return steps_; }

  /// Fully-compressed labels: label[i] = root of i.
  std::vector<std::uint64_t> labels() {
    std::vector<std::uint64_t> out(parent_.size());
    for (std::size_t i = 0; i < parent_.size(); ++i)
      out[i] = static_cast<std::uint64_t>(find(i));
    return out;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::uint64_t steps_ = 0;
};

}  // namespace pgraph::core
