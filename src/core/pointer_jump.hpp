#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "collectives/getd.hpp"
#include "machine/phase_stats.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"

namespace pgraph::core {

/// Initialize D[i] = i over the caller's block, then barrier.
inline void init_labels(pgas::ThreadCtx& ctx,
                        pgas::GlobalArray<std::uint64_t>& d) {
  auto blk = d.local_span(ctx.id());
  // blk[k] holds the k-th element the caller OWNS; its global index comes
  // from the distribution policy (== block_begin + k under block layouts).
  for (std::size_t k = 0; k < blk.size(); ++k)
    blk[k] = d.global_index(ctx.id(), k);
  ctx.mem_seq(blk.size() * sizeof(std::uint64_t), machine::Cat::Work);
  ctx.barrier();
}

/// One lock-step pointer-jumping round over the caller's block:
/// D[i] <- D[D[i]] via GetD ("the algorithm applies pointer-jumping to all
/// vertices in lock step", Section IV).  Returns whether any label changed
/// locally.
///
/// `known` enables the offload optimization and must only be passed when
/// the algorithm guarantees the element stays constant: true for CC (labels
/// hook larger-under-smaller, so D[0] == 0 forever), FALSE for Boruvka
/// (the minimum edge can hook root 0 under another root).
inline bool jump_round(pgas::ThreadCtx& ctx,
                       pgas::GlobalArray<std::uint64_t>& d,
                       const coll::CollectiveOptions& copt,
                       coll::CollectiveContext& cc,
                       coll::CollWorkspace<std::uint64_t>& ws,
                       std::vector<std::uint64_t>& par,
                       std::vector<std::uint64_t>& grand,
                       std::optional<coll::KnownElement> known = std::nullopt) {
  auto blk = d.local_span(ctx.id());
  par.assign(blk.begin(), blk.end());
  ctx.mem_seq(par.size() * sizeof(std::uint64_t), machine::Cat::Copy);
  grand.resize(par.size());
  ws.invalidate_keys();  // parents change every round
  coll::getd(ctx, d, par, std::span<std::uint64_t>(grand), copt, cc, ws,
             known);
  // Direct local writes are a checksum commit point for scrubbed arrays.
  const bool track = d.integrity_tracking_thread(ctx.id());
  bool changed = false;
  for (std::size_t k = 0; k < par.size(); ++k) {
    if (grand[k] != par[k]) {
      if (track)
        d.integrity_note(ctx.id(), d.global_index(ctx.id(), k), par[k],
                         grand[k]);
      blk[k] = grand[k];
      changed = true;
    }
  }
  ctx.mem_seq(par.size() * sizeof(std::uint64_t), machine::Cat::Copy);
  ctx.compute(par.size(), machine::Cat::Work);
  return changed;
}

/// Lock-step pointer jumping "until all trees become rooted stars".
inline void jump_to_stars(pgas::ThreadCtx& ctx,
                          pgas::GlobalArray<std::uint64_t>& d,
                          const coll::CollectiveOptions& copt,
                          coll::CollectiveContext& cc,
                          coll::CollWorkspace<std::uint64_t>& ws,
                          std::vector<std::uint64_t>& par,
                          std::vector<std::uint64_t>& grand,
                          std::optional<coll::KnownElement> known =
                              std::nullopt) {
  for (;;) {
    const bool changed = jump_round(ctx, d, copt, cc, ws, par, grand, known);
    if (!pgas::allreduce_or(ctx, changed)) break;
  }
}

}  // namespace pgraph::core
