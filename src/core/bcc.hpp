#pragma once

#include <cstdint>
#include <vector>

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Biconnected components — the Tarjan-Vishkin algorithm, the third member
/// of the CGM suite the paper's Section II surveys ("connected components,
/// ear decomposition, and biconnected components"), composed from this
/// library's own distributed substrate:
///
///   1. spanning_tree_pgas            (Boruvka + SetDMin collectives)
///   2. build_euler_tour + metrics    (two coalesced Wyllie rankings)
///   3. low/high via preorder-interval range-min/max (local sparse tables)
///   4. the Tarjan-Vishkin auxiliary graph over the tree edges
///   5. cc_coalesced on the auxiliary graph  (GetD/SetD collectives)
///
/// Phases 1, 2 and 5 — the irregular bulk of the work — run on the
/// simulated cluster through the paper's collectives; phases 3 and 4 are
/// linear local passes.
///
/// Input must have no self loops (parallel edges are fine and correctly
/// form 2-cycles/blocks).

struct BccResult {
  /// Per input edge: the id of its biconnected component (block).  Two
  /// edges share a block id iff they lie on a common simple cycle.
  /// Labels are arbitrary but consistent; bridges get singleton blocks.
  std::vector<std::uint64_t> edge_block;
  std::uint64_t num_blocks = 0;
  /// is_articulation[v] == 1 iff removing v disconnects its component.
  std::vector<std::uint8_t> is_articulation;
  RunCosts costs;
};

BccResult bcc_pgas(
    pgas::Runtime& rt, const graph::EdgeList& el,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

/// Sequential Hopcroft-Tarjan (iterative DFS with an edge stack) — ground
/// truth for the block partition and articulation points.
BccResult bcc_sequential(const graph::EdgeList& el);

/// True iff the two results describe the same edge partition and the same
/// articulation set.
bool same_blocks(const BccResult& a, const BccResult& b);

}  // namespace pgraph::core
