#include "core/mst_seq.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "core/dsu.hpp"
#include "graph/csr.hpp"

namespace pgraph::core {

namespace {

/// Bottom-up merge sort of edge indices by (weight, id).  Kruskal's
/// comparator needs a stable total order; merge sort is the cache-friendly
/// choice the paper uses (sequential streams instead of quicksort's
/// partition walks).
std::vector<graph::EdgeId> merge_sort_by_weight(const graph::WEdgeList& el) {
  const std::size_t m = el.m();
  std::vector<graph::EdgeId> a(m), b(m);
  for (std::size_t i = 0; i < m; ++i) a[i] = i;
  const auto less = [&el](graph::EdgeId x, graph::EdgeId y) {
    const auto& ex = el.edges[x];
    const auto& ey = el.edges[y];
    return ex.w != ey.w ? ex.w < ey.w : x < y;
  };
  for (std::size_t width = 1; width < m; width *= 2) {
    for (std::size_t lo = 0; lo < m; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, m);
      const std::size_t hi = std::min(lo + 2 * width, m);
      std::merge(a.begin() + lo, a.begin() + mid, a.begin() + mid,
                 a.begin() + hi, b.begin() + lo, less);
    }
    std::swap(a, b);
  }
  return a;
}

}  // namespace

MstResult mst_kruskal(const graph::WEdgeList& el,
                      const machine::MemoryModel* mem) {
  MstResult r;
  const std::vector<graph::EdgeId> order = merge_sort_by_weight(el);
  Dsu dsu(el.n);
  for (const graph::EdgeId id : order) {
    const graph::WEdge& e = el.edges[id];
    if (dsu.unite(static_cast<std::size_t>(e.u),
                  static_cast<std::size_t>(e.v))) {
      r.edges.push_back(id);
      r.total_weight += e.w;
    }
  }
  if (mem) {
    const std::size_t m = el.m();
    const double passes =
        m < 2 ? 1.0 : std::ceil(std::log2(static_cast<double>(m)));
    // Merge sort: log m streaming passes over m records; then union-find.
    r.modeled_ns =
        passes * 2.0 * mem->seq_ns(m * sizeof(graph::WEdge)) +
        mem->compute_ns(static_cast<std::size_t>(passes) * m) +
        mem->random_ns(dsu.steps(), el.n * sizeof(std::uint64_t),
                       sizeof(std::uint64_t)) +
        mem->compute_ns(m * 4);
  }
  return r;
}

MstResult mst_prim(const graph::WEdgeList& el,
                   const machine::MemoryModel* mem) {
  MstResult r;
  const graph::Csr csr(el);
  // Edge id lookup parallel to CSR is not kept; instead run Prim over CSR
  // and recover edge ids afterwards is wasteful.  We run Prim directly on
  // (weight, target) and track the chosen (u, v, w) triples, then map to
  // ids via a hash of the input.  Simpler: Prim over the edge list with a
  // heap keyed by (weight, edge id), scanning adjacency through CSR row
  // cursors.  To keep ids exact we build an id-carrying CSR here.
  std::vector<std::size_t> off(el.n + 1, 0);
  for (const auto& e : el.edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t i = 1; i <= el.n; ++i) off[i] += off[i - 1];
  std::vector<std::pair<graph::VertexId, graph::EdgeId>> adj(off[el.n]);
  {
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (std::size_t id = 0; id < el.m(); ++id) {
      const auto& e = el.edges[id];
      adj[cur[e.u]++] = {e.v, id};
      adj[cur[e.v]++] = {e.u, id};
    }
  }

  std::vector<bool> in_tree(el.n, false);
  using HeapItem = std::tuple<graph::Weight, graph::EdgeId, graph::VertexId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::uint64_t heap_ops = 0;

  for (graph::VertexId root = 0; root < el.n; ++root) {
    if (in_tree[root]) continue;
    in_tree[root] = true;
    const auto push_frontier = [&](graph::VertexId v) {
      for (std::size_t k = off[v]; k < off[v + 1]; ++k) {
        const auto [to, id] = adj[k];
        if (!in_tree[to]) {
          heap.emplace(el.edges[id].w, id, to);
          ++heap_ops;
        }
      }
    };
    push_frontier(root);
    while (!heap.empty()) {
      const auto [w, id, to] = heap.top();
      heap.pop();
      ++heap_ops;
      if (in_tree[to]) continue;
      in_tree[to] = true;
      r.edges.push_back(id);
      r.total_weight += w;
      push_frontier(to);
    }
  }
  if (mem) {
    const double lg =
        el.m() < 2 ? 1.0 : std::log2(static_cast<double>(el.m()));
    r.modeled_ns =
        mem->random_ns(2 * el.m(), el.n * sizeof(std::uint64_t), 1) +
        mem->random_ns(heap_ops, el.m() * 24, 24) +
        mem->compute_ns(static_cast<std::size_t>(
            static_cast<double>(heap_ops) * lg));
  }
  return r;
}

MstResult mst_boruvka(const graph::WEdgeList& el,
                      const machine::MemoryModel* mem) {
  MstResult r;
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> d(el.n);
  for (std::size_t i = 0; i < el.n; ++i) d[i] = i;
  std::vector<graph::EdgeId> active(el.m());
  for (std::size_t i = 0; i < el.m(); ++i) active[i] = i;
  std::vector<std::uint64_t> best(el.n, kInf);  // packed (w<<32)|eid
  std::uint64_t touches = 0;

  while (!active.empty()) {
    // Find the minimum incident edge of every supervertex.
    bool any = false;
    for (const graph::EdgeId id : active) {
      const auto& e = el.edges[id];
      const std::uint64_t du = d[e.u], dv = d[e.v];
      touches += 2;
      if (du == dv) continue;
      any = true;
      const std::uint64_t packed = (e.w << 32) | id;
      if (packed < best[du]) best[du] = packed;
      if (packed < best[dv]) best[dv] = packed;
      touches += 2;
    }
    if (!any) break;

    // Graft each supervertex along its winning edge.  Chasing to the
    // current root (rather than trusting the pre-graft labels) both
    // dedupes edges that won for two components and keeps earlier grafts
    // of this round intact; with the unique (w, id) tie-break the winner
    // set is cycle-free (classic Boruvka lemma for distinct weights).
    const auto find_root = [&d, &touches](std::uint64_t x) {
      while (d[x] != x) {
        d[x] = d[d[x]];
        x = d[x];
        touches += 2;
      }
      return x;
    };
    for (std::size_t c = 0; c < el.n; ++c) {
      if (best[c] == kInf) continue;
      const graph::EdgeId id = best[c] & 0xffffffffULL;
      const auto& e = el.edges[id];
      const std::uint64_t a = find_root(e.u), b = find_root(e.v);
      if (a == b) continue;  // the other endpoint's graft already merged us
      // Hook the larger root under the smaller.
      d[std::max(a, b)] = std::min(a, b);
      r.edges.push_back(id);
      r.total_weight += e.w;
    }
    std::fill(best.begin(), best.end(), kInf);

    // Shortcut to rooted stars.
    for (std::size_t i = 0; i < el.n; ++i) {
      while (d[i] != d[d[i]]) {
        d[i] = d[d[i]];
        touches += 2;
      }
    }

    // Compact: drop intra-component edges.
    std::vector<graph::EdgeId> next;
    next.reserve(active.size());
    for (const graph::EdgeId id : active) {
      const auto& e = el.edges[id];
      if (d[e.u] != d[e.v]) next.push_back(id);
    }
    active.swap(next);
  }
  if (mem) {
    r.modeled_ns = mem->random_ns(touches, el.n * sizeof(std::uint64_t),
                                  sizeof(std::uint64_t)) +
                   mem->compute_ns(touches);
  }
  return r;
}

bool is_spanning_forest(const graph::WEdgeList& el, const MstResult& r) {
  std::unordered_set<graph::EdgeId> distinct;
  Dsu forest(el.n);
  std::uint64_t w = 0;
  for (const graph::EdgeId id : r.edges) {
    if (id >= el.m()) return false;
    if (!distinct.insert(id).second) return false;  // duplicate
    const auto& e = el.edges[id];
    if (!forest.unite(static_cast<std::size_t>(e.u),
                      static_cast<std::size_t>(e.v)))
      return false;  // cycle
    w += e.w;
  }
  if (w != r.total_weight) return false;
  // Spanning: the forest must connect exactly the components of el.
  Dsu full(el.n);
  std::uint64_t full_comps = el.n;
  for (const auto& e : el.edges)
    if (full.unite(static_cast<std::size_t>(e.u),
                   static_cast<std::size_t>(e.v)))
      --full_comps;
  const std::uint64_t forest_comps = el.n - r.edges.size();
  return forest_comps == full_comps;
}

}  // namespace pgraph::core
