#pragma once

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Options for the collective-based parallel Boruvka MST.
struct MstOptions {
  coll::CollectiveOptions coll = coll::CollectiveOptions::optimized();
  bool compact = true;
  int max_iters = 0;
  /// At-rest integrity: scrub the label array every k real loop trips
  /// (0 = off); checkpoints/mirrors only refresh on scrub-validated trips.
  /// See CcOptions::scrub_interval and docs/ROBUSTNESS.md.
  int scrub_interval = 0;

  static MstOptions base() {
    MstOptions o;
    o.coll = coll::CollectiveOptions::base();
    o.compact = false;
    return o;
  }
  static MstOptions optimized(int tprime = 0) {
    MstOptions o;
    o.coll = coll::CollectiveOptions::optimized(tprime);
    o.compact = true;
    return o;
  }
};

/// Parallel Boruvka rewritten with GetD / SetDMin (Section IV): the
/// SetDMin priority-write collective replaces MST-SMP's fine-grained locks
/// for the minimum-weight-edge reduction per supervertex.  Requires
/// weights < 2^32 and edge count < 2^32 (packed (w, id) records).
ParMstResult mst_pgas(pgas::Runtime& rt, const graph::WEdgeList& el,
                      const MstOptions& opt = {});

/// Spanning forest of an unweighted graph ("the closely-related spanning
/// tree problem", Section II): Boruvka with unit weights, so the per-
/// supervertex SetDMin reduction picks the smallest-id incident edge and
/// the result is a deterministic spanning forest (edge ids into `el`).
ParMstResult spanning_tree_pgas(pgas::Runtime& rt, const graph::EdgeList& el,
                                const MstOptions& opt = {});

}  // namespace pgraph::core
