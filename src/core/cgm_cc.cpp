#include "core/cgm_cc.hpp"

#include <chrono>
#include <unordered_map>

#include "core/cc_seq.hpp"
#include "core/dsu.hpp"
#include "pgas/coll.hpp"
#include "pgas/global_array.hpp"

namespace pgraph::core {

using machine::Cat;

namespace {

/// Union-find over a sparse vertex set (a chunk touches at most 2*|chunk|
/// distinct vertices, far fewer than n for large p).
class HashDsu {
 public:
  std::uint64_t find(std::uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_.emplace(x, x);
      ++steps_;
      return x;
    }
    std::uint64_t root = x;
    for (;;) {
      const auto pit = parent_.find(root);
      if (pit->second == root) break;
      root = pit->second;
      ++steps_;
    }
    while (x != root) {  // full path compression
      const auto pit = parent_.find(x);
      x = pit->second;
      pit->second = root;
      ++steps_;
    }
    return root;
  }

  bool unite(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    parent_[std::max(ra, rb)] = std::min(ra, rb);
    ++steps_;
    return true;
  }

  std::uint64_t steps() const { return steps_; }
  std::size_t size() const { return parent_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
  std::uint64_t steps_ = 0;
};

}  // namespace

ParCCResult cgm_cc(pgas::Runtime& rt, const graph::EdgeList& el) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();

  const std::size_t n = el.n;
  const int s = rt.topo().total_threads();

  pgas::GlobalArray<std::uint64_t> d(rt, n);

  struct ForestView {
    const graph::Edge* data = nullptr;
    std::size_t count = 0;
  };
  std::vector<ForestView> views(static_cast<std::size_t>(s));

  rt.run([&](pgas::ThreadCtx& ctx) {
    const int me = ctx.id();

    // --- local contraction: spanning forest of my chunk.
    const auto chunk = graph::edge_chunk(el.edges, s, me);
    HashDsu dsu;
    std::vector<graph::Edge> forest;
    forest.reserve(chunk.size() / 4 + 16);
    for (const graph::Edge& e : chunk)
      if (dsu.unite(e.u, e.v)) forest.push_back(e);
    ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);
    // Hash-map unions: random accesses over the touched-vertex set.
    ctx.mem_random(dsu.steps(), dsu.size() * 32, 16, Cat::Work);
    ctx.compute(chunk.size() * 8, Cat::Work);

    // --- binomial-tree merge: O(log p) rounds, one long message per pair.
    for (int stride = 1; stride < s; stride *= 2) {
      views[static_cast<std::size_t>(me)] = {forest.data(), forest.size()};
      ctx.barrier();
      const bool receiver = me % (2 * stride) == 0;
      const bool sender = me % (2 * stride) == stride;
      if (sender) {
        // One coalesced message with my whole forest (CGM: "all information
        // sent from a given processor to another... packed into one long
        // message").
        ctx.post_exchange_msg(me - stride,
                              forest.size() * sizeof(graph::Edge));
      } else if (receiver && me + stride < s) {
        const ForestView pv = views[static_cast<std::size_t>(me + stride)];
        for (std::size_t k = 0; k < pv.count; ++k)
          if (dsu.unite(pv.data[k].u, pv.data[k].v))
            forest.push_back(pv.data[k]);
        ctx.mem_seq(pv.count * sizeof(graph::Edge), Cat::Work);
        ctx.mem_random(pv.count * 3, dsu.size() * 32, 16, Cat::Work);
      }
      ctx.exchange_barrier();
      if (sender) forest.clear();
    }

    // --- sequential finish on thread 0: label all n vertices from the
    // merged forest (everyone else idles — the cost the paper criticizes).
    if (me == 0) {
      Dsu full(n);
      for (const graph::Edge& e : forest)
        full.unite(static_cast<std::size_t>(e.u),
                   static_cast<std::size_t>(e.v));
      const std::uint64_t steps0 = full.steps();
      std::vector<std::uint64_t> labels = full.labels();
      ctx.mem_random(steps0 + full.steps(), n * 8, 8, Cat::Work);
      // Scatter the result into the distributed array: one bulk put per
      // thread block (the broadcast round of the CGM algorithm).
      for (int t = 0; t < s; ++t) {
        const std::size_t lo = d.block_begin(t);
        const std::size_t cnt = d.local_size(t);
        if (cnt > 0) d.memput(ctx, lo, cnt, labels.data() + lo, Cat::Comm);
      }
    }
    ctx.barrier();
  });

  ParCCResult r;
  r.labels.assign(d.raw_all().begin(), d.raw_all().end());
  r.num_components = count_components(r.labels);
  r.iterations = 1;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::core
