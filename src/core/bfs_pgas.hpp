#pragma once

#include <cstdint>
#include <vector>

#include "collectives/options.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::core {

/// Level-synchronous distributed BFS, in the style the paper's
/// introduction cites (Yoo et al. on BlueGene/L) as the only prior
/// distributed-memory graph result with reasonable performance — and
/// criticizes: "the parallel BFS implementation has a lower bound of O(d)
/// ... for the running time regardless of the number of processors", where
/// d is the diameter.  CC/MST-style poly-log algorithms behave differently
/// (see bench/abl06_bfs_diameter).
///
/// The frontier is expanded edge-centrically with the coalesced
/// collectives: per level, read dist at both endpoints of the active edges
/// (GetD), propose level+1 for the unvisited side of frontier edges
/// (SetDMin), and drop edges whose both endpoints are settled (compact).

inline constexpr std::uint64_t kBfsUnreached = ~0ull;

struct BfsResult {
  std::vector<std::uint64_t> dist;  ///< kBfsUnreached if not reachable
  int levels = 0;                   ///< number of frontier expansions
  RunCosts costs;
};

BfsResult bfs_pgas(
    pgas::Runtime& rt, const graph::EdgeList& el, std::uint64_t source,
    const coll::CollectiveOptions& opt = coll::CollectiveOptions::optimized());

/// Sequential BFS distances (CSR, FIFO queue) — ground truth.
std::vector<std::uint64_t> bfs_sequential_dist(
    const graph::EdgeList& el, std::uint64_t source,
    const machine::MemoryModel* mem = nullptr, double* modeled_ns = nullptr);

}  // namespace pgraph::core
