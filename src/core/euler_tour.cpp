#include "core/euler_tour.hpp"

#include <cassert>
#include <stdexcept>

#include "core/dsu.hpp"
#include "core/list_ranking.hpp"

namespace pgraph::core {

EulerTour build_euler_tour(const graph::EdgeList& tree, std::uint64_t root) {
  const std::size_t n = tree.n;
  if (root >= n) throw std::invalid_argument("build_euler_tour: bad root");
  {
    Dsu acyclic(n);
    for (const auto& e : tree.edges)
      if (!acyclic.unite(e.u, e.v))
        throw std::invalid_argument("build_euler_tour: edges contain a cycle");
  }

  EulerTour t;
  t.n = n;
  t.root = root;
  const std::size_t arcs = 2 * tree.m();
  t.succ.assign(arcs, 0);
  t.arc_from.assign(arcs, 0);
  t.arc_to.assign(arcs, 0);
  t.first_arc.assign(n, UINT64_MAX);
  t.arc_comp_root.assign(arcs, 0);

  // Adjacency of outgoing arcs per vertex (arc 2e: u->v, 2e+1: v->u).
  std::vector<std::size_t> off(n + 1, 0);
  for (const auto& e : tree.edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) off[i] += off[i - 1];
  std::vector<std::uint64_t> out(arcs);
  std::vector<std::size_t> pos_in_adj(arcs);  // position of arc in from's list
  {
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (std::size_t e = 0; e < tree.m(); ++e) {
      const auto& ed = tree.edges[e];
      t.arc_from[2 * e] = ed.u;
      t.arc_to[2 * e] = ed.v;
      t.arc_from[2 * e + 1] = ed.v;
      t.arc_to[2 * e + 1] = ed.u;
      pos_in_adj[2 * e] = cur[ed.u];
      out[cur[ed.u]++] = 2 * e;
      pos_in_adj[2 * e + 1] = cur[ed.v];
      out[cur[ed.v]++] = 2 * e + 1;
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (off[v] != off[v + 1]) t.first_arc[v] = out[off[v]];

  // Classic tour successor: succ(u->v) = the arc after (v->u) in v's
  // circular adjacency.  This chains every component's arcs into one cycle.
  for (std::size_t a = 0; a < arcs; ++a) {
    const std::uint64_t rev = a ^ 1ull;
    const std::uint64_t v = t.arc_from[rev];
    const std::size_t p = pos_in_adj[rev];
    const std::size_t next_p = p + 1 < off[v + 1] ? p + 1 : off[v];
    t.succ[a] = out[next_p];
  }

  // Break each component's cycle into a list at its root: terminate the
  // arc whose successor is the root's first outgoing arc (by construction
  // the reverse of the arc before it in the root's circular adjacency).
  const auto break_at = [&](std::uint64_t v) {
    const std::uint64_t start = t.first_arc[v];
    if (start == UINT64_MAX) return;
    const std::size_t p = pos_in_adj[start];
    const std::size_t prev_p = p == off[v] ? off[v + 1] - 1 : p - 1;
    const std::uint64_t last = out[prev_p] ^ 1ull;  // (x->v) arriving arc
    assert(t.succ[last] == start);
    t.succ[last] = last;  // tail
  };

  // Component roots: `root` for its own component, the minimum vertex for
  // every other component with edges, and every isolated vertex.
  {
    Dsu comp(n);
    for (const auto& e : tree.edges) comp.unite(e.u, e.v);
    const auto root_rep = comp.find(root);
    std::vector<std::uint64_t> canon(n, UINT64_MAX);
    canon[root_rep] = root;
    for (std::size_t v = 0; v < n; ++v) {
      const auto r = comp.find(v);
      if (canon[r] == UINT64_MAX) canon[r] = v;  // minimum v per component
    }
    for (std::size_t a = 0; a < arcs; ++a)
      t.arc_comp_root[a] = canon[comp.find(t.arc_from[a])];
    std::vector<bool> seen(n, false);
    for (std::size_t v = 0; v < n; ++v) {
      const auto c = canon[comp.find(v)];
      if (!seen[c]) {
        seen[c] = true;
        t.comp_roots.push_back(c);
        break_at(c);
      }
    }
  }
  return t;
}

namespace {

void accumulate(RunCosts& into, const RunCosts& c) {
  into.modeled_ns += c.modeled_ns;
  into.wall_s += c.wall_s;
  into.breakdown.merge_sum(c.breakdown);
  into.messages += c.messages;
  into.fine_messages += c.fine_messages;
  into.bytes += c.bytes;
  into.barriers += c.barriers;
}

}  // namespace

TreeMetrics euler_tour_metrics(pgas::Runtime& rt, const EulerTour& tour,
                               const coll::CollectiveOptions& opt) {
  TreeMetrics m;
  const std::size_t n = tour.n;
  m.depth.assign(n, UINT64_MAX);
  m.subtree_size.assign(n, 0);
  m.parent.assign(n, UINT64_MAX);
  m.preorder.assign(n, UINT64_MAX);
  for (const auto r : tour.comp_roots) {
    m.depth[r] = 0;
    m.parent[r] = r;
    m.subtree_size[r] = 1;  // refined below for components with edges
    m.preorder[r] = 0;
  }
  if (tour.arcs() == 0) return m;

  // Phase 1: unit-weight ranking orients the arcs — (u->v) is downward iff
  // it appears before its reverse, i.e. has the larger suffix count.
  const auto r1 = list_ranking_pgas(rt, tour.succ, opt);
  accumulate(m.costs, r1.costs);
  m.ranking_rounds = r1.rounds;

  // Phase 2: +1 on down arcs, -1 (two's complement) on up arcs; the
  // exclusive suffix sum then gives -depth at each down arc.
  std::vector<std::uint64_t> w(tour.arcs());
  for (std::size_t e = 0; e < tour.arcs() / 2; ++e) {
    const bool down_is_even = r1.ranks[2 * e] > r1.ranks[2 * e + 1];
    w[2 * e] = down_is_even ? 1 : ~0ull;      // +1 / -1
    w[2 * e + 1] = down_is_even ? ~0ull : 1;  // the reverse
  }
  const auto r2 = list_ranking_weighted_pgas(rt, tour.succ, w, opt);
  accumulate(m.costs, r2.costs);
  m.ranking_rounds += r2.rounds;

  // Per-component arc counts (= rank of the component's first arc + 1).
  std::vector<std::uint64_t> comp_arcs(n, 0);
  for (const auto r : tour.comp_roots)
    if (tour.first_arc[r] != UINT64_MAX)
      comp_arcs[r] = r1.ranks[tour.first_arc[r]] + 1;
  for (const auto r : tour.comp_roots)
    m.subtree_size[r] = comp_arcs[r] / 2 + 1;

  // Assemble metrics from the two rankings (a local linear pass).
  for (std::size_t e = 0; e < tour.arcs() / 2; ++e) {
    const std::uint64_t down = w[2 * e] == 1 ? 2 * e : 2 * e + 1;
    const std::uint64_t up = down ^ 1ull;
    const std::uint64_t child = tour.arc_to[down];
    const std::uint64_t croot = tour.arc_comp_root[down];
    assert(child != croot);  // a true down arc never re-enters the root
    m.parent[child] = tour.arc_from[down];
    // Exclusive suffix of the +1/-1 weights after the down arc is
    // -depth(child): everything below closes its own brackets, and
    // depth(child) up-arcs remain unmatched.
    m.depth[child] = 0 - r2.ranks[down];
    m.subtree_size[child] = (r1.ranks[down] - r1.ranks[up]) / 2 + 1;
    // Position of the down arc within its component's list, then count the
    // down arcs in the inclusive prefix: (pos + 1 + depth) / 2 = preorder.
    const std::uint64_t pos = comp_arcs[croot] - 1 - r1.ranks[down];
    m.preorder[child] = (pos + 1 + m.depth[child]) / 2;
  }
  return m;
}

TreeMetrics tree_metrics_sequential(const graph::EdgeList& tree,
                                    std::uint64_t root) {
  const std::size_t n = tree.n;
  TreeMetrics m;
  m.depth.assign(n, UINT64_MAX);
  m.subtree_size.assign(n, 0);
  m.parent.assign(n, UINT64_MAX);
  m.preorder.assign(n, UINT64_MAX);

  std::vector<std::size_t> off(n + 1, 0);
  for (const auto& e : tree.edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) off[i] += off[i - 1];
  std::vector<std::uint64_t> adj(2 * tree.m());
  {
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (const auto& e : tree.edges) {
      adj[cur[e.u]++] = e.v;
      adj[cur[e.v]++] = e.u;
    }
  }

  // Component roots, matching build_euler_tour's convention.
  Dsu comp(n);
  for (const auto& e : tree.edges) comp.unite(e.u, e.v);
  const auto root_rep = comp.find(root);
  std::vector<std::uint64_t> canon(n, UINT64_MAX);
  canon[root_rep] = root;
  for (std::size_t v = 0; v < n; ++v) {
    const auto r = comp.find(v);
    if (canon[r] == UINT64_MAX) canon[r] = v;
  }

  std::vector<std::uint64_t> stack, order;
  order.reserve(n);
  std::vector<bool> rooted(n, false);
  for (std::size_t v0 = 0; v0 < n; ++v0) {
    const std::uint64_t r = canon[comp.find(v0)];
    if (rooted[r]) continue;
    rooted[r] = true;
    m.depth[r] = 0;
    m.parent[r] = r;
    std::uint64_t pre = 0;
    stack.assign(1, r);
    const std::size_t comp_begin = order.size();
    while (!stack.empty()) {
      const std::uint64_t v = stack.back();
      stack.pop_back();
      order.push_back(v);
      m.preorder[v] = pre++;
      for (std::size_t k = off[v]; k < off[v + 1]; ++k) {
        const std::uint64_t u = adj[k];
        if (m.depth[u] != UINT64_MAX) continue;
        m.depth[u] = m.depth[v] + 1;
        m.parent[u] = v;
        stack.push_back(u);
      }
    }
    for (std::size_t k = order.size(); k-- > comp_begin;) {
      const std::uint64_t v = order[k];
      m.subtree_size[v] += 1;
      if (v != r) m.subtree_size[m.parent[v]] += m.subtree_size[v];
    }
  }
  return m;
}

}  // namespace pgraph::core
