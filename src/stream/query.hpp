#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/par_common.hpp"
#include "graph/types.hpp"

namespace pgraph::stream {

/// One batch of connectivity queries against a published label epoch.
///
/// Queries never touch the live label array: they are answered from the
/// epoch-versioned snapshots DynamicGraph publishes after each update
/// batch, so a query batch reads one consistent epoch even while the next
/// update batch is being ingested.  `epoch` selects which snapshot;
/// kLatest means "newest published".  Only epochs still in the snapshot
/// ring (the last kEpochRing published) can be served.
struct QueryBatch {
  static constexpr std::uint64_t kLatest = ~0ull;

  std::uint64_t epoch = kLatest;
  /// same_component[i] -> are the two endpoints connected at `epoch`?
  std::vector<std::pair<graph::VertexId, graph::VertexId>> same_component;
  /// component_size[i] -> number of vertices in this vertex's component.
  std::vector<graph::VertexId> component_size;
  /// Trace-scope name the serving run is attributed to in the Chrome trace.
  /// Must be a string literal (TraceScope keeps the pointer); the serving
  /// layer tags its coalesced flushes "serve.flush" so they are separable
  /// from direct "stream.query" batches in the same trace.
  const char* scope = "stream.query";
};

/// Answers to one QueryBatch, plus the modeled cost of serving it.
struct QueryResult {
  std::uint64_t epoch = 0;  ///< the epoch that was actually served
  std::vector<std::uint8_t> same;   ///< parallel to QueryBatch::same_component
  std::vector<std::uint64_t> size;  ///< parallel to QueryBatch::component_size
  core::RunCosts costs;
  /// Modeled ns of the lazy component-size aggregation this batch
  /// triggered (subset of costs.modeled_ns).  The aggregation runs at most
  /// once per published epoch; batches served from the cached sizes report
  /// 0 here.
  double agg_ns = 0.0;
};

}  // namespace pgraph::stream
