#include "stream/dynamic_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "collectives/detail.hpp"
#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "fault/fault.hpp"
#include "pgas/coll.hpp"
#include "pgas/digest.hpp"
#include "pgas/replica.hpp"
#include "sched/virtual_threads.hpp"
#include "stream/cc_incremental.hpp"

namespace pgraph::stream {

using machine::Cat;

namespace {

/// Pack an unordered vertex pair into an edge-store key (ids < 2^32).
std::uint64_t pair_key(graph::VertexId u, graph::VertexId v) {
  if (u > v) std::swap(u, v);
  return (u << 32) | v;
}

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DynamicGraph::DynamicGraph(pgas::Runtime& rt, const graph::EdgeList& base,
                           Options opt)
    : rt_(rt),
      n_(base.n),
      opt_(opt),
      d_(rt, base.n == 0 ? 1 : base.n,
         rt.make_partitioning(base.n == 0 ? 1 : base.n)),
      cc_(rt),
      edges_(static_cast<std::size_t>(rt.topo().total_threads())),
      pos_(static_cast<std::size_t>(rt.topo().total_threads())),
      fresh_tls_(static_cast<std::size_t>(rt.topo().total_threads())) {
  if (n_ == 0) throw std::invalid_argument("DynamicGraph: need n >= 1");
  if (n_ > (1ULL << 32))
    throw std::invalid_argument("DynamicGraph: vertex ids must fit 32 bits");
  // The snapshot ring and size arrays MUST share the live array's layout:
  // publish/compute_sizes copy slot-parallel local slices between them.
  for (std::size_t i = 0; i < kEpochRing; ++i) {
    snap_[i] = std::make_unique<pgas::GlobalArray<std::uint64_t>>(
        rt_, n_, rt_.make_partitioning(n_));
    sizes_[i] = std::make_unique<pgas::GlobalArray<std::uint64_t>>(
        rt_, n_, rt_.make_partitioning(n_));
  }

  initial_.ops = base.edges.size();
  for (const graph::Edge& e : base.edges) {
    if (e.u >= n_ || e.v >= n_ || e.u == e.v) {
      ++initial_.ignored;
      continue;
    }
    const int t = d_.owner(e.u);
    auto& posm = pos_[static_cast<std::size_t>(t)];
    const auto [it, fresh] = posm.emplace(
        pair_key(e.u, e.v), edges_[static_cast<std::size_t>(t)].size());
    if (!fresh) {
      ++initial_.ignored;
      continue;
    }
    edges_[static_cast<std::size_t>(t)].push_back(e);
    ++initial_.inserted;
  }

  rebuild(initial_);
  publish_recover(initial_);  // epoch 0
}

std::size_t DynamicGraph::live_edges() const {
  std::size_t m = 0;
  for (const auto& v : edges_) m += v.size();
  return m;
}

graph::EdgeList DynamicGraph::materialize() const {
  graph::EdgeList el;
  el.n = n_;
  el.edges.reserve(live_edges());
  for (const auto& v : edges_)
    el.edges.insert(el.edges.end(), v.begin(), v.end());
  return el;
}

std::uint64_t DynamicGraph::num_components() const {
  std::size_t slot = kEpochRing;
  for (std::size_t i = 0; i < kEpochRing; ++i)
    if (snap_valid_[i] && snap_epoch_[i] == epoch_) slot = i;
  assert(slot < kEpochRing && "latest epoch must be published");
  std::vector<std::uint64_t> labels;
  snap_[slot]->read_all(labels);  // global order under any layout
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == i) ++c;
  return c;
}

void DynamicGraph::ingest(std::span<const graph::EdgeUpdate> ops,
                          BatchStats& st) {
  const auto t0 = std::chrono::steady_clock::now();
  rt_.reset_costs();
  for (auto& f : fresh_tls_) f.clear();

  const int s_total = rt_.topo().total_threads();
  // Owners stage their received record batches here, in requester-id order
  // (= global timestamp order, since chunks are contiguous ts ranges); the
  // edge stores are mutated host-side only after the SPMD routing phase
  // succeeded, so a permanent node loss mid-exchange leaves the stores
  // untouched and the phase simply re-runs on the surviving topology.
  std::vector<std::vector<std::uint64_t>> stage(
      static_cast<std::size_t>(s_total));
  const coll::CollectiveOptions& copt = opt_.cc.coll;

  const auto spmd = [&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts_ingest(ctx, "stream.ingest");
    const int s = ctx.nthreads();
    const int me = ctx.id();
    const auto [lo, hi] = graph::even_chunk(ops.size(), s, me);
    const std::size_t mloc = hi - lo;
    // One bucket per owner thread: the same count-sort scheduling as SetD
    // (Algorithm 1 at the cluster level; no cache-level recursion needed,
    // owners apply to hash stores rather than array blocks).
    const sched::VBlocks vb(d_.part(), 1);

    // --- group: stable count-sort of this chunk's updates by owner(u).
    // Records are (u, v<<1 | kind) word pairs; stability keeps timestamp
    // order within each owner, and chunks are contiguous timestamp ranges,
    // so owners applying requester batches in id order replay the global
    // timestamp order.
    std::vector<std::uint64_t> sa(mloc), sb(mloc);
    std::vector<std::size_t> off(static_cast<std::size_t>(s) + 1, 0);
    {
      pgas::TraceScope ts(ctx, "stream.ingest.group");
      for (std::size_t k = 0; k < mloc; ++k)
        ++off[static_cast<std::size_t>(vb.owner(ops[lo + k].u)) + 1];
      for (int t = 0; t < s; ++t)
        off[static_cast<std::size_t>(t) + 1] +=
            off[static_cast<std::size_t>(t)];
      std::vector<std::size_t> cur(off.begin(), off.end() - 1);
      for (std::size_t k = 0; k < mloc; ++k) {
        const graph::EdgeUpdate& op = ops[lo + k];
        const std::size_t pos =
            cur[static_cast<std::size_t>(vb.owner(op.u))]++;
        sa[pos] = op.u;
        sb[pos] = (op.v << 1) |
                  static_cast<std::uint64_t>(op.kind == graph::UpdateKind::Erase);
      }
      coll::detail::charge_group_sort(ctx, mloc, static_cast<std::size_t>(s),
                                      16);
    }

    // --- setup: publish counts/offsets through the shared SMatrix/PMatrix.
    {
      pgas::TraceScope ts(ctx, "stream.ingest.setup");
      ctx.publish(coll::kSlotIdx, sa.data());
      ctx.publish(coll::kSlotVal, sb.data());
      coll::detail::write_matrices(ctx, cc_, off, copt);
    }
    ctx.exchange_barrier();

    // --- apply (owner side): one coalesced message per requester carrying
    // its record batch, applied to this owner's private edge store.
    {
      pgas::TraceScope ts(ctx, "stream.ingest.apply");
      const auto srow = cc_.smatrix.local_span(me);
      const auto prow = cc_.pmatrix.local_span(me);
      ctx.mem_seq(2 * static_cast<std::size_t>(s) * sizeof(std::uint64_t),
                  Cat::Setup);
      // Messages are posted in the exchange-loop visit order (circular
      // when enabled) like SetD's apply phase ...
      for (int step = 0; step < s; ++step) {
        const int j = coll::detail::peer_at(copt, me, s, step);
        const std::size_t cnt = srow[static_cast<std::size_t>(j)];
        if (cnt == 0 || j == me) continue;
        ctx.post_exchange_msg(j, cnt * 16);
      }
      // ... but staged in requester-id order, which is global timestamp
      // order (chunks are contiguous ts ranges).  The label read per erase
      // and the hash-store probe per record are charged here even though
      // the functional application happens host-side after the run.
      auto& mine = stage[static_cast<std::size_t>(me)];
      const std::size_t store_now = edges_[static_cast<std::size_t>(me)].size();
      for (int j = 0; j < s; ++j) {
        const std::size_t cnt = srow[static_cast<std::size_t>(j)];
        if (cnt == 0) continue;
        const std::size_t boff = prow[static_cast<std::size_t>(j)];
        const std::uint64_t* ra =
            ctx.peer_as<std::uint64_t>(j, coll::kSlotIdx) + boff;
        const std::uint64_t* rb =
            ctx.peer_as<std::uint64_t>(j, coll::kSlotVal) + boff;
        for (std::size_t k = 0; k < cnt; ++k) {
          mine.push_back(ra[k]);
          mine.push_back(rb[k]);
        }
        // Streamed read of the record batch plus hash-store traffic over
        // the live-edge working set (key probe + slot update per record).
        ctx.mem_seq(cnt * 16, Cat::Copy);
        const std::size_t store_bytes = std::max<std::size_t>(
            64, (store_now + cnt) * (sizeof(graph::Edge) + 24));
        ctx.mem_random(cnt, store_bytes, 16, Cat::Work);
        ctx.compute(cnt * 12, Cat::Work);
      }
    }
    ctx.exchange_barrier();
  };

  for (int attempt = 0;; ++attempt) {
    for (auto& v : stage) v.clear();
    try {
      rt_.run(spmd);
      break;
    } catch (const fault::FaultError& fe) {
      // The unwound collective may leave smatrix desynced from the
      // skip cache (a shrink restores the lost node's rows outright);
      // force a full matrix republish whether we retry here or the
      // caller does.
      cc_.invalidate_skip_cache();
      if (fe.kind() != fault::FaultKind::PermanentLoss || attempt > 0) throw;
      // The shrink promoted the published mirrors (live labels and the
      // snapshot ring are back to the last published epoch, the stores
      // were never touched); redo the routing on the survivors.  Costs of
      // the aborted attempt stay on the clock: degraded mode is not free.
    }
  }

  // Apply the staged records owner by owner.  Within an owner, records are
  // in global timestamp order; across owners the streams are disjoint (an
  // owner sees exactly the updates of its own vertices' edges), so this
  // replay is equivalent to a sequential pass over the batch.
  std::size_t inserted = 0, erased = 0, ignored = 0, dirty = 0;
  for (int t = 0; t < s_total; ++t) {
    auto& store = edges_[static_cast<std::size_t>(t)];
    auto& posm = pos_[static_cast<std::size_t>(t)];
    auto& freshv = fresh_tls_[static_cast<std::size_t>(t)];
    const auto& mine = stage[static_cast<std::size_t>(t)];
    std::unordered_set<std::uint64_t> droots;
    for (std::size_t k = 0; k + 2 <= mine.size(); k += 2) {
      const graph::VertexId u = mine[k];
      const graph::VertexId v = mine[k + 1] >> 1;
      const bool erase = (mine[k + 1] & 1) != 0;
      assert(u < n_ && v < n_);
      const std::uint64_t key = pair_key(u, v);
      if (!erase) {
        if (u == v) {
          ++ignored;
          continue;
        }
        const auto [it, fresh] = posm.emplace(key, store.size());
        if (!fresh) {
          ++ignored;
          continue;
        }
        store.push_back({u, v});
        freshv.push_back({u, v});
        ++inserted;
      } else {
        const auto it = posm.find(key);
        if (it == posm.end()) {
          ++ignored;
          continue;
        }
        // The erased edge's component (pre-batch label) becomes dirty:
        // its connectivity may have split.
        droots.insert(d_.raw(u));
        const std::size_t slot = it->second;
        posm.erase(it);
        const graph::Edge moved = store.back();
        store[slot] = moved;
        store.pop_back();
        if (slot < store.size()) posm[pair_key(moved.u, moved.v)] = slot;
        ++erased;
      }
    }
    dirty += droots.size();
  }

  st.ops = ops.size();
  st.inserted = inserted;
  st.erased = erased;
  st.ignored = ignored;
  st.dirty_components = dirty;
  for (const auto& f : fresh_tls_) st.fresh_edges += f.size();
  st.ingest = core::collect_costs(rt_, secs_since(t0));
}

void DynamicGraph::rebuild(BatchStats& st) {
  const auto t0 = std::chrono::steady_clock::now();
  const graph::EdgeList el = materialize();
  // The full recompute path: carries cc_coalesced's superstep checkpoint /
  // rollback and buddy replication, so outages or a permanent node loss
  // mid-rebuild recover inside the call instead of leaking a half-built
  // labeling into the stream.
  const core::ParCCResult res = core::cc_coalesced(rt_, el, opt_.cc);
  // Adopt the labels into the live array (same cost window: no reset).
  rt_.run([&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts(ctx, "stream.adopt");
    const int me = ctx.id();
    auto dst = d_.local_span(me);
    if (d_.part().is_identity()) {
      const std::size_t b = d_.block_begin(me);
      std::copy(res.labels.begin() + static_cast<std::ptrdiff_t>(b),
                res.labels.begin() + static_cast<std::ptrdiff_t>(b) +
                    static_cast<std::ptrdiff_t>(dst.size()),
                dst.begin());
    } else {
      // Permuted storage: res.labels is global order, the slice is not.
      for (std::size_t k = 0; k < dst.size(); ++k)
        dst[k] = res.labels[d_.global_index(me, k)];
    }
    ctx.mem_seq(2 * dst.size() * sizeof(std::uint64_t), Cat::Copy);
    ctx.barrier();
  });
  st.rebuilt = true;
  st.iterations = res.iterations;
  st.maintain = core::collect_costs(rt_, secs_since(t0));
}

void DynamicGraph::publish(BatchStats& st) {
  const auto t0 = std::chrono::steady_clock::now();
  rt_.reset_costs();
  const std::size_t slot = epoch_ % kEpochRing;
  pgas::GlobalArray<std::uint64_t>& snap = *snap_[slot];
  std::atomic<bool> certify_mismatch{false};
  rt_.run([&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts(ctx, "stream.publish");
    const int me = ctx.id();
    const auto src = d_.local_span(me);
    auto dst = snap.local_span(me);
    std::copy(src.begin(), src.end(), dst.begin());
    ctx.mem_seq(2 * src.size() * sizeof(std::uint64_t), Cat::Copy);
    ctx.barrier();  // the epoch is queryable once every block landed
    if (opt_.certify) {
      // Certify mode: re-digest the ring slot against the live labels
      // before the epoch becomes queryable, so a snapshot corrupted (or
      // mis-copied) at rest can never serve answers.  The double re-read
      // rides the modeled clock under the Scrub attribution.
      const std::uint64_t b = d_.block_begin(me);
      const std::uint64_t want =
          pgas::chunk_digest(b, src.data(), sizeof(std::uint64_t), src.size());
      const std::uint64_t got =
          pgas::chunk_digest(b, dst.data(), sizeof(std::uint64_t), dst.size());
      ctx.mem_seq(2 * src.size() * sizeof(std::uint64_t), Cat::Scrub);
      if (want != got)
        certify_mismatch.store(true, std::memory_order_relaxed);
      ctx.barrier();  // verification completes before the epoch publishes
    }
    // Refresh the buddy mirrors with the just-published state (live
    // labels, snapshot ring): a later shrink promotes exactly this epoch,
    // so queries against published epochs stay bit-identical across a
    // permanent node loss.  No-op without a loss plan.
    pgas::replicate_to_buddy(ctx);
  });
  if (opt_.certify) {
    st.certify_checks += static_cast<std::uint64_t>(
        rt_.topo().total_threads());
    if (certify_mismatch.load(std::memory_order_relaxed)) {
      ++st.certify_failures;
      throw std::runtime_error(
          "DynamicGraph::publish: epoch snapshot failed certify re-digest "
          "(epoch " +
          std::to_string(epoch_) + ")");
    }
  }
  snap_epoch_[slot] = epoch_;
  snap_valid_[slot] = true;
  sizes_valid_[slot] = false;
  st.epoch = epoch_;
  st.publish = core::collect_costs(rt_, secs_since(t0));
}

BatchStats DynamicGraph::apply_batch(std::span<const graph::EdgeUpdate> ops) {
  BatchStats st;
  ingest(ops, st);

  const std::size_t live = live_edges();
  bool full = st.erased > 0 || st.dirty_components > 0 ||
              static_cast<double>(st.fresh_edges) >
                  opt_.rebuild_frac * static_cast<double>(live);
  if (!full) {
    std::vector<graph::Edge> fresh;
    fresh.reserve(st.fresh_edges);
    for (const auto& f : fresh_tls_)
      fresh.insert(fresh.end(), f.begin(), f.end());
    try {
      const IncrementalResult inc = cc_incremental(rt_, d_, fresh, opt_.cc);
      st.iterations = inc.iterations;
      st.maintain = inc.costs;
    } catch (const fault::FaultError& fe) {
      cc_.invalidate_skip_cache();
      // A permanent node loss shrank the topology mid-pass and promoted
      // the pre-batch mirrors; recompute over the survivors.
      if (fe.kind() != fault::FaultKind::PermanentLoss) throw;
      full = true;
    }
  }
  if (full) rebuild(st);

  ++epoch_;
  publish_recover(st);
  return st;
}

BatchStats DynamicGraph::republish() {
  BatchStats st;
  publish_recover(st);
  return st;
}

void DynamicGraph::publish_recover(BatchStats& st) {
  try {
    publish(st);
  } catch (const fault::FaultError& fe) {
    cc_.invalidate_skip_cache();
    if (fe.kind() != fault::FaultKind::PermanentLoss) throw;
    // The shrink mid-publish reverted the lost node's slice of the live
    // labels to the previous epoch's mirror; recompute from the (intact,
    // host-side) edge stores and publish again.
    rebuild(st);
    publish(st);
  }
}

void DynamicGraph::compute_sizes(std::size_t slot) {
  pgas::GlobalArray<std::uint64_t>& snap = *snap_[slot];
  pgas::GlobalArray<std::uint64_t>& szs = *sizes_[slot];
  const coll::CollectiveOptions& copt = opt_.cc.coll;
  rt_.run([&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts(ctx, "stream.sizes");
    const int me = ctx.id();
    // Zero this owner's slice, then aggregate: every vertex contributes 1
    // to its root label through one combining-CRCW SetDAdd pass, leaving
    // sizes[root] = |component| (and 0 off-root).
    auto dst = szs.local_span(me);
    std::fill(dst.begin(), dst.end(), 0);
    ctx.mem_seq(dst.size() * sizeof(std::uint64_t), Cat::Copy);
    const auto lab = snap.local_span(me);
    std::vector<std::uint64_t> idx(lab.begin(), lab.end());
    const std::vector<std::uint64_t> ones(idx.size(), 1);
    ctx.mem_seq(idx.size() * 2 * sizeof(std::uint64_t), Cat::Copy);
    coll::CollWorkspace<std::uint64_t> ws;
    coll::setd_add(ctx, szs, idx, std::span<const std::uint64_t>(ones), copt,
                   cc_, ws);
    // Mirror the aggregated sizes alongside the snapshots, so a later
    // shrink promotes the sizes of this epoch too.  No-op without a plan.
    pgas::replicate_to_buddy(ctx);
  });
  sizes_valid_[slot] = true;
}

QueryResult DynamicGraph::query(const QueryBatch& q) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t e = q.epoch == QueryBatch::kLatest ? epoch_ : q.epoch;
  std::size_t slot = kEpochRing;
  for (std::size_t i = 0; i < kEpochRing; ++i)
    if (snap_valid_[i] && snap_epoch_[i] == e) slot = i;
  if (slot == kEpochRing)
    throw std::out_of_range(
        "DynamicGraph::query: epoch not in the snapshot ring");

  rt_.reset_costs();
  QueryResult res;
  res.epoch = e;
  // Degenerate batch: nothing to look up, so no SPMD run (and no modeled
  // cost) — the serving layer's coalescer never flushes an empty window,
  // but a fully-cached one resolves without touching the runtime.
  if (q.same_component.empty() && q.component_size.empty()) {
    res.costs = core::collect_costs(rt_, secs_since(t0));
    return res;
  }

  pgas::GlobalArray<std::uint64_t>& snap = *snap_[slot];
  pgas::GlobalArray<std::uint64_t>& szs = *sizes_[slot];
  const coll::CollectiveOptions& copt = opt_.cc.coll;
  // Snapshot labels are canonical, so label 0 is pinned (offload valid);
  // size entries are NOT constant, so the size lookup gets no offload.
  const coll::KnownElement known{0, 0};

  const auto spmd = [&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts_query(ctx, q.scope);
    const int s = ctx.nthreads();
    const int me = ctx.id();
    coll::CollWorkspace<std::uint64_t> ws_a, ws_b;

    if (!q.same_component.empty()) {
      const auto [lo, hi] = graph::even_chunk(q.same_component.size(), s, me);
      const std::size_t mloc = hi - lo;
      std::vector<std::uint64_t> qu(mloc), qv(mloc), lu(mloc), lv(mloc);
      for (std::size_t k = 0; k < mloc; ++k) {
        qu[k] = q.same_component[lo + k].first;
        qv[k] = q.same_component[lo + k].second;
      }
      ctx.mem_seq(mloc * 2 * sizeof(std::uint64_t), Cat::Work);
      coll::getd(ctx, snap, qu, std::span<std::uint64_t>(lu), copt, cc_, ws_a,
                 known);
      coll::getd(ctx, snap, qv, std::span<std::uint64_t>(lv), copt, cc_, ws_b,
                 known);
      for (std::size_t k = 0; k < mloc; ++k)
        res.same[lo + k] = static_cast<std::uint8_t>(lu[k] == lv[k]);
      ctx.mem_seq(mloc, Cat::Work);
      ctx.compute(mloc, Cat::Work);
    }

    if (!q.component_size.empty()) {
      const auto [lo, hi] = graph::even_chunk(q.component_size.size(), s, me);
      const std::size_t mloc = hi - lo;
      std::vector<std::uint64_t> qv(mloc), lab(mloc), sz(mloc);
      for (std::size_t k = 0; k < mloc; ++k) qv[k] = q.component_size[lo + k];
      ctx.mem_seq(mloc * sizeof(std::uint64_t), Cat::Work);
      ws_a.invalidate_keys();
      coll::getd(ctx, snap, qv, std::span<std::uint64_t>(lab), copt, cc_,
                 ws_a, known);
      ws_b.invalidate_keys();
      coll::getd(ctx, szs, lab, std::span<std::uint64_t>(sz), copt, cc_,
                 ws_b);
      for (std::size_t k = 0; k < mloc; ++k) res.size[lo + k] = sz[k];
      ctx.mem_seq(mloc * sizeof(std::uint64_t), Cat::Work);
    }
  };

  for (int attempt = 0;; ++attempt) {
    try {
      // Lazy per-epoch size aggregation: charged (once) to the first query
      // batch that needs it, cached in sizes_valid_ for every later batch
      // on the same epoch.  The aggregation-only cost is surfaced in
      // res.agg_ns so callers (the serving layer, the regression test) can
      // see that a second batch pays nothing here.
      if (!q.component_size.empty() && !sizes_valid_[slot]) {
        compute_sizes(slot);
        res.agg_ns = rt_.modeled_time_ns();  // all cost since reset_costs()
      }
      res.same.assign(q.same_component.size(), 0);
      res.size.assign(q.component_size.size(), 0);
      rt_.run(spmd);
      break;
    } catch (const fault::FaultError& fe) {
      // Promotion also restored smatrix/pmatrix rows from checkpoint-time
      // mirrors, so the host-side skip cache can no longer vouch for
      // remote zeros; republish the full matrix on the next collective
      // (here on retry, or in the caller's retry after a rethrow).
      cc_.invalidate_skip_cache();
      if (fe.kind() != fault::FaultKind::PermanentLoss || attempt > 0) throw;
      // Promotion restored the published mirrors, so the snapshot ring on
      // the survivors is exactly what publish() wrote; one retry serves
      // the same epoch bit-identically (at degraded-mode cost).
    }
  }

  res.costs = core::collect_costs(rt_, secs_since(t0));
  return res;
}

}  // namespace pgraph::stream
