#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "collectives/context.hpp"
#include "core/cc_coalesced.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"
#include "stream/query.hpp"

namespace pgraph::stream {

/// Telemetry of one ingested update batch: what it did and what each phase
/// cost on the modeled clock (the per-batch attribution the str01 bench
/// emits).
struct BatchStats {
  std::uint64_t epoch = 0;       ///< label epoch this batch published
  std::size_t ops = 0;           ///< updates in the batch
  std::size_t inserted = 0;      ///< edges added to the live set
  std::size_t erased = 0;        ///< edges removed from the live set
  std::size_t ignored = 0;       ///< duplicate inserts / missing erases
  std::size_t fresh_edges = 0;   ///< inserts handed to maintenance
  std::size_t dirty_components = 0;  ///< distinct components hit by erases
                                     ///< (per-owner distinct, summed)
  bool rebuilt = false;  ///< maintenance fell back to a full recompute
  int iterations = 0;    ///< graft+jump rounds (or cc_coalesced iterations)
  std::uint64_t certify_checks = 0;    ///< publish re-digest comparisons
  std::uint64_t certify_failures = 0;  ///< re-digest mismatches (pre-throw)
  core::RunCosts ingest;    ///< routing updates to their owner threads
  core::RunCosts maintain;  ///< incremental pass or rebuild + label adopt
  core::RunCosts publish;   ///< snapshotting labels into the epoch ring

  double total_modeled_ns() const {
    return ingest.modeled_ns + maintain.modeled_ns + publish.modeled_ns;
  }
};

/// Dynamic-graph subsystem: ingests timestamped edge updates in batches,
/// maintains canonical CC labels incrementally, and serves connectivity /
/// component-size query batches from epoch-versioned label snapshots.
///
/// Structure per apply_batch (each phase is its own modeled-cost window):
///  1. ingest  — updates are count-sorted by the owner thread of their
///     `u` endpoint (the same Algorithm 1 scheduling as SetD, through the
///     shared SMatrix/PMatrix setup) and shipped in one coalesced exchange;
///     owners apply them to their private edge stores and note the
///     component label of every erased edge (the dirty-component counter).
///  2. maintain — insert-only batches run `cc_incremental` (hook-and-
///     shortcut over just the fresh edges; bit-identical to a fresh
///     `cc_coalesced` of the materialized graph).  Any batch with erases
///     (dirty components), a fresh-edge volume past `rebuild_frac` of the
///     live set, or a permanent-loss fault mid-pass falls back to a full
///     `cc_coalesced` rebuild — which carries the checkpoint/rollback and
///     buddy-replication machinery, so a rebuild interrupted by an outage
///     rolls back cleanly instead of serving a half-updated labeling.
///  3. publish — the live labels are copied into the epoch ring
///     (kEpochRing snapshots), and the new epoch becomes queryable.
///
/// Queries (same_component / component_size) are answered from snapshots
/// through GetD with whatever collective optimizations the CcOptions
/// carry; component sizes are aggregated lazily per epoch with one
/// SetDAdd pass (combining CRCW) the first time a size query hits it.
struct DynamicGraphOptions {
  core::CcOptions cc = core::CcOptions::optimized();
  /// Fresh-insert volume (fraction of the live edge count) past which an
  /// incremental pass is predicted slower than a rebuild.
  double rebuild_frac = 0.25;
  /// Certify epochs before they become queryable (docs/ROBUSTNESS.md,
  /// "At-rest integrity"): after the publish copy, every ring-slot block
  /// is re-digested against the live labels on the modeled clock (Scrub
  /// attribution), and a mismatch throws before the epoch is published.
  bool certify = false;
};

class DynamicGraph {
 public:
  /// Label snapshots kept queryable: the latest epoch and its predecessor.
  static constexpr std::size_t kEpochRing = 2;

  using Options = DynamicGraphOptions;

  /// Builds the initial labeling of `base` with cc_coalesced and publishes
  /// it as epoch 0.  `base.n` fixes the vertex-id space for the lifetime
  /// of the stream.
  DynamicGraph(pgas::Runtime& rt, const graph::EdgeList& base,
               Options opt = {});

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// Ingest one update batch, maintain labels, publish the next epoch.
  /// Updates must be in nondecreasing timestamp order (as generated).
  BatchStats apply_batch(std::span<const graph::EdgeUpdate> ops);

  /// Serve one query batch from a published epoch (QueryBatch::kLatest or
  /// an epoch still in the ring; std::out_of_range otherwise).
  QueryResult query(const QueryBatch& q);

  /// Re-snapshot the current epoch into its ring slot (with the same
  /// rebuild-and-retry protection apply_batch uses).  The serving layer
  /// calls this after detecting a topology shrink so the ring and the
  /// buddy mirrors are consistent on the survivor topology; answers stay
  /// bit-identical because live labels were already restored by the
  /// shrink promotion.  Invalidates the epoch's lazy size aggregate, so
  /// the next size query re-aggregates (charged once, as always).
  BatchStats republish();

  std::uint64_t latest_epoch() const { return epoch_; }
  /// The runtime this stream charges — exposed so front ends (the query
  /// server's resilience layer) can read modeled time and fault state.
  pgas::Runtime& runtime() { return rt_; }
  /// Epoch the ring retains just below the latest one, if any: the
  /// staleness bound for degraded serving (docs/SERVING.md).
  bool previous_epoch(std::uint64_t* e) const {
    if (epoch_ == 0 || !has_epoch(epoch_ - 1)) return false;
    *e = epoch_ - 1;
    return true;
  }
  /// Is `e` still queryable (published and not yet evicted from the ring)?
  /// The serving layer probes this instead of letting std::out_of_range
  /// escape a coalesced flush; see docs/SERVING.md.
  bool has_epoch(std::uint64_t e) const {
    for (std::size_t i = 0; i < kEpochRing; ++i)
      if (snap_valid_[i] && snap_epoch_[i] == e) return true;
    return false;
  }
  std::size_t num_vertices() const { return n_; }
  std::size_t live_edges() const;
  /// Current live edge set, concatenated in owner order (deterministic for
  /// a given update sequence).  Host-side; used by rebuilds and tests.
  graph::EdgeList materialize() const;
  /// Component count at the latest epoch (host-side verification scan).
  std::uint64_t num_components() const;
  /// Cost/telemetry of the constructor's initial build.
  const BatchStats& initial_build() const { return initial_; }
  /// Live label array (canonical min-id labels of the latest batch).
  pgas::GlobalArray<std::uint64_t>& labels() { return d_; }

 private:
  /// Route `ops` to their owner threads and apply to the edge stores.
  void ingest(std::span<const graph::EdgeUpdate> ops, BatchStats& st);
  /// Full recompute: cc_coalesced over materialize(), labels adopted.
  void rebuild(BatchStats& st);
  /// Copy live labels into the ring slot for `epoch_` and time it.
  void publish(BatchStats& st);
  /// publish(), with a rebuild+retry if a permanent loss lands mid-copy.
  void publish_recover(BatchStats& st);
  /// Aggregate component sizes for ring slot `slot` (SetDAdd pass).
  void compute_sizes(std::size_t slot);

  pgas::Runtime& rt_;
  std::size_t n_;
  Options opt_;

  pgas::GlobalArray<std::uint64_t> d_;  ///< live canonical labels
  coll::CollectiveContext cc_;          ///< shared across ingest + queries

  /// Per-owner-thread live edge stores; edges_[t] holds edges whose `u`
  /// endpoint has affinity to thread t.  pos_[t] maps the packed edge key
  /// to its slot for O(1) duplicate checks and swap-remove deletion.
  std::vector<std::vector<graph::Edge>> edges_;
  std::vector<std::unordered_map<std::uint64_t, std::size_t>> pos_;
  /// Fresh inserts of the current batch, collected per owner thread.
  std::vector<std::vector<graph::Edge>> fresh_tls_;

  std::uint64_t epoch_ = 0;
  std::array<std::unique_ptr<pgas::GlobalArray<std::uint64_t>>, kEpochRing>
      snap_;
  std::array<std::unique_ptr<pgas::GlobalArray<std::uint64_t>>, kEpochRing>
      sizes_;
  std::array<std::uint64_t, kEpochRing> snap_epoch_{};
  std::array<bool, kEpochRing> snap_valid_{};
  std::array<bool, kEpochRing> sizes_valid_{};

  BatchStats initial_;
};

}  // namespace pgraph::stream
