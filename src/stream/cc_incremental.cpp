#include "stream/cc_incremental.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <span>
#include <stdexcept>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "core/pointer_jump.hpp"
#include "pgas/coll.hpp"
#include "pgas/replica.hpp"

namespace pgraph::stream {

using machine::Cat;

IncrementalResult cc_incremental(pgas::Runtime& rt,
                                 pgas::GlobalArray<std::uint64_t>& d,
                                 const std::vector<graph::Edge>& fresh,
                                 const core::CcOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.reset_costs();

  const std::size_t n = d.size();
  const int max_iters = opt.max_iters > 0
                            ? opt.max_iters
                            : 4 * (n < 2 ? 1 : std::bit_width(n)) + 64;
  coll::CollectiveContext cc(rt);
  const coll::CollectiveOptions& copt = opt.coll;
  // Canonical labels hook larger-under-smaller, so D[0] == 0 forever and
  // the offload optimization stays valid, exactly as in cc_coalesced.
  const coll::KnownElement known{0, 0};

  std::atomic<int> iterations{0};
  std::atomic<bool> overran{false};

  rt.run([&](pgas::ThreadCtx& ctx) {
    pgas::TraceScope ts_pass(ctx, "stream.maintain");
    const int s = ctx.nthreads();
    const int me = ctx.id();

    // Pre-batch mirrors: a permanent loss mid-pass promotes these and the
    // caller rebuilds from the restored state (no-op without a loss plan).
    pgas::replicate_to_buddy(ctx);

    const auto chunk = graph::edge_chunk(fresh, s, me);
    std::vector<std::uint64_t> eu(chunk.size()), ev(chunk.size());
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      eu[k] = chunk[k].u;
      ev[k] = chunk[k].v;
    }
    ctx.mem_seq(chunk.size() * sizeof(graph::Edge), Cat::Work);

    coll::CollWorkspace<std::uint64_t> ws_u, ws_v, ws_set, ws_jump;
    std::vector<std::uint64_t> du, dv, gi, gv, par, grand;

    int it = 0;
    for (;; ++it) {
      if (it >= max_iters) {
        overran.store(true, std::memory_order_relaxed);
        break;
      }

      du.resize(eu.size());
      dv.resize(ev.size());
      {
        pgas::TraceScope ts(ctx, "stream.graft");
        coll::getd(ctx, d, eu, std::span<std::uint64_t>(du), copt, cc, ws_u,
                   known);
        coll::getd(ctx, d, ev, std::span<std::uint64_t>(dv), copt, cc, ws_v,
                   known);

        gi.clear();
        gv.clear();
        for (std::size_t k = 0; k < eu.size(); ++k) {
          if (du[k] == dv[k]) continue;
          if (du[k] < dv[k]) {
            gi.push_back(dv[k]);
            gv.push_back(du[k]);
          } else {
            gi.push_back(du[k]);
            gv.push_back(dv[k]);
          }
        }
        ctx.mem_seq(eu.size() * 2 * sizeof(std::uint64_t), Cat::Work);
        ctx.compute(eu.size() * 3, Cat::Work);
      }

      if (!pgas::allreduce_or(ctx, !gi.empty())) break;

      ws_set.invalidate_keys();
      coll::setd(ctx, d, gi, std::span<const std::uint64_t>(gv), copt, cc,
                 ws_set);

      {
        pgas::TraceScope ts(ctx, "stream.jump");
        core::jump_to_stars(ctx, d, copt, cc, ws_jump, par, grand, known);
      }

      if (opt.compact) {
        std::size_t kept = 0;
        const bool keys_ok = ws_u.keys_valid && ws_v.keys_valid &&
                             ws_u.keys.size() == eu.size() &&
                             ws_v.keys.size() == ev.size();
        for (std::size_t k = 0; k < eu.size(); ++k) {
          if (du[k] == dv[k]) continue;
          eu[kept] = eu[k];
          ev[kept] = ev[k];
          if (keys_ok) {
            ws_u.keys[kept] = ws_u.keys[k];
            ws_v.keys[kept] = ws_v.keys[k];
          }
          ++kept;
        }
        eu.resize(kept);
        ev.resize(kept);
        if (keys_ok) {
          ws_u.keys.resize(kept);
          ws_v.keys.resize(kept);
        } else {
          ws_u.invalidate_keys();
          ws_v.invalidate_keys();
        }
        ctx.mem_seq(eu.size() * 2 * sizeof(std::uint64_t), Cat::Work);
      }
    }
    if (me == 0) iterations.store(it + 1, std::memory_order_relaxed);
  });

  if (overran.load())
    throw std::runtime_error("cc_incremental: exceeded iteration bound");

  IncrementalResult r;
  r.iterations = iterations.load();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.costs = core::collect_costs(rt, wall);
  return r;
}

}  // namespace pgraph::stream
