#pragma once

#include <cstdint>
#include <vector>

#include "collectives/context.hpp"
#include "core/cc_coalesced.hpp"
#include "core/par_common.hpp"
#include "graph/edge_list.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::stream {

/// Result of one incremental maintenance pass.
struct IncrementalResult {
  int iterations = 0;  ///< graft+jump rounds until no fresh edge grafted
  core::RunCosts costs;
};

/// Incremental connectivity maintenance: fold a batch of freshly inserted
/// edges into an existing canonical labeling.
///
/// Precondition: `d` holds the canonical CC labels of the pre-batch graph
/// — every vertex labeled with the minimum vertex id of its component,
/// i.e. exactly the fixed point `cc_coalesced` converges to.  The pass
/// runs the same batched hook-and-shortcut loop as `cc_coalesced`
/// (GetD endpoint labels, graft larger root under smaller via SetD,
/// lock-step pointer jumping to rooted stars) but over ONLY the fresh
/// edges: components untouched by the batch cost nothing beyond the
/// degenerate-batch floor of the collectives.
///
/// Bit-identity: the canonical min-id labeling of a graph is unique, and
/// grafting the fresh edges into the old stars converges to the canonical
/// labeling of the union graph — so after this pass `d` is bit-identical
/// to a fresh `cc_coalesced` run over the materialized edge set.
/// Deletions are NOT handled here (they can split components); callers
/// route deletion batches through the full-rebuild fallback.
///
/// `opt.coll` drives the collectives (all Section V optimizations apply);
/// `opt.compact` drops fresh edges once their endpoints share a label.
/// A buddy-replication pass runs first (no-op without a loss plan), so a
/// permanent node loss mid-pass shrinks onto pre-batch mirrors and
/// surfaces as FaultError{PermanentLoss} for the caller's rebuild path.
///
/// Calls rt.reset_costs(); the returned costs cover only this pass.
IncrementalResult cc_incremental(pgas::Runtime& rt,
                                 pgas::GlobalArray<std::uint64_t>& d,
                                 const std::vector<graph::Edge>& fresh,
                                 const core::CcOptions& opt);

}  // namespace pgraph::stream
