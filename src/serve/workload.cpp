#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/rng.hpp"

namespace pgraph::serve {

ZipfSampler::ZipfSampler(std::size_t n, double s) : cdf_(n) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: need n >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: need s >= 0");
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = acc;
  }
  total_ = acc;
}

std::size_t ZipfSampler::sample(double u01) const {
  const double target = u01 * total_;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
  const std::size_t r =
      static_cast<std::size_t>(std::distance(cdf_.begin(), it));
  return std::min(r, cdf_.size() - 1);
}

namespace {

/// Scramble a popularity rank into a vertex id: the hottest rank must not
/// systematically be vertex 0 (owner 0), or skew would double as placement
/// bias.  Stateless splitmix64 keeps the mapping seed-free and injective
/// enough for workload purposes (collisions just merge two ranks' mass).
graph::VertexId key_of_rank(std::size_t rank, std::size_t n_keys) {
  std::uint64_t st = static_cast<std::uint64_t>(rank);
  return static_cast<graph::VertexId>(graph::splitmix64(st) %
                                      static_cast<std::uint64_t>(n_keys));
}

}  // namespace

std::vector<Request> generate_workload(std::size_t n_keys,
                                       std::uint64_t seed,
                                       const WorkloadParams& p) {
  if (n_keys == 0)
    throw std::invalid_argument("generate_workload: need n_keys >= 1");
  if (p.sessions <= 0)
    throw std::invalid_argument("generate_workload: need sessions >= 1");
  // All checks below are written NaN-safe: a comparison with NaN is false,
  // so the accept condition must be the positively-phrased one.
  if (!(std::isfinite(p.rate_rps) && p.rate_rps > 0.0))
    throw std::invalid_argument(
        "generate_workload: rate_rps must be finite and > 0");
  if (!(std::isfinite(p.horizon_ns) && p.horizon_ns > 0.0))
    throw std::invalid_argument(
        "generate_workload: horizon_ns must be finite and > 0");
  if (!(std::isfinite(p.zipf_s) && p.zipf_s >= 0.0))
    throw std::invalid_argument(
        "generate_workload: zipf_s must be finite and >= 0");
  if (!(std::isfinite(p.phase_ns) && p.phase_ns >= 0.0))
    throw std::invalid_argument(
        "generate_workload: phase_ns must be finite and >= 0");
  if (!(std::isfinite(p.deadline_ns) && p.deadline_ns >= 0.0))
    throw std::invalid_argument(
        "generate_workload: deadline_ns must be finite and >= 0");
  if (!(p.burst_on_frac > 0.0 && p.burst_on_frac <= 1.0))
    throw std::invalid_argument(
        "generate_workload: burst_on_frac in (0, 1]");
  if (!(p.size_mix >= 0.0 && p.size_mix <= 1.0))
    throw std::invalid_argument("generate_workload: size_mix in [0, 1]");
  if (!(p.pin_frac >= 0.0 && p.pin_frac <= 1.0))
    throw std::invalid_argument("generate_workload: pin_frac in [0, 1]");

  const ZipfSampler zipf(n_keys, p.zipf_s);
  const double tenant_rate_rps =
      p.rate_rps / static_cast<double>(p.sessions);
  // Arrivals are drawn as a Poisson process on the tenant's "on-time" axis
  // at the burst-compensated rate, then mapped onto absolute time by
  // folding in the off intervals — average rate stays p.rate_rps while the
  // instantaneous on-rate is 1/burst_on_frac higher.
  const double on_rate_per_ns = tenant_rate_rps / p.burst_on_frac / 1e9;

  std::vector<Request> all;
  for (int t = 0; t < p.sessions; ++t) {
    std::uint64_t st =
        seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1);
    graph::Xoshiro256 rng(graph::splitmix64(st));
    double u_on = 0.0;       // cumulative on-time, ns
    std::uint64_t k = 0;     // per-tenant request index (deadline hashing)
    for (;;) {
      u_on += -std::log1p(-rng.next_double()) / on_rate_per_ns;
      double t_abs = u_on;
      if (p.phase_ns > 0.0) {
        const double on_len = p.phase_ns * p.burst_on_frac;
        t_abs = std::floor(u_on / on_len) * p.phase_ns +
                std::fmod(u_on, on_len);
      }
      if (!(t_abs < p.horizon_ns)) break;
      Request r;
      r.arrive_ns = t_abs;
      r.tenant = t;
      r.kind = rng.next_double() < p.size_mix ? QueryKind::ComponentSize
                                              : QueryKind::SameComponent;
      r.u = key_of_rank(zipf.sample(rng.next_double()), n_keys);
      r.v = r.kind == QueryKind::SameComponent
                ? key_of_rank(zipf.sample(rng.next_double()), n_keys)
                : 0;
      // The pin draw is unconditional so request streams stay comparable
      // across pin_frac settings.
      const bool pinned = rng.next_double() < p.pin_frac;
      r.epoch = pinned ? p.pinned_epoch : stream::QueryBatch::kLatest;
      if (p.deadline_ns > 0.0) {
        // Deadlines come from a stateless hash of (seed, tenant, index),
        // never from `rng`: the arrival/key streams must stay byte-equal
        // whether or not deadlines are requested.
        std::uint64_t h =
            seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1)) ^
            (0xd1b54a32d192ed03ULL * (static_cast<std::uint64_t>(k) + 1));
        const double u01 =
            static_cast<double>(graph::splitmix64(h) >> 11) * 0x1.0p-53;
        r.deadline_ns = p.deadline_ns * (0.5 + u01);
      }
      ++k;
      all.push_back(r);
    }
  }
  std::sort(all.begin(), all.end(), [](const Request& a, const Request& b) {
    if (a.arrive_ns != b.arrive_ns) return a.arrive_ns < b.arrive_ns;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  return all;
}

}  // namespace pgraph::serve
