#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgraph::serve {

/// Why a request was shed.  Stored on the Outcome and counted per reason
/// so the conservation invariant can be checked at full resolution:
///   offered == completed + shed + stale + degraded
///   shed    == shed_queue_full + shed_breaker_open + shed_deadline
enum class ShedReason : std::uint8_t {
  None = 0,             ///< not shed
  QueueFull = 1,        ///< tenant admission bound hit at arrival
  BreakerOpen = 2,      ///< fast-failed: breaker open / backend unavailable
  DeadlineExpired = 3,  ///< deadline passed while waiting in the coalescer
};

const char* shed_reason_name(ShedReason r);

/// Mode/breaker transitions on the modeled clock, recorded in arrival
/// order.  tenant == -1 marks server-global events (brownout, recovery).
enum class ServeEventKind : std::uint8_t {
  BreakerOpen = 0,      ///< a tenant breaker tripped
  BreakerHalfOpen = 1,  ///< cooldown elapsed, probing
  BreakerClose = 2,     ///< probe (or in-flight work) succeeded
  BrownoutEnter = 3,    ///< degraded serving engaged
  BrownoutExit = 4,     ///< normal serving restored
  Recovery = 5,         ///< post-shrink republish on the survivor topology
};

const char* serve_event_name(ServeEventKind k);

struct ServeEvent {
  double t_ns = 0.0;
  ServeEventKind kind = ServeEventKind::BreakerOpen;
  std::int32_t tenant = -1;  ///< -1 = server-global
};

/// Token bucket on the modeled clock.  Each failed flush retry spends one
/// token per affected tenant; tokens refill at a modeled rate so a tenant
/// cannot convert a persistent fault into unbounded backend time.
class RetryBudget {
 public:
  RetryBudget() = default;
  RetryBudget(double capacity, double refill_per_s);

  /// True (and one token spent) if the budget allows a retry at `now_ns`.
  bool try_spend(double now_ns);
  double available(double now_ns);

 private:
  void refill(double now_ns);

  double cap_ = 0.0;
  double rate_per_ns_ = 0.0;
  double tokens_ = 0.0;
  double last_ns_ = 0.0;
};

/// Per-tenant circuit breaker: Closed -> Open after `trip_after`
/// consecutive flush failures, Open -> HalfOpen after `cooldown_ns` of
/// modeled time, HalfOpen admits a single probe whose outcome either
/// closes the breaker or re-trips it.  All transitions are driven by the
/// virtual clock, so they are bit-deterministic.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

  CircuitBreaker() = default;
  CircuitBreaker(int trip_after, double cooldown_ns);

  State state() const { return state_; }

  /// Advance the cooldown: returns true on the Open -> HalfOpen edge.
  bool tick(double now_ns);
  /// May a request be admitted right now?  (HalfOpen: only the probe.)
  bool admit() const;
  /// Mark the HalfOpen probe as taken (call after real admission).
  void take_probe() { probe_out_ = true; }
  /// Returns true on the -> Closed edge.
  bool on_success();
  /// Returns true on the -> Open edge (a trip).
  bool on_failure(double now_ns);

 private:
  int trip_after_ = 0;  ///< 0 disables tripping
  double cooldown_ns_ = 0.0;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  bool probe_out_ = false;
  double open_until_ns_ = 0.0;
};

/// Knobs for the overload/failure-resilience layer.  Disabled by default:
/// with enabled == false the server is byte-identical to the pre-resilience
/// behavior (FaultError propagates, deadlines are ignored, no mode logic).
struct ResilienceOptions {
  bool enabled = false;

  /// Per-tenant retry token bucket (modeled clock).
  double retry_tokens = 4.0;
  double retry_refill_per_s = 50.0;

  /// Breaker: consecutive failed flushes before tripping (0 = never), and
  /// the Open -> HalfOpen cooldown in modeled ns.
  int breaker_trip_after = 3;
  double breaker_cooldown_ns = 3e6;

  /// Brownout: serve Degraded answers from the previous epoch's cached
  /// results instead of shedding when the breaker is open or the coalescer
  /// backlog crosses `brownout_high` queued requests; exit below
  /// `brownout_low` (hysteresis keeps the mode flips deterministic).
  bool brownout = true;
  std::size_t brownout_high = 64;
  std::size_t brownout_low = 16;
};

}  // namespace pgraph::serve
