#include "serve/resilience.hpp"

#include <algorithm>
#include <stdexcept>

namespace pgraph::serve {

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::None: return "none";
    case ShedReason::QueueFull: return "queue-full";
    case ShedReason::BreakerOpen: return "breaker-open";
    case ShedReason::DeadlineExpired: return "deadline-expired";
  }
  return "?";
}

const char* serve_event_name(ServeEventKind k) {
  switch (k) {
    case ServeEventKind::BreakerOpen: return "breaker-open";
    case ServeEventKind::BreakerHalfOpen: return "breaker-half-open";
    case ServeEventKind::BreakerClose: return "breaker-close";
    case ServeEventKind::BrownoutEnter: return "brownout-enter";
    case ServeEventKind::BrownoutExit: return "brownout-exit";
    case ServeEventKind::Recovery: return "recovery";
  }
  return "?";
}

RetryBudget::RetryBudget(double capacity, double refill_per_s)
    : cap_(capacity), rate_per_ns_(refill_per_s / 1e9), tokens_(capacity) {
  if (capacity < 0.0)
    throw std::invalid_argument("RetryBudget: need capacity >= 0");
  if (refill_per_s < 0.0)
    throw std::invalid_argument("RetryBudget: need refill_per_s >= 0");
}

void RetryBudget::refill(double now_ns) {
  if (now_ns > last_ns_) {
    tokens_ = std::min(cap_, tokens_ + (now_ns - last_ns_) * rate_per_ns_);
    last_ns_ = now_ns;
  }
}

bool RetryBudget::try_spend(double now_ns) {
  refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::available(double now_ns) {
  refill(now_ns);
  return tokens_;
}

CircuitBreaker::CircuitBreaker(int trip_after, double cooldown_ns)
    : trip_after_(trip_after), cooldown_ns_(cooldown_ns) {
  if (trip_after < 0)
    throw std::invalid_argument("CircuitBreaker: need trip_after >= 0");
  if (cooldown_ns < 0.0)
    throw std::invalid_argument("CircuitBreaker: need cooldown_ns >= 0");
}

bool CircuitBreaker::tick(double now_ns) {
  if (state_ == State::Open && now_ns >= open_until_ns_) {
    state_ = State::HalfOpen;
    probe_out_ = false;
    return true;
  }
  return false;
}

bool CircuitBreaker::admit() const {
  switch (state_) {
    case State::Closed: return true;
    case State::Open: return false;
    case State::HalfOpen: return !probe_out_;
  }
  return true;
}

bool CircuitBreaker::on_success() {
  probe_out_ = false;
  consecutive_failures_ = 0;
  if (state_ != State::Closed) {
    state_ = State::Closed;
    return true;
  }
  return false;
}

bool CircuitBreaker::on_failure(double now_ns) {
  probe_out_ = false;
  ++consecutive_failures_;
  if (state_ == State::HalfOpen ||
      (state_ == State::Closed && trip_after_ > 0 &&
       consecutive_failures_ >= trip_after_)) {
    state_ = State::Open;
    open_until_ns_ = now_ns + cooldown_ns_;
    return true;
  }
  if (state_ == State::Open) open_until_ns_ = now_ns + cooldown_ns_;
  return false;
}

}  // namespace pgraph::serve
