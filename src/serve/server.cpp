#include "serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "fault/fault.hpp"
#include "pgas/runtime.hpp"

namespace pgraph::serve {

namespace {

/// Pack an unordered vertex pair into a cache key (ids < 2^32, the same
/// bound DynamicGraph enforces).
std::uint64_t pair_key(graph::VertexId u, graph::VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) |
         static_cast<std::uint64_t>(v);
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q / 100.0 * static_cast<double>(sorted.size());
  std::size_t i =
      pos <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(pos)) - 1;
  i = std::min(i, sorted.size() - 1);
  return sorted[i];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

QueryServer::QueryServer(stream::DynamicGraph& dg, int tenants,
                         ServerOptions opt)
    : dg_(dg), opt_(opt), tenants_(tenants) {
  if (tenants <= 0)
    throw std::invalid_argument("QueryServer: need tenants >= 1");
  if (opt_.max_batch == 0)
    throw std::invalid_argument("QueryServer: need max_batch >= 1");
  if (opt_.max_queue == 0)
    throw std::invalid_argument("QueryServer: need max_queue >= 1");
  if (opt_.window_ns < 0.0)
    throw std::invalid_argument("QueryServer: need window_ns >= 0");
  inflight_.assign(static_cast<std::size_t>(tenants), 0);
  lat_.assign(static_cast<std::size_t>(tenants), {});
  stats_.tenants.assign(static_cast<std::size_t>(tenants), {});
  stats_.first_arrival_ns = std::numeric_limits<double>::infinity();

  const ResilienceOptions& ro = opt_.resilience;
  if (ro.enabled) {
    if (ro.brownout && ro.brownout_low > ro.brownout_high)
      throw std::invalid_argument(
          "QueryServer: need brownout_low <= brownout_high");
    breakers_.assign(
        static_cast<std::size_t>(tenants),
        CircuitBreaker(ro.breaker_trip_after, ro.breaker_cooldown_ns));
    budgets_.assign(static_cast<std::size_t>(tenants),
                    RetryBudget(ro.retry_tokens, ro.retry_refill_per_s));
    // Losses the DynamicGraph already absorbed (construction, earlier
    // batches) are not ours to recover from.
    if (const fault::FaultInjector* inj = dg_.runtime().fault_injector())
      seen_loss_ = inj->loss_events();
  }
}

std::size_t QueryServer::offer(const Request& r) {
  if (finished_) throw std::logic_error("QueryServer: offer after finish");
  if (r.tenant < 0 || r.tenant >= tenants_)
    throw std::out_of_range("QueryServer: tenant id out of range");
  drain(r.arrive_ns);

  const auto t = static_cast<std::size_t>(r.tenant);
  const std::size_t idx = outcomes_.size();
  Outcome o;
  o.arrive_ns = r.arrive_ns;
  // kLatest binds at admission: the session observes whatever epoch is
  // published when its request arrives, even if the flush serving it runs
  // after a later publish.
  o.epoch = r.epoch == stream::QueryBatch::kLatest ? dg_.latest_epoch()
                                                   : r.epoch;
  ++stats_.tenants[t].offered;
  ++stats_.offered;
  stats_.first_arrival_ns = std::min(stats_.first_arrival_ns, r.arrive_ns);

  const ResilienceOptions& ro = opt_.resilience;
  if (ro.enabled) {
    CircuitBreaker& cb = breakers_[t];
    if (cb.tick(r.arrive_ns)) {
      ++stats_.breaker_half_opens;
      note_event(ServeEventKind::BreakerHalfOpen, r.arrive_ns, r.tenant);
    }
    const bool pass = cb.admit();
    const bool brown = ro.brownout && mode_ == Mode::Brownout;
    // A HalfOpen breaker's probe must reach the real backend — serving it
    // from cache would never test recovery and the breaker could stay
    // half-open forever.
    const bool probing =
        pass && cb.state() == CircuitBreaker::State::HalfOpen;
    if ((!pass || brown) && !probing) {
      // Degraded fast paths: answer instantly (zero backend cost, no
      // queue slot) instead of queuing into a saturated or broken
      // backend.  Fresh-epoch cache hits stay Ok; previous-epoch hits
      // are Degraded (staleness bound: exactly one epoch).
      std::uint64_t ans = 0;
      std::uint64_t from = 0;
      if (brown && lookup_cached(r, o.epoch, &ans)) {
        o.status = Status::Ok;
        o.answer = ans;
        o.start_ns = o.done_ns = r.arrive_ns;
        ++stats_.cache_hits;
        ++stats_.brownout_cache_ok;
        ++stats_.tenants[t].completed;
        ++stats_.completed;
        lat_[t].push_back(0.0);
        stats_.last_done_ns = std::max(stats_.last_done_ns, r.arrive_ns);
        outcomes_.push_back(o);
        return idx;
      }
      if (ro.brownout && lookup_degraded(r, o.epoch, &ans, &from)) {
        o.status = Status::Degraded;
        o.answer = ans;
        o.epoch = from;
        o.start_ns = o.done_ns = r.arrive_ns;
        ++stats_.tenants[t].degraded;
        ++stats_.degraded;
        stats_.last_done_ns = std::max(stats_.last_done_ns, r.arrive_ns);
        outcomes_.push_back(o);
        return idx;
      }
      if (!pass) {
        o.status = Status::Shed;
        o.shed_reason = ShedReason::BreakerOpen;
        o.start_ns = o.done_ns = r.arrive_ns;
        ++stats_.tenants[t].shed;
        ++stats_.shed;
        ++stats_.shed_breaker_open;
        outcomes_.push_back(o);
        return idx;
      }
      // Brownout but the breaker admits and nothing is cached: fall
      // through to normal admission so the request still gets a fresh
      // answer.
    }
  }

  if (inflight_[t] >= opt_.max_queue) {
    o.status = Status::Shed;
    o.shed_reason = ShedReason::QueueFull;
    o.start_ns = o.done_ns = r.arrive_ns;
    ++stats_.tenants[t].shed;
    ++stats_.shed;
    ++stats_.shed_queue_full;
    outcomes_.push_back(o);
    return idx;
  }

  ++inflight_[t];
  ++queued_reqs_;
  if (ro.enabled &&
      breakers_[t].state() == CircuitBreaker::State::HalfOpen)
    breakers_[t].take_probe();
  Pending p;
  p.req = r;
  p.req.epoch = o.epoch;
  p.idx = idx;
  if (!open_) {
    open_.emplace();
    open_->open_ns = r.arrive_ns;
    open_->close_ns = r.arrive_ns + opt_.window_ns;
  }
  // A flush's budget is the min over its members: the window must close
  // in time for its tightest deadline to still be serviceable.
  if (ro.enabled && r.deadline_ns > 0.0)
    open_->close_ns = std::min(open_->close_ns, r.arrive_ns + r.deadline_ns);
  open_->reqs.push_back(std::move(p));
  outcomes_.push_back(o);
  if (open_->reqs.size() >= opt_.max_batch || opt_.window_ns <= 0.0)
    close_open(r.arrive_ns);
  if (ro.enabled) update_mode(r.arrive_ns);
  return idx;
}

void QueryServer::close_open(double ready_ns) {
  open_->close_ns = ready_ns;
  queue_.push_back(std::move(*open_));
  open_.reset();
}

void QueryServer::drain(double t) {
  for (;;) {
    if (!retire_.empty() && retire_.front().first <= t) {
      const auto tenant = static_cast<std::size_t>(retire_.front().second);
      assert(inflight_[tenant] > 0);
      --inflight_[tenant];
      retire_.pop_front();
      continue;
    }
    if (open_ && open_->close_ns <= t) {
      close_open(open_->close_ns);
      continue;
    }
    if (!queue_.empty()) {
      const double start =
          std::max(server_free_ns_, queue_.front().close_ns);
      if (start <= t) {
        Window w = std::move(queue_.front());
        queue_.pop_front();
        execute_flush(w, start);
        continue;
      }
    }
    break;
  }
}

void QueryServer::execute_flush(Window& w, double start_ns) {
  ++stats_.flushes;
  assert(queued_reqs_ >= w.reqs.size());
  queued_reqs_ -= w.reqs.size();
  const ResilienceOptions& ro = opt_.resilience;
  const bool verify =
      opt_.verify_every > 0 && stats_.flushes % opt_.verify_every == 0;

  if (ro.enabled) {
    // Deadline enforcement at the service boundary: a member whose
    // budget ran out while it waited is shed here, before it can occupy
    // backend time, and retires immediately at the flush start.
    std::vector<Pending> alive;
    alive.reserve(w.reqs.size());
    for (Pending& p : w.reqs) {
      if (p.req.deadline_ns > 0.0 &&
          p.req.arrive_ns + p.req.deadline_ns <= start_ns) {
        Outcome& o = outcomes_[p.idx];
        o.status = Status::Shed;
        o.shed_reason = ShedReason::DeadlineExpired;
        o.start_ns = o.done_ns = start_ns;
        retire_.push_back({start_ns, p.req.tenant});
        const auto t = static_cast<std::size_t>(p.req.tenant);
        ++stats_.tenants[t].shed;
        ++stats_.shed;
        ++stats_.shed_deadline;
      } else {
        alive.push_back(std::move(p));
      }
    }
    w.reqs = std::move(alive);
    if (w.reqs.empty()) {
      update_mode(start_ns);
      return;
    }
  }

  // Group the window's requests by resolved epoch (first-appearance
  // order): each still-published epoch becomes one coalesced QueryBatch,
  // evicted epochs resolve to clean StaleEpoch outcomes without touching
  // the runtime.
  std::vector<std::pair<std::uint64_t, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < w.reqs.size(); ++i) {
    const std::uint64_t e = w.reqs[i].req.epoch;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == e; });
    if (it == groups.end()) {
      groups.push_back({e, {}});
      it = std::prev(groups.end());
    }
    it->second.push_back(i);
  }

  double service_ns = 0.0;
  for (auto& [epoch, members] : groups) {
    if (!dg_.has_epoch(epoch)) {
      for (std::size_t i : members)
        outcomes_[w.reqs[i].idx].status = Status::StaleEpoch;
      continue;
    }
    // `store` is the persistent per-epoch cache when enabled, or a
    // flush-local scratch otherwise — either way it is what dedups keys
    // and resolves every member after the batch returns.
    EpochCache local;
    EpochCache& store = opt_.cache ? cache_[epoch] : local;

    std::vector<std::pair<graph::VertexId, graph::VertexId>> same_q;
    std::vector<graph::VertexId> size_q;
    std::unordered_map<std::uint64_t, std::size_t> same_sched, size_sched;
    for (std::size_t i : members) {
      const Request& rq = w.reqs[i].req;
      const bool is_same = rq.kind == QueryKind::SameComponent;
      auto& sched = is_same ? same_sched : size_sched;
      auto& cached = is_same ? store.same : store.size;
      const std::uint64_t key =
          is_same ? pair_key(rq.u, rq.v) : static_cast<std::uint64_t>(rq.u);
      if (sched.count(key) != 0) {
        ++stats_.coalesced;  // deduped against this window
        continue;
      }
      if (cached.count(key) != 0) {
        ++stats_.cache_hits;  // answered by an earlier flush on this epoch
        continue;
      }
      if (opt_.cache) ++stats_.cache_misses;
      sched.emplace(key, is_same ? same_q.size() : size_q.size());
      if (is_same)
        same_q.push_back({rq.u, rq.v});
      else
        size_q.push_back(rq.u);
    }

    bool ok = true;
    if (!same_q.empty() || !size_q.empty()) {
      stream::QueryBatch qb;
      qb.epoch = epoch;
      qb.scope = "serve.flush";
      qb.same_component = std::move(same_q);
      qb.component_size = std::move(size_q);
      if (!ro.enabled) {
        // Legacy path, byte-identical to the pre-resilience server: a
        // FaultError escapes and tears the serving loop down.
        const stream::QueryResult res = dg_.query(qb);
        service_ns += res.costs.modeled_ns;
        stats_.agg_ns += res.agg_ns;
        stats_.keys_sent +=
            qb.same_component.size() + qb.component_size.size();
        ++stats_.epoch_batches;
        for (const auto& [key, pos] : same_sched)
          store.same[key] = res.same[pos];
        for (const auto& [key, pos] : size_sched)
          store.size[key] = res.size[pos];
      } else {
        for (;;) {
          try {
            const stream::QueryResult res = dg_.query(qb);
            service_ns += res.costs.modeled_ns;
            stats_.agg_ns += res.agg_ns;
            stats_.keys_sent +=
                qb.same_component.size() + qb.component_size.size();
            ++stats_.epoch_batches;
            for (const auto& [key, pos] : same_sched)
              store.same[key] = res.same[pos];
            for (const auto& [key, pos] : size_sched)
              store.size[key] = res.size[pos];
            poll_recovery(start_ns + service_ns, &service_ns);
            break;
          } catch (const fault::FaultError&) {
            // Charge the failed attempt its honest cost (the runtime's
            // clock covers the burned retry ladder and timeouts), then
            // retry on the — possibly shrunken — topology while every
            // member tenant's budget allows.
            const double burned = dg_.runtime().modeled_time_ns();
            service_ns += burned;
            stats_.failed_ns += burned;
            ++stats_.flush_failures;
            poll_recovery(start_ns + service_ns, &service_ns);
            if (spend_retry_tokens(w, members, start_ns + service_ns)) {
              ++stats_.flush_retries;
              continue;
            }
            ok = false;
            break;
          }
        }
      }
    }

    if (ok) {
      for (std::size_t i : members) {
        const Request& rq = w.reqs[i].req;
        Outcome& o = outcomes_[w.reqs[i].idx];
        const bool is_same = rq.kind == QueryKind::SameComponent;
        const std::uint64_t key =
            is_same ? pair_key(rq.u, rq.v)
                    : static_cast<std::uint64_t>(rq.u);
        o.status = Status::Ok;
        o.answer = is_same ? store.same.at(key) : store.size.at(key);
      }
      if (ro.enabled) breaker_result(w, members, true, start_ns + service_ns);
    } else {
      // The backend gave up on this group: members whose key an earlier
      // flush already cached still get exact answers; the previous
      // epoch's cache serves the rest Degraded; only the remainder is
      // shed (fast-fail, counted against the breaker).
      for (std::size_t i : members) {
        const Request& rq = w.reqs[i].req;
        Outcome& o = outcomes_[w.reqs[i].idx];
        const bool is_same = rq.kind == QueryKind::SameComponent;
        const std::uint64_t key =
            is_same ? pair_key(rq.u, rq.v)
                    : static_cast<std::uint64_t>(rq.u);
        const auto& cached = is_same ? store.same : store.size;
        const auto it = cached.find(key);
        std::uint64_t ans = 0;
        std::uint64_t from = 0;
        if (it != cached.end()) {
          o.status = Status::Ok;
          o.answer = it->second;
        } else if (ro.brownout && lookup_degraded(rq, epoch, &ans, &from)) {
          o.status = Status::Degraded;
          o.answer = ans;
          o.epoch = from;
        } else {
          o.status = Status::Shed;
          o.shed_reason = ShedReason::BreakerOpen;
        }
      }
      breaker_result(w, members, false, start_ns + service_ns);
    }

    if (ok && verify) {
      // Measurement-only cross-check: re-ask the runtime directly, one
      // entry per request (no dedup, no cache), and compare bit patterns.
      // Costs of the reference run are deliberately NOT charged to the
      // server's clock.
      stream::QueryBatch direct;
      direct.epoch = epoch;
      direct.scope = "serve.verify";
      std::vector<std::pair<bool, std::size_t>> where;
      for (std::size_t i : members) {
        const Request& rq = w.reqs[i].req;
        if (rq.kind == QueryKind::SameComponent) {
          where.emplace_back(true, direct.same_component.size());
          direct.same_component.push_back({rq.u, rq.v});
        } else {
          where.emplace_back(false, direct.component_size.size());
          direct.component_size.push_back(rq.u);
        }
      }
      try {
        const stream::QueryResult ref = dg_.query(direct);
        for (std::size_t k = 0; k < members.size(); ++k) {
          const std::uint64_t want =
              where[k].first
                  ? static_cast<std::uint64_t>(ref.same[where[k].second])
                  : ref.size[where[k].second];
          if (outcomes_[w.reqs[members[k]].idx].answer != want)
            ++stats_.verify_mismatches;
        }
      } catch (const fault::FaultError&) {
        // The reference probe is uncharged and advisory; with resilience
        // on, a faulted probe is simply skipped.
        if (!ro.enabled) throw;
      }
    }
  }

  const double done_ns = start_ns + service_ns;
  server_free_ns_ = done_ns;
  stats_.service_ns += service_ns;
  for (const Pending& p : w.reqs) {
    Outcome& o = outcomes_[p.idx];
    o.start_ns = start_ns;
    o.done_ns = done_ns;
    retire_.push_back({done_ns, p.req.tenant});
    const auto t = static_cast<std::size_t>(p.req.tenant);
    switch (o.status) {
      case Status::StaleEpoch:
        ++stats_.tenants[t].stale;
        ++stats_.stale;
        break;
      case Status::Degraded:
        ++stats_.tenants[t].degraded;
        ++stats_.degraded;
        break;
      case Status::Shed:
        ++stats_.tenants[t].shed;
        ++stats_.shed;
        ++stats_.shed_breaker_open;
        break;
      default:
        ++stats_.tenants[t].completed;
        ++stats_.completed;
        lat_[t].push_back(o.latency_ns());
        if (opt_.resilience.enabled && p.req.deadline_ns > 0.0 &&
            done_ns > p.req.arrive_ns + p.req.deadline_ns)
          ++stats_.deadline_misses;
        break;
    }
    stats_.last_done_ns = std::max(stats_.last_done_ns, done_ns);
  }
  if (ro.enabled) update_mode(done_ns);
}

void QueryServer::note_event(ServeEventKind kind, double t_ns,
                             std::int32_t tenant) {
  ServeEvent e;
  e.t_ns = t_ns;
  e.kind = kind;
  e.tenant = tenant;
  stats_.events.push_back(e);
}

void QueryServer::update_mode(double now_ns) {
  const ResilienceOptions& ro = opt_.resilience;
  if (!ro.enabled || !ro.brownout) return;
  if (mode_ == Mode::Normal) {
    if (open_breakers_ > 0 || queued_reqs_ >= ro.brownout_high) {
      mode_ = Mode::Brownout;
      ++stats_.brownout_enters;
      note_event(ServeEventKind::BrownoutEnter, now_ns, -1);
    }
  } else {
    if (open_breakers_ == 0 && queued_reqs_ <= ro.brownout_low) {
      mode_ = Mode::Normal;
      ++stats_.brownout_exits;
      note_event(ServeEventKind::BrownoutExit, now_ns, -1);
    }
  }
}

bool QueryServer::lookup_cached(const Request& rq, std::uint64_t epoch,
                                std::uint64_t* answer) const {
  if (!opt_.cache) return false;
  const auto ce = cache_.find(epoch);
  if (ce == cache_.end()) return false;
  const bool is_same = rq.kind == QueryKind::SameComponent;
  const auto& m = ce->second;
  const auto& cached = is_same ? m.same : m.size;
  const auto it = cached.find(is_same ? pair_key(rq.u, rq.v)
                                      : static_cast<std::uint64_t>(rq.u));
  if (it == cached.end()) return false;
  *answer = it->second;
  return true;
}

bool QueryServer::lookup_degraded(const Request& rq, std::uint64_t epoch,
                                  std::uint64_t* answer,
                                  std::uint64_t* from) const {
  // The ring keeps exactly one older epoch (kEpochRing == 2), so the
  // staleness of a Degraded answer is bounded by one publish.  The cache
  // map is pruned at ring eviction, so a hit implies the epoch is still
  // retained.
  if (epoch == 0) return false;
  if (!lookup_cached(rq, epoch - 1, answer)) return false;
  *from = epoch - 1;
  return true;
}

void QueryServer::breaker_result(const Window& w,
                                 const std::vector<std::size_t>& members,
                                 bool ok, double now_ns) {
  std::vector<std::int32_t> tenants;
  for (std::size_t i : members) {
    const std::int32_t t = w.reqs[i].req.tenant;
    if (std::find(tenants.begin(), tenants.end(), t) == tenants.end())
      tenants.push_back(t);
  }
  for (std::int32_t t : tenants) {
    CircuitBreaker& cb = breakers_[static_cast<std::size_t>(t)];
    const bool was_closed = cb.state() == CircuitBreaker::State::Closed;
    if (ok) {
      if (cb.on_success()) {
        ++stats_.breaker_closes;
        --open_breakers_;
        note_event(ServeEventKind::BreakerClose, now_ns, t);
      }
    } else if (cb.on_failure(now_ns)) {
      ++stats_.breaker_trips;
      if (was_closed) ++open_breakers_;
      note_event(ServeEventKind::BreakerOpen, now_ns, t);
    }
  }
}

bool QueryServer::spend_retry_tokens(const Window& w,
                                     const std::vector<std::size_t>& members,
                                     double now_ns) {
  std::vector<std::int32_t> tenants;
  for (std::size_t i : members) {
    const std::int32_t t = w.reqs[i].req.tenant;
    if (std::find(tenants.begin(), tenants.end(), t) == tenants.end())
      tenants.push_back(t);
  }
  // All-or-nothing: a retry serves the whole coalesced group, so every
  // member tenant must contribute a token.
  for (std::int32_t t : tenants) {
    if (budgets_[static_cast<std::size_t>(t)].available(now_ns) < 1.0) {
      ++stats_.retry_denied;
      return false;
    }
  }
  for (std::int32_t t : tenants)
    budgets_[static_cast<std::size_t>(t)].try_spend(now_ns);
  return true;
}

void QueryServer::poll_recovery(double now_ns, double* service_ns) {
  const fault::FaultInjector* inj = dg_.runtime().fault_injector();
  if (inj == nullptr) return;
  const std::uint64_t ev = inj->loss_events();
  if (ev <= seen_loss_) return;
  seen_loss_ = ev;
  // A node was permanently lost and the topology shrank: republish the
  // current epoch on the survivor topology (refreshing the ring slot and
  // the buddy mirrors) before the next flush, charging the cost like any
  // other backend work.
  double spent = 0.0;
  try {
    const stream::BatchStats st = dg_.republish();
    spent = st.total_modeled_ns();
  } catch (const fault::FaultError&) {
    // Even the recovery publish can hit the fault plan; charge what was
    // burned and let the next flush's retry loop carry on.
    spent = dg_.runtime().modeled_time_ns();
  }
  *service_ns += spent;
  stats_.recovery_ns += spent;
  ++stats_.recoveries;
  note_event(ServeEventKind::Recovery, now_ns + spent, -1);
}

stream::BatchStats QueryServer::publish(
    double at_ns, std::span<const graph::EdgeUpdate> ops) {
  if (finished_) throw std::logic_error("QueryServer: publish after finish");
  drain(at_ns);
  const stream::BatchStats st = dg_.apply_batch(ops);
  server_free_ns_ =
      std::max(server_free_ns_, at_ns) + st.total_modeled_ns();
  stats_.publish_ns += st.total_modeled_ns();
  ++stats_.publishes;
  invalidate_evicted();
  if (opt_.resilience.enabled) {
    // apply_batch recovers from a shrink internally (publish_recover), so
    // fold any loss it absorbed into the seen baseline rather than
    // republishing a second time.
    if (const fault::FaultInjector* inj = dg_.runtime().fault_injector())
      seen_loss_ = inj->loss_events();
    update_mode(server_free_ns_);
  }
  return st;
}

void QueryServer::invalidate_evicted() {
  std::size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!dg_.has_epoch(it->first)) {
      dropped += it->second.entries();
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.cache_invalidated += dropped;
  if (dropped > 0) ++stats_.invalidation_events;
}

ServeStats QueryServer::finish() {
  if (!finished_) {
    finished_ = true;
    drain(std::numeric_limits<double>::infinity());
    assert(!open_ && queue_.empty());

    std::vector<double> all;
    all.reserve(stats_.completed);
    for (int t = 0; t < tenants_; ++t) {
      auto& v = lat_[static_cast<std::size_t>(t)];
      std::sort(v.begin(), v.end());
      TenantStats& ts = stats_.tenants[static_cast<std::size_t>(t)];
      ts.p50_ns = percentile(v, 50.0);
      ts.p95_ns = percentile(v, 95.0);
      ts.p99_ns = percentile(v, 99.0);
      ts.mean_ns = mean(v);
      all.insert(all.end(), v.begin(), v.end());
    }
    std::sort(all.begin(), all.end());
    stats_.p50_ns = percentile(all, 50.0);
    stats_.p95_ns = percentile(all, 95.0);
    stats_.p99_ns = percentile(all, 99.0);
    stats_.mean_ns = mean(all);

    double qsum = 0.0;
    std::size_t qn = 0;
    for (const Outcome& o : outcomes_) {
      if (o.status != Status::Ok) continue;
      qsum += o.queue_ns();
      ++qn;
    }
    stats_.mean_queue_ns = qn > 0 ? qsum / static_cast<double>(qn) : 0.0;

    if (stats_.offered == 0) stats_.first_arrival_ns = 0.0;
    stats_.makespan_ns =
        std::max(0.0, stats_.last_done_ns - stats_.first_arrival_ns);
    stats_.throughput_rps =
        stats_.makespan_ns > 0.0
            ? static_cast<double>(stats_.completed) / stats_.makespan_ns *
                  1e9
            : 0.0;
  }
  return stats_;
}

}  // namespace pgraph::serve
