#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "stream/query.hpp"

namespace pgraph::serve {

/// What a client session asks of the serving layer.
enum class QueryKind : std::uint8_t {
  SameComponent = 0,  ///< are u and v connected at the request's epoch?
  ComponentSize = 1,  ///< how many vertices share u's component?
};

/// One client request on the virtual arrival clock.  Arrival times are in
/// modeled nanoseconds on the same LogGP clock the runtime charges, so the
/// server's discrete-event loop can interleave request service with epoch
/// publishes consistently.
struct Request {
  double arrive_ns = 0.0;
  std::int32_t tenant = 0;
  QueryKind kind = QueryKind::SameComponent;
  graph::VertexId u = 0;
  graph::VertexId v = 0;  ///< second endpoint (SameComponent only)
  /// Epoch the session wants served: kLatest (resolved at admission) or a
  /// pinned epoch — which may fall out of the snapshot ring before the
  /// request is flushed (the stale-epoch path).
  std::uint64_t epoch = stream::QueryBatch::kLatest;
  /// Completion budget relative to arrive_ns (modeled ns); 0 = none.  Only
  /// honored when ServerOptions::resilience is enabled: the coalescer's
  /// flush budget becomes the min over its members, and a request whose
  /// deadline passes while it waits is shed as DeadlineExpired instead of
  /// occupying backend time.
  double deadline_ns = 0.0;
};

/// Open-loop multi-tenant workload description.  Everything is derived
/// deterministically from (seed, tenant), so the same parameters replay
/// the same request sequence regardless of how the server batches it.
struct WorkloadParams {
  int sessions = 4;          ///< concurrent tenants
  double rate_rps = 1e6;     ///< aggregate arrival rate, requests/modeled-s
  double horizon_ns = 1e9;   ///< generate arrivals in [0, horizon_ns)
  /// Zipf exponent of the key popularity (0 = uniform).  Hot ranks are
  /// scrambled through splitmix64 so popularity is decoupled from owner
  /// placement.
  double zipf_s = 0.0;
  double size_mix = 0.5;     ///< P(request is ComponentSize)
  /// Bursty on/off phases: each tenant is "on" for burst_on_frac of every
  /// phase_ns period and silent in between; the on-rate is scaled up by
  /// 1/burst_on_frac so the average rate is preserved.  phase_ns = 0 keeps
  /// steady Poisson arrivals.
  double phase_ns = 0.0;
  double burst_on_frac = 1.0;
  /// Fraction of requests pinned to `pinned_epoch` instead of kLatest
  /// (models sessions holding a consistent read snapshot).
  double pin_frac = 0.0;
  std::uint64_t pinned_epoch = 0;
  /// Mean per-request deadline (modeled ns); 0 = no deadlines.  Each
  /// request's budget is sampled deterministically in
  /// [0.5, 1.5) x deadline_ns from a stateless hash of
  /// (seed, tenant, request index) — NOT from the tenant's arrival RNG
  /// stream, so enabling deadlines never perturbs arrivals or keys.
  double deadline_ns = 0.0;
};

/// Bounded Zipf sampler over ranks [0, n): P(r) proportional to
/// (r+1)^-s, drawn by binary search over the precomputed CDF.  s = 0
/// degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Rank for one uniform draw in [0, 1).
  std::size_t sample(double u01) const;

 private:
  std::vector<double> cdf_;  ///< unnormalized running mass
  double total_ = 0.0;
};

/// Generate the merged multi-tenant request sequence, sorted by arrival
/// time (ties broken by tenant then key so the order is total).  Keys are
/// vertex ids in [0, n_keys).
std::vector<Request> generate_workload(std::size_t n_keys,
                                       std::uint64_t seed,
                                       const WorkloadParams& p);

}  // namespace pgraph::serve
