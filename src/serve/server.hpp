#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "serve/workload.hpp"
#include "stream/dynamic_graph.hpp"

namespace pgraph::serve {

/// How a request left the server.
enum class Status : std::uint8_t {
  Pending = 0,     ///< still queued (never final after finish())
  Ok = 1,          ///< answered from a published epoch
  Shed = 2,        ///< rejected at admission (tenant queue full)
  StaleEpoch = 3,  ///< pinned epoch evicted from the ring before service
};

/// Final record of one offered request, in offer order.  The answer field
/// is the same bit pattern a direct DynamicGraph::query would return
/// (0/1 for SameComponent, the count for ComponentSize), which is what the
/// bit-identity tests compare.
struct Outcome {
  Status status = Status::Pending;
  std::uint64_t answer = 0;
  std::uint64_t epoch = 0;    ///< resolved epoch (kLatest bound at admission)
  double arrive_ns = 0.0;
  double start_ns = 0.0;      ///< when its flush entered service
  double done_ns = 0.0;       ///< when its flush completed
  double latency_ns() const { return done_ns - arrive_ns; }
  double queue_ns() const { return start_ns - arrive_ns; }
};

/// Per-tenant SLO summary.
struct TenantStats {
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;  ///< answered Ok
  std::uint64_t stale = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
};

/// Aggregate serving telemetry returned by QueryServer::finish().
struct ServeStats {
  std::vector<TenantStats> tenants;
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t stale = 0;

  std::uint64_t flushes = 0;       ///< windows executed
  std::uint64_t epoch_batches = 0; ///< per-epoch QueryBatches sent to GetD
  std::uint64_t keys_sent = 0;     ///< unique uncached keys actually fetched
  std::uint64_t coalesced = 0;     ///< requests answered by another's key
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidated = 0;    ///< entries dropped at evictions
  std::uint64_t invalidation_events = 0;  ///< publishes that dropped entries
  std::uint64_t publishes = 0;
  std::uint64_t verify_mismatches = 0;    ///< bit-identity violations seen

  double service_ns = 0.0;  ///< modeled time inside query flushes
  double publish_ns = 0.0;  ///< modeled time inside apply_batch
  double agg_ns = 0.0;      ///< lazy size-aggregation share of service_ns
  double first_arrival_ns = 0.0;
  double last_done_ns = 0.0;
  double makespan_ns = 0.0;
  double throughput_rps = 0.0;  ///< completed per modeled second

  double p50_ns = 0.0;  ///< aggregate latency percentiles over Ok requests
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double mean_queue_ns = 0.0;

  double cache_hit_rate() const {
    const double tot = static_cast<double>(cache_hits + cache_misses);
    return tot > 0 ? static_cast<double>(cache_hits) / tot : 0.0;
  }
};

struct ServerOptions {
  /// Coalescing window: a window opened at t closes at t + window_ns (or
  /// earlier on max_batch).  0 means flush every request individually.
  double window_ns = 0.0;
  std::size_t max_batch = 4096;  ///< requests per window before forced close
  /// Admission bound: per-tenant in-flight requests (queued + in service).
  /// Offers past the bound are shed with a counted rejection.
  std::size_t max_queue = 64;
  bool cache = true;  ///< per-epoch result cache
  /// Cross-check every k-th flush against a direct DynamicGraph::query of
  /// the same keys (0 = off).  Mismatches land in verify_mismatches
  /// instead of aborting, so benches can gate on the counter.
  std::size_t verify_every = 0;
};

/// Multi-tenant query front end over DynamicGraph epoch snapshots.
///
/// The server is a discrete-event simulation on the modeled clock: client
/// arrivals (Request::arrive_ns), window closings, flush service and epoch
/// publishes are totally ordered by virtual time, with service durations
/// taken from the modeled RunCosts of the underlying collective runs.  The
/// backend is serialized (one flush or publish at a time), which models
/// the single PGAS runtime the queries share.
///
/// Drive it with offer()/publish() in nondecreasing virtual time, then
/// finish() to drain and collect SLO stats.  See docs/SERVING.md.
class QueryServer {
 public:
  QueryServer(stream::DynamicGraph& dg, int tenants, ServerOptions opt = {});

  /// Admit (or shed) one request; returns its index into outcomes().
  std::size_t offer(const Request& r);

  /// Publish the next epoch at virtual time `at_ns`: flushes due before
  /// the publish are serviced first, the update batch is applied, and
  /// cached results of epochs that fell out of the snapshot ring are
  /// invalidated.
  stream::BatchStats publish(double at_ns,
                             std::span<const graph::EdgeUpdate> ops);

  /// Drain every queued window and compute the final statistics.
  ServeStats finish();

  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  const ServeStats& stats() const { return stats_; }

 private:
  struct Pending {
    Request req;       ///< epoch already resolved
    std::size_t idx;   ///< index into outcomes_
  };
  struct Window {
    std::vector<Pending> reqs;
    double open_ns = 0.0;
    double close_ns = 0.0;  ///< when it becomes ready for service
  };
  struct EpochCache {
    std::unordered_map<std::uint64_t, std::uint64_t> same;  ///< packed pair
    std::unordered_map<std::uint64_t, std::uint64_t> size;  ///< vertex id
    std::size_t entries() const { return same.size() + size.size(); }
  };

  /// Advance the event loop to virtual time `t`: retire completions, close
  /// due windows, execute queued flushes whose start time has come.
  void drain(double t);
  void close_open(double ready_ns);
  void execute_flush(Window& w, double start_ns);
  void invalidate_evicted();

  stream::DynamicGraph& dg_;
  ServerOptions opt_;
  int tenants_;

  std::optional<Window> open_;
  std::deque<Window> queue_;  ///< closed windows awaiting service
  /// FIFO of (completion time, tenant) for in-flight accounting; valid
  /// because the serialized backend completes flushes in start order.
  std::deque<std::pair<double, std::int32_t>> retire_;
  std::vector<std::size_t> inflight_;  ///< per tenant

  double server_free_ns_ = 0.0;  ///< backend busy until here
  std::unordered_map<std::uint64_t, EpochCache> cache_;  ///< by epoch

  std::vector<Outcome> outcomes_;
  std::vector<std::vector<double>> lat_;  ///< per-tenant Ok latencies
  ServeStats stats_;
  bool finished_ = false;
};

}  // namespace pgraph::serve
