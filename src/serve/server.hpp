#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "serve/resilience.hpp"
#include "serve/workload.hpp"
#include "stream/dynamic_graph.hpp"

namespace pgraph::serve {

/// How a request left the server.
enum class Status : std::uint8_t {
  Pending = 0,     ///< still queued (never final after finish())
  Ok = 1,          ///< answered from a published epoch
  Shed = 2,        ///< rejected (see Outcome::shed_reason)
  StaleEpoch = 3,  ///< pinned epoch evicted from the ring before service
  Degraded = 4,    ///< answered from the previous epoch's cache (brownout)
};

/// Final record of one offered request, in offer order.  The answer field
/// is the same bit pattern a direct DynamicGraph::query would return
/// (0/1 for SameComponent, the count for ComponentSize), which is what the
/// bit-identity tests compare.  A Degraded outcome's epoch is the epoch
/// actually answered from (the resolved epoch minus one), bounding the
/// staleness to exactly one epoch.
struct Outcome {
  Status status = Status::Pending;
  ShedReason shed_reason = ShedReason::None;  ///< set iff status == Shed
  std::uint64_t answer = 0;
  std::uint64_t epoch = 0;    ///< epoch served (kLatest bound at admission)
  double arrive_ns = 0.0;
  double start_ns = 0.0;      ///< when its flush entered service
  double done_ns = 0.0;       ///< when its flush completed
  double latency_ns() const { return done_ns - arrive_ns; }
  double queue_ns() const { return start_ns - arrive_ns; }
};

/// Per-tenant SLO summary.
struct TenantStats {
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;  ///< answered Ok
  std::uint64_t stale = 0;
  std::uint64_t degraded = 0;   ///< answered from the previous epoch
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
};

/// Aggregate serving telemetry returned by QueryServer::finish().
struct ServeStats {
  std::vector<TenantStats> tenants;
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t stale = 0;
  std::uint64_t degraded = 0;  ///< Degraded answers (brownout serving)

  /// Shed split by reason; the three always sum to `shed`.
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_breaker_open = 0;
  std::uint64_t shed_deadline = 0;

  std::uint64_t flushes = 0;       ///< windows executed
  std::uint64_t epoch_batches = 0; ///< per-epoch QueryBatches sent to GetD
  std::uint64_t keys_sent = 0;     ///< unique uncached keys actually fetched
  std::uint64_t coalesced = 0;     ///< requests answered by another's key
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidated = 0;    ///< entries dropped at evictions
  std::uint64_t invalidation_events = 0;  ///< publishes that dropped entries
  std::uint64_t publishes = 0;
  std::uint64_t verify_mismatches = 0;    ///< bit-identity violations seen

  /// Resilience telemetry (all zero when the layer is disabled).
  std::uint64_t flush_failures = 0;   ///< backend attempts that threw
  std::uint64_t flush_retries = 0;    ///< failed attempts retried
  std::uint64_t retry_denied = 0;     ///< retries refused by the budget
  std::uint64_t breaker_trips = 0;    ///< -> Open transitions
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t brownout_enters = 0;
  std::uint64_t brownout_exits = 0;
  std::uint64_t brownout_cache_ok = 0;  ///< instant fresh-cache Ok in brownout
  std::uint64_t deadline_misses = 0;    ///< served Ok but past the deadline
  std::uint64_t recoveries = 0;         ///< post-shrink republishes triggered
  double failed_ns = 0.0;    ///< modeled time burned by failed attempts
  double recovery_ns = 0.0;  ///< modeled time inside recovery republishes
  /// Mode/breaker transition log in virtual-time order (for the
  /// Chrome-trace instant export and the lifecycle tests).
  std::vector<ServeEvent> events;

  double service_ns = 0.0;  ///< modeled time inside query flushes
  double publish_ns = 0.0;  ///< modeled time inside apply_batch
  double agg_ns = 0.0;      ///< lazy size-aggregation share of service_ns
  double first_arrival_ns = 0.0;
  double last_done_ns = 0.0;
  double makespan_ns = 0.0;
  double throughput_rps = 0.0;  ///< completed per modeled second

  double p50_ns = 0.0;  ///< aggregate latency percentiles over Ok requests
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double mean_queue_ns = 0.0;

  double cache_hit_rate() const {
    const double tot = static_cast<double>(cache_hits + cache_misses);
    return tot > 0 ? static_cast<double>(cache_hits) / tot : 0.0;
  }
  /// Fraction of offered requests that got an answer (Ok + Degraded) —
  /// the availability metric srv02 sweeps against fault intensity.
  double availability() const {
    return offered > 0
               ? static_cast<double>(completed + degraded) /
                     static_cast<double>(offered)
               : 1.0;
  }
};

struct ServerOptions {
  /// Coalescing window: a window opened at t closes at t + window_ns (or
  /// earlier on max_batch).  0 means flush every request individually.
  double window_ns = 0.0;
  std::size_t max_batch = 4096;  ///< requests per window before forced close
  /// Admission bound: per-tenant in-flight requests (queued + in service).
  /// Offers past the bound are shed with a counted rejection.
  std::size_t max_queue = 64;
  bool cache = true;  ///< per-epoch result cache
  /// Cross-check every k-th flush against a direct DynamicGraph::query of
  /// the same keys (0 = off).  Mismatches land in verify_mismatches
  /// instead of aborting, so benches can gate on the counter.
  std::size_t verify_every = 0;
  /// Overload/failure resilience: deadlines, retry budgets, breakers and
  /// brownout degradation (docs/SERVING.md "Degraded serving").  Disabled
  /// by default; when disabled the server behaves byte-identically to the
  /// pre-resilience implementation.
  ResilienceOptions resilience;
};

/// Multi-tenant query front end over DynamicGraph epoch snapshots.
///
/// The server is a discrete-event simulation on the modeled clock: client
/// arrivals (Request::arrive_ns), window closings, flush service and epoch
/// publishes are totally ordered by virtual time, with service durations
/// taken from the modeled RunCosts of the underlying collective runs.  The
/// backend is serialized (one flush or publish at a time), which models
/// the single PGAS runtime the queries share.
///
/// Drive it with offer()/publish() in nondecreasing virtual time, then
/// finish() to drain and collect SLO stats.  See docs/SERVING.md.
class QueryServer {
 public:
  QueryServer(stream::DynamicGraph& dg, int tenants, ServerOptions opt = {});

  /// Admit (or shed) one request; returns its index into outcomes().
  std::size_t offer(const Request& r);

  /// Publish the next epoch at virtual time `at_ns`: flushes due before
  /// the publish are serviced first, the update batch is applied, and
  /// cached results of epochs that fell out of the snapshot ring are
  /// invalidated.
  stream::BatchStats publish(double at_ns,
                             std::span<const graph::EdgeUpdate> ops);

  /// Drain every queued window and compute the final statistics.
  ServeStats finish();

  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  const ServeStats& stats() const { return stats_; }

 private:
  struct Pending {
    Request req;       ///< epoch already resolved
    std::size_t idx;   ///< index into outcomes_
  };
  struct Window {
    std::vector<Pending> reqs;
    double open_ns = 0.0;
    double close_ns = 0.0;  ///< when it becomes ready for service
  };
  struct EpochCache {
    std::unordered_map<std::uint64_t, std::uint64_t> same;  ///< packed pair
    std::unordered_map<std::uint64_t, std::uint64_t> size;  ///< vertex id
    std::size_t entries() const { return same.size() + size.size(); }
  };
  enum class Mode : std::uint8_t { Normal = 0, Brownout = 1 };

  /// Advance the event loop to virtual time `t`: retire completions, close
  /// due windows, execute queued flushes whose start time has come.
  void drain(double t);
  void close_open(double ready_ns);
  void execute_flush(Window& w, double start_ns);
  void invalidate_evicted();

  /// Resilience helpers (no-ops unless opt_.resilience.enabled).
  void note_event(ServeEventKind kind, double t_ns, std::int32_t tenant);
  void update_mode(double now_ns);
  /// Fresh-epoch cache probe for the brownout fast path.
  bool lookup_cached(const Request& rq, std::uint64_t epoch,
                     std::uint64_t* answer) const;
  /// Previous-epoch probe: true if a Degraded answer is available.
  bool lookup_degraded(const Request& rq, std::uint64_t epoch,
                       std::uint64_t* answer, std::uint64_t* from) const;
  /// Apply one flush group's backend verdict to the member tenants'
  /// breakers, maintaining open_breakers_ and the transition counters.
  void breaker_result(const Window& w, const std::vector<std::size_t>& members,
                      bool ok, double now_ns);
  /// One budget token per distinct member tenant; all-or-nothing.
  bool spend_retry_tokens(const Window& w,
                          const std::vector<std::size_t>& members,
                          double now_ns);
  /// Detect a topology shrink (loss_events advanced) and republish the
  /// current epoch on the survivor topology, charging the cost.
  void poll_recovery(double now_ns, double* service_ns);

  stream::DynamicGraph& dg_;
  ServerOptions opt_;
  int tenants_;

  std::optional<Window> open_;
  std::deque<Window> queue_;  ///< closed windows awaiting service
  /// FIFO of (completion time, tenant) for in-flight accounting; valid
  /// because the serialized backend completes flushes in start order.
  std::deque<std::pair<double, std::int32_t>> retire_;
  std::vector<std::size_t> inflight_;  ///< per tenant

  double server_free_ns_ = 0.0;  ///< backend busy until here
  std::unordered_map<std::uint64_t, EpochCache> cache_;  ///< by epoch

  /// Resilience state (inert when disabled).
  Mode mode_ = Mode::Normal;
  std::vector<CircuitBreaker> breakers_;  ///< per tenant
  std::vector<RetryBudget> budgets_;      ///< per tenant
  int open_breakers_ = 0;        ///< breakers not in Closed state
  std::size_t queued_reqs_ = 0;  ///< admitted, not yet entered service
  std::uint64_t seen_loss_ = 0;  ///< loss_events already recovered from

  std::vector<Outcome> outcomes_;
  std::vector<std::vector<double>> lat_;  ///< per-tenant Ok latencies
  ServeStats stats_;
  bool finished_ = false;
};

}  // namespace pgraph::serve
