#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pgraph::trace::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // %.17g round-trips doubles; trim the common integer case for size.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

const Value& Value::operator[](const std::string& key) const {
  static const Value null_value;
  if (kind_ != Kind::Object) return null_value;
  const auto it = obj_.find(key);
  return it == obj_.end() ? null_value : it->second;
}

bool Value::has(const std::string& key) const {
  return kind_ == Kind::Object && obj_.count(key) > 0;
}

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  bool run(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (err_ != nullptr)
      *err_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool value(Value& out) {
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind_ = Value::Kind::String;
      return string(out.str_);
    }
    if (c == 't' || c == 'f') return boolean(out);
    if (c == 'n') return null(out);
    return num(out);
  }

  bool object(Value& out) {
    out.kind_ = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
        return fail("expected object key");
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Value v;
      if (!value(v)) return false;
      out.obj_.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Value& out) {
    out.kind_ = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!value(v)) return false;
      out.arr_.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u digit");
          }
          // The exporters only escape control characters; encode the code
          // point as UTF-8 (BMP only, no surrogate pairing).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool boolean(Value& out) {
    out.kind_ = Value::Kind::Bool;
    if (s_.substr(pos_, 4) == "true") {
      out.num_ = 1.0;
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      out.num_ = 0.0;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool null(Value& out) {
    out.kind_ = Value::Kind::Null;
    if (s_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool num(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    const auto digits = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) return fail("expected number");
    out.kind_ = Value::Kind::Number;
    out.num_ = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

bool parse(std::string_view text, Value& out, std::string* err) {
  return Parser(text, err).run(out);
}

}  // namespace pgraph::trace::json
