#pragma once

// The Chrome/Perfetto trace-event exporter lives in chrome_trace.cpp as
// SuperstepTracer::write_chrome_trace (declared in tracer.hpp).  This
// header only documents the track layout so tests and tools share one
// description of the output:
//
//   pid <k>            one "process" per attached runtime (segment k),
//                      named "run<k>: <nodes>x<tpn> <preset>"
//   tid 2*t            UPC thread t's category track: per superstep, one
//                      complete ("X") slice per machine::Cat with nonzero
//                      clock advance, laid out back-to-back from the
//                      superstep's start (the model prices aggregate
//                      category time per superstep, not an interleaving),
//                      plus an "(stall)" filler up to the barrier's end
//                      so the track is contiguous on the modeled axis.
//   tid 2*t+1          thread t's phase-scope track: collective phases
//                      ("getd.serve", "setd.apply", ...) as "X" slices
//                      and CRCW-window marks as instant ("i") events.
//   tid 1000000        the superstep verdict track: one slice per
//                      superstep named after the winning barrier term
//                      ("threads" / "nic" / "bus" / "exchange"), args
//                      carrying all four competing end times.
//   counters ("C")     per node: "node<n> NIC util", "node<n> bus util",
//                      "node<n> exch util" (occupancy / superstep
//                      duration), plus "net msgs" and "net bytes" deltas.
//
// Timestamps are microseconds (trace-event convention) on the modeled
// clock; durations in the category tracks therefore sum — per category —
// to the runtime's PhaseStats aggregates (tested in test_trace.cpp).

#include "trace/tracer.hpp"

namespace pgraph::trace {

inline constexpr int kVerdictTid = 1000000;

constexpr int cat_track_tid(int thread) { return 2 * thread; }
constexpr int scope_track_tid(int thread) { return 2 * thread + 1; }

}  // namespace pgraph::trace
