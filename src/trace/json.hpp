#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pgraph::trace::json {

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(std::string_view s);

/// Format a double the way the exporters do: shortest round-trippable
/// representation that is still plain JSON (no inf/nan — clamped to 0).
std::string number(double v);

/// A tiny immutable JSON document, parsed by parse() below.  This exists
/// so that the schema-validation tests (and the trace exporter's own
/// round-trip checks) do not need an external JSON dependency; it handles
/// exactly the subset the exporters emit plus standard escapes.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }

  double as_number(double fallback = 0.0) const {
    return kind_ == Kind::Number ? num_ : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::Bool ? num_ != 0.0 : fallback;
  }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return arr_; }
  /// Object member by key; a shared Null value if absent or not an object.
  const Value& operator[](const std::string& key) const;
  bool has(const std::string& key) const;
  std::size_t size() const {
    return kind_ == Kind::Array ? arr_.size() : obj_.size();
  }
  const std::map<std::string, Value>& members() const { return obj_; }

 private:
  friend class Parser;
  Kind kind_ = Kind::Null;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parse `text` into `out`.  Returns false (with a one-line message in
/// `*err` when given) on malformed input; `out` is unspecified then.
bool parse(std::string_view text, Value& out, std::string* err = nullptr);

}  // namespace pgraph::trace::json
