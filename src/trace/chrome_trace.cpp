#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <string>

#include "trace/json.hpp"

namespace pgraph::trace {

namespace {

constexpr double kNsPerUs = 1000.0;

/// Emits one trace event object per call, handling the comma separator.
class EventStream {
 public:
  explicit EventStream(std::ostream& os) : os_(os) {}

  std::ostream& begin() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_;
  }

  /// Continue the event most recently started with begin().
  std::ostream& out() { return os_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void meta(EventStream& ev, int pid, int tid, const char* what,
          const std::string& name) {
  ev.begin() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
             << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
             << json::escape(name) << "\"}}";
}

void slice(EventStream& ev, int pid, int tid, const char* name, double t0_ns,
           double dur_ns) {
  ev.begin() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
             << ",\"name\":\"" << json::escape(name)
             << "\",\"ts\":" << json::number(t0_ns / kNsPerUs)
             << ",\"dur\":" << json::number(dur_ns / kNsPerUs) << "}";
}

void counter(EventStream& ev, int pid, const std::string& name, double ts_ns,
             double value) {
  ev.begin() << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"name\":\""
             << json::escape(name)
             << "\",\"ts\":" << json::number(ts_ns / kNsPerUs)
             << ",\"args\":{\"value\":" << json::number(value) << "}}";
}

}  // namespace

void SuperstepTracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  EventStream ev(os);

  // --- metadata: processes (segments), threads, verdict tracks ---------
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    const Segment& seg = segments_[k];
    const int pid = static_cast<int>(k);
    meta(ev, pid, 0, "process_name",
         "run" + std::to_string(k) + ": " + seg.label);
    ev.begin() << "{\"ph\":\"M\",\"pid\":" << pid
               << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":"
               << pid << "}}";
    const int nthreads = static_cast<int>(seg.thread_node.size());
    for (int t = 0; t < nthreads; ++t) {
      const std::string node = std::to_string(seg.thread_node[t]);
      meta(ev, pid, cat_track_tid(t), "thread_name",
           "upc " + std::to_string(t) + " (node " + node + ")");
      meta(ev, pid, scope_track_tid(t), "thread_name",
           "upc " + std::to_string(t) + " phases");
    }
    meta(ev, pid, kVerdictTid, "thread_name", "superstep bottleneck");
  }

  // --- per-superstep events --------------------------------------------
  for (const Superstep& st : steps_) {
    const int pid = st.segment;
    const pgas::BarrierVerdict& v = st.verdict;
    const double dur = v.duration_ns();

    // Verdict slice with the four competing terms in args.
    ev.begin() << "{\"ph\":\"X\",\"pid\":" << pid
               << ",\"tid\":" << kVerdictTid << ",\"name\":\""
               << pgas::winner_name(v.winner)
               << "\",\"ts\":" << json::number(v.t_start / kNsPerUs)
               << ",\"dur\":" << json::number(dur / kNsPerUs)
               << ",\"args\":{\"t_threads_ns\":" << json::number(v.t_threads)
               << ",\"t_nic_ns\":" << json::number(v.t_nic)
               << ",\"t_bus_ns\":" << json::number(v.t_bus)
               << ",\"t_exchange_ns\":" << json::number(v.t_exchange)
               << ",\"exchange_ns\":" << json::number(v.exchange_ns)
               << ",\"barrier_cost_ns\":" << json::number(v.barrier_cost_ns)
               << ",\"msgs\":" << st.msgs_delta
               << ",\"bytes\":" << st.bytes_delta
               << ",\"fine_msgs\":" << st.fine_msgs_delta
               << ",\"violations\":" << st.violations_delta;
    // Fault-injection args only when the superstep saw any, so fault-free
    // traces stay byte-identical.
    if (st.fault_drops_delta != 0 || st.fault_retransmits_delta != 0 ||
        st.fault_corruptions_delta != 0 || st.fault_rollbacks_delta != 0)
      ev.out() << ",\"fault_drops\":" << st.fault_drops_delta
               << ",\"fault_retransmits\":" << st.fault_retransmits_delta
               << ",\"fault_corruptions\":" << st.fault_corruptions_delta
               << ",\"fault_rollbacks\":" << st.fault_rollbacks_delta
               << ",\"fault_wait_ns\":" << st.fault_wait_ns_delta;
    // Degraded-epoch marks: only emitted once a loss touched the step, so
    // loss-free traces stay byte-identical.
    if (st.fault_loss_drops_delta != 0 || st.fault_shrinks_delta != 0)
      ev.out() << ",\"fault_loss_drops\":" << st.fault_loss_drops_delta
               << ",\"fault_shrinks\":" << st.fault_shrinks_delta
               << ",\"live_nodes\":" << st.live_nodes;
    // Determinism digest: only when the run recorded one (--digest), so
    // digest-off traces stay byte-identical.
    if (st.has_digest) {
      char dig[20];
      std::snprintf(dig, sizeof dig, "%016llx",
                    static_cast<unsigned long long>(st.state_digest));
      ev.out() << ",\"digest\":\"" << dig << "\"";
    }
    ev.out() << "}}";

    // A shrink is a global topology event; mark it as an instant so it is
    // findable at a glance in the viewer (instants add no slice time, so
    // per-category totals still equal PhaseStats exactly).
    if (st.fault_shrinks_delta != 0)
      ev.begin() << "{\"ph\":\"i\",\"pid\":" << pid
                 << ",\"tid\":" << kVerdictTid
                 << ",\"name\":\"node-loss shrink (" << st.live_nodes
                 << " nodes live)\",\"ts\":"
                 << json::number(v.t_final / kNsPerUs) << ",\"s\":\"g\"}";

    // Per-thread category slices, back-to-back from the superstep start.
    for (std::size_t t = 0; t < st.cat_delta.size(); ++t) {
      double cursor = v.t_start;
      for (std::size_t c = 0; c < machine::kNumCats; ++c) {
        const double d = st.cat_delta[t].get(static_cast<machine::Cat>(c));
        if (d <= 0.0) continue;
        slice(ev, pid, cat_track_tid(static_cast<int>(t)),
              machine::kCatNames[c].data(), cursor, d);
        cursor += d;
      }
      const double stall = v.t_final - cursor;
      if (stall > 1e-9)
        slice(ev, pid, cat_track_tid(static_cast<int>(t)), "(stall)", cursor,
              stall);
    }

    // Per-node occupancy counters (fraction of the superstep).
    if (dur > 0.0) {
      for (std::size_t n = 0; n < st.nodes.size(); ++n) {
        const pgas::NodeSuperstep& ns = st.nodes[n];
        const std::string id = "node" + std::to_string(n);
        counter(ev, pid, id + " NIC util", v.t_start,
                ns.nic.congested_ns / dur);
        counter(ev, pid, id + " bus util", v.t_start, ns.bus_busy_ns / dur);
        counter(ev, pid, id + " exch util", v.t_start,
                (ns.exch.send_busy_ns + ns.exch.recv_busy_ns) / dur);
      }
      counter(ev, pid, "net msgs", v.t_start,
              static_cast<double>(st.msgs_delta));
      counter(ev, pid, "net bytes", v.t_start,
              static_cast<double>(st.bytes_delta));
    }
  }

  // Close the counter step functions at each segment's end.
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    double seg_end = segments_[k].offset_ns;
    int nodes = 0;
    for (const Superstep& st : steps_)
      if (st.segment == static_cast<int>(k)) {
        seg_end = std::max(seg_end, st.verdict.t_final);
        nodes = static_cast<int>(st.nodes.size());
      }
    const int pid = static_cast<int>(k);
    for (int n = 0; n < nodes; ++n) {
      const std::string id = "node" + std::to_string(n);
      counter(ev, pid, id + " NIC util", seg_end, 0.0);
      counter(ev, pid, id + " bus util", seg_end, 0.0);
      counter(ev, pid, id + " exch util", seg_end, 0.0);
    }
  }

  // --- host-side annotations (serving-mode transitions) ----------------
  // Emitted on a dedicated pseudo-process only when any exist, so traces
  // from runs without annotations stay byte-identical.
  if (!notes_.empty()) {
    const int pid = static_cast<int>(segments_.size());
    meta(ev, pid, 0, "process_name", "serve (virtual clock)");
    meta(ev, pid, 0, "thread_name", "mode transitions");
    ev.begin() << "{\"ph\":\"M\",\"pid\":" << pid
               << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":"
               << pid << "}}";
    for (const Annotation& an : notes_)
      ev.begin() << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":0,\"name\":\""
                 << json::escape(an.name)
                 << "\",\"ts\":" << json::number(an.ts_ns / kNsPerUs)
                 << ",\"s\":\"p\"}";
  }

  // --- phase scopes and CRCW marks -------------------------------------
  for (const auto& pt : threads_) {
    for (const ScopeEvent& sc : pt->scopes)
      slice(ev, sc.segment, scope_track_tid(sc.thread), sc.name, sc.t0_ns,
            sc.t1_ns - sc.t0_ns);
    for (const CrcwEvent& cw : pt->crcw)
      ev.begin() << "{\"ph\":\"i\",\"pid\":" << cw.segment
                 << ",\"tid\":" << scope_track_tid(cw.thread) << ",\"name\":\""
                 << json::escape(cw.label) << (cw.begin ? ".begin" : ".end")
                 << "\",\"ts\":" << json::number(cw.ts_ns / kNsPerUs)
                 << ",\"s\":\"t\"}";
  }

  os << "\n]}\n";
}

bool SuperstepTracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

}  // namespace pgraph::trace
