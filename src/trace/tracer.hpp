#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "pgas/runtime.hpp"
#include "pgas/trace_hook.hpp"

namespace pgraph::trace {

/// Bottleneck attribution over a set of supersteps: how many supersteps
/// (and how much modeled time) each of the four barrier terms won.
struct Attribution {
  std::uint64_t supersteps = 0;
  std::array<std::uint64_t, pgas::kNumBarrierWinners> count{};
  std::array<double, pgas::kNumBarrierWinners> time_ns{};

  void add(const pgas::BarrierVerdict& v) {
    ++supersteps;
    const auto w = static_cast<std::size_t>(v.winner);
    ++count[w];
    time_ns[w] += v.duration_ns();
  }

  double total_ns() const {
    double t = 0;
    for (const double v : time_ns) t += v;
    return t;
  }

  /// The term that owns the most modeled time (Threads when empty).
  pgas::BarrierVerdict::Winner dominant() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < time_ns.size(); ++i)
      if (time_ns[i] > time_ns[best]) best = i;
    return static_cast<pgas::BarrierVerdict::Winner>(best);
  }
};

/// One recorded superstep (all modeled times already shifted onto the
/// tracer's global axis, so records from consecutively attached runtimes
/// form one timeline).
struct Superstep {
  int segment = 0;            ///< which attach() this superstep belongs to
  std::uint64_t index = 0;    ///< runtime-local barrier index
  std::uint64_t epoch = 0;
  pgas::BarrierVerdict verdict;
  std::vector<double> arrival_clock;            ///< per thread, shifted
  std::vector<machine::PhaseStats> cat_delta;   ///< per thread, this step only
  std::vector<pgas::NodeSuperstep> nodes;
  std::uint64_t msgs_delta = 0;
  std::uint64_t bytes_delta = 0;
  std::uint64_t fine_msgs_delta = 0;
  std::uint64_t violations_delta = 0;  ///< access checker (check builds)
  // Fault-injection activity this superstep (all zero without an injector;
  // see docs/ROBUSTNESS.md).
  std::uint64_t fault_drops_delta = 0;
  std::uint64_t fault_retransmits_delta = 0;
  std::uint64_t fault_corruptions_delta = 0;
  std::uint64_t fault_rollbacks_delta = 0;
  std::uint64_t fault_wait_ns_delta = 0;
  std::uint64_t fault_loss_drops_delta = 0;
  std::uint64_t fault_shrinks_delta = 0;  ///< permanent-loss shrink events
  int live_nodes = 0;  ///< surviving nodes after this superstep
  /// Determinism digest of the committed GlobalArray state at this barrier
  /// (Runtime::set_digest_enabled; has_digest false when the feature is off).
  bool has_digest = false;
  std::uint64_t state_digest = 0;
};

struct ScopeEvent {
  const char* name;  ///< string literal supplied at the annotation site
  int segment;
  int thread;
  double t0_ns;  ///< shifted
  double t1_ns;
};

struct CrcwEvent {
  const char* label;  ///< "crcw.min" / "crcw.overwrite"
  int segment;
  int thread;
  double ts_ns;  ///< shifted
  bool begin;
};

/// Host-side instant annotation on the modeled-time axis: named marks a
/// front end (the serving layer's breaker/brownout/recovery transitions)
/// drops onto its own track of the Chrome-trace export.  Unlike scopes,
/// these are not tied to an SPMD thread or a segment.
struct Annotation {
  std::string name;
  double ts_ns = 0.0;
};

/// One attached runtime = one segment of the trace timeline.
struct Segment {
  double offset_ns = 0.0;  ///< where this runtime's t=0 lands globally
  std::vector<std::int32_t> thread_node;
  int nodes = 0;
  std::string label;  ///< "<nodes>x<tpn> <preset>"
};

/// The superstep tracer: a pgas::TraceSink that records, per superstep,
/// every thread's per-category clock advance, the four competing barrier
/// terms with the winner labeled, and per-node NIC/bus/exchange occupancy
/// — plus modeled-time phase scopes and CRCW-window marks reported by the
/// collectives.  Feed it to Runtime::set_trace_sink via attach(); attach
/// several runtimes in sequence and their timelines concatenate.
///
/// Thread safety: on_scope/on_crcw append to per-thread buffers (each SPMD
/// thread passes its own id); on_superstep runs in the barrier completion
/// step.  Accessors and exporters must only be called while no attached
/// runtime is inside run().
class SuperstepTracer final : public pgas::TraceSink {
 public:
  SuperstepTracer();
  ~SuperstepTracer() override;

  /// Start recording `rt` (replacing any sink it had).  Times of the new
  /// runtime are shifted so its timeline starts where the previous
  /// attached runtime's ended.  Must be called outside run().
  void attach(pgas::Runtime& rt);
  /// Detach from the runtime attached last (safe to let the tracer die
  /// first otherwise the runtime would dangle).
  void detach();

  // --- TraceSink -------------------------------------------------------
  void on_superstep(const pgas::SuperstepRecord& rec) override;
  void on_scope(int thread, const char* name, double t0_ns,
                double t1_ns) override;
  void on_crcw(int thread, const char* label, double ts_ns,
               bool begin) override;
  void on_runtime_gone() noexcept override { attached_ = nullptr; }
  void on_reset() noexcept override;

  // --- recorded data ---------------------------------------------------
  const std::vector<Superstep>& supersteps() const { return steps_; }
  const std::vector<Segment>& segments() const { return segments_; }
  std::vector<ScopeEvent> all_scopes() const;
  std::vector<CrcwEvent> all_crcw() const;
  int max_threads() const { return static_cast<int>(threads_.size()); }
  double end_ns() const { return end_ns_; }

  /// Record a host-side instant annotation (serving-mode transitions).
  /// `ts_ns` is on the caller's virtual clock, used verbatim.  Annotations
  /// are emitted as Chrome-trace instant events on a dedicated pseudo-
  /// process only when at least one exists, so traces without them are
  /// byte-identical to pre-annotation output.
  void note_instant(std::string name, double ts_ns);
  const std::vector<Annotation>& annotations() const { return notes_; }

  /// Attribution accumulated since the last take (bench rows call this
  /// once per configuration), and over the whole recording.
  Attribution take_row_attribution();
  const Attribution& total_attribution() const { return total_; }

  /// Per-superstep determinism digests recorded since the last take (bench
  /// rows call this once per configuration; empty when digests are off).
  /// Ordered by recording order, so two runs of the same configuration can
  /// be diffed element-by-element to find the first diverging superstep.
  std::vector<std::uint64_t> take_row_digests();

  // --- exporters -------------------------------------------------------
  /// Chrome/Perfetto trace-event JSON on the modeled-time axis: one track
  /// per UPC thread (per-category slices), one per thread for collective
  /// phase scopes, a per-segment verdict track, and per-node NIC/bus/
  /// exchange counter tracks.  `ts` is microseconds (trace-event format).
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience file variant; returns false if the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct PerThread {
    std::vector<ScopeEvent> scopes;
    std::vector<CrcwEvent> crcw;
  };

  pgas::Runtime* attached_ = nullptr;
  int cur_segment_ = -1;
  double offset_ns_ = 0.0;
  double end_ns_ = 0.0;
  std::vector<machine::PhaseStats> prev_stats_;
  std::uint64_t prev_violations_ = 0;
  std::vector<std::unique_ptr<PerThread>> threads_;
  std::vector<Segment> segments_;
  std::vector<Superstep> steps_;
  std::vector<Annotation> notes_;
  Attribution row_;
  Attribution total_;
  std::size_t row_digest_start_ = 0;  ///< steps_ index of the last digest take
};

}  // namespace pgraph::trace
