#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "machine/phase_stats.hpp"
#include "trace/tracer.hpp"

namespace pgraph::trace {

/// Versioned machine-readable bench output (`BENCH_<name>.json`).  Every
/// harness bench emits one of these via `--json <path>`; the schema is
/// what scripts/bench_diff.py validates and compares, so bump
/// kBenchSchemaVersion when changing the layout.
inline constexpr const char* kBenchSchemaName = "pgraph-bench";
inline constexpr int kBenchSchemaVersion = 1;

/// One result row (one table row / figure configuration).
struct BenchRow {
  std::string label;
  double modeled_ns = 0.0;
  double wall_ms = 0.0;
  /// Per-category modeled time of the critical thread, by machine::Cat
  /// name ("Comm", "Sort", ...).  Empty when the row has no breakdown.
  std::vector<std::pair<std::string, double>> breakdown_ns;
  std::uint64_t messages = 0;
  std::uint64_t fine_messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  /// Bench-specific numeric extras (speedup factors, miss rates, ...).
  std::vector<std::pair<std::string, double>> extra;
  /// Per-superstep bottleneck attribution for this row (present when the
  /// bench ran with a tracer attached).
  std::optional<Attribution> attribution;
  /// Per-superstep determinism digests (--digest; empty when off).  Written
  /// as 16-hex-digit strings so JSON consumers never round them through a
  /// double.  Diff two runs' arrays element-by-element to bisect to the
  /// first diverging superstep.
  std::vector<std::uint64_t> digests;

  void set_breakdown(const machine::PhaseStats& st) {
    breakdown_ns.clear();
    for (std::size_t c = 0; c < machine::kNumCats; ++c)
      breakdown_ns.emplace_back(std::string(machine::kCatNames[c]),
                                st.get(static_cast<machine::Cat>(c)));
  }
};

/// The whole report: identity, parameters, rows, and (optionally) the
/// recording-wide attribution summary.
struct BenchReport {
  std::string bench;   ///< binary name, e.g. "fig05_opt_breakdown_random"
  std::string preset;  ///< cost-parameter preset name
  std::vector<std::pair<std::string, double>> params;
  std::vector<BenchRow> rows;
  std::optional<Attribution> attribution;

  void set_param(const std::string& key, double v) {
    for (auto& kv : params)
      if (kv.first == key) {
        kv.second = v;
        return;
      }
    params.emplace_back(key, v);
  }

  void write(std::ostream& os) const;
  /// Returns false if the file cannot be opened/written.
  bool write_file(const std::string& path) const;
};

}  // namespace pgraph::trace
