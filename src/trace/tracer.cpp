#include "trace/tracer.hpp"

#include <algorithm>
#include <cassert>

#include "analysis/access_checker.hpp"

namespace pgraph::trace {

SuperstepTracer::SuperstepTracer() = default;

SuperstepTracer::~SuperstepTracer() { detach(); }

void SuperstepTracer::attach(pgas::Runtime& rt) {
  detach();
  attached_ = &rt;
  cur_segment_ = static_cast<int>(segments_.size());
  offset_ns_ = end_ns_;

  Segment seg;
  seg.offset_ns = offset_ns_;
  seg.thread_node = rt.topo().thread_node_map();
  seg.nodes = rt.topo().nodes;
  seg.label = std::to_string(rt.topo().nodes) + "x" +
              std::to_string(rt.topo().threads_per_node) + " " +
              rt.params().preset;
  segments_.push_back(std::move(seg));

  const std::size_t s = static_cast<std::size_t>(rt.topo().total_threads());
  // A runtime carries its threads' stats across run() calls; baseline the
  // deltas on whatever it has already accumulated.
  prev_stats_ = rt.saved_thread_stats();
  prev_stats_.resize(s);
  while (threads_.size() < s)
    threads_.push_back(std::make_unique<PerThread>());
#ifdef PGRAPH_CHECK_ACCESS
  prev_violations_ = analysis::AccessChecker::instance().violation_count();
#endif
  rt.set_trace_sink(this);
}

void SuperstepTracer::detach() {
  if (attached_ != nullptr) {
    attached_->set_trace_sink(nullptr);
    attached_ = nullptr;
  }
}

void SuperstepTracer::on_reset() noexcept {
  if (attached_ == nullptr || cur_segment_ < 0) return;
  // The runtime's clocks and cumulative stats just restarted at zero while
  // we stay attached (Runtime::reset_costs between bench rows / stream
  // batches).  Rebase the segment offset so post-reset events continue the
  // global timeline where it left off, and re-baseline the per-thread
  // stats so the next superstep's deltas start from zero, not from the
  // pre-reset cumulative values.
  offset_ns_ = end_ns_;
  for (auto& st : prev_stats_) st.reset();
}

void SuperstepTracer::on_superstep(const pgas::SuperstepRecord& rec) {
  assert(cur_segment_ >= 0);
  Superstep st;
  st.segment = cur_segment_;
  st.index = rec.index;
  st.epoch = rec.epoch;
  st.verdict = rec.verdict;
  st.verdict.t_start += offset_ns_;
  st.verdict.t_threads += offset_ns_;
  st.verdict.t_nic += offset_ns_;
  st.verdict.t_bus += offset_ns_;
  st.verdict.t_exchange += offset_ns_;
  st.verdict.t_final += offset_ns_;

  st.arrival_clock = *rec.arrival_clock;
  for (double& c : st.arrival_clock) c += offset_ns_;

  const std::vector<machine::PhaseStats>& cur = *rec.stats;
  st.cat_delta.resize(cur.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    for (std::size_t c = 0; c < machine::kNumCats; ++c) {
      const auto cat = static_cast<machine::Cat>(c);
      st.cat_delta[i].add(cat, cur[i].get(cat) - prev_stats_[i].get(cat));
    }
  }
  prev_stats_ = cur;

  st.nodes = *rec.nodes;
  st.msgs_delta = rec.msgs_delta;
  st.bytes_delta = rec.bytes_delta;
  st.fine_msgs_delta = rec.fine_msgs_delta;
  st.fault_drops_delta = rec.fault_drops_delta;
  st.fault_retransmits_delta = rec.fault_retransmits_delta;
  st.fault_corruptions_delta = rec.fault_corruptions_delta;
  st.fault_rollbacks_delta = rec.fault_rollbacks_delta;
  st.fault_wait_ns_delta = rec.fault_wait_ns_delta;
  st.fault_loss_drops_delta = rec.fault_loss_drops_delta;
  st.fault_shrinks_delta = rec.fault_shrinks_delta;
  st.live_nodes = rec.live_nodes;
  st.has_digest = rec.has_digest;
  st.state_digest = rec.state_digest;
#ifdef PGRAPH_CHECK_ACCESS
  // Compose with the access checker: a traced run under the checker tags
  // each superstep with the violations it surfaced instead of the trace
  // losing them to an abort (tests run with abort_on_violation off).
  const std::uint64_t viol = analysis::AccessChecker::instance().violation_count();
  st.violations_delta = viol - prev_violations_;
  prev_violations_ = viol;
#endif

  end_ns_ = std::max(end_ns_, st.verdict.t_final);
  row_.add(st.verdict);
  total_.add(st.verdict);
  steps_.push_back(std::move(st));
}

void SuperstepTracer::on_scope(int thread, const char* name, double t0_ns,
                               double t1_ns) {
  PerThread& pt = *threads_[static_cast<std::size_t>(thread)];
  pt.scopes.push_back(
      {name, cur_segment_, thread, t0_ns + offset_ns_, t1_ns + offset_ns_});
}

void SuperstepTracer::on_crcw(int thread, const char* label, double ts_ns,
                              bool begin) {
  PerThread& pt = *threads_[static_cast<std::size_t>(thread)];
  pt.crcw.push_back({label, cur_segment_, thread, ts_ns + offset_ns_, begin});
}

void SuperstepTracer::note_instant(std::string name, double ts_ns) {
  notes_.push_back({std::move(name), ts_ns});
}

std::vector<ScopeEvent> SuperstepTracer::all_scopes() const {
  std::vector<ScopeEvent> out;
  for (const auto& pt : threads_)
    out.insert(out.end(), pt->scopes.begin(), pt->scopes.end());
  return out;
}

std::vector<CrcwEvent> SuperstepTracer::all_crcw() const {
  std::vector<CrcwEvent> out;
  for (const auto& pt : threads_)
    out.insert(out.end(), pt->crcw.begin(), pt->crcw.end());
  return out;
}

Attribution SuperstepTracer::take_row_attribution() {
  Attribution out = row_;
  row_ = Attribution{};
  return out;
}

std::vector<std::uint64_t> SuperstepTracer::take_row_digests() {
  std::vector<std::uint64_t> out;
  for (std::size_t i = row_digest_start_; i < steps_.size(); ++i)
    if (steps_[i].has_digest) out.push_back(steps_[i].state_digest);
  row_digest_start_ = steps_.size();
  return out;
}

}  // namespace pgraph::trace
