#include "trace/bench_json.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "trace/json.hpp"

namespace pgraph::trace {

namespace {

void write_attribution(std::ostream& os, const Attribution& a) {
  os << "{\"supersteps\":" << a.supersteps << ",\"count\":{";
  for (std::size_t w = 0; w < pgas::kNumBarrierWinners; ++w) {
    if (w != 0) os << ",";
    os << "\"" << pgas::winner_name(static_cast<pgas::BarrierVerdict::Winner>(w))
       << "\":" << a.count[w];
  }
  os << "},\"time_ns\":{";
  for (std::size_t w = 0; w < pgas::kNumBarrierWinners; ++w) {
    if (w != 0) os << ",";
    os << "\"" << pgas::winner_name(static_cast<pgas::BarrierVerdict::Winner>(w))
       << "\":" << json::number(a.time_ns[w]);
  }
  os << "},\"dominant\":\"" << pgas::winner_name(a.dominant()) << "\"}";
}

void write_pairs(std::ostream& os,
                 const std::vector<std::pair<std::string, double>>& kv) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(k) << "\":" << json::number(v);
  }
  os << "}";
}

}  // namespace

void BenchReport::write(std::ostream& os) const {
  os << "{\n\"schema\":\"" << kBenchSchemaName
     << "\",\n\"version\":" << kBenchSchemaVersion << ",\n\"bench\":\""
     << json::escape(bench) << "\",\n\"preset\":\"" << json::escape(preset)
     << "\",\n\"params\":";
  write_pairs(os, params);
  os << ",\n\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"label\":\"" << json::escape(r.label)
       << "\",\"modeled_ns\":" << json::number(r.modeled_ns)
       << ",\"wall_ms\":" << json::number(r.wall_ms) << ",\"breakdown_ns\":";
    write_pairs(os, r.breakdown_ns);
    os << ",\"messages\":" << r.messages
       << ",\"fine_messages\":" << r.fine_messages << ",\"bytes\":" << r.bytes
       << ",\"barriers\":" << r.barriers << ",\"extra\":";
    write_pairs(os, r.extra);
    if (r.attribution) {
      os << ",\"attribution\":";
      write_attribution(os, *r.attribution);
    }
    if (!r.digests.empty()) {
      os << ",\"digests\":[";
      for (std::size_t d = 0; d < r.digests.size(); ++d) {
        if (d != 0) os << ",";
        char buf[20];
        std::snprintf(buf, sizeof buf, "\"%016llx\"",
                      static_cast<unsigned long long>(r.digests[d]));
        os << buf;
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n]";
  if (attribution) {
    os << ",\n\"attribution\":";
    write_attribution(os, *attribution);
  }
  os << "\n}\n";
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return static_cast<bool>(f);
}

}  // namespace pgraph::trace
