#pragma once

#include <cstdint>
#include <string>

namespace pgraph::harness {

/// What the bench binary can actually do with the flags it accepts.
/// Batch benches leave `stream` false, so streaming flags are rejected at
/// parse time with a clear message instead of being silently ignored.
struct BenchCaps {
  bool stream = false;  ///< bench understands --stream / --batch-size / --query-mix
  bool serve = false;   ///< bench understands --sessions / --arrival-rate /
                        ///< --skew / --batch-window-ns
  bool robust = false;  ///< bench understands --scrub-interval / --certify /
                        ///< --mem-flips (at-rest integrity knobs)
  bool partition = false;  ///< bench routes its shared arrays through the
                           ///< runtime distribution policy (--partition)
};

/// Common CLI flags for bench binaries, so every figure can be re-run at
/// paper scale on a big machine (`--scale`) while defaulting to sizes that
/// finish in seconds inside CI.
///
///   --n <vertices>    --m <edges>   --nodes <p>   --threads <t>
///   --tprime <t'>     --seed <s>    --scale <f>   (multiplies n and m)
///   --csv             (emit CSV instead of aligned tables)
///   --json <path>     (write a machine-readable BENCH_*.json report)
///   --trace <path>    (write a Chrome/Perfetto trace.json of the run)
///   --faults <spec>   (fault-injection plan, e.g. "drop=0.01,corrupt=0.005";
///                      see fault::FaultConfig::parse and docs/ROBUSTNESS.md)
///   --fault-seed <s>  (seed of the deterministic fault plan; default 1)
///   --digest          (record a determinism digest of the committed
///                      GlobalArray state at every barrier; digests land in
///                      the --json report and --trace output so two runs
///                      can be bisected to the first diverging superstep)
///
/// Streaming benches (BenchCaps::stream) additionally accept:
///   --stream            (drive the dynamic-graph update/query loop)
///   --batch-size <ops>  (updates per ingested batch; requires --stream,
///                        must be > 0)
///   --query-mix <f>     (queries issued per update, in [0, 1]; requires
///                        --stream)
///
/// Serving benches (BenchCaps::serve) additionally accept:
///   --sessions <k>          (concurrent tenant sessions; must be > 0)
///   --arrival-rate <rps>    (aggregate arrival rate, requests per modeled
///                            second; must be > 0)
///   --skew <s>              (Zipf exponent of key popularity, >= 0;
///                            0 = uniform)
///   --batch-window-ns <ns>  (coalescing window on the modeled clock,
///                            >= 0; 0 = flush per request)
///   --deadline-ns <ns>      (mean per-request deadline on the modeled
///                            clock; must be finite and > 0)
///   --retry-budget <tok>    (per-tenant retry token-bucket capacity;
///                            must be finite and >= 0; 0 = never retry)
///   --brownout <0|1>        (serve stale answers from the previous epoch
///                            under breaker/queue pressure)
///
/// Robustness benches (BenchCaps::robust) additionally accept:
///   --scrub-interval <k>  (scrub resident partitions every k loop trips;
///                          must be >= 0; 0 = off)
///   --certify <0|1>       (run certifying output verifiers / epoch
///                          re-digests after the kernel)
///   --mem-flips <n>       (bit flips injected by the bench's fault plan;
///                          must be >= 0; 0 = no injection)
///
/// Partition-aware benches (BenchCaps::partition) additionally accept:
///   --partition <scheme>  (vertex distribution policy for the kernel's
///                          shared arrays: block | cyclic |
///                          block_cyclic:<chunk> | degree;
///                          see docs/PARTITIONING.md)
struct BenchArgs {
  std::uint64_t n = 0;  ///< 0 = bench default
  std::uint64_t m = 0;
  int nodes = 0;
  int threads = 0;
  int tprime = 0;
  std::uint64_t seed = 42;
  double scale = 1.0;
  bool csv = false;
  std::string json_path;   ///< empty = no JSON report
  std::string trace_path;  ///< empty = no trace
  std::string faults;      ///< empty = no fault injection
  std::uint64_t fault_seed = 1;
  bool digest = false;     ///< record per-superstep determinism digests
  bool stream = false;          ///< drive the streaming loop
  std::uint64_t batch_size = 0; ///< 0 = bench default (flag must be > 0)
  double query_mix = 0.0;       ///< queries per update, in [0, 1]
  int sessions = 0;             ///< 0 = bench default (flag must be > 0)
  double arrival_rate = 0.0;    ///< 0 = bench default (flag must be > 0)
  double skew = -1.0;           ///< < 0 = bench default (flag must be >= 0)
  double batch_window_ns = -1.0;///< < 0 = bench default (flag must be >= 0)
  double deadline_ns = 0.0;     ///< 0 = bench default (flag must be > 0)
  double retry_budget = -1.0;   ///< < 0 = bench default (flag must be >= 0)
  int brownout = -1;            ///< -1 = bench default (flag must be 0 or 1)
  int scrub_interval = -1;      ///< -1 = bench default (flag must be >= 0)
  int certify = -1;             ///< -1 = bench default (flag must be 0 or 1)
  int mem_flips = -1;           ///< -1 = bench default (flag must be >= 0)
  std::string partition;        ///< empty = block (validated at parse time)

  /// Parse into `out`.  Returns an empty string on success and the error
  /// message (flag included) on failure; `out` is unspecified on failure.
  /// Exits(0) only for --help.
  static std::string try_parse(int argc, char** argv, BenchArgs& out,
                               const BenchCaps& caps = {});

  /// try_parse that prints the error to stderr and exits(2) on failure.
  static BenchArgs parse(int argc, char** argv, const BenchCaps& caps = {});

  std::uint64_t scaled(std::uint64_t base) const {
    return static_cast<std::uint64_t>(static_cast<double>(base) * scale);
  }
};

}  // namespace pgraph::harness
