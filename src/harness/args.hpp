#pragma once

#include <cstdint>
#include <string>

namespace pgraph::harness {

/// Common CLI flags for bench binaries, so every figure can be re-run at
/// paper scale on a big machine (`--scale`) while defaulting to sizes that
/// finish in seconds inside CI.
///
///   --n <vertices>    --m <edges>   --nodes <p>   --threads <t>
///   --tprime <t'>     --seed <s>    --scale <f>   (multiplies n and m)
///   --csv             (emit CSV instead of aligned tables)
///   --json <path>     (write a machine-readable BENCH_*.json report)
///   --trace <path>    (write a Chrome/Perfetto trace.json of the run)
///   --faults <spec>   (fault-injection plan, e.g. "drop=0.01,corrupt=0.005";
///                      see fault::FaultConfig::parse and docs/ROBUSTNESS.md)
///   --fault-seed <s>  (seed of the deterministic fault plan; default 1)
struct BenchArgs {
  std::uint64_t n = 0;  ///< 0 = bench default
  std::uint64_t m = 0;
  int nodes = 0;
  int threads = 0;
  int tprime = 0;
  std::uint64_t seed = 42;
  double scale = 1.0;
  bool csv = false;
  std::string json_path;   ///< empty = no JSON report
  std::string trace_path;  ///< empty = no trace
  std::string faults;      ///< empty = no fault injection
  std::uint64_t fault_seed = 1;

  static BenchArgs parse(int argc, char** argv);

  std::uint64_t scaled(std::uint64_t base) const {
    return static_cast<std::uint64_t>(static_cast<double>(base) * scale);
  }
};

}  // namespace pgraph::harness
