#include "harness/args.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "fault/fault.hpp"
#include "partition/partitioning.hpp"

namespace pgraph::harness {

std::string BenchArgs::try_parse(int argc, char** argv, BenchArgs& out,
                                 const BenchCaps& caps) {
  BenchArgs a;
  bool saw_batch_size = false;
  bool saw_query_mix = false;
  bool saw_sessions = false;
  bool saw_arrival_rate = false;
  bool saw_skew = false;
  bool saw_batch_window = false;
  bool saw_deadline = false;
  bool saw_retry_budget = false;
  bool saw_brownout = false;
  bool saw_scrub_interval = false;
  bool saw_certify = false;
  bool saw_mem_flips = false;
  bool saw_partition = false;
  std::string err;
  for (int i = 1; i < argc && err.empty(); ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        err = std::string("missing value for ") + argv[i];
        return "";
      }
      return argv[++i];
    };
    if (is("--n"))
      a.n = std::strtoull(next(), nullptr, 10);
    else if (is("--m"))
      a.m = std::strtoull(next(), nullptr, 10);
    else if (is("--nodes"))
      a.nodes = std::atoi(next());
    else if (is("--threads"))
      a.threads = std::atoi(next());
    else if (is("--tprime"))
      a.tprime = std::atoi(next());
    else if (is("--seed"))
      a.seed = std::strtoull(next(), nullptr, 10);
    else if (is("--scale"))
      a.scale = std::atof(next());
    else if (is("--csv"))
      a.csv = true;
    else if (is("--json"))
      a.json_path = next();
    else if (is("--trace"))
      a.trace_path = next();
    else if (is("--faults"))
      a.faults = next();
    else if (is("--fault-seed"))
      a.fault_seed = std::strtoull(next(), nullptr, 10);
    else if (is("--digest"))
      a.digest = true;
    else if (is("--stream"))
      a.stream = true;
    else if (is("--batch-size")) {
      a.batch_size = std::strtoull(next(), nullptr, 10);
      saw_batch_size = true;
    } else if (is("--query-mix")) {
      a.query_mix = std::atof(next());
      saw_query_mix = true;
    } else if (is("--sessions")) {
      a.sessions = std::atoi(next());
      saw_sessions = true;
    } else if (is("--arrival-rate")) {
      a.arrival_rate = std::atof(next());
      saw_arrival_rate = true;
    } else if (is("--skew")) {
      a.skew = std::atof(next());
      saw_skew = true;
    } else if (is("--batch-window-ns")) {
      a.batch_window_ns = std::atof(next());
      saw_batch_window = true;
    } else if (is("--deadline-ns")) {
      a.deadline_ns = std::atof(next());
      saw_deadline = true;
    } else if (is("--retry-budget")) {
      a.retry_budget = std::atof(next());
      saw_retry_budget = true;
    } else if (is("--brownout")) {
      a.brownout = std::atoi(next());
      saw_brownout = true;
    } else if (is("--scrub-interval")) {
      a.scrub_interval = std::atoi(next());
      saw_scrub_interval = true;
    } else if (is("--certify")) {
      a.certify = std::atoi(next());
      saw_certify = true;
    } else if (is("--mem-flips")) {
      a.mem_flips = std::atoi(next());
      saw_mem_flips = true;
    } else if (is("--partition")) {
      a.partition = next();
      saw_partition = true;
    } else if (is("--help") || is("-h")) {
      std::printf(
          "flags: --n N --m M --nodes P --threads T --tprime T' "
          "--seed S --scale F --csv --json PATH --trace PATH "
          "--faults SPEC --fault-seed S --digest%s%s%s%s\n",
          caps.stream ? " --stream --batch-size OPS --query-mix F" : "",
          caps.serve ? " --sessions K --arrival-rate RPS --skew S"
                       " --batch-window-ns NS --deadline-ns NS"
                       " --retry-budget TOK --brownout 0|1"
                     : "",
          caps.robust ? " --scrub-interval K --certify 0|1 --mem-flips N"
                      : "",
          caps.partition
              ? " --partition block|cyclic|block_cyclic:K|degree"
              : "");
      std::exit(0);
    } else {
      err = std::string("unknown flag ") + argv[i] + " (try --help)";
    }
  }
  if (!err.empty()) return err;

  // Streaming flags: reject contradictory combinations up front instead of
  // silently ignoring them.
  if (!caps.stream) {
    if (a.stream) return "--stream is not supported by this bench";
    if (saw_batch_size)
      return "--batch-size is not supported by this bench";
    if (saw_query_mix)
      return "--query-mix is not supported by this bench";
  }
  if (saw_batch_size && !a.stream)
    return "--batch-size requires --stream";
  if (saw_query_mix && !a.stream)
    return "--query-mix requires --stream";
  if (saw_batch_size && a.batch_size == 0)
    return "--batch-size must be > 0 (a batch has to carry updates)";
  if (saw_query_mix && (a.query_mix < 0.0 || a.query_mix > 1.0))
    return "--query-mix must be in [0, 1]";

  // Serving flags: same policy — non-serving benches reject them loudly,
  // serving benches validate ranges up front.
  if (!caps.serve) {
    if (saw_sessions) return "--sessions is not supported by this bench";
    if (saw_arrival_rate)
      return "--arrival-rate is not supported by this bench";
    if (saw_skew) return "--skew is not supported by this bench";
    if (saw_batch_window)
      return "--batch-window-ns is not supported by this bench";
    if (saw_deadline) return "--deadline-ns is not supported by this bench";
    if (saw_retry_budget)
      return "--retry-budget is not supported by this bench";
    if (saw_brownout) return "--brownout is not supported by this bench";
  }
  // Range checks are phrased as positive accept conditions so NaN (which
  // compares false against everything) falls through to the rejection.
  if (saw_sessions && a.sessions <= 0)
    return "--sessions must be > 0 (someone has to issue queries)";
  if (saw_arrival_rate && !(std::isfinite(a.arrival_rate) && a.arrival_rate > 0.0))
    return "--arrival-rate must be finite and > 0 (requests per modeled second)";
  if (saw_skew && !(std::isfinite(a.skew) && a.skew >= 0.0))
    return "--skew must be finite and >= 0 (Zipf exponent; 0 = uniform)";
  if (saw_batch_window &&
      !(std::isfinite(a.batch_window_ns) && a.batch_window_ns >= 0.0))
    return "--batch-window-ns must be finite and >= 0 (0 = flush per request)";
  if (saw_deadline && !(std::isfinite(a.deadline_ns) && a.deadline_ns > 0.0))
    return "--deadline-ns must be finite and > 0 (mean request deadline)";
  if (saw_retry_budget &&
      !(std::isfinite(a.retry_budget) && a.retry_budget >= 0.0))
    return "--retry-budget must be finite and >= 0 (0 = never retry)";
  if (saw_brownout && a.brownout != 0 && a.brownout != 1)
    return "--brownout must be 0 or 1";

  // Robustness flags: same policy again — reject on non-robust benches,
  // validate ranges eagerly.
  if (!caps.robust) {
    if (saw_scrub_interval)
      return "--scrub-interval is not supported by this bench";
    if (saw_certify) return "--certify is not supported by this bench";
    if (saw_mem_flips) return "--mem-flips is not supported by this bench";
  }
  if (saw_scrub_interval && a.scrub_interval < 0)
    return "--scrub-interval must be >= 0 (0 = off)";
  if (saw_certify && a.certify != 0 && a.certify != 1)
    return "--certify must be 0 or 1";
  if (saw_mem_flips && a.mem_flips < 0)
    return "--mem-flips must be >= 0 (0 = no injection)";

  // Partition flag: reject on benches whose arrays are hard-wired to the
  // block layout, and validate the scheme spelling eagerly (unknown
  // schemes, zero/fractional/NaN chunks all fail here, not mid-run).
  if (saw_partition && !caps.partition)
    return "--partition is not supported by this bench";
  if (saw_partition) {
    partition::PartitionSpec spec;
    const std::string perr = partition::PartitionSpec::parse(a.partition, spec);
    if (!perr.empty()) return "invalid --partition: " + perr;
  }

  // Fail fast on a bad fault plan: parse the spec now, and when the node
  // count is known at the command line, reject plans that the topology
  // cannot honour (outages and permanent loss need a second node) before
  // the bench builds its graph.
  if (!a.faults.empty()) {
    try {
      const fault::FaultConfig cfg =
          fault::FaultConfig::parse(a.faults, a.fault_seed);
      if (a.nodes > 0) cfg.validate_topology(a.nodes);
    } catch (const std::exception& e) {
      return std::string("invalid --faults spec: ") + e.what();
    }
  }
  out = a;
  return {};
}

BenchArgs BenchArgs::parse(int argc, char** argv, const BenchCaps& caps) {
  BenchArgs a;
  const std::string err = try_parse(argc, argv, a, caps);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    std::exit(2);
  }
  return a;
}

}  // namespace pgraph::harness
