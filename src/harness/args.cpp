#include "harness/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "fault/fault.hpp"

namespace pgraph::harness {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--n"))
      a.n = std::strtoull(next(), nullptr, 10);
    else if (is("--m"))
      a.m = std::strtoull(next(), nullptr, 10);
    else if (is("--nodes"))
      a.nodes = std::atoi(next());
    else if (is("--threads"))
      a.threads = std::atoi(next());
    else if (is("--tprime"))
      a.tprime = std::atoi(next());
    else if (is("--seed"))
      a.seed = std::strtoull(next(), nullptr, 10);
    else if (is("--scale"))
      a.scale = std::atof(next());
    else if (is("--csv"))
      a.csv = true;
    else if (is("--json"))
      a.json_path = next();
    else if (is("--trace"))
      a.trace_path = next();
    else if (is("--faults"))
      a.faults = next();
    else if (is("--fault-seed"))
      a.fault_seed = std::strtoull(next(), nullptr, 10);
    else if (is("--help") || is("-h")) {
      std::printf(
          "flags: --n N --m M --nodes P --threads T --tprime T' "
          "--seed S --scale F --csv --json PATH --trace PATH "
          "--faults SPEC --fault-seed S\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  // Fail fast on a bad fault plan: parse the spec now, and when the node
  // count is known at the command line, reject plans that the topology
  // cannot honour (outages and permanent loss need a second node) before
  // the bench builds its graph.
  if (!a.faults.empty()) {
    try {
      const fault::FaultConfig cfg =
          fault::FaultConfig::parse(a.faults, a.fault_seed);
      if (a.nodes > 0) cfg.validate_topology(a.nodes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid --faults spec: %s\n", e.what());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace pgraph::harness
