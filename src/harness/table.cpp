#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace pgraph::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::eng(double ns) {
  char buf[64];
  if (ns >= 1e9)
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  else if (ns >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  else if (ns >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell;
      os << std::string(width[c] - cell.size(), ' ') << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto cell = [&os](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (const char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(title.size() + 4, '=') << '\n'
     << "= " << title << " =\n"
     << std::string(title.size() + 4, '=') << '\n';
}

}  // namespace pgraph::harness
