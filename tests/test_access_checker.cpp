// The PGAS access-discipline checker (src/analysis/): injected violations
// must be flagged with a diagnostic naming the thread, element index,
// barrier epoch and violation class, while disciplined code — including a
// full fine-grained CC run — must produce zero violations.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/access_checker.hpp"
#include "collectives/crcw.hpp"
#include "core/cc_fine.hpp"
#include "graph/generators.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace an = pgraph::analysis;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(Runtime, EpochCounterAdvancesPerBarrierAndSurvivesReset) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  std::uint64_t seen[2] = {0, 0};
  rt.run([&](pg::ThreadCtx& ctx) {
    const std::uint64_t e0 = ctx.epoch();
    ctx.barrier();
    const std::uint64_t e1 = ctx.epoch();
    EXPECT_EQ(e1, e0 + 1);
    ctx.barrier();
    seen[ctx.id()] = ctx.epoch();
  });
  EXPECT_EQ(seen[0], seen[1]);
  const std::uint64_t before = rt.epoch();
  rt.reset_costs();
  // Cost clocks reset; the epoch counter must NOT (shadow state would
  // alias across runs if epochs repeated).
  EXPECT_EQ(rt.epoch(), before);
  EXPECT_EQ(rt.barriers_executed(), 0u);
}

#ifdef PGRAPH_CHECK_ACCESS

namespace {

/// Find the first stored violation of a class, or nullptr.
const an::Violation* find_class(const std::vector<an::Violation>& vs,
                                an::ViolationClass cls) {
  for (const auto& v : vs)
    if (v.cls == cls) return &v;
  return nullptr;
}

}  // namespace

class AccessCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& ck = an::AccessChecker::instance();
    ck.set_enabled(true);
    ck.set_abort_on_violation(false);
    ck.clear_violations();
  }
  void TearDown() override {
    auto& ck = an::AccessChecker::instance();
    ck.clear_violations();
    ck.set_abort_on_violation(true);
  }
};

TEST_F(AccessCheckerTest, CrossThreadSameEpochPlainWriteRaceIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  // Injected violation: every thread plain-writes element 3 in the same
  // barrier epoch with no CRCW annotation.
  rt.run([&](pg::ThreadCtx& ctx) {
    ctx.barrier();  // put the race in epoch 1, not the initial epoch 0
    a.put(ctx, 3, static_cast<std::uint64_t>(ctx.id()));
    ctx.barrier();
  });
  auto& ck = an::AccessChecker::instance();
  ASSERT_GT(ck.violation_count(), 0u);
  const auto vs = ck.violations();
  const an::Violation* v = find_class(vs, an::ViolationClass::PhaseRace);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->index, 3u);
  EXPECT_GE(v->thread, 0);
  EXPECT_LT(v->thread, 4);
  EXPECT_GE(v->other_thread, 0);
  EXPECT_NE(v->thread, v->other_thread);
  EXPECT_GT(v->epoch, 0u);
  // The diagnostic names thread, element index, epoch and class.
  EXPECT_NE(v->detail.find("phase-race"), std::string::npos);
  EXPECT_NE(v->detail.find("[3]"), std::string::npos);
  EXPECT_NE(v->detail.find("thread"), std::string::npos);
  EXPECT_NE(v->detail.find("epoch"), std::string::npos);
}

TEST_F(AccessCheckerTest, WriteAfterReadSameEpochIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) a.get(ctx, 1);
    // No barrier between the read and the write: thread 1's plain write
    // races thread 0's read.
    if (ctx.id() == 1) a.put(ctx, 1, 9);
    ctx.barrier();
  });
  // One of the two orders is a detected conflict; with no synchronization
  // both orders occur across repetitions, so just require the class.
  const auto vs = an::AccessChecker::instance().violations();
  // NOTE: the interleaving decides whether the read or the write is
  // recorded second, but either order is a same-epoch conflict.
  EXPECT_NE(find_class(vs, an::ViolationClass::PhaseRace), nullptr);
}

TEST_F(AccessCheckerTest, EpochSeparatedWritesAreClean) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) a.put(ctx, 3, 1);
    ctx.barrier();
    if (ctx.id() == 1) a.put(ctx, 3, 2);
    ctx.barrier();
    a.get(ctx, 3);
    ctx.barrier();
  });
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

TEST_F(AccessCheckerTest, ConcurrentPutMinIsDeclaredBenign) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Priority CRCW: concurrent min-writes and reads of the same element
    // are the paper's benign-race pattern and must NOT be flagged.
    a.put_min(ctx, 2, static_cast<std::uint64_t>(100 + ctx.id()));
    a.get(ctx, 2);
    ctx.barrier();
  });
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

TEST_F(AccessCheckerTest, PlainWriteRacingCombineIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) {
      a.put(ctx, 2, 7);  // plain write...
    } else {
      a.put_min(ctx, 2, 5);  // ...racing combining writes: conflict
    }
    ctx.barrier();
  });
  const auto vs = an::AccessChecker::instance().violations();
  EXPECT_NE(find_class(vs, an::ViolationClass::PhaseRace), nullptr);
}

TEST_F(AccessCheckerTest, CrcwRegionLegalizesStoreRelaxedRaces) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    pgraph::coll::CrcwRegion<std::uint64_t> crcw(a, pgraph::coll::CrcwMode::Min);
    // Monotone stores to a shared element under a declared min window;
    // cover the moved bytes so the cost ledger stays balanced.
    a.store_relaxed(0, static_cast<std::uint64_t>(10 + ctx.id()));
    ctx.mem_seq(sizeof(std::uint64_t), m::Cat::Work);
    ctx.barrier();
  });
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

TEST_F(AccessCheckerTest, RemoteLocalSpanDereferenceIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(2, 1), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  // Injected violation: thread 0 (node 0) takes a direct span of thread
  // 1's block (node 1) — the localcpy footgun that is UB in real UPC.
  rt.run([&](pg::ThreadCtx& ctx) {
    ctx.barrier();  // land the violation in epoch 1, not the initial epoch 0
    if (ctx.id() == 0) {
      auto span = a.local_span(1);
      (void)span;
    }
    ctx.barrier();
  });
  auto& ck = an::AccessChecker::instance();
  ASSERT_GT(ck.violation_count(), 0u);
  const auto vs = ck.violations();
  const an::Violation* v = find_class(vs, an::ViolationClass::Affinity);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 0);
  EXPECT_EQ(v->index, a.block_begin(1));
  EXPECT_GT(v->epoch, 0u);
  EXPECT_NE(v->detail.find("affinity-violation"), std::string::npos);
  EXPECT_NE(v->detail.find("node 1"), std::string::npos);
  EXPECT_NE(v->detail.find("epoch"), std::string::npos);
}

TEST_F(AccessCheckerTest, SameNodePeerSpanIsAllowed) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Single node: every peer's block is in this node's shared memory.
    auto span = a.local_span((ctx.id() + 1) % 4);
    (void)span;
    ctx.barrier();
  });
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

TEST_F(AccessCheckerTest, UnchargedDataMotionIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 16);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) {
      // Moves 8 elements through the instrumented relaxed path without
      // charging anything to the cost clock: the simulated time diverges
      // from the data motion.
      for (std::size_t i = 0; i < 8; ++i) a.store_relaxed(i, i);
    }
    ctx.barrier();
  });
  auto& ck = an::AccessChecker::instance();
  const auto vs = ck.violations();
  const an::Violation* v = find_class(vs, an::ViolationClass::CostMismatch);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 0);
  EXPECT_EQ(v->index, 8 * sizeof(std::uint64_t));  // uncovered bytes
  EXPECT_NE(v->detail.find("cost-mismatch"), std::string::npos);
}

TEST_F(AccessCheckerTest, VerificationOutsideSpmdIsExempt) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  // raw / raw_all / relaxed access outside Runtime::run is the sanctioned
  // single-threaded verification mode.
  for (std::size_t i = 0; i < 8; ++i) a.store_relaxed(i, i);
  a.raw(5) = 17;
  EXPECT_EQ(a.raw_all()[5], 17u);
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

TEST_F(AccessCheckerTest, FineGrainedCcRunsCleanUnderChecker) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  const auto el = pgraph::graph::random_graph(300, 900, 42);
  const auto r = pgraph::core::cc_fine_grained(rt, el);
  EXPECT_GT(r.num_components, 0u);
  EXPECT_EQ(an::AccessChecker::instance().violation_count(), 0u);
}

#else  // !PGRAPH_CHECK_ACCESS

TEST(AccessChecker, SkippedWithoutCheckAccessBuild) {
  GTEST_SKIP() << "configure with -DPGRAPH_CHECK_ACCESS=ON (preset 'check') "
                  "to exercise the access-discipline checker";
}

#endif  // PGRAPH_CHECK_ACCESS
