// Deterministic fault injection and the recovery machinery it exercises:
// retry/backoff in the exchange phase, checksum-validate-retransmit in the
// collectives, and checkpoint/restart in cc_coalesced / mst_pgas.  The
// FaultChaos tests are the acceptance gate of docs/ROBUSTNESS.md: under a
// seeded fault plan the algorithms must produce bit-identical results to a
// fault-free run, at a (bounded) higher modeled cost.
//
// PGRAPH_CHAOS_SEED selects the fault seed (default 1); the chaos stage of
// scripts/run_checks.sh sweeps seeds 1..3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "core/mst_pgas.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "machine/cost_params.hpp"
#include "pgas/global_array.hpp"
#include "pgas/replica.hpp"
#include "pgas/runtime.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace coll = pgraph::coll;
namespace flt = pgraph::fault;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt() {
  return pg::Runtime(pg::Topology::cluster(4, 2),
                     m::CostParams::hps_cluster());
}

/// One exchange superstep: every thread sends one message to the next node.
void cross_node_round(pg::ThreadCtx& ctx, std::size_t bytes) {
  const int tpn = ctx.topo().threads_per_node;
  const int dst_node = (ctx.node() + 1) % ctx.nnodes();
  ctx.post_exchange_msg(dst_node * tpn, bytes);
  ctx.exchange_barrier();
}

}  // namespace

// --- config / primitives -------------------------------------------------

TEST(FaultConfig, ParseLandsValues) {
  const auto c = flt::FaultConfig::parse(
      "drop=0.25,dup=0.125,delay=0.5,delay_ns=777,corrupt=0.1,"
      "straggle=0.2,straggle_ns=999,outage_every=40,outage_k=3,"
      "retries=4,timeout_ns=1000,backoff_ns=500,cap_ns=8000",
      9);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_DOUBLE_EQ(c.drop_p, 0.25);
  EXPECT_DOUBLE_EQ(c.dup_p, 0.125);
  EXPECT_DOUBLE_EQ(c.delay_p, 0.5);
  EXPECT_DOUBLE_EQ(c.delay_ns, 777.0);
  EXPECT_DOUBLE_EQ(c.corrupt_p, 0.1);
  EXPECT_DOUBLE_EQ(c.straggle_p, 0.2);
  EXPECT_DOUBLE_EQ(c.straggle_ns, 999.0);
  EXPECT_EQ(c.outage_every, 40u);
  EXPECT_EQ(c.outage_k, 3);
  EXPECT_EQ(c.max_retries, 4);
  EXPECT_DOUBLE_EQ(c.ack_timeout_ns, 1000.0);
  EXPECT_DOUBLE_EQ(c.retry_backoff_ns, 500.0);
  EXPECT_DOUBLE_EQ(c.backoff_cap_ns, 8000.0);
  EXPECT_TRUE(c.any_faults());
}

TEST(FaultConfig, RejectsUnknownAndMalformed) {
  EXPECT_THROW(flt::FaultConfig::parse("nope=1", 1), std::invalid_argument);
  EXPECT_THROW(flt::FaultConfig::parse("drop=zzz", 1),
               std::invalid_argument);
  EXPECT_THROW(flt::FaultConfig::parse("drop=1.5", 1),
               std::invalid_argument);
}

TEST(FaultConfig, EmptySpecIsAllZero) {
  const auto c = flt::FaultConfig::parse("", 3);
  EXPECT_FALSE(c.any_faults());
  EXPECT_FALSE(c.network_faults());
  EXPECT_FALSE(c.corruption_enabled());
}

TEST(FaultConfig, BackoffIsExponentialAndCapped) {
  auto c = flt::FaultConfig::parse("drop=0.1", 1);
  c.retry_backoff_ns = 100.0;
  c.backoff_cap_ns = 350.0;
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(0), 100.0);
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(1), 200.0);
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(2), 350.0);  // capped
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(10), 350.0);
}

TEST(FaultInjector, DrawsAreDeterministic) {
  const auto cfg = flt::FaultConfig::parse("drop=0.3,dup=0.2,delay=0.2", 5);
  const std::vector<std::int32_t> nodes = {0, 1};
  const auto run_once = [&] {
    flt::FaultInjector inj(cfg);
    m::ExchangePlan plan(2);
    for (int k = 0; k < 32; ++k) plan[0].push_back({1, 100.0});
    inj.apply_exchange(plan, nodes, 2, /*epoch=*/7, /*attempt=*/0);
    return plan;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a[0].size(), b[0].size());  // identical duplicates
  for (std::size_t k = 0; k < a[0].size(); ++k) {
    EXPECT_EQ(a[0][k].dropped, b[0][k].dropped) << k;
    EXPECT_DOUBLE_EQ(a[0][k].extra_delay_ns, b[0][k].extra_delay_ns) << k;
  }
}

TEST(FaultInjector, ChecksumDetectsFlipAndRepairRestores) {
  std::vector<std::uint64_t> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = i * 0x9e37ull;
  const std::vector<std::uint64_t> orig = buf;
  const std::uint64_t sum = flt::checksum_words(buf.data(), buf.size() * 8);

  flt::FaultInjector inj(flt::FaultConfig::parse("corrupt=1.0", 11));
  ASSERT_EQ(inj.corrupt(buf.data(), buf.size() * 8, /*epoch=*/3,
                        /*thread=*/0, /*tag=*/0),
            1);
  EXPECT_NE(flt::checksum_words(buf.data(), buf.size() * 8), sum);
  EXPECT_NE(buf, orig);
  EXPECT_EQ(inj.repair(buf.data(), buf.size() * 8), 1);
  EXPECT_EQ(buf, orig);
  EXPECT_EQ(flt::checksum_words(buf.data(), buf.size() * 8), sum);
  EXPECT_EQ(inj.counters().corruptions, 1u);
  EXPECT_EQ(inj.counters().repairs, 1u);
}

TEST(FaultInjector, ChecksumCoversTrailingPartialWord) {
  unsigned char buf[13];
  std::memset(buf, 0x5a, sizeof buf);
  const std::uint64_t sum = flt::checksum_words(buf, sizeof buf);
  buf[12] ^= 1;  // inside the zero-padded tail word
  EXPECT_NE(flt::checksum_words(buf, sizeof buf), sum);
}

TEST(FaultInjector, OutageScheduleArithmetic) {
  flt::FaultInjector inj(flt::FaultConfig::parse("outage_every=10", 2));
  ASSERT_EQ(inj.config().outage_k, 2);
  // Window j=0 is warm-up: no outages before epoch outage_every.
  for (std::uint64_t e = 0; e < 10; ++e) {
    EXPECT_FALSE(inj.outage_active(e)) << e;
    EXPECT_EQ(inj.down_node(4, e), -1) << e;
  }
  // Window j=1 covers epochs [10, 12): one deterministic down node.
  EXPECT_TRUE(inj.outage_active(10));
  EXPECT_TRUE(inj.outage_active(11));
  EXPECT_FALSE(inj.outage_active(12));
  const int down = inj.down_node(4, 10);
  ASSERT_GE(down, 0);
  EXPECT_LT(down, 4);
  EXPECT_EQ(inj.down_node(4, 11), down);
  EXPECT_FALSE(inj.outage_ends_at(10));
  EXPECT_TRUE(inj.outage_ends_at(11));
  EXPECT_FALSE(inj.outage_ends_at(12));
}

// --- runtime integration -------------------------------------------------

TEST(FaultRuntime, RetryChargesModeledTime) {
  const std::size_t kBytes = 4096;
  const int kRounds = 20;
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run([&](pg::ThreadCtx& ctx) {
      for (int r = 0; r < kRounds; ++r) cross_node_round(ctx, kBytes);
    });
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=0.4", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run([&](pg::ThreadCtx& ctx) {
    for (int r = 0; r < kRounds; ++r) cross_node_round(ctx, kBytes);
  });
  // 160 message draws at p=0.4: losses are certain for any seed that
  // draws at least one drop, and each loss costs timeout + backoff.
  EXPECT_GT(inj.counters().drops, 0u);
  EXPECT_GT(inj.counters().retransmits, 0u);
  EXPECT_GT(inj.counters().retry_wait_ns, 0u);
  EXPECT_GT(rt.modeled_time_ns(), clean_ns);
}

TEST(FaultRuntime, ExhaustionThrowsFaultErrorCollectively) {
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=1.0,retries=3", 1));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  bool threw = false;
  try {
    rt.run([&](pg::ThreadCtx& ctx) { cross_node_round(ctx, 1024); });
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::RetryExhausted);
  }
  EXPECT_TRUE(threw);
  // The runtime must remain usable: detach faults and run clean.
  rt.set_fault_injector(nullptr);
  rt.run([&](pg::ThreadCtx& ctx) { cross_node_round(ctx, 1024); });
  EXPECT_GT(rt.modeled_time_ns(), 0.0);
}

TEST(FaultRuntime, StragglerPerturbsClocks) {
  const auto work = [](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 10; ++r) {
      ctx.compute(1000, m::Cat::Work);
      ctx.barrier();
    }
  };
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run(work);
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("straggle=1.0,straggle_ns=50000", 1));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run(work);
  EXPECT_GT(inj.counters().straggles, 0u);
  // Every barrier straggles every thread by >= straggle_ns/2.
  EXPECT_GT(rt.modeled_time_ns(), clean_ns + 10 * 25000.0);
}

TEST(FaultRuntime, ZeroFaultInjectorIsFree) {
  const auto work = [](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 6; ++r) {
      ctx.compute(500, m::Cat::Work);
      cross_node_round(ctx, 2048);
    }
  };
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run(work);
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run(work);
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), clean_ns);
}

// --- chaos: end-to-end algorithms under faults ---------------------------

TEST(FaultChaos, CcBitIdenticalUnderNetworkFaults) {
  const auto el = g::random_graph(256, 1024, 7);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "drop=0.05,dup=0.03,delay=0.1,straggle=0.05", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  EXPECT_EQ(chaotic.num_components, clean.num_components);
  EXPECT_GT(inj.counters().retransmits, 0u);
  // Bounded recovery: every drop is retransmitted at most max_retries
  // times, and in practice far fewer.
  EXPECT_LE(inj.counters().retransmits,
            inj.counters().drops *
                static_cast<std::uint64_t>(inj.config().max_retries));
  EXPECT_GE(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
}

TEST(FaultChaos, CcCorruptionDetectedRepairedBitIdentical) {
  const auto el = g::random_graph(256, 1024, 8);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("corrupt=0.5", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  const auto c = inj.counters();
  EXPECT_GT(c.corruptions, 0u);
  EXPECT_GT(c.detected, 0u);
  EXPECT_EQ(c.repairs, c.corruptions);  // every flip repaired before use
  EXPECT_GT(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
}

TEST(FaultChaos, CcOutageRollsBackAndMatches) {
  const auto el = g::random_graph(256, 1024, 9);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("outage_every=40,outage_k=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  const auto c = inj.counters();
  EXPECT_GT(c.checkpoints, 0u);
  EXPECT_GT(c.outage_events, 0u);
  EXPECT_GT(c.rollbacks, 0u);
  EXPECT_GE(chaotic.iterations, clean.iterations);
}

TEST(FaultChaos, MstWeightAndEdgesIdenticalUnderFaults) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 10), 11);
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "drop=0.05,delay=0.1,corrupt=0.25,straggle=0.05", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, {});
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  EXPECT_GT(inj.counters().retransmits + inj.counters().repairs, 0u);
}

TEST(FaultChaos, MstOutageRollsBackAndMatches) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 12), 13);
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("outage_every=40,outage_k=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, {});
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  EXPECT_GT(inj.counters().checkpoints, 0u);
  EXPECT_GT(inj.counters().rollbacks, 0u);
}

// --- permanent node loss: config, shrink, and degraded-mode recovery -----

TEST(FaultConfig, ParseLossKeys) {
  const auto c = flt::FaultConfig::parse("loss_at=24,loss_node=2", 3);
  EXPECT_EQ(c.loss_at, 24u);
  EXPECT_EQ(c.loss_node, 2);
  EXPECT_TRUE(c.loss_enabled());
  EXPECT_TRUE(c.network_faults());
  EXPECT_TRUE(c.any_faults());
  // A pinned victim without a loss epoch is a meaningless plan.
  EXPECT_THROW(flt::FaultConfig::parse("loss_node=2", 3),
               std::invalid_argument);
  // loss_at=0 keeps the whole subsystem disabled.
  EXPECT_FALSE(flt::FaultConfig::parse("loss_at=0", 3).loss_enabled());
}

TEST(FaultConfig, ValidateTopologyRejectsImpossiblePlans) {
  const auto loss = flt::FaultConfig::parse("loss_at=8", 1);
  EXPECT_THROW(loss.validate_topology(1), std::invalid_argument);
  EXPECT_NO_THROW(loss.validate_topology(2));
  const auto outage = flt::FaultConfig::parse("outage_every=10", 1);
  EXPECT_THROW(outage.validate_topology(1), std::invalid_argument);
  EXPECT_NO_THROW(outage.validate_topology(2));
  const auto pinned = flt::FaultConfig::parse("loss_at=8,loss_node=7", 1);
  EXPECT_THROW(pinned.validate_topology(4), std::invalid_argument);
  EXPECT_NO_THROW(pinned.validate_topology(8));
  // Plans without node-grained faults run anywhere, including 1 node.
  EXPECT_NO_THROW(flt::FaultConfig::parse("corrupt=0.5", 1)
                      .validate_topology(1));
}

TEST(FaultRuntime, AttachRejectsPlanTheTopologyCannotHonour) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  flt::FaultInjector loss(flt::FaultConfig::parse("loss_at=8", 1));
  EXPECT_THROW(rt.set_fault_injector(&loss), std::invalid_argument);
  flt::FaultInjector outage(flt::FaultConfig::parse("outage_every=10", 1));
  EXPECT_THROW(rt.set_fault_injector(&outage), std::invalid_argument);
  // The rejected attach must leave the runtime clean and usable.
  rt.run([](pg::ThreadCtx& ctx) { ctx.barrier(); });
  EXPECT_GT(rt.modeled_time_ns(), 0.0);
}

TEST(FaultRuntime, AttachResetsCountersPerRuntime) {
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=0.4", chaos_seed()));
  pg::Runtime rt1 = make_rt();
  rt1.set_fault_injector(&inj);
  rt1.run([&](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 20; ++r) cross_node_round(ctx, 4096);
  });
  EXPECT_GT(inj.counters().drops, 0u);
  // Attaching the same injector to a fresh runtime starts counters from
  // zero, so per-row bench deltas cannot double-count the previous run.
  pg::Runtime rt2 = make_rt();
  rt2.set_fault_injector(&inj);
  EXPECT_EQ(inj.counters().drops, 0u);
  EXPECT_EQ(inj.counters().retransmits, 0u);
  EXPECT_EQ(inj.counters().retry_wait_ns, 0u);
}

TEST(FaultRuntime, ReplicaMirrorRoundTrip) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> arr(rt, 64);
  std::vector<int> bad(4, 0);
  rt.run([&](pg::ThreadCtx& ctx) {
    const int me = ctx.id();
    auto blk = arr.local_span(me);
    for (std::size_t i = 0; i < blk.size(); ++i)
      blk[i] = 1000 + i + static_cast<std::size_t>(me) * 100;
    arr.replica_snapshot_thread(me);
    for (auto& v : blk) v = 0;  // "lose" the partition
    arr.replica_restore_thread(me);
    for (std::size_t i = 0; i < blk.size(); ++i)
      if (blk[i] != 1000 + i + static_cast<std::size_t>(me) * 100)
        bad[static_cast<std::size_t>(me)] = 1;
    ctx.barrier();
  });
  EXPECT_EQ(bad, std::vector<int>(4, 0));
}

TEST(FaultRuntime, LossShrinksOntoBuddyAndStaysUsable) {
  flt::FaultInjector inj(
      flt::FaultConfig::parse("loss_at=4,loss_node=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> arr(rt, 256);
  bool threw = false;
  try {
    rt.run([&](pg::ThreadCtx& ctx) {
      const int me = ctx.id();
      auto blk = arr.local_span(me);
      for (std::size_t i = 0; i < blk.size(); ++i) blk[i] = i;
      ctx.barrier();
      pg::replicate_to_buddy(ctx);
      for (int r = 0; r < 10; ++r) cross_node_round(ctx, 1024);
    });
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::PermanentLoss);
  }
  ASSERT_TRUE(threw);
  // Node 2 is gone; its predecessor (node 1) adopted threads 4 and 5.
  EXPECT_EQ(rt.topo().live_node_count(), 3);
  EXPECT_FALSE(rt.topo().node_alive(2));
  EXPECT_EQ(rt.topo().node_of(4), 1);
  EXPECT_EQ(rt.topo().node_of(5), 1);
  const auto c = inj.counters();
  EXPECT_EQ(c.loss_events, 1u);
  EXPECT_GT(c.loss_drops, 0u);
  EXPECT_GE(c.replications, 1u);
  EXPECT_GT(c.replica_bytes, 0u);
  // Promotion restored the two dead-hosted 32-element blocks (256 B each).
  EXPECT_EQ(c.promoted_bytes, 512u);
  // The shrunk runtime keeps working (messages reroute to the buddy).
  rt.run([&](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 4; ++r) cross_node_round(ctx, 1024);
  });
  EXPECT_GT(rt.modeled_time_ns(), 0.0);
  EXPECT_EQ(inj.counters().loss_events, 1u);  // no second shrink
}

TEST(FaultChaos, CcLossBitIdenticalAfterShrink) {
  const auto el = g::random_graph(256, 1024, 15);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("loss_at=24", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  EXPECT_EQ(chaotic.num_components, clean.num_components);
  const auto c = inj.counters();
  EXPECT_EQ(c.loss_events, 1u);
  EXPECT_GT(c.loss_drops, 0u);
  EXPECT_GE(c.replications, 1u);
  EXPECT_GT(c.replica_bytes, 0u);
  EXPECT_GT(c.promoted_bytes, 0u);
  EXPECT_GE(c.rollbacks, 1u);
  EXPECT_EQ(rt.topo().live_node_count(), 3);
  // Degraded mode is not free: timeouts, the replication traffic and the
  // re-run supersteps all land on the modeled clock.
  EXPECT_GT(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
}

TEST(FaultChaos, MstLossBitIdenticalAfterShrink) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 16), 17);
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("loss_at=24", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, {});
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  const auto c = inj.counters();
  EXPECT_EQ(c.loss_events, 1u);
  EXPECT_GE(c.rollbacks, 1u);
  EXPECT_GE(c.replications, 1u);
  EXPECT_EQ(rt.topo().live_node_count(), 3);
}

TEST(FaultChaos, ZeroLossPlanLeavesCcModeledTimeUnchanged) {
  const auto el = g::random_graph(200, 800, 18);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("loss_at=0", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto attached = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(attached.labels, clean.labels);
  EXPECT_DOUBLE_EQ(attached.costs.modeled_ns, clean.costs.modeled_ns);
  EXPECT_EQ(inj.counters().loss_drops, 0u);
  EXPECT_EQ(inj.counters().replications, 0u);
  EXPECT_EQ(inj.counters().checkpoints, 0u);
}

// --- collective exhaustion leaves the runtime reusable -------------------
//
// One thread on one node with corrupt=1.0 and retries=0: the first
// checksum mismatch exhausts immediately (the per-thread throw cannot
// deadlock a 1-thread barrier), and the runtime must afterwards produce a
// clean run bit-identical to one that was never faulted.

namespace {

pg::Runtime make_rt1() {
  return pg::Runtime(pg::Topology::cluster(1, 1),
                     m::CostParams::hps_cluster());
}

}  // namespace

TEST(FaultRecovery, GetdExhaustionLeavesRuntimeReusable) {
  const std::size_t n = 64;
  std::vector<std::uint64_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = (i * 7) % n;
  const coll::CollectiveOptions copt{};
  const auto fill_and_getd = [&](pg::Runtime& rt,
                                 pg::GlobalArray<std::uint64_t>& D,
                                 coll::CollectiveContext& ccx,
                                 std::vector<std::uint64_t>& out) {
    rt.run([&](pg::ThreadCtx& ctx) {
      auto blk = D.local_span(0);
      for (std::size_t i = 0; i < n; ++i) blk[i] = i * 3 + 1;
      ctx.barrier();
      coll::CollWorkspace<std::uint64_t> ws;
      coll::getd(ctx, D, idx, std::span<std::uint64_t>(out), copt, ccx, ws);
    });
  };

  std::vector<std::uint64_t> ref_out(n);
  double ref_ns = 0.0;
  {
    pg::Runtime rt = make_rt1();
    pg::GlobalArray<std::uint64_t> D(rt, n);
    coll::CollectiveContext ccx(rt);
    fill_and_getd(rt, D, ccx, ref_out);
    ref_ns = rt.modeled_time_ns();
  }

  pg::Runtime rt = make_rt1();
  flt::FaultInjector inj(flt::FaultConfig::parse("corrupt=1.0,retries=0", 1));
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> D(rt, n);
  coll::CollectiveContext ccx(rt);
  std::vector<std::uint64_t> out(n);
  bool threw = false;
  try {
    fill_and_getd(rt, D, ccx, out);
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::Corruption);
  }
  ASSERT_TRUE(threw);
  rt.set_fault_injector(nullptr);
  rt.reset_costs();
  fill_and_getd(rt, D, ccx, out);
  EXPECT_EQ(out, ref_out);
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), ref_ns);
}

TEST(FaultRecovery, SetdExhaustionLeavesRuntimeReusable) {
  const std::size_t n = 64;
  std::vector<std::uint64_t> gi(n);
  std::vector<std::uint64_t> gv(n);
  for (std::size_t i = 0; i < n; ++i) {
    gi[i] = (i * 5) % n;
    gv[i] = i + 7;
  }
  const coll::CollectiveOptions copt{};
  const auto fill_and_setd = [&](pg::Runtime& rt,
                                 pg::GlobalArray<std::uint64_t>& D,
                                 coll::CollectiveContext& ccx) {
    rt.run([&](pg::ThreadCtx& ctx) {
      auto blk = D.local_span(0);
      for (std::size_t i = 0; i < n; ++i) blk[i] = i;
      ctx.barrier();
      coll::CollWorkspace<std::uint64_t> ws;
      coll::setd(ctx, D, gi, std::span<const std::uint64_t>(gv), copt, ccx,
                 ws);
    });
  };

  std::vector<std::uint64_t> ref_labels;
  double ref_ns = 0.0;
  {
    pg::Runtime rt = make_rt1();
    pg::GlobalArray<std::uint64_t> D(rt, n);
    coll::CollectiveContext ccx(rt);
    fill_and_setd(rt, D, ccx);
    ref_labels.assign(D.raw_all().begin(), D.raw_all().end());
    ref_ns = rt.modeled_time_ns();
  }

  pg::Runtime rt = make_rt1();
  flt::FaultInjector inj(flt::FaultConfig::parse("corrupt=1.0,retries=0", 1));
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> D(rt, n);
  coll::CollectiveContext ccx(rt);
  bool threw = false;
  try {
    fill_and_setd(rt, D, ccx);
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::Corruption);
  }
  ASSERT_TRUE(threw);
  rt.set_fault_injector(nullptr);
  rt.reset_costs();
  fill_and_setd(rt, D, ccx);
  EXPECT_TRUE(std::equal(ref_labels.begin(), ref_labels.end(),
                         D.raw_all().begin()));
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), ref_ns);
}

TEST(FaultRecovery, SetdMinExhaustionLeavesRuntimeReusable) {
  const std::size_t n = 64;
  std::vector<std::uint64_t> gi(n);
  std::vector<std::uint64_t> gv(n);
  for (std::size_t i = 0; i < n; ++i) {
    gi[i] = (i * 3) % n;
    gv[i] = (i * 11) % 50;
  }
  const coll::CollectiveOptions copt{};
  const auto fill_and_setd_min = [&](pg::Runtime& rt,
                                     pg::GlobalArray<std::uint64_t>& D,
                                     coll::CollectiveContext& ccx) {
    rt.run([&](pg::ThreadCtx& ctx) {
      auto blk = D.local_span(0);
      for (std::size_t i = 0; i < n; ++i) blk[i] = 1000;
      ctx.barrier();
      coll::CollWorkspace<std::uint64_t> ws;
      coll::setd_min(ctx, D, gi, std::span<const std::uint64_t>(gv), copt,
                     ccx, ws);
    });
  };

  std::vector<std::uint64_t> ref_labels;
  double ref_ns = 0.0;
  {
    pg::Runtime rt = make_rt1();
    pg::GlobalArray<std::uint64_t> D(rt, n);
    coll::CollectiveContext ccx(rt);
    fill_and_setd_min(rt, D, ccx);
    ref_labels.assign(D.raw_all().begin(), D.raw_all().end());
    ref_ns = rt.modeled_time_ns();
  }

  pg::Runtime rt = make_rt1();
  flt::FaultInjector inj(flt::FaultConfig::parse("corrupt=1.0,retries=0", 1));
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> D(rt, n);
  coll::CollectiveContext ccx(rt);
  bool threw = false;
  try {
    fill_and_setd_min(rt, D, ccx);
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::Corruption);
  }
  ASSERT_TRUE(threw);
  rt.set_fault_injector(nullptr);
  rt.reset_costs();
  fill_and_setd_min(rt, D, ccx);
  EXPECT_TRUE(std::equal(ref_labels.begin(), ref_labels.end(),
                         D.raw_all().begin()));
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), ref_ns);
}

TEST(FaultChaos, ZeroFaultPlanLeavesCcModeledTimeUnchanged) {
  const auto el = g::random_graph(200, 800, 14);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=0", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto attached = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(attached.labels, clean.labels);
  EXPECT_DOUBLE_EQ(attached.costs.modeled_ns, clean.costs.modeled_ns);
  EXPECT_EQ(inj.counters().drops, 0u);
  EXPECT_EQ(inj.counters().checkpoints, 0u);
}

// --- serving-phase arming (`arm=0|1`) ------------------------------------

TEST(FaultConfig, ArmKeyParsesAndValidates) {
  EXPECT_TRUE(flt::FaultConfig::parse("drop=0.1,arm=1", 1).start_armed);
  EXPECT_FALSE(flt::FaultConfig::parse("drop=0.1,arm=0", 1).start_armed);
  EXPECT_TRUE(flt::FaultConfig::parse("drop=0.1", 1).start_armed);
  EXPECT_THROW(flt::FaultConfig::parse("arm=2", 1), std::invalid_argument);
}

TEST(FaultChaos, DisarmedPlanIsANoOpUntilArmed) {
  // Disarmed, a hostile plan behaves like an empty one — bit-identical
  // labels and modeled time, zero counters.  Re-arming the same injector
  // mid-process makes the (purely hash-keyed) draws fire.
  const auto el = g::random_graph(200, 800, 23);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("drop=0.3,retries=24,arm=0", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto disarmed = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(disarmed.labels, clean.labels);
  EXPECT_DOUBLE_EQ(disarmed.costs.modeled_ns, clean.costs.modeled_ns);
  EXPECT_EQ(inj.counters().drops, 0u);

  inj.set_armed(true);
  const auto armed = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(armed.labels, clean.labels);  // retransmits keep it correct
  EXPECT_GT(inj.counters().drops, 0u);
  EXPECT_GT(armed.costs.modeled_ns, clean.costs.modeled_ns);

  inj.set_armed(false);
  const std::uint64_t drops = inj.counters().drops;
  const auto rearmed_off = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(rearmed_off.labels, clean.labels);
  EXPECT_EQ(inj.counters().drops, drops);  // disarmed again: no new draws
}
