// Deterministic fault injection and the recovery machinery it exercises:
// retry/backoff in the exchange phase, checksum-validate-retransmit in the
// collectives, and checkpoint/restart in cc_coalesced / mst_pgas.  The
// FaultChaos tests are the acceptance gate of docs/ROBUSTNESS.md: under a
// seeded fault plan the algorithms must produce bit-identical results to a
// fault-free run, at a (bounded) higher modeled cost.
//
// PGRAPH_CHAOS_SEED selects the fault seed (default 1); the chaos stage of
// scripts/run_checks.sh sweeps seeds 1..3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "core/mst_pgas.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "machine/cost_params.hpp"
#include "pgas/runtime.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace flt = pgraph::fault;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt() {
  return pg::Runtime(pg::Topology::cluster(4, 2),
                     m::CostParams::hps_cluster());
}

/// One exchange superstep: every thread sends one message to the next node.
void cross_node_round(pg::ThreadCtx& ctx, std::size_t bytes) {
  const int tpn = ctx.topo().threads_per_node;
  const int dst_node = (ctx.node() + 1) % ctx.nnodes();
  ctx.post_exchange_msg(dst_node * tpn, bytes);
  ctx.exchange_barrier();
}

}  // namespace

// --- config / primitives -------------------------------------------------

TEST(FaultConfig, ParseLandsValues) {
  const auto c = flt::FaultConfig::parse(
      "drop=0.25,dup=0.125,delay=0.5,delay_ns=777,corrupt=0.1,"
      "straggle=0.2,straggle_ns=999,outage_every=40,outage_k=3,"
      "retries=4,timeout_ns=1000,backoff_ns=500,cap_ns=8000",
      9);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_DOUBLE_EQ(c.drop_p, 0.25);
  EXPECT_DOUBLE_EQ(c.dup_p, 0.125);
  EXPECT_DOUBLE_EQ(c.delay_p, 0.5);
  EXPECT_DOUBLE_EQ(c.delay_ns, 777.0);
  EXPECT_DOUBLE_EQ(c.corrupt_p, 0.1);
  EXPECT_DOUBLE_EQ(c.straggle_p, 0.2);
  EXPECT_DOUBLE_EQ(c.straggle_ns, 999.0);
  EXPECT_EQ(c.outage_every, 40u);
  EXPECT_EQ(c.outage_k, 3);
  EXPECT_EQ(c.max_retries, 4);
  EXPECT_DOUBLE_EQ(c.ack_timeout_ns, 1000.0);
  EXPECT_DOUBLE_EQ(c.retry_backoff_ns, 500.0);
  EXPECT_DOUBLE_EQ(c.backoff_cap_ns, 8000.0);
  EXPECT_TRUE(c.any_faults());
}

TEST(FaultConfig, RejectsUnknownAndMalformed) {
  EXPECT_THROW(flt::FaultConfig::parse("nope=1", 1), std::invalid_argument);
  EXPECT_THROW(flt::FaultConfig::parse("drop=zzz", 1),
               std::invalid_argument);
  EXPECT_THROW(flt::FaultConfig::parse("drop=1.5", 1),
               std::invalid_argument);
}

TEST(FaultConfig, EmptySpecIsAllZero) {
  const auto c = flt::FaultConfig::parse("", 3);
  EXPECT_FALSE(c.any_faults());
  EXPECT_FALSE(c.network_faults());
  EXPECT_FALSE(c.corruption_enabled());
}

TEST(FaultConfig, BackoffIsExponentialAndCapped) {
  auto c = flt::FaultConfig::parse("drop=0.1", 1);
  c.retry_backoff_ns = 100.0;
  c.backoff_cap_ns = 350.0;
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(0), 100.0);
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(1), 200.0);
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(2), 350.0);  // capped
  EXPECT_DOUBLE_EQ(c.backoff_ns_for(10), 350.0);
}

TEST(FaultInjector, DrawsAreDeterministic) {
  const auto cfg = flt::FaultConfig::parse("drop=0.3,dup=0.2,delay=0.2", 5);
  const std::vector<std::int32_t> nodes = {0, 1};
  const auto run_once = [&] {
    flt::FaultInjector inj(cfg);
    m::ExchangePlan plan(2);
    for (int k = 0; k < 32; ++k) plan[0].push_back({1, 100.0});
    inj.apply_exchange(plan, nodes, 2, /*epoch=*/7, /*attempt=*/0);
    return plan;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a[0].size(), b[0].size());  // identical duplicates
  for (std::size_t k = 0; k < a[0].size(); ++k) {
    EXPECT_EQ(a[0][k].dropped, b[0][k].dropped) << k;
    EXPECT_DOUBLE_EQ(a[0][k].extra_delay_ns, b[0][k].extra_delay_ns) << k;
  }
}

TEST(FaultInjector, ChecksumDetectsFlipAndRepairRestores) {
  std::vector<std::uint64_t> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = i * 0x9e37ull;
  const std::vector<std::uint64_t> orig = buf;
  const std::uint64_t sum = flt::checksum_words(buf.data(), buf.size() * 8);

  flt::FaultInjector inj(flt::FaultConfig::parse("corrupt=1.0", 11));
  ASSERT_EQ(inj.corrupt(buf.data(), buf.size() * 8, /*epoch=*/3,
                        /*thread=*/0, /*tag=*/0),
            1);
  EXPECT_NE(flt::checksum_words(buf.data(), buf.size() * 8), sum);
  EXPECT_NE(buf, orig);
  EXPECT_EQ(inj.repair(buf.data(), buf.size() * 8), 1);
  EXPECT_EQ(buf, orig);
  EXPECT_EQ(flt::checksum_words(buf.data(), buf.size() * 8), sum);
  EXPECT_EQ(inj.counters().corruptions, 1u);
  EXPECT_EQ(inj.counters().repairs, 1u);
}

TEST(FaultInjector, ChecksumCoversTrailingPartialWord) {
  unsigned char buf[13];
  std::memset(buf, 0x5a, sizeof buf);
  const std::uint64_t sum = flt::checksum_words(buf, sizeof buf);
  buf[12] ^= 1;  // inside the zero-padded tail word
  EXPECT_NE(flt::checksum_words(buf, sizeof buf), sum);
}

TEST(FaultInjector, OutageScheduleArithmetic) {
  flt::FaultInjector inj(flt::FaultConfig::parse("outage_every=10", 2));
  ASSERT_EQ(inj.config().outage_k, 2);
  // Window j=0 is warm-up: no outages before epoch outage_every.
  for (std::uint64_t e = 0; e < 10; ++e) {
    EXPECT_FALSE(inj.outage_active(e)) << e;
    EXPECT_EQ(inj.down_node(4, e), -1) << e;
  }
  // Window j=1 covers epochs [10, 12): one deterministic down node.
  EXPECT_TRUE(inj.outage_active(10));
  EXPECT_TRUE(inj.outage_active(11));
  EXPECT_FALSE(inj.outage_active(12));
  const int down = inj.down_node(4, 10);
  ASSERT_GE(down, 0);
  EXPECT_LT(down, 4);
  EXPECT_EQ(inj.down_node(4, 11), down);
  EXPECT_FALSE(inj.outage_ends_at(10));
  EXPECT_TRUE(inj.outage_ends_at(11));
  EXPECT_FALSE(inj.outage_ends_at(12));
}

// --- runtime integration -------------------------------------------------

TEST(FaultRuntime, RetryChargesModeledTime) {
  const std::size_t kBytes = 4096;
  const int kRounds = 20;
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run([&](pg::ThreadCtx& ctx) {
      for (int r = 0; r < kRounds; ++r) cross_node_round(ctx, kBytes);
    });
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=0.4", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run([&](pg::ThreadCtx& ctx) {
    for (int r = 0; r < kRounds; ++r) cross_node_round(ctx, kBytes);
  });
  // 160 message draws at p=0.4: losses are certain for any seed that
  // draws at least one drop, and each loss costs timeout + backoff.
  EXPECT_GT(inj.counters().drops, 0u);
  EXPECT_GT(inj.counters().retransmits, 0u);
  EXPECT_GT(inj.counters().retry_wait_ns, 0u);
  EXPECT_GT(rt.modeled_time_ns(), clean_ns);
}

TEST(FaultRuntime, ExhaustionThrowsFaultErrorCollectively) {
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=1.0,retries=3", 1));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  bool threw = false;
  try {
    rt.run([&](pg::ThreadCtx& ctx) { cross_node_round(ctx, 1024); });
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::RetryExhausted);
  }
  EXPECT_TRUE(threw);
  // The runtime must remain usable: detach faults and run clean.
  rt.set_fault_injector(nullptr);
  rt.run([&](pg::ThreadCtx& ctx) { cross_node_round(ctx, 1024); });
  EXPECT_GT(rt.modeled_time_ns(), 0.0);
}

TEST(FaultRuntime, StragglerPerturbsClocks) {
  const auto work = [](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 10; ++r) {
      ctx.compute(1000, m::Cat::Work);
      ctx.barrier();
    }
  };
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run(work);
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("straggle=1.0,straggle_ns=50000", 1));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run(work);
  EXPECT_GT(inj.counters().straggles, 0u);
  // Every barrier straggles every thread by >= straggle_ns/2.
  EXPECT_GT(rt.modeled_time_ns(), clean_ns + 10 * 25000.0);
}

TEST(FaultRuntime, ZeroFaultInjectorIsFree) {
  const auto work = [](pg::ThreadCtx& ctx) {
    for (int r = 0; r < 6; ++r) {
      ctx.compute(500, m::Cat::Work);
      cross_node_round(ctx, 2048);
    }
  };
  double clean_ns = 0.0;
  {
    pg::Runtime rt = make_rt();
    rt.run(work);
    clean_ns = rt.modeled_time_ns();
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  rt.run(work);
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), clean_ns);
}

// --- chaos: end-to-end algorithms under faults ---------------------------

TEST(FaultChaos, CcBitIdenticalUnderNetworkFaults) {
  const auto el = g::random_graph(256, 1024, 7);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "drop=0.05,dup=0.03,delay=0.1,straggle=0.05", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  EXPECT_EQ(chaotic.num_components, clean.num_components);
  EXPECT_GT(inj.counters().retransmits, 0u);
  // Bounded recovery: every drop is retransmitted at most max_retries
  // times, and in practice far fewer.
  EXPECT_LE(inj.counters().retransmits,
            inj.counters().drops *
                static_cast<std::uint64_t>(inj.config().max_retries));
  EXPECT_GE(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
}

TEST(FaultChaos, CcCorruptionDetectedRepairedBitIdentical) {
  const auto el = g::random_graph(256, 1024, 8);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("corrupt=0.5", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  const auto c = inj.counters();
  EXPECT_GT(c.corruptions, 0u);
  EXPECT_GT(c.detected, 0u);
  EXPECT_EQ(c.repairs, c.corruptions);  // every flip repaired before use
  EXPECT_GT(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
}

TEST(FaultChaos, CcOutageRollsBackAndMatches) {
  const auto el = g::random_graph(256, 1024, 9);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("outage_every=40,outage_k=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(chaotic.labels, clean.labels);
  const auto c = inj.counters();
  EXPECT_GT(c.checkpoints, 0u);
  EXPECT_GT(c.outage_events, 0u);
  EXPECT_GT(c.rollbacks, 0u);
  EXPECT_GE(chaotic.iterations, clean.iterations);
}

TEST(FaultChaos, MstWeightAndEdgesIdenticalUnderFaults) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 10), 11);
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "drop=0.05,delay=0.1,corrupt=0.25,straggle=0.05", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, {});
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  EXPECT_GT(inj.counters().retransmits + inj.counters().repairs, 0u);
}

TEST(FaultChaos, MstOutageRollsBackAndMatches) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 12), 13);
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, {});
  }
  flt::FaultInjector inj(
      flt::FaultConfig::parse("outage_every=40,outage_k=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, {});
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  EXPECT_GT(inj.counters().checkpoints, 0u);
  EXPECT_GT(inj.counters().rollbacks, 0u);
}

TEST(FaultChaos, ZeroFaultPlanLeavesCcModeledTimeUnchanged) {
  const auto el = g::random_graph(200, 800, 14);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=0", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto attached = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(attached.labels, clean.labels);
  EXPECT_DOUBLE_EQ(attached.costs.modeled_ns, clean.costs.modeled_ns);
  EXPECT_EQ(inj.counters().drops, 0u);
  EXPECT_EQ(inj.counters().checkpoints, 0u);
}
