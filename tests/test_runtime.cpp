// SPMD runtime: spawn/join, cost-aligned barriers, registry, exchange
// pricing, value collectives.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "pgas/coll.hpp"
#include "pgas/runtime.hpp"

namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {
pg::Runtime make_rt(int nodes, int threads) {
  return pg::Runtime(pg::Topology::cluster(nodes, threads),
                     m::CostParams::hps_cluster());
}
}  // namespace

TEST(Topology, Mapping) {
  const pg::Topology t = pg::Topology::cluster(4, 3);
  EXPECT_EQ(t.total_threads(), 12);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(2), 0);
  EXPECT_EQ(t.node_of(3), 1);
  EXPECT_EQ(t.node_of(11), 3);
  EXPECT_TRUE(t.same_node(3, 5));
  EXPECT_FALSE(t.same_node(2, 3));
  const auto map = t.thread_node_map();
  EXPECT_EQ(map.size(), 12u);
  EXPECT_EQ(map[7], 2);
}

TEST(Runtime, RunsAllThreadsWithDistinctIds) {
  auto rt = make_rt(2, 3);
  std::vector<std::atomic<int>> seen(6);
  rt.run([&](pg::ThreadCtx& ctx) {
    seen[static_cast<std::size_t>(ctx.id())].fetch_add(1);
    EXPECT_EQ(ctx.node(), ctx.id() / 3);
    EXPECT_EQ(ctx.nthreads(), 6);
    EXPECT_EQ(ctx.nnodes(), 2);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Runtime, BarrierAlignsClocksToCriticalThread) {
  auto rt = make_rt(1, 4);
  std::vector<double> after(4);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 2) ctx.charge(m::Cat::Work, 1e6);  // 1 ms on one thread
    ctx.barrier();
    after[static_cast<std::size_t>(ctx.id())] = ctx.now_ns();
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(after[static_cast<std::size_t>(i)], 1e6);
    EXPECT_DOUBLE_EQ(after[static_cast<std::size_t>(i)], after[0]);
  }
  EXPECT_GE(rt.modeled_time_ns(), 1e6);
}

TEST(Runtime, FineTrafficDrainRaisesSuperstepFloor) {
  // Enough messages that the hot receiver's NIC (with burst congestion)
  // binds the superstep, not the senders' own clocks.
  constexpr int kPuts = 2000;
  auto rt = make_rt(4, 2);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Everyone hammers node 3 with fine-grained puts.
    if (ctx.node() != 3)
      for (int i = 0; i < kPuts; ++i) ctx.remote_put_cost(7, 8);
    ctx.barrier();
  });
  const double hot_ns = rt.modeled_time_ns();
  auto rt2 = make_rt(4, 2);
  rt2.run([&](pg::ThreadCtx& ctx) {
    // Balanced: each thread sends to its "mirror" node.
    const int target = ((ctx.node() + 2) % 4) * 2;
    for (int i = 0; i < kPuts; ++i) ctx.remote_put_cost(target, 8);
    ctx.barrier();
  });
  EXPECT_GT(hot_ns, 1.3 * rt2.modeled_time_ns());
}

TEST(Runtime, ExchangeBarrierPricesPostedMessages) {
  auto rt = make_rt(2, 1);
  rt.run([&](pg::ThreadCtx& ctx) {
    ctx.post_exchange_msg(1 - ctx.id(), 1 << 20);  // 1 MiB each way
    ctx.exchange_barrier();
  });
  const auto& p = rt.params();
  const double min_expected = (1 << 20) * p.net_inv_bw_ns_per_byte;
  EXPECT_GT(rt.modeled_time_ns(), min_expected);
  EXPECT_EQ(rt.net().total_messages(), 2u);
}

TEST(Runtime, SameNodeExchangeMessagesAreMemoryCopies) {
  auto rt = make_rt(1, 2);
  rt.run([&](pg::ThreadCtx& ctx) {
    ctx.post_exchange_msg(1 - ctx.id(), 1 << 20);
    ctx.exchange_barrier();
  });
  EXPECT_EQ(rt.net().total_messages(), 0u);  // no network crossing
}

TEST(Runtime, ResetCostsZeroesEverything) {
  auto rt = make_rt(2, 1);
  rt.run([&](pg::ThreadCtx& ctx) {
    ctx.charge(m::Cat::Work, 1e6);
    ctx.remote_put_cost(1 - ctx.id(), 8);
    ctx.barrier();
  });
  EXPECT_GT(rt.modeled_time_ns(), 0.0);
  rt.reset_costs();
  EXPECT_DOUBLE_EQ(rt.modeled_time_ns(), 0.0);
  EXPECT_EQ(rt.net().total_messages(), 0u);
  EXPECT_DOUBLE_EQ(rt.critical_stats().total(), 0.0);
}

TEST(Runtime, StatsPersistAcrossRunsUntilReset) {
  auto rt = make_rt(1, 2);
  rt.run([&](pg::ThreadCtx& ctx) { ctx.charge(m::Cat::Sort, 100.0); });
  rt.run([&](pg::ThreadCtx& ctx) { ctx.charge(m::Cat::Sort, 50.0); });
  EXPECT_DOUBLE_EQ(rt.critical_stats().get(m::Cat::Sort), 150.0);
}

TEST(Runtime, RegistryPublishAndPeer) {
  auto rt = make_rt(2, 2);
  rt.run([&](pg::ThreadCtx& ctx) {
    int mine = 100 + ctx.id();
    ctx.publish(0, &mine);
    ctx.barrier();
    const int peer = (ctx.id() + 1) % ctx.nthreads();
    EXPECT_EQ(*ctx.peer_as<int>(peer, 0), 100 + peer);
    ctx.barrier();
  });
}

TEST(Coll, AllreduceSumAndMax) {
  auto rt = make_rt(2, 3);
  rt.run([&](pg::ThreadCtx& ctx) {
    const long long sum = pg::allreduce_sum(ctx, ctx.id() + 1);
    EXPECT_EQ(sum, 1 + 2 + 3 + 4 + 5 + 6);
    const long long mx = pg::allreduce_max(ctx, 100 - ctx.id());
    EXPECT_EQ(mx, 100);
  });
}

TEST(Coll, AllreduceOr) {
  auto rt = make_rt(1, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    EXPECT_FALSE(pg::allreduce_or(ctx, false));
    EXPECT_TRUE(pg::allreduce_or(ctx, ctx.id() == 2));
    EXPECT_TRUE(pg::allreduce_or(ctx, true));
  });
}

TEST(Coll, Broadcast) {
  auto rt = make_rt(2, 2);
  rt.run([&](pg::ThreadCtx& ctx) {
    const std::uint64_t v =
        pg::broadcast<std::uint64_t>(ctx, 2, ctx.id() == 2 ? 777 : 0);
    EXPECT_EQ(v, 777u);
  });
}

TEST(Coll, ExscanSum) {
  auto rt = make_rt(1, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    long long total = 0;
    const long long pre = pg::exscan_sum<long long>(ctx, 10, &total);
    EXPECT_EQ(pre, 10 * ctx.id());
    EXPECT_EQ(total, 40);
  });
}

TEST(Coll, AllreduceChargesCommTime) {
  auto rt = make_rt(4, 1);
  rt.run([&](pg::ThreadCtx& ctx) { pg::allreduce_sum(ctx, 1); });
  EXPECT_GT(rt.critical_stats().get(m::Cat::Comm), 0.0);
}
