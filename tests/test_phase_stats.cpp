// PhaseStats accumulation/merging (the Fig. 5/6 breakdown plumbing).
#include <gtest/gtest.h>

#include "machine/phase_stats.hpp"

namespace m = pgraph::machine;

TEST(PhaseStats, AddAndTotal) {
  m::PhaseStats s;
  s.add(m::Cat::Comm, 10);
  s.add(m::Cat::Comm, 5);
  s.add(m::Cat::Sort, 3);
  EXPECT_DOUBLE_EQ(s.get(m::Cat::Comm), 15.0);
  EXPECT_DOUBLE_EQ(s.get(m::Cat::Sort), 3.0);
  EXPECT_DOUBLE_EQ(s.get(m::Cat::Work), 0.0);
  EXPECT_DOUBLE_EQ(s.total(), 18.0);
}

TEST(PhaseStats, MergeMaxIsElementwise) {
  m::PhaseStats a, b;
  a.add(m::Cat::Comm, 10);
  a.add(m::Cat::Copy, 1);
  b.add(m::Cat::Comm, 4);
  b.add(m::Cat::Copy, 7);
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.get(m::Cat::Comm), 10.0);
  EXPECT_DOUBLE_EQ(a.get(m::Cat::Copy), 7.0);
}

TEST(PhaseStats, MergeSumAndReset) {
  m::PhaseStats a, b;
  a.add(m::Cat::Setup, 2);
  b.add(m::Cat::Setup, 3);
  b.add(m::Cat::Irregular, 1);
  a.merge_sum(b);
  EXPECT_DOUBLE_EQ(a.get(m::Cat::Setup), 5.0);
  EXPECT_DOUBLE_EQ(a.get(m::Cat::Irregular), 1.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(PhaseStats, CategoryNamesMatchThePaper) {
  EXPECT_EQ(m::cat_name(m::Cat::Comm), "Comm");
  EXPECT_EQ(m::cat_name(m::Cat::Sort), "Sort");
  EXPECT_EQ(m::cat_name(m::Cat::Copy), "Copy");
  EXPECT_EQ(m::cat_name(m::Cat::Irregular), "Irregular");
  EXPECT_EQ(m::cat_name(m::Cat::Setup), "Setup");
  EXPECT_EQ(m::cat_name(m::Cat::Work), "Work");
}
