// Multi-tenant serving layer: deterministic open-loop workload generation
// (Poisson / bursty / Zipf), the QueryServer's admission control, batch
// coalescing, per-epoch result cache, stale-epoch handling, SLO accounting,
// and bit-identical serving under fault injection (the ServeChaos test runs
// under the chaos stage's PGRAPH_CHAOS_SEED sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "core/cc_seq.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "machine/cost_params.hpp"
#include "pgas/runtime.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "stream/dynamic_graph.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace flt = pgraph::fault;
namespace strm = pgraph::stream;
namespace srv = pgraph::serve;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt(int nodes = 4, int threads = 2) {
  return pg::Runtime(pg::Topology::cluster(nodes, threads),
                     m::CostParams::hps_cluster());
}

srv::Request req(double at, std::int32_t tenant, srv::QueryKind kind,
                 g::VertexId u, g::VertexId v = 0,
                 std::uint64_t epoch = strm::QueryBatch::kLatest) {
  srv::Request r;
  r.arrive_ns = at;
  r.tenant = tenant;
  r.kind = kind;
  r.u = u;
  r.v = v;
  r.epoch = epoch;
  return r;
}

/// Tiny fixed graph: component {1,2,3}, component {10,11}, singletons.
g::EdgeList tiny_graph() {
  g::EdgeList el;
  el.n = 100;
  el.edges = {{1, 2}, {2, 3}, {10, 11}};
  return el;
}

}  // namespace

// ---------------------------------------------------------------- workload

TEST(ServeWorkload, DeterministicSortedAndBounded) {
  srv::WorkloadParams p;
  p.sessions = 3;
  p.rate_rps = 5e6;
  p.horizon_ns = 2e4;
  p.size_mix = 0.4;
  const auto a = srv::generate_workload(500, 42, p);
  const auto b = srv::generate_workload(500, 42, p);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrive_ns, b[i].arrive_ns) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].u, b[i].u) << i;
    EXPECT_EQ(a[i].v, b[i].v) << i;
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind)) << i;
  }
  double prev = -1.0;
  bool all_latest = true;
  for (const auto& r : a) {
    EXPECT_GE(r.arrive_ns, prev);
    prev = r.arrive_ns;
    EXPECT_GE(r.tenant, 0);
    EXPECT_LT(r.tenant, p.sessions);
    EXPECT_LT(r.arrive_ns, p.horizon_ns);
    EXPECT_LT(r.u, 500u);
    all_latest &= r.epoch == strm::QueryBatch::kLatest;
  }
  EXPECT_TRUE(all_latest) << "pin_frac = 0 must never pin";
  // A different seed produces a different sequence.
  const auto c = srv::generate_workload(500, 43, p);
  ASSERT_FALSE(c.empty());
  bool same = a.size() == c.size();
  for (std::size_t i = 0; same && i < a.size(); ++i)
    same = a[i].arrive_ns == c[i].arrive_ns && a[i].u == c[i].u;
  EXPECT_FALSE(same);
}

TEST(ServeWorkload, ZipfSkewConcentratesHotKeys) {
  srv::WorkloadParams p;
  p.sessions = 2;
  p.rate_rps = 5e6;
  p.horizon_ns = 2e5;  // ~1000 requests
  const auto uniform = srv::generate_workload(400, 7, p);
  p.zipf_s = 1.4;
  const auto skewed = srv::generate_workload(400, 7, p);
  const auto top_freq = [](const std::vector<srv::Request>& v) {
    std::map<g::VertexId, std::size_t> cnt;
    for (const auto& r : v) ++cnt[r.u];
    std::size_t best = 0;
    for (const auto& [k, c] : cnt) best = std::max(best, c);
    return static_cast<double>(best) / static_cast<double>(v.size());
  };
  ASSERT_GT(uniform.size(), 200u);
  ASSERT_GT(skewed.size(), 200u);
  // The hottest key under s=1.4 must absorb several times the mass of the
  // hottest key under the uniform draw.
  EXPECT_GT(top_freq(skewed), 3.0 * top_freq(uniform));
}

TEST(ServeWorkload, BurstPhasesRespectOnWindows) {
  srv::WorkloadParams p;
  p.sessions = 2;
  p.rate_rps = 2e6;
  p.horizon_ns = 1e5;
  p.phase_ns = 1e4;
  p.burst_on_frac = 0.5;
  const auto v = srv::generate_workload(100, 3, p);
  ASSERT_FALSE(v.empty());
  const double on_len = p.phase_ns * p.burst_on_frac;
  for (const auto& r : v)
    EXPECT_LT(std::fmod(r.arrive_ns, p.phase_ns), on_len);
  // Average rate is preserved within a factor ~2 (it's a random process).
  const double expect_n = p.rate_rps * p.horizon_ns / 1e9;
  EXPECT_GT(static_cast<double>(v.size()), 0.5 * expect_n);
  EXPECT_LT(static_cast<double>(v.size()), 2.0 * expect_n);
}

TEST(ServeWorkload, ValidatesParams) {
  srv::WorkloadParams p;
  p.sessions = 0;
  EXPECT_THROW(srv::generate_workload(10, 1, p), std::invalid_argument);
  p.sessions = 1;
  p.rate_rps = 0.0;
  EXPECT_THROW(srv::generate_workload(10, 1, p), std::invalid_argument);
  p.rate_rps = 1e6;
  p.burst_on_frac = 0.0;
  EXPECT_THROW(srv::generate_workload(10, 1, p), std::invalid_argument);
  p.burst_on_frac = 1.0;
  p.size_mix = 1.5;
  EXPECT_THROW(srv::generate_workload(10, 1, p), std::invalid_argument);
  p.size_mix = 0.5;
  EXPECT_THROW(srv::generate_workload(0, 1, p), std::invalid_argument);
  EXPECT_THROW(srv::ZipfSampler(10, -1.0), std::invalid_argument);
}

// ------------------------------------------------------------------ server

TEST(ServeServer, AnswersMatchGroundTruth) {
  const auto el = g::random_graph(150, 200, 19);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, el);
  const auto truth = core::cc_dsu(el);
  std::vector<std::uint64_t> size_of(el.n, 0);
  for (const auto lbl : truth.labels) ++size_of[lbl];

  srv::WorkloadParams wp;
  wp.sessions = 3;
  wp.rate_rps = 1e6;
  wp.horizon_ns = 1e5;  // ~100 requests
  wp.zipf_s = 0.9;
  const auto reqs = srv::generate_workload(el.n, 11, wp);
  ASSERT_GT(reqs.size(), 30u);

  srv::ServerOptions so;
  so.window_ns = 5e3;
  so.max_queue = 100000;  // no shedding: correctness test
  so.verify_every = 1;    // cross-check every flush against the runtime
  srv::QueryServer s(dg, wp.sessions, so);
  for (const auto& r : reqs) s.offer(r);
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(st.offered, reqs.size());
  EXPECT_EQ(st.completed, reqs.size());
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.stale, 0u);
  EXPECT_EQ(st.verify_mismatches, 0u);
  EXPECT_GT(st.flushes, 0u);
  EXPECT_LT(st.flushes, st.offered);  // windows actually coalesce
  EXPECT_GT(st.p99_ns, 0.0);
  EXPECT_GE(st.p99_ns, st.p50_ns);
  ASSERT_EQ(s.outcomes().size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& r = reqs[i];
    const auto& o = s.outcomes()[i];
    ASSERT_EQ(o.status, srv::Status::Ok) << i;
    EXPECT_EQ(o.epoch, 0u);
    EXPECT_GE(o.start_ns, o.arrive_ns) << i;
    EXPECT_GE(o.done_ns, o.start_ns) << i;
    if (r.kind == srv::QueryKind::SameComponent)
      EXPECT_EQ(o.answer != 0, truth.labels[r.u] == truth.labels[r.v]) << i;
    else
      EXPECT_EQ(o.answer, size_of[truth.labels[r.u]]) << i;
  }
}

TEST(ServeServer, CoalescingDedupsAndCachesAcrossWindows) {
  pg::Runtime rt = make_rt(2, 2);
  strm::DynamicGraph dg(rt, tiny_graph());
  srv::ServerOptions so;
  so.window_ns = 1e6;
  so.max_batch = 64;
  srv::QueryServer s(dg, 3, so);

  // Three tenants ask the identical question inside one window: one key
  // goes to GetD, two ride along (coalesced).
  s.offer(req(0.0, 0, srv::QueryKind::SameComponent, 1, 3));
  s.offer(req(10.0, 1, srv::QueryKind::SameComponent, 1, 3));
  s.offer(req(20.0, 2, srv::QueryKind::SameComponent, 3, 1));  // normalized
  // A second window (opens after the first closes) repeats the key: served
  // from the epoch cache without touching the runtime.
  s.offer(req(3e6, 0, srv::QueryKind::SameComponent, 1, 3));
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(st.offered, 4u);
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.flushes, 2u);
  EXPECT_EQ(st.epoch_batches, 1u);  // second window was fully cached
  EXPECT_EQ(st.keys_sent, 1u);
  EXPECT_EQ(st.coalesced, 2u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_GT(st.cache_hit_rate(), 0.0);
  for (const auto& o : s.outcomes()) {
    EXPECT_EQ(o.status, srv::Status::Ok);
    EXPECT_EQ(o.answer, 1u);  // 1 and 3 are connected via 2
  }
  // The fully-cached flush consumed no modeled service time.
  EXPECT_EQ(s.outcomes()[3].start_ns, s.outcomes()[3].done_ns);
}

TEST(ServeServer, AdmissionShedsOverload) {
  pg::Runtime rt = make_rt(2, 2);
  strm::DynamicGraph dg(rt, tiny_graph());
  srv::ServerOptions so;
  so.window_ns = 1e9;  // nothing flushes while offers arrive
  so.max_queue = 2;
  srv::QueryServer s(dg, 2, so);

  for (int i = 0; i < 5; ++i)
    s.offer(req(static_cast<double>(i), 0, srv::QueryKind::ComponentSize, 1));
  // The other tenant has its own bound and is unaffected.
  s.offer(req(2.0, 1, srv::QueryKind::ComponentSize, 10));
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(st.offered, 6u);
  EXPECT_EQ(st.shed, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.tenants[0].shed, 3u);
  EXPECT_EQ(st.tenants[1].shed, 0u);
  EXPECT_EQ(s.outcomes()[0].status, srv::Status::Ok);
  EXPECT_EQ(s.outcomes()[1].status, srv::Status::Ok);
  for (std::size_t i = 2; i < 5; ++i)
    EXPECT_EQ(s.outcomes()[i].status, srv::Status::Shed) << i;
  // Shed requests complete instantly (rejected, not queued).
  EXPECT_EQ(s.outcomes()[2].latency_ns(), 0.0);
  // Size answers still correct for the admitted ones.
  EXPECT_EQ(s.outcomes()[0].answer, 3u);   // {1,2,3}
  EXPECT_EQ(s.outcomes()[5].answer, 2u);   // {10,11}
}

TEST(ServeServer, StaleEpochServedCleanlyAndCacheDropped) {
  pg::Runtime rt = make_rt(2, 2);
  strm::DynamicGraph dg(rt, tiny_graph());
  srv::ServerOptions so;
  so.window_ns = 50.0;
  srv::QueryServer s(dg, 2, so);

  // Warm the epoch-0 cache with a pinned request while epoch 0 is live.
  s.offer(req(0.0, 0, srv::QueryKind::SameComponent, 1, 2, 0));
  // Publish twice: the ring (kEpochRing = 2) evicts epoch 0.
  const std::vector<g::EdgeUpdate> u1 = {{20, 21, 1, g::UpdateKind::Insert}};
  const std::vector<g::EdgeUpdate> u2 = {{22, 23, 2, g::UpdateKind::Insert}};
  s.publish(1e6, u1);
  EXPECT_EQ(s.stats().invalidation_events, 0u);  // epoch 0 still in ring
  s.publish(2e6, u2);
  EXPECT_EQ(s.stats().invalidation_events, 1u);
  EXPECT_GT(s.stats().cache_invalidated, 0u);

  // A session still pinned to epoch 0 gets a clean stale-epoch outcome —
  // never a std::out_of_range escaping the server.
  std::size_t idx = 0;
  EXPECT_NO_THROW(
      idx = s.offer(req(3e6, 1, srv::QueryKind::SameComponent, 1, 2, 0)));
  // A kLatest request in the same window is unaffected.
  s.offer(req(3e6 + 1.0, 0, srv::QueryKind::SameComponent, 1, 2));
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(st.stale, 1u);
  EXPECT_EQ(st.tenants[1].stale, 1u);
  EXPECT_EQ(s.outcomes()[idx].status, srv::Status::StaleEpoch);
  EXPECT_EQ(s.outcomes()[idx].epoch, 0u);
  EXPECT_EQ(s.outcomes().back().status, srv::Status::Ok);
  EXPECT_EQ(s.outcomes().back().answer, 1u);
  EXPECT_EQ(s.outcomes().back().epoch, 2u);
  EXPECT_EQ(st.offered, st.completed + st.shed + st.stale + st.degraded);
}

// ------------------------------------------------------------------- chaos

TEST(ServeChaos, CoalescedFlushBitIdenticalUnderDrops) {
  // Satellite: a chaos run with message drops (and the resulting checksum
  // retransmits + retry waits) during coalesced flushes must serve answers
  // bit-identical to the clean run, with the retry latency surfacing in
  // the tail percentiles.
  const auto el = g::random_graph(120, 170, 29);
  const std::vector<g::EdgeUpdate> pub = {
      {0, 60, 1, g::UpdateKind::Insert}, {1, 61, 2, g::UpdateKind::Insert}};

  srv::WorkloadParams wp;
  wp.sessions = 2;
  wp.rate_rps = 4e5;
  wp.horizon_ns = 1e5;  // ~40 requests
  wp.zipf_s = 0.8;
  const auto reqs = srv::generate_workload(el.n, 13, wp);
  ASSERT_GT(reqs.size(), 10u);

  const auto run_once = [&](flt::FaultInjector* inj) {
    pg::Runtime rt = make_rt();
    if (inj != nullptr) rt.set_fault_injector(inj);
    strm::DynamicGraph dg(rt, el);
    srv::ServerOptions so;
    so.window_ns = 8e3;
    so.max_queue = 100000;  // admission must not depend on service speed
    srv::QueryServer s(dg, wp.sessions, so);
    bool published = false;
    for (const auto& r : reqs) {
      if (!published && r.arrive_ns >= 0.5 * wp.horizon_ns) {
        s.publish(0.5 * wp.horizon_ns, pub);
        published = true;
      }
      s.offer(r);
    }
    std::vector<std::tuple<srv::Status, std::uint64_t, std::uint64_t>> out;
    const srv::ServeStats st = s.finish();
    for (const auto& o : s.outcomes())
      out.emplace_back(o.status, o.answer, o.epoch);
    return std::pair{out, st};
  };

  const auto [clean, clean_st] = run_once(nullptr);
  // drop=0.3 with the default retry budget of 6 makes per-message retry
  // exhaustion (p = 0.3^7) statistically certain across this many exchange
  // epochs; a raised budget keeps every drop recoverable so the run always
  // completes and the comparison below is about costs, not survival.
  flt::FaultInjector inj(
      flt::FaultConfig::parse("drop=0.1,retries=24", chaos_seed()));
  const auto [faulted, faulted_st] = run_once(&inj);

  // Bit identity: every request resolves to the same status, answer and
  // epoch, no matter how many retransmits the flushes needed.
  ASSERT_EQ(clean.size(), faulted.size());
  for (std::size_t i = 0; i < clean.size(); ++i) EXPECT_EQ(clean[i], faulted[i]) << i;
  EXPECT_EQ(faulted_st.shed, 0u);
  EXPECT_EQ(clean_st.completed, faulted_st.completed);

  // The faults really happened, and their recovery cost lands in the tail.
  EXPECT_GT(inj.counters().drops, 0u);
  EXPECT_GT(inj.counters().retransmits, 0u);
  EXPECT_GT(inj.counters().retry_wait_ns, 0u);
  EXPECT_GT(faulted_st.p99_ns, clean_st.p99_ns);
  EXPECT_GT(faulted_st.service_ns, clean_st.service_ns);
}

// -------------------------------------------------------------- resilience

TEST(ServeWorkload, RejectsNanAndNegativeParamsEagerly) {
  // Each bad field throws before any arrival is drawn: NaN compares false
  // against everything, so the checks are phrased as positive acceptance.
  const double nan = std::nan("");
  const auto bad = [](auto&& mutate) {
    srv::WorkloadParams p;
    p.sessions = 2;
    p.rate_rps = 1e6;
    p.horizon_ns = 1e6;
    mutate(p);
    EXPECT_THROW(srv::generate_workload(10, 1, p), std::invalid_argument);
  };
  bad([&](srv::WorkloadParams& p) { p.rate_rps = -1.0; });
  bad([&](srv::WorkloadParams& p) { p.rate_rps = nan; });
  bad([&](srv::WorkloadParams& p) { p.zipf_s = -0.1; });
  bad([&](srv::WorkloadParams& p) { p.zipf_s = nan; });
  bad([&](srv::WorkloadParams& p) { p.phase_ns = -1.0; });
  bad([&](srv::WorkloadParams& p) { p.phase_ns = nan; });
  bad([&](srv::WorkloadParams& p) { p.deadline_ns = -1.0; });
  bad([&](srv::WorkloadParams& p) { p.deadline_ns = nan; });
  bad([&](srv::WorkloadParams& p) { p.horizon_ns = nan; });
}

TEST(ServeWorkload, DeadlineSamplingIsStatelessAndBounded) {
  srv::WorkloadParams p;
  p.sessions = 3;
  p.rate_rps = 2e5;
  p.horizon_ns = 5e5;
  srv::WorkloadParams pd = p;
  pd.deadline_ns = 1e6;
  const auto plain = srv::generate_workload(50, 7, p);
  const auto with = srv::generate_workload(50, 7, pd);
  // Deadlines ride a stateless hash stream: enabling them must not perturb
  // arrivals, tenants or keys.
  ASSERT_EQ(plain.size(), with.size());
  ASSERT_GT(plain.size(), 5u);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain[i].arrive_ns, with[i].arrive_ns);
    EXPECT_EQ(plain[i].tenant, with[i].tenant);
    EXPECT_EQ(plain[i].u, with[i].u);
    EXPECT_EQ(plain[i].v, with[i].v);
    EXPECT_DOUBLE_EQ(plain[i].deadline_ns, 0.0);
    EXPECT_GE(with[i].deadline_ns, 0.5 * pd.deadline_ns);
    EXPECT_LT(with[i].deadline_ns, 1.5 * pd.deadline_ns);
  }
  // And the draw per (tenant, index) is reproducible.
  const auto again = srv::generate_workload(50, 7, pd);
  for (std::size_t i = 0; i < with.size(); ++i)
    EXPECT_DOUBLE_EQ(with[i].deadline_ns, again[i].deadline_ns);
}

TEST(ServeResilience, OffOnBitIdenticalWithoutFaults) {
  // The resilience layer is pay-for-what-you-use: with no faults and no
  // overload, enabling it (deadlines carried, budgets armed, brownout on)
  // must not change a single outcome or a nanosecond of modeled time.
  srv::WorkloadParams wp;
  wp.sessions = 2;
  wp.rate_rps = 3e5;
  wp.horizon_ns = 1e5;
  wp.deadline_ns = 1e7;  // generous: never binds at this load
  const auto reqs = srv::generate_workload(60, 11, wp);
  ASSERT_GT(reqs.size(), 8u);

  const auto run_once = [&](bool resilient) {
    pg::Runtime rt = make_rt(2, 2);
    strm::DynamicGraph dg(rt, tiny_graph());
    srv::ServerOptions so;
    so.window_ns = 5e3;
    so.resilience.enabled = resilient;
    so.resilience.brownout = true;
    srv::QueryServer s(dg, wp.sessions, so);
    for (const auto& r : reqs) s.offer(r);
    const srv::ServeStats st = s.finish();
    return std::pair{s.outcomes(), st};
  };
  const auto [off, off_st] = run_once(false);
  const auto [on, on_st] = run_once(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].status, on[i].status) << i;
    EXPECT_EQ(off[i].answer, on[i].answer) << i;
    EXPECT_EQ(off[i].epoch, on[i].epoch) << i;
    EXPECT_DOUBLE_EQ(off[i].start_ns, on[i].start_ns) << i;
    EXPECT_DOUBLE_EQ(off[i].done_ns, on[i].done_ns) << i;
  }
  EXPECT_DOUBLE_EQ(off_st.service_ns, on_st.service_ns);
  EXPECT_EQ(on_st.breaker_trips, 0u);
  EXPECT_EQ(on_st.brownout_enters, 0u);
  EXPECT_EQ(on_st.shed_deadline, 0u);
}

TEST(ServeResilience, DeadlineExpiredShedsBeforeBackend) {
  pg::Runtime rt = make_rt(2, 2);
  strm::DynamicGraph dg(rt, tiny_graph());
  srv::ServerOptions so;
  so.window_ns = 1000.0;
  so.resilience.enabled = true;
  srv::QueryServer s(dg, 1, so);

  // A shares the window; B's tight deadline drags the close forward (the
  // flush budget is the min over members) and still expires in the queue.
  s.offer(req(0.0, 0, srv::QueryKind::SameComponent, 1, 2));
  srv::Request b = req(1.0, 0, srv::QueryKind::SameComponent, 10, 11);
  b.deadline_ns = 5.0;
  const std::size_t bi = s.offer(b);
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(s.outcomes()[bi].status, srv::Status::Shed);
  EXPECT_EQ(s.outcomes()[bi].shed_reason, srv::ShedReason::DeadlineExpired);
  EXPECT_EQ(st.shed_deadline, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(s.outcomes()[0].status, srv::Status::Ok);
  EXPECT_EQ(st.offered, st.completed + st.shed + st.stale + st.degraded);
  EXPECT_EQ(st.shed,
            st.shed_queue_full + st.shed_breaker_open + st.shed_deadline);
}

TEST(ServeResilience, BreakerTripsHalfOpensAndCloses) {
  pg::Runtime rt = make_rt(2, 2);
  flt::FaultInjector inj(flt::FaultConfig::parse("drop=1,retries=0,arm=0",
                                                 chaos_seed()));
  rt.set_fault_injector(&inj);
  strm::DynamicGraph dg(rt, tiny_graph());  // construction runs disarmed
  srv::ServerOptions so;
  so.window_ns = 0.0;  // flush per request: each offer is one verdict
  so.resilience.enabled = true;
  so.resilience.retry_tokens = 0.0;  // no retries: failures hit the breaker
  so.resilience.breaker_trip_after = 2;
  so.resilience.breaker_cooldown_ns = 1e6;
  so.resilience.brownout = false;  // isolate the breaker machinery
  srv::QueryServer s(dg, 1, so);
  inj.set_armed(true);

  s.offer(req(0.0, 0, srv::QueryKind::SameComponent, 1, 2));
  s.offer(req(1e5, 0, srv::QueryKind::SameComponent, 1, 3));  // failure #1
  s.offer(req(2e5, 0, srv::QueryKind::SameComponent, 2, 3));  // #2: trips
  // Open breaker fast-fails admission during the cooldown.
  s.offer(req(3e5, 0, srv::QueryKind::SameComponent, 1, 2));
  // After the cooldown the breaker half-opens; the probe must reach the
  // (now healthy) backend and close it again.
  inj.set_armed(false);
  s.offer(req(2e6, 0, srv::QueryKind::SameComponent, 1, 2));
  const srv::ServeStats st = s.finish();

  EXPECT_EQ(st.flush_failures, 2u);
  EXPECT_EQ(st.retry_denied, 2u);
  EXPECT_EQ(st.breaker_trips, 1u);
  EXPECT_EQ(st.breaker_half_opens, 1u);
  EXPECT_EQ(st.breaker_closes, 1u);
  EXPECT_EQ(st.completed, 1u);  // the probe
  EXPECT_GE(st.shed_breaker_open, 1u);  // admission fast-fail at 3e5
  EXPECT_EQ(st.offered, st.completed + st.shed + st.stale + st.degraded);
  EXPECT_EQ(st.shed,
            st.shed_queue_full + st.shed_breaker_open + st.shed_deadline);
  EXPECT_GT(st.failed_ns, 0.0);

  // The transition log replays trip -> half-open -> close in time order.
  std::size_t open_at = 0, half_at = 0, close_at = 0;
  for (std::size_t i = 0; i < st.events.size(); ++i) {
    if (st.events[i].kind == srv::ServeEventKind::BreakerOpen) open_at = i;
    if (st.events[i].kind == srv::ServeEventKind::BreakerHalfOpen)
      half_at = i;
    if (st.events[i].kind == srv::ServeEventKind::BreakerClose) close_at = i;
  }
  EXPECT_LT(open_at, half_at);
  EXPECT_LT(half_at, close_at);
}

TEST(ServeResilience, BrownoutServesDegradedFromPreviousEpoch) {
  pg::Runtime rt = make_rt(2, 2);
  strm::DynamicGraph dg(rt, tiny_graph());
  srv::ServerOptions so;
  so.window_ns = 1e5;
  so.cache = true;
  so.resilience.enabled = true;
  so.resilience.brownout = true;
  so.resilience.brownout_high = 2;  // queue pressure trips at two waiters
  so.resilience.brownout_low = 0;
  srv::QueryServer s(dg, 2, so);

  // Warm the epoch-0 cache (flush completes during the publish drain).
  s.offer(req(0.0, 0, srv::QueryKind::SameComponent, 1, 2));
  const std::vector<g::EdgeUpdate> u1 = {{20, 21, 1, g::UpdateKind::Insert}};
  s.publish(1e6, u1);  // epoch 1 is now latest; epoch 0 stays in the ring

  // Two waiters cross the high watermark; the third request brownout-hits
  // the previous epoch's cache and is served Degraded on the spot.
  s.offer(req(1.1e6, 0, srv::QueryKind::ComponentSize, 1));
  s.offer(req(1.1e6 + 1, 1, srv::QueryKind::ComponentSize, 10));
  const std::size_t di =
      s.offer(req(1.1e6 + 2, 0, srv::QueryKind::SameComponent, 1, 2));
  const srv::ServeStats st = s.finish();

  EXPECT_GE(st.brownout_enters, 1u);
  EXPECT_GE(st.brownout_exits, 1u);  // pressure drains once flushes run
  EXPECT_EQ(st.degraded, 1u);
  EXPECT_EQ(s.outcomes()[di].status, srv::Status::Degraded);
  EXPECT_EQ(s.outcomes()[di].answer, 1u);  // 1 and 2 share a component
  EXPECT_EQ(s.outcomes()[di].epoch, 0u);   // staleness bound: one epoch
  EXPECT_EQ(st.offered, st.completed + st.shed + st.stale + st.degraded);
}

TEST(ServeResilience, ServingAcrossPermanentLoss) {
  // A node dies mid-service; the server polls the loss, republishes on the
  // survivor topology, and every Ok answer stays bit-identical to the
  // fault-free run (answers are graph-semantic, not topology-dependent).
  const auto el = g::random_graph(120, 170, 31);
  const std::vector<g::EdgeUpdate> pub = {
      {0, 60, 1, g::UpdateKind::Insert}, {1, 61, 2, g::UpdateKind::Insert}};
  srv::WorkloadParams wp;
  wp.sessions = 2;
  wp.rate_rps = 4e5;
  wp.horizon_ns = 1e5;
  const auto reqs = srv::generate_workload(el.n, 17, wp);
  ASSERT_GT(reqs.size(), 10u);

  const auto run_once = [&](const char* spec) {
    pg::Runtime rt = make_rt();
    flt::FaultInjector inj(flt::FaultConfig::parse(
        spec != nullptr ? spec : "drop=0,arm=0", chaos_seed()));
    if (spec != nullptr) rt.set_fault_injector(&inj);
    strm::DynamicGraph dg(rt, el);
    srv::ServerOptions so;
    so.window_ns = 8e3;
    so.max_queue = 100000;
    so.resilience.enabled = true;
    srv::QueryServer s(dg, wp.sessions, so);
    bool published = false, armed = false;
    for (const auto& r : reqs) {
      if (!published && r.arrive_ns >= 0.4 * wp.horizon_ns) {
        s.publish(0.4 * wp.horizon_ns, pub);  // maintenance window: disarmed
        published = true;
      }
      if (!armed && r.arrive_ns >= 0.5 * wp.horizon_ns) {
        inj.set_armed(true);
        armed = true;
      }
      s.offer(r);
    }
    const srv::ServeStats st = s.finish();
    return std::pair{s.outcomes(), st};
  };

  const auto [clean, clean_st] = run_once(nullptr);
  const auto [lossy, lossy_st] = run_once("loss_at=1,loss_node=2,arm=0");

  EXPECT_GE(lossy_st.recoveries, 1u);
  EXPECT_GT(lossy_st.recovery_ns, 0.0);
  EXPECT_EQ(lossy_st.offered, lossy_st.completed + lossy_st.shed +
                                  lossy_st.stale + lossy_st.degraded);
  ASSERT_EQ(clean.size(), lossy.size());
  std::size_t compared = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i].status != srv::Status::Ok ||
        lossy[i].status != srv::Status::Ok)
      continue;
    EXPECT_EQ(clean[i].answer, lossy[i].answer) << i;
    EXPECT_EQ(clean[i].epoch, lossy[i].epoch) << i;
    ++compared;
  }
  EXPECT_GT(compared, reqs.size() / 2);
}

TEST(ServeResilience, ChaosMatrixNoCrashAndConservation) {
  // Seeds x fault plans: whatever the plan does, the resilient server
  // never lets a FaultError escape, and every offered request is accounted
  // for exactly once (completed/shed/stale/degraded, with the shed split
  // summing up).
  const auto el = g::random_graph(120, 170, 37);
  const std::vector<g::EdgeUpdate> pub = {
      {0, 60, 1, g::UpdateKind::Insert}};
  const char* specs[] = {
      "drop=0.15,retries=6,arm=0",
      "outage_every=5,outage_k=2,arm=0",
      "straggle=0.4,straggle_ns=20000,arm=0",
      "loss_at=1,loss_node=1,arm=0",
  };
  srv::WorkloadParams wp;
  wp.sessions = 2;
  wp.rate_rps = 3e5;
  wp.horizon_ns = 1e5;
  wp.deadline_ns = 5e6;
  const std::uint64_t base = chaos_seed();
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    const auto reqs = srv::generate_workload(el.n, 19 + seed, wp);
    for (const char* spec : specs) {
      pg::Runtime rt = make_rt();
      flt::FaultInjector inj(flt::FaultConfig::parse(spec, seed));
      rt.set_fault_injector(&inj);
      strm::DynamicGraph dg(rt, el);
      srv::ServerOptions so;
      so.window_ns = 8e3;
      so.resilience.enabled = true;
      srv::QueryServer s(dg, wp.sessions, so);
      bool published = false, armed = false;
      srv::ServeStats st;
      ASSERT_NO_THROW({
        for (const auto& r : reqs) {
          if (!published && r.arrive_ns >= 0.4 * wp.horizon_ns) {
            s.publish(0.4 * wp.horizon_ns, pub);
            published = true;
          }
          if (!armed && r.arrive_ns >= 0.5 * wp.horizon_ns) {
            inj.set_armed(true);
            armed = true;
          }
          s.offer(r);
        }
        st = s.finish();
      }) << "seed " << seed << " spec " << spec;
      EXPECT_EQ(st.offered,
                st.completed + st.shed + st.stale + st.degraded)
          << "seed " << seed << " spec " << spec;
      EXPECT_EQ(st.shed, st.shed_queue_full + st.shed_breaker_open +
                             st.shed_deadline)
          << "seed " << seed << " spec " << spec;
      EXPECT_EQ(st.offered, reqs.size());
    }
  }
}
