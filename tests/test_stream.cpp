// Dynamic-graph subsystem: batched ingestion, incremental CC maintenance
// (bit-identical to a fresh cc_coalesced after every batch), deletion
// fallback, epoch-versioned query snapshots, and survival of the snapshot
// ring across a permanent node loss (the StreamLoss tests run under the
// chaos stage's seed sweep via PGRAPH_CHAOS_SEED).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "machine/cost_params.hpp"
#include "pgas/runtime.hpp"
#include "stream/cc_incremental.hpp"
#include "stream/dynamic_graph.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace flt = pgraph::fault;
namespace strm = pgraph::stream;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt(int nodes = 4, int threads = 2) {
  return pg::Runtime(pg::Topology::cluster(nodes, threads),
                     m::CostParams::hps_cluster());
}

std::vector<std::uint64_t> labels_of(strm::DynamicGraph& dg) {
  const auto sp = dg.labels().raw_all();
  return {sp.begin(), sp.end()};
}

/// Fresh canonical labeling of `el` in a throwaway runtime.
core::ParCCResult fresh_cc(const g::EdgeList& el) {
  pg::Runtime rt = make_rt();
  return core::cc_coalesced(rt, el, {});
}

/// Drive a whole temporal stream through a DynamicGraph in fixed-size
/// batches, asserting bit-identity against a fresh cc_coalesced run on the
/// materialized edge set after every single batch.
void check_stream_bit_identity(const g::TemporalStream& ts,
                               std::size_t batch, int nodes, int threads) {
  pg::Runtime rt = make_rt(nodes, threads);
  strm::DynamicGraph dg(rt, ts.base);
  ASSERT_EQ(labels_of(dg), fresh_cc(ts.base).labels);

  std::size_t rebuilt = 0;
  for (std::size_t at = 0; at < ts.updates.size(); at += batch) {
    const std::size_t len = std::min(batch, ts.updates.size() - at);
    const auto st = dg.apply_batch(
        std::span<const g::EdgeUpdate>(ts.updates).subspan(at, len));
    if (st.rebuilt) ++rebuilt;
    const auto fresh = fresh_cc(dg.materialize());
    ASSERT_EQ(labels_of(dg), fresh.labels)
        << "batch at op " << at << " (rebuilt=" << st.rebuilt << ")";
    EXPECT_EQ(dg.num_components(), fresh.num_components);
    EXPECT_EQ(st.epoch, dg.latest_epoch());
    EXPECT_GT(st.total_modeled_ns(), 0.0);
  }
  // Deletions must have engaged the rebuild fallback at least once.
  bool any_erase = false;
  for (const auto& u : ts.updates)
    any_erase |= u.kind == g::UpdateKind::Erase;
  if (any_erase) EXPECT_GT(rebuilt, 0u);
}

}  // namespace

TEST(StreamBitIdentity, InsertOnlyAcrossSeeds) {
  for (std::uint64_t seed : {1, 2, 3}) {
    g::TemporalStreamParams p;
    p.base_edges = 400;
    const auto ts = g::temporal_stream(300, 320, seed, p);
    check_stream_bit_identity(ts, 64, 4, 2);
  }
}

TEST(StreamBitIdentity, MixedInsertEraseAcrossSeeds) {
  for (std::uint64_t seed : {1, 2, 3}) {
    g::TemporalStreamParams p;
    p.base_edges = 500;
    p.delete_frac = 0.35;
    const auto ts = g::temporal_stream(250, 300, seed, p);
    check_stream_bit_identity(ts, 50, 4, 2);
  }
}

TEST(StreamBitIdentity, RmatBaseAndOddTopology) {
  g::TemporalStreamParams p;
  p.base = g::TemporalBase::Rmat;
  p.base_edges = 600;
  p.delete_frac = 0.2;
  const auto ts = g::temporal_stream(256, 200, 7, p);
  check_stream_bit_identity(ts, 40, 3, 2);
}

TEST(StreamBitIdentity, SparseBaseManySingletons) {
  // Mostly-isolated vertices: grafts touch almost every inserted edge.
  g::TemporalStreamParams p;
  p.base_edges = 10;
  const auto ts = g::temporal_stream(400, 150, 11, p);
  check_stream_bit_identity(ts, 25, 2, 2);
}

TEST(StreamIncremental, MatchesFreshCcDirectly) {
  // cc_incremental alone: start from the canonical labels of a base graph,
  // fold in fresh edges, compare against cc_coalesced of the union.
  const auto base = g::random_graph(300, 350, 21);
  pg::Runtime rt = make_rt();
  auto run = core::cc_coalesced(rt, base, {});
  pg::GlobalArray<std::uint64_t> d(rt, base.n);
  for (std::size_t i = 0; i < base.n; ++i) d.raw(i) = run.labels[i];

  std::vector<g::Edge> fresh = {{0, 299}, {5, 7}, {100, 200}, {100, 201}};
  const auto inc = strm::cc_incremental(rt, d, fresh, {});
  EXPECT_GT(inc.iterations, 0);

  g::EdgeList merged = base;
  for (const auto& e : fresh) merged.edges.push_back(e);
  const auto want = fresh_cc(merged);
  const auto got = d.raw_all();
  EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), want.labels);
}

TEST(StreamQueries, AnswersMatchGroundTruth) {
  g::TemporalStreamParams p;
  p.base_edges = 300;
  const auto ts = g::temporal_stream(200, 100, 5, p);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, ts.base);
  dg.apply_batch(ts.updates);

  const auto truth = core::cc_dsu(dg.materialize());
  // Component sizes per root label, host-side.
  std::vector<std::uint64_t> size_of(dg.num_vertices(), 0);
  for (const auto lbl : truth.labels) ++size_of[lbl];

  strm::QueryBatch q;
  for (g::VertexId u = 0; u < 50; ++u)
    q.same_component.push_back({u, (u * 37 + 11) % dg.num_vertices()});
  for (g::VertexId u = 0; u < dg.num_vertices(); u += 3)
    q.component_size.push_back(u);

  const auto r = dg.query(q);
  EXPECT_EQ(r.epoch, dg.latest_epoch());
  ASSERT_EQ(r.same.size(), q.same_component.size());
  ASSERT_EQ(r.size.size(), q.component_size.size());
  for (std::size_t i = 0; i < q.same_component.size(); ++i) {
    const auto [u, v] = q.same_component[i];
    EXPECT_EQ(r.same[i] != 0, truth.labels[u] == truth.labels[v]) << i;
  }
  for (std::size_t i = 0; i < q.component_size.size(); ++i)
    EXPECT_EQ(r.size[i], size_of[truth.labels[q.component_size[i]]]) << i;
  EXPECT_GT(r.costs.modeled_ns, 0.0);

  // A second size query hits the cached aggregation: still correct, and
  // strictly cheaper than the pass that built it.
  const auto r2 = dg.query(q);
  EXPECT_EQ(r2.size, r.size);
  EXPECT_LT(r2.costs.modeled_ns, r.costs.modeled_ns);
}

TEST(StreamQueries, SizeAggregationChargedOncePerEpoch) {
  // The lazy component-size aggregation is a one-time per-epoch cost: the
  // first size batch on an epoch pays it (agg_ns > 0), every later batch
  // on the same epoch pays nothing (agg_ns == 0 and strictly lower total),
  // and a new published epoch starts the cycle over.
  g::TemporalStreamParams p;
  p.base_edges = 250;
  const auto ts = g::temporal_stream(180, 60, 31, p);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, ts.base);

  strm::QueryBatch q;
  for (g::VertexId u = 0; u < dg.num_vertices(); u += 4)
    q.component_size.push_back(u);

  const auto r1 = dg.query(q);
  EXPECT_GT(r1.agg_ns, 0.0);
  EXPECT_LT(r1.agg_ns, r1.costs.modeled_ns);

  const auto r2 = dg.query(q);  // same epoch: aggregation is cached
  EXPECT_EQ(r2.size, r1.size);
  EXPECT_DOUBLE_EQ(r2.agg_ns, 0.0);
  EXPECT_LT(r2.costs.modeled_ns, r1.costs.modeled_ns);
  EXPECT_LT(r2.costs.barriers, r1.costs.barriers);
  // Identical equal-shaped batches on the warmed epoch cost the same.
  const auto r3 = dg.query(q);
  EXPECT_DOUBLE_EQ(r3.agg_ns, 0.0);
  EXPECT_DOUBLE_EQ(r3.costs.modeled_ns, r2.costs.modeled_ns);

  // Connectivity-only batches never trigger the aggregation.
  strm::QueryBatch conn;
  conn.same_component.push_back({0, 1});
  EXPECT_DOUBLE_EQ(dg.query(conn).agg_ns, 0.0);

  // A new epoch re-arms the lazy pass exactly once.
  dg.apply_batch(ts.updates);
  const auto r4 = dg.query(q);
  EXPECT_GT(r4.agg_ns, 0.0);
  EXPECT_DOUBLE_EQ(dg.query(q).agg_ns, 0.0);
}

TEST(StreamEpochs, RingServesPreviousEpochAndEvictsOlder) {
  g::TemporalStreamParams p;
  p.base_edges = 200;
  const auto ts = g::temporal_stream(150, 90, 9, p);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, ts.base);

  const auto span = [&](std::size_t at, std::size_t len) {
    return std::span<const g::EdgeUpdate>(ts.updates).subspan(at, len);
  };

  // Ground truth at epoch 1 = base + first 30 updates.
  dg.apply_batch(span(0, 30));
  const auto truth1 = core::cc_dsu(dg.materialize());
  dg.apply_batch(span(30, 30));  // epoch 2; ring = {1, 2}

  strm::QueryBatch q;
  q.epoch = 1;
  for (g::VertexId u = 0; u + 1 < dg.num_vertices(); u += 7)
    q.same_component.push_back({u, u + 1});
  const auto r = dg.query(q);
  EXPECT_EQ(r.epoch, 1u);
  for (std::size_t i = 0; i < q.same_component.size(); ++i) {
    const auto [u, v] = q.same_component[i];
    EXPECT_EQ(r.same[i] != 0, truth1.labels[u] == truth1.labels[v]) << i;
  }

  dg.apply_batch(span(60, 30));  // epoch 3; ring = {2, 3}: epoch 1 evicted
  EXPECT_THROW(dg.query(q), std::out_of_range);
  strm::QueryBatch q0;
  q0.epoch = 0;
  q0.same_component.push_back({0, 1});
  EXPECT_THROW(dg.query(q0), std::out_of_range);
  strm::QueryBatch latest;
  latest.same_component.push_back({0, 1});
  EXPECT_EQ(dg.query(latest).epoch, 3u);
}

TEST(StreamSpeedup, IncrementalBeatsRebuildOnSmallBatches) {
  // Acceptance shape of bench/str01: a batch of <= 1% of the edges must
  // maintain labels >= 5x cheaper (modeled) than recomputing from scratch.
  g::TemporalStreamParams p;
  p.base_edges = 12000;
  const auto ts = g::temporal_stream(3000, 120, 13, p);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, ts.base);
  const double rebuild_ns = dg.initial_build().maintain.modeled_ns;
  ASSERT_GT(rebuild_ns, 0.0);

  const auto st = dg.apply_batch(ts.updates);
  EXPECT_FALSE(st.rebuilt);
  EXPECT_GT(st.maintain.modeled_ns, 0.0);
  EXPECT_GE(rebuild_ns, 5.0 * st.maintain.modeled_ns)
      << "incremental maintain " << st.maintain.modeled_ns
      << " ns vs rebuild " << rebuild_ns << " ns";
}

TEST(StreamRebuildPolicy, LargeBatchAndErasesTriggerRebuild) {
  g::TemporalStreamParams p;
  p.base_edges = 100;
  const auto ts = g::temporal_stream(200, 400, 3, p);
  pg::Runtime rt = make_rt();
  strm::DynamicGraph dg(rt, ts.base);
  // 400 inserts against 100 live edges blows past rebuild_frac.
  const auto st = dg.apply_batch(ts.updates);
  EXPECT_TRUE(st.rebuilt);

  // A single applied erase dirties a component and forces a rebuild.
  pg::Runtime rt2 = make_rt();
  strm::DynamicGraph dg2(rt2, ts.base);
  const g::Edge victim = ts.base.edges.front();
  const std::vector<g::EdgeUpdate> one = {
      {victim.u, victim.v, 1, g::UpdateKind::Erase}};
  const auto st2 = dg2.apply_batch(one);
  EXPECT_EQ(st2.erased, 1u);
  EXPECT_GE(st2.dirty_components, 1u);
  EXPECT_TRUE(st2.rebuilt);

  // An erase of a nonexistent edge is ignored and stays incremental.
  pg::Runtime rt3 = make_rt();
  strm::DynamicGraph dg3(rt3, ts.base);
  const std::vector<g::EdgeUpdate> none = {{0, 199, 1, g::UpdateKind::Erase}};
  const auto st3 = dg3.apply_batch(none);
  EXPECT_EQ(st3.erased, 0u);
  EXPECT_EQ(st3.ignored, 1u);
  EXPECT_FALSE(st3.rebuilt);
}

TEST(StreamLoss, SnapshotRingSurvivesShrinkBitIdentical) {
  // Satellite of the buddy-replication PR: publish two epochs, lose a node
  // permanently mid-maintenance, and demand (a) the shrunk stream keeps
  // producing labels bit-identical to a fresh run, and (b) a query against
  // the epoch published BEFORE the loss is served bit-identically from the
  // promoted mirrors.
  g::TemporalStreamParams p;
  p.base_edges = 400;
  const auto ts = g::temporal_stream(300, 120, 17, p);
  const auto span = [&](std::size_t at, std::size_t len) {
    return std::span<const g::EdgeUpdate>(ts.updates).subspan(at, len);
  };

  // Probe the (deterministic) runtime-epoch trajectory with a loss plan
  // that is armed — so publish-time buddy replication is live — but never
  // fires; then aim the real loss at the middle of the second batch.
  std::uint64_t e1 = 0, e2 = 0;
  {
    flt::FaultInjector probe(flt::FaultConfig::parse(
        "loss_at=1000000000,loss_node=2", chaos_seed()));
    pg::Runtime rt = make_rt();
    rt.set_fault_injector(&probe);
    strm::DynamicGraph dg(rt, ts.base);
    dg.apply_batch(span(0, 60));
    e1 = rt.epoch();
    dg.apply_batch(span(60, 60));
    e2 = rt.epoch();
  }
  ASSERT_GT(e2, e1 + 2);

  flt::FaultInjector inj(flt::FaultConfig::parse(
      "loss_at=" + std::to_string(e1 + (e2 - e1) / 2) + ",loss_node=2",
      chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  strm::DynamicGraph dg(rt, ts.base);
  dg.apply_batch(span(0, 60));  // epoch 1, fault-free
  const auto truth1 = core::cc_dsu(dg.materialize());

  dg.apply_batch(span(60, 60));  // epoch 2, across the shrink
  EXPECT_EQ(inj.counters().loss_events, 1u);
  EXPECT_GE(inj.counters().replications, 1u);
  EXPECT_GT(inj.counters().promoted_bytes, 0u);
  EXPECT_EQ(rt.topo().live_node_count(), 3);
  EXPECT_FALSE(rt.topo().node_alive(2));

  // (a) live labels on the shrunk topology == fresh clean-run labels.
  ASSERT_EQ(labels_of(dg), fresh_cc(dg.materialize()).labels);

  // (b) the pre-loss epoch is still served, bit-identical to its truth.
  strm::QueryBatch q;
  q.epoch = 1;
  for (g::VertexId u = 0; u + 1 < dg.num_vertices(); u += 5)
    q.same_component.push_back({u, u + 1});
  for (g::VertexId u = 0; u < dg.num_vertices(); u += 9)
    q.component_size.push_back(u);
  const auto r = dg.query(q);
  EXPECT_EQ(r.epoch, 1u);
  std::vector<std::uint64_t> size1(dg.num_vertices(), 0);
  for (const auto lbl : truth1.labels) ++size1[lbl];
  for (std::size_t i = 0; i < q.same_component.size(); ++i) {
    const auto [u, v] = q.same_component[i];
    EXPECT_EQ(r.same[i] != 0, truth1.labels[u] == truth1.labels[v]) << i;
  }
  for (std::size_t i = 0; i < q.component_size.size(); ++i)
    EXPECT_EQ(r.size[i], size1[truth1.labels[q.component_size[i]]]) << i;

  // The stream keeps working after the shrink.
  const auto st = dg.apply_batch(span(120, 0));
  EXPECT_EQ(st.epoch, dg.latest_epoch());
  ASSERT_EQ(labels_of(dg), fresh_cc(dg.materialize()).labels);
}

TEST(StreamIngest, CountersAndDeterminism) {
  g::TemporalStreamParams p;
  p.base_edges = 150;
  p.delete_frac = 0.3;
  const auto ts = g::temporal_stream(120, 200, 23, p);

  const auto run_once = [&](int nodes, int threads) {
    pg::Runtime rt = make_rt(nodes, threads);
    strm::DynamicGraph dg(rt, ts.base);
    std::vector<strm::BatchStats> stats;
    for (std::size_t at = 0; at < ts.updates.size(); at += 40)
      stats.push_back(dg.apply_batch(
          std::span<const g::EdgeUpdate>(ts.updates)
              .subspan(at, std::min<std::size_t>(40, ts.updates.size() - at))));
    return std::pair{labels_of(dg), stats};
  };

  const auto [l1, s1] = run_once(4, 2);
  const auto [l2, s2] = run_once(2, 3);  // different topology, same answer
  EXPECT_EQ(l1, l2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    // The functional outcome of a batch is topology-independent.
    EXPECT_EQ(s1[i].inserted, s2[i].inserted) << i;
    EXPECT_EQ(s1[i].erased, s2[i].erased) << i;
    EXPECT_EQ(s1[i].ignored, s2[i].ignored) << i;
    EXPECT_EQ(s1[i].ops, s1[i].inserted + s1[i].erased + s1[i].ignored) << i;
  }
}
