// The order-sensitive exchange-phase model: the mechanism behind the
// paper's `circular` optimization (Section V).
#include <gtest/gtest.h>

#include "machine/exchange_sim.hpp"
#include "pgas/topology.hpp"

namespace m = pgraph::machine;
using pgraph::pgas::Topology;

namespace {

/// Build the all-to-all plan of a GetD-like exchange: every thread sends
/// one message of `svc` service to each other thread, visiting peers in
/// identity order (0,1,2,...) or circular order (me, me+1, ...).
m::ExchangePlan all_to_all(const Topology& topo, double svc, bool circular) {
  const int s = topo.total_threads();
  m::ExchangePlan plan(static_cast<std::size_t>(s));
  for (int me = 0; me < s; ++me) {
    for (int step = 0; step < s; ++step) {
      const int j = circular ? (me + step) % s : step;
      if (topo.node_of(j) == topo.node_of(me)) continue;  // intra-node
      plan[static_cast<std::size_t>(me)].push_back(
          {static_cast<std::int32_t>(topo.node_of(j)), svc});
    }
  }
  return plan;
}

}  // namespace

TEST(ExchangeSim, EmptyPlanIsFree) {
  const Topology topo = Topology::cluster(4, 2);
  m::ExchangePlan plan(static_cast<std::size_t>(topo.total_threads()));
  EXPECT_DOUBLE_EQ(
      m::exchange_duration_ns(plan, topo.thread_node_map(), 4, 1000.0), 0.0);
}

TEST(ExchangeSim, SingleMessage) {
  const Topology topo = Topology::cluster(2, 1);
  m::ExchangePlan plan(2);
  plan[0].push_back({1, 500.0});
  const double t =
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 1000.0);
  // send 500 + wire 1000 + receive 500
  EXPECT_DOUBLE_EQ(t, 2000.0);
}

TEST(ExchangeSim, SenderSerializationPerNode) {
  // Two threads on one node each send one message to another node: the
  // shared send NIC serializes them.
  const Topology topo = Topology::cluster(2, 2);
  m::ExchangePlan plan(4);
  plan[0].push_back({1, 500.0});
  plan[1].push_back({1, 500.0});
  const double t =
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 0.0);
  // Departures at 500 and 1000; receive NIC drains them back to back.
  EXPECT_DOUBLE_EQ(t, 1500.0);
}

TEST(ExchangeSim, CircularBeatsIdentityOrder) {
  const Topology topo = Topology::cluster(8, 2);
  const double svc = 1000.0;
  const double ident = m::exchange_duration_ns(
      all_to_all(topo, svc, false), topo.thread_node_map(), 8, 500.0);
  const double circ = m::exchange_duration_ns(
      all_to_all(topo, svc, true), topo.thread_node_map(), 8, 500.0);
  // Section V: the circular schedule roughly halves communication time.
  EXPECT_GT(ident / circ, 1.5);
  EXPECT_LT(ident / circ, 4.0);
}

TEST(ExchangeSim, HotReceiverDominates) {
  // Everyone sends to node 0 vs a balanced permutation of the same volume.
  const Topology topo = Topology::cluster(8, 1);
  const auto nodes = topo.thread_node_map();
  m::ExchangePlan hot(8), balanced(8);
  for (int i = 1; i < 8; ++i) hot[static_cast<std::size_t>(i)].push_back({0, 1000.0});
  for (int i = 0; i < 8; ++i)
    balanced[static_cast<std::size_t>(i)].push_back(
        {static_cast<std::int32_t>((i + 1) % 8), 1000.0});
  EXPECT_GT(m::exchange_duration_ns(hot, nodes, 8, 0.0),
            2.0 * m::exchange_duration_ns(balanced, nodes, 8, 0.0));
}

TEST(ExchangeSim, DurationScalesWithServiceTime) {
  const Topology topo = Topology::cluster(4, 2);
  const auto nodes = topo.thread_node_map();
  const double t1 = m::exchange_duration_ns(all_to_all(topo, 100.0, true),
                                            nodes, 4, 0.0);
  const double t2 = m::exchange_duration_ns(all_to_all(topo, 200.0, true),
                                            nodes, 4, 0.0);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(ExchangeSim, SingleNodeEmptyListsAreFree) {
  // One node, several threads, nothing posted: a degenerate but legal
  // plan (all traffic was intra-node and got charged as memory copies).
  const Topology topo = Topology::cluster(1, 4);
  m::ExchangePlan plan(4);
  EXPECT_DOUBLE_EQ(
      m::exchange_duration_ns(plan, topo.thread_node_map(), 1, 1000.0), 0.0);
}

TEST(ExchangeSim, AllSameNodePlanWithNoMessagesIsFree) {
  // Every thread maps to node 0 and the lists are empty — the sweep must
  // not touch NIC state it never allocated.
  const std::vector<std::int32_t> nodes = {0, 0, 0};
  m::ExchangePlan plan(3);
  EXPECT_DOUBLE_EQ(m::exchange_duration_ns(plan, nodes, 1, 500.0), 0.0);
}

TEST(ExchangeSim, ZeroLatencyConfig) {
  // latency_ns = 0: duration is exactly send service + receive service.
  const Topology topo = Topology::cluster(2, 1);
  m::ExchangePlan plan(2);
  plan[0].push_back({1, 500.0});
  EXPECT_DOUBLE_EQ(
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 0.0), 1000.0);
}

TEST(ExchangeSim, DroppedMessageOccupiesSenderOnly) {
  // A dropped message (fault injection) pays its send service but never
  // arrives: no wire latency, no receive service in the duration.
  const Topology topo = Topology::cluster(2, 1);
  m::ExchangePlan plan(2);
  plan[0].push_back({1, 500.0});
  plan[0].back().dropped = true;
  EXPECT_DOUBLE_EQ(
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 1000.0),
      500.0);
}

TEST(ExchangeSim, ExtraDelayShiftsArrival) {
  // extra_delay_ns (fault injection) adds to the wire time of exactly the
  // delayed message.
  const Topology topo = Topology::cluster(2, 1);
  m::ExchangePlan plan(2);
  plan[0].push_back({1, 500.0});
  plan[0].back().extra_delay_ns = 250.0;
  EXPECT_DOUBLE_EQ(
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 1000.0),
      2250.0);
}

#ifdef NDEBUG
TEST(ExchangeSim, OutOfRangeDstClampedInRelease) {
  // Satellite of the fault-injection PR: a corrupted dst_node must not
  // index out of bounds.  Release builds clamp (with a stderr note) and
  // keep going; debug builds assert.
  const Topology topo = Topology::cluster(2, 1);
  m::ExchangePlan plan(2);
  plan[0].push_back({99, 500.0});  // clamps to node 1
  const double t =
      m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 1000.0);
  EXPECT_DOUBLE_EQ(t, 2000.0);
  plan[0].back().dst_node = -7;  // clamps to node 0 == sender's node
  EXPECT_GT(m::exchange_duration_ns(plan, topo.thread_node_map(), 2, 1000.0),
            0.0);
}
#endif
