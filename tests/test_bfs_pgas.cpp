// Distributed level-synchronous BFS against sequential distances, and the
// O(diameter) round behaviour the paper's introduction discusses.
#include <gtest/gtest.h>

#include "core/bfs_pgas.hpp"
#include "graph/generators.hpp"

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(BfsSequential, PathDistances) {
  const auto el = g::path_graph(6);
  const auto d = core::bfs_sequential_dist(el, 0);
  EXPECT_EQ(d, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  const auto d2 = core::bfs_sequential_dist(el, 3);
  EXPECT_EQ(d2, (std::vector<std::uint64_t>{3, 2, 1, 0, 1, 2}));
}

TEST(BfsSequential, UnreachableIsMarked) {
  const auto el = g::disjoint_cliques(2, 3);
  const auto d = core::bfs_sequential_dist(el, 0);
  for (int i = 0; i < 3; ++i) EXPECT_NE(d[i], core::kBfsUnreached);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(d[i], core::kBfsUnreached);
}

class BfsP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BfsP, MatchesSequentialOnVariedGraphs) {
  const auto [nodes, threads] = GetParam();
  pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                 m::CostParams::hps_cluster());
  const g::EdgeList graphs[] = {
      g::path_graph(50),
      g::cycle_graph(41),
      g::star_graph(60),
      g::grid_graph(12, 13),
      g::random_graph(400, 1200, 3),
      g::hybrid_graph(300, 900, 4),
      g::disjoint_cliques(4, 6),
  };
  for (std::size_t gi = 0; gi < std::size(graphs); ++gi) {
    const std::uint64_t src = gi % graphs[gi].n;
    const auto expect = core::bfs_sequential_dist(graphs[gi], src);
    const auto got = core::bfs_pgas(rt, graphs[gi], src);
    EXPECT_EQ(got.dist, expect) << nodes << "x" << threads << " g" << gi;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfsP,
                         ::testing::Values(std::tuple{1, 1},
                                           std::tuple{1, 4},
                                           std::tuple{2, 2},
                                           std::tuple{4, 2}));

TEST(BfsPgas, LevelsEqualEccentricityOnPath) {
  pg::Runtime rt(pg::Topology::cluster(4, 1), m::CostParams::hps_cluster());
  const auto el = g::path_graph(80);
  const auto r = core::bfs_pgas(rt, el, 0);
  // The frontier advances one hop per collective round: O(d) rounds.
  EXPECT_EQ(r.levels, 79);
  const auto r2 = core::bfs_pgas(rt, el, 40);
  EXPECT_EQ(r2.levels, 40);
}

TEST(BfsPgas, LowDiameterNeedsFewLevels) {
  pg::Runtime rt(pg::Topology::cluster(4, 2), m::CostParams::hps_cluster());
  const auto el = g::random_graph(2000, 12000, 5);  // d = O(log n)
  const auto r = core::bfs_pgas(rt, el, 0);
  EXPECT_LE(r.levels, 12);
  EXPECT_EQ(r.dist, core::bfs_sequential_dist(el, 0));
}

TEST(BfsPgas, RejectsBadSource) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  const auto el = g::path_graph(5);
  EXPECT_THROW(core::bfs_pgas(rt, el, 5), std::invalid_argument);
}
