// Superstep tracing and bottleneck attribution: forced-winner workloads
// for each of the four barrier terms, chrome-trace export well-formedness
// (category totals must match PhaseStats), BENCH JSON round-trip, CRCW
// window tagging, and tracer/runtime lifetime edge cases.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <sstream>
#include <string_view>
#include <vector>

#include "collectives/setd.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"
#include "trace/bench_json.hpp"
#include "trace/json.hpp"
#include "trace/tracer.hpp"

namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace tr = pgraph::trace;
namespace c = pgraph::coll;

namespace {

/// Cheap, quiet network so the term under test dominates by construction.
m::CostParams quiet_params() {
  m::CostParams p = m::CostParams::hps_cluster();
  p.net_latency_ns = 1.0;
  p.net_overhead_ns = 1.0;
  p.net_small_msg_sw_ns = 1.0;
  p.nic_small_msg_svc_ns = 1.0;
  p.barrier_base_ns = 1.0;
  p.barrier_per_thread_ns = 0.0;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Forced winners: one synthetic workload per barrier term.
// ---------------------------------------------------------------------------

TEST(BarrierVerdict, ComputeBoundSuperstepIsWonByThreads) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) ctx.charge(m::Cat::Work, 5e6);
    ctx.barrier();
  });
  ASSERT_EQ(tracer.supersteps().size(), 3u);  // initial sync, ours, final
  const auto& v = tracer.supersteps()[1].verdict;
  EXPECT_EQ(v.winner, pg::BarrierVerdict::Winner::Threads);
  EXPECT_STREQ(pg::winner_name(v.winner), "threads");
  // The initial sync barrier already advanced every clock by its (tiny)
  // barrier cost, so the charge lands on top of that.
  EXPECT_NEAR(v.t_threads, 5e6, 100.0);
  EXPECT_GE(v.t_final, v.t_threads);
  EXPECT_FALSE(v.had_exchange);
}

TEST(BarrierVerdict, FineMessageBurstIsWonByNic) {
  m::CostParams p = quiet_params();
  p.nic_small_msg_svc_ns = 1e5;  // NIC message rate is the bottleneck
  pg::Runtime rt(pg::Topology::cluster(2, 2), p);
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    // Everyone hammers node 1 with fine-grained puts; the senders' own
    // clocks only pay the (tiny) software overhead.
    if (ctx.node() == 0)
      for (int i = 0; i < 50; ++i) ctx.remote_put_cost(2, 8);
    ctx.barrier();
  });
  const auto& v = tracer.supersteps()[1].verdict;
  EXPECT_EQ(v.winner, pg::BarrierVerdict::Winner::Nic);
  EXPECT_STREQ(pg::winner_name(v.winner), "nic");
  EXPECT_GT(v.t_nic, v.t_threads);
  // The traced record carries the per-node NIC drain (the NIC is occupied
  // on both sides of each message).
  const auto& nodes = tracer.supersteps()[1].nodes;
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_GT(nodes[1].nic.service_ns, 0.0);
  EXPECT_EQ(nodes[1].nic.msgs, 100u);
}

TEST(BarrierVerdict, DramTrafficIsWonByBus) {
  m::CostParams p = quiet_params();
  p.mem_bus_inv_bw_ns_per_byte = 50.0;  // absurdly slow shared bus
  pg::Runtime rt(pg::Topology::cluster(1, 2), p);
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.mem_seq(1 << 16, m::Cat::Copy);  // streams through the node bus
    ctx.barrier();
  });
  const auto& v = tracer.supersteps()[1].verdict;
  EXPECT_EQ(v.winner, pg::BarrierVerdict::Winner::Bus);
  EXPECT_STREQ(pg::winner_name(v.winner), "bus");
  EXPECT_GT(v.t_bus, v.t_threads);
  EXPECT_GT(tracer.supersteps()[1].nodes[0].bus_busy_ns, 0.0);
}

TEST(BarrierVerdict, ExchangePhaseIsWonByExchange) {
  m::CostParams p = quiet_params();
  p.net_inv_bw_ns_per_byte = 10.0;  // slow wire: the bulk phase dominates
  pg::Runtime rt(pg::Topology::cluster(2, 1), p);
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.post_exchange_msg(1 - ctx.id(), 1 << 20);
    ctx.exchange_barrier();
  });
  const auto& v = tracer.supersteps()[1].verdict;
  EXPECT_EQ(v.winner, pg::BarrierVerdict::Winner::Exchange);
  EXPECT_STREQ(pg::winner_name(v.winner), "exchange");
  EXPECT_TRUE(v.had_exchange);
  EXPECT_GT(v.exchange_ns, 0.0);
  EXPECT_GT(v.t_exchange, v.t_threads);
}

TEST(BarrierVerdict, MaintainedWithTracingOff) {
  // Satellite: the winner is recorded at every barrier even without any
  // sink, and is readable from SPMD code right after the barrier returns.
  pg::Runtime rt(pg::Topology::cluster(1, 2), quiet_params());
  ASSERT_FALSE(rt.tracing());
  pg::BarrierVerdict seen{};
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 1) ctx.charge(m::Cat::Sort, 3e6);
    ctx.barrier();
    if (ctx.id() == 0) seen = ctx.runtime().last_barrier_verdict();
    ctx.barrier();
  });
  EXPECT_EQ(seen.winner, pg::BarrierVerdict::Winner::Threads);
  EXPECT_NEAR(seen.t_threads, 3e6, 100.0);
  EXPECT_GE(seen.t_final, seen.t_start);
  // After run() the verdict describes the final alignment barrier.
  EXPECT_EQ(rt.last_barrier_verdict().winner,
            pg::BarrierVerdict::Winner::Threads);
}

TEST(BarrierVerdict, NonExchangeSuperstepCannotLoseToStaleExchange) {
  // An exchange superstep followed by a plain one: the second verdict must
  // not blame the (finished) exchange.
  pg::Runtime rt(pg::Topology::cluster(2, 1), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.post_exchange_msg(1 - ctx.id(), 1 << 14);
    ctx.exchange_barrier();
    ctx.charge(m::Cat::Work, 1e5);
    ctx.barrier();
  });
  ASSERT_EQ(tracer.supersteps().size(), 4u);
  const auto& plain = tracer.supersteps()[2].verdict;
  EXPECT_FALSE(plain.had_exchange);
  EXPECT_DOUBLE_EQ(plain.t_exchange, plain.t_start);
  EXPECT_EQ(plain.winner, pg::BarrierVerdict::Winner::Threads);
}

// ---------------------------------------------------------------------------
// Attribution accounting.
// ---------------------------------------------------------------------------

TEST(Attribution, CountsAndTimesAccumulatePerWinner) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.charge(m::Cat::Work, 1e6);
    ctx.barrier();
    ctx.charge(m::Cat::Work, 2e6);
    ctx.barrier();
  });
  const tr::Attribution row = tracer.take_row_attribution();
  EXPECT_EQ(row.supersteps, 4u);  // 2 explicit + run()'s 2 implicit
  const auto w = static_cast<std::size_t>(pg::BarrierVerdict::Winner::Threads);
  EXPECT_EQ(row.count[w], 4u);
  EXPECT_GE(row.time_ns[w], 3e6);
  EXPECT_DOUBLE_EQ(row.total_ns(), row.time_ns[w]);
  EXPECT_EQ(row.dominant(), pg::BarrierVerdict::Winner::Threads);
  // take_row_attribution resets the row accumulator but not the total.
  EXPECT_EQ(tracer.take_row_attribution().supersteps, 0u);
  EXPECT_EQ(tracer.total_attribution().supersteps, 4u);
}

// ---------------------------------------------------------------------------
// Chrome trace export: well-formed JSON whose per-category slice totals
// match the runtime's PhaseStats aggregates.
// ---------------------------------------------------------------------------

TEST(ChromeTrace, WellFormedAndCategoryTotalsMatchPhaseStats) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.charge(m::Cat::Work, 1e5 * (1 + ctx.id()));
    ctx.mem_seq(1 << 12, m::Cat::Copy);
    ctx.barrier();
    ctx.charge(m::Cat::Sort, 7e4);
    if (ctx.node() == 0) ctx.remote_put_cost(2, 8);
    ctx.barrier();
  });

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tr::json::Value doc;
  std::string err;
  ASSERT_TRUE(tr::json::parse(os.str(), doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  const auto& events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  // Sum the duration of every category slice (even tids are the
  // per-thread category tracks; "(stall)" filler is not a category).
  std::array<double, m::kNumCats> sum_us{};
  for (const auto& e : events.items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e["ph"].is_string());
    const std::string& ph = e["ph"].as_string();
    if (ph != "X") continue;
    const auto tid = static_cast<std::int64_t>(e["tid"].as_number(-1));
    if (tid < 0 || tid >= 1000000 || tid % 2 != 0) continue;
    const std::string& name = e["name"].as_string();
    for (std::size_t cat = 0; cat < m::kNumCats; ++cat)
      if (name == m::kCatNames[cat]) {
        EXPECT_GE(e["dur"].as_number(), 0.0);
        sum_us[cat] += e["dur"].as_number();
      }
  }
  const m::PhaseStats total = rt.total_stats();
  for (std::size_t cat = 0; cat < m::kNumCats; ++cat) {
    const double want_us = total.get(static_cast<m::Cat>(cat)) * 1e-3;
    EXPECT_NEAR(sum_us[cat], want_us, 1e-6 + 1e-9 * want_us)
        << "category " << m::kCatNames[cat];
  }
}

TEST(ChromeTrace, VerdictTrackAndFileExport) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  rt.run([](pg::ThreadCtx& ctx) {
    ctx.charge(m::Cat::Work, 1e6);
    ctx.barrier();
  });
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tr::json::Value doc;
  ASSERT_TRUE(tr::json::parse(os.str(), doc, nullptr));
  // One slice per superstep on the verdict track, named by the winner.
  std::size_t verdict_slices = 0;
  for (const auto& e : doc["traceEvents"].items()) {
    if (e["ph"].as_string() != "X") continue;
    if (static_cast<std::int64_t>(e["tid"].as_number()) != 1000000) continue;
    ++verdict_slices;
    EXPECT_EQ(e["name"].as_string(), "threads");
    ASSERT_TRUE(e["args"].is_object());
    EXPECT_TRUE(e["args"].has("t_threads_ns"));
  }
  EXPECT_EQ(verdict_slices, tracer.supersteps().size());
}

// ---------------------------------------------------------------------------
// BENCH JSON round-trip through the in-repo parser.
// ---------------------------------------------------------------------------

TEST(BenchJson, RoundTripPreservesSchemaRowsAndAttribution) {
  tr::BenchReport rep;
  rep.bench = "fig05_opt_breakdown_random";
  rep.preset = "hps";
  rep.set_param("n", 5242);
  rep.set_param("nodes", 16);
  rep.set_param("n", 5242);  // idempotent update, not a duplicate

  tr::BenchRow row;
  row.label = "base, \"quoted\"";
  row.modeled_ns = 4.25e7;
  row.wall_ms = 1.5;
  row.messages = 123;
  row.fine_messages = 45;
  row.bytes = 1 << 20;
  row.barriers = 17;
  row.extra.emplace_back("vs_smp", 3.75);
  m::PhaseStats st;
  st.add(m::Cat::Comm, 1000.0);
  st.add(m::Cat::Sort, 250.0);
  row.set_breakdown(st);
  tr::Attribution attr;
  pg::BarrierVerdict v{};
  v.t_start = 0.0;
  v.t_final = 500.0;
  v.winner = pg::BarrierVerdict::Winner::Exchange;
  attr.add(v);
  row.attribution = attr;
  rep.rows.push_back(row);
  rep.attribution = attr;

  std::ostringstream os;
  rep.write(os);
  tr::json::Value doc;
  std::string err;
  ASSERT_TRUE(tr::json::parse(os.str(), doc, &err)) << err;

  EXPECT_EQ(doc["schema"].as_string(), tr::kBenchSchemaName);
  EXPECT_EQ(static_cast<int>(doc["version"].as_number()),
            tr::kBenchSchemaVersion);
  EXPECT_EQ(doc["bench"].as_string(), "fig05_opt_breakdown_random");
  EXPECT_EQ(doc["preset"].as_string(), "hps");
  EXPECT_DOUBLE_EQ(doc["params"]["n"].as_number(), 5242.0);
  EXPECT_DOUBLE_EQ(doc["params"]["nodes"].as_number(), 16.0);

  ASSERT_EQ(doc["rows"].size(), 1u);
  const auto& r = doc["rows"].items()[0];
  EXPECT_EQ(r["label"].as_string(), "base, \"quoted\"");
  EXPECT_DOUBLE_EQ(r["modeled_ns"].as_number(), 4.25e7);
  EXPECT_DOUBLE_EQ(r["wall_ms"].as_number(), 1.5);
  EXPECT_DOUBLE_EQ(r["messages"].as_number(), 123.0);
  EXPECT_DOUBLE_EQ(r["fine_messages"].as_number(), 45.0);
  EXPECT_DOUBLE_EQ(r["bytes"].as_number(), static_cast<double>(1 << 20));
  EXPECT_DOUBLE_EQ(r["barriers"].as_number(), 17.0);
  EXPECT_DOUBLE_EQ(r["breakdown_ns"]["Comm"].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(r["breakdown_ns"]["Sort"].as_number(), 250.0);
  EXPECT_DOUBLE_EQ(r["extra"]["vs_smp"].as_number(), 3.75);

  const auto& ra = r["attribution"];
  ASSERT_TRUE(ra.is_object());
  EXPECT_DOUBLE_EQ(ra["supersteps"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(ra["count"]["exchange"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(ra["time_ns"]["exchange"].as_number(), 500.0);
  EXPECT_EQ(ra["dominant"].as_string(), "exchange");
  EXPECT_EQ(doc["attribution"]["dominant"].as_string(), "exchange");
}

TEST(Json, NumberFormattingIsPlainJson) {
  EXPECT_EQ(tr::json::number(0.0), "0");
  EXPECT_EQ(tr::json::number(std::nan("")), "0");
  EXPECT_EQ(tr::json::number(std::numeric_limits<double>::infinity()), "0");
  tr::json::Value v;
  ASSERT_TRUE(tr::json::parse(tr::json::number(4.25e7), v, nullptr));
  EXPECT_DOUBLE_EQ(v.as_number(), 4.25e7);
  EXPECT_EQ(tr::json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_FALSE(tr::json::parse("{\"a\":}", v, nullptr));
}

// ---------------------------------------------------------------------------
// CRCW window tagging (collectives -> trace, every build).
// ---------------------------------------------------------------------------

TEST(CrcwTagging, SetdMinWindowsAppearInTrace) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), quiet_params());
  tr::SuperstepTracer tracer;
  tracer.attach(rt);
  const std::size_t n = 64;
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = UINT64_MAX;
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    std::vector<std::uint64_t> idx(n), val(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = i;
      val[i] = i * 10 + static_cast<std::uint64_t>(ctx.id());
    }
    c::CollWorkspace<std::uint64_t> ws;
    c::setd_min(ctx, d, idx, std::span<const std::uint64_t>(val),
                c::CollectiveOptions::optimized(4), cc, ws);
    ctx.barrier();
  });
  const auto crcw = tracer.all_crcw();
  ASSERT_FALSE(crcw.empty());
  std::size_t begins = 0, ends = 0;
  for (const auto& e : crcw) {
    EXPECT_STREQ(e.label, "crcw.min");
    (e.begin ? begins : ends)++;
  }
  EXPECT_EQ(begins, ends);
  // And the chrome export carries them as instant events.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tr::json::Value doc;
  ASSERT_TRUE(tr::json::parse(os.str(), doc, nullptr));
  bool found = false;
  for (const auto& e : doc["traceEvents"].items()) {
    if (e["ph"].as_string() == "i" &&
        e["name"].as_string().rfind("crcw.min", 0) == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The collectives also report modeled-time phase scopes.
  const auto scopes = tracer.all_scopes();
  bool saw_group = false;
  for (const auto& s : scopes) {
    EXPECT_LE(s.t0_ns, s.t1_ns);
    if (std::string_view(s.name) == "setd.group") saw_group = true;
  }
  EXPECT_TRUE(saw_group);
}

// ---------------------------------------------------------------------------
// Lifetime: segments concatenate; runtimes may die before the tracer.
// ---------------------------------------------------------------------------

TEST(Tracer, SegmentsFromConsecutiveRuntimesConcatenate) {
  tr::SuperstepTracer tracer;
  double first_end = 0.0;
  {
    pg::Runtime rt(pg::Topology::cluster(1, 2), quiet_params());
    tracer.attach(rt);
    rt.run([](pg::ThreadCtx& ctx) {
      ctx.charge(m::Cat::Work, 1e6);
      ctx.barrier();
    });
    first_end = tracer.end_ns();
    EXPECT_GE(first_end, 1e6);
  }  // runtime destroyed while attached: on_runtime_gone() must fire
  pg::Runtime rt2(pg::Topology::cluster(2, 1), quiet_params());
  tracer.attach(rt2);
  rt2.run([](pg::ThreadCtx& ctx) {
    ctx.charge(m::Cat::Work, 1e5);
    ctx.barrier();
  });
  ASSERT_EQ(tracer.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.segments()[0].offset_ns, 0.0);
  EXPECT_DOUBLE_EQ(tracer.segments()[1].offset_ns, first_end);
  EXPECT_GT(tracer.end_ns(), first_end);
  // All second-segment supersteps live after the first segment's end.
  for (const auto& s : tracer.supersteps()) {
    if (s.segment == 1) {
      EXPECT_GE(s.verdict.t_start + 1e-9, first_end);
    }
  }
  tracer.detach();  // idempotent / safe
  tracer.detach();
}

TEST(Tracer, NoteInstantExportsDedicatedTrackOnlyWhenPresent) {
  const auto run_and_dump = [](bool annotate) {
    pg::Runtime rt(pg::Topology::cluster(1, 2), quiet_params());
    tr::SuperstepTracer tracer;
    tracer.attach(rt);
    rt.run([](pg::ThreadCtx& ctx) {
      ctx.charge(m::Cat::Work, 1e5);
      ctx.barrier();
    });
    if (annotate) {
      tracer.note_instant("serve.breaker_open t0", 2e6);
      tracer.note_instant("serve.brownout_enter", 3e6);
    }
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    return os.str();
  };

  const std::string with = run_and_dump(true);
  const std::string without = run_and_dump(false);

  // Annotation-free traces carry no trace of the pseudo-process: output
  // stays byte-identical to a run that never had the feature.
  EXPECT_EQ(without.find("mode transitions"), std::string::npos);
  EXPECT_NE(with, without);

  tr::json::Value doc;
  std::string err;
  ASSERT_TRUE(tr::json::parse(with, doc, &err)) << err;
  const auto& events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  int instants = 0;
  for (const auto& e : events.items()) {
    if (!e.is_object() || !e["ph"].is_string()) continue;
    if (e["ph"].as_string() != "i") continue;
    ++instants;
    const std::string& name = e["name"].as_string();
    EXPECT_TRUE(name == "serve.breaker_open t0" ||
                name == "serve.brownout_enter")
        << name;
    if (name == "serve.breaker_open t0")
      EXPECT_DOUBLE_EQ(e["ts"].as_number(), 2e6 / 1e3);  // us on the track
  }
  EXPECT_EQ(instants, 2);
}
