// Cross-algorithm integration: all the library's answers to related
// questions must cohere on the same input — the kind of end-to-end
// consistency a downstream user relies on.
#include <gtest/gtest.h>

#include "core/bfs_pgas.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"
#include "core/cc_seq.hpp"
#include "core/cgm_cc.hpp"
#include "core/dsu.hpp"
#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "core/mst_smp.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/permute.hpp"
#include "graph/rng.hpp"

#include <sstream>

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {
pg::Runtime cluster() {
  return pg::Runtime(pg::Topology::cluster(4, 2),
                     m::CostParams::hps_cluster());
}
}  // namespace

TEST(Integration, EveryCcVariantAgreesOnOnePartition) {
  const auto el = g::hybrid_graph(1200, 4000, 11);
  const auto truth = core::cc_dsu(el);
  auto rt = cluster();

  const auto fine = core::cc_fine_grained(rt, el);
  const auto coal = core::cc_coalesced(rt, el);
  const auto sv = core::sv_coalesced(rt, el);
  const auto cgm = core::cgm_cc(rt, el);
  const auto bfs_labels = core::cc_bfs(el);

  for (const auto* r : {&fine, &coal, &sv, &cgm}) {
    EXPECT_TRUE(core::same_partition(truth.labels, r->labels));
    EXPECT_EQ(r->num_components, truth.num_components);
  }
  EXPECT_TRUE(core::same_partition(truth.labels, bfs_labels.labels));
}

TEST(Integration, SpanningTreeAndMstAndCcCohere) {
  const auto el = g::random_graph(800, 2400, 13);
  const auto wel = g::with_random_weights(el, 14);
  auto rt = cluster();

  const auto cc = core::cc_coalesced(rt, el);
  const auto st = core::spanning_tree_pgas(rt, el);
  const auto mst = core::mst_pgas(rt, wel);
  const auto kruskal = core::mst_kruskal(wel);

  // Forest sizes: n - #components, identical for ST and MST.
  EXPECT_EQ(st.edges.size(), el.n - cc.num_components);
  EXPECT_EQ(mst.edges.size(), st.edges.size());
  EXPECT_EQ(mst.total_weight, kruskal.total_weight);

  // The MST edges, viewed as a graph, have the same components as el.
  g::EdgeList forest;
  forest.n = el.n;
  for (const auto id : mst.edges)
    forest.edges.push_back({wel.edges[id].u, wel.edges[id].v});
  EXPECT_TRUE(core::same_partition(core::cc_dsu(forest).labels, cc.labels));
}

TEST(Integration, BfsReachabilityMatchesCcComponent) {
  const auto el = g::disjoint_cliques(3, 50);
  auto rt = cluster();
  const auto cc = core::cc_coalesced(rt, el);
  const auto bfs = core::bfs_pgas(rt, el, 60);  // inside the 2nd clique
  for (std::size_t v = 0; v < el.n; ++v) {
    const bool reachable = bfs.dist[v] != core::kBfsUnreached;
    EXPECT_EQ(reachable, cc.labels[v] == cc.labels[60]) << "vertex " << v;
  }
}

TEST(Integration, RelabelingPreservesEveryAnswer) {
  // Vertex renaming must not change component count, forest weight, or
  // eccentricities — a sanity property of the whole pipeline.
  const auto el = g::random_graph(600, 1800, 17);
  const auto perm = g::random_permutation(el.n, 18);
  const auto rel = g::relabel(el, perm);
  auto rt = cluster();

  EXPECT_EQ(core::cc_coalesced(rt, el).num_components,
            core::cc_coalesced(rt, rel).num_components);

  const auto wel = g::with_random_weights(el, 19);
  g::WEdgeList wrel;
  wrel.n = rel.n;
  for (std::size_t i = 0; i < wel.edges.size(); ++i)
    wrel.edges.push_back(
        {rel.edges[i].u, rel.edges[i].v, wel.edges[i].w});
  EXPECT_EQ(core::mst_pgas(rt, wel).total_weight,
            core::mst_pgas(rt, wrel).total_weight);

  const auto b1 = core::bfs_pgas(rt, el, 5);
  const auto b2 = core::bfs_pgas(rt, rel, perm[5]);
  for (std::size_t v = 0; v < el.n; ++v)
    EXPECT_EQ(b1.dist[v], b2.dist[perm[v]]);
}

TEST(Integration, DimacsRoundTripThenSolve) {
  // Save -> load -> solve must equal solve directly.
  const auto wel = g::with_random_weights(g::random_graph(300, 900, 21), 22);
  std::stringstream ss;
  g::write_dimacs(ss, wel);
  const auto back = g::read_dimacs_weighted(ss);
  auto rt = cluster();
  EXPECT_EQ(core::mst_pgas(rt, wel).total_weight,
            core::mst_pgas(rt, back).total_weight);
}

TEST(Integration, SmpTopologyGivesSameAnswersAsCluster) {
  const auto el = g::random_graph(500, 1500, 23);
  pg::Runtime smp(pg::Topology::single_node(8), m::CostParams::smp_node());
  auto clu = cluster();
  const auto a = core::cc_coalesced(smp, el);
  const auto b = core::cc_coalesced(clu, el);
  EXPECT_TRUE(core::same_partition(a.labels, b.labels));
  const auto wel = g::with_random_weights(el, 24);
  EXPECT_EQ(core::mst_smp(smp, wel).total_weight,
            core::mst_pgas(clu, wel).total_weight);
}

TEST(Integration, HierarchicalCollectivesGiveIdenticalResults) {
  const auto el = g::random_graph(700, 2100, 25);
  auto rt = cluster();
  core::CcOptions flat = core::CcOptions::optimized();
  core::CcOptions hier = core::CcOptions::optimized();
  hier.coll.hierarchical = true;
  const auto a = core::cc_coalesced(rt, el, flat);
  const auto b = core::cc_coalesced(rt, el, hier);
  EXPECT_EQ(a.labels, b.labels);  // bit-identical, not just isomorphic

  const auto wel = g::with_random_weights(el, 26);
  core::MstOptions mflat = core::MstOptions::optimized();
  core::MstOptions mhier = core::MstOptions::optimized();
  mhier.coll.hierarchical = true;
  EXPECT_EQ(core::mst_pgas(rt, wel, mflat).total_weight,
            core::mst_pgas(rt, wel, mhier).total_weight);
}

class SeedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedFuzz, RandomGraphsAllAlgorithmsConsistent) {
  const std::uint64_t seed = GetParam();
  pgraph::graph::Xoshiro256 rng(seed);
  const std::size_t n = 64 + rng.next_below(600);
  const std::size_t mmax = n * (n - 1) / 2;
  const std::size_t medges = std::min<std::size_t>(
      mmax, 1 + rng.next_below(4 * n));
  const auto el = g::random_graph(n, medges, seed * 7 + 1);
  const auto truth = core::cc_dsu(el);
  pg::Runtime rt(pg::Topology::cluster(1 + static_cast<int>(seed % 4),
                                       1 + static_cast<int>(seed % 3)),
                 m::CostParams::hps_cluster());
  EXPECT_TRUE(
      core::same_partition(truth.labels, core::cc_coalesced(rt, el).labels));
  const auto wel = g::with_random_weights(el, seed + 2);
  EXPECT_EQ(core::mst_pgas(rt, wel).total_weight,
            core::mst_kruskal(wel).total_weight);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
