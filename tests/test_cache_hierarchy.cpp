// Two-level cache hierarchy: inclusion on fills, level attribution, AMAT.
#include <gtest/gtest.h>

#include "graph/rng.hpp"
#include "machine/cache_sim.hpp"

namespace m = pgraph::machine;

TEST(CacheHierarchy, ColdMissFillsBothLevels) {
  m::CacheHierarchy h(1024, 2, 8192, 4, 64);
  EXPECT_EQ(h.access(0), 3);   // memory
  EXPECT_EQ(h.access(0), 1);   // now in L1
  EXPECT_EQ(h.accesses(), 2u);
  EXPECT_EQ(h.memory_accesses(), 1u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions) {
  // L1 = 2 lines total (1 set x 2 ways at 64B line, 128B), L2 = 64 lines.
  m::CacheHierarchy h(128, 2, 4096, 4, 64);
  // Touch 4 distinct lines: all L1-evict quickly but stay in L2.
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t a = 0; a < 4 * 64; a += 64) h.access(a);
  EXPECT_EQ(h.memory_accesses(), 4u);          // only compulsory
  EXPECT_GT(h.l2_hits(), 0u);                  // re-fetches served by L2
}

TEST(CacheHierarchy, WorkingSetDeterminesServiceLevel) {
  pgraph::graph::Xoshiro256 rng(1);
  const auto run = [&](std::size_t ws) {
    m::CacheHierarchy h(4096, 4, 65536, 8, 64);
    for (int i = 0; i < 60000; ++i) h.access(rng.next_below(ws) & ~7ull);
    return h;
  };
  // Fits L1: nearly all L1 hits.
  const auto small = run(2048);
  EXPECT_GT(static_cast<double>(small.l1_hits()) /
                static_cast<double>(small.accesses()),
            0.99);
  // Fits L2 but not L1: mostly L2.
  const auto mid = run(32768);
  EXPECT_GT(mid.l2_hits(), mid.accesses() / 2);
  EXPECT_LT(mid.memory_accesses(), mid.accesses() / 10);
  // Exceeds both: mostly memory.
  const auto big = run(1 << 20);
  EXPECT_GT(big.memory_accesses(), big.accesses() / 2);
}

TEST(CacheHierarchy, AmatOrdersWithWorkingSet) {
  pgraph::graph::Xoshiro256 rng(2);
  const auto amat = [&](std::size_t ws) {
    m::CacheHierarchy h(4096, 4, 65536, 8, 64);
    for (int i = 0; i < 50000; ++i) h.access(rng.next_below(ws) & ~7ull);
    return h.amat_ns(1.0, 10.0, 90.0);
  };
  const double a1 = amat(2048), a2 = amat(32768), a3 = amat(1 << 21);
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, a3);
  EXPECT_LT(a1, 2.0);    // ~L1 speed
  EXPECT_GT(a3, 45.0);   // ~memory speed
}

TEST(CacheHierarchy, ResetClearsBoth) {
  m::CacheHierarchy h(1024, 2, 8192, 4, 64);
  h.access(0);
  h.reset();
  EXPECT_EQ(h.accesses(), 0u);
  EXPECT_EQ(h.access(0), 3);  // cold again
}
