// Sequential MST baselines: Kruskal (merge sort), Prim, Boruvka must agree
// on the minimum forest weight, and every output must be a valid forest.
#include <gtest/gtest.h>

#include "core/mst_seq.hpp"
#include "graph/generators.hpp"

namespace g = pgraph::graph;
namespace core = pgraph::core;

namespace {
g::WEdgeList weighted(const g::EdgeList& el, std::uint64_t seed = 11) {
  return g::with_random_weights(el, seed);
}
}  // namespace

TEST(MstSeq, TinyKnownAnswer) {
  // Triangle with weights 1,2,3: MST = {1,2}, weight 3.
  g::WEdgeList el;
  el.n = 3;
  el.edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  const core::MstResult results[] = {core::mst_kruskal(el),
                                     core::mst_prim(el),
                                     core::mst_boruvka(el)};
  for (const auto& r : results) {
    EXPECT_EQ(r.total_weight, 3u);
    EXPECT_EQ(r.edges.size(), 2u);
  }
}

TEST(MstSeq, TieBreakingStillMinimal) {
  // All weights equal: any spanning tree has weight (n-1)*w.
  const auto el = weighted(g::cycle_graph(8));
  g::WEdgeList eq = el;
  for (auto& e : eq.edges) e.w = 5;
  const auto k = core::mst_kruskal(eq);
  EXPECT_EQ(k.total_weight, 7u * 5);
  EXPECT_TRUE(core::is_spanning_forest(eq, k));
  const auto b = core::mst_boruvka(eq);
  EXPECT_EQ(b.total_weight, k.total_weight);
}

TEST(MstSeq, DisconnectedForest) {
  const auto el = weighted(g::disjoint_cliques(4, 5));  // 4 comps of 5
  const auto k = core::mst_kruskal(el);
  EXPECT_EQ(k.edges.size(), 4u * 4);  // (5-1) per clique
  EXPECT_TRUE(core::is_spanning_forest(el, k));
  EXPECT_EQ(core::mst_prim(el).total_weight, k.total_weight);
  EXPECT_EQ(core::mst_boruvka(el).total_weight, k.total_weight);
}

TEST(MstSeq, EmptyAndSingleVertex) {
  g::WEdgeList el;
  el.n = 1;
  const auto k = core::mst_kruskal(el);
  EXPECT_EQ(k.edges.size(), 0u);
  EXPECT_EQ(k.total_weight, 0u);
  EXPECT_TRUE(core::is_spanning_forest(el, k));
}

class MstSeqSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(MstSeqSweep, AllThreeAlgorithmsAgree) {
  const auto [n, m, seed] = GetParam();
  const auto el = weighted(g::random_graph(n, m, seed), seed + 1);
  const auto k = core::mst_kruskal(el);
  const auto p = core::mst_prim(el);
  const auto b = core::mst_boruvka(el);
  EXPECT_EQ(k.total_weight, p.total_weight);
  EXPECT_EQ(k.total_weight, b.total_weight);
  EXPECT_EQ(k.edges.size(), p.edges.size());
  EXPECT_EQ(k.edges.size(), b.edges.size());
  EXPECT_TRUE(core::is_spanning_forest(el, k));
  EXPECT_TRUE(core::is_spanning_forest(el, p));
  EXPECT_TRUE(core::is_spanning_forest(el, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstSeqSweep,
    ::testing::Values(std::tuple{20u, 30u, 1u}, std::tuple{100u, 150u, 2u},
                      std::tuple{500u, 2000u, 3u},
                      std::tuple{1000u, 1200u, 4u},   // barely connected
                      std::tuple{2000u, 10000u, 5u},  // denser
                      std::tuple{3000u, 3000u, 6u}));

TEST(MstSeq, HybridGraph) {
  const auto el = weighted(g::hybrid_graph(1500, 6000, 7), 8);
  const auto k = core::mst_kruskal(el);
  const auto b = core::mst_boruvka(el);
  EXPECT_EQ(k.total_weight, b.total_weight);
  EXPECT_TRUE(core::is_spanning_forest(el, b));
}

TEST(MstSeq, ValidatorRejectsBadForests) {
  const auto el = weighted(g::cycle_graph(4));
  auto r = core::mst_kruskal(el);
  // Duplicate edge id -> reject.
  auto bad = r;
  bad.edges.push_back(bad.edges[0]);
  EXPECT_FALSE(core::is_spanning_forest(el, bad));
  // Wrong weight -> reject.
  bad = r;
  bad.total_weight += 1;
  EXPECT_FALSE(core::is_spanning_forest(el, bad));
  // Missing edge (not spanning) -> reject.
  bad = r;
  bad.total_weight -= el.edges[bad.edges.back()].w;
  bad.edges.pop_back();
  EXPECT_FALSE(core::is_spanning_forest(el, bad));
}

TEST(MstSeq, ModeledCostsPopulated) {
  const pgraph::machine::MemoryModel mm(
      pgraph::machine::CostParams::hps_cluster());
  const auto el = weighted(g::random_graph(1000, 4000, 9));
  EXPECT_GT(core::mst_kruskal(el, &mm).modeled_ns, 0.0);
  EXPECT_GT(core::mst_prim(el, &mm).modeled_ns, 0.0);
  EXPECT_GT(core::mst_boruvka(el, &mm).modeled_ns, 0.0);
}
