// Unit tests for the machine models: cost parameters, memory model,
// network model, NIC drain, counters.
#include <gtest/gtest.h>

#include "machine/cost_params.hpp"
#include "machine/memory_model.hpp"
#include "machine/network_model.hpp"

namespace m = pgraph::machine;

TEST(CostParams, PresetsAreSane) {
  const auto hps = m::CostParams::hps_cluster();
  EXPECT_GT(hps.net_latency_ns, hps.mem_latency_ns);
  EXPECT_GT(hps.net_small_msg_sw_ns, 0.0);
  EXPECT_EQ(hps.preset, "hps-cluster");

  const auto ib = m::CostParams::infiniband_ddr3();
  // Section III: network latency ~190ns vs DRAM ~9ns -> ratio > 20.
  EXPECT_GT(ib.net_latency_ns / ib.mem_latency_ns, 20.0);
}

TEST(MemoryModel, SequentialCostIsLatencyPlusBandwidth) {
  const auto p = m::CostParams::hps_cluster();
  m::MemoryModel mm(p);
  EXPECT_DOUBLE_EQ(mm.seq_ns(0), p.mem_latency_ns);
  EXPECT_DOUBLE_EQ(mm.seq_ns(1000),
                   p.mem_latency_ns + 1000 * p.mem_inv_bw_ns_per_byte);
}

TEST(MemoryModel, RandomAccessCacheResident) {
  const auto p = m::CostParams::hps_cluster();
  m::MemoryModel mm(p);
  // Working set of one line: one miss, everything else hits.
  const double t = mm.random_ns(100, p.cache_line_bytes, 8);
  const double expected = p.mem_latency_ns + 99 * p.cache_hit_ns +
                          100 * 8 * p.mem_inv_bw_ns_per_byte;
  EXPECT_NEAR(t, expected, 1e-9);
}

TEST(MemoryModel, RandomAccessLargeWorkingSetMostlyMisses) {
  const auto p = m::CostParams::hps_cluster();
  m::MemoryModel mm(p);
  const std::size_t ws = p.cache_bytes * 100;
  const double t = mm.random_ns(1000, ws, 8);
  // ~99% misses.
  EXPECT_GT(t, 0.9 * 1000 * p.mem_latency_ns);
}

TEST(MemoryModel, SmallerWorkingSetIsNeverSlower) {
  const auto p = m::CostParams::hps_cluster();
  m::MemoryModel mm(p);
  double prev = 1e300;
  for (std::size_t ws = 1ull << 30; ws >= 1024; ws /= 2) {
    const double t = mm.random_ns(100000, ws, 8);
    EXPECT_LE(t, prev + 1e-6) << "working set " << ws;
    prev = t;
  }
}

TEST(MemoryModel, ZeroAccessesCostNothing) {
  m::MemoryModel mm(m::CostParams::hps_cluster());
  EXPECT_DOUBLE_EQ(mm.random_ns(0, 1 << 20, 8), 0.0);
  EXPECT_DOUBLE_EQ(mm.compute_ns(0), 0.0);
}

TEST(NetworkModel, MessageCosts) {
  const auto p = m::CostParams::hps_cluster();
  m::NetworkModel net(p, 4);
  EXPECT_DOUBLE_EQ(net.msg_service_ns(0), p.net_overhead_ns);
  EXPECT_DOUBLE_EQ(net.msg_wire_ns(100),
                   p.net_overhead_ns + p.net_latency_ns +
                       100 * p.net_inv_bw_ns_per_byte);
}

TEST(NetworkModel, FineGetIsARoundTripAndCounts) {
  const auto p = m::CostParams::hps_cluster();
  m::NetworkModel net(p, 4);
  const double t = net.fine_get_ns(0, 1, 8);
  // Two wire traversals plus two software handlers.
  EXPECT_GT(t, 2 * p.net_latency_ns + 2 * p.net_small_msg_sw_ns);
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.fine_messages(), 2u);
  EXPECT_GT(net.total_bytes(), 8u);
}

TEST(NetworkModel, BulkPutIsCheaperPerByteThanFinePuts) {
  const auto p = m::CostParams::hps_cluster();
  m::NetworkModel net(p, 2);
  const double bulk = net.bulk_put_ns(0, 1, 8000);
  double fine = 0;
  for (int i = 0; i < 1000; ++i) fine += net.fine_put_ns(0, 1, 8);
  EXPECT_LT(bulk, fine / 10);
}

TEST(NetworkModel, LocalBulkIsFree) {
  m::NetworkModel net(m::CostParams::hps_cluster(), 2);
  EXPECT_DOUBLE_EQ(net.bulk_put_ns(1, 1, 1 << 20), 0.0);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(NetworkModel, DrainReturnsBusiestNodeAndResets) {
  const auto p = m::CostParams::hps_cluster();
  m::NetworkModel net(p, 4);
  // Hammer node 3 from node 0.
  for (int i = 0; i < 10; ++i) net.fine_put_ns(0, 3, 8);
  const double d1 = net.drain_nic_max_ns();
  EXPECT_GT(d1, 0.0);
  const double d2 = net.drain_nic_max_ns();
  EXPECT_DOUBLE_EQ(d2, 0.0);
}

TEST(NetworkModel, HotReceiverAccruesMoreThanBalanced) {
  const auto p = m::CostParams::hps_cluster();
  // All senders target node 0.
  m::NetworkModel hot(p, 8);
  for (int srcn = 1; srcn < 8; ++srcn)
    for (int i = 0; i < 10; ++i) hot.fine_put_ns(srcn, 0, 8);
  // Balanced all-to-all of the same volume.
  m::NetworkModel bal(p, 8);
  int count = 0;
  for (int srcn = 0; srcn < 8 && count < 70; ++srcn)
    for (int dstn = 0; dstn < 8 && count < 70; ++dstn) {
      if (srcn == dstn) continue;
      bal.fine_put_ns(srcn, dstn, 8);
      ++count;
    }
  EXPECT_GT(hot.drain_nic_max_ns(), 1.5 * bal.drain_nic_max_ns());
}
