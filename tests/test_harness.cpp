// Table/CSV reporters and the bench CLI parser.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/args.hpp"
#include "harness/table.hpp"

namespace h = pgraph::harness;

TEST(Table, AlignedOutput) {
  h::Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "22"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| a    | long-header | "), std::string::npos);
  EXPECT_NE(out.find("| yyyy | 22          | "), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  h::Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b,c\n1,,\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  // RFC 4180: cells with commas, quotes or newlines are quoted, embedded
  // quotes doubled.  Bench row labels like "base, +offload" hit this.
  h::Table t({"label", "plain"});
  t.add_row({"base, +offload", "1"});
  t.add_row({"say \"hi\"", "2"});
  t.add_row({"two\nlines", "3"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(),
            "label,plain\n"
            "\"base, +offload\",1\n"
            "\"say \"\"hi\"\"\",2\n"
            "\"two\nlines\",3\n");
}

TEST(Table, CsvQuotesHeaderCellsToo) {
  h::Table t({"a,b", "c"});
  t.add_row({"x", "y"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "\"a,b\",c\nx,y\n");
}

TEST(Table, EngineeringUnits) {
  EXPECT_EQ(h::Table::eng(12.0), "12 ns");
  EXPECT_EQ(h::Table::eng(1500.0), "1.500 us");
  EXPECT_EQ(h::Table::eng(2.5e6), "2.500 ms");
  EXPECT_EQ(h::Table::eng(3.25e9), "3.250 s");
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(h::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(h::Table::num(2.0, 0), "2");
}

TEST(BenchArgs, ParsesAllFlags) {
  const char* argv[] = {"prog", "--n",     "1000", "--m",      "4000",
                        "--nodes", "8",    "--threads", "2",
                        "--tprime", "16",  "--seed",    "7",
                        "--scale",  "2.5", "--csv"};
  const auto a =
      h::BenchArgs::parse(static_cast<int>(std::size(argv)),
                          const_cast<char**>(argv));
  EXPECT_EQ(a.n, 1000u);
  EXPECT_EQ(a.m, 4000u);
  EXPECT_EQ(a.nodes, 8);
  EXPECT_EQ(a.threads, 2);
  EXPECT_EQ(a.tprime, 16);
  EXPECT_EQ(a.seed, 7u);
  EXPECT_DOUBLE_EQ(a.scale, 2.5);
  EXPECT_TRUE(a.csv);
  EXPECT_EQ(a.scaled(100), 250u);
}

TEST(BenchArgs, Defaults) {
  const char* argv[] = {"prog"};
  const auto a = h::BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_EQ(a.n, 0u);
  EXPECT_EQ(a.nodes, 0);
  EXPECT_DOUBLE_EQ(a.scale, 1.0);
  EXPECT_FALSE(a.csv);
  EXPECT_EQ(a.scaled(64), 64u);
}
